(** S3D mini-app: turbulent-combustion direct numerical simulation; see
    the implementation header for the modelled memory-object population. *)

include Workload.APP
