(** CAM mini-app: global atmosphere model (column physics + spectral
    dynamics); see the implementation header for the modelled
    memory-object population. *)

include Workload.APP
