(** MiniFE-like mini-app: sparse-CG finite elements, included to test the
    paper's observations beyond its original four applications.  Its CSR
    matrix makes most of the footprint read-only — the strongest static
    NVRAM-placement case in the suite. *)

include Workload.APP
