(** GTC mini-app: particle-in-cell plasma turbulence; see the
    implementation header for the modelled memory-object population. *)

include Workload.APP
