(** MiniMD-like mini-app: Lennard-Jones molecular dynamics, included to
    test the paper's observations beyond its original four applications.
    Its neighbour list is read-only between periodic rebuilds — temporally
    NVRAM-friendly data for a dynamic placement policy. *)

include Workload.APP
