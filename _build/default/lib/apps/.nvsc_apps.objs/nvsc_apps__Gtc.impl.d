lib/apps/gtc.ml: Nvsc_appkit Nvsc_memtrace Workload
