lib/apps/minife.mli: Workload
