lib/apps/gtc.mli: Workload
