lib/apps/minife.ml: Float List Nvsc_appkit Nvsc_memtrace Workload
