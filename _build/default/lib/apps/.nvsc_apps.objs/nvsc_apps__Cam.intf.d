lib/apps/cam.mli: Workload
