lib/apps/apps.ml: Cam Gtc List Minife Minimd Nek5000 S3d String Workload
