lib/apps/minimd.ml: Nvsc_appkit Nvsc_memtrace Stdlib Workload
