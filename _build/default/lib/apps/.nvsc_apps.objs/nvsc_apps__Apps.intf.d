lib/apps/apps.mli: Workload
