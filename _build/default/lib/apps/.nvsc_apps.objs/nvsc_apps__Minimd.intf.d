lib/apps/minimd.mli: Workload
