lib/apps/s3d.mli: Workload
