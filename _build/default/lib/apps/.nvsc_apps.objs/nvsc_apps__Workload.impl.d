lib/apps/workload.ml: Float Nvsc_appkit Stdlib
