lib/apps/s3d.ml: Nvsc_appkit Nvsc_memtrace Workload
