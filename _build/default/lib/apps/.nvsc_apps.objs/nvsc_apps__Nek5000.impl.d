lib/apps/nek5000.ml: Array Nvsc_appkit Nvsc_memtrace Printf Workload
