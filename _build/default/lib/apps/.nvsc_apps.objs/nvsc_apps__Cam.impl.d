lib/apps/cam.ml: Array Nvsc_appkit Nvsc_memtrace Workload
