lib/apps/workload.mli: Nvsc_appkit
