module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray

module type APP = sig
  val name : string
  val description : string
  val input_description : string
  val paper_footprint_mb : float
  val run : ?scale:float -> Ctx.t -> iterations:int -> unit
end

let read_every a ~stride =
  if stride <= 0 then invalid_arg "Workload.read_every: stride";
  let n = Farray.length a in
  let i = ref 0 in
  while !i < n do
    ignore (Farray.get a !i);
    i := !i + stride
  done

let rmw a i f = Farray.set a i (f (Farray.get a i))

let saxpy ctx ~alpha ~x ~y =
  let n = Farray.length x in
  if Farray.length y <> n then invalid_arg "Workload.saxpy: lengths";
  for i = 0 to n - 1 do
    Farray.set y i ((alpha *. Farray.get x i) +. Farray.get y i)
  done;
  Ctx.flops ctx (2 * n)

let dot ctx x y =
  let n = Farray.length x in
  if Farray.length y <> n then invalid_arg "Workload.dot: lengths";
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (Farray.get x i *. Farray.get y i)
  done;
  Ctx.flops ctx (2 * n);
  !acc

let scaled s n = Stdlib.max 1 (int_of_float (Float.round (s *. float_of_int n)))
