(** Common interface of the four instrumented mini-applications.

    Each mini-app reproduces the memory-object population and access
    structure the paper reports for its namesake production code
    (§VI–VII), scaled down so a ten-iteration run takes seconds.  All
    reported quantities are ratios and percentages, which survive the
    scaling. *)

module type APP = sig
  val name : string

  val description : string
  (** One-line description (Table I's "Description" column). *)

  val input_description : string
  (** Table I's "Input problem size" column (the scaled-down analogue). *)

  val paper_footprint_mb : float
  (** Footprint per task the paper reports (Table I), for reference. *)

  val run : ?scale:float -> Nvsc_appkit.Ctx.t -> iterations:int -> unit
  (** Execute pre-computation, [iterations] main-loop iterations, and
      post-processing against the given context.  [scale] (default 1.0)
      multiplies data-structure sizes; use < 1 for quick tests. *)
end

(** {1 Instrumented helpers shared by the apps} *)

val read_every : Nvsc_appkit.Farray.t -> stride:int -> unit
(** Read elements [0, stride, 2*stride, ...] — throttled sweeps over large,
    rarely-consulted structures. *)

val rmw : Nvsc_appkit.Farray.t -> int -> (float -> float) -> unit
(** Read-modify-write one element. *)

val saxpy :
  Nvsc_appkit.Ctx.t ->
  alpha:float ->
  x:Nvsc_appkit.Farray.t ->
  y:Nvsc_appkit.Farray.t ->
  unit
(** [y <- alpha*x + y], fully instrumented, with flop accounting. *)

val dot : Nvsc_appkit.Ctx.t -> Nvsc_appkit.Farray.t -> Nvsc_appkit.Farray.t -> float
(** Instrumented dot product with flop accounting. *)

val scaled : float -> int -> int
(** [scaled s n] is [max 1 (round (s * n))] — data sizing under [scale]. *)
