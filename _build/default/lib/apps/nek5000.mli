(** Nek5000 mini-app: spectral-element incompressible-flow solver on a 2-D
    eddy problem (see the implementation header for the modelled
    memory-object population). *)

include Workload.APP
