(** Registry of the instrumented mini-applications.

    {!all} holds the paper's four (Table I), in the paper's order —
    everything that regenerates the paper's tables and figures iterates
    over this list.  {!extended} adds the two beyond-the-paper workloads
    (MiniFE, MiniMD) used to test that the paper's observations generalise
    (§I: "observations ... that apply broadly to many applications beyond
    our initial set"). *)

val all : (module Workload.APP) list
(** Nek5000, CAM, GTC, S3D. *)

val extended : (module Workload.APP) list
(** {!all} plus MiniFE and MiniMD. *)

val find : string -> (module Workload.APP) option
(** Case-insensitive lookup by name over {!extended}. *)

val names : string list
(** Names of {!all}. *)

val extended_names : string list
