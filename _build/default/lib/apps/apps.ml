let all : (module Workload.APP) list =
  [ (module Nek5000); (module Cam); (module Gtc); (module S3d) ]

let extended = all @ [ (module Minife : Workload.APP); (module Minimd) ]

let names = List.map (fun (module A : Workload.APP) -> A.name) all

let extended_names =
  List.map (fun (module A : Workload.APP) -> A.name) extended

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun (module A : Workload.APP) -> A.name = name) extended
