lib/cpusim/tlb.mli:
