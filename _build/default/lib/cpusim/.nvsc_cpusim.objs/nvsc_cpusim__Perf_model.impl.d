lib/cpusim/perf_model.ml: Core_params Float Hashtbl Nvsc_cachesim Nvsc_memtrace Option Queue Tlb
