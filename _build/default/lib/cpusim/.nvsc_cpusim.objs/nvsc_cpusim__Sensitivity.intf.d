lib/cpusim/sensitivity.mli: Core_params Format Nvsc_nvram Perf_model
