lib/cpusim/tlb.ml: Array
