lib/cpusim/perf_model.mli: Core_params Nvsc_cachesim Nvsc_memtrace
