lib/cpusim/core_params.mli: Format
