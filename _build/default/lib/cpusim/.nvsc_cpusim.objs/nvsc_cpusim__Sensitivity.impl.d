lib/cpusim/sensitivity.ml: Format List Nvsc_nvram Nvsc_util Perf_model
