lib/cpusim/core_params.ml: Format
