(** Out-of-order core parameters (paper Table III).

    2.266 GHz x86 core, one thread, out-of-order issue; 32-entry per-core
    TLB; 1-cycle L1 hit, 5-cycle L2 hit; 64-entry load-fill request queue
    and 64-entry miss buffer (the hardware ceiling on outstanding misses —
    the *effective* memory-level parallelism applications extract is far
    lower and is modelled separately). *)

type t = {
  clock_ghz : float;
  issue_width : int;  (** retired instructions per cycle at best *)
  rob_entries : int;  (** reorder-buffer reach for miss clustering *)
  miss_buffer : int;  (** hardware max outstanding misses *)
  effective_mlp : int;
      (** misses that genuinely overlap within one ROB window *)
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_cycles : int;  (** page-walk penalty *)
}

val paper : t
(** Table III values with effective MLP 4. *)

val make :
  ?clock_ghz:float ->
  ?issue_width:int ->
  ?rob_entries:int ->
  ?miss_buffer:int ->
  ?effective_mlp:int ->
  ?l1_hit_cycles:int ->
  ?l2_hit_cycles:int ->
  ?tlb_entries:int ->
  ?page_bytes:int ->
  ?tlb_miss_cycles:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
