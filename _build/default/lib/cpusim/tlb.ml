type t = {
  entries : int;
  page_bytes : int;
  pages : int array; (* -1 = invalid *)
  age : int array;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries ~page_bytes =
  if entries <= 0 || page_bytes <= 0 then invalid_arg "Tlb.create";
  {
    entries;
    page_bytes;
    pages = Array.make entries (-1);
    age = Array.make entries 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t addr =
  let page = addr / t.page_bytes in
  t.clock <- t.clock + 1;
  let rec find i = if i >= t.entries then None
    else if t.pages.(i) = page then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.hits <- t.hits + 1;
    t.age.(i) <- t.clock;
    true
  | None ->
    t.misses <- t.misses + 1;
    let victim = ref 0 in
    for i = 1 to t.entries - 1 do
      if t.pages.(i) = -1 && t.pages.(!victim) <> -1 then victim := i
      else if t.pages.(!victim) <> -1 && t.age.(i) < t.age.(!victim) then
        victim := i
    done;
    t.pages.(!victim) <- page;
    t.age.(!victim) <- t.clock;
    false

let hits t = t.hits
let misses t = t.misses

let miss_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0. else float_of_int t.misses /. float_of_int total

let reset t =
  Array.fill t.pages 0 t.entries (-1);
  Array.fill t.age 0 t.entries 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0
