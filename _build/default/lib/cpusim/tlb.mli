(** Fully-associative, LRU translation lookaside buffer (32 entries per
    core in the paper's configuration). *)

type t

val create : entries:int -> page_bytes:int -> t

val access : t -> int -> bool
(** [access t addr] translates the page of [addr]; returns [true] on a TLB
    hit.  A miss installs the translation, evicting the LRU entry when
    full. *)

val hits : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset : t -> unit
