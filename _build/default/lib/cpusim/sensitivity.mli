(** The Figure-12 experiment: replay one application workload against the
    memory latencies of the candidate technologies and report runtimes
    normalised to DRAM.

    Per the paper's §V assumptions, a single latency is used for both reads
    and writes (each technology's write latency — a performance lower
    bound) and main memory is wholly replaced by the technology under
    test. *)

type point = {
  tech : Nvsc_nvram.Technology.t;
  latency_ns : float;
  runtime_ns : float;
  normalized_runtime : float;  (** relative to the DDR3 run *)
  report : Perf_model.report;
}

val run :
  ?params:Core_params.t ->
  ?techs:Nvsc_nvram.Technology.t list ->
  ?asymmetric:bool ->
  replay:(Perf_model.t -> unit) ->
  unit ->
  point list
(** [replay model] must drive the identical instruction/reference stream
    into [model] on every invocation ({!Perf_model.instructions} /
    {!Perf_model.access}).  [techs] defaults to the paper's four
    technologies; the list must include DDR3 for normalisation.

    [asymmetric] (default false) removes the paper's read-=-write
    assumption: reads use each technology's read latency and writes are
    posted at its write latency through the write buffer (see
    {!Perf_model.create}), quantifying how conservative the paper's
    lower bound is. *)

val pp_points : Format.formatter -> point list -> unit
