type t = {
  clock_ghz : float;
  issue_width : int;
  rob_entries : int;
  miss_buffer : int;
  effective_mlp : int;
  l1_hit_cycles : int;
  l2_hit_cycles : int;
  tlb_entries : int;
  page_bytes : int;
  tlb_miss_cycles : int;
}

let make ?(clock_ghz = 2.266) ?(issue_width = 4) ?(rob_entries = 128)
    ?(miss_buffer = 64) ?(effective_mlp = 4) ?(l1_hit_cycles = 1)
    ?(l2_hit_cycles = 5) ?(tlb_entries = 32) ?(page_bytes = 4096)
    ?(tlb_miss_cycles = 30) () =
  if issue_width <= 0 || effective_mlp <= 0 || rob_entries <= 0 then
    invalid_arg "Core_params.make";
  {
    clock_ghz;
    issue_width;
    rob_entries;
    miss_buffer;
    effective_mlp;
    l1_hit_cycles;
    l2_hit_cycles;
    tlb_entries;
    page_bytes;
    tlb_miss_cycles;
  }

let paper = make ()

let pp fmt t =
  Format.fprintf fmt
    "%.3fGHz, issue %d, ROB %d, miss buffer %d (eff. MLP %d), L1 %dcy, L2 \
     %dcy, TLB %d entries"
    t.clock_ghz t.issue_width t.rob_entries t.miss_buffer t.effective_mlp
    t.l1_hit_cycles t.l2_hit_cycles t.tlb_entries
