lib/cachesim/cache.ml: Array Cache_params
