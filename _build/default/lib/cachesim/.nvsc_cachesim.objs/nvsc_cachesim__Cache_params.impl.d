lib/cachesim/cache_params.ml: Format Nvsc_util
