lib/cachesim/hierarchy.mli: Cache Cache_params Nvsc_memtrace
