lib/cachesim/cache.mli: Cache_params
