lib/cachesim/cache_params.mli: Format
