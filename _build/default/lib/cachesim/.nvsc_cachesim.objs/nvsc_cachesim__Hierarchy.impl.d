lib/cachesim/hierarchy.ml: Cache Cache_params Nvsc_memtrace
