(** A single set-associative, write-back cache level with true-LRU
    replacement.

    The cache operates on line addresses ([byte address / line size]); the
    hierarchy is responsible for splitting byte accesses into line
    accesses.  A lookup returns what traffic the access induces towards the
    next level: a line fill, a dirty write-back of an evicted line, a
    forwarded write (no-write-allocate write miss), or nothing. *)

type t

(** Traffic the access generates toward the next memory level. *)
type effect_ = {
  hit : bool;
  fill : int option;  (** line to fetch from below (read request) *)
  writeback : int option;  (** dirty victim line to write below *)
  forward_write : int option;
      (** write sent below without allocating (no-write-allocate policy) *)
}

val create : Cache_params.t -> t

val params : t -> Cache_params.t

val read : t -> line:int -> effect_
(** Read lookup.  On a miss the line is allocated clean; a dirty victim is
    reported in [writeback]. *)

val write : t -> line:int -> effect_
(** Write lookup.  On a hit the line is dirtied.  On a miss:
    [Write_allocate] fetches the line ([fill]) and dirties it;
    [No_write_allocate] leaves the cache unchanged and reports the write in
    [forward_write]. *)

val probe : t -> line:int -> bool
(** Non-intrusive presence test (does not touch LRU state). *)

val is_dirty : t -> line:int -> bool
(** Non-intrusive dirtiness test; false when the line is absent. *)

val flush_dirty : t -> (int -> unit) -> unit
(** Invoke the callback on every resident dirty line and mark them clean —
    end-of-trace write-back drain so memory traffic accounting is
    complete. *)

val invalidate_all : t -> unit
(** Drop every line without write-backs (used between independent
    experiments). *)

val resident_lines : t -> int

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val read_hits : t -> int
val read_misses : t -> int
val write_hits : t -> int
val write_misses : t -> int
val evictions : t -> int
val dirty_evictions : t -> int

val miss_rate : t -> float
(** Misses over total accesses; 0 when idle. *)

val reset_stats : t -> unit
