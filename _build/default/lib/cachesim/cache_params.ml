type write_miss_policy = Write_allocate | No_write_allocate

type t = {
  name : string;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  write_miss : write_miss_policy;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ~name ~size_bytes ~associativity ?(line_bytes = 64) ~write_miss () =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache_params.make: line size must be a power of two";
  if associativity <= 0 then invalid_arg "Cache_params.make: associativity";
  if size_bytes mod (line_bytes * associativity) <> 0
     || size_bytes / (line_bytes * associativity) < 1
  then invalid_arg "Cache_params.make: size not divisible into sets";
  { name; size_bytes; associativity; line_bytes; write_miss }

let sets t = t.size_bytes / (t.line_bytes * t.associativity)

let paper_l1d =
  make ~name:"L1D" ~size_bytes:(32 * 1024) ~associativity:4
    ~write_miss:No_write_allocate ()

let paper_l1i =
  make ~name:"L1I" ~size_bytes:(32 * 1024) ~associativity:4
    ~write_miss:No_write_allocate ()

let paper_l2 =
  make ~name:"L2" ~size_bytes:(1024 * 1024) ~associativity:16
    ~write_miss:Write_allocate ()

let pp fmt t =
  Format.fprintf fmt "%s: %a %d-way, %dB lines, %s" t.name Nvsc_util.Units.pp_bytes
    t.size_bytes t.associativity t.line_bytes
    (match t.write_miss with
    | Write_allocate -> "write-allocate"
    | No_write_allocate -> "no-write-allocate")
