type t = {
  edges : float array; (* strictly increasing, length = nbins + 1 *)
  weights : float array; (* length = nbins *)
  mutable under : float;
  mutable over : float;
  mutable total : float;
}

let create_edges edges =
  let n = Array.length edges in
  if n < 2 then invalid_arg "Histogram.create_edges: need at least two edges";
  for i = 0 to n - 2 do
    if edges.(i) >= edges.(i + 1) then
      invalid_arg "Histogram.create_edges: edges must be strictly increasing"
  done;
  {
    edges = Array.copy edges;
    weights = Array.make (n - 1) 0.;
    under = 0.;
    over = 0.;
    total = 0.;
  }

let create_linear ~lo ~hi ~bins =
  if not (lo < hi) || bins <= 0 then invalid_arg "Histogram.create_linear";
  let w = (hi -. lo) /. float_of_int bins in
  create_edges (Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. w)))

let create_log ~lo ~hi ~bins =
  if not (0. < lo && lo < hi) || bins <= 0 then invalid_arg "Histogram.create_log";
  let r = (hi /. lo) ** (1.0 /. float_of_int bins) in
  create_edges (Array.init (bins + 1) (fun i -> lo *. (r ** float_of_int i)))

(* Binary search for the bin containing v: largest i with edges.(i) <= v. *)
let find_bin t v =
  let n = Array.length t.edges in
  if v < t.edges.(0) then `Under
  else if v >= t.edges.(n - 1) then `Over
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.edges.(mid) <= v then lo := mid else hi := mid
    done;
    `Bin !lo
  end

let add_weighted t v w =
  t.total <- t.total +. w;
  match find_bin t v with
  | `Under -> t.under <- t.under +. w
  | `Over -> t.over <- t.over +. w
  | `Bin i -> t.weights.(i) <- t.weights.(i) +. w

let add t v = add_weighted t v 1.0

let total_weight t = t.total
let underflow t = t.under
let overflow t = t.over

let bins t =
  Array.mapi (fun i w -> (t.edges.(i), t.edges.(i + 1), w)) t.weights

let fraction_in t ~lo ~hi =
  if t.total = 0. then 0.
  else begin
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        let blo = t.edges.(i) and bhi = t.edges.(i + 1) in
        let ov_lo = Stdlib.max blo lo and ov_hi = Stdlib.min bhi hi in
        if ov_hi > ov_lo then
          acc := !acc +. (w *. (ov_hi -. ov_lo) /. (bhi -. blo)))
      t.weights;
    !acc /. t.total
  end

let pp fmt t =
  let max_w =
    Array.fold_left Stdlib.max 1e-300 t.weights
  in
  Array.iteri
    (fun i w ->
      let bar = int_of_float (40. *. w /. max_w) in
      Format.fprintf fmt "[%10.3g, %10.3g) %12.4g %s@."
        t.edges.(i)
        t.edges.(i + 1)
        w
        (String.make bar '#'))
    t.weights
