type align = Left | Right

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reversed *)
  mutable nrows : int;
}

let create ?title columns =
  let headers = Array.of_list (List.map fst columns) in
  let aligns = Array.of_list (List.map snd columns) in
  { title; headers; aligns; rows = []; nrows = 0 }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows;
  t.nrows <- t.nrows + 1

let row_count t = t.nrows

let pp fmt t =
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let rows = List.rev t.rows in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell))
        row)
    rows;
  let pad i s =
    let w = widths.(i) in
    let n = w - String.length s in
    if n <= 0 then s
    else
      match t.aligns.(i) with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  (match t.title with
  | Some title -> Format.fprintf fmt "== %s ==@." title
  | None -> ());
  let print_row row =
    for i = 0 to ncols - 1 do
      if i > 0 then Format.pp_print_string fmt "  ";
      Format.pp_print_string fmt (pad i row.(i))
    done;
    Format.pp_print_newline fmt ()
  in
  print_row t.headers;
  let rule = Array.map (fun w -> String.make w '-') widths in
  print_row rule;
  List.iter print_row rows

let to_string t = Format.asprintf "%a" pp t

let to_markdown t =
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title -> Buffer.add_string buf (Printf.sprintf "**%s**\n\n" title)
  | None -> ());
  let escape s = String.concat "\\|" (String.split_on_char '|' s) in
  let row cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.map escape cells));
    Buffer.add_string buf " |\n"
  in
  row (Array.to_list t.headers);
  row
    (Array.to_list
       (Array.map (function Left -> "---" | Right -> "---:") t.aligns));
  List.iter (fun r -> row (Array.to_list r)) (List.rev t.rows);
  Buffer.contents buf

let cell_f ?(prec = 2) v =
  if v = infinity then "inf"
  else if v = neg_infinity then "-inf"
  else if Float.is_nan v then "nan"
  else Printf.sprintf "%.*f" prec v

let cell_pct v = Printf.sprintf "%.1f%%" (100. *. v)
let cell_i = string_of_int
let cell_bytes n = Format.asprintf "%a" Units.pp_bytes n
