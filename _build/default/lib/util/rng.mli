(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the simulators and workload generators is
    driven through this module so that every experiment is reproducible from
    a seed.  The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA'14):
    fast, statistically solid for simulation purposes, and trivially
    splittable so that independent subsystems can derive independent
    streams from one master seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator from a 64-bit seed. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of the
    subsequent outputs of [t].  [t] advances by one step. *)

val copy : t -> t
(** [copy t] duplicates the state; both generators then produce the same
    stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive; requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate; [rate] must be positive. *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto deviate (heavy tail), used for skewed object-popularity draws. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
