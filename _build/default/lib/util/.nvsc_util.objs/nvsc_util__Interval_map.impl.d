lib/util/interval_map.ml: Array List
