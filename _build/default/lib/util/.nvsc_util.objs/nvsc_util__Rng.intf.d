lib/util/rng.mli:
