lib/util/stats.mli:
