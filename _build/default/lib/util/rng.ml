type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

(* SplitMix64 output function: the state advances by a fixed odd constant and
   the result is a bijective scramble of the new state. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  create (mix seed)

let int t bound =
  assert (bound > 0);
  (* Take the top bits (better mixed) and reduce; bias is negligible for the
     bounds used in simulation (<< 2^53). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  float t 1.0 < p

let gaussian t ~mean ~stddev =
  (* Box–Muller; guard against log 0. *)
  let u1 = Stdlib.max (float t 1.0) 1e-300 in
  let u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  assert (rate > 0.);
  let u = Stdlib.max (float t 1.0) 1e-300 in
  -.log u /. rate

let pareto t ~shape ~scale =
  assert (shape > 0. && scale > 0.);
  let u = Stdlib.max (float t 1.0) 1e-300 in
  scale /. (u ** (1.0 /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
