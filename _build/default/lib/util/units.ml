let pp_bytes fmt n =
  let f = float_of_int n in
  if f < 1024. then Format.fprintf fmt "%dB" n
  else if f < 1024. *. 1024. then Format.fprintf fmt "%.1fKB" (f /. 1024.)
  else if f < 1024. *. 1024. *. 1024. then
    Format.fprintf fmt "%.1fMB" (f /. (1024. *. 1024.))
  else Format.fprintf fmt "%.2fGB" (f /. (1024. *. 1024. *. 1024.))

let pp_ns fmt t =
  if t < 1e3 then Format.fprintf fmt "%.1fns" t
  else if t < 1e6 then Format.fprintf fmt "%.2fus" (t /. 1e3)
  else if t < 1e9 then Format.fprintf fmt "%.2fms" (t /. 1e6)
  else Format.fprintf fmt "%.3fs" (t /. 1e9)

let pp_watts fmt w =
  if Float.abs w < 1.0 then Format.fprintf fmt "%.1fmW" (w *. 1e3)
  else Format.fprintf fmt "%.3fW" w

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let ns_of_cycles ~cycles ~ghz = float_of_int cycles /. ghz

let cycles_of_ns ~ns ~ghz = int_of_float (Float.ceil (ns *. ghz))
