(** Unit formatting and conversions shared by reports and simulators. *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable bytes: 824 -> "824B", 63963136 -> "61.0MB". Binary
    (1024-based) units. *)

val pp_ns : Format.formatter -> float -> unit
(** Nanoseconds with automatic promotion to us/ms/s. *)

val pp_watts : Format.formatter -> float -> unit
(** Watts with automatic mW/W scaling. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val ns_of_cycles : cycles:int -> ghz:float -> float
(** Wall time in nanoseconds of [cycles] at [ghz] GHz. *)

val cycles_of_ns : ns:float -> ghz:float -> int
(** Clock cycles covering [ns] nanoseconds at [ghz] GHz (rounded up). *)
