let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let line ?(width = 72) ?(height = 20) ?title ?x_label ?y_label series =
  let buf = Buffer.create 1024 in
  (match title with
  | Some t -> Buffer.add_string buf (Printf.sprintf "-- %s --\n" t)
  | None -> ());
  let points = List.concat_map snd series in
  if points = [] then begin
    Buffer.add_string buf "(no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let fmin = List.fold_left Float.min infinity in
    let fmax = List.fold_left Float.max neg_infinity in
    let x0 = fmin xs and x1 = fmax xs in
    let y0 = Float.min 0. (fmin ys) and y1 = fmax ys in
    let x1 = if x1 = x0 then x0 +. 1. else x1 in
    let y1 = if y1 = y0 then y0 +. 1. else y1 in
    let grid = Array.make_matrix height width ' ' in
    let place gi (x, y) =
      let cx =
        int_of_float ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1))
      in
      let cy =
        int_of_float ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1))
      in
      let row = height - 1 - cy in
      if row >= 0 && row < height && cx >= 0 && cx < width then
        grid.(row).(cx) <- glyphs.(gi mod Array.length glyphs)
    in
    List.iteri (fun gi (_, pts) -> List.iter (place gi) pts) series;
    (match y_label with
    | Some l -> Buffer.add_string buf (l ^ "\n")
    | None -> ());
    Array.iteri
      (fun row cells ->
        let y = y1 -. (float_of_int row /. float_of_int (height - 1) *. (y1 -. y0)) in
        Buffer.add_string buf (Printf.sprintf "%10.3g |" y);
        Array.iter (Buffer.add_char buf) cells;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 11 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%10s  %.4g%s%.4g" "" x0
         (String.make (max 1 (width - 12)) ' ')
         x1);
    (match x_label with
    | Some l -> Buffer.add_string buf (Printf.sprintf "  (%s)" l)
    | None -> ());
    Buffer.add_char buf '\n';
    List.iteri
      (fun gi (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c %s\n" glyphs.(gi mod Array.length glyphs) name))
      series;
    Buffer.contents buf
  end

let bars ?(width = 50) ?title ?max_value entries =
  let buf = Buffer.create 256 in
  (match title with
  | Some t -> Buffer.add_string buf (Printf.sprintf "-- %s --\n" t)
  | None -> ());
  let mx =
    match max_value with
    | Some m -> m
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-300 entries
  in
  let label_w =
    List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 entries
  in
  List.iter
    (fun (label, v) ->
      let v' = Float.max 0. v in
      let n = int_of_float (Float.round (v' /. mx *. float_of_int width)) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s %.3f\n" label_w label (String.make n '=') v))
    entries;
  Buffer.contents buf
