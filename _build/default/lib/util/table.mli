(** Plain-text table rendering for experiment reports.

    Every table and figure regenerator prints through this module so output
    is uniform and greppable in EXPERIMENTS.md. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] makes an empty table with the given column
    headers and alignments. *)

val add_row : t -> string list -> unit
(** Adds a row; raises [Invalid_argument] when the arity does not match the
    header. *)

val row_count : t -> int

val pp : Format.formatter -> t -> unit
(** Render with a header rule and column padding. *)

val to_string : t -> string

val to_markdown : t -> string
(** GitHub-flavoured markdown rendering (title as a bold line, alignment
    markers in the separator row). *)

(** Cell formatting helpers. *)

val cell_f : ?prec:int -> float -> string
(** Fixed-point float cell; infinity renders as ["inf"]. *)

val cell_pct : float -> string
(** Fraction rendered as a percentage with one decimal, e.g. [0.756] ->
    ["75.6%"]. *)

val cell_i : int -> string
val cell_bytes : int -> string
(** Human bytes via {!Units.pp_bytes}. *)
