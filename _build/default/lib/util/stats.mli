(** Streaming and batch statistics used throughout the analysis pipeline. *)

(** {1 Streaming accumulator} *)

type t
(** Welford streaming accumulator for count / mean / variance / extrema. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** Mean of the samples; 0 if empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two samples. *)

val stddev : t -> float
val min : t -> float
(** Minimum sample; [infinity] if empty. *)

val max : t -> float
(** Maximum sample; [neg_infinity] if empty. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen both streams
    (Chan's parallel update). The arguments are unchanged. *)

(** {1 Batch helpers} *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,1\]]; linear interpolation between
    closest ranks. The array is not modified. Raises [Invalid_argument] on
    an empty array. *)

val median : float array -> float

val cdf : float array -> (float * float) list
(** [cdf xs] is the empirical CDF as a sorted list of
    [(value, fraction <= value)] points, one per distinct value. *)

val ratio : int -> int -> float
(** [ratio num den] is [num/den] as floats, and [infinity] when [den = 0]
    but [num > 0], and [0.] when both are zero.  This is the convention the
    paper uses for read/write ratios of read-only objects. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values; raises [Invalid_argument]
    on empty input. *)
