(** Fixed-bin and logarithmic histograms for distribution reporting
    (figures 2 and 8–11 of the paper present binned distributions of
    read/write ratios and reference rates). *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** [create_linear ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width
    bins plus an underflow and an overflow bin.  Requires [lo < hi] and
    [bins > 0]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Same, but bin edges are spaced geometrically.  Requires [0 < lo < hi]. *)

val create_edges : float array -> t
(** Histogram with explicit, strictly increasing bin edges. A value [v]
    falls in bin [i] when [edges.(i) <= v < edges.(i+1)]. *)

val add : t -> float -> unit
val add_weighted : t -> float -> float -> unit
(** [add_weighted t v w] adds weight [w] at value [v] (for size-weighted
    distributions). *)

val total_weight : t -> float
val underflow : t -> float
val overflow : t -> float

val bins : t -> (float * float * float) array
(** [(lo, hi, weight)] per bin, in order, excluding under/overflow. *)

val fraction_in : t -> lo:float -> hi:float -> float
(** Fraction of total weight whose value fell in [\[lo, hi)] (computed from
    exact sample placement rather than bin boundaries when the range
    coincides with bin edges; otherwise approximated by whole bins whose
    span intersects the range, proportionally). *)

val pp : Format.formatter -> t -> unit
(** Render bins as rows of [lo..hi count bar]. *)
