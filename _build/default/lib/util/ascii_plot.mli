(** Terminal plots for the figure regenerators.

    The paper's figures are charts; the experiment harness renders
    text-mode equivalents so a full run reads like the evaluation section.
    Two forms cover every figure: multi-series line/step charts (CDFs,
    per-iteration series) and labelled horizontal bars (normalised power
    and runtime). *)

val line :
  ?width:int ->
  ?height:int ->
  ?title:string ->
  ?x_label:string ->
  ?y_label:string ->
  (string * (float * float) list) list ->
  string
(** [line series] plots each named series ([(x, y)] points, any order)
    on a shared grid, one glyph per series ([*], [+], [o], [x], ...), with
    a legend and axis ranges.  Empty input yields an empty-plot notice.
    Default 72x20 grid. *)

val bars :
  ?width:int -> ?title:string -> ?max_value:float -> (string * float) list -> string
(** Horizontal bar chart; bars scale to the maximum value (or
    [max_value]).  Negative values are clamped to zero. *)
