type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; sum = 0.; mn = infinity; mx = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.mn
let max t = t.mx

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    {
      n;
      mean;
      m2;
      sum = a.sum +. b.sum;
      mn = Stdlib.min a.mn b.mn;
      mx = Stdlib.max a.mx b.mx;
    }
  end

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 0.5

let cdf xs =
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let sorted = Array.copy xs in
    Array.sort compare sorted;
    let nf = float_of_int n in
    (* One point per distinct value: (v, #samples <= v / n). *)
    let rec collect i acc =
      if i >= n then List.rev acc
      else begin
        let v = sorted.(i) in
        let rec last j = if j + 1 < n && sorted.(j + 1) = v then last (j + 1) else j in
        let j = last i in
        collect (j + 1) ((v, float_of_int (j + 1) /. nf) :: acc)
      end
    in
    collect 0 []
  end

let ratio num den =
  if den = 0 then if num = 0 then 0. else infinity
  else float_of_int num /. float_of_int den

let geometric_mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let sum_logs = Array.fold_left (fun acc x -> acc +. log x) 0. xs in
  exp (sum_logs /. float_of_int (Array.length xs))
