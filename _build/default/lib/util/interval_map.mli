(** Immutable interval-to-value map over integer half-open ranges, built
    once and probed by binary search — the address-range lookup structure
    shared by trace attribution and hybrid-placement routing. *)

type 'a t

val build : (int * int * 'a) list -> 'a t
(** [build ranges] from [(start, stop, value)] triples with [start < stop].
    Ranges must be pairwise disjoint; raises [Invalid_argument]
    otherwise. *)

val find : 'a t -> int -> 'a option
(** [find t x] is the value of the range containing [x], if any.
    O(log n). *)

val size : 'a t -> int

val ranges : 'a t -> (int * int * 'a) list
(** Sorted by start. *)
