module Technology = Nvsc_nvram.Technology

type t = {
  t_cas_ns : float;
  t_rcd_ns : float;
  t_rp_ns : float;
  t_wr_ns : float;
  t_burst_ns : float;
  t_refi_ns : float;
  t_rfc_ns : float;
}

(* 1600 MT/s double-data-rate bus: one beat every 0.625 ns. *)
let beat_ns = 0.625

let of_tech (tech : Technology.t) ~org =
  let beats = org.Org.line_bytes / (org.Org.bus_width_bits / 8) in
  {
    t_cas_ns = 5.0;
    t_rcd_ns = tech.read_latency_ns;
    t_rp_ns = 5.0;
    t_wr_ns = tech.write_latency_ns;
    t_burst_ns = float_of_int beats *. beat_ns;
    t_refi_ns = 7800.0;
    t_rfc_ns = 160.0;
  }

let row_miss_penalty_ns t ~had_open_row =
  (if had_open_row then t.t_rp_ns else 0.) +. t.t_rcd_ns

let pp fmt t =
  Format.fprintf fmt
    "tCAS=%.1f tRCD=%.1f tRP=%.1f tWR=%.1f tBURST=%.2f tREFI=%.0f tRFC=%.0f (ns)"
    t.t_cas_ns t.t_rcd_ns t.t_rp_ns t.t_wr_ns t.t_burst_ns t.t_refi_ns
    t.t_rfc_ns
