(** Energy/power coefficients for the memory power model (paper §IV).

    The model has the four components the paper names:
    - {b burst} energy per column read/write — [Vdd x I x t_burst] with the
      technology's array read/write currents (PCRAM: 40 mA / 150 mA,
      reused for STTRAM and MRAM as an upper bound; DRAM uses
      IDD4-class burst currents);
    - {b activation/precharge} energy per row activation — peripheral
      circuitry, identical across technologies;
    - {b background} power — constant standby power of the interface and
      peripheral circuitry, identical across technologies;
    - {b refresh} energy per refresh operation per rank — zero for
      NVRAM. *)

type t = {
  vdd : float;
  burst_read_current_a : float;
  burst_write_current_a : float;
  e_act_pre_nj : float;
  p_background_w : float;
  e_refresh_nj : float;  (** per refresh operation, per rank *)
}

val of_tech : Nvsc_nvram.Technology.t -> org:Org.t -> t

val burst_read_energy_nj : t -> t_burst_ns:float -> float
val burst_write_energy_nj : t -> t_burst_ns:float -> float
