lib/dramsim/address_mapping.ml: Org
