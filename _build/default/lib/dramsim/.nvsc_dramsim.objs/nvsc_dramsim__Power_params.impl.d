lib/dramsim/power_params.ml: Nvsc_nvram Org
