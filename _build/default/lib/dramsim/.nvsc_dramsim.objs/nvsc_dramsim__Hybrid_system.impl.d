lib/dramsim/hybrid_system.ml: Controller Float Nvsc_memtrace Nvsc_nvram Org Stdlib
