lib/dramsim/org.mli: Format
