lib/dramsim/memory_system.ml: Controller List Nvsc_memtrace Nvsc_nvram
