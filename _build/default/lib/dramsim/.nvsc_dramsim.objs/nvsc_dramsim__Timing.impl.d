lib/dramsim/timing.ml: Format Nvsc_nvram Org
