lib/dramsim/controller.mli: Address_mapping Nvsc_memtrace Nvsc_nvram Org
