lib/dramsim/org.ml: Format Nvsc_util Printf
