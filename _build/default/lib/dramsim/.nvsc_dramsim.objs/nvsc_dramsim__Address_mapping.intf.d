lib/dramsim/address_mapping.mli: Org
