lib/dramsim/power_params.mli: Nvsc_nvram Org
