lib/dramsim/timing.mli: Format Nvsc_nvram Org
