lib/dramsim/hybrid_system.mli: Address_mapping Controller Nvsc_memtrace Nvsc_nvram Org
