lib/dramsim/controller.ml: Address_mapping Array Float List Nvsc_memtrace Nvsc_nvram Org Power_params Timing
