module Technology = Nvsc_nvram.Technology

type t = {
  vdd : float;
  burst_read_current_a : float;
  burst_write_current_a : float;
  e_act_pre_nj : float;
  p_background_w : float;
  e_refresh_nj : float;
}

(* DDR3 IDD4-class burst currents at the rank level; NVRAM burst currents
   come from the paper's PCRAM figures (40 mA read / 150 mA write), reused
   for STTRAM and MRAM as a stated upper bound. *)
let of_tech (tech : Technology.t) ~org =
  let ranks = float_of_int org.Org.ranks in
  let base =
    {
      vdd = 1.5;
      burst_read_current_a = 0.250;
      burst_write_current_a = 0.255;
      e_act_pre_nj = 10.0;
      (* Background power of the peripheral/interface circuitry, which the
         paper assumes identical for DRAM and NVRAM (§IV): 56.7 mW per
         powered rank. *)
      p_background_w = 0.0567 *. ranks;
      e_refresh_nj = 122.0;
    }
  in
  if Technology.is_nvram tech then
    {
      base with
      burst_read_current_a = tech.read_current_ma /. 1000.;
      burst_write_current_a = tech.write_current_ma /. 1000.;
      e_refresh_nj = 0.0 (* the paper: refresh power is 0 for NVRAM *);
    }
  else base

let burst_read_energy_nj t ~t_burst_ns =
  t.vdd *. t.burst_read_current_a *. t_burst_ns

let burst_write_energy_nj t ~t_burst_ns =
  t.vdd *. t.burst_write_current_a *. t_burst_ns
