(** Device timing parameters, derived per memory technology.

    Following the paper's §IV assumptions, the peripheral circuitry (row
    buffers, decoders, DIMM interface) is identical across technologies, so
    column access, precharge and bus-burst times are technology-invariant.
    What differs is the cell array: row activation costs the technology's
    read latency (fetching cells into the row buffer) and write recovery
    costs its write latency (committing data back into cells). *)

type t = {
  t_cas_ns : float;  (** column access out of the row buffer (peripheral) *)
  t_rcd_ns : float;  (** activation: cell-array read = tech read latency *)
  t_rp_ns : float;  (** precharge (peripheral) *)
  t_wr_ns : float;  (** write recovery into cells = tech write latency *)
  t_burst_ns : float;  (** one line on the data bus *)
  t_refi_ns : float;  (** mean refresh interval per rank (DRAM only) *)
  t_rfc_ns : float;  (** refresh cycle duration *)
}

val of_tech : Nvsc_nvram.Technology.t -> org:Org.t -> t
(** Burst time follows from the organisation's bus width at 1600 MT/s. *)

val row_miss_penalty_ns : t -> had_open_row:bool -> float
(** Time added before column access when the wrong (or no) row is open:
    [t_rp] (if a row must first be closed) + [t_rcd]. *)

val pp : Format.formatter -> t -> unit
