(** Memory-system organisation (paper Table III).

    Defaults: 2 GB of devices organised as 16 ranks x 16 banks, 1024 rows x
    1024 columns per bank, x4 devices behind a 64-bit JEDEC data bus. *)

type t = {
  ranks : int;
  banks : int;  (** per rank *)
  rows : int;  (** per bank *)
  cols : int;  (** per row *)
  device_width_bits : int;
  bus_width_bits : int;
  line_bytes : int;  (** transaction granularity (cache line) *)
}

val make :
  ?ranks:int ->
  ?banks:int ->
  ?rows:int ->
  ?cols:int ->
  ?device_width_bits:int ->
  ?bus_width_bits:int ->
  ?line_bytes:int ->
  unit ->
  t
(** All parameters must be powers of two; defaults reproduce Table III. *)

val paper : t

val row_bytes : t -> int
(** Bytes per row across the rank: [cols * bus_width/8]. *)

val lines_per_row : t -> int

val capacity_bytes : t -> int
(** Total addressable capacity. *)

val total_banks : t -> int

val pp : Format.formatter -> t -> unit
