type t = {
  ranks : int;
  banks : int;
  rows : int;
  cols : int;
  device_width_bits : int;
  bus_width_bits : int;
  line_bytes : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ?(ranks = 16) ?(banks = 16) ?(rows = 1024) ?(cols = 1024)
    ?(device_width_bits = 4) ?(bus_width_bits = 64) ?(line_bytes = 64) () =
  let check name v =
    if not (is_pow2 v) then
      invalid_arg (Printf.sprintf "Org.make: %s must be a power of two" name)
  in
  check "ranks" ranks;
  check "banks" banks;
  check "rows" rows;
  check "cols" cols;
  check "device_width_bits" device_width_bits;
  check "bus_width_bits" bus_width_bits;
  check "line_bytes" line_bytes;
  let t =
    { ranks; banks; rows; cols; device_width_bits; bus_width_bits; line_bytes }
  in
  if cols * bus_width_bits / 8 < line_bytes then
    invalid_arg "Org.make: a row must hold at least one line";
  t

let paper = make ()

let row_bytes t = t.cols * t.bus_width_bits / 8
let lines_per_row t = row_bytes t / t.line_bytes

let capacity_bytes t = t.ranks * t.banks * t.rows * row_bytes t

let total_banks t = t.ranks * t.banks

let pp fmt t =
  Format.fprintf fmt
    "%a: %d ranks x %d banks, %dx%d rows/cols, x%d devices, %d-bit bus"
    Nvsc_util.Units.pp_bytes (capacity_bytes t) t.ranks t.banks t.rows t.cols
    t.device_width_bits t.bus_width_bits
