(** Memory-system front end (the DRAMSim2 "memory system" module): accepts
    a main-memory trace — produced by the cache hierarchy — and reports
    simulated power for a chosen memory technology. *)

type t

val create :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  tech:Nvsc_nvram.Technology.t ->
  unit ->
  t

val access : t -> Nvsc_memtrace.Access.t -> unit
(** Feed one trace record. *)

val stats : t -> Controller.stats

val tech : t -> Nvsc_nvram.Technology.t

val run_trace :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  tech:Nvsc_nvram.Technology.t ->
  Nvsc_memtrace.Access.t list ->
  Controller.stats
(** One-shot convenience: simulate a whole trace and return the stats. *)

val compare_technologies :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  techs:Nvsc_nvram.Technology.t list ->
  replay:((Nvsc_memtrace.Access.t -> unit) -> unit) ->
  unit ->
  (Nvsc_nvram.Technology.t * Controller.stats) list
(** Replay the same trace into a fresh memory system per technology —
    the Table VI experiment.  [replay sink] must drive [sink] with the
    identical access sequence on every call. *)

val normalized_power :
  (Nvsc_nvram.Technology.t * Controller.stats) list ->
  (Nvsc_nvram.Technology.t * float) list
(** Average power of each entry normalised by the DDR3 entry (which must be
    present). *)
