type epoch_stats = { item : Item.t; reads : int; writes : int }

type t = {
  hybrid : Hybrid_memory.t;
  write_intensity_threshold : float;
  popularity_threshold : float;
  demote_popular_reads : bool;
  mutable epochs : int;
  mutable promotions : int;
  mutable demotions : int;
}

let create ?(write_intensity_threshold = 0.3) ?(popularity_threshold = 0.02)
    ?(demote_popular_reads = false) ~hybrid () =
  { hybrid; write_intensity_threshold; popularity_threshold;
    demote_popular_reads; epochs = 0; promotions = 0; demotions = 0 }

let observe_epoch t stats =
  t.epochs <- t.epochs + 1;
  let total_refs =
    List.fold_left (fun acc s -> acc + s.reads + s.writes) 0 stats
  in
  let share s =
    if total_refs = 0 then 0.
    else float_of_int (s.reads + s.writes) /. float_of_int total_refs
  in
  let write_frac s =
    let n = s.reads + s.writes in
    if n = 0 then 0. else float_of_int s.writes /. float_of_int n
  in
  (* Promote hot writers out of NVRAM first (frees NVRAM room), then
     demote cold read-mostly data from DRAM into the freed space. *)
  List.iter
    (fun s ->
      match Hybrid_memory.location t.hybrid s.item with
      | Some Hybrid_memory.Nvram
        when write_frac s > t.write_intensity_threshold
             && s.reads + s.writes > 0 ->
        if
          Hybrid_memory.free_bytes t.hybrid Hybrid_memory.Dram
          >= s.item.Item.size_bytes
        then begin
          Hybrid_memory.migrate t.hybrid s.item Hybrid_memory.Dram;
          t.promotions <- t.promotions + 1
        end
      | _ -> ())
    stats;
  let demotable s =
    (share s < t.popularity_threshold
    && write_frac s <= t.write_intensity_threshold)
    || (t.demote_popular_reads
       && s.reads + s.writes > 0
       && write_frac s <= 0.02)
  in
  List.iter
    (fun s ->
      match Hybrid_memory.location t.hybrid s.item with
      | Some Hybrid_memory.Dram when demotable s ->
        if
          Hybrid_memory.free_bytes t.hybrid Hybrid_memory.Nvram
          >= s.item.Item.size_bytes
        then begin
          Hybrid_memory.migrate t.hybrid s.item Hybrid_memory.Nvram;
          t.demotions <- t.demotions + 1
        end
      | _ -> ())
    stats

let hybrid t = t.hybrid
let epochs t = t.epochs
let promotions t = t.promotions
let demotions t = t.demotions
