(** Horizontal hybrid DRAM + NVRAM memory model (the paper's §II second
    design: both memories side by side behind the bus, with data movement
    possible between them).

    Holds a placement of items across the two memories, enforces
    capacities, and estimates the energy and performance consequences of a
    placement: standby-power savings scale with the bytes resident in
    NVRAM; each read/write served by NVRAM pays that technology's latency
    and write-energy premium over DRAM. *)

type location = Dram | Nvram

type t

val create :
  dram_bytes:int -> nvram_bytes:int -> tech:Nvsc_nvram.Technology.t -> t
(** [tech] is the NVRAM half's technology; capacities must be positive. *)

val tech : t -> Nvsc_nvram.Technology.t

val place : t -> Item.t -> location -> unit
(** Raises [Invalid_argument] if the item is already placed or the target
    memory lacks capacity. *)

val migrate : t -> Item.t -> location -> unit
(** Move an already-placed item; counts migration traffic.  No-op when the
    item is already there. *)

val location : t -> Item.t -> location option

val used_bytes : t -> location -> int
val free_bytes : t -> location -> int
val items_in : t -> location -> Item.t list

val migrations : t -> int
val migrated_bytes : t -> int

(** Placement quality estimate, normalised against an all-DRAM system. *)
type assessment = {
  nvram_fraction : float;  (** fraction of placed bytes in NVRAM *)
  standby_saving : float;
      (** fraction of total standby power eliminated (NVRAM standby ~ 0) *)
  write_traffic_to_nvram : float;
      (** fraction of all writes that land in NVRAM (endurance and
          performance exposure) *)
  read_traffic_to_nvram : float;
  avg_read_latency_ns : float;  (** traffic-weighted *)
  avg_write_latency_ns : float;
  slowdown_bound : float;
      (** traffic-weighted mean access latency over the all-DRAM mean: an
          upper bound on memory-side slowdown *)
}

val assess : t -> assessment

val pp_assessment : Format.formatter -> assessment -> unit
