lib/placement/dram_cache.mli: Format Nvsc_memtrace Nvsc_nvram
