lib/placement/dram_cache.ml: Format Nvsc_cachesim Nvsc_memtrace Nvsc_nvram Nvsc_util
