lib/placement/item.ml: Format Nvsc_nvram Nvsc_util
