lib/placement/hybrid_memory.mli: Format Item Nvsc_nvram
