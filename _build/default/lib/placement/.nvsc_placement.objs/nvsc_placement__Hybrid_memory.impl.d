lib/placement/hybrid_memory.ml: Format Hashtbl Item List Nvsc_nvram
