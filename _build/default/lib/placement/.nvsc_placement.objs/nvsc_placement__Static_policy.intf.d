lib/placement/static_policy.mli: Hybrid_memory Item Nvsc_nvram
