lib/placement/dynamic_policy.mli: Hybrid_memory Item
