lib/placement/checkpoint.ml: Float Format Nvsc_nvram String
