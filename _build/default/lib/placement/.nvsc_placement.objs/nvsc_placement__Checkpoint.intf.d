lib/placement/checkpoint.mli: Format Nvsc_nvram
