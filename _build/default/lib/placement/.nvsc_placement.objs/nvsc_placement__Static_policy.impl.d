lib/placement/static_policy.ml: Hybrid_memory Item List Nvsc_nvram
