lib/placement/dynamic_policy.ml: Hybrid_memory Item List
