lib/placement/item.mli: Format Nvsc_nvram
