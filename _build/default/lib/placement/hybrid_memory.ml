module Technology = Nvsc_nvram.Technology

type location = Dram | Nvram

type t = {
  dram_bytes : int;
  nvram_bytes : int;
  tech : Technology.t;
  placements : (int, Item.t * location) Hashtbl.t;
  mutable dram_used : int;
  mutable nvram_used : int;
  mutable migrations : int;
  mutable migrated_bytes : int;
}

let create ~dram_bytes ~nvram_bytes ~tech =
  if dram_bytes <= 0 || nvram_bytes <= 0 then
    invalid_arg "Hybrid_memory.create: capacities must be positive";
  if not (Technology.is_nvram tech) then
    invalid_arg "Hybrid_memory.create: tech must be an NVRAM technology";
  {
    dram_bytes;
    nvram_bytes;
    tech;
    placements = Hashtbl.create 256;
    dram_used = 0;
    nvram_used = 0;
    migrations = 0;
    migrated_bytes = 0;
  }

let tech t = t.tech

let capacity t = function Dram -> t.dram_bytes | Nvram -> t.nvram_bytes
let used_bytes t = function Dram -> t.dram_used | Nvram -> t.nvram_used
let free_bytes t loc = capacity t loc - used_bytes t loc

let charge t loc bytes =
  match loc with
  | Dram -> t.dram_used <- t.dram_used + bytes
  | Nvram -> t.nvram_used <- t.nvram_used + bytes

let place t (item : Item.t) loc =
  if Hashtbl.mem t.placements item.id then
    invalid_arg "Hybrid_memory.place: item already placed";
  if free_bytes t loc < item.size_bytes then
    invalid_arg "Hybrid_memory.place: capacity exceeded";
  Hashtbl.add t.placements item.id (item, loc);
  charge t loc item.size_bytes

let location t (item : Item.t) =
  match Hashtbl.find_opt t.placements item.id with
  | Some (_, loc) -> Some loc
  | None -> None

let migrate t (item : Item.t) loc =
  match Hashtbl.find_opt t.placements item.id with
  | None -> invalid_arg "Hybrid_memory.migrate: item not placed"
  | Some (_, current) when current = loc -> ()
  | Some (stored, current) ->
    if free_bytes t loc < item.size_bytes then
      invalid_arg "Hybrid_memory.migrate: capacity exceeded";
    charge t current (-stored.Item.size_bytes);
    charge t loc stored.size_bytes;
    Hashtbl.replace t.placements item.id (stored, loc);
    t.migrations <- t.migrations + 1;
    t.migrated_bytes <- t.migrated_bytes + stored.size_bytes

let items_in t loc =
  Hashtbl.fold
    (fun _ (item, l) acc -> if l = loc then item :: acc else acc)
    t.placements []
  |> List.sort (fun (a : Item.t) b -> compare a.id b.id)

let migrations t = t.migrations
let migrated_bytes t = t.migrated_bytes

type assessment = {
  nvram_fraction : float;
  standby_saving : float;
  write_traffic_to_nvram : float;
  read_traffic_to_nvram : float;
  avg_read_latency_ns : float;
  avg_write_latency_ns : float;
  slowdown_bound : float;
}

let assess t =
  let dram = Technology.get Technology.DDR3 in
  let fold f init =
    Hashtbl.fold (fun _ (item, loc) acc -> f acc item loc) t.placements init
  in
  let total_bytes = fold (fun acc (i : Item.t) _ -> acc + i.size_bytes) 0 in
  let nvram_bytes = used_bytes t Nvram in
  let total_reads = fold (fun acc (i : Item.t) _ -> acc + i.reads) 0 in
  let total_writes = fold (fun acc (i : Item.t) _ -> acc + i.writes) 0 in
  let nv_reads =
    fold (fun acc (i : Item.t) loc -> if loc = Nvram then acc + i.reads else acc) 0
  in
  let nv_writes =
    fold
      (fun acc (i : Item.t) loc -> if loc = Nvram then acc + i.writes else acc)
      0
  in
  let frac num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  let wlat =
    ((frac (total_writes - nv_writes) total_writes *. dram.write_latency_ns)
    +. (frac nv_writes total_writes *. t.tech.Technology.write_latency_ns))
  in
  let rlat =
    ((frac (total_reads - nv_reads) total_reads *. dram.read_latency_ns)
    +. (frac nv_reads total_reads *. t.tech.Technology.read_latency_ns))
  in
  let total_refs = total_reads + total_writes in
  let dram_mean =
    ((frac total_reads total_refs *. dram.read_latency_ns)
    +. (frac total_writes total_refs *. dram.write_latency_ns))
  in
  let hybrid_mean =
    ((frac total_reads total_refs *. rlat) +. (frac total_writes total_refs *. wlat))
  in
  {
    nvram_fraction = frac nvram_bytes total_bytes;
    (* standby power is proportional to resident capacity; the NVRAM
       share of it drops to the technology's relative standby power *)
    standby_saving =
      frac nvram_bytes total_bytes
      *. (1. -. t.tech.Technology.standby_power_rel);
    write_traffic_to_nvram = frac nv_writes total_writes;
    read_traffic_to_nvram = frac nv_reads total_reads;
    avg_read_latency_ns = (if total_reads = 0 then 0. else rlat);
    avg_write_latency_ns = (if total_writes = 0 then 0. else wlat);
    slowdown_bound = (if dram_mean = 0. then 1. else hybrid_mean /. dram_mean);
  }

let pp_assessment fmt a =
  Format.fprintf fmt
    "NVRAM %.1f%% of bytes; standby saving %.1f%%; writes to NVRAM %.1f%%; \
     reads to NVRAM %.1f%%; mean lat R %.1fns W %.1fns; slowdown bound %.2fx"
    (100. *. a.nvram_fraction)
    (100. *. a.standby_saving)
    (100. *. a.write_traffic_to_nvram)
    (100. *. a.read_traffic_to_nvram)
    a.avg_read_latency_ns a.avg_write_latency_ns a.slowdown_bound
