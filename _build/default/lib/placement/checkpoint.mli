(** Checkpointing to NVRAM — the paper's §I motivation quantified.

    "NVRAM could provide substantial bandwidth for checkpointing and ...
    would drastically reduce latency.  This will become increasingly
    important in exascale systems, given the resiliency challenge and
    limited external I/O bandwidth."

    A first-order model: a checkpoint of [size_bytes] drains to a target
    (parallel filesystem over shared I/O, or node-local byte-addressable
    NVRAM over the memory bus) at the target's bandwidth plus a setup
    latency.  Young's approximation then gives the optimal checkpoint
    interval for a machine MTBF, and the resulting fraction of useful
    compute. *)

type target = {
  name : string;
  bandwidth_bytes_per_s : float;
  setup_latency_s : float;
}

val parallel_fs : ?bandwidth_gb_s:float -> unit -> target
(** Shared parallel filesystem; default 1.5 GB/s per node of aggregate
    bandwidth and 5 ms of I/O-stack latency. *)

val nvram_local : Nvsc_nvram.Technology.t -> target
(** Node-local NVRAM behind the memory bus: bandwidth is the lesser of the
    12.8 GB/s bus and the device's cell write bandwidth (64-byte lines per
    write latency across the standard Org's banks); setup latency is
    microseconds (a memory fence, not an I/O stack). *)

val checkpoint_time_s : target -> size_bytes:int -> float

val young_interval_s : checkpoint_time_s:float -> mtbf_s:float -> float
(** Young's approximation, [sqrt (2 * delta * MTBF)]. *)

val efficiency : checkpoint_time_s:float -> mtbf_s:float -> float
(** Useful-compute fraction at Young's interval:
    [1 - delta/T - T/(2*MTBF)], clamped to [\[0, 1\]]. *)

val pp_target : Format.formatter -> target -> unit
