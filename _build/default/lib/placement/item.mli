(** Placement items: the object-level summary a placement policy consumes.

    Deliberately independent of the instrumentation pipeline so policies
    can be driven from any source (our scavenger, a synthetic generator, a
    parsed external profile). *)

type t = {
  id : int;
  name : string;
  size_bytes : int;
  reads : int;  (** main-loop reads *)
  writes : int;
  ref_share : float;  (** fraction of total references *)
}

val rw_ratio : t -> float
val write_share : t -> float
(** The item's share of total traffic that is writes
    ([ref_share * writes/(reads+writes)]). *)

val suitability : t -> Nvsc_nvram.Suitability.metrics

val pp : Format.formatter -> t -> unit
