module Technology = Nvsc_nvram.Technology

type target = {
  name : string;
  bandwidth_bytes_per_s : float;
  setup_latency_s : float;
}

let parallel_fs ?(bandwidth_gb_s = 1.5) () =
  {
    name = "parallel-fs";
    bandwidth_bytes_per_s = bandwidth_gb_s *. 1e9;
    setup_latency_s = 5e-3;
  }

let bus_bytes_per_s = 12.8e9

let nvram_local (tech : Technology.t) =
  if not (Technology.is_nvram tech) then
    invalid_arg "Checkpoint.nvram_local: not an NVRAM technology";
  (* cell write bandwidth: one 64-byte line per write latency per bank *)
  let banks = float_of_int 256 in
  let cell_bw = 64. /. (tech.write_latency_ns *. 1e-9) *. banks in
  {
    name = "nvram-" ^ String.lowercase_ascii tech.name;
    bandwidth_bytes_per_s = Float.min bus_bytes_per_s cell_bw;
    setup_latency_s = 1e-6;
  }

let checkpoint_time_s target ~size_bytes =
  if size_bytes < 0 then invalid_arg "Checkpoint.checkpoint_time_s";
  target.setup_latency_s
  +. (float_of_int size_bytes /. target.bandwidth_bytes_per_s)

let young_interval_s ~checkpoint_time_s ~mtbf_s =
  if checkpoint_time_s <= 0. || mtbf_s <= 0. then
    invalid_arg "Checkpoint.young_interval_s";
  sqrt (2. *. checkpoint_time_s *. mtbf_s)

let efficiency ~checkpoint_time_s ~mtbf_s =
  let t = young_interval_s ~checkpoint_time_s ~mtbf_s in
  let overhead = (checkpoint_time_s /. t) +. (t /. (2. *. mtbf_s)) in
  Float.max 0. (Float.min 1. (1. -. overhead))

let pp_target fmt t =
  Format.fprintf fmt "%s: %.1f GB/s, %gs setup" t.name
    (t.bandwidth_bytes_per_s /. 1e9)
    t.setup_latency_s
