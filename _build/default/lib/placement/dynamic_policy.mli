(** Dynamic, epoch-based page/object migration in the style of Ramos,
    Gorbatov & Bianchini's hardware-driven page placement (the paper's
    reference \[3\], discussed in §II and §VII-C).

    The memory controller is modelled as monitoring the popularity and
    write intensity of each object per epoch (here: per main-loop
    iteration).  At epoch boundaries, performance-critical and frequently
    written objects are migrated to DRAM and cold, read-mostly objects to
    NVRAM.  Migration traffic is charged so the benefit of moving
    temporally NVRAM-friendly data (§VII-C) can be weighed against its
    cost. *)

type epoch_stats = { item : Item.t; reads : int; writes : int }
(** One item's traffic during the epoch just ended ([item.reads]/[writes]
    are its whole-run numbers; the epoch's own counts are here). *)

type t

val create :
  ?write_intensity_threshold:float ->
  ?popularity_threshold:float ->
  ?demote_popular_reads:bool ->
  hybrid:Hybrid_memory.t ->
  unit ->
  t
(** [write_intensity_threshold] (default 0.3): epoch write fraction above
    which an NVRAM-resident object is pulled back to DRAM.
    [popularity_threshold] (default 0.02): epoch reference share below
    which a DRAM-resident object is demoted to NVRAM.
    [demote_popular_reads] (default false): also demote *popular* objects
    whose epoch traffic is essentially read-only — correct for category-2
    devices (STTRAM-class), whose reads cost the same as DRAM's; keep it
    off for category-1 targets, where popular data hurts even when
    read-mostly. *)

val observe_epoch : t -> epoch_stats list -> unit
(** Feed one epoch's per-object counters and perform migrations. *)

val hybrid : t -> Hybrid_memory.t
val epochs : t -> int

val promotions : t -> int
(** Migrations NVRAM -> DRAM performed so far. *)

val demotions : t -> int
(** Migrations DRAM -> NVRAM. *)
