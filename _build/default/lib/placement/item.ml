type t = {
  id : int;
  name : string;
  size_bytes : int;
  reads : int;
  writes : int;
  ref_share : float;
}

let rw_ratio t = Nvsc_util.Stats.ratio t.reads t.writes

let write_share t =
  let total = t.reads + t.writes in
  if total = 0 then 0.
  else t.ref_share *. (float_of_int t.writes /. float_of_int total)

let suitability t =
  {
    Nvsc_nvram.Suitability.reads = t.reads;
    writes = t.writes;
    size_bytes = t.size_bytes;
    ref_rate = t.ref_share;
  }

let pp fmt t =
  Format.fprintf fmt "#%d %s %a r=%d w=%d share=%.4f" t.id t.name
    Nvsc_util.Units.pp_bytes t.size_bytes t.reads t.writes t.ref_share
