type metrics = {
  reads : int;
  writes : int;
  size_bytes : int;
  ref_rate : float;
}

let read_write_ratio m = Nvsc_util.Stats.ratio m.reads m.writes

let is_read_only m = m.reads > 0 && m.writes = 0

type thresholds = {
  friendly_rw_ratio : float;
  candidate_rw_ratio : float;
  hot_write_rate : float;
  min_size_bytes : int;
}

(* hot_write_rate: an object with read/write ratio 50 has at most 1/51 ~
   0.0196 of its traffic as writes, so the guard must sit below that to be
   able to reject the paper's corner case — a high-ratio object that still
   carries a large absolute write flux. *)
let default_thresholds =
  {
    friendly_rw_ratio = 50.;
    candidate_rw_ratio = 10.;
    hot_write_rate = 0.015;
    min_size_bytes = 4096;
  }

type verdict = Nvram_friendly | Nvram_candidate | Dram_preferred

(* Absolute write flux of the object: its share of total traffic that is
   writes. ref_rate covers reads+writes, so scale by the write fraction. *)
let write_flux m =
  let total = m.reads + m.writes in
  if total = 0 then 0.
  else m.ref_rate *. (float_of_int m.writes /. float_of_int total)

let classify_with_reason th ~category m =
  let ratio = read_write_ratio m in
  match category with
  | Technology.Volatile -> (Dram_preferred, "DRAM target: nothing to decide")
  | Technology.Cat3_dram_like ->
    if m.size_bytes >= th.min_size_bytes then
      (Nvram_friendly, "category-3 device performs like DRAM")
    else (Dram_preferred, "object too small to be worth placing")
  | Technology.Cat1_long_read_write | Technology.Cat2_long_write ->
    if m.size_bytes < th.min_size_bytes then
      (Dram_preferred, "object too small to be worth placing")
    else if
      category = Technology.Cat1_long_read_write
      && write_flux m > th.hot_write_rate
    then
      ( Dram_preferred,
        Printf.sprintf
          "write flux %.3f of traffic exceeds category-1 budget %.3f"
          (write_flux m) th.hot_write_rate )
    else if ratio >= th.friendly_rw_ratio then
      (Nvram_friendly, Printf.sprintf "read/write ratio %.1f >= %.1f" ratio
         th.friendly_rw_ratio)
    else if ratio >= th.candidate_rw_ratio then
      (Nvram_candidate, Printf.sprintf "read/write ratio %.1f >= %.1f" ratio
         th.candidate_rw_ratio)
    else
      (Dram_preferred, Printf.sprintf "read/write ratio %.1f too low" ratio)

let classify ?(thresholds = default_thresholds) ~category m =
  fst (classify_with_reason thresholds ~category m)

let explain ?(thresholds = default_thresholds) ~category m =
  classify_with_reason thresholds ~category m

let pp_verdict fmt = function
  | Nvram_friendly -> Format.pp_print_string fmt "NVRAM-friendly"
  | Nvram_candidate -> Format.pp_print_string fmt "NVRAM-candidate"
  | Dram_preferred -> Format.pp_print_string fmt "DRAM-preferred"
