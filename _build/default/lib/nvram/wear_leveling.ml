type scheme =
  | Start_gap of { gap_move_interval : int }
  | Table_based of { swap_interval : int }

type state =
  | Gap of { interval : int; mutable start : int; mutable gap : int }
  | Table of {
      interval : int;
      map : int array; (* logical -> physical *)
      inverse : int array;
      logical_writes : int array;
    }

type t = {
  lines : int;
  state : state;
  wear : int array; (* physical, includes remap copies *)
  mutable writes : int;
  mutable remaps : int;
}

let create scheme ~lines =
  if lines <= 0 then invalid_arg "Wear_leveling.create: lines";
  match scheme with
  | Start_gap { gap_move_interval } ->
    if gap_move_interval <= 0 then
      invalid_arg "Wear_leveling.create: gap_move_interval";
    {
      lines;
      state = Gap { interval = gap_move_interval; start = 0; gap = lines };
      (* physical space has one spare line *)
      wear = Array.make (lines + 1) 0;
      writes = 0;
      remaps = 0;
    }
  | Table_based { swap_interval } ->
    if swap_interval <= 0 then invalid_arg "Wear_leveling.create: swap_interval";
    {
      lines;
      state =
        Table
          {
            interval = swap_interval;
            map = Array.init lines Fun.id;
            inverse = Array.init lines Fun.id;
            logical_writes = Array.make lines 0;
          };
      wear = Array.make lines 0;
      writes = 0;
      remaps = 0;
    }

(* Start-Gap mapping (Qureshi et al., MICRO'09): with N logical lines over
   N+1 physical ones, logical L maps to (start + L) mod N, and the result
   is bumped past the gap when it is >= gap.  Since the pre-bump value is
   in [0, N-1], the bump never wraps and the mapping stays injective. *)
let physical_of_logical t logical =
  if logical < 0 || logical >= t.lines then
    invalid_arg "Wear_leveling.physical_of_logical";
  match t.state with
  | Gap g ->
    let p = (g.start + logical) mod t.lines in
    if p >= g.gap then p + 1 else p
  | Table tb -> tb.map.(logical)

let move_gap t =
  match t.state with
  | Gap g ->
    (* the line just below the gap moves into the gap slot *)
    t.wear.(g.gap) <- t.wear.(g.gap) + 1;
    t.remaps <- t.remaps + 1;
    if g.gap = 0 then begin
      (* a full rotation completed: reset the gap and advance start *)
      g.gap <- t.lines;
      g.start <- (g.start + 1) mod t.lines
    end
    else g.gap <- g.gap - 1
  | Table _ -> ()

let table_swap t =
  match t.state with
  | Gap _ -> ()
  | Table tb ->
    (* Swap the hottest logical line's physical frame with the coldest
       physical frame — but only when the hot frame's wear actually
       exceeds the cold frame's by a margin (Zhou et al.'s segment-swap
       discipline).  Without the guard, a sequential sweep workload makes
       the scheme chase its own tail: each window's "hottest" is the sweep
       front, and the symmetric swap funnels every front onto one frame,
       *amplifying* wear instead of levelling it. *)
    let hot_l = ref 0 and cold_p = ref 0 in
    for l = 1 to t.lines - 1 do
      if tb.logical_writes.(l) > tb.logical_writes.(!hot_l) then hot_l := l
    done;
    for p = 1 to t.lines - 1 do
      if t.wear.(p) < t.wear.(!cold_p) then cold_p := p
    done;
    let hot_p = tb.map.(!hot_l) in
    let wear_gap = Stdlib.max 8 (tb.interval / 8) in
    if hot_p <> !cold_p && t.wear.(hot_p) > t.wear.(!cold_p) + wear_gap then begin
      let cold_l = tb.inverse.(!cold_p) in
      tb.map.(!hot_l) <- !cold_p;
      tb.map.(cold_l) <- hot_p;
      tb.inverse.(!cold_p) <- !hot_l;
      tb.inverse.(hot_p) <- cold_l;
      (* the swap itself writes both frames *)
      t.wear.(hot_p) <- t.wear.(hot_p) + 1;
      t.wear.(!cold_p) <- t.wear.(!cold_p) + 1;
      t.remaps <- t.remaps + 2
    end;
    Array.fill tb.logical_writes 0 t.lines 0

let write t logical =
  let p = physical_of_logical t logical in
  t.wear.(p) <- t.wear.(p) + 1;
  t.writes <- t.writes + 1;
  (match t.state with
  | Gap g ->
    if t.writes mod g.interval = 0 then move_gap t
  | Table tb ->
    tb.logical_writes.(logical) <- tb.logical_writes.(logical) + 1;
    if t.writes mod tb.interval = 0 then table_swap t);
  p

let writes t = t.writes
let remaps t = t.remaps

let extra_write_overhead t =
  if t.writes = 0 then 0. else float_of_int t.remaps /. float_of_int t.writes

let wear t = Array.copy t.wear

let wear_imbalance t =
  let total = Array.fold_left ( + ) 0 t.wear in
  if total = 0 then 0.
  else begin
    let mx = Array.fold_left Stdlib.max 0 t.wear in
    let mean = float_of_int total /. float_of_int (Array.length t.wear) in
    float_of_int mx /. mean
  end
