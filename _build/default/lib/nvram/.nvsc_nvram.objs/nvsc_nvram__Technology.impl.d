lib/nvram/technology.ml: Format List String
