lib/nvram/wear_leveling.mli:
