lib/nvram/endurance.mli: Technology
