lib/nvram/suitability.mli: Format Technology
