lib/nvram/wear_leveling.ml: Array Fun Stdlib
