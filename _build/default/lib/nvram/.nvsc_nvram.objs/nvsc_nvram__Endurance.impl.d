lib/nvram/endurance.ml: Array Technology
