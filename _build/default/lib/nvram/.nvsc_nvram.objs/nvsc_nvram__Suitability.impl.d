lib/nvram/suitability.ml: Format Nvsc_util Printf Technology
