lib/nvram/technology.mli: Format
