(** NVRAM-placement suitability on the paper's three metrics (§II):

    1. {b read/write ratio} — higher means less write-intensive, favoured
       by NVRAM and especially by category-2 devices;
    2. {b memory size} — static power savings scale with the bytes moved
       to NVRAM, so bigger objects matter more;
    3. {b reference rate} — complements the ratio: an object with a high
       read/write ratio can still carry a large {e absolute} write flux,
       which category-1 devices cannot afford.

    The classification below encodes the management policy of §II: place as
    much data as possible in NVRAM while steering performance-critical,
    frequently-written data away from it. *)

type metrics = {
  reads : int;
  writes : int;
  size_bytes : int;
  ref_rate : float;
      (** references to the object per main-loop iteration, normalised by
          the iteration's total references (so it is a fraction in [0,1]
          of the application's traffic) *)
}

val read_write_ratio : metrics -> float
(** {!Nvsc_util.Stats.ratio} convention: [infinity] for read-only objects
    with at least one read, [0.] for untouched ones. *)

val is_read_only : metrics -> bool
(** At least one read and zero writes. *)

(** Thresholds steering the verdict; see {!default_thresholds}. *)
type thresholds = {
  friendly_rw_ratio : float;
      (** ratio above which an object is NVRAM-friendly (paper highlights
          objects with ratio > 50, and > 10 as secondary candidates) *)
  candidate_rw_ratio : float;
  hot_write_rate : float;
      (** fraction of total traffic that, if carried as *writes* by one
          object, disqualifies it from category-1 NVRAM *)
  min_size_bytes : int;
      (** objects smaller than this are not worth migrating *)
}

val default_thresholds : thresholds

type verdict =
  | Nvram_friendly  (** place in NVRAM outright *)
  | Nvram_candidate
      (** favourable ratio; worth placing on category-2 devices or under a
          dynamic policy *)
  | Dram_preferred  (** keep in DRAM *)

val classify :
  ?thresholds:thresholds -> category:Technology.category -> metrics -> verdict
(** Verdict for placing the object on a device of the given category.
    Category-1 devices additionally reject objects whose absolute write
    flux exceeds [hot_write_rate]; category-3 devices accept anything of
    sufficient size; [Volatile] always answers [Dram_preferred]. *)

val explain :
  ?thresholds:thresholds ->
  category:Technology.category ->
  metrics ->
  verdict * string
(** Verdict plus a one-line human-readable justification. *)

val pp_verdict : Format.formatter -> verdict -> unit
