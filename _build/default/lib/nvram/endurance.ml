type t = {
  tech : Technology.t;
  wear : int array;
  mutable total : int;
  mutable max_wear : int;
}

let create ~tech ~lines =
  if lines <= 0 then invalid_arg "Endurance.create: lines must be positive";
  { tech; wear = Array.make lines 0; total = 0; max_wear = 0 }

let record_writes t ~line ~n =
  if line < 0 || line >= Array.length t.wear then
    invalid_arg "Endurance.record_writes: line out of range";
  if n < 0 then invalid_arg "Endurance.record_writes: negative count";
  t.wear.(line) <- t.wear.(line) + n;
  t.total <- t.total + n;
  if t.wear.(line) > t.max_wear then t.max_wear <- t.wear.(line)

let record_write t ~line = record_writes t ~line ~n:1

let writes_to t ~line =
  if line < 0 || line >= Array.length t.wear then
    invalid_arg "Endurance.writes_to: line out of range";
  t.wear.(line)

let total_writes t = t.total
let max_wear t = t.max_wear

let wear_imbalance t =
  if t.total = 0 then 0.
  else begin
    let mean = float_of_int t.total /. float_of_int (Array.length t.wear) in
    float_of_int t.max_wear /. mean
  end

let worn_out_lines t =
  let limit = t.tech.Technology.write_endurance in
  Array.fold_left
    (fun acc w -> if float_of_int w > limit then acc + 1 else acc)
    0 t.wear

let lifetime_seconds t ~write_rate_per_s ~wear_levelled =
  if write_rate_per_s <= 0. then infinity
  else begin
    let endurance = t.tech.Technology.write_endurance in
    let lines = float_of_int (Array.length t.wear) in
    if wear_levelled then endurance *. lines /. write_rate_per_s
    else begin
      (* Without levelling the hottest line fails first: scale by the
         observed share of traffic it absorbs (uniform if no history). *)
      let hot_share =
        if t.total = 0 then 1. /. lines
        else float_of_int t.max_wear /. float_of_int t.total
      in
      endurance /. (write_rate_per_s *. hot_share)
    end
  end

let lifetime_years t ~write_rate_per_s ~wear_levelled =
  lifetime_seconds t ~write_rate_per_s ~wear_levelled /. (365.25 *. 86400.)
