(** Memory-technology models (paper §II and Table IV).

    The paper divides NVRAMs into three categories:
    - category 1: long read {e and} write latencies (PCRAM, Flash);
    - category 2: long write latency, DRAM-like reads (STTRAM);
    - category 3: performance close to DRAM (RRAM) — immature, out of the
      paper's scope but modelled for completeness.

    Latencies are the paper's Table IV values.  Cell currents follow the
    paper's §IV upper-bound assumptions: PCRAM set current is taken equal
    to its reset current, and STTRAM/MRAM reuse PCRAM's read/write currents
    (40 mA / 150 mA) because published figures were unavailable. *)

type tech = DDR3 | PCRAM | STTRAM | MRAM | RRAM | Flash

type category =
  | Cat1_long_read_write
  | Cat2_long_write
  | Cat3_dram_like
  | Volatile  (** DRAM itself *)

type t = {
  tech : tech;
  name : string;
  category : category;
  read_latency_ns : float;
  write_latency_ns : float;
  perf_sim_latency_ns : float;
      (** single latency used by the performance simulator, which does not
          distinguish reads from writes (paper §V takes the write
          latency, making the result a performance lower bound) *)
  read_current_ma : float;
  write_current_ma : float;
  needs_refresh : bool;
  standby_power_rel : float;
      (** background (standby) power relative to DRAM's; 0 for NVRAM whose
          cells neither leak nor refresh *)
  write_endurance : float;  (** writes per cell before wear-out *)
  non_volatile : bool;
}

val get : tech -> t

val all : t list
(** Every modelled technology, DDR3 first. *)

val paper_set : t list
(** The four technologies of the paper's evaluation: DDR3, PCRAM, STTRAM,
    MRAM. *)

val of_string : string -> t option
(** Case-insensitive name lookup ("ddr3", "pcram", ...). *)

val is_nvram : t -> bool

val pp : Format.formatter -> t -> unit
val pp_category : Format.formatter -> category -> unit
