(** Wear-levelling schemes for category-1 NVRAM.

    The paper's §II requires that category-1 devices be managed "such that
    performance and device endurance is within acceptable constraints".
    This module provides the two classic address-remapping schemes used for
    PCRAM main memories, so the endurance model can be driven with and
    without levelling:

    - {b Start-Gap} (Qureshi et al., MICRO'09): one spare line and two
      registers ([start], [gap]); every [gap_move_interval] writes the gap
      line moves by one, slowly rotating the logical-to-physical mapping
      with near-zero metadata;
    - {b table-based} remapping: an explicit indirection table with
      hottest-to-coldest swaps every [swap_interval] writes, guarded by a
      wear-gap threshold (Zhou et al.'s segment-swap discipline) so that
      sequential sweeps do not trick the scheme into concentrating wear —
      stronger levelling under skew at the cost of table storage and swap
      traffic. *)

type scheme = Start_gap of { gap_move_interval : int } | Table_based of { swap_interval : int }

type t

val create : scheme -> lines:int -> t
(** [lines] is the number of logical lines; physical capacity is
    [lines + 1] for Start-Gap (the spare) and [lines] for table-based. *)

val physical_of_logical : t -> int -> int
(** Current mapping.  Raises [Invalid_argument] out of range. *)

val write : t -> int -> int
(** [write t logical] records a write to [logical], returns the physical
    line that absorbed it, and advances the scheme (gap movement or hot/cold
    swap) when its interval elapses. *)

val writes : t -> int
val remaps : t -> int
(** Gap movements or swaps performed so far — each costs one extra line
    copy of device traffic. *)

val extra_write_overhead : t -> float
(** Device writes added by the scheme per application write,
    [remaps / writes]; e.g. Start-Gap with interval 100 adds ~1 %. *)

val wear : t -> int array
(** Physical per-line write counts (including remap copies). *)

val wear_imbalance : t -> float
(** max/mean of physical wear; 0 when nothing written.  The point of the
    module: under a skewed write stream this stays near 1 with levelling
    and grows unboundedly without. *)
