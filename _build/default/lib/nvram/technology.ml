type tech = DDR3 | PCRAM | STTRAM | MRAM | RRAM | Flash

type category =
  | Cat1_long_read_write
  | Cat2_long_write
  | Cat3_dram_like
  | Volatile

type t = {
  tech : tech;
  name : string;
  category : category;
  read_latency_ns : float;
  write_latency_ns : float;
  perf_sim_latency_ns : float;
  read_current_ma : float;
  write_current_ma : float;
  needs_refresh : bool;
  standby_power_rel : float;
  write_endurance : float;
  non_volatile : bool;
}

(* PCRAM currents from the paper (§IV): 40 mA read, 150 mA write; the same
   values stand in for STTRAM and MRAM as an upper bound. DRAM currents are
   chosen so that NVRAM burst energy per bit exceeds DRAM's (the paper notes
   PCRAM reset energy/bit is ~50x DRAM's write energy/bit at the cell level;
   at array granularity the peripheral circuitry dominates, so the
   effective controller-visible ratio is far smaller). *)
let ddr3 =
  {
    tech = DDR3;
    name = "DDR3";
    category = Volatile;
    read_latency_ns = 10.;
    write_latency_ns = 10.;
    perf_sim_latency_ns = 10.;
    read_current_ma = 25.;
    write_current_ma = 30.;
    needs_refresh = true;
    standby_power_rel = 1.0;
    write_endurance = 1e16;
    non_volatile = false;
  }

let pcram =
  {
    tech = PCRAM;
    name = "PCRAM";
    category = Cat1_long_read_write;
    read_latency_ns = 20.;
    write_latency_ns = 100.;
    perf_sim_latency_ns = 100.;
    read_current_ma = 40.;
    write_current_ma = 150.;
    needs_refresh = false;
    standby_power_rel = 0.;
    write_endurance = 10. ** 8.8 (* mid of the paper's 1e8..1e9.7 range *);
    non_volatile = true;
  }

let sttram =
  {
    tech = STTRAM;
    name = "STTRAM";
    category = Cat2_long_write;
    read_latency_ns = 10.;
    write_latency_ns = 20.;
    perf_sim_latency_ns = 20.;
    read_current_ma = 40.;
    write_current_ma = 150.;
    needs_refresh = false;
    standby_power_rel = 0.;
    write_endurance = 1e15;
    non_volatile = true;
  }

let mram =
  {
    tech = MRAM;
    name = "MRAM";
    category = Cat2_long_write;
    read_latency_ns = 12.;
    write_latency_ns = 12.;
    perf_sim_latency_ns = 12.;
    read_current_ma = 40.;
    write_current_ma = 150.;
    needs_refresh = false;
    standby_power_rel = 0.;
    write_endurance = 1e15;
    non_volatile = true;
  }

let rram =
  {
    tech = RRAM;
    name = "RRAM";
    category = Cat3_dram_like;
    read_latency_ns = 10.;
    write_latency_ns = 10.;
    perf_sim_latency_ns = 10.;
    read_current_ma = 30.;
    write_current_ma = 60.;
    needs_refresh = false;
    standby_power_rel = 0.;
    write_endurance = 1e11;
    non_volatile = true;
  }

let flash =
  {
    tech = Flash;
    name = "Flash";
    category = Cat1_long_read_write;
    read_latency_ns = 25_000.;
    write_latency_ns = 200_000.;
    perf_sim_latency_ns = 200_000.;
    read_current_ma = 20.;
    write_current_ma = 50.;
    needs_refresh = false;
    standby_power_rel = 0.;
    write_endurance = 1e5;
    non_volatile = true;
  }

let get = function
  | DDR3 -> ddr3
  | PCRAM -> pcram
  | STTRAM -> sttram
  | MRAM -> mram
  | RRAM -> rram
  | Flash -> flash

let all = [ ddr3; pcram; sttram; mram; rram; flash ]
let paper_set = [ ddr3; pcram; sttram; mram ]

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun t -> String.lowercase_ascii t.name = s) all

let is_nvram t = t.non_volatile

let pp_category fmt = function
  | Cat1_long_read_write -> Format.pp_print_string fmt "category 1 (long R/W)"
  | Cat2_long_write -> Format.pp_print_string fmt "category 2 (long W)"
  | Cat3_dram_like -> Format.pp_print_string fmt "category 3 (DRAM-like)"
  | Volatile -> Format.pp_print_string fmt "volatile DRAM"

let pp fmt t =
  Format.fprintf fmt "%s (%a): read %.0fns write %.0fns endurance %.1e" t.name
    pp_category t.category t.read_latency_ns t.write_latency_ns
    t.write_endurance
