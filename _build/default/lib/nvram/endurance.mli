(** Write-endurance accounting.

    The paper's third NVRAM limitation (§II) is bounded write endurance:
    PCRAM cells survive ~10^8–10^9.7 writes versus DRAM's 10^16.  This
    module tracks per-line write wear for a device region and estimates
    device lifetime under an observed write rate, with and without ideal
    wear-levelling. *)

type t

val create : tech:Technology.t -> lines:int -> t
(** Track [lines] equally-sized wear units of the given technology. *)

val record_write : t -> line:int -> unit
(** Wear one unit.  Out-of-range lines are rejected. *)

val record_writes : t -> line:int -> n:int -> unit

val writes_to : t -> line:int -> int
val total_writes : t -> int

val max_wear : t -> int
(** Highest per-line write count. *)

val wear_imbalance : t -> float
(** [max wear / mean wear]; 1.0 is perfectly even, large values mean a few
    hot lines will fail early.  0 when nothing was written. *)

val worn_out_lines : t -> int
(** Lines whose write count already exceeds the technology's endurance. *)

val lifetime_seconds : t -> write_rate_per_s:float -> wear_levelled:bool -> float
(** Estimated time to first cell failure given a sustained aggregate write
    rate (writes/second spread over the device).

    With [wear_levelled] the whole device absorbs
    [endurance * lines] writes before failure; without it, failure happens
    when the currently hottest line (by observed distribution) reaches the
    endurance limit.  [infinity] when the write rate is 0. *)

val lifetime_years : t -> write_rate_per_s:float -> wear_levelled:bool -> float
