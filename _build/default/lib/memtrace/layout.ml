type kind = Global | Heap | Stack

let kind_to_string = function
  | Global -> "global"
  | Heap -> "heap"
  | Stack -> "stack"

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let global_base = 0x0800_0000
let global_limit = 0x4000_0000

let heap_base = 0x4000_0000
let heap_limit = 0x7000_0000

let stack_limit = 0x7000_0000
let stack_top = 0x7fff_0000

let classify addr =
  if addr >= global_base && addr < global_limit then Some Global
  else if addr >= heap_base && addr < heap_limit then Some Heap
  else if addr > stack_limit && addr <= stack_top then Some Stack
  else None

let word = 8
