type phase = Pre | Main of int | Post

type t = {
  id : int;
  name : string;
  kind : Layout.kind;
  base : int;
  size : int;
  signature : string;
  callstack : string list;
  alloc_phase : phase;
  mutable live : bool;
}

let make ~id ~name ~kind ~base ~size ?signature ?(callstack = [])
    ?(alloc_phase = Pre) () =
  if size <= 0 then invalid_arg "Mem_object.make: size must be positive";
  let signature = match signature with Some s -> s | None -> name in
  { id; name; kind; base; size; signature; callstack; alloc_phase; live = true }

let contains t addr = addr >= t.base && addr < t.base + t.size

let overlaps t ~base ~size = base < t.base + t.size && t.base < base + size

let last_byte t = t.base + t.size - 1

let merge_overlapping a b ~id =
  if a.kind <> Layout.Global || b.kind <> Layout.Global then
    invalid_arg "Mem_object.merge_overlapping: only global objects merge";
  let base = Stdlib.min a.base b.base in
  let stop = Stdlib.max (a.base + a.size) (b.base + b.size) in
  let name = a.name ^ "+" ^ b.name in
  {
    id;
    name;
    kind = Layout.Global;
    base;
    size = stop - base;
    signature = name;
    callstack = [];
    alloc_phase = a.alloc_phase;
    live = true;
  }

let pp fmt t =
  Format.fprintf fmt "#%d %s %a [0x%x,+%d)%s" t.id t.name Layout.pp_kind
    t.kind t.base t.size
    (if t.live then "" else " (dead)")
