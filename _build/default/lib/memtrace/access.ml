type op = Read | Write

type t = { addr : int; size : int; op : op }

let read ~addr ~size = { addr; size; op = Read }
let write ~addr ~size = { addr; size; op = Write }

let is_read t = t.op = Read
let is_write t = t.op = Write

let last_byte t = t.addr + t.size - 1

let pp fmt t =
  Format.fprintf fmt "%c 0x%x+%d"
    (match t.op with Read -> 'R' | Write -> 'W')
    t.addr t.size
