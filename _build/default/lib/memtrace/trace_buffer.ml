type t = {
  buf : Access.t array;
  mutable len : int;
  flush_fn : Access.t array -> int -> unit;
  mutable pushed : int;
  mutable flushes : int;
}

let dummy = Access.read ~addr:0 ~size:1

let create ?(capacity = 65536) ~flush () =
  if capacity <= 0 then invalid_arg "Trace_buffer.create: capacity";
  { buf = Array.make capacity dummy; len = 0; flush_fn = flush;
    pushed = 0; flushes = 0 }

let flush t =
  if t.len > 0 then begin
    t.flush_fn t.buf t.len;
    t.flushes <- t.flushes + 1;
    t.len <- 0
  end

let push t access =
  t.buf.(t.len) <- access;
  t.len <- t.len + 1;
  t.pushed <- t.pushed + 1;
  if t.len = Array.length t.buf then flush t

let pushed t = t.pushed
let flushes t = t.flushes
