(** Synthetic access-stream generators.

    Controlled traffic for calibrating and testing the simulators without
    running an application: sequential sweeps, strided walks, hot-set
    mixtures and Zipf-popularity streams (the locality spectrum HPC traces
    inhabit, cf. the paper's reference \[13\] on low locality in real
    workloads).  All generators are deterministic in their seed. *)

val sequential : ?start:int -> ?line_bytes:int -> n:int -> unit -> Access.t list
(** [n] line-sized reads at consecutive line addresses. *)

val strided :
  ?start:int -> ?line_bytes:int -> stride_lines:int -> n:int -> unit ->
  Access.t list
(** Reads separated by [stride_lines] lines. *)

val hot_cold :
  seed:int ->
  hot_fraction:float ->
  hot_lines:int ->
  cold_lines:int ->
  write_fraction:float ->
  n:int ->
  unit ->
  Access.t list
(** Each access: with probability [hot_fraction] a uniform line of the hot
    set, otherwise a uniform line of the cold set (placed after the hot
    set); with probability [write_fraction] it is a write. *)

val zipf :
  seed:int -> ?exponent:float -> lines:int -> write_fraction:float ->
  n:int -> unit -> Access.t list
(** Zipf-popularity line selection over [lines] (default exponent 1.0),
    approximated by inverse-CDF sampling over the harmonic weights. *)

val interleave : Access.t list list -> Access.t list
(** Round-robin interleave several streams (models concurrent array
    sweeps); streams of different lengths are drained as they run out. *)
