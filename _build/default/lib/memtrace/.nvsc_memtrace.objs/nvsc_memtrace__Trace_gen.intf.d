lib/memtrace/trace_gen.mli: Access
