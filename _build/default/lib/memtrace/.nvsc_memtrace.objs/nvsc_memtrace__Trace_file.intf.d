lib/memtrace/trace_file.mli: Access Trace_log
