lib/memtrace/mem_object.ml: Format Layout Stdlib
