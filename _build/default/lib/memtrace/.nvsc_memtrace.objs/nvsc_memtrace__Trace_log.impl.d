lib/memtrace/trace_log.ml: Access Array
