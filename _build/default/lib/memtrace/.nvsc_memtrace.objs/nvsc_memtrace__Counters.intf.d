lib/memtrace/counters.mli: Access
