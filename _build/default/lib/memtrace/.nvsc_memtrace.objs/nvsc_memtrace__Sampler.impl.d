lib/memtrace/sampler.ml: Access
