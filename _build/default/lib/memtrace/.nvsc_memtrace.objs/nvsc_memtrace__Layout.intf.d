lib/memtrace/layout.mli: Format
