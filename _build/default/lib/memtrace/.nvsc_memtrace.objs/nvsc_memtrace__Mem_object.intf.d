lib/memtrace/mem_object.mli: Format Layout
