lib/memtrace/trace_file.ml: Access Fun List Printf String Trace_log
