lib/memtrace/trace_gen.ml: Access Array List Nvsc_util
