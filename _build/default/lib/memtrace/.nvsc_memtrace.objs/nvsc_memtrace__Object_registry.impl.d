lib/memtrace/object_registry.ml: Array Hashtbl Layout List Mem_object Stdlib
