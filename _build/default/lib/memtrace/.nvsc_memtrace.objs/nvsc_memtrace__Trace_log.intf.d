lib/memtrace/trace_log.mli: Access
