lib/memtrace/counters.ml: Access Array Hashtbl List Stdlib
