lib/memtrace/shadow_stack.mli:
