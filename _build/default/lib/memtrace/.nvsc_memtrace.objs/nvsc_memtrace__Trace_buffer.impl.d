lib/memtrace/trace_buffer.ml: Access Array
