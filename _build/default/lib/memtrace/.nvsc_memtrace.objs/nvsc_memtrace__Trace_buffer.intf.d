lib/memtrace/trace_buffer.mli: Access
