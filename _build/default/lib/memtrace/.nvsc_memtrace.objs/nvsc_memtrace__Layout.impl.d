lib/memtrace/layout.ml: Format
