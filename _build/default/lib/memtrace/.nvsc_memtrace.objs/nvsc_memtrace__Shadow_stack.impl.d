lib/memtrace/shadow_stack.ml: Layout
