lib/memtrace/access.ml: Format
