lib/memtrace/object_registry.mli: Mem_object
