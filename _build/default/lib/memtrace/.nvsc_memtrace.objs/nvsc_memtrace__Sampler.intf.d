lib/memtrace/sampler.mli: Access
