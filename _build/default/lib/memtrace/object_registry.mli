(** Address-to-object resolution with the paper's performance scheme.

    NV-SCAVENGER must map every effective address to the memory object it
    falls in.  §III-D describes two optimisations reproduced here:

    - the address space is divided into buckets and objects are distributed
      into the buckets covering their range; lookup masks the address to
      pick a bucket and scans only that bucket.  When objects cluster into
      few buckets the space is re-divided (here: the bucket width shrinks
      and the index is rebuilt);
    - a small LRU software cache of recently-resolved objects is consulted
      before the bucket index.

    Heap objects allocated at the same allocation site with the same
    signature are identified as the *same* object across (de)allocations
    (§III-B), so the registry also resolves signatures to existing
    objects. *)

type t

val create : ?bucket_bits:int -> ?cache_slots:int -> unit -> t
(** [bucket_bits] is the initial log2 of the bucket width in bytes
    (default 16, i.e. 64 KiB buckets); [cache_slots] the LRU cache size
    (default 8). *)

val register : t -> Mem_object.t -> Mem_object.t
(** Index an object.  For [Global] objects that overlap an already
    registered global, the existing object(s) and the new one are replaced
    by their merged union (common-block handling) and the union is
    returned.  Otherwise the argument is returned unchanged. *)

val find_by_signature : t -> string -> Mem_object.t option
(** Resolve a (live or dead) object by identity signature. *)

val deallocate : t -> Mem_object.t -> unit
(** Mark dead (the index entry remains so late references can still be
    attributed, mirroring the paper's dead-flag scheme). *)

val revive : t -> Mem_object.t -> unit
(** Mark live again: a heap object re-allocated with the same signature. *)

val lookup : t -> int -> Mem_object.t option
(** [lookup t addr] resolves an address, preferring live objects over dead
    ones that share the address. *)

val objects : t -> Mem_object.t list
(** All registered objects, in registration order (merged globals replace
    their components). *)

val object_count : t -> int

val bucket_bits : t -> int
(** Current bucket width (log2); exposed for tests of the rebalancing
    behaviour. *)

val cache_hit_rate : t -> float
(** Fraction of lookups served by the LRU software cache. *)

val lookup_scans : t -> int
(** Total objects scanned in bucket lists across all lookups (an efficiency
    metric used by the instrumentation-performance bench). *)
