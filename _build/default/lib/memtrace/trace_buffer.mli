(** Batched reference processing (paper §III-D).

    NV-SCAVENGER places raw references in a memory buffer and processes the
    whole buffer at once when it fills, amortising per-access bookkeeping
    and keeping the analysis out of the traced program's cache-hot path.
    The same structure is used here between the instrumented applications
    and the analysis sinks. *)

type t

val create : ?capacity:int -> flush:(Access.t array -> int -> unit) -> unit -> t
(** [flush batch n] receives the buffer array and the number of valid
    entries; it must not retain the array.  [capacity] defaults to
    65536. *)

val push : t -> Access.t -> unit
(** Append a reference; triggers a flush when the buffer fills. *)

val flush : t -> unit
(** Force processing of any buffered references (call at iteration
    boundaries so per-iteration counters are exact). *)

val pushed : t -> int
(** Total references pushed so far. *)

val flushes : t -> int
(** Number of flush callbacks performed (including forced ones that had
    data). *)
