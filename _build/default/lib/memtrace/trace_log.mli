(** In-memory recording of an access stream for later replay.

    Table VI replays one cache-filtered main-memory trace into a fresh
    memory-system simulation per technology; this compact log (two int
    arrays, no per-record allocation) is the carrier.  NV-SCAVENGER itself
    computes statistics on the fly and never stores raw traces (§III-D) —
    the log exists for the *simulator* hand-off, mirroring the paper's
    "trace files" between the tool and DRAMSim2. *)

type t

val create : ?initial_capacity:int -> unit -> t

val record : t -> Access.t -> unit

val length : t -> int

val get : t -> int -> Access.t

val replay : t -> (Access.t -> unit) -> unit
(** Deliver every recorded access, in order. *)

val reads : t -> int
val writes : t -> int

val clear : t -> unit
