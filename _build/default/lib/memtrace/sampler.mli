(** Periodic reference sampling — the optimisation the paper *rejects*.

    §III-D: "sampling is not applicable to our case study, because we
    intend to establish a memory access panorama for all memory objects.
    Sampling can lead to the loss of access information for many memory
    objects, which in turn causes improper data placement."

    This module implements the rejected design (SimPoint-style periodic
    windows) so the claim can be measured: run the same application with
    and without sampling and compare how many memory objects are observed
    and how far their read/write ratios drift.  See the
    [sampling-ablation] test and bench. *)

type t

val create :
  period:int -> sample_length:int -> sink:(Access.t -> unit) -> t
(** Out of every [period] references, the first [sample_length] are
    forwarded to [sink] and the rest dropped.  Requires
    [0 < sample_length <= period]. *)

val push : t -> Access.t -> unit

val seen : t -> int
(** Total references pushed. *)

val forwarded : t -> int
val dropped : t -> int

val sampling_ratio : t -> float
(** [forwarded / seen]; 0 when idle. *)
