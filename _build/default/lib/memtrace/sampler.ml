type t = {
  period : int;
  sample_length : int;
  sink : Access.t -> unit;
  mutable position : int;
  mutable seen : int;
  mutable forwarded : int;
}

let create ~period ~sample_length ~sink =
  if period <= 0 || sample_length <= 0 || sample_length > period then
    invalid_arg "Sampler.create: need 0 < sample_length <= period";
  { period; sample_length; sink; position = 0; seen = 0; forwarded = 0 }

let push t access =
  t.seen <- t.seen + 1;
  if t.position < t.sample_length then begin
    t.forwarded <- t.forwarded + 1;
    t.sink access
  end;
  t.position <- (t.position + 1) mod t.period

let seen t = t.seen
let forwarded t = t.forwarded
let dropped t = t.seen - t.forwarded

let sampling_ratio t =
  if t.seen = 0 then 0. else float_of_int t.forwarded /. float_of_int t.seen
