(** Application memory objects: the unit of NVRAM-placement analysis.

    A memory object is a named, contiguous address range in one of the
    three regions — a global symbol (or merged Fortran common block), a
    heap allocation identified by its allocation-site signature, or a
    routine's stack frame.  The paper analyses access patterns at exactly
    this granularity (§III). *)

type phase = Pre | Main of int | Post

type t = {
  id : int;
  name : string;  (** symbol, routine, or allocation-site label *)
  kind : Layout.kind;
  base : int;
  size : int;  (** bytes *)
  signature : string;
      (** identity key: for heap objects the callsite + size + callstack
          (paper §III-B); for globals the symbol name; for stack frames the
          routine's starting address rendered as its name. *)
  callstack : string list;  (** outermost first; empty for globals *)
  alloc_phase : phase;
  mutable live : bool;
}

val make :
  id:int ->
  name:string ->
  kind:Layout.kind ->
  base:int ->
  size:int ->
  ?signature:string ->
  ?callstack:string list ->
  ?alloc_phase:phase ->
  unit ->
  t
(** [signature] defaults to [name]; [alloc_phase] defaults to [Pre]. *)

val contains : t -> int -> bool
(** [contains t addr] is true when [addr] falls in [\[base, base+size)]. *)

val overlaps : t -> base:int -> size:int -> bool
(** Ranges intersect. *)

val last_byte : t -> int

val merge_overlapping : t -> t -> id:int -> t
(** [merge_overlapping a b ~id] is the union object the paper builds for
    Fortran common blocks viewed under different names: its range is the
    convex hull of both ranges and its name combines both names.  Requires
    both objects to be [Global]. *)

val pp : Format.formatter -> t -> unit
