(** Memory-reference records.

    An access is what PIN hands NV-SCAVENGER per instrumented instruction:
    an effective address, a size in bytes, and whether it was a load or a
    store.  Addresses here are synthetic (assigned by {!Layout} /
    {!Nvsc_appkit}) but behave exactly like virtual addresses for every
    consumer: object attribution, cache simulation and the memory-system
    simulators. *)

type op = Read | Write

type t = { addr : int; size : int; op : op }

val read : addr:int -> size:int -> t
val write : addr:int -> size:int -> t

val is_read : t -> bool
val is_write : t -> bool

val last_byte : t -> int
(** Address of the final byte touched, [addr + size - 1]. *)

val pp : Format.formatter -> t -> unit
