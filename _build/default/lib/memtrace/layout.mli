(** Synthetic virtual-address-space layout.

    Mirrors the classic Unix process layout the paper's tool assumes: global
    data low, heap above it growing up, stack high growing down.  Region
    classification of a raw address is a range test, exactly as
    NV-SCAVENGER classifies references against the stack pointer and the
    known segment bounds. *)

type kind = Global | Heap | Stack

val pp_kind : Format.formatter -> kind -> unit
val kind_to_string : kind -> string

val global_base : int
(** Base of the global data segment. *)

val global_limit : int
(** Exclusive upper bound of the global segment. *)

val heap_base : int
val heap_limit : int

val stack_top : int
(** Highest stack address; the stack grows downward from here. *)

val stack_limit : int
(** Lowest address the stack may reach (exclusive lower bound). *)

val classify : int -> kind option
(** [classify addr] returns the region containing [addr], or [None] for an
    unmapped address. *)

val word : int
(** Natural word size in bytes (8, matching the x86-64 doubles the target
    applications traffic in). *)
