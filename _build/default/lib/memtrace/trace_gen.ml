module Rng = Nvsc_util.Rng

let sequential ?(start = 0) ?(line_bytes = 64) ~n () =
  List.init n (fun i -> Access.read ~addr:((start + i) * line_bytes) ~size:line_bytes)

let strided ?(start = 0) ?(line_bytes = 64) ~stride_lines ~n () =
  if stride_lines <= 0 then invalid_arg "Trace_gen.strided: stride";
  List.init n (fun i ->
      Access.read ~addr:((start + (i * stride_lines)) * line_bytes) ~size:line_bytes)

let op_of rng write_fraction addr =
  if Rng.bernoulli rng write_fraction then Access.write ~addr ~size:64
  else Access.read ~addr ~size:64

let hot_cold ~seed ~hot_fraction ~hot_lines ~cold_lines ~write_fraction ~n ()
    =
  if hot_lines <= 0 || cold_lines <= 0 then invalid_arg "Trace_gen.hot_cold";
  let rng = Rng.of_int seed in
  List.init n (fun _ ->
      let line =
        if Rng.bernoulli rng hot_fraction then Rng.int rng hot_lines
        else hot_lines + Rng.int rng cold_lines
      in
      op_of rng write_fraction (line * 64))

let zipf ~seed ?(exponent = 1.0) ~lines ~write_fraction ~n () =
  if lines <= 0 then invalid_arg "Trace_gen.zipf";
  let rng = Rng.of_int seed in
  (* cumulative harmonic weights for inverse-CDF sampling *)
  let cum = Array.make lines 0. in
  let acc = ref 0. in
  for i = 0 to lines - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** exponent));
    cum.(i) <- !acc
  done;
  let total = !acc in
  let sample () =
    let u = Rng.float rng total in
    (* binary search for the first cumulative weight >= u *)
    let lo = ref 0 and hi = ref (lines - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  List.init n (fun _ -> op_of rng write_fraction (sample () * 64))

let interleave streams =
  let rec go acc streams =
    let heads, tails =
      List.fold_right
        (fun stream (hs, ts) ->
          match stream with
          | [] -> (hs, ts)
          | x :: rest -> (x :: hs, rest :: ts))
        streams ([], [])
    in
    if heads = [] then List.rev acc
    else go (List.rev_append heads acc) tails
  in
  go [] streams
