type t = {
  mutable addrs : int array;
  (* size and op packed: positive size = read, negative = write *)
  mutable ops : int array;
  mutable len : int;
  mutable reads : int;
  mutable writes : int;
}

let create ?(initial_capacity = 4096) () =
  if initial_capacity <= 0 then invalid_arg "Trace_log.create";
  {
    addrs = Array.make initial_capacity 0;
    ops = Array.make initial_capacity 0;
    len = 0;
    reads = 0;
    writes = 0;
  }

let grow t =
  let cap = Array.length t.addrs in
  let cap' = 2 * cap in
  let addrs = Array.make cap' 0 in
  let ops = Array.make cap' 0 in
  Array.blit t.addrs 0 addrs 0 cap;
  Array.blit t.ops 0 ops 0 cap;
  t.addrs <- addrs;
  t.ops <- ops

let record t (a : Access.t) =
  if t.len = Array.length t.addrs then grow t;
  t.addrs.(t.len) <- a.addr;
  (t.ops.(t.len) <-
     (match a.op with Access.Read -> a.size | Access.Write -> -a.size));
  t.len <- t.len + 1;
  match a.op with
  | Access.Read -> t.reads <- t.reads + 1
  | Access.Write -> t.writes <- t.writes + 1

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace_log.get";
  let packed = t.ops.(i) in
  if packed > 0 then Access.read ~addr:t.addrs.(i) ~size:packed
  else Access.write ~addr:t.addrs.(i) ~size:(-packed)

let replay t f =
  for i = 0 to t.len - 1 do
    f (get t i)
  done

let reads t = t.reads
let writes t = t.writes

let clear t =
  t.len <- 0;
  t.reads <- 0;
  t.writes <- 0
