(** Per-object, per-iteration access accounting.

    The paper evaluates its three metrics — read/write ratio, reference
    rate, object size — "at each time step of the main computation" and
    compares across time steps (§II, §VII-C).  This module stores read and
    write counts per (object, iteration) pair.  Iteration 0 stands for the
    pre-computing and post-processing phases combined, matching the 0 label
    in the paper's figure 7; main-loop iterations are numbered from 1. *)

type t

val create : unit -> t

val set_iteration : t -> int -> unit
(** Select the iteration subsequent {!record} calls are charged to.
    Negative iterations are rejected. *)

val iteration : t -> int

val record : t -> obj_id:int -> op:Access.op -> unit

val record_n : t -> obj_id:int -> op:Access.op -> n:int -> unit
(** Batched variant used by the trace-buffer flush path. *)

val reads : t -> obj_id:int -> iter:int -> int
(** 0 when the object or iteration was never touched. *)

val writes : t -> obj_id:int -> iter:int -> int

val total_reads : t -> obj_id:int -> int
val total_writes : t -> obj_id:int -> int

val grand_total : t -> int
(** All recorded accesses across every object and iteration. *)

val iterations_touched : t -> obj_id:int -> int list
(** Sorted iteration indices in which the object was referenced. *)

val touched_in_main_loop : t -> obj_id:int -> bool
(** True when any iteration >= 1 recorded an access. *)

val max_iteration : t -> int

val tracked_objects : t -> int list
(** Sorted object ids with at least one recorded access. *)
