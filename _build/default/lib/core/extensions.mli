(** Beyond the paper's tables and figures: the ablations and design
    alternatives the paper discusses but does not evaluate.

    - {!sampling_ablation} measures §III-D's rejection of sampled
      instrumentation ("sampling can lead to the loss of access
      information ... which in turn causes improper data placement");
    - {!hybrid_design} compares the two hybrid organisations of §II —
      horizontal DRAM+NVRAM vs hierarchical DRAM-cache-in-front-of-NVRAM —
      on real application traces;
    - {!placement_summary} applies the static and dynamic placement
      policies to an application profile (§VII-C's dynamic-placement
      discussion);
    - {!row_policy_ablation} quantifies the controller's open- vs
      closed-page policy on an application trace. *)

(** {1 Sampling ablation} *)

type sampling_ablation = {
  app_name : string;
  sampling_ratio : float;  (** fraction of references observed *)
  full_objects : int;  (** objects with traffic under full instrumentation *)
  lost_objects : int;  (** objects with traffic that sampling never saw *)
  misclassified_read_only : int;
      (** objects sampling calls read-only that are actually written — the
          exact "improper data placement" failure the paper warns of *)
  verdict_flips : int;
      (** objects whose category-2 suitability verdict changes *)
}

val sampling_ablation :
  ?scale:float ->
  ?iterations:int ->
  ?period:int ->
  ?sample_length:int ->
  (module Nvsc_apps.Workload.APP) ->
  sampling_ablation
(** Defaults: period 10000, sample_length 100 (a 1 % sample in sparse
    windows, as a SimPoint-style phase sampler would take). *)

(** {1 Hybrid organisation comparison} *)

type hybrid_design = {
  app_name : string;
  trace_accesses : int;
  cache_hit_rate : float;  (** DRAM page-cache hit rate *)
  hierarchical_avg_latency_ns : float;
  hierarchical_nvram_bytes : int;  (** traffic into NVRAM, incl. page fills *)
  horizontal_avg_latency_ns : float;
      (** traffic-weighted mean under the static horizontal placement *)
  horizontal_nvram_write_fraction : float;
  latency_advantage : float;
      (** hierarchical latency / horizontal latency: > 1 means the
          horizontal design the paper chose wins *)
}

val hybrid_design :
  ?scale:float ->
  ?iterations:int ->
  ?tech:Nvsc_nvram.Technology.t ->
  (module Nvsc_apps.Workload.APP) ->
  hybrid_design
(** [tech] defaults to PCRAM (the hierarchical design's usual backing). *)

(** One point of the locality sweep: at what locality does the DRAM page
    cache stop paying for its page fills? *)
type crossover_point = {
  hot_fraction : float;  (** fraction of accesses hitting a cache-sized hot set *)
  hit_rate : float;
  hierarchical_latency_ns : float;
  flat_nvram_latency_ns : float;  (** all accesses served by NVRAM directly *)
  dram_cache_wins : bool;
}

val dram_cache_crossover :
  ?tech:Nvsc_nvram.Technology.t ->
  ?accesses:int ->
  hot_fractions:float list ->
  unit ->
  crossover_point list
(** Synthetic traces with a controlled hot-set fraction, replayed through
    the page cache — quantifying the paper's §II claim that "for workloads
    with poor locality, the DRAM cache actually lowers performance".  The
    hierarchical design loses to even a flat all-NVRAM memory once page
    fills outweigh the hits. *)

(** {1 Placement policies on application profiles} *)

type placement_summary = {
  app_name : string;
  objects : int;
  static_nvram_fraction : float;  (** bytes placed in NVRAM statically *)
  static_slowdown_bound : float;
  dynamic_nvram_fraction : float;  (** after epoch-driven migration *)
  dynamic_slowdown_bound : float;
  migrations : int;
  migrated_bytes : int;
}

val placement_summary :
  ?scale:float ->
  ?iterations:int ->
  ?tech:Nvsc_nvram.Technology.t ->
  (module Nvsc_apps.Workload.APP) ->
  placement_summary
(** [tech] defaults to STTRAM (category 2, the paper's most promising). *)

(** {1 Fine-grained dynamic placement} *)

type fine_grained = {
  app_name : string;
  window_refs : int;
  windows : int;  (** decision points the monitor produced *)
  migrations : int;
  avg_nvram_fraction : float;
      (** NVRAM byte-residency averaged over decision points *)
  final_nvram_fraction : float;
}

val fine_grained_placement :
  ?scale:float ->
  ?iterations:int ->
  ?window_refs:int ->
  ?tech:Nvsc_nvram.Technology.t ->
  (module Nvsc_apps.Workload.APP) ->
  fine_grained
(** §VII-C's proposal realised: run the application with a
    {!Fine_monitor} driving the dynamic policy *online*, at sub-iteration
    granularity ([window_refs] references per decision, default 100k).
    Everything starts in NVRAM; the policy pulls write-bursting objects
    back to DRAM as each window closes.  [tech] defaults to STTRAM. *)

val pp_fine_grained : Format.formatter -> fine_grained -> unit

(** {1 Hybrid memory-system simulation} *)

type hybrid_simulation = {
  app_name : string;
  nvram_bytes_fraction : float;  (** of the footprint, statically placed *)
  nvram_access_fraction : float;  (** of main-memory accesses routed there *)
  nvram_write_fraction : float;
  designs : (string * float * float) list;
      (** (design, normalized power, avg latency ns) for all-DRAM,
          all-NVRAM and the hybrid *)
}

val hybrid_simulation :
  ?scale:float ->
  ?iterations:int ->
  ?tech:Nvsc_nvram.Technology.t ->
  (module Nvsc_apps.Workload.APP) ->
  hybrid_simulation
(** The simulation the paper's §V says it could not run ("we do not
    simulate a hybrid memory system due to the limitations of the
    simulator"): profile the application, place its objects statically
    across a DRAM half and an NVRAM half
    ({!Nvsc_placement.Static_policy}), then replay the cache-filtered
    trace through {!Nvsc_dramsim.Hybrid_system} with accesses routed by
    object residence.  [tech] defaults to STTRAM. *)

val pp_hybrid_simulation : Format.formatter -> hybrid_simulation -> unit

(** {1 Table VI robustness} *)

val power_sensitivity :
  ?scale:float ->
  ?iterations:int ->
  (module Nvsc_apps.Workload.APP) ->
  (string * (Nvsc_nvram.Technology.t * float) list) list
(** Re-run the Table VI experiment for one application under different
    controller configurations — FR-FCFS scheduling, line-interleaved
    address mapping, closed-page row policy — to check that the paper's
    headline (>= 27 % saving; PCRAM <= STTRAM <= MRAM) is not an artifact
    of one controller design.  Returns (configuration label, normalized
    power per technology) rows. *)

(** {1 Row-buffer policy ablation} *)

val row_policy_ablation :
  Nvsc_memtrace.Trace_log.t ->
  tech:Nvsc_nvram.Technology.t ->
  (Nvsc_dramsim.Controller.row_policy * Nvsc_dramsim.Controller.stats) list
(** The same trace under open-page and closed-page policies. *)

(** {1 Printing} *)

val pp_sampling : Format.formatter -> sampling_ablation -> unit
val pp_hybrid : Format.formatter -> hybrid_design -> unit
val pp_placement : Format.formatter -> placement_summary -> unit

val run_all : Format.formatter -> ?scale:float -> ?iterations:int -> unit -> unit
(** Run every extension over all four applications and print. *)
