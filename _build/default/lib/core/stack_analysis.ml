module Ctx = Nvsc_appkit.Ctx
module Stats = Nvsc_util.Stats
module Table = Nvsc_util.Table

type summary = {
  app_name : string;
  rw_ratio : float;
  first_iter_ratio : float;
  steady_ratio : float;
  reference_pct : float;
}

let summarize (r : Scavenger.result) =
  let fold lo hi f =
    let acc = ref 0 in
    for i = lo to hi do
      if i < Array.length r.fast_tallies then
        acc := !acc + f r.fast_tallies.(i)
    done;
    !acc
  in
  let n = r.iterations in
  let sr = fold 1 n (fun t -> t.Ctx.stack_reads) in
  let sw = fold 1 n (fun t -> t.Ctx.stack_writes) in
  let orr = fold 1 n (fun t -> t.Ctx.other_reads) in
  let ow = fold 1 n (fun t -> t.Ctx.other_writes) in
  let sr1 = fold 1 1 (fun t -> t.Ctx.stack_reads) in
  let sw1 = fold 1 1 (fun t -> t.Ctx.stack_writes) in
  let total = sr + sw + orr + ow in
  {
    app_name = r.app_name;
    rw_ratio = Stats.ratio sr sw;
    first_iter_ratio = Stats.ratio sr1 sw1;
    steady_ratio = Stats.ratio (sr - sr1) (sw - sw1);
    reference_pct =
      (if total = 0 then 0. else float_of_int (sr + sw) /. float_of_int total);
  }

type frame_row = {
  routine : string;
  reads : int;
  writes : int;
  rw_ratio : float;
  ref_share : float;
}

type distribution = {
  frames : frame_row list;
  pct_objects_ratio_gt_10 : float;
  pct_objects_ratio_gt_50 : float;
  refs_share_ratio_gt_10 : float;
  refs_share_ratio_gt_50 : float;
}

let distribution (r : Scavenger.result) =
  let stack = Scavenger.stack_metrics r in
  let total_stack_refs =
    List.fold_left
      (fun acc (m : Object_metrics.t) -> acc + m.reads + m.writes)
      0 stack
  in
  let frames =
    stack
    |> List.map (fun (m : Object_metrics.t) ->
           {
             routine = m.obj.Nvsc_memtrace.Mem_object.name;
             reads = m.reads;
             writes = m.writes;
             rw_ratio = m.rw_ratio;
             ref_share = m.ref_share;
           })
    |> List.sort (fun a b -> compare b.rw_ratio a.rw_ratio)
  in
  let count p = List.length (List.filter p frames) in
  let refs p =
    List.fold_left
      (fun acc f -> if p f then acc + f.reads + f.writes else acc)
      0 frames
  in
  let nframes = List.length frames in
  let pct_of n d = if d = 0 then 0. else float_of_int n /. float_of_int d in
  {
    frames;
    pct_objects_ratio_gt_10 = pct_of (count (fun f -> f.rw_ratio > 10.)) nframes;
    pct_objects_ratio_gt_50 = pct_of (count (fun f -> f.rw_ratio > 50.)) nframes;
    refs_share_ratio_gt_10 =
      pct_of (refs (fun f -> f.rw_ratio > 10.)) total_stack_refs;
    refs_share_ratio_gt_50 =
      pct_of (refs (fun f -> f.rw_ratio > 50.)) total_stack_refs;
  }

let pp_summary_table fmt summaries =
  let table =
    Table.create ~title:"Table V: Stack data analysis"
      [
        ("Application", Table.Left);
        ("Read/write ratio", Table.Right);
        ("(first iter)", Table.Right);
        ("Reference percentage", Table.Right);
      ]
  in
  List.iter
    (fun s ->
      Table.add_row table
        [
          s.app_name;
          Table.cell_f s.steady_ratio;
          Table.cell_f s.first_iter_ratio;
          Table.cell_pct s.reference_pct;
        ])
    summaries;
  Table.pp fmt table

let pp_distribution fmt d =
  let table =
    Table.create ~title:"Figure 2: per-routine stack frames"
      [
        ("Routine", Table.Left);
        ("Reads", Table.Right);
        ("Writes", Table.Right);
        ("R/W ratio", Table.Right);
        ("Ref share", Table.Right);
      ]
  in
  List.iter
    (fun f ->
      Table.add_row table
        [
          f.routine;
          Table.cell_i f.reads;
          Table.cell_i f.writes;
          Table.cell_f f.rw_ratio;
          Table.cell_pct f.ref_share;
        ])
    d.frames;
  Table.pp fmt table;
  (* the paper's figure 2 is a distribution: render the frame ratios as a
     log-binned histogram weighted by each frame's reference share *)
  let hist = Nvsc_util.Histogram.create_log ~lo:1. ~hi:100. ~bins:8 in
  List.iter
    (fun f ->
      let ratio = Float.max 1.0 (Float.min 99.9 f.rw_ratio) in
      Nvsc_util.Histogram.add_weighted hist ratio f.ref_share)
    d.frames;
  Format.fprintf fmt "reference-share by frame read/write ratio:@.";
  Nvsc_util.Histogram.pp fmt hist;
  Format.fprintf fmt
    "frames with ratio>10: %s of objects carrying %s of stack references@."
    (Table.cell_pct d.pct_objects_ratio_gt_10)
    (Table.cell_pct d.refs_share_ratio_gt_10);
  Format.fprintf fmt
    "frames with ratio>50: %s of objects carrying %s of stack references@."
    (Table.cell_pct d.pct_objects_ratio_gt_50)
    (Table.cell_pct d.refs_share_ratio_gt_50)
