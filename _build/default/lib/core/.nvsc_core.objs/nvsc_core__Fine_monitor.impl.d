lib/core/fine_monitor.ml: Hashtbl List Nvsc_appkit Nvsc_memtrace
