lib/core/traffic_attribution.mli: Format Nvsc_memtrace Nvsc_nvram Scavenger
