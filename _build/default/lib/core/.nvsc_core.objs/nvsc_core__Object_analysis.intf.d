lib/core/object_analysis.mli: Format Nvsc_memtrace Nvsc_nvram Scavenger
