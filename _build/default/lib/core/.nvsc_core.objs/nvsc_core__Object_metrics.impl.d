lib/core/object_metrics.ml: Array List Nvsc_appkit Nvsc_memtrace Nvsc_nvram Nvsc_util
