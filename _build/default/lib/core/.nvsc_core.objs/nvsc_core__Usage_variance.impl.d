lib/core/usage_variance.ml: Array Float Format List Nvsc_memtrace Nvsc_util Object_metrics Scavenger
