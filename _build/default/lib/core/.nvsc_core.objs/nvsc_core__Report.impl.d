lib/core/report.ml: Buffer Experiment Float List Nvsc_cpusim Nvsc_nvram Nvsc_util Object_analysis Printf Scavenger Stack_analysis Usage_variance
