lib/core/fine_monitor.mli: Nvsc_appkit
