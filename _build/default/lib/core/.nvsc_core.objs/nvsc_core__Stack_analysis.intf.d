lib/core/stack_analysis.mli: Format Scavenger
