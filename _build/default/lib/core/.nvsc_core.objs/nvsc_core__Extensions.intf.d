lib/core/extensions.mli: Format Nvsc_apps Nvsc_dramsim Nvsc_memtrace Nvsc_nvram
