lib/core/experiment.mli: Format Nvsc_apps Nvsc_cpusim Nvsc_nvram Object_analysis Scavenger Stack_analysis Usage_variance
