lib/core/traffic_attribution.ml: Format List Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_util Object_metrics Printf Scavenger
