lib/core/object_metrics.mli: Nvsc_appkit Nvsc_memtrace Nvsc_nvram
