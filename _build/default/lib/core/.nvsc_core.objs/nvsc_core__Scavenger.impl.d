lib/core/scavenger.ml: Array List Nvsc_appkit Nvsc_apps Nvsc_cachesim Nvsc_memtrace Object_metrics
