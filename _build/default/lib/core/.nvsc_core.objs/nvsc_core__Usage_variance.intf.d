lib/core/usage_variance.mli: Format Scavenger
