lib/core/object_analysis.ml: Float Format List Nvsc_memtrace Nvsc_nvram Nvsc_util Object_metrics Printf Scavenger Stdlib
