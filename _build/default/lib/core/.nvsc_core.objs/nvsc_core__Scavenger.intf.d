lib/core/scavenger.mli: Nvsc_appkit Nvsc_apps Nvsc_memtrace Object_metrics
