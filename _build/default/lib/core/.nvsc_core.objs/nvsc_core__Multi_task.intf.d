lib/core/multi_task.mli: Format Nvsc_apps Stack_analysis
