lib/core/experiment.ml: Format List Nvsc_appkit Nvsc_apps Nvsc_cachesim Nvsc_cpusim Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_util Object_analysis Printf Scavenger Stack_analysis Usage_variance
