lib/core/stack_analysis.ml: Array Float Format List Nvsc_appkit Nvsc_memtrace Nvsc_util Object_metrics Scavenger
