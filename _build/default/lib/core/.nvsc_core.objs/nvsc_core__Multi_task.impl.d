lib/core/multi_task.ml: Float Format List Nvsc_apps Nvsc_util Scavenger Stack_analysis
