module Mem_object = Nvsc_memtrace.Mem_object
module Suitability = Nvsc_nvram.Suitability
module Table = Nvsc_util.Table

type row = {
  name : string;
  kind : Nvsc_memtrace.Layout.kind;
  size_bytes : int;
  reads : int;
  writes : int;
  rw_ratio : float;
  ref_share : float;
  verdict : Suitability.verdict;
}

type report = {
  app_name : string;
  rows : row list;
  footprint_bytes : int;
  read_only_bytes : int;
  read_only_fraction : float;
  ratio_gt_50_bytes : int;
  ratio_gt_1_bytes : int;
  ratio_gt_1_fraction : float;
  nvram_friendly_bytes : int;
  nvram_friendly_fraction : float;
}

let analyze ?(category = Nvsc_nvram.Technology.Cat2_long_write)
    (r : Scavenger.result) =
  let metrics = Scavenger.global_and_heap_metrics r in
  let rows =
    metrics
    |> List.map (fun (m : Object_metrics.t) ->
           {
             name = m.obj.Mem_object.name;
             kind = m.obj.Mem_object.kind;
             size_bytes = Object_metrics.size_bytes m;
             reads = m.reads;
             writes = m.writes;
             rw_ratio = m.rw_ratio;
             ref_share = m.ref_share;
             verdict =
               Suitability.classify ~category
                 (Object_metrics.suitability_metrics m);
           })
    |> List.sort (fun a b -> compare b.size_bytes a.size_bytes)
  in
  let sum p =
    List.fold_left (fun acc row -> if p row then acc + row.size_bytes else acc) 0 rows
  in
  let footprint_bytes = sum (fun _ -> true) in
  let read_only_bytes = sum (fun row -> row.reads > 0 && row.writes = 0) in
  let ratio_gt_50_bytes = sum (fun row -> row.writes > 0 && row.rw_ratio > 50.) in
  let ratio_gt_1_bytes = sum (fun row -> row.rw_ratio > 1.) in
  let nvram_friendly_bytes =
    sum (fun row -> row.verdict <> Suitability.Dram_preferred)
  in
  let frac n = if footprint_bytes = 0 then 0. else float_of_int n /. float_of_int footprint_bytes in
  {
    app_name = r.app_name;
    rows;
    footprint_bytes;
    read_only_bytes;
    read_only_fraction = frac read_only_bytes;
    ratio_gt_50_bytes;
    ratio_gt_1_bytes;
    ratio_gt_1_fraction = frac ratio_gt_1_bytes;
    nvram_friendly_bytes;
    nvram_friendly_fraction = frac nvram_friendly_bytes;
  }

let pp_report ?(max_rows = 40) fmt r =
  let table =
    Table.create
      ~title:(Printf.sprintf "Global and heap memory objects: %s" r.app_name)
      [
        ("Object", Table.Left);
        ("Kind", Table.Left);
        ("Size", Table.Right);
        ("Reads", Table.Right);
        ("Writes", Table.Right);
        ("R/W", Table.Right);
        ("Ref share", Table.Right);
        ("Verdict", Table.Left);
      ]
  in
  List.iteri
    (fun i row ->
      if i < max_rows then
        Table.add_row table
          [
            row.name;
            Nvsc_memtrace.Layout.kind_to_string row.kind;
            Table.cell_bytes row.size_bytes;
            Table.cell_i row.reads;
            Table.cell_i row.writes;
            Table.cell_f row.rw_ratio;
            Table.cell_pct row.ref_share;
            Format.asprintf "%a" Suitability.pp_verdict row.verdict;
          ])
    r.rows;
  Table.pp fmt table;
  Format.fprintf fmt "footprint (global+heap): %a@." Nvsc_util.Units.pp_bytes
    r.footprint_bytes;
  Format.fprintf fmt "read-only: %a (%s)@." Nvsc_util.Units.pp_bytes
    r.read_only_bytes
    (Table.cell_pct r.read_only_fraction);
  Format.fprintf fmt "ratio > 50 (written): %a@." Nvsc_util.Units.pp_bytes
    r.ratio_gt_50_bytes;
  Format.fprintf fmt "ratio > 1: %a (%s)@." Nvsc_util.Units.pp_bytes
    r.ratio_gt_1_bytes
    (Table.cell_pct r.ratio_gt_1_fraction);
  Format.fprintf fmt "NVRAM-suitable (category 2): %a (%s)@."
    Nvsc_util.Units.pp_bytes r.nvram_friendly_bytes
    (Table.cell_pct r.nvram_friendly_fraction);
  (* the paper's figures 3-6 are per-object scatters; read-only objects
     (infinite ratio) are pinned at the top of the log-ratio axis *)
  let point row =
    let ratio = if row.rw_ratio = infinity then 100. else row.rw_ratio in
    ( log10 (float_of_int (Stdlib.max 1 row.size_bytes)),
      log10 (Float.max 0.01 (Float.min 100. ratio)) )
  in
  let active = List.filter (fun row -> row.reads + row.writes > 0) r.rows in
  let ro, written =
    List.partition (fun row -> row.reads > 0 && row.writes = 0) active
  in
  Format.pp_print_string fmt
    (Nvsc_util.Ascii_plot.line ~height:14
       ~title:
         (Printf.sprintf "%s objects: log10 size (x) vs log10 R/W ratio (y)"
            r.app_name)
       ~x_label:"log10 bytes" ~y_label:"log10 ratio (read-only pinned at 2)"
       [
         ("written", List.map point written); ("read-only", List.map point ro);
       ])
