(** Multi-task (MPI-rank) analysis.

    The paper instruments one MPI task per application and reports
    "memory footprint per task" (Table I).  Production runs decompose the
    domain across many tasks that are never perfectly balanced; this
    module re-runs the instrumentation across several simulated tasks with
    a deterministic load imbalance and checks that the paper's per-task
    conclusions (stack share, stack ratio) are stable across ranks —
    i.e. that profiling one rank, as the paper does, is representative. *)

type task_summary = {
  task : int;
  scale : float;  (** this task's share of the domain *)
  footprint_bytes : int;
  stack : Stack_analysis.summary;
}

type aggregate = {
  app_name : string;
  tasks : task_summary list;
  footprint_total : int;
  ratio_mean : float;  (** mean per-task stack read/write ratio *)
  ratio_rel_spread : float;  (** (max-min)/mean across tasks *)
  pct_mean : float;  (** mean stack reference share *)
  pct_rel_spread : float;
  representative : bool;
      (** both relative spreads below 10 %: one rank's profile stands for
          all of them *)
}

val run :
  ?tasks:int ->
  ?base_scale:float ->
  ?iterations:int ->
  ?imbalance:float ->
  (module Nvsc_apps.Workload.APP) ->
  aggregate
(** Defaults: 4 tasks, base_scale 0.5, 4 iterations, imbalance 0.2 (each
    task's scale varies deterministically within ±20 % of the base). *)

val pp : Format.formatter -> aggregate -> unit
