module Mem_object = Nvsc_memtrace.Mem_object
module Layout = Nvsc_memtrace.Layout

type cdf_point = { iterations_used : int; cumulative_bytes : int }

(* Long-term global+heap objects: everything except heap allocated during
   a main-loop iteration (the paper's short-term objects). *)
let long_term_metrics (r : Scavenger.result) =
  Scavenger.global_and_heap_metrics r
  |> List.filter (fun (m : Object_metrics.t) ->
         match (m.obj.Mem_object.kind, m.obj.Mem_object.alloc_phase) with
         | Layout.Heap, Mem_object.Main _ -> false
         | _ -> true)

let usage_cdf (r : Scavenger.result) =
  let metrics = long_term_metrics r in
  let by_used = Array.make (r.iterations + 1) 0 in
  List.iter
    (fun (m : Object_metrics.t) ->
      by_used.(m.iterations_used) <-
        by_used.(m.iterations_used) + Object_metrics.size_bytes m)
    metrics;
  let acc = ref 0 in
  Array.to_list
    (Array.mapi
       (fun i bytes ->
         acc := !acc + bytes;
         { iterations_used = i; cumulative_bytes = !acc })
       by_used)

let untouched_in_main_bytes (r : Scavenger.result) =
  List.fold_left
    (fun acc (m : Object_metrics.t) ->
      if Object_metrics.is_untouched_in_main m then
        acc + Object_metrics.size_bytes m
      else acc)
    0 (long_term_metrics r)

let untouched_in_main_fraction (r : Scavenger.result) =
  let total =
    List.fold_left
      (fun acc m -> acc + Object_metrics.size_bytes m)
      0 (long_term_metrics r)
  in
  if total = 0 then 0.
  else float_of_int (untouched_in_main_bytes r) /. float_of_int total

let bins =
  [| (0., 0.5); (0.5, 1.); (1., 2.); (2., 4.); (4., infinity) |]

let bin_of v =
  let rec go i =
    if i >= Array.length bins then Array.length bins - 1
    else begin
      let lo, hi = bins.(i) in
      if v >= lo && v < hi then i else go (i + 1)
    end
  in
  go 0

type variance = {
  iterations : int;
  objects_considered : int;
  ratio_dist : float array array;
  rate_dist : float array array;
  rate_unchanged : float array;
}

let variance (r : Scavenger.result) =
  let n = r.iterations in
  (* Global and heap objects (the population of figures 3-6) with
     references and writes in iteration 1 — a zero base makes the
     normalised value meaningless. *)
  let actives =
    List.filter
      (fun (m : Object_metrics.t) ->
        Object_metrics.per_iter_refs m ~iter:1 > 0
        && m.per_iter_writes.(0) > 0)
      (Scavenger.global_and_heap_metrics r)
  in
  let nobj = List.length actives in
  let ratio_dist = Array.make_matrix n (Array.length bins) 0. in
  let rate_dist = Array.make_matrix n (Array.length bins) 0. in
  let rate_unchanged = Array.make n 0. in
  if nobj > 0 then
    for iter = 1 to n do
      List.iter
        (fun (m : Object_metrics.t) ->
          let base_ratio = Object_metrics.per_iter_ratio m ~iter:1 in
          let base_rate = float_of_int (Object_metrics.per_iter_refs m ~iter:1) in
          let ratio = Object_metrics.per_iter_ratio m ~iter in
          let rate = float_of_int (Object_metrics.per_iter_refs m ~iter) in
          let norm_ratio = if base_ratio > 0. then ratio /. base_ratio else 0. in
          let norm_rate = if base_rate > 0. then rate /. base_rate else 0. in
          let i = iter - 1 in
          ratio_dist.(i).(bin_of norm_ratio) <-
            ratio_dist.(i).(bin_of norm_ratio) +. 1.;
          rate_dist.(i).(bin_of norm_rate) <-
            rate_dist.(i).(bin_of norm_rate) +. 1.;
          if Float.abs (norm_rate -. 1.) <= 0.02 then
            rate_unchanged.(i) <- rate_unchanged.(i) +. 1.)
        actives;
      let i = iter - 1 in
      for b = 0 to Array.length bins - 1 do
        ratio_dist.(i).(b) <- ratio_dist.(i).(b) /. float_of_int nobj;
        rate_dist.(i).(b) <- rate_dist.(i).(b) /. float_of_int nobj
      done;
      rate_unchanged.(i) <- rate_unchanged.(i) /. float_of_int nobj
    done;
  { iterations = n; objects_considered = nobj; ratio_dist; rate_dist;
    rate_unchanged }

let stable_fraction v =
  if v.iterations < 2 then 1.
  else begin
    let acc = ref 0. in
    for i = 1 to v.iterations - 1 do
      acc := !acc +. v.rate_dist.(i).(2) (* the [1,2) bin *)
    done;
    !acc /. float_of_int (v.iterations - 1)
  end

let pp_cdf fmt points =
  List.iter
    (fun p ->
      Format.fprintf fmt "<=%2d iterations: %a@." p.iterations_used
        Nvsc_util.Units.pp_bytes p.cumulative_bytes)
    points

let pp_variance fmt v =
  Format.fprintf fmt "objects considered: %d@." v.objects_considered;
  for i = 0 to v.iterations - 1 do
    Format.fprintf fmt
      "iter %2d: rate[1,2)=%.2f ratio[1,2)=%.2f rate-unchanged=%.2f@."
      (i + 1) v.rate_dist.(i).(2) v.ratio_dist.(i).(2) v.rate_unchanged.(i)
  done
