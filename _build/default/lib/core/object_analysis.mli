(** Global- and heap-object analysis (paper §VII-B, figures 3–6).

    Per-object read/write ratios, reference rates and sizes, plus the
    aggregates the paper quotes: how much of the footprint is read-only
    during the main loop, how much carries a read/write ratio above 50,
    and how much is dominated by reads at all (ratio > 1, the
    STTRAM-friendly set). *)

type row = {
  name : string;
  kind : Nvsc_memtrace.Layout.kind;
  size_bytes : int;
  reads : int;
  writes : int;
  rw_ratio : float;
  ref_share : float;
  verdict : Nvsc_nvram.Suitability.verdict;
      (** against the hybrid target's NVRAM category *)
}

type report = {
  app_name : string;
  rows : row list;  (** global + heap objects, descending size *)
  footprint_bytes : int;  (** global + heap bytes *)
  read_only_bytes : int;
  read_only_fraction : float;
  ratio_gt_50_bytes : int;  (** writes > 0 but ratio > 50 *)
  ratio_gt_1_bytes : int;  (** more reads than writes (incl. read-only) *)
  ratio_gt_1_fraction : float;
  nvram_friendly_bytes : int;  (** verdict <> Dram_preferred *)
  nvram_friendly_fraction : float;
}

val analyze :
  ?category:Nvsc_nvram.Technology.category -> Scavenger.result -> report
(** [category] defaults to category 2 (STTRAM-like), the paper's most
    promising target. *)

val pp_report : ?max_rows:int -> Format.formatter -> report -> unit
