(** Main-memory traffic and energy attribution per memory object.

    The application-level metrics of figures 3–6 count *references*; what
    the memory system pays for is the cache-filtered traffic.  This
    analysis attributes the main-memory trace back to the objects whose
    address ranges it falls in and weighs it with the power model's burst
    energies, producing the paper's actionable artifact: a ranked list of
    which data structures cost the most DRAM energy — the candidates a
    placement effort should tackle first, with their NVRAM verdicts. *)

type row = {
  name : string;
  kind : Nvsc_memtrace.Layout.kind;
  size_bytes : int;
  line_reads : int;  (** main-memory line fills attributed to the object *)
  line_writes : int;  (** write-backs / forwarded writes *)
  energy_nj : float;  (** burst energy on DDR3 *)
  energy_share : float;
  verdict : Nvsc_nvram.Suitability.verdict;
      (** from the object's application-level metrics, category 2 *)
}

type report = {
  app_name : string;
  rows : row list;  (** descending energy *)
  attributed : int;
  unattributed : int;
      (** trace lines whose addresses fall in no object (stack lines and
          line-granularity spill) *)
  movable_energy_fraction : float;
      (** share of attributed burst energy on NVRAM-suitable objects *)
}

val analyze : Scavenger.result -> report
(** Requires the result to carry a trace ([~with_trace:true]). *)

val pp_report : ?max_rows:int -> Format.formatter -> report -> unit
