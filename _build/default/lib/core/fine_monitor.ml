module Ctx = Nvsc_appkit.Ctx
module Mem_object = Nvsc_memtrace.Mem_object

type window_counts = (int * int * int) list

type t = {
  ctx : Ctx.t;
  window_refs : int;
  on_window : window_counts -> unit;
  counts : (int, int ref * int ref) Hashtbl.t;
  mutable in_window : int;
  mutable windows : int;
  mutable seen : int;
}

let deliver t =
  if t.in_window > 0 then begin
    let out =
      Hashtbl.fold
        (fun obj_id (r, w) acc -> (obj_id, !r, !w) :: acc)
        t.counts []
      |> List.sort compare
    in
    Hashtbl.reset t.counts;
    t.in_window <- 0;
    t.windows <- t.windows + 1;
    t.on_window out
  end

let attach ctx ~window_refs ~on_window =
  if window_refs <= 0 then invalid_arg "Fine_monitor.attach: window_refs";
  let t =
    {
      ctx;
      window_refs;
      on_window;
      counts = Hashtbl.create 256;
      in_window = 0;
      windows = 0;
      seen = 0;
    }
  in
  Ctx.add_sink ctx (fun a ->
      t.seen <- t.seen + 1;
      (match Ctx.attribute_addr ctx a.Nvsc_memtrace.Access.addr with
      | Some obj ->
        let r, w =
          match Hashtbl.find_opt t.counts obj.Mem_object.id with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0) in
            Hashtbl.add t.counts obj.Mem_object.id cell;
            cell
        in
        (match a.op with
        | Nvsc_memtrace.Access.Read -> incr r
        | Nvsc_memtrace.Access.Write -> incr w)
      | None -> ());
      t.in_window <- t.in_window + 1;
      if t.in_window >= t.window_refs then deliver t);
  t

let flush t = deliver t
let windows t = t.windows
let references_seen t = t.seen
