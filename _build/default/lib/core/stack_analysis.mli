(** Stack-data analysis (paper §VII-A, Table V and figure 2).

    The fast method tallies whole-stack reads and writes per iteration and
    the stack's share of all references; the slow method attributes stack
    references to individual routine frames through the shadow stack. *)

(** Table V row for one application. *)
type summary = {
  app_name : string;
  rw_ratio : float;  (** whole-run stack read/write ratio (main loop) *)
  first_iter_ratio : float;
      (** iteration 1's ratio, reported separately for CAM in the paper *)
  steady_ratio : float;  (** ratio over iterations 2..n *)
  reference_pct : float;
      (** fraction of all main-loop references that target the stack *)
}

val summarize : Scavenger.result -> summary

(** Figure 2: distribution of per-frame (per-routine) read/write ratios
    and reference rates from the slow method. *)
type frame_row = {
  routine : string;
  reads : int;
  writes : int;
  rw_ratio : float;
  ref_share : float;  (** of all main-loop references *)
}

type distribution = {
  frames : frame_row list;  (** sorted by descending ratio *)
  pct_objects_ratio_gt_10 : float;
  pct_objects_ratio_gt_50 : float;
  refs_share_ratio_gt_10 : float;
  refs_share_ratio_gt_50 : float;
}

val distribution : Scavenger.result -> distribution

val pp_summary_table : Format.formatter -> summary list -> unit
val pp_distribution : Format.formatter -> distribution -> unit
