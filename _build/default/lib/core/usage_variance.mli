(** Memory-usage variance across main-loop iterations (paper §VII-C,
    figures 7–11).

    Figure 7 is the cumulative distribution of memory usage across time
    steps: a point (x, y) says y bytes of long-term objects were touched in
    no more than x main-loop iterations (x = 0 meaning only during the
    pre/post phases).  Short-term heap objects — allocated and freed inside
    the main loop — are excluded, as the paper excludes them.

    Figures 8–11 normalise each object's per-iteration read/write ratio and
    reference rate by its first-iteration value and report, per iteration,
    how the normalised values distribute; the paper's headline is that more
    than 60 % of objects stay within [1, 2). *)

type cdf_point = { iterations_used : int; cumulative_bytes : int }

val usage_cdf : Scavenger.result -> cdf_point list
(** Sorted by [iterations_used] (0 .. n); the last point's
    [cumulative_bytes] is the total long-term global+heap footprint. *)

val untouched_in_main_bytes : Scavenger.result -> int
val untouched_in_main_fraction : Scavenger.result -> float
(** Fraction of the long-term global+heap footprint never referenced in
    the main loop (Nek5000 ≈ 24 %, CAM ≈ 11.5 % in the paper). *)

val bins : (float * float) array
(** Normalised-value bins: [0,0.5), [0.5,1), [1,2), [2,4), [4,inf). *)

type variance = {
  iterations : int;
  objects_considered : int;
      (** global+heap objects written in iteration 1 (the normalisation
          base) *)
  ratio_dist : float array array;
      (** [ratio_dist.(i).(b)]: fraction of objects whose normalised
          read/write ratio in iteration i+1 falls in {!bins}[b] *)
  rate_dist : float array array;  (** same for reference rates *)
  rate_unchanged : float array;
      (** per iteration, fraction of objects whose reference rate is
          within 2 % of iteration 1's *)
}

val variance : Scavenger.result -> variance

val stable_fraction : variance -> float
(** Mean over iterations >= 2 of the fraction of objects whose normalised
    reference rate lies in [1,2). *)

val pp_cdf : Format.formatter -> cdf_point list -> unit
val pp_variance : Format.formatter -> variance -> unit
