module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Shadow_stack = Nvsc_memtrace.Shadow_stack
module Counters = Nvsc_memtrace.Counters
module Rng = Nvsc_util.Rng

type fast_tally = {
  stack_reads : int;
  stack_writes : int;
  other_reads : int;
  other_writes : int;
}

type mutable_tally = {
  mutable sr : int;
  mutable sw : int;
  mutable or_ : int;
  mutable ow : int;
}

type frame = {
  routine : string;
  shadow_frame : Shadow_stack.frame;
  mutable cursor : int; (* next free address, carving downward usage upward *)
  limit : int;
}

type t = {
  rng : Rng.t;
  registry : Object_registry.t;
  counters : Counters.t;
  shadow : Shadow_stack.t;
  mutable sinks : (Access.t -> unit) list;
  mutable instr_sink : (int -> unit) option;
  mutable phase : Mem_object.phase;
  mutable heap_brk : int;
  mutable global_brk : int;
  mutable next_id : int;
  mutable next_routine_addr : int;
  routine_addrs : (string, int) Hashtbl.t;
  routine_objects : (int, Mem_object.t) Hashtbl.t; (* keyed by routine addr *)
  heap_instances : (string, int) Hashtbl.t; (* live-collision counters *)
  mutable tallies : mutable_tally array; (* per iteration *)
  mutable total_refs : int;
  mutable unattributed : int;
  mutable sampling : sampling option;
  mutable sampled_out : int;
}

and sampling = { period : int; sample_length : int; mutable position : int }

let create ?(seed = 42) () =
  {
    rng = Rng.of_int seed;
    registry = Object_registry.create ();
    counters = Counters.create ();
    shadow = Shadow_stack.create ();
    sinks = [];
    instr_sink = None;
    phase = Mem_object.Pre;
    heap_brk = Layout.heap_base;
    global_brk = Layout.global_base;
    next_id = 0;
    next_routine_addr = 0x0040_0000;
    routine_addrs = Hashtbl.create 64;
    routine_objects = Hashtbl.create 64;
    heap_instances = Hashtbl.create 64;
    tallies = Array.init 4 (fun _ -> { sr = 0; sw = 0; or_ = 0; ow = 0 });
    total_refs = 0;
    unattributed = 0;
    sampling = None;
    sampled_out = 0;
  }

let set_sampling t ~period ~sample_length =
  if period <= 0 || sample_length <= 0 || sample_length > period then
    invalid_arg "Ctx.set_sampling: need 0 < sample_length <= period";
  t.sampling <- Some { period; sample_length; position = 0 }

let sampled_out t = t.sampled_out

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let set_instr_sink t sink = t.instr_sink <- Some sink

let clear_sinks t =
  t.sinks <- [];
  t.instr_sink <- None

let iteration_of_phase = function
  | Mem_object.Pre | Mem_object.Post -> 0
  | Mem_object.Main i ->
    if i < 1 then invalid_arg "Ctx: main-loop iterations are 1-based";
    i

let set_phase t phase =
  t.phase <- phase;
  Counters.set_iteration t.counters (iteration_of_phase phase)

let phase t = t.phase

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* --- allocation ------------------------------------------------------- *)

let alloc_global t ~name ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_global: words";
  let size = words * Layout.word in
  let base = t.global_brk in
  if base + size > Layout.global_limit then failwith "Ctx: global segment full";
  t.global_brk <- base + size;
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  Object_registry.register t.registry obj

let alloc_global_overlay t ~name ~over ~offset_words ~words =
  if words <= 0 || offset_words < 0 then
    invalid_arg "Ctx.alloc_global_overlay: bad range";
  if over.Mem_object.kind <> Layout.Global then
    invalid_arg "Ctx.alloc_global_overlay: base object must be global";
  let base = over.Mem_object.base + (offset_words * Layout.word) in
  let size = words * Layout.word in
  if base + size > over.Mem_object.base + over.Mem_object.size then
    invalid_arg "Ctx.alloc_global_overlay: overlay exceeds the base object";
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  Object_registry.register t.registry obj

let callstack_names t =
  List.rev_map
    (fun (f : Shadow_stack.frame) -> f.routine)
    (Shadow_stack.frames t.shadow)

let alloc_heap t ~site ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_heap: words";
  let size = words * Layout.word in
  match Object_registry.find_by_signature t.registry site with
  | Some obj when (not obj.Mem_object.live) && obj.Mem_object.size = size ->
    (* Same allocation-site signature, previously freed: the paper treats
       this as the same memory object re-appearing. *)
    Object_registry.revive t.registry obj;
    obj
  | Some _ ->
    (* A live object already carries this signature: distinguish the
       instance, as two objects genuinely coexist. *)
    let n =
      match Hashtbl.find_opt t.heap_instances site with
      | Some n -> n + 1
      | None -> 1
    in
    Hashtbl.replace t.heap_instances site n;
    let signature = Printf.sprintf "%s#%d" site n in
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    Object_registry.register t.registry obj
  | None ->
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature:site ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    Object_registry.register t.registry obj

let free_heap t obj =
  if obj.Mem_object.kind <> Layout.Heap then
    invalid_arg "Ctx.free_heap: not a heap object";
  Object_registry.deallocate t.registry obj

(* --- routines --------------------------------------------------------- *)

let routine_addr t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | Some a -> a
  | None ->
    let a = t.next_routine_addr in
    t.next_routine_addr <- a + 0x100;
    Hashtbl.add t.routine_addrs routine a;
    a

let call t ~routine ~frame_words f =
  if frame_words < 0 then invalid_arg "Ctx.call: frame_words";
  let addr = routine_addr t routine in
  let frame_size = frame_words * Layout.word in
  let shadow_frame =
    Shadow_stack.push t.shadow ~routine ~routine_addr:addr ~frame_size
  in
  (* Register the routine's frame object on first entry, keyed by the
     routine starting address (the paper's routine signature). *)
  if not (Hashtbl.mem t.routine_objects addr) then begin
    let base = shadow_frame.Shadow_stack.base_sp - frame_size in
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:routine ~kind:Layout.Stack ~base
        ~size:(Stdlib.max frame_size Layout.word)
        ~signature:(Printf.sprintf "stack:%s@0x%x" routine addr)
        ~alloc_phase:t.phase ()
    in
    Hashtbl.add t.routine_objects addr obj
  end;
  let frame =
    {
      routine;
      shadow_frame;
      cursor = shadow_frame.Shadow_stack.base_sp - frame_size;
      limit = shadow_frame.Shadow_stack.base_sp;
    }
  in
  Fun.protect ~finally:(fun () -> Shadow_stack.pop t.shadow) (fun () -> f frame)

let frame_carve _t frame ~words =
  if words <= 0 then invalid_arg "Ctx.frame_carve: words";
  let size = words * Layout.word in
  if frame.cursor + size > frame.limit then
    invalid_arg
      (Printf.sprintf "Ctx.frame_carve: frame of %s exhausted" frame.routine);
  let base = frame.cursor in
  frame.cursor <- base + size;
  base

let frame_routine frame = frame.routine

(* --- reference emission ----------------------------------------------- *)

let tally t iter =
  let n = Array.length t.tallies in
  if iter >= n then begin
    let n' = Stdlib.max (iter + 1) (2 * n) in
    let t' =
      Array.init n' (fun i ->
          if i < n then t.tallies.(i) else { sr = 0; sw = 0; or_ = 0; ow = 0 })
    in
    t.tallies <- t'
  end;
  t.tallies.(iter)

let attribute t addr =
  match Layout.classify addr with
  | Some Layout.Stack -> (
    match Shadow_stack.attribute t.shadow addr with
    | Some frame -> Hashtbl.find_opt t.routine_objects frame.routine_addr
    | None -> None)
  | Some (Layout.Heap | Layout.Global) -> Object_registry.lookup t.registry addr
  | None -> None

(* With sampling enabled, a reference outside the sample window is
   invisible to the whole analysis (attribution, tallies and sinks) — as
   if PIN had not instrumented it. *)
let sampling_drops t =
  match t.sampling with
  | None -> false
  | Some s ->
    let drop = s.position >= s.sample_length in
    s.position <- (s.position + 1) mod s.period;
    if drop then t.sampled_out <- t.sampled_out + 1;
    drop

let emit_observed t addr op =
  t.total_refs <- t.total_refs + 1;
  let iter = iteration_of_phase t.phase in
  let tal = tally t iter in
  let is_stack = match Layout.classify addr with
    | Some Layout.Stack -> true
    | _ -> false
  in
  (match (is_stack, op) with
  | true, Access.Read -> tal.sr <- tal.sr + 1
  | true, Access.Write -> tal.sw <- tal.sw + 1
  | false, Access.Read -> tal.or_ <- tal.or_ + 1
  | false, Access.Write -> tal.ow <- tal.ow + 1);
  (match attribute t addr with
  | Some obj -> Counters.record t.counters ~obj_id:obj.Mem_object.id ~op
  | None -> t.unattributed <- t.unattributed + 1);
  let access = { Access.addr; size = Layout.word; op } in
  List.iter (fun sink -> sink access) t.sinks

let emit t addr op = if sampling_drops t then () else emit_observed t addr op

let read_addr t ~addr = emit t addr Access.Read
let write_addr t ~addr = emit t addr Access.Write

let flops t n =
  if n < 0 then invalid_arg "Ctx.flops: negative";
  match t.instr_sink with Some sink -> sink n | None -> ()

(* --- analysis accessors ------------------------------------------------ *)

let registry t = t.registry
let counters t = t.counters
let shadow t = t.shadow
let rng t = t.rng

let stack_object_of_routine t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | None -> None
  | Some addr -> Hashtbl.find_opt t.routine_objects addr

let stack_objects t =
  Hashtbl.fold (fun _ obj acc -> obj :: acc) t.routine_objects []
  |> List.sort (fun (a : Mem_object.t) b -> compare a.id b.id)

let attribute_addr = attribute

let fast_tally t ~iter =
  if iter < 0 || iter >= Array.length t.tallies then
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
  else begin
    let tal = t.tallies.(iter) in
    {
      stack_reads = tal.sr;
      stack_writes = tal.sw;
      other_reads = tal.or_;
      other_writes = tal.ow;
    }
  end

let fast_tally_totals t =
  Array.fold_left
    (fun acc tal ->
      {
        stack_reads = acc.stack_reads + tal.sr;
        stack_writes = acc.stack_writes + tal.sw;
        other_reads = acc.other_reads + tal.or_;
        other_writes = acc.other_writes + tal.ow;
      })
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
    t.tallies

let total_references t = t.total_refs
let unattributed t = t.unattributed
