lib/appkit/ctx.mli: Nvsc_memtrace Nvsc_util
