lib/appkit/farray.mli: Ctx Nvsc_memtrace
