lib/appkit/ctx.ml: Array Fun Hashtbl List Nvsc_memtrace Nvsc_util Printf Stdlib
