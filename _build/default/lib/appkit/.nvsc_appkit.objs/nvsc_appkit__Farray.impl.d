lib/appkit/farray.ml: Array Ctx Nvsc_memtrace
