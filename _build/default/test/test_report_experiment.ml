(* The experiment harness and markdown report layer, exercised on the quick
   configuration so data-form coverage is checked without a full-scale run. *)

module E = Nvsc_core.Experiment
module Table = Nvsc_util.Table

let bundle = lazy (E.collect ~config:E.quick_config ())

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_bundle_coverage () =
  let b = Lazy.force bundle in
  Alcotest.(check int) "four apps" 4 (List.length b.E.results);
  List.iter
    (fun (r : Nvsc_core.Scavenger.result) ->
      Alcotest.(check bool) (r.app_name ^ " has metrics") true
        (r.metrics <> []);
      Alcotest.(check bool) (r.app_name ^ " has trace") true
        (r.mem_trace <> None))
    b.E.results;
  Alcotest.(check bool) "lookup works" true
    ((E.result b "gtc").app_name = "gtc");
  Alcotest.(check bool) "lookup missing raises" true
    (try
       ignore (E.result b "hpl");
       false
     with Not_found -> true)

let test_data_forms () =
  let b = Lazy.force bundle in
  Alcotest.(check int) "table5 rows" 4 (List.length (E.table5_data b));
  Alcotest.(check bool) "fig2 frames" true ((E.fig2_data b).frames <> []);
  Alcotest.(check int) "fig3-6 reports" 4 (List.length (E.fig3_6_data b));
  Alcotest.(check int) "fig7 omits gtc" 3 (List.length (E.fig7_data b));
  Alcotest.(check int) "fig8-11 all apps" 4 (List.length (E.fig8_11_data b));
  let t6 = E.table6_data b in
  Alcotest.(check int) "table6 rows" 4 (List.length t6);
  List.iter
    (fun (_, powers) ->
      Alcotest.(check int) "four technologies" 4 (List.length powers))
    t6

let test_printers_produce_output () =
  let b = Lazy.force bundle in
  let render f = Format.asprintf "%a" (fun fmt () -> f fmt) () in
  Alcotest.(check bool) "table1" true
    (contains ~needle:"Table I" (render (fun fmt -> E.table1 fmt b)));
  Alcotest.(check bool) "table2" true
    (contains ~needle:"no-write-allocate" (render (fun fmt -> E.table2 fmt ())));
  Alcotest.(check bool) "table3" true
    (contains ~needle:"miss buffer" (render (fun fmt -> E.table3 fmt ())));
  Alcotest.(check bool) "table4" true
    (contains ~needle:"PCRAM" (render (fun fmt -> E.table4 fmt ())));
  Alcotest.(check bool) "table5" true
    (contains ~needle:"Stack data analysis" (render (fun fmt -> E.table5 fmt b)));
  Alcotest.(check bool) "fig7 includes plot" true
    (contains ~needle:"cumulative MB" (render (fun fmt -> E.fig7 fmt b)));
  Alcotest.(check bool) "table6 includes bars" true
    (contains ~needle:"normalized power" (render (fun fmt -> E.table6 fmt b)))

let test_markdown_report () =
  let md = Nvsc_core.Report.markdown_of_bundle (Lazy.force bundle) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle md))
    [
      "# NV-Scavenger evaluation report";
      "## Table V";
      "## Table VI";
      "## Figure 12";
      "| nek5000 |";
      "[20.39]" (* the paper's CAM value is quoted *);
      "[0.688]" (* the paper's Table VI Nek5000 PCRAM value *);
    ]

let test_markdown_table_escaping () =
  let t = Table.create ~title:"T" [ ("A|B", Table.Left) ] in
  Table.add_row t [ "x|y" ];
  let md = Table.to_markdown t in
  Alcotest.(check bool) "pipes escaped" true (contains ~needle:"x\\|y" md);
  Alcotest.(check bool) "title bold" true (contains ~needle:"**T**" md);
  Alcotest.(check bool) "alignment marker" true (contains ~needle:"| --- |" md)

let test_multi_task () =
  let a =
    Nvsc_core.Multi_task.run ~tasks:3 ~base_scale:0.25 ~iterations:2
      (Option.get (Nvsc_apps.Apps.find "s3d"))
  in
  Alcotest.(check int) "three tasks" 3 (List.length a.Nvsc_core.Multi_task.tasks);
  Alcotest.(check bool) "footprint summed" true
    (a.Nvsc_core.Multi_task.footprint_total
    > (List.hd a.Nvsc_core.Multi_task.tasks).Nvsc_core.Multi_task.footprint_bytes);
  (* the paper profiles one rank: its conclusions must be representative *)
  Alcotest.(check bool) "one rank is representative" true
    a.Nvsc_core.Multi_task.representative;
  Alcotest.(check bool) "scales differ (imbalance)" true
    (let scales =
       List.map
         (fun (t : Nvsc_core.Multi_task.task_summary) -> t.scale)
         a.Nvsc_core.Multi_task.tasks
     in
     List.length (List.sort_uniq compare scales) = 3)

(* property: the perf model's runtime is monotone in memory latency for any
   access pattern *)
let perf_monotone_prop =
  QCheck.Test.make ~name:"perf runtime monotone in latency" ~count:20
    QCheck.(list_of_size Gen.(int_range 10 400) (int_range 0 100_000))
    (fun lines ->
      let run lat =
        let m = Nvsc_cpusim.Perf_model.create ~mem_latency_ns:lat () in
        List.iter
          (fun l ->
            Nvsc_cpusim.Perf_model.instructions m 3;
            Nvsc_cpusim.Perf_model.access m
              (Nvsc_memtrace.Access.read ~addr:(l * 64) ~size:8))
          lines;
        (Nvsc_cpusim.Perf_model.report m).Nvsc_cpusim.Perf_model.runtime_ns
      in
      let t10 = run 10. and t20 = run 20. and t100 = run 100. in
      t10 <= t20 +. 1e-9 && t20 <= t100 +. 1e-9)

(* property: controller energy components grow monotonically with traffic *)
let controller_monotone_prop =
  QCheck.Test.make ~name:"controller energy monotone in traffic" ~count:20
    QCheck.(int_range 1 2000)
    (fun n ->
      let run k =
        let c =
          Nvsc_dramsim.Controller.create
            ~tech:(Nvsc_nvram.Technology.get Nvsc_nvram.Technology.DDR3) ()
        in
        for i = 0 to k - 1 do
          Nvsc_dramsim.Controller.submit c
            (Nvsc_memtrace.Access.read ~addr:(i * 64) ~size:64)
        done;
        (Nvsc_dramsim.Controller.stats c).Nvsc_dramsim.Controller.burst_energy_nj
      in
      run n < run (n + 100))

let suite =
  [
    Alcotest.test_case "bundle coverage" `Slow test_bundle_coverage;
    Alcotest.test_case "data forms" `Slow test_data_forms;
    Alcotest.test_case "printers produce output" `Slow
      test_printers_produce_output;
    Alcotest.test_case "markdown report" `Slow test_markdown_report;
    Alcotest.test_case "markdown table escaping" `Quick
      test_markdown_table_escaping;
    Alcotest.test_case "multi-task representativeness" `Slow test_multi_task;
    QCheck_alcotest.to_alcotest perf_monotone_prop;
    QCheck_alcotest.to_alcotest controller_monotone_prop;
  ]
