(* Paper-shape acceptance checks (the criteria recorded in DESIGN.md).

   These run the full pipeline — apps, scavenger, cache filter, power
   simulator, performance model — at the default scale and assert the
   qualitative results of every table and figure: who wins, by roughly what
   factor, and where the crossovers fall.  Bands are deliberately generous;
   exact values live in EXPERIMENTS.md. *)

module E = Nvsc_core.Experiment
module Tech = Nvsc_nvram.Technology

let bundle =
  lazy
    (E.collect
       ~config:{ E.scale = 1.0; iterations = 10; perf_scale = 0.5 }
       ())

let in_band name lo hi v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.3f in [%.3f, %.3f]" name v lo hi)
    true
    (v >= lo && v <= hi)

let summary app =
  List.find
    (fun (s : Nvsc_core.Stack_analysis.summary) -> s.app_name = app)
    (E.table5_data (Lazy.force bundle))

(* --- Table V ----------------------------------------------------------- *)

let test_table5_stack_shares () =
  (* paper: nek 75.6%, cam 76.3%, gtc 44.3%, s3d 63.1% *)
  in_band "nek stack %" 0.70 0.83 (summary "nek5000").reference_pct;
  in_band "cam stack %" 0.70 0.86 (summary "cam").reference_pct;
  in_band "gtc stack %" 0.38 0.52 (summary "gtc").reference_pct;
  in_band "s3d stack %" 0.55 0.70 (summary "s3d").reference_pct;
  (* orderings the paper emphasises *)
  Alcotest.(check bool) "nek & cam above 70%" true
    ((summary "nek5000").reference_pct > 0.7
    && (summary "cam").reference_pct > 0.7);
  Alcotest.(check bool) "gtc lowest" true
    (List.for_all
       (fun app -> (summary "gtc").reference_pct <= (summary app).reference_pct)
       [ "nek5000"; "cam"; "s3d" ])

let test_table5_stack_ratios () =
  (* paper: nek 6.33, cam 20.39 (11.46 first iter), gtc 3.48, s3d 6.04 *)
  in_band "nek ratio" 5. 9. (summary "nek5000").steady_ratio;
  in_band "cam ratio" 14. 27. (summary "cam").steady_ratio;
  in_band "gtc ratio" 2.5 4.5 (summary "gtc").steady_ratio;
  in_band "s3d ratio" 5. 7.5 (summary "s3d").steady_ratio;
  (* CAM's first iteration is distinctly lower *)
  let cam = summary "cam" in
  Alcotest.(check bool) "cam first iter depressed" true
    (cam.first_iter_ratio < 0.75 *. cam.steady_ratio);
  in_band "cam first iter" 7. 14. cam.first_iter_ratio;
  (* non-CAM ratios are > 1 but < 7.5 ("moderately higher") *)
  Alcotest.(check bool) "others moderate" true
    (List.for_all
       (fun app ->
         let s = summary app in
         s.steady_ratio > 1. && s.steady_ratio < 9.)
       [ "nek5000"; "gtc"; "s3d" ])

(* --- Figure 2 ---------------------------------------------------------- *)

let test_fig2_distribution () =
  (* paper: 43.3% of CAM stack objects ratio>10 carrying 68.9% of refs;
     3.2% ratio>50 carrying 8.9% *)
  let d = E.fig2_data (Lazy.force bundle) in
  in_band "objects >10" 0.30 0.55 d.pct_objects_ratio_gt_10;
  in_band "refs >10" 0.55 0.85 d.refs_share_ratio_gt_10;
  Alcotest.(check bool) "some frames above 50" true
    (d.pct_objects_ratio_gt_50 > 0.);
  in_band "refs >50" 0.03 0.20 d.refs_share_ratio_gt_50;
  Alcotest.(check bool) "a dozen routines" true (List.length d.frames >= 8)

(* --- Figures 3-6 ------------------------------------------------------- *)

let report app =
  List.find
    (fun (r : Nvsc_core.Object_analysis.report) -> r.app_name = app)
    (E.fig3_6_data (Lazy.force bundle))

let test_fig3_6_read_only () =
  (* paper: read-only data common in all apps; nek 7.1%, cam 15.5% *)
  List.iter
    (fun app ->
      Alcotest.(check bool) (app ^ " has read-only objects") true
        (List.exists
           (fun (row : Nvsc_core.Object_analysis.row) ->
             row.reads > 0 && row.writes = 0)
           (report app).rows))
    [ "nek5000"; "cam"; "gtc"; "s3d" ];
  in_band "nek read-only fraction" 0.04 0.12 (report "nek5000").read_only_fraction;
  in_band "cam read-only fraction" 0.10 0.25 (report "cam").read_only_fraction

let test_fig3_6_ratio_groups () =
  (* nek and cam have objects with ratio > 50 that are still written *)
  Alcotest.(check bool) "nek >50 group" true
    ((report "nek5000").ratio_gt_50_bytes > 0);
  Alcotest.(check bool) "cam >50 group" true ((report "cam").ratio_gt_50_bytes > 0);
  (* "except for GTC, most memory objects have more reads than writes" *)
  List.iter
    (fun app ->
      Alcotest.(check bool) (app ^ " majority read-dominated") true
        ((report app).ratio_gt_1_fraction > 0.5))
    [ "cam"; "s3d"; "nek5000" ];
  Alcotest.(check bool) "gtc write-heavy" true
    ((report "gtc").ratio_gt_1_fraction < 0.5)

let test_footprint_ordering () =
  (* paper Table I: nek 824 > cam 608 > s3d 512 > gtc 218 MB *)
  let fp app =
    (List.find
       (fun (r : Nvsc_core.Scavenger.result) -> r.app_name = app)
       (Lazy.force bundle).E.results)
      .footprint_bytes
  in
  Alcotest.(check bool) "nek > cam" true (fp "nek5000" > fp "cam");
  Alcotest.(check bool) "cam > s3d" true (fp "cam" > fp "s3d");
  Alcotest.(check bool) "s3d > gtc" true (fp "s3d" > fp "gtc")

(* --- Figure 7 ---------------------------------------------------------- *)

let test_fig7_untouched () =
  let b = Lazy.force bundle in
  let untouched app =
    Nvsc_core.Usage_variance.untouched_in_main_fraction (E.result b app)
  in
  (* paper: nek ~24.3%, cam ~11.5%, s3d small; gtc omitted (flat) *)
  in_band "nek untouched" 0.18 0.30 (untouched "nek5000");
  in_band "cam untouched" 0.07 0.16 (untouched "cam");
  in_band "s3d untouched" 0.0 0.05 (untouched "s3d");
  Alcotest.(check (float 1e-9)) "gtc flat" 0. (untouched "gtc");
  (* gtc is excluded from the figure, as in the paper *)
  Alcotest.(check bool) "gtc omitted" true
    (not (List.mem_assoc "gtc" (E.fig7_data b)))

let test_fig7_uneven_usage () =
  (* "some memory objects in Nek5000 and CAM are unevenly touched... used
     within a few computation iterations": the CDF must rise strictly
     between x=0 and x=n for both apps *)
  let b = Lazy.force bundle in
  List.iter
    (fun app ->
      let points = List.assoc app (E.fig7_data b) in
      let at x =
        (List.find
           (fun (p : Nvsc_core.Usage_variance.cdf_point) ->
             p.iterations_used = x)
           points)
          .cumulative_bytes
      in
      Alcotest.(check bool) (app ^ " has few-iteration objects") true
        (at 6 > at 0))
    [ "nek5000"; "cam" ]

let test_fig7_cdf_monotone () =
  List.iter
    (fun (_, points) ->
      let rec check prev = function
        | [] -> ()
        | (p : Nvsc_core.Usage_variance.cdf_point) :: rest ->
          Alcotest.(check bool) "monotone" true (p.cumulative_bytes >= prev);
          check p.cumulative_bytes rest
      in
      check 0 points)
    (E.fig7_data (Lazy.force bundle))

(* --- Figures 8-11 ------------------------------------------------------ *)

let test_fig8_11_stability () =
  let b = Lazy.force bundle in
  List.iter
    (fun (app, v) ->
      Alcotest.(check bool)
        (app ^ " >60% of objects in [1,2)")
        true
        (Nvsc_core.Usage_variance.stable_fraction v > 0.6))
    (E.fig8_11_data b);
  (* S3D and GTC: reference rates essentially unchanged across iterations *)
  List.iter
    (fun app ->
      let v = List.assoc app (E.fig8_11_data b) in
      Alcotest.(check bool) (app ^ " rates unchanged") true
        (v.Nvsc_core.Usage_variance.rate_unchanged.(v.iterations - 1) > 0.9))
    [ "gtc"; "s3d" ]

(* --- Table VI ---------------------------------------------------------- *)

let test_table6_power () =
  let data = E.table6_data (Lazy.force bundle) in
  List.iter
    (fun (app, powers) ->
      let get tech =
        snd (List.find (fun ((t : Tech.t), _) -> t.tech = tech) powers)
      in
      Alcotest.(check (float 1e-9)) (app ^ " DDR3 = 1") 1.0 (get Tech.DDR3);
      let p = get Tech.PCRAM and s = get Tech.STTRAM and m = get Tech.MRAM in
      (* paper: 0.682-0.730 across apps and technologies *)
      in_band (app ^ " PCRAM") 0.62 0.74 p;
      in_band (app ^ " STTRAM") 0.64 0.76 s;
      in_band (app ^ " MRAM") 0.64 0.76 m;
      (* at least ~25% saving; the paper claims at least 27% *)
      Alcotest.(check bool) (app ^ " saves power") true (m <= 0.76);
      (* the paper's counter-intuitive ordering: the slower device is the
         *less* loaded, hence lower average power *)
      Alcotest.(check bool) (app ^ " PCRAM <= STTRAM") true (p <= s +. 1e-9);
      Alcotest.(check bool) (app ^ " STTRAM <= MRAM") true (s <= m +. 1e-9))
    data

(* --- Figure 12 --------------------------------------------------------- *)

let fig12 = lazy (E.fig12_data ~config:{ E.default_config with E.perf_scale = 0.5 } ())

let test_fig12_sensitivity () =
  List.iter
    (fun (app, points) ->
      let get name =
        (List.find
           (fun (p : Nvsc_cpusim.Sensitivity.point) -> p.tech.Tech.name = name)
           points)
          .normalized_runtime
      in
      Alcotest.(check (float 1e-9)) (app ^ " DDR3 = 1") 1.0 (get "DDR3");
      (* +20% latency (MRAM): negligible loss *)
      in_band (app ^ " MRAM") 1.0 1.02 (get "MRAM");
      (* 2x latency (STTRAM): < 5% loss *)
      in_band (app ^ " STTRAM") 1.0 1.05 (get "STTRAM");
      (* 10x latency (PCRAM): visible loss, up to ~25-30% *)
      in_band (app ^ " PCRAM") 1.0 1.45 (get "PCRAM");
      Alcotest.(check bool) (app ^ " PCRAM worst") true
        (get "PCRAM" >= get "STTRAM" && get "STTRAM" >= get "MRAM" -. 1e-9))
    (Lazy.force fig12)

let test_fig12_pcram_can_hurt () =
  (* "the performance loss can be as high as 25%": at least one app shows
     a substantial PCRAM penalty *)
  let worst =
    List.fold_left
      (fun acc (_, points) ->
        let p =
          (List.find
             (fun (p : Nvsc_cpusim.Sensitivity.point) ->
               p.tech.Tech.name = "PCRAM")
             points)
            .normalized_runtime
        in
        Float.max acc p)
      0. (Lazy.force fig12)
  in
  in_band "worst PCRAM penalty" 1.15 1.45 worst

(* --- cross-cutting ----------------------------------------------------- *)

let test_pipeline_hygiene () =
  List.iter
    (fun (r : Nvsc_core.Scavenger.result) ->
      Alcotest.(check int) (r.app_name ^ " fully attributed") 0 r.unattributed;
      Alcotest.(check bool) (r.app_name ^ " trace collected") true
        (match r.mem_trace with
        | Some t -> Nvsc_memtrace.Trace_log.length t > 0
        | None -> false);
      Alcotest.(check bool) (r.app_name ^ " caches filter traffic") true
        (r.l2_miss_rate < 0.9))
    (Lazy.force bundle).E.results

let suite =
  [
    Alcotest.test_case "Table V: stack reference shares" `Slow
      test_table5_stack_shares;
    Alcotest.test_case "Table V: stack read/write ratios" `Slow
      test_table5_stack_ratios;
    Alcotest.test_case "Figure 2: CAM frame distribution" `Slow
      test_fig2_distribution;
    Alcotest.test_case "Figures 3-6: read-only data" `Slow test_fig3_6_read_only;
    Alcotest.test_case "Figures 3-6: ratio groups" `Slow test_fig3_6_ratio_groups;
    Alcotest.test_case "Table I: footprint ordering" `Slow
      test_footprint_ordering;
    Alcotest.test_case "Figure 7: untouched data" `Slow test_fig7_untouched;
    Alcotest.test_case "Figure 7: uneven usage" `Slow test_fig7_uneven_usage;
    Alcotest.test_case "Figure 7: CDF monotone" `Slow test_fig7_cdf_monotone;
    Alcotest.test_case "Figures 8-11: stability" `Slow test_fig8_11_stability;
    Alcotest.test_case "Table VI: power band and ordering" `Slow
      test_table6_power;
    Alcotest.test_case "Figure 12: latency sensitivity" `Slow
      test_fig12_sensitivity;
    Alcotest.test_case "Figure 12: PCRAM can hurt" `Slow
      test_fig12_pcram_can_hurt;
    Alcotest.test_case "pipeline hygiene" `Slow test_pipeline_hygiene;
  ]
