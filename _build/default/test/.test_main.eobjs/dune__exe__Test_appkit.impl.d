test/test_appkit.ml: Alcotest List Nvsc_appkit Nvsc_memtrace Option String
