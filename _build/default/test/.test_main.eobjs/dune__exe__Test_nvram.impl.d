test/test_nvram.ml: Alcotest List Nvsc_nvram Option QCheck QCheck_alcotest String
