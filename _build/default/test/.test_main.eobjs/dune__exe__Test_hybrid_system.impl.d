test/test_hybrid_system.ml: Alcotest List Nvsc_dramsim Nvsc_memtrace Nvsc_nvram
