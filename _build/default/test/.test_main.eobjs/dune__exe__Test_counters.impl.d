test/test_counters.ml: Alcotest Gen List Nvsc_memtrace Printf QCheck QCheck_alcotest
