test/test_hierarchy.ml: Alcotest Gen Hashtbl List Nvsc_cachesim Nvsc_memtrace QCheck QCheck_alcotest
