test/test_cache.ml: Alcotest Gen List Nvsc_cachesim QCheck QCheck_alcotest
