test/test_org_mapping.ml: Alcotest Nvsc_dramsim Printf QCheck QCheck_alcotest
