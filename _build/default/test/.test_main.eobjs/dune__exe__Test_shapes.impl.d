test/test_shapes.ml: Alcotest Array Float Lazy List Nvsc_core Nvsc_cpusim Nvsc_memtrace Nvsc_nvram Printf
