test/test_apps.ml: Alcotest List Nvsc_appkit Nvsc_apps Nvsc_memtrace Option
