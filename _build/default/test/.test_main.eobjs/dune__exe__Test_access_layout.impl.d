test/test_access_layout.ml: Alcotest Nvsc_memtrace QCheck QCheck_alcotest
