test/test_mem_object.ml: Alcotest Nvsc_memtrace
