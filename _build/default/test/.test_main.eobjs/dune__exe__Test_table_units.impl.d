test/test_table_units.ml: Alcotest Float Format List Nvsc_util String
