test/test_histogram.ml: Alcotest Array Float Gen List Nvsc_util QCheck QCheck_alcotest
