test/test_buffers.ml: Alcotest Array Fun Gen List Nvsc_memtrace Printf QCheck QCheck_alcotest
