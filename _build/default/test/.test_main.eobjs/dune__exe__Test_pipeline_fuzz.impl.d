test/test_pipeline_fuzz.ml: Array Float List Nvsc_appkit Nvsc_apps Nvsc_core Nvsc_memtrace Printf QCheck QCheck_alcotest Stdlib
