test/test_stats.ml: Alcotest Float Gen List Nvsc_util QCheck QCheck_alcotest
