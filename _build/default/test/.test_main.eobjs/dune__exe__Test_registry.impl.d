test/test_registry.ml: Alcotest Gen List Nvsc_memtrace Nvsc_util QCheck QCheck_alcotest
