test/test_placement.ml: Alcotest Gen List Nvsc_nvram Nvsc_placement Printf QCheck QCheck_alcotest
