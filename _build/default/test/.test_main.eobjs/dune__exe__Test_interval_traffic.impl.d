test/test_interval_traffic.ml: Alcotest Float Gen Lazy List Nvsc_apps Nvsc_core Nvsc_nvram Nvsc_util Option QCheck QCheck_alcotest
