test/test_dramsim.ml: Alcotest Gen List Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_util QCheck QCheck_alcotest
