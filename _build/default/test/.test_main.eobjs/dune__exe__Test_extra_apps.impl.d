test/test_extra_apps.ml: Alcotest Array List Nvsc_apps Nvsc_core Nvsc_memtrace Option Printf
