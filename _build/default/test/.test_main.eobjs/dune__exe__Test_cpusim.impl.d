test/test_cpusim.ml: Alcotest Gen List Nvsc_cpusim Nvsc_memtrace Nvsc_nvram Nvsc_util QCheck QCheck_alcotest
