test/test_report_experiment.ml: Alcotest Format Gen Lazy List Nvsc_apps Nvsc_core Nvsc_cpusim Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_util Option QCheck QCheck_alcotest String
