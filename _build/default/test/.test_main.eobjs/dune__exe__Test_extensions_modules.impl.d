test/test_extensions_modules.ml: Alcotest Filename Fun List Nvsc_appkit Nvsc_apps Nvsc_core Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_placement Nvsc_util Option String Sys
