test/test_wear_leveling.ml: Alcotest Array Gen Hashtbl List Nvsc_nvram Nvsc_util Printf QCheck QCheck_alcotest
