test/test_scheduler.ml: Alcotest Float Gen List Nvsc_dramsim Nvsc_memtrace Nvsc_nvram QCheck QCheck_alcotest
