test/test_shadow_stack.ml: Alcotest Gen List Nvsc_memtrace QCheck QCheck_alcotest
