test/test_core.ml: Alcotest Array Lazy List Nvsc_appkit Nvsc_apps Nvsc_core Nvsc_memtrace
