test/test_rng.ml: Alcotest Array Float Fun Nvsc_util
