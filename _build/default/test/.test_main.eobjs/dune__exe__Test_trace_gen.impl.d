test/test_trace_gen.ml: Alcotest Float List Nvsc_dramsim Nvsc_memtrace Nvsc_nvram
