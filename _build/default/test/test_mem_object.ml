module Mem_object = Nvsc_memtrace.Mem_object
module Layout = Nvsc_memtrace.Layout

let mk ?(kind = Layout.Global) ?(base = 0x0800_0000) ?(size = 64) ~id name =
  Mem_object.make ~id ~name ~kind ~base ~size ()

let test_contains () =
  let o = mk ~id:1 "a" ~base:100 ~size:10 in
  Alcotest.(check bool) "first byte" true (Mem_object.contains o 100);
  Alcotest.(check bool) "last byte" true (Mem_object.contains o 109);
  Alcotest.(check bool) "past end" false (Mem_object.contains o 110);
  Alcotest.(check bool) "before" false (Mem_object.contains o 99);
  Alcotest.(check int) "last_byte" 109 (Mem_object.last_byte o)

let test_overlaps () =
  let o = mk ~id:1 "a" ~base:100 ~size:10 in
  Alcotest.(check bool) "overlap left" true (Mem_object.overlaps o ~base:95 ~size:6);
  Alcotest.(check bool) "overlap inside" true (Mem_object.overlaps o ~base:104 ~size:2);
  Alcotest.(check bool) "touching is disjoint" false
    (Mem_object.overlaps o ~base:110 ~size:5);
  Alcotest.(check bool) "disjoint" false (Mem_object.overlaps o ~base:0 ~size:10)

let test_merge () =
  let a = mk ~id:1 "blk1" ~base:100 ~size:10 in
  let b = mk ~id:2 "blk2" ~base:105 ~size:20 in
  let m = Mem_object.merge_overlapping a b ~id:3 in
  Alcotest.(check int) "base" 100 m.Mem_object.base;
  Alcotest.(check int) "size is hull" 25 m.Mem_object.size;
  Alcotest.(check string) "combined name" "blk1+blk2" m.Mem_object.name;
  Alcotest.(check bool) "live" true m.Mem_object.live

let test_merge_rejects_non_global () =
  let a = mk ~id:1 "h" ~kind:Layout.Heap ~base:Nvsc_memtrace.Layout.heap_base in
  let b = mk ~id:2 "g" in
  Alcotest.check_raises "non-global merge"
    (Invalid_argument "Mem_object.merge_overlapping: only global objects merge")
    (fun () -> ignore (Mem_object.merge_overlapping a b ~id:3))

let test_size_validation () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Mem_object.make: size must be positive") (fun () ->
      ignore (mk ~id:1 "bad" ~size:0))

let test_default_signature () =
  let o = mk ~id:1 "sym" in
  Alcotest.(check string) "signature defaults to name" "sym"
    o.Mem_object.signature

let suite =
  [
    Alcotest.test_case "contains" `Quick test_contains;
    Alcotest.test_case "overlaps" `Quick test_overlaps;
    Alcotest.test_case "merge overlapping globals" `Quick test_merge;
    Alcotest.test_case "merge rejects non-global" `Quick
      test_merge_rejects_non_global;
    Alcotest.test_case "size validation" `Quick test_size_validation;
    Alcotest.test_case "default signature" `Quick test_default_signature;
  ]
