module R = Nvsc_memtrace.Object_registry
module Mem_object = Nvsc_memtrace.Mem_object
module Layout = Nvsc_memtrace.Layout

let heap_obj ~id ~base ~size name =
  Mem_object.make ~id ~name ~kind:Layout.Heap ~base ~size ()

let global_obj ~id ~base ~size name =
  Mem_object.make ~id ~name ~kind:Layout.Global ~base ~size ()

let test_lookup_hit_miss () =
  let r = R.create () in
  let o = R.register r (heap_obj ~id:1 ~base:Layout.heap_base ~size:128 "h") in
  Alcotest.(check bool) "hit at base" true (R.lookup r Layout.heap_base = Some o);
  Alcotest.(check bool) "hit at last byte" true
    (R.lookup r (Layout.heap_base + 127) = Some o);
  Alcotest.(check bool) "miss past end" true
    (R.lookup r (Layout.heap_base + 128) = None)

let test_lookup_equals_linear_scan_prop =
  QCheck.Test.make ~name:"registry lookup = linear scan" ~count:50
    QCheck.(
      pair (int_range 1 60)
        (list_of_size Gen.(int_range 1 400) (int_range 0 (1 lsl 22))))
    (fun (nobj, probes) ->
      let r = R.create ~bucket_bits:10 () in
      let rng = Nvsc_util.Rng.of_int nobj in
      let objs = ref [] in
      let next_base = ref Layout.heap_base in
      for i = 1 to nobj do
        let size = 8 * (1 + Nvsc_util.Rng.int rng 512) in
        let gap = 8 * Nvsc_util.Rng.int rng 64 in
        let o = heap_obj ~id:i ~base:(!next_base + gap) ~size "x" in
        next_base := !next_base + gap + size;
        objs := R.register r o :: !objs
      done;
      List.for_all
        (fun p ->
          let addr = Layout.heap_base + p in
          let linear =
            List.find_opt (fun o -> Mem_object.contains o addr) !objs
          in
          let fast = R.lookup r addr in
          match (linear, fast) with
          | None, None -> true
          | Some a, Some b -> a.Mem_object.id = b.Mem_object.id
          | _ -> false)
        probes)

let test_dead_vs_live_preference () =
  let r = R.create () in
  let dead = R.register r (heap_obj ~id:1 ~base:Layout.heap_base ~size:64 "old") in
  R.deallocate r dead;
  (* a new live object reuses the same address range *)
  let live = R.register r (heap_obj ~id:2 ~base:Layout.heap_base ~size:64 "new") in
  (match R.lookup r Layout.heap_base with
  | Some o -> Alcotest.(check int) "live preferred" live.Mem_object.id o.Mem_object.id
  | None -> Alcotest.fail "expected a hit");
  (* when only the dead object covers an address, it is still returned *)
  R.deallocate r live;
  match R.lookup r Layout.heap_base with
  | Some o -> Alcotest.(check bool) "dead fallback" true (not o.Mem_object.live)
  | None -> Alcotest.fail "expected dead fallback"

let test_signature_roundtrip () =
  let r = R.create () in
  let o = R.register r (heap_obj ~id:7 ~base:Layout.heap_base ~size:64 "site_a") in
  Alcotest.(check bool) "found" true (R.find_by_signature r "site_a" = Some o);
  Alcotest.(check bool) "missing" true (R.find_by_signature r "nope" = None);
  R.deallocate r o;
  R.revive r o;
  Alcotest.(check bool) "revive restores live" true o.Mem_object.live

let test_global_merge () =
  let r = R.create () in
  let base = Layout.global_base in
  let _ = R.register r (global_obj ~id:1 ~base ~size:100 "c1") in
  let merged = R.register r (global_obj ~id:2 ~base:(base + 50) ~size:100 "c2") in
  Alcotest.(check int) "one object" 1 (R.object_count r);
  Alcotest.(check int) "hull size" 150 merged.Mem_object.size;
  (match R.lookup r (base + 120) with
  | Some o -> Alcotest.(check int) "merged covers union" merged.Mem_object.id o.Mem_object.id
  | None -> Alcotest.fail "lookup in merged range");
  (* merging is transitive across several pre-existing blocks *)
  let far = R.register r (global_obj ~id:3 ~base:(base + 400) ~size:50 "c3") in
  let bridge =
    R.register r (global_obj ~id:4 ~base:(base + 100) ~size:350 "c4")
  in
  Alcotest.(check int) "all merged" 1 (R.object_count r);
  Alcotest.(check bool) "bridge covers everything" true
    (Mem_object.contains bridge base
    && Mem_object.contains bridge (base + 449));
  ignore far

let test_disjoint_globals_not_merged () =
  let r = R.create () in
  let base = Layout.global_base in
  let _ = R.register r (global_obj ~id:1 ~base ~size:100 "a") in
  let _ = R.register r (global_obj ~id:2 ~base:(base + 100) ~size:100 "b") in
  Alcotest.(check int) "two objects" 2 (R.object_count r)

let test_rebalance_triggers () =
  let r = R.create ~bucket_bits:20 () in
  let bits0 = R.bucket_bits r in
  (* cram many small objects into one 1 MiB bucket *)
  for i = 0 to 199 do
    ignore
      (R.register r (heap_obj ~id:i ~base:(Layout.heap_base + (i * 16)) ~size:16 "s"))
  done;
  Alcotest.(check bool) "bucket width narrowed" true (R.bucket_bits r < bits0);
  (* lookups still correct after rebuild *)
  match R.lookup r (Layout.heap_base + (57 * 16)) with
  | Some o -> Alcotest.(check int) "correct object" 57 o.Mem_object.id
  | None -> Alcotest.fail "lookup after rebalance"

let test_cache_effectiveness () =
  let r = R.create () in
  let o = R.register r (heap_obj ~id:1 ~base:Layout.heap_base ~size:4096 "hot") in
  for i = 0 to 999 do
    ignore (R.lookup r (Layout.heap_base + (i mod 4096)))
  done;
  Alcotest.(check bool) "cache absorbs repeats" true (R.cache_hit_rate r > 0.9);
  Alcotest.(check bool) "few scans" true (R.lookup_scans r < 100);
  ignore o

let test_objects_listing () =
  let r = R.create () in
  let a = R.register r (heap_obj ~id:1 ~base:Layout.heap_base ~size:8 "a") in
  let b = R.register r (heap_obj ~id:2 ~base:(Layout.heap_base + 8) ~size:8 "b") in
  Alcotest.(check (list int)) "registration order"
    [ a.Mem_object.id; b.Mem_object.id ]
    (List.map (fun (o : Mem_object.t) -> o.id) (R.objects r))

let suite =
  [
    Alcotest.test_case "lookup hit/miss" `Quick test_lookup_hit_miss;
    QCheck_alcotest.to_alcotest test_lookup_equals_linear_scan_prop;
    Alcotest.test_case "dead vs live preference" `Quick
      test_dead_vs_live_preference;
    Alcotest.test_case "signature roundtrip" `Quick test_signature_roundtrip;
    Alcotest.test_case "common-block merge" `Quick test_global_merge;
    Alcotest.test_case "disjoint globals kept" `Quick
      test_disjoint_globals_not_merged;
    Alcotest.test_case "dynamic rebalance" `Quick test_rebalance_triggers;
    Alcotest.test_case "LRU software cache" `Quick test_cache_effectiveness;
    Alcotest.test_case "objects listing" `Quick test_objects_listing;
  ]
