module Item = Nvsc_placement.Item
module HM = Nvsc_placement.Hybrid_memory
module Static = Nvsc_placement.Static_policy
module Dynamic = Nvsc_placement.Dynamic_policy
module Tech = Nvsc_nvram.Technology

let item ?(reads = 100) ?(writes = 10) ?(size = 64 * 1024) ?(share = 0.01) id
    name =
  { Item.id; name; size_bytes = size; reads; writes; ref_share = share }

let sttram = Tech.get Tech.STTRAM

let mk ?(dram = 1 lsl 20) ?(nvram = 1 lsl 20) () =
  HM.create ~dram_bytes:dram ~nvram_bytes:nvram ~tech:sttram

(* --- item -------------------------------------------------------------- *)

let test_item_metrics () =
  let i = item ~reads:30 ~writes:10 ~share:0.2 1 "x" in
  Alcotest.(check (float 1e-9)) "ratio" 3. (Item.rw_ratio i);
  Alcotest.(check (float 1e-9)) "write share" 0.05 (Item.write_share i);
  let s = Item.suitability i in
  Alcotest.(check int) "suitability carries size" i.Item.size_bytes
    s.Nvsc_nvram.Suitability.size_bytes

(* --- hybrid memory ----------------------------------------------------- *)

let test_place_and_capacity () =
  let h = mk ~nvram:(100 * 1024) () in
  let a = item ~size:(60 * 1024) 1 "a" in
  let b = item ~size:(60 * 1024) 2 "b" in
  HM.place h a HM.Nvram;
  Alcotest.(check int) "used" (60 * 1024) (HM.used_bytes h HM.Nvram);
  Alcotest.(check int) "free" (40 * 1024) (HM.free_bytes h HM.Nvram);
  Alcotest.check_raises "over capacity"
    (Invalid_argument "Hybrid_memory.place: capacity exceeded") (fun () ->
      HM.place h b HM.Nvram);
  Alcotest.check_raises "double placement"
    (Invalid_argument "Hybrid_memory.place: item already placed") (fun () ->
      HM.place h a HM.Dram)

let test_migrate () =
  let h = mk () in
  let a = item 1 "a" in
  HM.place h a HM.Dram;
  HM.migrate h a HM.Nvram;
  Alcotest.(check bool) "moved" true (HM.location h a = Some HM.Nvram);
  Alcotest.(check int) "dram freed" 0 (HM.used_bytes h HM.Dram);
  Alcotest.(check int) "migrations" 1 (HM.migrations h);
  Alcotest.(check int) "bytes" a.Item.size_bytes (HM.migrated_bytes h);
  (* same-destination migration is free *)
  HM.migrate h a HM.Nvram;
  Alcotest.(check int) "no-op migration" 1 (HM.migrations h)

let test_validation () =
  Alcotest.check_raises "dram tech rejected"
    (Invalid_argument "Hybrid_memory.create: tech must be an NVRAM technology")
    (fun () ->
      ignore
        (HM.create ~dram_bytes:1 ~nvram_bytes:1 ~tech:(Tech.get Tech.DDR3)))

let test_assessment () =
  let h = mk () in
  let ro = item ~reads:1000 ~writes:0 ~size:(512 * 1024) ~share:0.5 1 "ro" in
  let hot = item ~reads:100 ~writes:900 ~size:(512 * 1024) ~share:0.5 2 "hot" in
  HM.place h ro HM.Nvram;
  HM.place h hot HM.Dram;
  let a = HM.assess h in
  Alcotest.(check (float 1e-9)) "half the bytes" 0.5 a.HM.nvram_fraction;
  Alcotest.(check (float 1e-9)) "standby saving = nvram fraction" 0.5
    a.HM.standby_saving;
  Alcotest.(check (float 1e-9)) "no writes to NVRAM" 0.
    a.HM.write_traffic_to_nvram;
  (* reads: 1000 of 1100 go to STTRAM whose read latency equals DRAM *)
  Alcotest.(check (float 1e-9)) "read latency unchanged" 10.
    a.HM.avg_read_latency_ns;
  Alcotest.(check (float 1e-9)) "writes stay at DRAM speed" 10.
    a.HM.avg_write_latency_ns;
  Alcotest.(check (float 1e-9)) "no slowdown" 1.0 a.HM.slowdown_bound

let test_assessment_write_penalty () =
  let h = mk () in
  let w = item ~reads:0 ~writes:100 ~share:1.0 1 "w" in
  HM.place h w HM.Nvram;
  let a = HM.assess h in
  Alcotest.(check (float 1e-9)) "all writes to NVRAM" 1.0
    a.HM.write_traffic_to_nvram;
  Alcotest.(check (float 1e-9)) "write latency is STTRAM's" 20.
    a.HM.avg_write_latency_ns;
  Alcotest.(check (float 1e-9)) "slowdown bound 2x" 2.0 a.HM.slowdown_bound

(* --- static policy ----------------------------------------------------- *)

let test_static_plan_separates () =
  let h = mk ~dram:(10 lsl 20) ~nvram:(10 lsl 20) () in
  let ro = item ~reads:10_000 ~writes:0 ~size:(1 lsl 20) ~share:0.05 1 "ro" in
  let hot = item ~reads:100 ~writes:100 ~size:(1 lsl 20) ~share:0.6 2 "hot" in
  let cold_high = item ~reads:900 ~writes:10 ~size:(2 lsl 20) ~share:0.05 3 "aux" in
  let h = Static.plan ~hybrid:h [ ro; hot; cold_high ] in
  Alcotest.(check bool) "read-only in NVRAM" true
    (HM.location h ro = Some HM.Nvram);
  Alcotest.(check bool) "high-ratio in NVRAM" true
    (HM.location h cold_high = Some HM.Nvram);
  Alcotest.(check bool) "write-hot in DRAM" true
    (HM.location h hot = Some HM.Dram)

let test_static_spill () =
  (* NVRAM too small for both candidates: best-scored first, rest spills *)
  let h = mk ~dram:(10 lsl 20) ~nvram:((3 lsl 20) / 2) () in
  let big = item ~reads:1000 ~writes:0 ~size:(1 lsl 20) ~share:0.01 1 "big" in
  let small = item ~reads:1000 ~writes:0 ~size:(1 lsl 19) ~share:0.01 2 "small" in
  let h = Static.plan ~hybrid:h [ small; big ] in
  Alcotest.(check bool) "bigger candidate wins NVRAM" true
    (HM.location h big = Some HM.Nvram);
  Alcotest.(check bool) "both placed" true (HM.location h small <> None)

let test_static_everything_placed_prop =
  QCheck.Test.make ~name:"static plan places every item exactly once" ~count:50
    QCheck.(list_of_size Gen.(int_range 0 30) (pair (int_range 0 1000) (int_range 0 1000)))
    (fun specs ->
      let items =
        List.mapi
          (fun i (r, w) ->
            item ~reads:r ~writes:w ~size:4096 ~share:0.001 i
              (Printf.sprintf "o%d" i))
          specs
      in
      let h = mk ~dram:(64 lsl 20) ~nvram:(64 lsl 20) () in
      let h = Static.plan ~hybrid:h items in
      List.for_all (fun i -> HM.location h i <> None) items
      && List.length (HM.items_in h HM.Dram)
         + List.length (HM.items_in h HM.Nvram)
         = List.length items)

(* --- dynamic policy ---------------------------------------------------- *)

let test_dynamic_promotes_hot_writer () =
  let h = mk () in
  let x = item ~reads:10 ~writes:10 ~size:4096 1 "x" in
  HM.place h x HM.Nvram;
  let p = Dynamic.create ~hybrid:h () in
  Dynamic.observe_epoch p [ { Dynamic.item = x; reads = 1; writes = 9 } ];
  Alcotest.(check bool) "promoted to DRAM" true (HM.location h x = Some HM.Dram);
  Alcotest.(check int) "one promotion" 1 (Dynamic.promotions p);
  Alcotest.(check int) "epochs" 1 (Dynamic.epochs p)

let test_dynamic_demotes_cold () =
  let h = mk () in
  let cold = item ~size:4096 1 "cold" in
  let busy = item ~size:4096 2 "busy" in
  HM.place h cold HM.Dram;
  HM.place h busy HM.Dram;
  let p = Dynamic.create ~popularity_threshold:0.05 ~hybrid:h () in
  Dynamic.observe_epoch p
    [
      { Dynamic.item = cold; reads = 1; writes = 0 };
      { Dynamic.item = busy; reads = 99; writes = 0 };
    ];
  Alcotest.(check bool) "cold demoted" true (HM.location h cold = Some HM.Nvram);
  Alcotest.(check bool) "busy stays" true (HM.location h busy = Some HM.Dram);
  Alcotest.(check int) "one demotion" 1 (Dynamic.demotions p)

let test_dynamic_untouched_not_promoted () =
  let h = mk () in
  let idle = item ~size:4096 1 "idle" in
  HM.place h idle HM.Nvram;
  let p = Dynamic.create ~hybrid:h () in
  Dynamic.observe_epoch p [ { Dynamic.item = idle; reads = 0; writes = 0 } ];
  Alcotest.(check bool) "idle stays in NVRAM" true
    (HM.location h idle = Some HM.Nvram)

let test_dynamic_stable_workload_settles () =
  (* after the first epoch's migrations, a stable workload causes no
     further movement *)
  let h = mk () in
  let a = item ~size:4096 1 "a" and b = item ~size:4096 2 "b" in
  HM.place h a HM.Nvram;
  HM.place h b HM.Dram;
  let p = Dynamic.create ~hybrid:h () in
  let epoch =
    [
      { Dynamic.item = a; reads = 2; writes = 8 };
      { Dynamic.item = b; reads = 500; writes = 500 };
    ]
  in
  Dynamic.observe_epoch p epoch;
  let after_first = HM.migrations h in
  Dynamic.observe_epoch p epoch;
  Dynamic.observe_epoch p epoch;
  Alcotest.(check int) "no churn" after_first (HM.migrations h)

let suite =
  [
    Alcotest.test_case "item metrics" `Quick test_item_metrics;
    Alcotest.test_case "place and capacity" `Quick test_place_and_capacity;
    Alcotest.test_case "migrate" `Quick test_migrate;
    Alcotest.test_case "hybrid validation" `Quick test_validation;
    Alcotest.test_case "assessment" `Quick test_assessment;
    Alcotest.test_case "assessment write penalty" `Quick
      test_assessment_write_penalty;
    Alcotest.test_case "static plan separates" `Quick test_static_plan_separates;
    Alcotest.test_case "static spill" `Quick test_static_spill;
    QCheck_alcotest.to_alcotest test_static_everything_placed_prop;
    Alcotest.test_case "dynamic promotes hot writer" `Quick
      test_dynamic_promotes_hot_writer;
    Alcotest.test_case "dynamic demotes cold" `Quick test_dynamic_demotes_cold;
    Alcotest.test_case "dynamic keeps idle" `Quick
      test_dynamic_untouched_not_promoted;
    Alcotest.test_case "dynamic settles" `Quick
      test_dynamic_stable_workload_settles;
  ]
