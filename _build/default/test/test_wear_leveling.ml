module WL = Nvsc_nvram.Wear_leveling

let start_gap ?(interval = 16) lines =
  WL.create (WL.Start_gap { gap_move_interval = interval }) ~lines

let table ?(interval = 32) lines =
  WL.create (WL.Table_based { swap_interval = interval }) ~lines

let test_identity_before_movement () =
  let t = start_gap 8 in
  for l = 0 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "line %d" l)
      l
      (WL.physical_of_logical t l)
  done

let test_mapping_stays_injective () =
  let t = start_gap ~interval:3 16 in
  for w = 1 to 500 do
    ignore (WL.write t (w mod 16));
    let seen = Hashtbl.create 17 in
    for l = 0 to 15 do
      let p = WL.physical_of_logical t l in
      Alcotest.(check bool) "in physical range" true (p >= 0 && p <= 16);
      Alcotest.(check bool) "injective" false (Hashtbl.mem seen p);
      Hashtbl.add seen p ()
    done
  done

let test_gap_rotates () =
  let t = start_gap ~interval:1 4 in
  (* every write moves the gap; after 5 moves it wrapped once *)
  for _ = 1 to 5 do
    ignore (WL.write t 0)
  done;
  Alcotest.(check int) "remaps counted" 5 (WL.remaps t);
  Alcotest.(check bool) "mapping moved" true (WL.physical_of_logical t 0 <> 0)

let test_overhead () =
  let t = start_gap ~interval:100 64 in
  for w = 1 to 10_000 do
    ignore (WL.write t (w mod 64))
  done;
  Alcotest.(check (float 1e-9)) "1% overhead" 0.01 (WL.extra_write_overhead t)

let skewed_writes t n =
  (* 90% of writes hit line 0 *)
  let rng = Nvsc_util.Rng.of_int 5 in
  for _ = 1 to n do
    let l = if Nvsc_util.Rng.bernoulli rng 0.9 then 0 else Nvsc_util.Rng.int rng 64 in
    ignore (WL.write t l)
  done

let test_start_gap_levels_skew () =
  let levelled = start_gap ~interval:8 64 in
  skewed_writes levelled 50_000;
  let unlevelled = start_gap ~interval:1_000_000 64 in
  skewed_writes unlevelled 50_000;
  Alcotest.(check bool) "levelling reduces imbalance" true
    (WL.wear_imbalance levelled < 0.3 *. WL.wear_imbalance unlevelled);
  (* with 90% of writes on one line of 64, unlevelled imbalance ~ 58x *)
  Alcotest.(check bool) "unlevelled is terrible" true
    (WL.wear_imbalance unlevelled > 20.)

let test_table_levels_skew () =
  let t = table ~interval:64 64 in
  skewed_writes t 50_000;
  Alcotest.(check bool) "table-based levels too" true (WL.wear_imbalance t < 10.);
  Alcotest.(check bool) "swaps happened" true (WL.remaps t > 0)

let test_table_mapping_consistent () =
  let t = table ~interval:8 16 in
  for w = 1 to 200 do
    ignore (WL.write t (w mod 16))
  done;
  let seen = Hashtbl.create 17 in
  for l = 0 to 15 do
    let p = WL.physical_of_logical t l in
    Alcotest.(check bool) "injective after swaps" false (Hashtbl.mem seen p);
    Hashtbl.add seen p ()
  done

let test_table_does_not_amplify_sweeps () =
  (* regression: a sequential sweep must not trick the hot/cold swapper
     into funnelling every sweep front onto one frame (the wear-gap guard
     prevents it) *)
  let lines = 512 in
  let t = table ~interval:64 lines in
  for w = 0 to 20_000 do
    (* sweep with a small per-window repeat, like an iterative kernel *)
    ignore (WL.write t (w / 4 mod lines))
  done;
  Alcotest.(check bool) "no amplification" true (WL.wear_imbalance t < 3.);
  Alcotest.(check bool) "few or no swaps" true
    (WL.extra_write_overhead t < 0.01)

let test_wear_conservation () =
  let t = start_gap ~interval:10 32 in
  for w = 1 to 1000 do
    ignore (WL.write t (w mod 32))
  done;
  let total = Array.fold_left ( + ) 0 (WL.wear t) in
  Alcotest.(check int) "wear = writes + remap copies" (WL.writes t + WL.remaps t)
    total

let test_validation () =
  Alcotest.check_raises "lines" (Invalid_argument "Wear_leveling.create: lines")
    (fun () -> ignore (start_gap 0));
  Alcotest.check_raises "interval"
    (Invalid_argument "Wear_leveling.create: gap_move_interval") (fun () ->
      ignore (WL.create (WL.Start_gap { gap_move_interval = 0 }) ~lines:4));
  let t = start_gap 4 in
  Alcotest.check_raises "range"
    (Invalid_argument "Wear_leveling.physical_of_logical") (fun () ->
      ignore (WL.physical_of_logical t 4))

let write_returns_mapping_prop =
  QCheck.Test.make ~name:"write returns the pre-advance mapping" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 15))
    (fun ls ->
      let t = start_gap ~interval:7 16 in
      List.for_all
        (fun l ->
          let expected = WL.physical_of_logical t l in
          WL.write t l = expected)
        ls)

let suite =
  [
    Alcotest.test_case "identity before movement" `Quick
      test_identity_before_movement;
    Alcotest.test_case "mapping stays injective" `Quick
      test_mapping_stays_injective;
    Alcotest.test_case "gap rotates" `Quick test_gap_rotates;
    Alcotest.test_case "write overhead" `Quick test_overhead;
    Alcotest.test_case "start-gap levels skew" `Quick test_start_gap_levels_skew;
    Alcotest.test_case "table-based levels skew" `Quick test_table_levels_skew;
    Alcotest.test_case "table mapping consistent" `Quick
      test_table_mapping_consistent;
    Alcotest.test_case "table does not amplify sweeps" `Quick
      test_table_does_not_amplify_sweeps;
    Alcotest.test_case "wear conservation" `Quick test_wear_conservation;
    Alcotest.test_case "validation" `Quick test_validation;
    QCheck_alcotest.to_alcotest write_returns_mapping_prop;
  ]
