module Tech = Nvsc_nvram.Technology
module Endurance = Nvsc_nvram.Endurance
module Suitability = Nvsc_nvram.Suitability

(* --- technology -------------------------------------------------------- *)

let test_table4_latencies () =
  let check name r w p =
    let t = Option.get (Tech.of_string name) in
    Alcotest.(check (float 1e-9)) (name ^ " read") r t.Tech.read_latency_ns;
    Alcotest.(check (float 1e-9)) (name ^ " write") w t.Tech.write_latency_ns;
    Alcotest.(check (float 1e-9)) (name ^ " perf") p t.Tech.perf_sim_latency_ns
  in
  check "ddr3" 10. 10. 10.;
  check "pcram" 20. 100. 100.;
  check "sttram" 10. 20. 20.;
  check "mram" 12. 12. 12.

let test_categories () =
  Alcotest.(check bool) "PCRAM cat1" true
    ((Tech.get Tech.PCRAM).category = Tech.Cat1_long_read_write);
  Alcotest.(check bool) "Flash cat1" true
    ((Tech.get Tech.Flash).category = Tech.Cat1_long_read_write);
  Alcotest.(check bool) "STTRAM cat2" true
    ((Tech.get Tech.STTRAM).category = Tech.Cat2_long_write);
  Alcotest.(check bool) "RRAM cat3" true
    ((Tech.get Tech.RRAM).category = Tech.Cat3_dram_like);
  Alcotest.(check bool) "DDR3 volatile" true
    ((Tech.get Tech.DDR3).category = Tech.Volatile)

let test_nvram_flags () =
  List.iter
    (fun t ->
      if Tech.is_nvram t then begin
        Alcotest.(check bool) (t.Tech.name ^ " no refresh") false t.needs_refresh;
        Alcotest.(check (float 1e-9)) (t.Tech.name ^ " zero standby") 0.
          t.standby_power_rel
      end)
    Tech.all;
  Alcotest.(check bool) "DDR3 refreshes" true (Tech.get Tech.DDR3).needs_refresh

let test_endurance_ordering () =
  (* the paper: PCRAM ~1e8..1e9.7 writes, far below DRAM's 1e16 *)
  let p = (Tech.get Tech.PCRAM).write_endurance in
  Alcotest.(check bool) "PCRAM in range" true (p >= 1e8 && p <= 10. ** 9.7);
  Alcotest.(check bool) "DRAM way higher" true
    ((Tech.get Tech.DDR3).write_endurance > 1e15)

let test_of_string () =
  Alcotest.(check bool) "case-insensitive" true
    (Tech.of_string "PCRAM" <> None && Tech.of_string "PcRam" <> None);
  Alcotest.(check bool) "unknown" true (Tech.of_string "dramzilla" = None);
  Alcotest.(check int) "paper set" 4 (List.length Tech.paper_set)

(* --- endurance --------------------------------------------------------- *)

let test_wear_tracking () =
  let e = Endurance.create ~tech:(Tech.get Tech.PCRAM) ~lines:4 in
  Endurance.record_writes e ~line:0 ~n:10;
  Endurance.record_write e ~line:1;
  Alcotest.(check int) "line 0" 10 (Endurance.writes_to e ~line:0);
  Alcotest.(check int) "line 1" 1 (Endurance.writes_to e ~line:1);
  Alcotest.(check int) "total" 11 (Endurance.total_writes e);
  Alcotest.(check int) "max" 10 (Endurance.max_wear e);
  (* imbalance = max/mean = 10/2.75 *)
  Alcotest.(check (float 1e-6)) "imbalance" (10. /. 2.75)
    (Endurance.wear_imbalance e)

let test_wear_bounds () =
  let e = Endurance.create ~tech:(Tech.get Tech.PCRAM) ~lines:2 in
  Alcotest.check_raises "oob"
    (Invalid_argument "Endurance.record_writes: line out of range") (fun () ->
      Endurance.record_write e ~line:2)

let test_worn_out () =
  let flash = Tech.get Tech.Flash in
  let e = Endurance.create ~tech:flash ~lines:2 in
  Endurance.record_writes e ~line:0 ~n:200_000 (* > 1e5 endurance *);
  Alcotest.(check int) "one line worn" 1 (Endurance.worn_out_lines e)

let test_lifetime () =
  let e = Endurance.create ~tech:(Tech.get Tech.PCRAM) ~lines:1000 in
  let levelled =
    Endurance.lifetime_seconds e ~write_rate_per_s:1e6 ~wear_levelled:true
  in
  (* uniform history -> unlevelled assumes uniform spread *)
  let unlevelled =
    Endurance.lifetime_seconds e ~write_rate_per_s:1e6 ~wear_levelled:false
  in
  Alcotest.(check bool) "levelling >= unlevelled" true (levelled >= unlevelled);
  Alcotest.(check bool) "zero rate lives forever" true
    (Endurance.lifetime_seconds e ~write_rate_per_s:0. ~wear_levelled:true
    = infinity);
  (* a hot line shortens unlevelled lifetime *)
  Endurance.record_writes e ~line:0 ~n:1_000_000;
  let hot =
    Endurance.lifetime_seconds e ~write_rate_per_s:1e6 ~wear_levelled:false
  in
  Alcotest.(check bool) "hot line fails earlier" true (hot < unlevelled);
  Alcotest.(check bool) "years conversion" true
    (Endurance.lifetime_years e ~write_rate_per_s:1e6 ~wear_levelled:true
    < levelled)

(* --- suitability ------------------------------------------------------- *)

let m ?(reads = 1000) ?(writes = 10) ?(size = 1 lsl 20) ?(rate = 0.01) () =
  { Suitability.reads; writes; size_bytes = size; ref_rate = rate }

let test_metric_helpers () =
  Alcotest.(check (float 1e-9)) "ratio" 100. (Suitability.read_write_ratio (m ()));
  Alcotest.(check bool) "read-only" true
    (Suitability.is_read_only (m ~writes:0 ()));
  Alcotest.(check bool) "not read-only" false (Suitability.is_read_only (m ()))

let test_classification_cat2 () =
  let c = Tech.Cat2_long_write in
  Alcotest.(check bool) "high ratio friendly" true
    (Suitability.classify ~category:c (m ~reads:5100 ~writes:100 ())
    = Suitability.Nvram_friendly);
  Alcotest.(check bool) "mid ratio candidate" true
    (Suitability.classify ~category:c (m ~reads:200 ~writes:10 ())
    = Suitability.Nvram_candidate);
  Alcotest.(check bool) "low ratio stays in DRAM" true
    (Suitability.classify ~category:c (m ~reads:15 ~writes:10 ())
    = Suitability.Dram_preferred);
  Alcotest.(check bool) "tiny object not worth it" true
    (Suitability.classify ~category:c (m ~reads:5100 ~writes:100 ~size:128 ())
    = Suitability.Dram_preferred)

let test_cat1_write_flux_guard () =
  (* the paper's third metric: a high ratio with a huge absolute write flux
     disqualifies category-1 placement but not category-2 *)
  let hot = m ~reads:60_000 ~writes:1000 ~rate:0.95 () in
  Alcotest.(check bool) "cat1 rejects hot writer" true
    (Suitability.classify ~category:Tech.Cat1_long_read_write hot
    = Suitability.Dram_preferred);
  Alcotest.(check bool) "cat2 accepts it" true
    (Suitability.classify ~category:Tech.Cat2_long_write hot
    = Suitability.Nvram_friendly)

let test_cat3_and_volatile () =
  Alcotest.(check bool) "cat3 accepts anything sizable" true
    (Suitability.classify ~category:Tech.Cat3_dram_like (m ~reads:1 ~writes:999 ())
    = Suitability.Nvram_friendly);
  Alcotest.(check bool) "volatile never places" true
    (Suitability.classify ~category:Tech.Volatile (m ())
    = Suitability.Dram_preferred)

let test_read_only_always_friendly_prop =
  QCheck.Test.make ~name:"big read-only objects are always NVRAM-friendly"
    ~count:100
    QCheck.(pair (int_range 1 1_000_000) (float_range 0.0 0.5))
    (fun (reads, rate) ->
      Suitability.classify ~category:Tech.Cat2_long_write
        (m ~reads ~writes:0 ~rate ())
      = Suitability.Nvram_friendly)

let test_explain () =
  let verdict, reason =
    Suitability.explain ~category:Tech.Cat2_long_write (m ~reads:15 ~writes:10 ())
  in
  Alcotest.(check bool) "verdict matches" true
    (verdict = Suitability.Dram_preferred);
  Alcotest.(check bool) "has a reason" true (String.length reason > 0)

let suite =
  [
    Alcotest.test_case "Table IV latencies" `Quick test_table4_latencies;
    Alcotest.test_case "categories (§II)" `Quick test_categories;
    Alcotest.test_case "NVRAM flags" `Quick test_nvram_flags;
    Alcotest.test_case "endurance ordering" `Quick test_endurance_ordering;
    Alcotest.test_case "name lookup" `Quick test_of_string;
    Alcotest.test_case "wear tracking" `Quick test_wear_tracking;
    Alcotest.test_case "wear bounds" `Quick test_wear_bounds;
    Alcotest.test_case "worn-out lines" `Quick test_worn_out;
    Alcotest.test_case "lifetime model" `Quick test_lifetime;
    Alcotest.test_case "metric helpers" `Quick test_metric_helpers;
    Alcotest.test_case "category-2 classification" `Quick
      test_classification_cat2;
    Alcotest.test_case "category-1 write-flux guard" `Quick
      test_cat1_write_flux_guard;
    Alcotest.test_case "category-3 and volatile" `Quick test_cat3_and_volatile;
    QCheck_alcotest.to_alcotest test_read_only_always_friendly_prop;
    Alcotest.test_case "explain" `Quick test_explain;
  ]
