module Org = Nvsc_dramsim.Org
module AM = Nvsc_dramsim.Address_mapping

let test_org_defaults () =
  let o = Org.paper in
  Alcotest.(check int) "capacity 2GB" (2 * 1024 * 1024 * 1024)
    (Org.capacity_bytes o);
  Alcotest.(check int) "ranks" 16 o.Org.ranks;
  Alcotest.(check int) "banks" 16 o.Org.banks;
  Alcotest.(check int) "row bytes" 8192 (Org.row_bytes o);
  Alcotest.(check int) "lines per row" 128 (Org.lines_per_row o);
  Alcotest.(check int) "total banks" 256 (Org.total_banks o)

let test_org_validation () =
  Alcotest.check_raises "non-pow2"
    (Invalid_argument "Org.make: ranks must be a power of two") (fun () ->
      ignore (Org.make ~ranks:3 ()));
  Alcotest.check_raises "row too small"
    (Invalid_argument "Org.make: a row must hold at least one line") (fun () ->
      ignore (Org.make ~cols:4 ~bus_width_bits:64 ~line_bytes:64 ()))

let coords_in_range (o : Org.t) (c : AM.coords) =
  c.rank >= 0 && c.rank < o.ranks && c.bank >= 0 && c.bank < o.banks
  && c.row >= 0 && c.row < o.rows && c.col >= 0
  && c.col < Org.lines_per_row o

let range_prop scheme =
  QCheck.Test.make
    ~name:(Printf.sprintf "coords in range: %s" (AM.scheme_name scheme))
    ~count:500
    QCheck.(int_range 0 max_int)
    (fun addr -> coords_in_range Org.paper (AM.decode scheme Org.paper addr))

let bijective_prop scheme =
  (* distinct line addresses within capacity decode to distinct coords *)
  QCheck.Test.make
    ~name:(Printf.sprintf "injective within capacity: %s" (AM.scheme_name scheme))
    ~count:200
    QCheck.(
      pair
        (int_range 0 ((2 * 1024 * 1024 * 1024 / 64) - 1))
        (int_range 0 ((2 * 1024 * 1024 * 1024 / 64) - 1)))
    (fun (l1, l2) ->
      let c1 = AM.decode scheme Org.paper (l1 * 64) in
      let c2 = AM.decode scheme Org.paper (l2 * 64) in
      l1 = l2 || c1 <> c2)

let test_sequential_locality () =
  (* under the default scheme, consecutive lines share a row until the row
     boundary (128 lines) *)
  let o = Org.paper in
  let c0 = AM.decode AM.Row_bank_rank_col o 0 in
  let c1 = AM.decode AM.Row_bank_rank_col o 64 in
  let c127 = AM.decode AM.Row_bank_rank_col o (127 * 64) in
  let c128 = AM.decode AM.Row_bank_rank_col o (128 * 64) in
  Alcotest.(check bool) "same row/bank/rank" true
    (c0.AM.rank = c1.AM.rank && c0.AM.bank = c1.AM.bank && c0.AM.row = c1.AM.row);
  Alcotest.(check int) "columns advance" 1 c1.AM.col;
  Alcotest.(check bool) "row end" true (c127.AM.col = 127);
  Alcotest.(check bool) "next row chunk switches rank" true
    (c128.AM.rank <> c0.AM.rank || c128.AM.bank <> c0.AM.bank
    || c128.AM.row <> c0.AM.row)

let test_line_interleave_spreads () =
  let o = Org.paper in
  let c0 = AM.decode AM.Line_interleave o 0 in
  let c1 = AM.decode AM.Line_interleave o 64 in
  Alcotest.(check bool) "consecutive lines change rank" true
    (c1.AM.rank = (c0.AM.rank + 1) mod o.Org.ranks)

let test_wraparound () =
  (* addresses beyond capacity wrap rather than crash *)
  let o = Org.paper in
  let c = AM.decode AM.Row_bank_rank_col o (Org.capacity_bytes o + 64) in
  Alcotest.(check bool) "wrapped in range" true (coords_in_range o c)

let suite =
  [
    Alcotest.test_case "org defaults (Table III)" `Quick test_org_defaults;
    Alcotest.test_case "org validation" `Quick test_org_validation;
    QCheck_alcotest.to_alcotest (range_prop AM.Row_bank_rank_col);
    QCheck_alcotest.to_alcotest (range_prop AM.Row_rank_bank_col);
    QCheck_alcotest.to_alcotest (range_prop AM.Line_interleave);
    QCheck_alcotest.to_alcotest (bijective_prop AM.Row_bank_rank_col);
    QCheck_alcotest.to_alcotest (bijective_prop AM.Line_interleave);
    Alcotest.test_case "sequential row locality" `Quick test_sequential_locality;
    Alcotest.test_case "line interleave spreads" `Quick
      test_line_interleave_spreads;
    Alcotest.test_case "address wraparound" `Quick test_wraparound;
  ]
