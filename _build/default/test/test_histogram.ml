module H = Nvsc_util.Histogram

let checkb name b = Alcotest.(check bool) name true b
let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let test_linear_binning () =
  let h = H.create_linear ~lo:0. ~hi:10. ~bins:5 in
  H.add h 0.;
  H.add h 1.9;
  H.add h 2.0;
  H.add h 9.99;
  let bins = H.bins h in
  let _, _, w0 = bins.(0) in
  let _, _, w1 = bins.(1) in
  let _, _, w4 = bins.(4) in
  checkb "bin 0 has two" (feq w0 2.);
  checkb "bin 1 has one (left-closed)" (feq w1 1.);
  checkb "bin 4 has one" (feq w4 1.)

let test_under_overflow () =
  let h = H.create_linear ~lo:0. ~hi:1. ~bins:2 in
  H.add h (-0.5);
  H.add h 1.0;
  H.add h 2.0;
  checkb "underflow" (feq (H.underflow h) 1.);
  checkb "overflow (hi is exclusive)" (feq (H.overflow h) 2.);
  checkb "total counts everything" (feq (H.total_weight h) 3.)

let test_log_bins_increasing () =
  let h = H.create_log ~lo:1. ~hi:1000. ~bins:3 in
  let bins = H.bins h in
  Alcotest.(check int) "3 bins" 3 (Array.length bins);
  let lo0, hi0, _ = bins.(0) in
  checkb "first bin [1,10)" (feq lo0 1. && feq ~eps:1e-6 hi0 10.)

let test_weighted () =
  let h = H.create_linear ~lo:0. ~hi:10. ~bins:2 in
  H.add_weighted h 1. 3.5;
  H.add_weighted h 6. 1.5;
  let bins = H.bins h in
  let _, _, w0 = bins.(0) in
  checkb "weighted bin" (feq w0 3.5);
  checkb "total weight" (feq (H.total_weight h) 5.0)

let test_fraction_in () =
  let h = H.create_linear ~lo:0. ~hi:4. ~bins:4 in
  List.iter (H.add h) [ 0.5; 1.5; 2.5; 3.5 ];
  checkb "half the mass in [0,2)" (feq (H.fraction_in h ~lo:0. ~hi:2.) 0.5);
  checkb "all the mass in [0,4)" (feq (H.fraction_in h ~lo:0. ~hi:4.) 1.0)

let test_invalid_args () =
  Alcotest.check_raises "bad linear" (Invalid_argument "Histogram.create_linear")
    (fun () -> ignore (H.create_linear ~lo:1. ~hi:1. ~bins:4));
  Alcotest.check_raises "bad log" (Invalid_argument "Histogram.create_log")
    (fun () -> ignore (H.create_log ~lo:0. ~hi:10. ~bins:4))

let test_edges_custom () =
  let h = H.create_edges [| 0.; 1.; 100. |] in
  H.add h 50.;
  let bins = H.bins h in
  let _, _, w1 = bins.(1) in
  checkb "lands in wide bin" (feq w1 1.)

let conservation_prop =
  QCheck.Test.make ~name:"weight conservation"
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range (-10.) 20.))
    (fun xs ->
      let h = H.create_linear ~lo:0. ~hi:10. ~bins:7 in
      List.iter (H.add h) xs;
      let binned = Array.fold_left (fun acc (_, _, w) -> acc +. w) 0. (H.bins h) in
      feq ~eps:1e-6
        (binned +. H.underflow h +. H.overflow h)
        (float_of_int (List.length xs)))

let suite =
  [
    Alcotest.test_case "linear binning" `Quick test_linear_binning;
    Alcotest.test_case "under/overflow" `Quick test_under_overflow;
    Alcotest.test_case "log bins" `Quick test_log_bins_increasing;
    Alcotest.test_case "weighted adds" `Quick test_weighted;
    Alcotest.test_case "fraction_in" `Quick test_fraction_in;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
    Alcotest.test_case "custom edges" `Quick test_edges_custom;
    QCheck_alcotest.to_alcotest conservation_prop;
  ]
