module Ctx = Nvsc_appkit.Ctx

let run_app ?(scale = 0.25) ?(iterations = 2) (module A : Nvsc_apps.Workload.APP)
    =
  let ctx = Ctx.create () in
  A.run ~scale ctx ~iterations;
  ctx

let test_registry () =
  Alcotest.(check (list string)) "paper order"
    [ "nek5000"; "cam"; "gtc"; "s3d" ]
    Nvsc_apps.Apps.names;
  Alcotest.(check bool) "find is case-insensitive" true
    (Nvsc_apps.Apps.find "CAM" <> None);
  Alcotest.(check bool) "unknown" true (Nvsc_apps.Apps.find "hpl" = None)

let test_each_app_runs_cleanly () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      let ctx = run_app (module A) in
      Alcotest.(check bool)
        (A.name ^ " produces references")
        true
        (Ctx.total_references ctx > 10_000);
      Alcotest.(check int) (A.name ^ " fully attributed") 0 (Ctx.unattributed ctx);
      Alcotest.(check int)
        (A.name ^ " balanced shadow stack")
        0
        (Nvsc_memtrace.Shadow_stack.depth (Ctx.shadow ctx)))
    Nvsc_apps.Apps.all

let test_determinism () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      let a = run_app (module A) in
      let b = run_app (module A) in
      Alcotest.(check int)
        (A.name ^ " deterministic reference count")
        (Ctx.total_references a) (Ctx.total_references b);
      let ta = Ctx.fast_tally_totals a and tb = Ctx.fast_tally_totals b in
      Alcotest.(check bool) (A.name ^ " deterministic tallies") true (ta = tb))
    Nvsc_apps.Apps.all

let test_iterations_scale_refs () =
  let (module A : Nvsc_apps.Workload.APP) = List.hd Nvsc_apps.Apps.all in
  let short = run_app ~iterations:1 (module A) in
  let long = run_app ~iterations:3 (module A) in
  Alcotest.(check bool) "more iterations, more references" true
    (Ctx.total_references long > Ctx.total_references short)

let test_scale_changes_footprint () =
  let (module A : Nvsc_apps.Workload.APP) =
    Option.get (Nvsc_apps.Apps.find "gtc")
  in
  let footprint ctx =
    List.fold_left
      (fun acc (o : Nvsc_memtrace.Mem_object.t) -> acc + o.size)
      0
      (Nvsc_memtrace.Object_registry.objects (Ctx.registry ctx))
  in
  let small = run_app ~scale:0.25 (module A) in
  let big = run_app ~scale:0.5 (module A) in
  Alcotest.(check bool) "scale grows footprint" true
    (footprint big > footprint small)

let test_invalid_iterations () =
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      Alcotest.(check bool) (A.name ^ " rejects 0 iterations") true
        (try
           A.run (Ctx.create ()) ~iterations:0;
           false
         with Invalid_argument _ -> true))
    Nvsc_apps.Apps.all

let test_phases_present () =
  (* every app must touch all three phases: pre (iter 0 before main),
     main iterations, and post *)
  List.iter
    (fun (module A : Nvsc_apps.Workload.APP) ->
      let ctx = run_app ~iterations:2 (module A) in
      let t0 = Ctx.fast_tally ctx ~iter:0 in
      let t1 = Ctx.fast_tally ctx ~iter:1 in
      let t2 = Ctx.fast_tally ctx ~iter:2 in
      let refs (t : Ctx.fast_tally) =
        t.stack_reads + t.stack_writes + t.other_reads + t.other_writes
      in
      Alcotest.(check bool) (A.name ^ " pre/post refs") true (refs t0 > 0);
      Alcotest.(check bool) (A.name ^ " iter1 refs") true (refs t1 > 0);
      Alcotest.(check bool) (A.name ^ " iter2 refs") true (refs t2 > 0))
    Nvsc_apps.Apps.all

let test_workload_helpers () =
  Alcotest.(check int) "scaled rounds" 3 (Nvsc_apps.Workload.scaled 0.5 6);
  Alcotest.(check int) "scaled floor is 1" 1 (Nvsc_apps.Workload.scaled 0.001 10);
  let ctx = Ctx.create () in
  let x = Nvsc_appkit.Farray.global ctx ~name:"x" 4 in
  let y = Nvsc_appkit.Farray.global ctx ~name:"y" 4 in
  Nvsc_appkit.Farray.init ctx x (fun _ -> 2.);
  Nvsc_appkit.Farray.init ctx y (fun _ -> 1.);
  Nvsc_apps.Workload.saxpy ctx ~alpha:3. ~x ~y;
  Alcotest.(check (float 1e-12)) "saxpy" 7. (Nvsc_appkit.Farray.peek y 0);
  Alcotest.(check (float 1e-12)) "dot" 56. (Nvsc_apps.Workload.dot ctx x y)

let suite =
  [
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "apps run cleanly" `Slow test_each_app_runs_cleanly;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "iterations scale references" `Slow
      test_iterations_scale_refs;
    Alcotest.test_case "scale changes footprint" `Slow
      test_scale_changes_footprint;
    Alcotest.test_case "invalid iterations" `Quick test_invalid_iterations;
    Alcotest.test_case "phases present" `Slow test_phases_present;
    Alcotest.test_case "workload helpers" `Quick test_workload_helpers;
  ]
