module S = Nvsc_memtrace.Shadow_stack
module Layout = Nvsc_memtrace.Layout

let test_push_pop_sp () =
  let s = S.create () in
  let top = S.sp s in
  Alcotest.(check int) "starts at top" Layout.stack_top top;
  let f = S.push s ~routine:"a" ~routine_addr:0x400000 ~frame_size:256 in
  Alcotest.(check int) "sp dropped" (top - 256) (S.sp s);
  Alcotest.(check int) "frame base" top f.S.base_sp;
  Alcotest.(check int) "depth" 1 (S.depth s);
  S.pop s;
  Alcotest.(check int) "sp restored" top (S.sp s);
  Alcotest.(check int) "depth 0" 0 (S.depth s)

let test_max_extent () =
  let s = S.create () in
  let top = S.sp s in
  let _ = S.push s ~routine:"a" ~routine_addr:1 ~frame_size:100 in
  let _ = S.push s ~routine:"b" ~routine_addr:2 ~frame_size:200 in
  S.pop s;
  S.pop s;
  Alcotest.(check int) "deepest extent remembered" (top - 300) (S.max_extent s);
  (* fast method counts popped-but-reached addresses as stack *)
  Alcotest.(check bool) "fast in_stack" true (S.in_stack s (top - 250));
  Alcotest.(check bool) "beyond extent" false (S.in_stack s (top - 301))

let test_attribute_own_frame () =
  let s = S.create () in
  let f = S.push s ~routine:"leaf" ~routine_addr:7 ~frame_size:64 in
  (match S.attribute s (f.S.base_sp - 1) with
  | Some g -> Alcotest.(check string) "own frame" "leaf" g.S.routine
  | None -> Alcotest.fail "expected attribution");
  S.pop s

let test_attribute_caller_frame () =
  let s = S.create () in
  let caller = S.push s ~routine:"caller" ~routine_addr:1 ~frame_size:128 in
  let _ = S.push s ~routine:"callee" ~routine_addr:2 ~frame_size:64 in
  (* the callee touches data the caller allocated: charged to the caller *)
  (match S.attribute s (caller.S.base_sp - 100) with
  | Some g -> Alcotest.(check string) "caller charged" "caller" g.S.routine
  | None -> Alcotest.fail "expected attribution");
  S.pop s;
  S.pop s

let test_attribute_outside () =
  let s = S.create () in
  let _ = S.push s ~routine:"a" ~routine_addr:1 ~frame_size:64 in
  Alcotest.(check bool) "above live frames" true
    (S.attribute s (Layout.stack_top - 1000) = None);
  S.pop s

let test_pop_empty () =
  let s = S.create () in
  Alcotest.check_raises "pop empty"
    (Invalid_argument "Shadow_stack.pop: empty stack") (fun () -> S.pop s)

let test_zero_size_frame () =
  let s = S.create () in
  let f = S.push s ~routine:"empty" ~routine_addr:1 ~frame_size:0 in
  Alcotest.(check int) "no sp change" f.S.base_sp (S.sp s);
  S.pop s

let test_deep_nesting () =
  let s = S.create () in
  for i = 1 to 100 do
    ignore (S.push s ~routine:(string_of_int i) ~routine_addr:i ~frame_size:16)
  done;
  Alcotest.(check int) "depth 100" 100 (S.depth s);
  (match S.current s with
  | Some f -> Alcotest.(check string) "innermost" "100" f.S.routine
  | None -> Alcotest.fail "current");
  for _ = 1 to 100 do
    S.pop s
  done;
  Alcotest.(check int) "unwound" 0 (S.depth s)

let balanced_prop =
  QCheck.Test.make ~name:"balanced push/pop restores sp" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) (int_range 0 256))
    (fun sizes ->
      let s = S.create () in
      let top = S.sp s in
      List.iter
        (fun sz -> ignore (S.push s ~routine:"r" ~routine_addr:1 ~frame_size:sz))
        sizes;
      List.iter (fun _ -> S.pop s) sizes;
      S.sp s = top && S.depth s = 0)

let suite =
  [
    Alcotest.test_case "push/pop stack pointer" `Quick test_push_pop_sp;
    Alcotest.test_case "max extent" `Quick test_max_extent;
    Alcotest.test_case "attribute own frame" `Quick test_attribute_own_frame;
    Alcotest.test_case "attribute caller frame" `Quick
      test_attribute_caller_frame;
    Alcotest.test_case "attribute outside" `Quick test_attribute_outside;
    Alcotest.test_case "pop empty raises" `Quick test_pop_empty;
    Alcotest.test_case "zero-size frame" `Quick test_zero_size_frame;
    Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
    QCheck_alcotest.to_alcotest balanced_prop;
  ]
