module Rng = Nvsc_util.Rng

let check = Alcotest.(check bool)

let test_determinism () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_copy () =
  let a = Rng.of_int 11 in
  ignore (Rng.next_int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b)

let test_split_independent () =
  let a = Rng.of_int 3 in
  let b = Rng.split a in
  (* not a rigorous independence test; just require the streams differ *)
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.next_int64 a <> Rng.next_int64 b then differs := true
  done;
  check "split streams differ" true !differs

let test_int_bounds () =
  let r = Rng.of_int 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_int_in_bounds () =
  let r = Rng.of_int 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int_in r (-3) 4 in
    check "-3 <= v <= 4" true (v >= -3 && v <= 4)
  done

let test_float_bounds () =
  let r = Rng.of_int 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    check "0 <= v < 2.5" true (v >= 0. && v < 2.5)
  done

let test_int_mean () =
  let r = Rng.of_int 21 in
  let n = 100_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.int r 100
  done;
  let mean = float_of_int !sum /. float_of_int n in
  check "mean near 49.5" true (Float.abs (mean -. 49.5) < 1.0)

let test_bernoulli_rate () =
  let r = Rng.of_int 33 in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli r 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.02)

let test_gaussian_moments () =
  let r = Rng.of_int 17 in
  let n = 100_000 in
  let stats = Nvsc_util.Stats.create () in
  for _ = 1 to n do
    Nvsc_util.Stats.add stats (Rng.gaussian r ~mean:5.0 ~stddev:2.0)
  done;
  check "mean near 5" true (Float.abs (Nvsc_util.Stats.mean stats -. 5.0) < 0.05);
  check "stddev near 2" true
    (Float.abs (Nvsc_util.Stats.stddev stats -. 2.0) < 0.05)

let test_exponential_mean () =
  let r = Rng.of_int 29 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential r ~rate:4.0
  done;
  check "mean near 1/4" true (Float.abs ((!sum /. float_of_int n) -. 0.25) < 0.01)

let test_pareto_lower_bound () =
  let r = Rng.of_int 31 in
  for _ = 1 to 10_000 do
    check "pareto >= scale" true (Rng.pareto r ~shape:2.0 ~scale:1.5 >= 1.5)
  done

let test_shuffle_permutation () =
  let r = Rng.of_int 41 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_choose_member () =
  let r = Rng.of_int 43 in
  let a = [| 2; 4; 8 |] in
  for _ = 1 to 100 do
    check "member" true (Array.mem (Rng.choose r a) a)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split_independent;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "int mean" `Quick test_int_mean;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "pareto lower bound" `Quick test_pareto_lower_bound;
    Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "choose membership" `Quick test_choose_member;
  ]
