module C = Nvsc_memtrace.Counters
module Access = Nvsc_memtrace.Access

let test_basic_recording () =
  let c = C.create () in
  C.set_iteration c 1;
  C.record c ~obj_id:1 ~op:Access.Read;
  C.record c ~obj_id:1 ~op:Access.Read;
  C.record c ~obj_id:1 ~op:Access.Write;
  Alcotest.(check int) "reads" 2 (C.reads c ~obj_id:1 ~iter:1);
  Alcotest.(check int) "writes" 1 (C.writes c ~obj_id:1 ~iter:1);
  Alcotest.(check int) "other iter" 0 (C.reads c ~obj_id:1 ~iter:2);
  Alcotest.(check int) "other object" 0 (C.reads c ~obj_id:9 ~iter:1);
  Alcotest.(check int) "grand total" 3 (C.grand_total c)

let test_iteration_separation () =
  let c = C.create () in
  for iter = 0 to 5 do
    C.set_iteration c iter;
    C.record_n c ~obj_id:4 ~op:Access.Read ~n:(iter + 1)
  done;
  for iter = 0 to 5 do
    Alcotest.(check int)
      (Printf.sprintf "iter %d" iter)
      (iter + 1)
      (C.reads c ~obj_id:4 ~iter)
  done;
  Alcotest.(check int) "total" 21 (C.total_reads c ~obj_id:4);
  Alcotest.(check int) "max iteration" 5 (C.max_iteration c)

let test_iterations_touched () =
  let c = C.create () in
  C.set_iteration c 0;
  C.record c ~obj_id:2 ~op:Access.Write;
  C.set_iteration c 3;
  C.record c ~obj_id:2 ~op:Access.Read;
  Alcotest.(check (list int)) "touched" [ 0; 3 ] (C.iterations_touched c ~obj_id:2);
  Alcotest.(check bool) "in main loop" true (C.touched_in_main_loop c ~obj_id:2);
  C.record c ~obj_id:5 ~op:Access.Read;
  Alcotest.(check bool) "only iter 3" true (C.touched_in_main_loop c ~obj_id:5)

let test_pre_post_only () =
  let c = C.create () in
  C.set_iteration c 0;
  C.record c ~obj_id:8 ~op:Access.Read;
  Alcotest.(check bool) "not in main" false (C.touched_in_main_loop c ~obj_id:8)

let test_record_n_zero () =
  let c = C.create () in
  C.record_n c ~obj_id:1 ~op:Access.Read ~n:0;
  Alcotest.(check int) "nothing recorded" 0 (C.grand_total c);
  Alcotest.(check (list int)) "no objects" [] (C.tracked_objects c)

let test_invalid () =
  let c = C.create () in
  Alcotest.check_raises "negative iteration"
    (Invalid_argument "Counters.set_iteration: negative iteration") (fun () ->
      C.set_iteration c (-1));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Counters.record_n: negative count") (fun () ->
      C.record_n c ~obj_id:1 ~op:Access.Read ~n:(-1))

let test_tracked_objects_sorted () =
  let c = C.create () in
  List.iter
    (fun id -> C.record c ~obj_id:id ~op:Access.Write)
    [ 5; 1; 9; 3 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 9 ] (C.tracked_objects c)

let conservation_prop =
  QCheck.Test.make ~name:"per-iteration counts sum to totals" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 100) (pair (int_range 0 9) bool))
    (fun events ->
      let c = C.create () in
      List.iteri
        (fun i (obj_id, is_read) ->
          C.set_iteration c (i mod 7);
          C.record c ~obj_id
            ~op:(if is_read then Access.Read else Access.Write))
        events;
      List.for_all
        (fun obj_id ->
          let sum = ref 0 in
          for iter = 0 to C.max_iteration c do
            sum := !sum + C.reads c ~obj_id ~iter + C.writes c ~obj_id ~iter
          done;
          !sum = C.total_reads c ~obj_id + C.total_writes c ~obj_id)
        (C.tracked_objects c)
      && C.grand_total c = List.length events)

let suite =
  [
    Alcotest.test_case "basic recording" `Quick test_basic_recording;
    Alcotest.test_case "iteration separation" `Quick test_iteration_separation;
    Alcotest.test_case "iterations touched" `Quick test_iterations_touched;
    Alcotest.test_case "pre/post only" `Quick test_pre_post_only;
    Alcotest.test_case "record_n zero" `Quick test_record_n_zero;
    Alcotest.test_case "invalid arguments" `Quick test_invalid;
    Alcotest.test_case "tracked objects sorted" `Quick
      test_tracked_objects_sorted;
    QCheck_alcotest.to_alcotest conservation_prop;
  ]
