module Stats = Nvsc_util.Stats

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps
let checkf ?eps name a b = Alcotest.(check bool) name true (feq ?eps a b)

let test_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  checkf "mean" 0. (Stats.mean s);
  checkf "variance" 0. (Stats.variance s);
  Alcotest.(check bool) "min" true (Stats.min s = infinity);
  Alcotest.(check bool) "max" true (Stats.max s = neg_infinity)

let test_known_values () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.(check int) "count" 8 (Stats.count s);
  checkf "mean" 5.0 (Stats.mean s);
  (* sample variance of that classic set is 32/7 *)
  checkf ~eps:1e-9 "variance" (32. /. 7.) (Stats.variance s);
  checkf "min" 2. (Stats.min s);
  checkf "max" 9. (Stats.max s);
  checkf "total" 40. (Stats.total s)

let test_merge_equiv () =
  let a = Stats.create () and b = Stats.create () and whole = Stats.create () in
  let rng = Nvsc_util.Rng.of_int 1 in
  for i = 1 to 1000 do
    let v = Nvsc_util.Rng.float rng 100. in
    Stats.add whole v;
    if i mod 3 = 0 then Stats.add a v else Stats.add b v
  done;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count whole) (Stats.count m);
  checkf ~eps:1e-6 "mean" (Stats.mean whole) (Stats.mean m);
  checkf ~eps:1e-6 "variance" (Stats.variance whole) (Stats.variance m);
  checkf "min" (Stats.min whole) (Stats.min m);
  checkf "max" (Stats.max whole) (Stats.max m)

let test_merge_empty () =
  let a = Stats.create () in
  let b = Stats.create () in
  Stats.add b 3.;
  let m = Stats.merge a b in
  Alcotest.(check int) "count" 1 (Stats.count m);
  checkf "mean" 3. (Stats.mean m)

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  checkf "p0 = min" 15. (Stats.percentile xs 0.);
  checkf "p100 = max" 50. (Stats.percentile xs 1.);
  checkf "median" 35. (Stats.percentile xs 0.5);
  checkf "p25" 20. (Stats.percentile xs 0.25)

let test_percentile_interpolation () =
  let xs = [| 1.; 2. |] in
  checkf "p50 interpolates" 1.5 (Stats.percentile xs 0.5)

let test_percentile_unsorted_input () =
  let xs = [| 50.; 15.; 40.; 20.; 35. |] in
  checkf "median of unsorted" 35. (Stats.median xs);
  (* input must not be mutated *)
  Alcotest.(check (array (float 0.0))) "input untouched"
    [| 50.; 15.; 40.; 20.; 35. |] xs

let test_percentile_empty () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 0.5))

let test_cdf () =
  let points = Stats.cdf [| 3.; 1.; 3.; 2. |] in
  Alcotest.(check int) "distinct values" 3 (List.length points);
  let v, f = List.nth points 0 in
  Alcotest.(check bool) "first" true (feq v 1. && feq f 0.25);
  let v, f = List.nth points 2 in
  Alcotest.(check bool) "last" true (feq v 3. && feq f 1.0)

let test_cdf_monotone_prop =
  QCheck.Test.make ~name:"cdf is monotone and ends at 1"
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let points = Stats.cdf xs in
      let ok = ref true in
      let prev_v = ref neg_infinity and prev_f = ref 0. in
      List.iter
        (fun (v, f) ->
          if v <= !prev_v || f < !prev_f then ok := false;
          prev_v := v;
          prev_f := f)
        points;
      !ok && feq !prev_f 1.0)

let test_ratio () =
  checkf "normal" 2.5 (Stats.ratio 5 2);
  Alcotest.(check bool) "read-only is infinite" true (Stats.ratio 3 0 = infinity);
  checkf "untouched" 0. (Stats.ratio 0 0)

let test_geometric_mean () =
  checkf ~eps:1e-9 "gm(2,8)" 4.0 (Stats.geometric_mean [| 2.; 8. |]);
  checkf ~eps:1e-9 "gm(singleton)" 7.0 (Stats.geometric_mean [| 7. |])

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  [
    Alcotest.test_case "empty accumulator" `Quick test_empty;
    Alcotest.test_case "known values" `Quick test_known_values;
    Alcotest.test_case "merge equivalence" `Quick test_merge_equiv;
    Alcotest.test_case "merge with empty" `Quick test_merge_empty;
    Alcotest.test_case "percentiles" `Quick test_percentile;
    Alcotest.test_case "percentile interpolation" `Quick
      test_percentile_interpolation;
    Alcotest.test_case "percentile unsorted input" `Quick
      test_percentile_unsorted_input;
    Alcotest.test_case "percentile empty raises" `Quick test_percentile_empty;
    Alcotest.test_case "cdf points" `Quick test_cdf;
    qcheck test_cdf_monotone_prop;
    Alcotest.test_case "ratio conventions" `Quick test_ratio;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
  ]
