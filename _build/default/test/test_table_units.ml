module Table = Nvsc_util.Table
module Units = Nvsc_util.Units

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_render_contains () =
  let t = Table.create ~title:"T" [ ("A", Table.Left); ("B", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "title" true (contains ~needle:"== T ==" s);
  Alcotest.(check bool) "headers" true (contains ~needle:"A" s);
  Alcotest.(check bool) "cells" true (contains ~needle:"yy" s);
  Alcotest.(check int) "rows" 2 (Table.row_count t)

let test_arity_mismatch () =
  let t = Table.create [ ("A", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "a"; "b" ])

let test_alignment_padding () =
  let t = Table.create [ ("H", Table.Right) ] in
  Table.add_row t [ "1" ];
  Table.add_row t [ "100" ];
  let lines = String.split_on_char '\n' (Table.to_string t) in
  (* the row "1" must be right-aligned to width 3 *)
  Alcotest.(check bool) "right aligned" true
    (List.exists (fun l -> l = "  1") lines)

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f ~prec:2 3.14159);
  Alcotest.(check string) "inf" "inf" (Table.cell_f infinity);
  Alcotest.(check string) "nan" "nan" (Table.cell_f Float.nan);
  Alcotest.(check string) "pct" "75.6%" (Table.cell_pct 0.756);
  Alcotest.(check string) "int" "42" (Table.cell_i 42)

let test_bytes_format () =
  let s n = Format.asprintf "%a" Units.pp_bytes n in
  Alcotest.(check string) "bytes" "824B" (s 824);
  Alcotest.(check string) "kb" "2.0KB" (s 2048);
  Alcotest.(check string) "mb" "1.5MB" (s (3 * 1024 * 1024 / 2));
  Alcotest.(check string) "gb" "2.00GB" (s (2 * 1024 * 1024 * 1024))

let test_ns_format () =
  let s t = Format.asprintf "%a" Units.pp_ns t in
  Alcotest.(check string) "ns" "10.0ns" (s 10.);
  Alcotest.(check string) "us" "1.50us" (s 1500.);
  Alcotest.(check string) "ms" "2.00ms" (s 2e6);
  Alcotest.(check string) "s" "1.000s" (s 1e9)

let test_watts_format () =
  let s w = Format.asprintf "%a" Units.pp_watts w in
  Alcotest.(check string) "mw" "956.0mW" (s 0.956);
  Alcotest.(check string) "w" "1.441W" (s 1.441)

let test_cycle_conversions () =
  Alcotest.(check (float 1e-9)) "cycles to ns" 100.
    (Units.ns_of_cycles ~cycles:100 ~ghz:1.0);
  Alcotest.(check int) "ns to cycles rounds up" 23
    (Units.cycles_of_ns ~ns:10. ~ghz:2.266);
  Alcotest.(check int) "kib" 2048 (Units.kib 2);
  Alcotest.(check int) "mib" (1024 * 1024) (Units.mib 1)

let suite =
  [
    Alcotest.test_case "table render" `Quick test_render_contains;
    Alcotest.test_case "table arity" `Quick test_arity_mismatch;
    Alcotest.test_case "table alignment" `Quick test_alignment_padding;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "bytes formatting" `Quick test_bytes_format;
    Alcotest.test_case "time formatting" `Quick test_ns_format;
    Alcotest.test_case "power formatting" `Quick test_watts_format;
    Alcotest.test_case "cycle conversions" `Quick test_cycle_conversions;
  ]
