(* FR-FCFS scheduling: DRAMSim2's discipline, as an option against the
   default in-order issue. *)

module C = Nvsc_dramsim.Controller
module Access = Nvsc_memtrace.Access
module Tech = Nvsc_nvram.Technology

let ddr3 = Tech.get Tech.DDR3

(* A pathological interleave: two row streams in the same bank, strictly
   alternating.  FCFS ping-pongs between rows (every access a row miss);
   FR-FCFS batches the open row's accesses first. *)
let ping_pong n =
  (* rows 0 and 2 of (rank 0, bank 0) under the default mapping: lines
     0..127 are row 0; lines with row index 2 sit 2*16*16 row-chunks away *)
  let row_stride_lines = 128 * 16 * 16 in
  List.concat
    (List.init n (fun i ->
         [
           Access.read ~addr:((i mod 64) * 64) ~size:64;
           Access.read ~addr:((2 * row_stride_lines * 64) + ((i mod 64) * 64)) ~size:64;
         ]))

let run ?scheduler trace =
  let c = C.create ?scheduler ~tech:ddr3 () in
  List.iter (C.submit c) trace;
  C.stats c

let test_fr_fcfs_improves_row_hits () =
  let trace = ping_pong 200 in
  let fcfs = run trace in
  let fr = run ~scheduler:(C.Fr_fcfs 16) trace in
  Alcotest.(check bool) "more row hits" true (fr.C.row_hits > fcfs.C.row_hits);
  Alcotest.(check bool) "no worse makespan" true
    (fr.C.elapsed_ns <= fcfs.C.elapsed_ns +. 1e-6);
  Alcotest.(check int) "same work" fcfs.C.accesses fr.C.accesses

let test_fr_fcfs_flush_completes () =
  let c = C.create ~scheduler:(C.Fr_fcfs 32) ~tech:ddr3 () in
  (* fewer transactions than the lookahead: nothing issues until flush *)
  for i = 0 to 9 do
    C.submit c (Access.read ~addr:(i * 64) ~size:64)
  done;
  let s = C.stats c (* stats flushes *) in
  Alcotest.(check int) "all issued" 10 s.C.accesses

let test_fr_fcfs_equivalent_on_stream () =
  (* on a purely sequential stream reordering changes nothing *)
  let trace = List.init 500 (fun i -> Access.read ~addr:(i * 64) ~size:64) in
  let fcfs = run trace in
  let fr = run ~scheduler:(C.Fr_fcfs 8) trace in
  Alcotest.(check int) "same hits" fcfs.C.row_hits fr.C.row_hits;
  Alcotest.(check (float 1e-6)) "same makespan" fcfs.C.elapsed_ns fr.C.elapsed_ns

let test_depth_validation () =
  Alcotest.check_raises "depth"
    (Invalid_argument "Controller.create: Fr_fcfs depth must be positive")
    (fun () -> ignore (C.create ~scheduler:(C.Fr_fcfs 0) ~tech:ddr3 ()))

let conservation_prop =
  QCheck.Test.make ~name:"fr-fcfs conserves accesses and energy components"
    ~count:20
    QCheck.(list_of_size Gen.(int_range 0 300) (pair (int_range 0 100_000) bool))
    (fun evs ->
      let trace =
        List.map
          (fun (l, w) ->
            if w then Access.write ~addr:(l * 64) ~size:64
            else Access.read ~addr:(l * 64) ~size:64)
          evs
      in
      let fcfs = run trace in
      let fr = run ~scheduler:(C.Fr_fcfs 8) trace in
      fr.C.accesses = fcfs.C.accesses
      && fr.C.reads = fcfs.C.reads
      && fr.C.writes = fcfs.C.writes
      && fr.C.row_hits + fr.C.row_misses = fr.C.accesses
      (* the addend multiset is identical; only rounding order differs *)
      && Float.abs (fr.C.burst_energy_nj -. fcfs.C.burst_energy_nj) < 1e-6)

let suite =
  [
    Alcotest.test_case "FR-FCFS improves row hits" `Quick
      test_fr_fcfs_improves_row_hits;
    Alcotest.test_case "flush completes buffered work" `Quick
      test_fr_fcfs_flush_completes;
    Alcotest.test_case "equivalent on streams" `Quick
      test_fr_fcfs_equivalent_on_stream;
    Alcotest.test_case "depth validation" `Quick test_depth_validation;
    QCheck_alcotest.to_alcotest conservation_prop;
  ]
