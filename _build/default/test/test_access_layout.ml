module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout

let test_access_basics () =
  let r = Access.read ~addr:0x1000 ~size:8 in
  let w = Access.write ~addr:0x2000 ~size:64 in
  Alcotest.(check bool) "read" true (Access.is_read r && not (Access.is_write r));
  Alcotest.(check bool) "write" true (Access.is_write w && not (Access.is_read w));
  Alcotest.(check int) "last byte" 0x1007 (Access.last_byte r);
  Alcotest.(check int) "last byte of line" 0x203f (Access.last_byte w)

let test_layout_regions () =
  let k a = Layout.classify a in
  Alcotest.(check bool) "global base" true (k Layout.global_base = Some Layout.Global);
  Alcotest.(check bool) "heap base" true (k Layout.heap_base = Some Layout.Heap);
  Alcotest.(check bool) "stack top" true (k Layout.stack_top = Some Layout.Stack);
  Alcotest.(check bool) "below global" true (k (Layout.global_base - 1) = None);
  Alcotest.(check bool) "above stack" true (k (Layout.stack_top + 1) = None)

let test_layout_contiguity () =
  (* the global segment ends where the heap begins *)
  Alcotest.(check int) "global limit = heap base" Layout.heap_base
    Layout.global_limit;
  Alcotest.(check int) "heap limit = stack limit" Layout.stack_limit
    Layout.heap_limit;
  Alcotest.(check bool) "stack limit excluded" true
    (Layout.classify Layout.stack_limit = None)

let classify_total_prop =
  QCheck.Test.make ~name:"classification is a partition"
    QCheck.(int_range 0 0x7fff_ffff)
    (fun addr ->
      match Layout.classify addr with
      | Some Layout.Global -> addr >= Layout.global_base && addr < Layout.global_limit
      | Some Layout.Heap -> addr >= Layout.heap_base && addr < Layout.heap_limit
      | Some Layout.Stack -> addr > Layout.stack_limit && addr <= Layout.stack_top
      | None ->
        addr < Layout.global_base
        || (addr = Layout.stack_limit)
        || addr > Layout.stack_top)

let test_kind_strings () =
  Alcotest.(check string) "global" "global" (Layout.kind_to_string Layout.Global);
  Alcotest.(check string) "heap" "heap" (Layout.kind_to_string Layout.Heap);
  Alcotest.(check string) "stack" "stack" (Layout.kind_to_string Layout.Stack)

let suite =
  [
    Alcotest.test_case "access basics" `Quick test_access_basics;
    Alcotest.test_case "layout regions" `Quick test_layout_regions;
    Alcotest.test_case "layout contiguity" `Quick test_layout_contiguity;
    QCheck_alcotest.to_alcotest classify_total_prop;
    Alcotest.test_case "kind strings" `Quick test_kind_strings;
  ]
