module Tlb = Nvsc_cpusim.Tlb
module Core_params = Nvsc_cpusim.Core_params
module Perf_model = Nvsc_cpusim.Perf_model
module Sensitivity = Nvsc_cpusim.Sensitivity
module Tech = Nvsc_nvram.Technology
module Access = Nvsc_memtrace.Access

(* --- TLB --------------------------------------------------------------- *)

let test_tlb_hit_miss () =
  let t = Tlb.create ~entries:2 ~page_bytes:4096 in
  Alcotest.(check bool) "cold miss" false (Tlb.access t 0);
  Alcotest.(check bool) "same page hits" true (Tlb.access t 4095);
  Alcotest.(check bool) "new page misses" false (Tlb.access t 4096);
  Alcotest.(check int) "hits" 1 (Tlb.hits t);
  Alcotest.(check int) "misses" 2 (Tlb.misses t)

let test_tlb_lru () =
  let t = Tlb.create ~entries:2 ~page_bytes:4096 in
  ignore (Tlb.access t 0);
  ignore (Tlb.access t 4096);
  ignore (Tlb.access t 0);
  (* page 1 (addr 4096) is LRU; page 2 evicts it *)
  ignore (Tlb.access t 8192);
  Alcotest.(check bool) "page 0 kept" true (Tlb.access t 0);
  Alcotest.(check bool) "page 1 evicted" false (Tlb.access t 4096)

let test_tlb_reset () =
  let t = Tlb.create ~entries:4 ~page_bytes:4096 in
  ignore (Tlb.access t 0);
  Tlb.reset t;
  Alcotest.(check int) "misses cleared" 0 (Tlb.misses t);
  Alcotest.(check bool) "cold again" false (Tlb.access t 0)

let test_tlb_capacity_prop =
  QCheck.Test.make ~name:"working set within capacity never misses twice"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 1 500) (int_range 0 7))
    (fun pages ->
      let t = Tlb.create ~entries:8 ~page_bytes:4096 in
      (* warm all 8 possible pages *)
      for p = 0 to 7 do
        ignore (Tlb.access t (p * 4096))
      done;
      List.for_all (fun p -> Tlb.access t (p * 4096)) pages)

(* --- Perf model -------------------------------------------------------- *)

let test_paper_params () =
  let p = Core_params.paper in
  Alcotest.(check (float 1e-9)) "2.266 GHz" 2.266 p.Core_params.clock_ghz;
  Alcotest.(check int) "TLB 32" 32 p.Core_params.tlb_entries;
  Alcotest.(check int) "miss buffer 64" 64 p.Core_params.miss_buffer

let test_compute_only () =
  let m = Perf_model.create ~mem_latency_ns:10. () in
  Perf_model.instructions m 4000;
  let r = Perf_model.report m in
  Alcotest.(check (float 1e-6)) "base cycles = n/width" 1000. r.Perf_model.cycles;
  Alcotest.(check (float 1e-6)) "no stalls" 0. r.Perf_model.mem_stall_cycles;
  Alcotest.(check (float 1e-6)) "ipc = width" 4. r.Perf_model.ipc

let test_l1_hits_free () =
  let m = Perf_model.create ~mem_latency_ns:10. () in
  Perf_model.access m (Access.read ~addr:0 ~size:8);
  let cold = (Perf_model.report m).Perf_model.cycles in
  for _ = 1 to 100 do
    Perf_model.access m (Access.read ~addr:0 ~size:8)
  done;
  let r = Perf_model.report m in
  Alcotest.(check int) "l1 hits" 100 r.Perf_model.l1_hits;
  (* hot accesses only add base CPI *)
  Alcotest.(check (float 1e-6)) "only frontend cost" (cold +. 25.)
    r.Perf_model.cycles

let random_walk_accesses n seed =
  let rng = Nvsc_util.Rng.of_int seed in
  List.init n (fun _ ->
      Access.read ~addr:(64 * Nvsc_util.Rng.int rng 2_000_000) ~size:8)

let test_latency_monotonicity () =
  let run lat =
    let m = Perf_model.create ~mem_latency_ns:lat () in
    List.iter
      (fun a ->
        Perf_model.instructions m 10;
        Perf_model.access m a)
      (random_walk_accesses 3000 5);
    (Perf_model.report m).Perf_model.runtime_ns
  in
  let t10 = run 10. and t20 = run 20. and t100 = run 100. in
  Alcotest.(check bool) "monotone 10<=20" true (t10 <= t20);
  Alcotest.(check bool) "monotone 20<100" true (t20 < t100)

let test_prefetcher_covers_streams () =
  (* a pure sequential sweep: after the first misses, the stream
     prefetcher must cover nearly everything *)
  let m = Perf_model.create ~mem_latency_ns:100. () in
  for i = 0 to 9999 do
    Perf_model.access m (Access.read ~addr:(i * 64) ~size:8)
  done;
  let r = Perf_model.report m in
  Alcotest.(check bool) "few demand clusters" true (r.Perf_model.miss_clusters < 20)

let test_mlp_clustering () =
  (* independent misses in one ROB window share a cluster *)
  let params = Core_params.make ~effective_mlp:4 ~rob_entries:128 () in
  let m = Perf_model.create ~params ~mem_latency_ns:100. () in
  (* 4 far-apart lines, back to back: one cluster *)
  List.iter
    (fun k ->
      Perf_model.access m (Access.read ~addr:(k * 1_000_000 * 64) ~size:8))
    [ 1; 3; 5; 7 ];
  let r = Perf_model.report m in
  Alcotest.(check int) "one cluster" 1 r.Perf_model.miss_clusters

let test_fig12_shape () =
  (* workload with high locality and streaming: the paper's figure 12
     shape — MRAM negligible, STTRAM < 5%, PCRAM < ~40% *)
  let replay model =
    let rng = Nvsc_util.Rng.of_int 4 in
    for i = 0 to 20_000 do
      Perf_model.instructions model 16;
      (* mostly streaming, occasionally random *)
      let addr =
        if Nvsc_util.Rng.bernoulli rng 0.02 then
          64 * Nvsc_util.Rng.int rng 1_000_000
        else i * 64
      in
      Perf_model.access model (Access.read ~addr ~size:8)
    done
  in
  let points = Sensitivity.run ~replay () in
  let get name =
    (List.find (fun (p : Sensitivity.point) -> p.tech.Tech.name = name) points)
      .normalized_runtime
  in
  Alcotest.(check (float 1e-9)) "DDR3 = 1" 1.0 (get "DDR3");
  Alcotest.(check bool) "MRAM negligible" true (get "MRAM" < 1.02);
  Alcotest.(check bool) "STTRAM small" true (get "STTRAM" < 1.05);
  Alcotest.(check bool) "PCRAM largest" true
    (get "PCRAM" >= get "STTRAM" && get "PCRAM" < 1.6)

let test_asymmetric_posted_writes () =
  (* the paper's read=write assumption is a lower bound (SSV); with posted
     writes the write latency is mostly absorbed *)
  let replay model =
    for i = 0 to 20_000 do
      Perf_model.instructions model 6;
      (* write-heavy streaming: the worst case for the symmetric model *)
      let a =
        if i mod 3 = 0 then Access.write ~addr:(i * 64) ~size:8
        else Access.read ~addr:(i * 64) ~size:8
      in
      Perf_model.access model a
    done
  in
  let get points name =
    (List.find
       (fun (p : Sensitivity.point) -> p.tech.Tech.name = name)
       points)
      .Sensitivity.normalized_runtime
  in
  let sym = Sensitivity.run ~replay () in
  let asym = Sensitivity.run ~asymmetric:true ~replay () in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " asymmetric <= symmetric")
        true
        (get asym name <= get sym name +. 1e-9))
    [ "PCRAM"; "STTRAM"; "MRAM" ]

let test_write_buffer_saturates () =
  (* a pure write stream of random lines must eventually stall on the
     write buffer: runtime grows with write latency *)
  let run wlat =
    let m =
      Perf_model.create ~mem_write_latency_ns:wlat ~write_buffer_entries:4
        ~mem_latency_ns:10. ()
    in
    let rng = Nvsc_util.Rng.of_int 7 in
    for _ = 0 to 5_000 do
      Perf_model.access m
        (Access.write ~addr:(64 * Nvsc_util.Rng.int rng 1_000_000) ~size:8)
    done;
    (Perf_model.report m).Perf_model.runtime_ns
  in
  Alcotest.(check bool) "slow writes eventually stall" true
    (run 1000. > 1.5 *. run 10.)

let test_sensitivity_requires_ddr3 () =
  Alcotest.check_raises "no baseline"
    (Invalid_argument "Sensitivity.run: DDR3 baseline required") (fun () ->
      ignore
        (Sensitivity.run
           ~techs:[ Tech.get Tech.PCRAM ]
           ~replay:(fun _ -> ())
           ()))

let test_invalid_latency () =
  Alcotest.check_raises "latency"
    (Invalid_argument "Perf_model.create: latency") (fun () ->
      ignore (Perf_model.create ~mem_latency_ns:0. ()))

let suite =
  [
    Alcotest.test_case "tlb hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb LRU" `Quick test_tlb_lru;
    Alcotest.test_case "tlb reset" `Quick test_tlb_reset;
    QCheck_alcotest.to_alcotest test_tlb_capacity_prop;
    Alcotest.test_case "paper core params" `Quick test_paper_params;
    Alcotest.test_case "compute-only cycles" `Quick test_compute_only;
    Alcotest.test_case "L1 hits pipelined" `Quick test_l1_hits_free;
    Alcotest.test_case "latency monotonicity" `Quick test_latency_monotonicity;
    Alcotest.test_case "prefetcher covers streams" `Quick
      test_prefetcher_covers_streams;
    Alcotest.test_case "MLP clustering" `Quick test_mlp_clustering;
    Alcotest.test_case "figure-12 shape" `Quick test_fig12_shape;
    Alcotest.test_case "asymmetric posted writes" `Quick
      test_asymmetric_posted_writes;
    Alcotest.test_case "write buffer saturates" `Quick
      test_write_buffer_saturates;
    Alcotest.test_case "sensitivity baseline" `Quick
      test_sensitivity_requires_ddr3;
    Alcotest.test_case "latency validation" `Quick test_invalid_latency;
  ]
