module Trace_buffer = Nvsc_memtrace.Trace_buffer
module Trace_log = Nvsc_memtrace.Trace_log
module Access = Nvsc_memtrace.Access

let test_buffer_flush_on_full () =
  let seen = ref [] in
  let flush buf n =
    for i = 0 to n - 1 do
      seen := buf.(i) :: !seen
    done
  in
  let b = Trace_buffer.create ~capacity:4 ~flush () in
  for i = 0 to 9 do
    Trace_buffer.push b (Access.read ~addr:i ~size:8)
  done;
  (* two automatic flushes of 4; 2 still buffered *)
  Alcotest.(check int) "flushes" 2 (Trace_buffer.flushes b);
  Alcotest.(check int) "seen" 8 (List.length !seen);
  Trace_buffer.flush b;
  Alcotest.(check int) "after force" 10 (List.length !seen);
  Alcotest.(check int) "pushed" 10 (Trace_buffer.pushed b);
  (* order preserved *)
  let addrs = List.rev_map (fun (a : Access.t) -> a.addr) !seen in
  Alcotest.(check (list int)) "order" (List.init 10 Fun.id) addrs

let test_buffer_empty_flush () =
  let calls = ref 0 in
  let b = Trace_buffer.create ~capacity:4 ~flush:(fun _ _ -> incr calls) () in
  Trace_buffer.flush b;
  Alcotest.(check int) "no empty flush" 0 !calls

let test_log_roundtrip () =
  let log = Trace_log.create ~initial_capacity:2 () in
  let accesses =
    [
      Access.read ~addr:0x100 ~size:64;
      Access.write ~addr:0x200 ~size:64;
      Access.read ~addr:0x300 ~size:8;
    ]
  in
  List.iter (Trace_log.record log) accesses;
  Alcotest.(check int) "length" 3 (Trace_log.length log);
  Alcotest.(check int) "reads" 2 (Trace_log.reads log);
  Alcotest.(check int) "writes" 1 (Trace_log.writes log);
  List.iteri
    (fun i expected ->
      let got = Trace_log.get log i in
      Alcotest.(check bool)
        (Printf.sprintf "record %d" i)
        true
        (got.Access.addr = expected.Access.addr
        && got.size = expected.size
        && got.op = expected.op))
    accesses

let test_log_replay_order () =
  let log = Trace_log.create () in
  for i = 0 to 99 do
    Trace_log.record log (Access.read ~addr:i ~size:8)
  done;
  let replayed = ref [] in
  Trace_log.replay log (fun a -> replayed := a.Access.addr :: !replayed);
  Alcotest.(check (list int)) "order" (List.init 100 Fun.id) (List.rev !replayed)

let test_log_clear () =
  let log = Trace_log.create () in
  Trace_log.record log (Access.write ~addr:1 ~size:8);
  Trace_log.clear log;
  Alcotest.(check int) "length" 0 (Trace_log.length log);
  Alcotest.(check int) "writes" 0 (Trace_log.writes log)

let test_log_get_bounds () =
  let log = Trace_log.create () in
  Alcotest.check_raises "oob" (Invalid_argument "Trace_log.get") (fun () ->
      ignore (Trace_log.get log 0))

let log_growth_prop =
  QCheck.Test.make ~name:"log preserves arbitrary streams" ~count:50
    QCheck.(
      list_of_size
        Gen.(int_range 0 500)
        (pair (int_range 0 (1 lsl 30)) bool))
    (fun events ->
      let log = Trace_log.create ~initial_capacity:1 () in
      List.iter
        (fun (addr, is_read) ->
          Trace_log.record log
            (if is_read then Access.read ~addr ~size:64
             else Access.write ~addr ~size:64))
        events;
      Trace_log.length log = List.length events
      && List.for_all2
           (fun (addr, is_read) i ->
             let a = Trace_log.get log i in
             a.Access.addr = addr && Access.is_read a = is_read)
           events
           (List.init (List.length events) Fun.id))

let suite =
  [
    Alcotest.test_case "buffer flush on full" `Quick test_buffer_flush_on_full;
    Alcotest.test_case "buffer empty flush" `Quick test_buffer_empty_flush;
    Alcotest.test_case "log roundtrip" `Quick test_log_roundtrip;
    Alcotest.test_case "log replay order" `Quick test_log_replay_order;
    Alcotest.test_case "log clear" `Quick test_log_clear;
    Alcotest.test_case "log bounds" `Quick test_log_get_bounds;
    QCheck_alcotest.to_alcotest log_growth_prop;
  ]
