examples/hybrid_design_study.ml: Format List Nvsc_apps Nvsc_core Nvsc_util
