examples/quickstart.mli:
