examples/placement_study.ml: Array Format List Nvsc_apps Nvsc_core Nvsc_memtrace Nvsc_nvram Nvsc_placement Nvsc_util Option
