examples/endurance_study.ml: Format List Nvsc_apps Nvsc_core Nvsc_memtrace Nvsc_nvram Option
