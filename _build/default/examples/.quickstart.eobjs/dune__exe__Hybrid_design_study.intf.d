examples/hybrid_design_study.mli:
