examples/generality_study.mli:
