examples/custom_app.ml: Format List Nvsc_appkit Nvsc_apps Nvsc_core Nvsc_memtrace
