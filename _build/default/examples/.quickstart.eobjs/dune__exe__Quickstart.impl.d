examples/quickstart.ml: Format List Nvsc_apps Nvsc_core Nvsc_dramsim Nvsc_memtrace Nvsc_nvram Nvsc_util Option
