examples/generality_study.ml: Format List Nvsc_apps Nvsc_core Nvsc_memtrace Nvsc_util Option Printf
