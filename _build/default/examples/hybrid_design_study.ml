(* Horizontal vs hierarchical hybrid memory (the paper's §II design choice).

   The paper considers two ways to combine DRAM and NVRAM and picks the
   horizontal (side-by-side) design, arguing that a DRAM cache in front of
   NVRAM "actually lowers performance and increases energy consumption"
   for workloads with poor locality.  This study runs both halves of that
   argument:

   1. on the real mini-app traces (high page locality after cache
      filtering) — where the DRAM cache is competitive;
   2. on a locality sweep — exposing the crossover where page fills make
      the hierarchical design worse than even a flat all-NVRAM memory.

   Run with: dune exec examples/hybrid_design_study.exe *)

let () =
  Format.printf "== application traces (PCRAM backing) ==@.";
  List.iter
    (fun app ->
      Nvsc_core.Extensions.pp_hybrid Format.std_formatter
        (Nvsc_core.Extensions.hybrid_design ~scale:0.5 ~iterations:5 app))
    Nvsc_apps.Apps.all;

  Format.printf "@.== locality sweep ==@.";
  let points =
    Nvsc_core.Extensions.dram_cache_crossover
      ~hot_fractions:[ 0.995; 0.99; 0.97; 0.95; 0.9; 0.8; 0.6; 0.4; 0.2 ]
      ()
  in
  List.iter
    (fun (c : Nvsc_core.Extensions.crossover_point) ->
      Format.printf
        "hot %.3f  hit rate %.2f  hierarchical %6.1fns  flat NVRAM %5.1fns  \
         -> %s@."
        c.hot_fraction c.hit_rate c.hierarchical_latency_ns
        c.flat_nvram_latency_ns
        (if c.dram_cache_wins then "cache wins" else "cache loses"))
    points;

  (* render the crossover as a plot: x = hit rate, y = latency *)
  let series =
    [
      ( "hierarchical",
        List.map
          (fun (c : Nvsc_core.Extensions.crossover_point) ->
            (c.hit_rate, c.hierarchical_latency_ns))
          points );
      ( "flat NVRAM",
        List.map
          (fun (c : Nvsc_core.Extensions.crossover_point) ->
            (c.hit_rate, c.flat_nvram_latency_ns))
          points );
    ]
  in
  Format.printf "@.%s"
    (Nvsc_util.Ascii_plot.line ~title:"latency vs page-cache hit rate"
       ~x_label:"hit rate" ~y_label:"avg latency (ns)" series)
