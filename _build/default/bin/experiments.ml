(* Regenerate every table and figure of the paper's evaluation section.

   Usage: experiments [quick] [no-ext] [markdown]
   "quick" runs at reduced scale/iterations (for CI smoke runs); "no-ext"
   skips the extension studies. *)

let () =
  let quick = Array.exists (String.equal "quick") Sys.argv in
  let config =
    if quick then Nvsc_core.Experiment.quick_config
    else Nvsc_core.Experiment.default_config
  in
  if Array.exists (String.equal "markdown") Sys.argv then begin
    print_string (Nvsc_core.Report.markdown ~config ());
    exit 0
  end;
  Nvsc_core.Experiment.run_all Format.std_formatter ~config ();
  (* extensions: the §II/§III-D design alternatives, unless skipped *)
  if not (Array.exists (String.equal "no-ext") Sys.argv) then begin
    let scale = if quick then 0.25 else 0.5 in
    let iterations = if quick then 3 else 5 in
    Format.print_newline ();
    Nvsc_core.Extensions.run_all Format.std_formatter ~scale ~iterations ()
  end;
  Format.print_flush ()
