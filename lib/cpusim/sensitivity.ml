module Technology = Nvsc_nvram.Technology

type point = {
  tech : Technology.t;
  latency_ns : float;
  runtime_ns : float;
  normalized_runtime : float;
  report : Perf_model.report;
}

let run ?params ?(techs = Technology.paper_set) ?(asymmetric = false) ~replay
    () =
  let raw =
    List.map
      (fun (tech : Technology.t) ->
        Nvsc_obs.Span.with_ ~arg:tech.name "cpusim.sensitivity" @@ fun () ->
        let model =
          if asymmetric then
            Perf_model.create ?params
              ~mem_write_latency_ns:tech.write_latency_ns
              ~mem_latency_ns:tech.read_latency_ns ()
          else
            Perf_model.create ?params
              ~mem_latency_ns:tech.perf_sim_latency_ns ()
        in
        replay model;
        (tech, Perf_model.report model))
      techs
  in
  let base =
    match
      List.find_opt (fun ((t : Technology.t), _) -> t.tech = Technology.DDR3) raw
    with
    | Some (_, r) -> r.Perf_model.runtime_ns
    | None -> invalid_arg "Sensitivity.run: DDR3 baseline required"
  in
  List.map
    (fun ((tech : Technology.t), (r : Perf_model.report)) ->
      {
        tech;
        latency_ns = tech.perf_sim_latency_ns;
        runtime_ns = r.runtime_ns;
        normalized_runtime = r.runtime_ns /. base;
        report = r;
      })
    raw

let pp_points fmt points =
  List.iter
    (fun p ->
      Format.fprintf fmt "%-8s %6.0fns  runtime %a  normalized %.3f@."
        p.tech.Technology.name p.latency_ns Nvsc_util.Units.pp_ns p.runtime_ns
        p.normalized_runtime)
    points
