(** Cycle-accounting out-of-order core model (the PTLsim substitute).

    The paper (§V) uses PTLsim solely to vary the main-memory access
    latency and observe how application runtime responds; read and write
    latencies are set equal (making the result a performance lower bound)
    and the whole of main memory is assumed to be the NVRAM under test.

    This model consumes the application's committed instruction stream —
    plain-instruction counts interleaved with memory references in program
    order — and accounts cycles with an interval model:

    - the frontend retires [issue_width] instructions per cycle;
    - L1 hits are pipelined (no added stall beyond the base CPI);
    - L2 hits add their access latency, discounted by out-of-order overlap;
    - main-memory misses are clustered: misses falling within one
      reorder-buffer reach of an open cluster (up to the effective-MLP
      limit) share a single latency; each cluster's latency is then
      overlapped with the independent instructions that follow it, and only
      the remainder stalls the pipeline;
    - TLB misses add a fixed page-walk penalty.

    The memory hierarchy is the paper's Table II cache configuration
    (via {!Nvsc_cachesim.Hierarchy}). *)

type t

val create :
  ?params:Core_params.t ->
  ?l1d:Nvsc_cachesim.Cache_params.t ->
  ?l2:Nvsc_cachesim.Cache_params.t ->
  ?mem_write_latency_ns:float ->
  ?write_buffer_entries:int ->
  mem_latency_ns:float ->
  unit ->
  t
(** Without [mem_write_latency_ns], writes behave like reads at
    [mem_latency_ns] — the paper's §V assumption ("the current simulator
    does not differentiate between read and write latencies"), which makes
    the result a performance lower bound.

    With [mem_write_latency_ns], that limitation is removed: write misses
    are *posted* through a write buffer of [write_buffer_entries] (default
    16).  A posted write costs only a bandwidth slot; its latency is paid
    by holding a buffer entry for the write duration, and the pipeline
    stalls only when the buffer is full.  This is how hardware actually
    absorbs NVRAM's slow writes, and quantifies how conservative the
    paper's lower bound is. *)

val instructions : t -> int -> unit
(** Account [n] committed non-memory instructions. *)

val access_raw : t -> addr:int -> size:int -> op:Nvsc_memtrace.Access.op -> unit
(** Account one committed memory instruction (program order). *)

val access : t -> Nvsc_memtrace.Access.t -> unit
(** Per-record convenience over {!access_raw}. *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Account a batch slice of memory instructions in program order (the
    sink-consumer shape). *)

type report = {
  instructions : int;
  mem_instructions : int;
  cycles : float;
  base_cycles : float;
  l2_stall_cycles : float;
  mem_stall_cycles : float;
  tlb_stall_cycles : float;
  runtime_ns : float;
  ipc : float;
  l1_hits : int;
  l2_hits : int;
  mem_accesses : int;
  miss_clusters : int;
  tlb_misses : int;
}

val report : t -> report

val mem_latency_ns : t -> float
