module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Hierarchy = Nvsc_cachesim.Hierarchy

type t = {
  p : Core_params.t;
  hierarchy : Hierarchy.t;
  tlb : Tlb.t;
  mem_latency_ns : float;
  mem_latency_cycles : float;
  write_latency_cycles : float option; (* None = paper mode (write = read) *)
  write_buffer : float Queue.t; (* cycle stamps at which entries free *)
  write_buffer_entries : int;
  rob_hide_cycles : float;
  l2_visible_cycles : float;
  covered_miss_cycles : float;
  (* stream-prefetcher state: region -> last line, bounded LRU *)
  streams : (int, int) Hashtbl.t;
  stream_order : int Queue.t;
  stream_slots : int;
  (* miss clustering *)
  mutable cluster_open : bool;
  mutable cluster_anchor_idx : int;
  mutable cluster_size : int;
  (* accounting *)
  mutable instr_count : int;
  mutable mem_instr_count : int;
  mutable base_cycles : float;
  mutable l2_stall : float;
  mutable mem_stall : float;
  mutable tlb_stall : float;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable mem_accesses : int;
  mutable covered_misses : int;
  mutable clusters : int;
}

let create ?(params = Core_params.paper) ?l1d ?l2 ?mem_write_latency_ns
    ?(write_buffer_entries = 16) ~mem_latency_ns () =
  if mem_latency_ns <= 0. then invalid_arg "Perf_model.create: latency";
  (match mem_write_latency_ns with
  | Some w when w <= 0. -> invalid_arg "Perf_model.create: write latency"
  | _ -> ());
  if write_buffer_entries <= 0 then
    invalid_arg "Perf_model.create: write buffer";
  let p = params in
  {
    p;
    hierarchy = Hierarchy.create ?l1d ?l2 ~sink:(Sink.null ()) ();
    tlb = Tlb.create ~entries:p.tlb_entries ~page_bytes:p.page_bytes;
    mem_latency_ns;
    mem_latency_cycles = mem_latency_ns *. p.clock_ghz;
    write_latency_cycles =
      Option.map (fun w -> w *. p.clock_ghz) mem_write_latency_ns;
    write_buffer = Queue.create ();
    write_buffer_entries;
    rob_hide_cycles = float_of_int p.rob_entries /. float_of_int p.issue_width;
    l2_visible_cycles = float_of_int (p.l2_hit_cycles - p.l1_hit_cycles) /. 2.;
    covered_miss_cycles = 4.0;
    streams = Hashtbl.create 32;
    stream_order = Queue.create ();
    stream_slots = 16;
    cluster_open = false;
    cluster_anchor_idx = 0;
    cluster_size = 0;
    instr_count = 0;
    mem_instr_count = 0;
    base_cycles = 0.;
    l2_stall = 0.;
    mem_stall = 0.;
    tlb_stall = 0.;
    l1_hits = 0;
    l2_hits = 0;
    mem_accesses = 0;
    covered_misses = 0;
    clusters = 0;
  }

let retire t n =
  t.instr_count <- t.instr_count + n;
  t.base_cycles <-
    t.base_cycles +. (float_of_int n /. float_of_int t.p.issue_width)

let instructions t n =
  if n < 0 then invalid_arg "Perf_model.instructions: negative count";
  retire t n

(* The hardware stream prefetcher: a miss whose line extends an active
   stream (within two lines of that stream's last fetch) is covered — its
   latency is hidden and only a bandwidth slot is paid.  Streams are
   tracked per 4 KiB region; a stream that has just crossed a region
   boundary is found via the predecessor line's region, so long unit-stride
   sweeps stay covered. *)
let stream_covered t line =
  let region = line lsr 6 in
  let extends r =
    match Hashtbl.find_opt t.streams r with
    | Some last -> line > last && line - last <= 2
    | None -> false
  in
  let covered = extends region || extends ((line - 2) lsr 6) in
  if not (Hashtbl.mem t.streams region) then begin
    if Queue.length t.stream_order >= t.stream_slots then begin
      let victim = Queue.pop t.stream_order in
      Hashtbl.remove t.streams victim
    end;
    Queue.push region t.stream_order
  end;
  Hashtbl.replace t.streams region line;
  covered

(* Demand misses cluster: within one ROB reach of the cluster anchor, up to
   [effective_mlp] misses share a single memory latency.  When a cluster
   cannot absorb the miss, the previous cluster's latency is charged (less
   the ROB's overlap reach) and a new cluster opens. *)
let charge_cluster t =
  t.mem_stall <-
    t.mem_stall +. Float.max 0. (t.mem_latency_cycles -. t.rob_hide_cycles);
  t.clusters <- t.clusters + 1

let demand_miss t =
  let idx = t.instr_count in
  if
    t.cluster_open
    && idx - t.cluster_anchor_idx <= t.p.rob_entries
    && t.cluster_size < t.p.effective_mlp
  then t.cluster_size <- t.cluster_size + 1
  else begin
    if t.cluster_open then charge_cluster t;
    t.cluster_open <- true;
    t.cluster_anchor_idx <- idx;
    t.cluster_size <- 1
  end

(* Posted writes: a write miss grabs a write-buffer entry for the write
   duration and only stalls the pipeline when the buffer is full (the
   hardware mechanism that absorbs NVRAM's slow writes). *)
let current_cycles t =
  t.base_cycles +. t.l2_stall +. t.mem_stall +. t.tlb_stall

let posted_write t write_cycles =
  let now = current_cycles t in
  (* free completed entries *)
  let rec prune () =
    match Queue.peek_opt t.write_buffer with
    | Some release when release <= now -> ignore (Queue.pop t.write_buffer); prune ()
    | _ -> ()
  in
  prune ();
  let start =
    if Queue.length t.write_buffer < t.write_buffer_entries then now
    else begin
      (* buffer full: stall until the oldest entry frees *)
      let release = Queue.pop t.write_buffer in
      let stall = Float.max 0. (release -. now) in
      t.mem_stall <- t.mem_stall +. stall;
      now +. stall
    end
  in
  Queue.push (start +. write_cycles) t.write_buffer;
  (* the write still occupies a bandwidth slot *)
  t.mem_stall <- t.mem_stall +. t.covered_miss_cycles

let access_raw t ~addr ~size ~op =
  t.mem_instr_count <- t.mem_instr_count + 1;
  retire t 1;
  if not (Tlb.access t.tlb addr) then
    t.tlb_stall <- t.tlb_stall +. float_of_int t.p.tlb_miss_cycles;
  match Hierarchy.access_classified_raw t.hierarchy ~addr ~size ~op with
  | `L1 -> t.l1_hits <- t.l1_hits + 1
  | `L2 ->
    t.l2_hits <- t.l2_hits + 1;
    t.l2_stall <- t.l2_stall +. t.l2_visible_cycles
  | `Mem -> (
    t.mem_accesses <- t.mem_accesses + 1;
    match (op, t.write_latency_cycles) with
    | Access.Write, Some write_cycles -> posted_write t write_cycles
    | (Access.Read | Access.Write), _ ->
      let line = addr / 64 in
      if stream_covered t line then begin
        t.covered_misses <- t.covered_misses + 1;
        t.mem_stall <- t.mem_stall +. t.covered_miss_cycles
      end
      else demand_miss t)

let access t (a : Access.t) = access_raw t ~addr:a.addr ~size:a.size ~op:a.op

let consume t batch ~first ~n =
  for i = first to first + n - 1 do
    access_raw t ~addr:(Sink.Batch.addr batch i) ~size:(Sink.Batch.size batch i)
      ~op:(Sink.Batch.op batch i)
  done

type report = {
  instructions : int;
  mem_instructions : int;
  cycles : float;
  base_cycles : float;
  l2_stall_cycles : float;
  mem_stall_cycles : float;
  tlb_stall_cycles : float;
  runtime_ns : float;
  ipc : float;
  l1_hits : int;
  l2_hits : int;
  mem_accesses : int;
  miss_clusters : int;
  tlb_misses : int;
}

let report t =
  (* Close any open cluster so its latency is not lost. *)
  let pending = if t.cluster_open then 1 else 0 in
  let mem_stall =
    t.mem_stall
    +.
    if pending = 1 then
      Float.max 0. (t.mem_latency_cycles -. t.rob_hide_cycles)
    else 0.
  in
  let cycles = t.base_cycles +. t.l2_stall +. mem_stall +. t.tlb_stall in
  {
    instructions = t.instr_count;
    mem_instructions = t.mem_instr_count;
    cycles;
    base_cycles = t.base_cycles;
    l2_stall_cycles = t.l2_stall;
    mem_stall_cycles = mem_stall;
    tlb_stall_cycles = t.tlb_stall;
    runtime_ns = cycles /. t.p.clock_ghz;
    ipc =
      (if cycles > 0. then float_of_int t.instr_count /. cycles else 0.);
    l1_hits = t.l1_hits;
    l2_hits = t.l2_hits;
    mem_accesses = t.mem_accesses;
    miss_clusters = t.clusters + pending;
    tlb_misses = Tlb.misses t.tlb;
  }

let mem_latency_ns t = t.mem_latency_ns
