(** Persistence events (NVSC-Persist).

    The vocabulary of crash-consistency actions an application can emit
    alongside its reference stream: epoch boundaries delimiting
    failure-atomic regions, cache-line flushes and ordering fences for
    NVM-placed objects, and declarations marking which objects are meant
    to be persistent at all.  The type lives here (below [appkit]) so the
    NVT codec can serialize the events and the sanitizer can replay them
    without depending on the emission layer.

    Offsets and lengths are in {e bytes} relative to the object's base.
    [obj_id] is the {!Mem_object.t} id of the target object. *)

type t =
  | Epoch_begin of { label : string; checkpoint : bool }
      (** Open a persist epoch.  [checkpoint] marks the epoch as a
          failure-atomic checkpoint: its writes must be fully durable at
          commit or not visible at all. *)
  | Epoch_commit of { label : string; checkpoint : bool }
      (** Commit the innermost open epoch ([label]/[checkpoint] echo the
          matching {!Epoch_begin} for self-describing traces). *)
  | Flush of { obj_id : int; off : int; len : int }
      (** Write back the cache lines covering [off, off+len) of object
          [obj_id] (clwb-style: asynchronous until the next {!Fence}). *)
  | Fence  (** Drain all in-flight flushes (sfence-style ordering point). *)
  | Declare of { obj_id : int }
      (** Mark object [obj_id] as persistent: the checker tracks its
          cache-line state and placement must keep it in NVRAM. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
