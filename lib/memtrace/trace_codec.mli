(** NVT: the chunked, versioned binary trace format (ROADMAP item 1).

    An [.nvt] file decouples trace {e generation} from trace {e analysis}:
    [nvscav record] writes the raw emission stream once — every reference
    with its emission-time object attribution, interleaved committed
    plain-instruction counts, and phase-change markers — and any number of
    downstream analyses replay it without re-running the application.

    Wire layout (all integers little-endian; [varint] is LEB128, [zigzag]
    maps signed to unsigned before varint):

    {v
    file    := header chunk* trailer eof
    header  := "NVSCAVT1" | u16 version=2 | u32 len | meta
    meta    := str app | str description | str input_description
             | f64 paper_footprint_mb | f64 scale | varint iterations
             | varint batch_capacity | varint chunk_capacity
    chunk   := 'C' | u32 len | md5(payload) | payload
    payload := varint nrefs | varint nobjs | objdesc*nobjs | token*
    token   := 0 phase                      (phase change)
             | 1 varint n                   (n committed plain instructions)
             | 2 varint k record*k          (k references)
             | 3 persist                    (v2+: crash-consistency event)
    record  := varint (size<<1 | is_write)
             | zigzag varint (addr  - prev_addr)
             | zigzag varint (obj_id - prev_obj_id)   (-1 = unattributed)
    persist := 0 u8 checkpoint str label    (epoch begin)
             | 1 u8 checkpoint str label    (epoch commit)
             | 2 varint obj_id off len      (flush lines of [off,off+len))
             | 3                            (fence)
             | 4 varint obj_id              (declare object persistent)
    objdesc := varint id | str name | u8 kind | varint base | varint size
             | str signature | varint n str*n | phase | u8 live
    phase   := varint (0 = Pre, 1 = Post, 1+i = Main i)
    trailer := 'T' | u32 len | md5(payload) |
               varint refs reads writes | objdesc-list | objdesc-list |
               varint nchunks | (varint offset, varint refs, md5)*nchunks |
               md5 trace-digest
    eof     := u64 trailer-offset | "NVSCAVTE"
    v}

    Every chunk is independently decodable: the delta baselines reset at
    each chunk boundary, the per-chunk object table carries descriptors for
    ids first referenced in that chunk, and the trailing chunk index gives
    each chunk's file offset, record count and payload digest — readers
    seek to the trailer via the fixed-size [eof] block.  The whole-trace
    digest is [md5(md5(meta) ^ md5(chunk_1) ^ ... ^ md5(chunk_n))]: it
    identifies the trace {e content} for cache keying (the sweep engine
    folds it into its cell digests) and is verifiable from the header and
    index alone.

    Versioning: the 8-byte magic names major format revisions (a reader
    rejects a foreign magic outright); the u16 version counts compatible
    extensions within a magic — a reader accepts every version from 1 up
    to its own and rejects newer ones.  A version bump may append trailing
    meta/trailer fields or introduce new chunk token tags; a new tag is
    only legal in files whose header already declares the version that
    defined it (a v1 file containing tag 3 is corrupt, not forward-
    compatible).  v1 traces (no persist events) remain fully readable:
    every v1 byte sequence decodes identically under a v2 reader.
    Re-defining the meaning of an existing tag or field requires a new
    magic.

    All decode errors raise {!Error} naming the file and the failure
    (truncation, digest mismatch, bad magic, unsupported version). *)

exception Error of string

type meta = {
  app : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  scale : float;
  iterations : int;
  batch_capacity : int;  (** emission batch capacity of the recording run *)
}

val fingerprint : meta -> string
(** Human-readable app/config fingerprint ("app|scale|iterations"), for
    report labelling. *)

type summary = {
  refs : int;
  reads : int;
  writes : int;
  chunks : int;
  bytes : int;  (** total file size on disk *)
  digest : string;  (** whole-trace digest, hex *)
}

(** Streaming writer: references, instruction counts and phase markers
    append in program order; chunks seal and hit the disk every
    [chunk_capacity] references, so recording is out-of-core — memory use
    is bounded by the chunk size, never the trace length. *)
module Writer : sig
  type t

  val create :
    ?version:int ->
    ?chunk_capacity:int ->
    ?resolve:(int -> Mem_object.t option) ->
    path:string ->
    meta:meta ->
    unit ->
    t
  (** [version] (default: the current format version, 2) selects the
      declared wire version; pass [1] to write a v1 trace for
      compatibility testing ({!add_persist} then raises).
      [chunk_capacity] (default {!Sink.default_capacity}) is the maximum
      references per chunk.  [resolve] maps an object id to its descriptor
      for the per-chunk attribution tables (default: none resolve, tables
      stay empty — the trailer tables passed to {!finish} still apply). *)

  val add_ref :
    t -> addr:int -> size:int -> op:Access.op -> obj_id:int -> unit
  (** Append one reference.  [obj_id] is the emission-time attribution
      ([-1] = unattributed). *)

  val add_batch :
    t -> ?obj_ids:int array -> Sink.Batch.t -> first:int -> n:int -> unit
  (** Append a batch slice ([obj_ids] defaults to all-unattributed). *)

  val add_instr : t -> int -> unit
  (** Append a committed plain-instruction count (positive). *)

  val add_phase : t -> Mem_object.phase -> unit

  val add_persist : t -> Persist.t -> unit
  (** Append a crash-consistency event (v2+; raises {!Error} on a writer
      created with [~version:1]). *)

  val finish :
    t ->
    ?objects:Mem_object.t list ->
    ?stack_objects:Mem_object.t list ->
    unit ->
    summary
  (** Seal the final chunk, write the trailer — [objects] is the final
      global/heap table in registration order, [stack_objects] the routine
      frames in id order; both authoritative for replayed analyses — and
      close the file. *)

  val abort : t -> unit
  (** Close the underlying channel without writing a trailer (error
      paths); the partial file is left truncated and will be rejected by
      {!Reader.open_}. *)
end

type io_mode =
  | Auto  (** mmap the file when the platform allows it, else buffered *)
  | Mmap  (** require the mmap path; {!Error} if mapping fails *)
  | Buffered  (** channel reads into per-chunk payload strings *)

(** Seekable reader.  {!Reader.open_} reads only the fixed header and the
    trailer (meta, final object tables, chunk index, digests) and verifies
    the whole-trace digest; the chunks stream on demand through
    {!stream}. *)
module Reader : sig
  type t

  val open_ : ?mode:io_mode -> string -> t
  (** Raises {!Error} on a foreign or damaged file.  [mode] (default
      {!Auto}) selects how {!stream} reads chunk payloads: under the mmap
      path tokens decode in place from a read-only [Unix.map_file] view of
      the trace — no payload copies, no channel buffering on the token
      path — while chunk digests are still verified byte for byte.  Both
      paths produce identical callbacks on identical files. *)

  val mmapped : t -> bool
  (** Whether chunk decoding will go through the mmap view. *)

  val meta : t -> meta

  val version : t -> int
  (** The wire version declared in the file header (1 or 2). *)

  val chunk_capacity : t -> int
  val refs : t -> int
  val reads : t -> int
  val writes : t -> int
  val chunks : t -> int

  val digest : t -> string
  (** Whole-trace content digest, hex — the sweep cache key. *)

  val objects : t -> Mem_object.t list
  (** Final global/heap objects, registry registration order. *)

  val stack_objects : t -> Mem_object.t list
  (** Final routine frame objects, id order. *)

  val close : t -> unit
end

val stream :
  Reader.t ->
  ?on_objects:(Mem_object.t list -> unit) ->
  ?on_phase:(Mem_object.phase -> unit) ->
  ?on_instr:(int -> unit) ->
  ?on_persist:(Persist.t -> unit) ->
  ?on_chunk:(int -> unit) ->
  on_refs:(Sink.Batch.t -> obj_ids:int array -> first:int -> n:int -> unit) ->
  unit ->
  unit
(** Decode the trace in program order, one chunk at a time, verifying each
    chunk's digest.  References are decoded into one reusable
    {!Sink.Batch.t} (plus a parallel attribution array) delivered in slices
    that never span a phase/instruction/persist token — so peak live memory
    is bounded by the chunk capacity, not the trace length.  Consumers must
    not retain the batch across callbacks.  [on_persist] receives v2
    crash-consistency events in stream order (never fires on a v1 trace);
    [on_chunk] fires with the chunk index before each chunk's records, so
    consumers can stamp findings with a seekable location.  May be called
    repeatedly on one reader; each call re-streams from the first chunk.
    Raises {!Error} on a truncated or corrupted chunk. *)
