(** Batched reference transport (paper §III-D).

    NV-SCAVENGER places raw references in a memory buffer and processes the
    whole buffer at once when it fills, amortising per-access bookkeeping
    and keeping the analysis out of the traced program's cache-hot path.
    This module is the repo-wide carrier for that idea: producers push
    references into a flat struct-of-arrays batch — no per-record
    allocation — and consumers receive whole batches.

    A {!t} is a buffered, counted sink: pushes accumulate in an internal
    {!Batch.t} and are handed to the consumer when the batch fills
    (capacity flush) or at an explicit boundary ({!flush}, called at
    iteration/phase boundaries so per-iteration statistics stay exact). *)

val set_debug_checks : bool -> unit
(** Toggle the module-wide debug-checked mode: batch accessors become
    bounds-checked and {!deliver} validates its slice.  Off by default —
    the hot path stays unsafe; tests and the NVSC-San lint pipeline turn
    it on.  The flag is an [Atomic.t], safe to read and toggle from sweep
    worker domains (it is a process-wide mode, so a sanitized cell may
    temporarily slow concurrent cells, never corrupt them). *)

val checks_enabled : unit -> bool

(** Flat batch of references: parallel [addr]/[size] buffers plus one byte
    per record for the read/write op.  Indices [0 .. n-1] are valid, where
    [n] is carried alongside the batch, not stored in it.

    Storage is [Bigarray]-backed (v2 of this interface): elements are
    unboxed, live outside the OCaml heap, and are domain-shareable, so one
    filled batch can be handed by reference to N shard domains with zero
    copying.  The old public int-array record ([{ addrs; sizes; ops }]) is
    gone — consumers that hoisted the fields now hoist the typed buffer
    views {!addrs}/{!sizes}/{!ops} instead (see the DESIGN.md versioning
    note). *)
module Batch : sig
  type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** Unboxed native-int payload buffer.  The kind and layout are concrete
      so [Bigarray.Array1.unsafe_get] compiles to a direct load at use
      sites. *)

  type op_buf =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
  (** One byte per record: ['\000'] = read, ['\001'] = write. *)

  type t

  val create : int -> t
  (** A batch with the given capacity (positive), zero-filled. *)

  val capacity : t -> int

  val ensure : t -> int -> unit
  (** Grow (by doubling) until the capacity is at least the given value;
      existing records are preserved.  Invalidates previously hoisted
      buffer views. *)

  val addrs : t -> int_buf
  val sizes : t -> int_buf

  val ops : t -> op_buf
  (** Raw buffer views for hot loops: hoist once per delivered slice, then
      index with [Bigarray.Array1.unsafe_get].  Views are valid until the
      next {!ensure} on the batch. *)

  val addr : t -> int -> int
  val size : t -> int -> int
  val is_write : t -> int -> bool
  val op : t -> int -> Access.op

  val set : t -> int -> addr:int -> size:int -> op:Access.op -> unit

  val set_addr_op : t -> int -> addr:int -> op:Access.op -> unit
  (** Like {!set} but leaves [sizes] untouched — for producers that emit a
      single size and prefill it once with {!fill_sizes}. *)

  val fill_sizes : t -> int -> unit

  val blit :
    t -> src_pos:int -> t -> dst_pos:int -> n:int -> unit
  (** [blit src ~src_pos dst ~dst_pos ~n] copies [n] records between
      batches (all three planes).  Bounds-checked by [Bigarray]. *)

  val check_slice : t -> first:int -> n:int -> unit
  (** Validate that [first .. first+n-1] lies within the batch capacity;
      raises [Invalid_argument] (naming the offending slice) otherwise. *)

  val access : t -> int -> Access.t
  (** Materialise record [i] (allocates; compatibility path only). *)

  val iter : t -> first:int -> n:int -> (Access.t -> unit) -> unit
  (** Per-access view of a batch slice, in order (allocates one record per
      element; compatibility path only). *)
end

type consumer = Batch.t -> first:int -> n:int -> unit
(** Receives a slice [first .. first+n-1] of a batch ([n > 0]).  The
    consumer must not retain the batch: the producer reuses it. *)

type t

val create : ?name:string -> ?capacity:int -> consumer -> t
(** A buffered sink delivering to [consumer].  [capacity] defaults to
    {!default_capacity}. *)

val default_capacity : int
(** 65536, the paper's flush granularity. *)

val of_fn : ?name:string -> ?capacity:int -> (Access.t -> unit) -> t
(** Wrap a per-access function as a batch consumer (the derived
    compatibility path: each delivered record is materialised). *)

val null : unit -> t
(** A sink that discards everything (still counts). *)

val push : t -> addr:int -> size:int -> op:Access.op -> unit
(** Append one reference; triggers a capacity flush when the buffer
    fills. *)

val push_access : t -> Access.t -> unit

val deliver : t -> Batch.t -> first:int -> n:int -> unit
(** Zero-copy hand-off of a foreign batch slice: any buffered pushes are
    flushed first (preserving order), then the slice goes straight to the
    consumer without being copied. *)

val flush : t -> unit
(** Boundary flush: deliver any buffered references now.  No-op when the
    buffer is empty. *)

(** {1 Self-observability} *)

val name : t -> string

val pushed : t -> int
(** References that entered the sink ({!push} and {!deliver} combined). *)

val batches : t -> int
(** Consumer invocations so far. *)

val capacity_flushes : t -> int
val boundary_flushes : t -> int

val flushes : t -> int
(** [capacity_flushes + boundary_flushes]. *)

type stats = {
  name : string;
  pushed : int;
  batches : int;
  capacity_flushes : int;
  boundary_flushes : int;
}

val stats : t -> stats
