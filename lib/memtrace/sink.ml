(* Debug-checked mode: when on, the hot-path accessors fall back to
   bounds-checked reads and slice hand-offs are validated, so a malformed
   [first]/[n] is caught instead of silently reading stale array tails.
   Enabled by the test harness and by the NVSC-San lint pipeline.

   An [Atomic.t], not a [ref]: the sweep engine runs scavenger cells on
   worker domains, and this is the one top-level mutable flag they all
   reach.  Toggling it is a process-wide mode switch (a sanitized run may
   slow concurrent unsanitized cells down, never corrupt them). *)
let debug_checks = Atomic.make false
let set_debug_checks v = Atomic.set debug_checks v
let checks_enabled () = Atomic.get debug_checks

module Batch = struct
  type t = {
    mutable addrs : int array;
    mutable sizes : int array;
    mutable ops : Bytes.t;
  }

  let create capacity =
    if capacity <= 0 then invalid_arg "Sink.Batch.create: capacity";
    {
      addrs = Array.make capacity 0;
      sizes = Array.make capacity 0;
      ops = Bytes.make capacity '\000';
    }

  let capacity b = Array.length b.addrs

  let ensure b want =
    let cap = Array.length b.addrs in
    if want > cap then begin
      let cap' = ref (2 * cap) in
      while want > !cap' do
        cap' := 2 * !cap'
      done;
      let addrs = Array.make !cap' 0 in
      let sizes = Array.make !cap' 0 in
      let ops = Bytes.make !cap' '\000' in
      Array.blit b.addrs 0 addrs 0 cap;
      Array.blit b.sizes 0 sizes 0 cap;
      Bytes.blit b.ops 0 ops 0 cap;
      b.addrs <- addrs;
      b.sizes <- sizes;
      b.ops <- ops
    end

  let check_slice b ~first ~n =
    let cap = Array.length b.addrs in
    if first < 0 || n < 0 || first + n > cap then
      invalid_arg
        (Printf.sprintf "Sink.Batch: slice first=%d n=%d outside capacity %d"
           first n cap)

  (* Hot-path accessors: callers index within [0, capacity) by
     construction (consumers receive a validated [first]/[n] slice;
     producers flush before the batch fills), so elide bounds checks —
     unless the debug-checked mode is on. *)
  let[@inline] addr b i =
    if Atomic.get debug_checks then Array.get b.addrs i else Array.unsafe_get b.addrs i

  let[@inline] size b i =
    if Atomic.get debug_checks then Array.get b.sizes i else Array.unsafe_get b.sizes i

  let[@inline] is_write b i =
    (if Atomic.get debug_checks then Bytes.get b.ops i else Bytes.unsafe_get b.ops i)
    <> '\000'

  let[@inline] op b i = if is_write b i then Access.Write else Access.Read
  let[@inline] op_char = function
    | Access.Read -> '\000'
    | Access.Write -> '\001'

  let[@inline] set b i ~addr ~size ~op =
    if Atomic.get debug_checks then begin
      Array.set b.addrs i addr;
      Array.set b.sizes i size;
      Bytes.set b.ops i (op_char op)
    end
    else begin
      Array.unsafe_set b.addrs i addr;
      Array.unsafe_set b.sizes i size;
      Bytes.unsafe_set b.ops i (op_char op)
    end

  let[@inline] set_addr_op b i ~addr ~op =
    if Atomic.get debug_checks then begin
      Array.set b.addrs i addr;
      Bytes.set b.ops i (op_char op)
    end
    else begin
      Array.unsafe_set b.addrs i addr;
      Bytes.unsafe_set b.ops i (op_char op)
    end

  let fill_sizes b size = Array.fill b.sizes 0 (Array.length b.sizes) size

  let access b i = { Access.addr = addr b i; size = size b i; op = op b i }

  let iter b ~first ~n f =
    for i = first to first + n - 1 do
      f (access b i)
    done
end

type consumer = Batch.t -> first:int -> n:int -> unit

type t = {
  name : string;
  consumer : consumer;
  batch : Batch.t;
  mutable len : int;
  mutable pushed : int;
  mutable batches : int;
  mutable capacity_flushes : int;
  mutable boundary_flushes : int;
}

let default_capacity = 65536

let create ?(name = "sink") ?(capacity = default_capacity) consumer =
  {
    name;
    consumer;
    batch = Batch.create capacity;
    len = 0;
    pushed = 0;
    batches = 0;
    capacity_flushes = 0;
    boundary_flushes = 0;
  }

let of_fn ?name ?capacity f =
  create ?name ?capacity (fun b ~first ~n -> Batch.iter b ~first ~n f)

let null () = create ~name:"null" (fun _ ~first:_ ~n:_ -> ())

let flush t =
  if t.len > 0 then begin
    let n = t.len in
    t.len <- 0;
    t.batches <- t.batches + 1;
    t.boundary_flushes <- t.boundary_flushes + 1;
    t.consumer t.batch ~first:0 ~n
  end

let push t ~addr ~size ~op =
  let i = t.len in
  Batch.set t.batch i ~addr ~size ~op;
  t.len <- i + 1;
  t.pushed <- t.pushed + 1;
  if t.len = Batch.capacity t.batch then begin
    let n = t.len in
    t.len <- 0;
    t.batches <- t.batches + 1;
    t.capacity_flushes <- t.capacity_flushes + 1;
    t.consumer t.batch ~first:0 ~n
  end

let push_access t (a : Access.t) = push t ~addr:a.addr ~size:a.size ~op:a.op

let deliver t batch ~first ~n =
  if Atomic.get debug_checks then Batch.check_slice batch ~first ~n;
  if n > 0 then begin
    flush t;
    t.pushed <- t.pushed + n;
    t.batches <- t.batches + 1;
    t.consumer batch ~first ~n
  end

let name t = t.name
let pushed t = t.pushed
let batches t = t.batches
let capacity_flushes t = t.capacity_flushes
let boundary_flushes t = t.boundary_flushes
let flushes t = t.capacity_flushes + t.boundary_flushes

type stats = {
  name : string;
  pushed : int;
  batches : int;
  capacity_flushes : int;
  boundary_flushes : int;
}

let stats (t : t) =
  {
    name = t.name;
    pushed = t.pushed;
    batches = t.batches;
    capacity_flushes = t.capacity_flushes;
    boundary_flushes = t.boundary_flushes;
  }
