(* Debug-checked mode: when on, the hot-path accessors fall back to
   bounds-checked reads and slice hand-offs are validated, so a malformed
   [first]/[n] is caught instead of silently reading stale array tails.
   Enabled by the test harness and by the NVSC-San lint pipeline.

   An [Atomic.t], not a [ref]: the sweep engine runs scavenger cells on
   worker domains, and this is the one top-level mutable flag they all
   reach.  Toggling it is a process-wide mode switch (a sanitized run may
   slow concurrent unsanitized cells down, never corrupt them). *)
let debug_checks = Atomic.make false
let set_debug_checks v = Atomic.set debug_checks v
let checks_enabled () = Atomic.get debug_checks

module Batch = struct
  (* Bigarray storage: elements live outside the OCaml heap, so a filled
     batch can be handed by reference to N shard domains with zero
     copying and no GC interaction — the minor collector never scans or
     moves the payload.  The concrete kind/layout is statically known at
     every use site, so [Array1.unsafe_get] compiles to a direct load. *)
  type int_buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  type op_buf =
    (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = {
    mutable addrs : int_buf;
    mutable sizes : int_buf;
    mutable ops : op_buf;
  }

  let make_int_buf n =
    let a = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
    Bigarray.Array1.fill a 0;
    a

  let make_op_buf n =
    let a = Bigarray.Array1.create Bigarray.char Bigarray.c_layout n in
    Bigarray.Array1.fill a '\000';
    a

  let create capacity =
    if capacity <= 0 then invalid_arg "Sink.Batch.create: capacity";
    {
      addrs = make_int_buf capacity;
      sizes = make_int_buf capacity;
      ops = make_op_buf capacity;
    }

  let capacity b = Bigarray.Array1.dim b.addrs

  (* Buffer views for hot loops: consumers hoist these once per delivered
     slice and index with [Array1.unsafe_get], exactly as the previous
     int-array representation hoisted the record fields.  The buffers stay
     valid for the duration of one consumer call; [ensure] may replace
     them between calls. *)
  let[@inline] addrs b = b.addrs
  let[@inline] sizes b = b.sizes
  let[@inline] ops b = b.ops

  let ensure b want =
    let cap = Bigarray.Array1.dim b.addrs in
    if want > cap then begin
      let cap' = ref (2 * cap) in
      while want > !cap' do
        cap' := 2 * !cap'
      done;
      let addrs = make_int_buf !cap' in
      let sizes = make_int_buf !cap' in
      let ops = make_op_buf !cap' in
      Bigarray.Array1.blit b.addrs (Bigarray.Array1.sub addrs 0 cap);
      Bigarray.Array1.blit b.sizes (Bigarray.Array1.sub sizes 0 cap);
      Bigarray.Array1.blit b.ops (Bigarray.Array1.sub ops 0 cap);
      b.addrs <- addrs;
      b.sizes <- sizes;
      b.ops <- ops
    end

  let check_slice b ~first ~n =
    let cap = Bigarray.Array1.dim b.addrs in
    if first < 0 || n < 0 || first + n > cap then
      invalid_arg
        (Printf.sprintf "Sink.Batch: slice first=%d n=%d outside capacity %d"
           first n cap)

  (* Hot-path accessors: callers index within [0, capacity) by
     construction (consumers receive a validated [first]/[n] slice;
     producers flush before the batch fills), so elide bounds checks —
     unless the debug-checked mode is on. *)
  let[@inline] addr b i =
    if Atomic.get debug_checks then Bigarray.Array1.get b.addrs i
    else Bigarray.Array1.unsafe_get b.addrs i

  let[@inline] size b i =
    if Atomic.get debug_checks then Bigarray.Array1.get b.sizes i
    else Bigarray.Array1.unsafe_get b.sizes i

  let[@inline] is_write b i =
    (if Atomic.get debug_checks then Bigarray.Array1.get b.ops i
     else Bigarray.Array1.unsafe_get b.ops i)
    <> '\000'

  let[@inline] op b i = if is_write b i then Access.Write else Access.Read
  let[@inline] op_char = function
    | Access.Read -> '\000'
    | Access.Write -> '\001'

  let[@inline] set b i ~addr ~size ~op =
    if Atomic.get debug_checks then begin
      Bigarray.Array1.set b.addrs i addr;
      Bigarray.Array1.set b.sizes i size;
      Bigarray.Array1.set b.ops i (op_char op)
    end
    else begin
      Bigarray.Array1.unsafe_set b.addrs i addr;
      Bigarray.Array1.unsafe_set b.sizes i size;
      Bigarray.Array1.unsafe_set b.ops i (op_char op)
    end

  let[@inline] set_addr_op b i ~addr ~op =
    if Atomic.get debug_checks then begin
      Bigarray.Array1.set b.addrs i addr;
      Bigarray.Array1.set b.ops i (op_char op)
    end
    else begin
      Bigarray.Array1.unsafe_set b.addrs i addr;
      Bigarray.Array1.unsafe_set b.ops i (op_char op)
    end

  let fill_sizes b size =
    Bigarray.Array1.fill b.sizes size

  let blit src ~src_pos dst ~dst_pos ~n =
    if n > 0 then begin
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src.addrs src_pos n)
        (Bigarray.Array1.sub dst.addrs dst_pos n);
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src.sizes src_pos n)
        (Bigarray.Array1.sub dst.sizes dst_pos n);
      Bigarray.Array1.blit
        (Bigarray.Array1.sub src.ops src_pos n)
        (Bigarray.Array1.sub dst.ops dst_pos n)
    end

  let access b i = { Access.addr = addr b i; size = size b i; op = op b i }

  let iter b ~first ~n f =
    for i = first to first + n - 1 do
      f (access b i)
    done
end

type consumer = Batch.t -> first:int -> n:int -> unit

type t = {
  name : string;
  consumer : consumer;
  batch : Batch.t;
  mutable len : int;
  mutable pushed : int;
  mutable batches : int;
  mutable capacity_flushes : int;
  mutable boundary_flushes : int;
}

let default_capacity = 65536

let create ?(name = "sink") ?(capacity = default_capacity) consumer =
  {
    name;
    consumer;
    batch = Batch.create capacity;
    len = 0;
    pushed = 0;
    batches = 0;
    capacity_flushes = 0;
    boundary_flushes = 0;
  }

let of_fn ?name ?capacity f =
  create ?name ?capacity (fun b ~first ~n -> Batch.iter b ~first ~n f)

let null () = create ~name:"null" (fun _ ~first:_ ~n:_ -> ())

let flush t =
  if t.len > 0 then begin
    let n = t.len in
    t.len <- 0;
    t.batches <- t.batches + 1;
    t.boundary_flushes <- t.boundary_flushes + 1;
    t.consumer t.batch ~first:0 ~n
  end

let push t ~addr ~size ~op =
  let i = t.len in
  Batch.set t.batch i ~addr ~size ~op;
  t.len <- i + 1;
  t.pushed <- t.pushed + 1;
  if t.len = Batch.capacity t.batch then begin
    let n = t.len in
    t.len <- 0;
    t.batches <- t.batches + 1;
    t.capacity_flushes <- t.capacity_flushes + 1;
    t.consumer t.batch ~first:0 ~n
  end

let push_access t (a : Access.t) = push t ~addr:a.addr ~size:a.size ~op:a.op

let deliver t batch ~first ~n =
  if Atomic.get debug_checks then Batch.check_slice batch ~first ~n;
  if n > 0 then begin
    flush t;
    t.pushed <- t.pushed + n;
    t.batches <- t.batches + 1;
    t.consumer batch ~first ~n
  end

let name t = t.name
let pushed t = t.pushed
let batches t = t.batches
let capacity_flushes t = t.capacity_flushes
let boundary_flushes t = t.boundary_flushes
let flushes t = t.capacity_flushes + t.boundary_flushes

type stats = {
  name : string;
  pushed : int;
  batches : int;
  capacity_flushes : int;
  boundary_flushes : int;
}

let stats (t : t) =
  {
    name = t.name;
    pushed = t.pushed;
    batches = t.batches;
    capacity_flushes = t.capacity_flushes;
    boundary_flushes = t.boundary_flushes;
  }
