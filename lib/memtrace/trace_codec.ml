exception Error of string

let err path fmt =
  Printf.ksprintf (fun s -> raise (Error ("Trace_codec: " ^ path ^ ": " ^ s))) fmt

let magic = "NVSCAVT1"
let eof_magic = "NVSCAVTE"
let version = 2
let min_version = 1

type meta = {
  app : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  scale : float;
  iterations : int;
  batch_capacity : int;
}

let fingerprint m =
  Printf.sprintf "%s|scale=%g|iterations=%d" m.app m.scale m.iterations

type summary = {
  refs : int;
  reads : int;
  writes : int;
  chunks : int;
  bytes : int;
  digest : string;
}

(* Registry counters shared by every writer/reader in the process: the
   profile summary reports record/replay volume across a whole sweep. *)
let m_record_refs = Nvsc_obs.Metrics.counter "nvt.record.refs"
let m_record_bytes = Nvsc_obs.Metrics.counter "nvt.record.bytes"
let m_replay_refs = Nvsc_obs.Metrics.counter "nvt.replay.refs"
let m_replay_chunks = Nvsc_obs.Metrics.counter "nvt.replay.chunks"

(* --- primitive encoders ------------------------------------------------- *)

let put_varint buf n =
  (* unsigned LEB128; negative values must go through [zigzag] first *)
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.unsafe_chr n)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  if n < 0 then invalid_arg "Trace_codec: negative varint";
  go n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let put_str buf s =
  put_varint buf (String.length s);
  Buffer.add_string buf s

let put_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let phase_code = function
  | Mem_object.Pre -> 0
  | Mem_object.Post -> 1
  | Mem_object.Main i -> 1 + i

let phase_of_code path = function
  | 0 -> Mem_object.Pre
  | 1 -> Mem_object.Post
  | n when n >= 2 -> Mem_object.Main (n - 1)
  | n -> err path "corrupt phase code %d" n

let kind_code = function
  | Layout.Global -> 0
  | Layout.Heap -> 1
  | Layout.Stack -> 2

let kind_of_code path = function
  | 0 -> Layout.Global
  | 1 -> Layout.Heap
  | 2 -> Layout.Stack
  | n -> err path "corrupt object kind %d" n

let put_obj buf (o : Mem_object.t) =
  put_varint buf o.id;
  put_str buf o.name;
  Buffer.add_char buf (Char.chr (kind_code o.kind));
  put_varint buf o.base;
  put_varint buf o.size;
  put_str buf o.signature;
  put_varint buf (List.length o.callstack);
  List.iter (put_str buf) o.callstack;
  put_varint buf (phase_code o.alloc_phase);
  Buffer.add_char buf (if o.live then '\001' else '\000')

let put_meta buf (m : meta) ~chunk_capacity =
  put_str buf m.app;
  put_str buf m.description;
  put_str buf m.input_description;
  put_f64 buf m.paper_footprint_mb;
  put_f64 buf m.scale;
  put_varint buf m.iterations;
  put_varint buf m.batch_capacity;
  put_varint buf chunk_capacity

(* --- primitive decoders ------------------------------------------------- *)

(* Decoding works over an in-memory string (one chunk / header / trailer
   payload at a time — each bounded by the chunk size, not the trace
   length); any overrun is a truncation of [what] in [path]. *)
type dec = { s : string; mutable pos : int; d_path : string; what : string }

let dec s ~path ~what = { s; pos = 0; d_path = path; what }

let get_byte d =
  if d.pos >= String.length d.s then
    err d.d_path "truncated %s" d.what;
  let b = Char.code (String.unsafe_get d.s d.pos) in
  d.pos <- d.pos + 1;
  b

let get_varint d =
  let rec go shift acc =
    let b = get_byte d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let get_str d =
  let n = get_varint d in
  if d.pos + n > String.length d.s then err d.d_path "truncated %s" d.what;
  let s = String.sub d.s d.pos n in
  d.pos <- d.pos + n;
  s

let get_f64 d =
  let rec go i acc =
    if i >= 8 then acc
    else go (i + 1) Int64.(logor acc (shift_left (of_int (get_byte d)) (8 * i)))
  in
  Int64.float_of_bits (go 0 0L)

let get_obj d =
  let id = get_varint d in
  let name = get_str d in
  let kind = kind_of_code d.d_path (get_byte d) in
  let base = get_varint d in
  let size = get_varint d in
  let signature = get_str d in
  let ncall = get_varint d in
  let callstack = List.init ncall (fun _ -> get_str d) in
  let alloc_phase = phase_of_code d.d_path (get_varint d) in
  let live = get_byte d <> 0 in
  let o =
    Mem_object.make ~id ~name ~kind ~base ~size ~signature ~callstack
      ~alloc_phase ()
  in
  o.Mem_object.live <- live;
  o

(* Mmap-backed decoding: the same token grammar read straight out of a
   [Unix.map_file] view of the trace instead of channel reads into payload
   strings.  The primitives are duplicated rather than functorised — the
   per-byte getters sit on the replay hot path, and an indirect call per
   byte through a functor would cost more than the copies it saves. *)
type buf =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type bdec = {
  m : buf;
  mutable mpos : int;
  mend : int;
  m_path : string;
  m_what : string;
}

let bdec m ~pos ~len ~path ~what =
  { m; mpos = pos; mend = pos + len; m_path = path; m_what = what }

let bget_byte d =
  if d.mpos >= d.mend then err d.m_path "truncated %s" d.m_what;
  let b = Char.code (Bigarray.Array1.unsafe_get d.m d.mpos) in
  d.mpos <- d.mpos + 1;
  b

let bget_varint d =
  let rec go shift acc =
    let b = bget_byte d in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else go (shift + 7) acc
  in
  go 0 0

let bget_raw d n =
  if d.mpos + n > d.mend then err d.m_path "truncated %s" d.m_what;
  let s = String.init n (fun i -> Bigarray.Array1.unsafe_get d.m (d.mpos + i)) in
  d.mpos <- d.mpos + n;
  s

let bget_str d = bget_raw d (bget_varint d)

let bget_obj d =
  let id = bget_varint d in
  let name = bget_str d in
  let kind = kind_of_code d.m_path (bget_byte d) in
  let base = bget_varint d in
  let size = bget_varint d in
  let signature = bget_str d in
  let ncall = bget_varint d in
  let callstack = List.init ncall (fun _ -> bget_str d) in
  let alloc_phase = phase_of_code d.m_path (bget_varint d) in
  let live = bget_byte d <> 0 in
  let o =
    Mem_object.make ~id ~name ~kind ~base ~size ~signature ~callstack
      ~alloc_phase ()
  in
  o.Mem_object.live <- live;
  o

let get_meta d =
  let app = get_str d in
  let description = get_str d in
  let input_description = get_str d in
  let paper_footprint_mb = get_f64 d in
  let scale = get_f64 d in
  let iterations = get_varint d in
  let batch_capacity = get_varint d in
  let chunk_capacity = get_varint d in
  ( {
      app;
      description;
      input_description;
      paper_footprint_mb;
      scale;
      iterations;
      batch_capacity;
    },
    chunk_capacity )

(* Fixed-width channel reads (the only decoding not done over a payload
   string: the file skeleton around the digested payloads). *)
let really_read ic path n =
  let b = Bytes.create n in
  (try really_input ic b 0 n with End_of_file -> err path "truncated file");
  Bytes.unsafe_to_string b

let read_u16le ic path =
  let s = really_read ic path 2 in
  Char.code s.[0] lor (Char.code s.[1] lsl 8)

let read_u32le ic path =
  let s = really_read ic path 4 in
  Char.code s.[0]
  lor (Char.code s.[1] lsl 8)
  lor (Char.code s.[2] lsl 16)
  lor (Char.code s.[3] lsl 24)

(* All fixed-width fields are explicitly little-endian, independent of
   the host: the on-disk format must not change with the endianness or
   word size of the recording machine (the golden-fixture test pins the
   exact bytes). *)
let u16le_bytes n =
  let b = Bytes.create 2 in
  Bytes.set_uint8 b 0 (n land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
  Bytes.unsafe_to_string b

let u32le_bytes n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 (n land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 3 ((n lsr 24) land 0xff);
  Bytes.unsafe_to_string b

(* --- token tags --------------------------------------------------------- *)

let tag_phase = 0
let tag_instr = 1
let tag_refs = 2
let tag_persist = 3 (* v2+ only *)

(* persist sub-codes (the byte after a [tag_persist]) *)
let psub_epoch_begin = 0
let psub_epoch_commit = 1
let psub_flush = 2
let psub_fence = 3
let psub_declare = 4

(* --- writer ------------------------------------------------------------- *)

module Writer = struct
  type t = {
    w_path : string;
    oc : out_channel;
    w_version : int;
    chunk_capacity : int;
    resolve : int -> Mem_object.t option;
    seen : (int, unit) Hashtbl.t;  (* ids already tabled in some chunk *)
    obj_buf : Buffer.t;  (* this chunk's attribution table *)
    mutable obj_count : int;
    tok_buf : Buffer.t;  (* this chunk's sealed tokens *)
    run_buf : Buffer.t;  (* the open REFS run *)
    mutable run_count : int;
    mutable prev_addr : int;
    mutable prev_id : int;
    mutable chunk_refs : int;
    mutable index_rev : (int * int * string) list;  (* offset, refs, md5 *)
    mutable t_refs : int;
    mutable t_reads : int;
    mutable t_writes : int;
    header_md5 : string;
    mutable closed : bool;
  }

  let create ?(version = version) ?(chunk_capacity = Sink.default_capacity)
      ?(resolve = fun _ -> None) ~path ~meta () =
    if chunk_capacity <= 0 then
      invalid_arg "Trace_codec.Writer.create: chunk_capacity";
    if version < min_version || version > 2 then
      invalid_arg "Trace_codec.Writer.create: version";
    let oc = open_out_bin path in
    let hdr = Buffer.create 256 in
    put_meta hdr meta ~chunk_capacity;
    let header_payload = Buffer.contents hdr in
    output_string oc magic;
    output_string oc (u16le_bytes version);
    output_string oc (u32le_bytes (String.length header_payload));
    output_string oc header_payload;
    {
      w_path = path;
      oc;
      w_version = version;
      chunk_capacity;
      resolve;
      seen = Hashtbl.create 256;
      obj_buf = Buffer.create 1024;
      obj_count = 0;
      tok_buf = Buffer.create (chunk_capacity * 4);
      run_buf = Buffer.create (chunk_capacity * 4);
      run_count = 0;
      prev_addr = 0;
      prev_id = 0;
      chunk_refs = 0;
      index_rev = [];
      t_refs = 0;
      t_reads = 0;
      t_writes = 0;
      header_md5 = Digest.string header_payload;
      closed = false;
    }

  let flush_run w =
    if w.run_count > 0 then begin
      Buffer.add_char w.tok_buf (Char.chr tag_refs);
      put_varint w.tok_buf w.run_count;
      Buffer.add_buffer w.tok_buf w.run_buf;
      Buffer.clear w.run_buf;
      w.run_count <- 0
    end

  let seal_chunk w =
    flush_run w;
    if w.chunk_refs > 0 || Buffer.length w.tok_buf > 0 then begin
      let payload = Buffer.create (Buffer.length w.tok_buf + 64) in
      put_varint payload w.chunk_refs;
      put_varint payload w.obj_count;
      Buffer.add_buffer payload w.obj_buf;
      Buffer.add_buffer payload w.tok_buf;
      let payload = Buffer.contents payload in
      let md5 = Digest.string payload in
      let offset = pos_out w.oc in
      output_char w.oc 'C';
      output_string w.oc (u32le_bytes (String.length payload));
      output_string w.oc md5;
      output_string w.oc payload;
      w.index_rev <- (offset, w.chunk_refs, md5) :: w.index_rev;
      Buffer.clear w.obj_buf;
      Buffer.clear w.tok_buf;
      w.obj_count <- 0;
      w.chunk_refs <- 0;
      w.prev_addr <- 0;
      w.prev_id <- 0
    end

  let add_ref w ~addr ~size ~op ~obj_id =
    if obj_id >= 0 && not (Hashtbl.mem w.seen obj_id) then begin
      Hashtbl.add w.seen obj_id ();
      match w.resolve obj_id with
      | Some o ->
        put_obj w.obj_buf o;
        w.obj_count <- w.obj_count + 1
      | None -> ()
    end;
    let is_write = match op with Access.Read -> false | Access.Write -> true in
    put_varint w.run_buf ((size lsl 1) lor Bool.to_int is_write);
    put_varint w.run_buf (zigzag (addr - w.prev_addr));
    put_varint w.run_buf (zigzag (obj_id - w.prev_id));
    w.prev_addr <- addr;
    w.prev_id <- obj_id;
    w.run_count <- w.run_count + 1;
    w.chunk_refs <- w.chunk_refs + 1;
    w.t_refs <- w.t_refs + 1;
    if is_write then w.t_writes <- w.t_writes + 1
    else w.t_reads <- w.t_reads + 1;
    if w.chunk_refs >= w.chunk_capacity then seal_chunk w

  let add_batch w ?obj_ids batch ~first ~n =
    Sink.Batch.check_slice batch ~first ~n;
    for i = first to first + n - 1 do
      let obj_id = match obj_ids with Some a -> a.(i) | None -> -1 in
      add_ref w ~addr:(Sink.Batch.addr batch i) ~size:(Sink.Batch.size batch i)
        ~op:(Sink.Batch.op batch i) ~obj_id
    done

  let add_instr w n =
    if n <= 0 then invalid_arg "Trace_codec.Writer.add_instr: count";
    flush_run w;
    Buffer.add_char w.tok_buf (Char.chr tag_instr);
    put_varint w.tok_buf n

  let add_phase w p =
    flush_run w;
    Buffer.add_char w.tok_buf (Char.chr tag_phase);
    put_varint w.tok_buf (phase_code p)

  let add_persist w (p : Persist.t) =
    if w.w_version < 2 then
      err w.w_path "persist events need NVT version >= 2 (writer is v%d)"
        w.w_version;
    flush_run w;
    Buffer.add_char w.tok_buf (Char.chr tag_persist);
    let epoch sub label checkpoint =
      Buffer.add_char w.tok_buf (Char.chr sub);
      Buffer.add_char w.tok_buf (if checkpoint then '\001' else '\000');
      put_str w.tok_buf label
    in
    match p with
    | Persist.Epoch_begin { label; checkpoint } ->
      epoch psub_epoch_begin label checkpoint
    | Persist.Epoch_commit { label; checkpoint } ->
      epoch psub_epoch_commit label checkpoint
    | Persist.Flush { obj_id; off; len } ->
      Buffer.add_char w.tok_buf (Char.chr psub_flush);
      put_varint w.tok_buf obj_id;
      put_varint w.tok_buf off;
      put_varint w.tok_buf len
    | Persist.Fence -> Buffer.add_char w.tok_buf (Char.chr psub_fence)
    | Persist.Declare { obj_id } ->
      Buffer.add_char w.tok_buf (Char.chr psub_declare);
      put_varint w.tok_buf obj_id

  let finish w ?(objects = []) ?(stack_objects = []) () =
    seal_chunk w;
    let index = List.rev w.index_rev in
    let trace_digest =
      Digest.string
        (String.concat "" (w.header_md5 :: List.map (fun (_, _, d) -> d) index))
    in
    let payload = Buffer.create 4096 in
    put_varint payload w.t_refs;
    put_varint payload w.t_reads;
    put_varint payload w.t_writes;
    put_varint payload (List.length objects);
    List.iter (put_obj payload) objects;
    put_varint payload (List.length stack_objects);
    List.iter (put_obj payload) stack_objects;
    put_varint payload (List.length index);
    List.iter
      (fun (offset, refs, md5) ->
        put_varint payload offset;
        put_varint payload refs;
        Buffer.add_string payload md5)
      index;
    Buffer.add_string payload trace_digest;
    let payload = Buffer.contents payload in
    let trailer_offset = pos_out w.oc in
    output_char w.oc 'T';
    output_string w.oc (u32le_bytes (String.length payload));
    output_string w.oc (Digest.string payload);
    output_string w.oc payload;
    let eof = Buffer.create 16 in
    Buffer.add_int64_le eof (Int64.of_int trailer_offset);
    Buffer.add_string eof eof_magic;
    Buffer.output_buffer w.oc eof;
    let bytes = pos_out w.oc in
    close_out w.oc;
    w.closed <- true;
    Nvsc_obs.Metrics.Counter.add m_record_refs w.t_refs;
    Nvsc_obs.Metrics.Counter.add m_record_bytes bytes;
    {
      refs = w.t_refs;
      reads = w.t_reads;
      writes = w.t_writes;
      chunks = List.length index;
      bytes;
      digest = Digest.to_hex trace_digest;
    }

  let abort w = if not w.closed then close_out_noerr w.oc
end

(* --- reader ------------------------------------------------------------- *)

type chunk_info = { c_offset : int; c_refs : int; c_md5 : string }

type io_mode = Auto | Mmap | Buffered

module Reader = struct
  type t = {
    r_path : string;
    ic : in_channel;
    map : buf option;  (* [Some _] iff chunks decode from an mmap view *)
    r_version : int;
    r_meta : meta;
    r_chunk_capacity : int;
    r_refs : int;
    r_reads : int;
    r_writes : int;
    r_objects : Mem_object.t list;
    r_stack : Mem_object.t list;
    index : chunk_info array;
    r_digest : string;  (* hex *)
    data_start : int;
    trailer_offset : int;
  }

  let map_file path len =
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
    let g = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| len |] in
    Bigarray.array1_of_genarray g

  let open_ ?(mode = Auto) path =
    let ic = try open_in_bin path with Sys_error m -> raise (Error m) in
    match
      let len = in_channel_length ic in
      if len < String.length magic + 2 + 4 + 16 then err path "truncated file";
      let m = really_read ic path (String.length magic) in
      if m <> magic then err path "bad magic (not an NVT trace)";
      let v = read_u16le ic path in
      if v < min_version || v > version then
        err path "unsupported NVT version %d" v;
      let hlen = read_u32le ic path in
      if 14 + hlen + 16 > len then err path "truncated file";
      let header_payload = really_read ic path hlen in
      let r_meta, r_chunk_capacity =
        get_meta (dec header_payload ~path ~what:"header")
      in
      seek_in ic (len - 16);
      let eof = really_read ic path 16 in
      if String.sub eof 8 8 <> eof_magic then
        err path "truncated file (missing trailer)";
      let trailer_offset =
        let rec go i acc =
          if i >= 8 then acc
          else
            go (i + 1)
              Int64.(logor acc (shift_left (of_int (Char.code eof.[i])) (8 * i)))
        in
        Int64.to_int (go 0 0L)
      in
      if trailer_offset < 14 + hlen || trailer_offset >= len - 16 then
        err path "corrupt trailer offset";
      seek_in ic trailer_offset;
      if really_read ic path 1 <> "T" then err path "corrupt trailer";
      let tlen = read_u32le ic path in
      let tmd5 = really_read ic path 16 in
      if trailer_offset + 1 + 4 + 16 + tlen > len - 16 then
        err path "truncated file";
      let payload = really_read ic path tlen in
      if Digest.string payload <> tmd5 then
        err path "corrupt trailer (digest mismatch)";
      let d = dec payload ~path ~what:"trailer" in
      let r_refs = get_varint d in
      let r_reads = get_varint d in
      let r_writes = get_varint d in
      let nobjs = get_varint d in
      let r_objects = List.init nobjs (fun _ -> get_obj d) in
      let nstack = get_varint d in
      let r_stack = List.init nstack (fun _ -> get_obj d) in
      let nchunks = get_varint d in
      let index =
        Array.init nchunks (fun _ ->
            let c_offset = get_varint d in
            let c_refs = get_varint d in
            let c_md5 =
              if d.pos + 16 > String.length d.s then
                err path "truncated trailer"
              else begin
                let s = String.sub d.s d.pos 16 in
                d.pos <- d.pos + 16;
                s
              end
            in
            { c_offset; c_refs; c_md5 })
      in
      let stored_digest =
        if d.pos + 16 > String.length d.s then err path "truncated trailer"
        else String.sub d.s d.pos 16
      in
      let recomputed =
        Digest.string
          (String.concat ""
             (Digest.string header_payload
             :: (Array.to_list index |> List.map (fun c -> c.c_md5))))
      in
      if recomputed <> stored_digest then
        err path "corrupt trace (whole-trace digest mismatch)";
      let map =
        match mode with
        | Buffered -> None
        | Mmap -> (
          try Some (map_file path len)
          with Unix.Unix_error (e, _, _) ->
            err path "mmap failed: %s" (Unix.error_message e))
        | Auto -> ( try Some (map_file path len) with _ -> None)
      in
      {
        r_path = path;
        ic;
        map;
        r_version = v;
        r_meta;
        r_chunk_capacity;
        r_refs;
        r_reads;
        r_writes;
        r_objects;
        r_stack;
        index;
        r_digest = Digest.to_hex stored_digest;
        data_start = 14 + hlen;
        trailer_offset;
      }
    with
    | r -> r
    | exception e ->
      close_in_noerr ic;
      raise e

  let meta r = r.r_meta
  let version r = r.r_version
  let chunk_capacity r = r.r_chunk_capacity
  let refs r = r.r_refs
  let reads r = r.r_reads
  let writes r = r.r_writes
  let chunks r = Array.length r.index
  let digest r = r.r_digest
  let objects r = r.r_objects
  let stack_objects r = r.r_stack
  let mmapped r = r.map <> None
  let close r = close_in_noerr r.ic
end

let stream (r : Reader.t) ?(on_objects = fun _ -> ()) ?(on_phase = fun _ -> ())
    ?(on_instr = fun _ -> ()) ?(on_persist = fun _ -> ())
    ?(on_chunk = fun _ -> ()) ~on_refs () =
  let path = r.Reader.r_path in
  let ic = r.Reader.ic in
  let cap =
    Array.fold_left (fun acc c -> Stdlib.max acc c.c_refs) 1 r.Reader.index
  in
  let batch = Sink.Batch.create cap in
  let obj_ids = Array.make cap (-1) in
  let len = ref 0 in
  let deliver () =
    if !len > 0 then begin
      on_refs batch ~obj_ids ~first:0 ~n:!len;
      len := 0
    end
  in
  let decode_chunk_string k info payload =
    let d = dec payload ~path ~what:(Printf.sprintf "chunk %d" k) in
    let nrefs = get_varint d in
    if nrefs <> info.c_refs then
      err path "corrupt chunk %d (record count mismatch)" k;
    let nobjs = get_varint d in
    if nobjs > 0 then on_objects (List.init nobjs (fun _ -> get_obj d));
    let prev_addr = ref 0 in
    let prev_id = ref 0 in
    let decoded = ref 0 in
    while d.pos < String.length d.s do
      match get_byte d with
      | t when t = tag_phase ->
        deliver ();
        on_phase (phase_of_code path (get_varint d))
      | t when t = tag_instr ->
        deliver ();
        on_instr (get_varint d)
      | t when t = tag_refs ->
        let n = get_varint d in
        for _ = 1 to n do
          let sz_op = get_varint d in
          let addr = !prev_addr + unzigzag (get_varint d) in
          let obj_id = !prev_id + unzigzag (get_varint d) in
          prev_addr := addr;
          prev_id := obj_id;
          let i = !len in
          Sink.Batch.set batch i ~addr ~size:(sz_op lsr 1)
            ~op:(if sz_op land 1 = 1 then Access.Write else Access.Read);
          obj_ids.(i) <- obj_id;
          len := i + 1
        done;
        decoded := !decoded + n
      | t when t = tag_persist ->
        if r.Reader.r_version < 2 then
          err path "corrupt chunk %d (persist token in a v1 trace)" k;
        deliver ();
        let ev =
          match get_byte d with
          | s when s = psub_epoch_begin || s = psub_epoch_commit ->
            let checkpoint = get_byte d <> 0 in
            let label = get_str d in
            if s = psub_epoch_begin then
              Persist.Epoch_begin { label; checkpoint }
            else Persist.Epoch_commit { label; checkpoint }
          | s when s = psub_flush ->
            let obj_id = get_varint d in
            let off = get_varint d in
            let len = get_varint d in
            Persist.Flush { obj_id; off; len }
          | s when s = psub_fence -> Persist.Fence
          | s when s = psub_declare -> Persist.Declare { obj_id = get_varint d }
          | s -> err path "corrupt chunk %d (unknown persist event %d)" k s
        in
        on_persist ev
      | t -> err path "corrupt chunk %d (unknown token %d)" k t
    done;
    if !decoded <> nrefs then
      err path "corrupt chunk %d (record count mismatch)" k;
    deliver ();
    nrefs
  in
  (* Same grammar, read in place from the mapped file — no payload copy,
     no channel buffering on the token path. *)
  let decode_chunk_map m k info ~pos ~clen =
    let d = bdec m ~pos ~len:clen ~path ~what:(Printf.sprintf "chunk %d" k) in
    let nrefs = bget_varint d in
    if nrefs <> info.c_refs then
      err path "corrupt chunk %d (record count mismatch)" k;
    let nobjs = bget_varint d in
    if nobjs > 0 then on_objects (List.init nobjs (fun _ -> bget_obj d));
    let prev_addr = ref 0 in
    let prev_id = ref 0 in
    let decoded = ref 0 in
    while d.mpos < d.mend do
      match bget_byte d with
      | t when t = tag_phase ->
        deliver ();
        on_phase (phase_of_code path (bget_varint d))
      | t when t = tag_instr ->
        deliver ();
        on_instr (bget_varint d)
      | t when t = tag_refs ->
        let n = bget_varint d in
        for _ = 1 to n do
          let sz_op = bget_varint d in
          let addr = !prev_addr + unzigzag (bget_varint d) in
          let obj_id = !prev_id + unzigzag (bget_varint d) in
          prev_addr := addr;
          prev_id := obj_id;
          let i = !len in
          Sink.Batch.set batch i ~addr ~size:(sz_op lsr 1)
            ~op:(if sz_op land 1 = 1 then Access.Write else Access.Read);
          obj_ids.(i) <- obj_id;
          len := i + 1
        done;
        decoded := !decoded + n
      | t when t = tag_persist ->
        if r.Reader.r_version < 2 then
          err path "corrupt chunk %d (persist token in a v1 trace)" k;
        deliver ();
        let ev =
          match bget_byte d with
          | s when s = psub_epoch_begin || s = psub_epoch_commit ->
            let checkpoint = bget_byte d <> 0 in
            let label = bget_str d in
            if s = psub_epoch_begin then
              Persist.Epoch_begin { label; checkpoint }
            else Persist.Epoch_commit { label; checkpoint }
          | s when s = psub_flush ->
            let obj_id = bget_varint d in
            let off = bget_varint d in
            let len = bget_varint d in
            Persist.Flush { obj_id; off; len }
          | s when s = psub_fence -> Persist.Fence
          | s when s = psub_declare ->
            Persist.Declare { obj_id = bget_varint d }
          | s -> err path "corrupt chunk %d (unknown persist event %d)" k s
        in
        on_persist ev
      | t -> err path "corrupt chunk %d (unknown token %d)" k t
    done;
    if !decoded <> nrefs then
      err path "corrupt chunk %d (record count mismatch)" k;
    deliver ();
    nrefs
  in
  (match r.Reader.map with
  | None ->
    seek_in ic r.Reader.data_start;
    Array.iteri
      (fun k info ->
        if pos_in ic <> info.c_offset then
          err path "corrupt chunk %d (offset mismatch)" k;
        if really_read ic path 1 <> "C" then err path "corrupt chunk %d" k;
        let clen = read_u32le ic path in
        let stored = really_read ic path 16 in
        if stored <> info.c_md5 then
          err path "corrupt chunk %d (index digest mismatch)" k;
        let payload = really_read ic path clen in
        if Digest.string payload <> stored then
          err path "corrupt chunk %d (digest mismatch)" k;
        on_chunk k;
        let nrefs = decode_chunk_string k info payload in
        Nvsc_obs.Metrics.Counter.incr m_replay_chunks;
        Nvsc_obs.Metrics.Counter.add m_replay_refs nrefs)
      r.Reader.index;
    if pos_in ic <> r.Reader.trailer_offset then
      err path "trailing garbage between chunks and trailer"
  | Some m ->
    let flen = Bigarray.Array1.dim m in
    let pos = ref r.Reader.data_start in
    Array.iteri
      (fun k info ->
        if !pos <> info.c_offset then
          err path "corrupt chunk %d (offset mismatch)" k;
        if !pos + 21 > flen then err path "truncated file";
        if Bigarray.Array1.unsafe_get m !pos <> 'C' then
          err path "corrupt chunk %d" k;
        let hd = bdec m ~pos:(!pos + 1) ~len:20 ~path ~what:"file" in
        let clen =
          let b0 = bget_byte hd in
          let b1 = bget_byte hd in
          let b2 = bget_byte hd in
          let b3 = bget_byte hd in
          b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
        in
        let stored = bget_raw hd 16 in
        if stored <> info.c_md5 then
          err path "corrupt chunk %d (index digest mismatch)" k;
        let poff = !pos + 21 in
        if poff + clen > flen then err path "truncated file";
        (* Integrity still hashes the payload through the channel: the
           stdlib [Digest] cannot hash a bigarray view. *)
        seek_in ic poff;
        if Digest.channel ic clen <> stored then
          err path "corrupt chunk %d (digest mismatch)" k;
        on_chunk k;
        let nrefs = decode_chunk_map m k info ~pos:poff ~clen in
        pos := poff + clen;
        Nvsc_obs.Metrics.Counter.incr m_replay_chunks;
        Nvsc_obs.Metrics.Counter.add m_replay_refs nrefs)
      r.Reader.index;
    if !pos <> r.Reader.trailer_offset then
      err path "trailing garbage between chunks and trailer")
