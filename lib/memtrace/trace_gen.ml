module Rng = Nvsc_util.Rng

(* A generator is a pull-stream: [next sink] pushes at most one reference
   and reports whether it did.  Streams carry their own RNG state, created
   at construction, and produce elements in the same order the old
   list-returning generators did — so seeded sequences are unchanged. *)
type t = { next : Sink.t -> bool }

let next t sink = t.next sink

let into t sink =
  Nvsc_obs.Span.with_ "trace_gen.into" @@ fun () ->
  let n = ref 0 in
  while t.next sink do
    incr n
  done;
  !n

let to_list t =
  let acc = ref [] in
  let sink = Sink.of_fn ~name:"to_list" (fun a -> acc := a :: !acc) in
  ignore (into t sink);
  Sink.flush sink;
  List.rev !acc

let of_list accesses =
  let rem = ref accesses in
  {
    next =
      (fun sink ->
        match !rem with
        | [] -> false
        | a :: tl ->
          rem := tl;
          Sink.push_access sink a;
          true);
  }

let counted n emit =
  let i = ref 0 in
  {
    next =
      (fun sink ->
        if !i >= n then false
        else begin
          emit sink !i;
          incr i;
          true
        end);
  }

let sequential ?(start = 0) ?(line_bytes = 64) ~n () =
  counted n (fun sink i ->
      Sink.push sink
        ~addr:((start + i) * line_bytes)
        ~size:line_bytes ~op:Access.Read)

let strided ?(start = 0) ?(line_bytes = 64) ~stride_lines ~n () =
  if stride_lines <= 0 then invalid_arg "Trace_gen.strided: stride";
  counted n (fun sink i ->
      Sink.push sink
        ~addr:((start + (i * stride_lines)) * line_bytes)
        ~size:line_bytes ~op:Access.Read)

let push_op rng write_fraction sink addr =
  let op =
    if Rng.bernoulli rng write_fraction then Access.Write else Access.Read
  in
  Sink.push sink ~addr ~size:64 ~op

let hot_cold ~seed ~hot_fraction ~hot_lines ~cold_lines ~write_fraction ~n ()
    =
  if hot_lines <= 0 || cold_lines <= 0 then invalid_arg "Trace_gen.hot_cold";
  let rng = Rng.of_int seed in
  counted n (fun sink _ ->
      let line =
        if Rng.bernoulli rng hot_fraction then Rng.int rng hot_lines
        else hot_lines + Rng.int rng cold_lines
      in
      push_op rng write_fraction sink (line * 64))

let zipf ~seed ?(exponent = 1.0) ~lines ~write_fraction ~n () =
  if lines <= 0 then invalid_arg "Trace_gen.zipf";
  let rng = Rng.of_int seed in
  (* cumulative harmonic weights for inverse-CDF sampling *)
  let cum = Array.make lines 0. in
  let acc = ref 0. in
  for i = 0 to lines - 1 do
    acc := !acc +. (1. /. (float_of_int (i + 1) ** exponent));
    cum.(i) <- !acc
  done;
  let total = !acc in
  let sample () =
    let u = Rng.float rng total in
    (* binary search for the first cumulative weight >= u *)
    let lo = ref 0 and hi = ref (lines - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  counted n (fun sink _ -> push_op rng write_fraction sink (sample () * 64))

let interleave streams =
  let arr = Array.of_list streams in
  let k = Array.length arr in
  let idx = ref 0 in
  {
    next =
      (fun sink ->
        (* rotate through the children, skipping exhausted ones; one full
           barren rotation means the whole interleave is drained *)
        let rec go tries =
          if tries = 0 then false
          else begin
            let s = arr.(!idx) in
            idx := (!idx + 1) mod k;
            if s.next sink then true else go (tries - 1)
          end
        in
        if k = 0 then false else go k);
  }
