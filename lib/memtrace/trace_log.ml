type t = {
  batch : Sink.Batch.t;
  mutable len : int;
  mutable reads : int;
  mutable writes : int;
}

let create ?(initial_capacity = 4096) () =
  if initial_capacity <= 0 then invalid_arg "Trace_log.create";
  { batch = Sink.Batch.create initial_capacity; len = 0; reads = 0; writes = 0 }

let record_raw t ~addr ~size ~op =
  Sink.Batch.ensure t.batch (t.len + 1);
  Sink.Batch.set t.batch t.len ~addr ~size ~op;
  t.len <- t.len + 1;
  match op with
  | Access.Read -> t.reads <- t.reads + 1
  | Access.Write -> t.writes <- t.writes + 1

let record t (a : Access.t) = record_raw t ~addr:a.addr ~size:a.size ~op:a.op

let record_batch t batch ~first ~n =
  Sink.Batch.ensure t.batch (t.len + n);
  Sink.Batch.blit batch ~src_pos:first t.batch ~dst_pos:t.len ~n;
  let writes = ref 0 in
  for i = first to first + n - 1 do
    if Sink.Batch.is_write batch i then incr writes
  done;
  t.writes <- t.writes + !writes;
  t.reads <- t.reads + n - !writes;
  t.len <- t.len + n

let sink ?(name = "trace-log") t =
  Sink.create ~name (fun batch ~first ~n -> record_batch t batch ~first ~n)

let length t = t.len

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace_log.get";
  Sink.Batch.access t.batch i

let replay t f =
  for i = 0 to t.len - 1 do
    f (Sink.Batch.access t.batch i)
  done

let replay_batch t sink = Sink.deliver sink t.batch ~first:0 ~n:t.len

let as_batch t = (t.batch, t.len)

let reads t = t.reads
let writes t = t.writes

let clear t =
  t.len <- 0;
  t.reads <- 0;
  t.writes <- 0
