type t =
  | Epoch_begin of { label : string; checkpoint : bool }
  | Epoch_commit of { label : string; checkpoint : bool }
  | Flush of { obj_id : int; off : int; len : int }
  | Fence
  | Declare of { obj_id : int }

let pp ppf = function
  | Epoch_begin { label; checkpoint } ->
    Format.fprintf ppf "epoch_begin %s%s" label
      (if checkpoint then " (checkpoint)" else "")
  | Epoch_commit { label; checkpoint } ->
    Format.fprintf ppf "epoch_commit %s%s" label
      (if checkpoint then " (checkpoint)" else "")
  | Flush { obj_id; off; len } ->
    Format.fprintf ppf "flush obj %d [%d,%d)" obj_id off (off + len)
  | Fence -> Format.pp_print_string ppf "fence"
  | Declare { obj_id } -> Format.fprintf ppf "declare obj %d" obj_id

let equal (a : t) (b : t) = a = b
