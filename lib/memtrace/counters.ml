type per_object = {
  mutable reads : int array; (* indexed by iteration *)
  mutable writes : int array;
  mutable total_reads : int;
  mutable total_writes : int;
}

type t = {
  objects : (int, per_object) Hashtbl.t;
  mutable iter : int;
  mutable max_iter : int;
  mutable grand_total : int;
  (* one-entry memo: successive references to the same object (array
     sweeps) skip the hash lookup and its option allocation *)
  mutable memo_id : int;
  mutable memo_po : per_object;
}

let fresh_po () =
  { reads = Array.make 4 0; writes = Array.make 4 0;
    total_reads = 0; total_writes = 0 }

let create () =
  {
    objects = Hashtbl.create 256;
    iter = 0;
    max_iter = 0;
    grand_total = 0;
    memo_id = min_int;
    memo_po = fresh_po ();
  }

let set_iteration t i =
  if i < 0 then invalid_arg "Counters.set_iteration: negative iteration";
  t.iter <- i;
  if i > t.max_iter then t.max_iter <- i

let iteration t = t.iter

let ensure_capacity po iter =
  let cap = Array.length po.reads in
  if iter >= cap then begin
    let cap' = Stdlib.max (iter + 1) (2 * cap) in
    let grow a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    po.reads <- grow po.reads;
    po.writes <- grow po.writes
  end

let get_or_create t obj_id =
  if obj_id = t.memo_id then t.memo_po
  else begin
    let po =
      match Hashtbl.find_opt t.objects obj_id with
      | Some po -> po
      | None ->
        let po = fresh_po () in
        Hashtbl.add t.objects obj_id po;
        po
    in
    t.memo_id <- obj_id;
    t.memo_po <- po;
    po
  end

let record_n t ~obj_id ~op ~n =
  if n < 0 then invalid_arg "Counters.record_n: negative count";
  if n > 0 then begin
    let po = get_or_create t obj_id in
    ensure_capacity po t.iter;
    (match op with
    | Access.Read ->
      po.reads.(t.iter) <- po.reads.(t.iter) + n;
      po.total_reads <- po.total_reads + n
    | Access.Write ->
      po.writes.(t.iter) <- po.writes.(t.iter) + n;
      po.total_writes <- po.total_writes + n);
    t.grand_total <- t.grand_total + n
  end

let record t ~obj_id ~op = record_n t ~obj_id ~op ~n:1

let count_at a iter = if iter < Array.length a then a.(iter) else 0

let reads t ~obj_id ~iter =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> 0
  | Some po -> count_at po.reads iter

let writes t ~obj_id ~iter =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> 0
  | Some po -> count_at po.writes iter

let total_reads t ~obj_id =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> 0
  | Some po -> po.total_reads

let total_writes t ~obj_id =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> 0
  | Some po -> po.total_writes

let grand_total t = t.grand_total

let iterations_touched t ~obj_id =
  match Hashtbl.find_opt t.objects obj_id with
  | None -> []
  | Some po ->
    let acc = ref [] in
    for i = Array.length po.reads - 1 downto 0 do
      if count_at po.reads i > 0 || count_at po.writes i > 0 then
        acc := i :: !acc
    done;
    !acc

let touched_in_main_loop t ~obj_id =
  List.exists (fun i -> i >= 1) (iterations_touched t ~obj_id)

let max_iteration t = t.max_iter

let tracked_objects t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.objects []
  |> List.sort compare
