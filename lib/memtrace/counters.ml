type per_object = {
  mutable reads : int array; (* indexed by iteration *)
  mutable writes : int array;
  mutable total_reads : int;
  mutable total_writes : int;
}

(* Object ids are small dense ints (allocation order), so the table is a
   flat array indexed by id: the per-reference path is a load and a match,
   with no hashing and no option allocation — a hash lookup here cost more
   than the rest of the record path combined when successive references
   alternate between objects (array sweeps with a stack temporary). *)
type t = {
  mutable slots : per_object option array; (* indexed by object id *)
  mutable iter : int;
  mutable max_iter : int;
  mutable grand_total : int;
}

let fresh_po () =
  { reads = Array.make 4 0; writes = Array.make 4 0;
    total_reads = 0; total_writes = 0 }

let create () =
  { slots = Array.make 64 None; iter = 0; max_iter = 0; grand_total = 0 }

let set_iteration t i =
  if i < 0 then invalid_arg "Counters.set_iteration: negative iteration";
  t.iter <- i;
  if i > t.max_iter then t.max_iter <- i

let iteration t = t.iter

let ensure_capacity po iter =
  let cap = Array.length po.reads in
  if iter >= cap then begin
    let cap' = Stdlib.max (iter + 1) (2 * cap) in
    let grow a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    po.reads <- grow po.reads;
    po.writes <- grow po.writes
  end

(* Slow path: negative-id rejection, table growth and slot creation. *)
let get_or_create t obj_id =
  if obj_id < 0 then invalid_arg "Counters: negative object id";
  let cap = Array.length t.slots in
  if obj_id >= cap then begin
    let cap' = ref (2 * cap) in
    while obj_id >= !cap' do
      cap' := 2 * !cap'
    done;
    let slots = Array.make !cap' None in
    Array.blit t.slots 0 slots 0 cap;
    t.slots <- slots
  end;
  match Array.unsafe_get t.slots obj_id with
  | Some po -> po
  | None ->
    let po = fresh_po () in
    Array.unsafe_set t.slots obj_id (Some po);
    po

let[@inline] find t obj_id =
  if obj_id >= 0 && obj_id < Array.length t.slots then
    Array.unsafe_get t.slots obj_id
  else None

let record_n t ~obj_id ~op ~n =
  if n < 0 then invalid_arg "Counters.record_n: negative count";
  if n > 0 then begin
    let po = get_or_create t obj_id in
    let iter = t.iter in
    ensure_capacity po iter;
    (match op with
    | Access.Read ->
      let r = po.reads in
      Array.unsafe_set r iter (Array.unsafe_get r iter + n);
      po.total_reads <- po.total_reads + n
    | Access.Write ->
      let w = po.writes in
      Array.unsafe_set w iter (Array.unsafe_get w iter + n);
      po.total_writes <- po.total_writes + n);
    t.grand_total <- t.grand_total + n
  end

(* The per-reference hot path (one call per emitted access): resident ids
   resolve with one load, and after [ensure_capacity] the iteration index
   is within both arrays, so the accumulations are unchecked. *)
let[@inline] record t ~obj_id ~op =
  let po =
    if obj_id >= 0 && obj_id < Array.length t.slots then
      match Array.unsafe_get t.slots obj_id with
      | Some po -> po
      | None -> get_or_create t obj_id
    else get_or_create t obj_id
  in
  let iter = t.iter in
  if iter >= Array.length po.reads then ensure_capacity po iter;
  (match op with
  | Access.Read ->
    let r = po.reads in
    Array.unsafe_set r iter (Array.unsafe_get r iter + 1);
    po.total_reads <- po.total_reads + 1
  | Access.Write ->
    let w = po.writes in
    Array.unsafe_set w iter (Array.unsafe_get w iter + 1);
    po.total_writes <- po.total_writes + 1);
  t.grand_total <- t.grand_total + 1

let count_at a iter = if iter < Array.length a then a.(iter) else 0

let reads t ~obj_id ~iter =
  match find t obj_id with
  | None -> 0
  | Some po -> count_at po.reads iter

let writes t ~obj_id ~iter =
  match find t obj_id with
  | None -> 0
  | Some po -> count_at po.writes iter

let total_reads t ~obj_id =
  match find t obj_id with None -> 0 | Some po -> po.total_reads

let total_writes t ~obj_id =
  match find t obj_id with None -> 0 | Some po -> po.total_writes

let grand_total t = t.grand_total

let iterations_touched t ~obj_id =
  match find t obj_id with
  | None -> []
  | Some po ->
    (* descending scan builds the ascending list directly: the only
       allocations are the list cells themselves *)
    let rec build i acc =
      if i < 0 then acc
      else
        build (i - 1)
          (if po.reads.(i) > 0 || po.writes.(i) > 0 then i :: acc else acc)
    in
    build (Array.length po.reads - 1) []

let touched_in_main_loop t ~obj_id =
  match find t obj_id with
  | None -> false
  | Some po ->
    let n = Array.length po.reads in
    let rec scan i =
      i < n && (po.reads.(i) > 0 || po.writes.(i) > 0 || scan (i + 1))
    in
    scan 1

let max_iteration t = t.max_iter

let tracked_objects t =
  (* slot order is already ascending; the [Int.compare] sort keeps the
     contract explicit and representation-independent (monomorphic, no
     generic-compare dispatch) *)
  let acc = ref [] in
  for id = Array.length t.slots - 1 downto 0 do
    match t.slots.(id) with Some _ -> acc := id :: !acc | None -> ()
  done;
  List.sort Int.compare !acc
