(** Plain-text trace files in DRAMSim2's [mase] format.

    The paper's tool chain hands traces from NV-SCAVENGER to the power
    simulator as files; this module provides the same interchange point so
    traces can be archived, diffed, or fed to an actual DRAMSim2 build.

    Format, one record per line:
    {v 0x<hex address> <P_MEM_RD|P_MEM_WR> <cycle> v}
    Lines starting with ['#'] and blank lines are ignored.  On writing, the
    cycle column is the record index (this library's traces carry no
    timing, as the paper's §IV trace-driven mode assumes). *)

val save : Trace_log.t -> string -> unit
(** [save log path] writes the whole log.  Raises [Sys_error] on I/O
    failure. *)

val load : ?size:int -> string -> Trace_log.t
(** [load path] parses a trace file; [size] (default 64) is the byte size
    assigned to each access (the format does not carry one).  Raises
    [Failure] naming the file path and the offending line number on a
    malformed record. *)

val append_record : out_channel -> index:int -> Access.t -> unit
(** Write one record (exposed for streaming writers). *)

val parse_record : ?size:int -> string -> Access.t option
(** Parse one line; [None] for comments and blank lines.  Raises [Failure]
    on malformed input.  The parsed access gets byte size [size]
    (default 64 — the format carries no size column). *)
