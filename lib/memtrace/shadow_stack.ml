type frame = {
  routine : string;
  routine_addr : int;
  base_sp : int;
  frame_size : int;
}

type t = {
  top : int;
  mutable sp : int;
  mutable min_sp : int;
  mutable frames : frame list; (* innermost first *)
  mutable depth : int;
  mutable stamp : int; (* bumped on every push/pop: memo invalidation *)
}

let create ?top () =
  let top = match top with Some t -> t | None -> Layout.stack_top in
  { top; sp = top; min_sp = top; frames = []; depth = 0; stamp = 0 }

let sp t = t.sp
let max_extent t = t.min_sp
let depth t = t.depth

let push t ~routine ~routine_addr ~frame_size =
  if frame_size < 0 then invalid_arg "Shadow_stack.push: negative frame size";
  let frame = { routine; routine_addr; base_sp = t.sp; frame_size } in
  t.sp <- t.sp - frame_size;
  if t.sp < t.min_sp then t.min_sp <- t.sp;
  if t.sp <= Layout.stack_limit then failwith "Shadow_stack: stack overflow";
  t.frames <- frame :: t.frames;
  t.depth <- t.depth + 1;
  t.stamp <- t.stamp + 1;
  frame

let pop t =
  match t.frames with
  | [] -> invalid_arg "Shadow_stack.pop: empty stack"
  | frame :: rest ->
    t.sp <- frame.base_sp;
    t.frames <- rest;
    t.depth <- t.depth - 1;
    t.stamp <- t.stamp + 1

let[@inline] stamp t = t.stamp

let current t = match t.frames with [] -> None | f :: _ -> Some f

let frames t = t.frames

let frame_contains frame addr =
  addr >= frame.base_sp - frame.frame_size && addr < frame.base_sp

let attribute t addr =
  let rec walk = function
    | [] -> None
    | f :: rest -> if frame_contains f addr then Some f else walk rest
  in
  walk t.frames

let in_stack t addr = addr >= t.min_sp && addr <= t.top
