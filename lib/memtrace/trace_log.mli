(** In-memory recording of an access stream for later replay.

    Table VI replays one cache-filtered main-memory trace into a fresh
    memory-system simulation per technology; this log — stored directly as
    a {!Sink.Batch.t}, no per-record allocation — is the carrier.
    NV-SCAVENGER itself computes statistics on the fly and never stores raw
    traces (§III-D) — the log exists for the *simulator* hand-off,
    mirroring the paper's "trace files" between the tool and DRAMSim2.

    Because the storage {e is} a batch, {!replay_batch} hands the whole
    recorded stream to a {!Sink.t} as one zero-copy delivery. *)

type t

val create : ?initial_capacity:int -> unit -> t

val record : t -> Access.t -> unit

val record_raw : t -> addr:int -> size:int -> op:Access.op -> unit
(** Like {!record} without materialising an [Access.t]. *)

val record_batch : t -> Sink.Batch.t -> first:int -> n:int -> unit
(** Append a batch slice (bulk blit). *)

val sink : ?name:string -> t -> Sink.t
(** A sink that records everything delivered to it into the log. *)

val length : t -> int

val get : t -> int -> Access.t

val replay : t -> (Access.t -> unit) -> unit
(** Deliver every recorded access, in order (per-access convenience;
    allocates one record per access). *)

val replay_batch : t -> Sink.t -> unit
(** Deliver the whole recorded stream to [sink] as a single zero-copy
    batch. *)

val as_batch : t -> Sink.Batch.t * int
(** The underlying storage and its valid length.  Callers must not mutate
    or retain it across further recording. *)

val reads : t -> int
val writes : t -> int

val clear : t -> unit
