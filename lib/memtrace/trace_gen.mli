(** Synthetic access-stream generators.

    Controlled traffic for calibrating and testing the simulators without
    running an application: sequential sweeps, strided walks, hot-set
    mixtures and Zipf-popularity streams (the locality spectrum HPC traces
    inhabit, cf. the paper's reference \[13\] on low locality in real
    workloads).  All generators are deterministic in their seed.

    Generators are streaming emitters: a {!t} pushes references one at a
    time into a {!Sink.t} on demand, so a synthetic stream is never
    materialised as a list on the hot path ({!to_list} exists as a
    compatibility shim for tests). *)

type t
(** A pull-stream of references. *)

val next : t -> Sink.t -> bool
(** Push at most one reference into the sink; [false] once exhausted. *)

val into : t -> Sink.t -> int
(** Drain the stream into the sink; returns the number of references
    pushed.  The sink is {e not} flushed — callers flush at their own
    boundary. *)

val to_list : t -> Access.t list
(** Materialise the stream (list-compat shim; tests only). *)

val of_list : Access.t list -> t
(** Stream over a materialised list (list-compat shim; tests only). *)

val sequential : ?start:int -> ?line_bytes:int -> n:int -> unit -> t
(** [n] line-sized reads at consecutive line addresses. *)

val strided :
  ?start:int -> ?line_bytes:int -> stride_lines:int -> n:int -> unit -> t
(** Reads separated by [stride_lines] lines. *)

val hot_cold :
  seed:int ->
  hot_fraction:float ->
  hot_lines:int ->
  cold_lines:int ->
  write_fraction:float ->
  n:int ->
  unit ->
  t
(** Each access: with probability [hot_fraction] a uniform line of the hot
    set, otherwise a uniform line of the cold set (placed after the hot
    set); with probability [write_fraction] it is a write. *)

val zipf :
  seed:int -> ?exponent:float -> lines:int -> write_fraction:float ->
  n:int -> unit -> t
(** Zipf-popularity line selection over [lines] (default exponent 1.0),
    approximated by inverse-CDF sampling over the harmonic weights. *)

val interleave : t list -> t
(** Round-robin interleave several streams (models concurrent array
    sweeps); streams of different lengths are drained as they run out. *)
