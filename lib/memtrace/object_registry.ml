type t = {
  mutable bits : int; (* log2 bucket width *)
  mutable buckets : (int, Mem_object.t list ref) Hashtbl.t;
  by_signature : (string, Mem_object.t) Hashtbl.t;
  mutable all : Mem_object.t list; (* reversed registration order *)
  mutable count : int;
  cache : Mem_object.t option array; (* slot 0 = most recent *)
  mutable lookups : int;
  mutable cache_hits : int;
  mutable scans : int;
  max_bucket_len : int; (* rebalance trigger *)
  min_bits : int;
}

let create ?(bucket_bits = 16) ?(cache_slots = 8) () =
  {
    bits = bucket_bits;
    buckets = Hashtbl.create 1024;
    by_signature = Hashtbl.create 256;
    all = [];
    count = 0;
    cache = Array.make cache_slots None;
    lookups = 0;
    cache_hits = 0;
    scans = 0;
    max_bucket_len = 64;
    min_bits = 6; (* never narrower than a cache line *)
  }

let bucket_range t (obj : Mem_object.t) =
  (obj.base asr t.bits, Mem_object.last_byte obj asr t.bits)

let index_object t obj =
  let lo, hi = bucket_range t obj in
  for b = lo to hi do
    match Hashtbl.find_opt t.buckets b with
    | Some l -> l := obj :: !l
    | None -> Hashtbl.add t.buckets b (ref [ obj ])
  done

let unindex_object t (obj : Mem_object.t) =
  let lo, hi = bucket_range t obj in
  for b = lo to hi do
    match Hashtbl.find_opt t.buckets b with
    | Some l -> l := List.filter (fun (o : Mem_object.t) -> o.id <> obj.id) !l
    | None -> ()
  done

let longest_bucket t =
  Hashtbl.fold (fun _ l acc -> Stdlib.max acc (List.length !l)) t.buckets 0

(* Rebuild the index with narrower buckets when objects cluster: the
   paper's "dynamically divide the memory address space" scheme. *)
let rebalance t =
  if t.bits > t.min_bits && longest_bucket t > t.max_bucket_len then begin
    t.bits <- Stdlib.max t.min_bits (t.bits - 4);
    t.buckets <- Hashtbl.create (2 * Hashtbl.length t.buckets);
    List.iter (fun obj -> index_object t obj) t.all
  end

let register t obj =
  match obj.Mem_object.kind with
  | Layout.Heap | Layout.Stack ->
    index_object t obj;
    Hashtbl.replace t.by_signature obj.signature obj;
    t.all <- obj :: t.all;
    t.count <- t.count + 1;
    rebalance t;
    obj
  | Layout.Global ->
    (* Collect already-registered globals overlapping the new range and
       fold them all into one union object. *)
    let overlapping =
      List.filter
        (fun (o : Mem_object.t) ->
          o.kind = Layout.Global
          && Mem_object.overlaps o ~base:obj.base ~size:obj.size)
        t.all
    in
    if overlapping = [] then begin
      index_object t obj;
      Hashtbl.replace t.by_signature obj.signature obj;
      t.all <- obj :: t.all;
      t.count <- t.count + 1;
      rebalance t;
      obj
    end
    else begin
      let merged =
        List.fold_left
          (fun acc o -> Mem_object.merge_overlapping acc o ~id:acc.Mem_object.id)
          obj overlapping
      in
      List.iter
        (fun (o : Mem_object.t) ->
          unindex_object t o;
          Hashtbl.remove t.by_signature o.signature)
        overlapping;
      t.all <-
        merged
        :: List.filter
             (fun (o : Mem_object.t) ->
               not (List.exists (fun (p : Mem_object.t) -> p.id = o.id) overlapping))
             t.all;
      t.count <- t.count - List.length overlapping + 1;
      index_object t merged;
      Hashtbl.replace t.by_signature merged.signature merged;
      Array.fill t.cache 0 (Array.length t.cache) None;
      rebalance t;
      merged
    end

let find_by_signature t signature = Hashtbl.find_opt t.by_signature signature

let deallocate _t obj = obj.Mem_object.live <- false
let revive _t obj = obj.Mem_object.live <- true

let cache_promote t slot obj =
  (* Move-to-front within the fixed-size cache array. *)
  for i = slot downto 1 do
    t.cache.(i) <- t.cache.(i - 1)
  done;
  t.cache.(0) <- Some obj

let cache_find t addr =
  let n = Array.length t.cache in
  let rec go i =
    if i >= n then None
    else
      let entry = t.cache.(i) in
      match entry with
      | Some obj when obj.Mem_object.live && Mem_object.contains obj addr ->
        (* move-to-front reusing the existing option box: a cache hit —
           the common case on the emission hot path — allocates nothing *)
        if i > 0 then begin
          for j = i downto 1 do
            t.cache.(j) <- t.cache.(j - 1)
          done;
          t.cache.(0) <- entry
        end;
        entry
      | _ -> go (i + 1)
  in
  go 0

let bucket_find t addr =
  match Hashtbl.find_opt t.buckets (addr asr t.bits) with
  | None -> None
  | Some l ->
    (* Prefer a live object; fall back to a dead one sharing the address. *)
    let rec scan live_hit dead_hit = function
      | [] -> (live_hit, dead_hit)
      | (o : Mem_object.t) :: rest ->
        t.scans <- t.scans + 1;
        if Mem_object.contains o addr then
          if o.live then (Some o, dead_hit)
          else scan live_hit (match dead_hit with None -> Some o | s -> s) rest
        else scan live_hit dead_hit rest
    in
    let live_hit, dead_hit = scan None None !l in
    (match live_hit with Some _ -> live_hit | None -> dead_hit)

let lookup t addr =
  t.lookups <- t.lookups + 1;
  match cache_find t addr with
  | Some _ as hit ->
    t.cache_hits <- t.cache_hits + 1;
    hit
  | None ->
    let found = bucket_find t addr in
    (match found with
    | Some obj when obj.Mem_object.live ->
      cache_promote t (Array.length t.cache - 1) obj
    | _ -> ());
    found

let objects t = List.rev t.all
let object_count t = t.count
let bucket_bits t = t.bits

let cache_hit_rate t =
  if t.lookups = 0 then 0.
  else float_of_int t.cache_hits /. float_of_int t.lookups

let lookup_scans t = t.scans
