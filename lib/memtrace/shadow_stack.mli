(** Shadow call stack for stack-frame attribution (paper §III-A).

    The slow stack method instruments every call and return, maintains a
    shadow stack of frames with their base stack pointers, and attributes
    each stack reference to the frame whose range contains it — including
    references made by a callee into a caller's frame, which are charged to
    the caller (the routine that actually allocated the data). *)

type frame = {
  routine : string;
  routine_addr : int;  (** starting address used as the routine signature *)
  base_sp : int;  (** stack pointer on entry (frame occupies below this) *)
  frame_size : int;
}

type t

val create : ?top:int -> unit -> t
(** [top] defaults to {!Layout.stack_top}. *)

val sp : t -> int
(** Current stack pointer. *)

val max_extent : t -> int
(** Lowest stack-pointer value observed so far (deepest stack growth); the
    fast method counts an address as a stack reference when it lies between
    this and {!Layout.stack_top}. *)

val depth : t -> int

val push : t -> routine:string -> routine_addr:int -> frame_size:int -> frame
(** Enter a routine: the stack pointer drops by [frame_size] and the new
    frame spans [\[sp_after, sp_before)]. *)

val pop : t -> unit
(** Leave the current routine.  Raises [Invalid_argument] on an empty
    stack. *)

val stamp : t -> int
(** Monotonic counter bumped on every {!push} and {!pop}.  While the stamp
    is unchanged the set of live frames (and their extents) is unchanged,
    so callers may cache {!attribute} results keyed by it. *)

val current : t -> frame option

val frames : t -> frame list
(** Innermost first. *)

val attribute : t -> int -> frame option
(** Attribute a stack address to the live frame containing it, walking from
    the innermost frame outwards; [None] if the address is not covered by
    any live frame (e.g. a popped region). *)

val in_stack : t -> int -> bool
(** The fast method's range test: [max_extent <= addr <= top]. *)
