let append_record oc ~index (a : Access.t) =
  Printf.fprintf oc "0x%x %s %d\n" a.addr
    (match a.op with Access.Read -> "P_MEM_RD" | Access.Write -> "P_MEM_WR")
    index

let save log path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let i = ref 0 in
      Trace_log.replay log (fun a ->
          append_record oc ~index:!i a;
          incr i))

let parse_record ?(size = 64) line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ addr; op; _cycle ] ->
      let addr =
        try int_of_string addr
        with Failure _ -> failwith ("Trace_file: bad address " ^ addr)
      in
      let op =
        match op with
        | "P_MEM_RD" | "READ" -> Access.Read
        | "P_MEM_WR" | "WRITE" -> Access.Write
        | _ -> failwith ("Trace_file: bad operation " ^ op)
      in
      Some { Access.addr; size; op }
    | _ -> failwith ("Trace_file: malformed record: " ^ line)

let load ?(size = 64) path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let log = Trace_log.create () in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           match
             try parse_record ~size line
             with Failure msg ->
               failwith (Printf.sprintf "%s: %s (line %d)" path msg !lineno)
           with
           | Some a -> Trace_log.record log a
           | None -> ()
         done
       with End_of_file -> ());
      log)
