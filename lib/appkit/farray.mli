(** Instrumented double-precision arrays.

    The typed face of the instrumentation context: every element access
    emits a word-sized memory reference at the element's synthetic address
    before touching the backing store, so the mini-applications compute
    real values while the analysis sees a faithful address stream. *)

type t

val global : Ctx.t -> name:string -> int -> t
(** [global ctx ~name n] allocates an [n]-element array in the global
    segment. *)

val heap : Ctx.t -> site:string -> int -> t
(** Heap array identified by allocation site.  Reviving a freed same-site
    allocation reuses the same object identity (fresh zeroed contents). *)

val global_overlay :
  Ctx.t -> name:string -> over:t -> offset_words:int -> int -> t
(** [global_overlay ctx ~name ~over ~offset_words n]: an [n]-element view
    aliasing [over]'s address range from [offset_words] — a Fortran
    common-block re-partitioning.  Accesses through either array resolve
    to the same merged memory object (see
    {!Ctx.alloc_global_overlay}).  The backing stores are independent (the
    analysis concerns the address stream, not the values). *)

val stack : Ctx.t -> Ctx.frame -> int -> t
(** Carve an [n]-element array out of the current routine's stack frame;
    accesses are attributed to the routine's frame object. *)

val free : Ctx.t -> t -> unit
(** Deallocate (heap arrays only). *)

val length : t -> int
val obj : t -> Nvsc_memtrace.Mem_object.t option
(** The owning memory object; [None] for stack arrays (their accesses
    belong to the routine frame). *)

val base : t -> int

(** {1 Instrumented element access} *)

val get : t -> int -> float
val set : t -> int -> float -> unit

(** {1 Bulk helpers} — each element access is individually instrumented *)

val fill : Ctx.t -> t -> float -> unit
val init : Ctx.t -> t -> (int -> float) -> unit
(** [init ctx a f] writes [f i] at every index (counts as writes only). *)

val sum : Ctx.t -> t -> float
(** Read-reduce the array. *)

val copy_into : Ctx.t -> src:t -> dst:t -> unit
(** Element-wise copy (reads of [src], writes of [dst]); lengths must
    match. *)

(** {1 Persistence} — typed face of the {!Ctx} persist primitives *)

val persist : Ctx.t -> t -> unit
(** Declare the array's memory object persistent (see {!Ctx.persist}).
    Raises [Invalid_argument] on a stack array. *)

val flush : Ctx.t -> t -> lo:int -> len:int -> unit
(** Flush the cache lines covering elements [[lo, lo+len)] (see
    {!Ctx.flush}; the element range converts to bytes). *)

val flush_all : Ctx.t -> t -> unit
(** Flush the whole array. *)

(** {1 Uninstrumented escape hatch} *)

val peek : t -> int -> float
(** Read the backing store without emitting a reference — for test
    assertions about values, never for workload code. *)

val poke : t -> int -> float -> unit
