module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object

type t = {
  ctx : Ctx.t;
  data : float array;
  base : int;
  obj : Mem_object.t option;
}

let global ctx ~name n =
  let obj = Ctx.alloc_global ctx ~name ~words:n in
  { ctx; data = Array.make n 0.; base = obj.Mem_object.base; obj = Some obj }

let heap ctx ~site n =
  let obj = Ctx.alloc_heap ctx ~site ~words:n in
  { ctx; data = Array.make n 0.; base = obj.Mem_object.base; obj = Some obj }

let global_overlay ctx ~name ~over ~offset_words n =
  match over.obj with
  | None -> invalid_arg "Farray.global_overlay: base array has no object"
  | Some base_obj ->
    let merged =
      Ctx.alloc_global_overlay ctx ~name ~over:base_obj ~offset_words ~words:n
    in
    {
      ctx;
      data = Array.make n 0.;
      base = over.base + (offset_words * Layout.word);
      obj = Some merged;
    }

let stack ctx frame n =
  let base = Ctx.frame_carve ctx frame ~words:n in
  { ctx; data = Array.make n 0.; base; obj = None }

let free ctx t =
  match t.obj with
  | Some obj when obj.Mem_object.kind = Layout.Heap -> Ctx.free_heap ctx obj
  | Some _ -> invalid_arg "Farray.free: only heap arrays can be freed"
  | None -> invalid_arg "Farray.free: stack arrays are freed with their frame"

let length t = Array.length t.data
let obj t = t.obj
let base t = t.base

let[@inline] addr_of t i = t.base + (i * Layout.word)

(* Inlined so the float result/argument flows unboxed at the call site
   (a non-inlined float return boxes on every instrumented access). *)
let[@inline] get t i =
  Ctx.read_addr t.ctx ~addr:(addr_of t i);
  t.data.(i)

let[@inline] set t i v =
  Ctx.write_addr t.ctx ~addr:(addr_of t i);
  t.data.(i) <- v

let fill _ctx t v =
  for i = 0 to length t - 1 do
    set t i v
  done

let init _ctx t f =
  for i = 0 to length t - 1 do
    set t i (f i)
  done

let sum _ctx t =
  let acc = ref 0. in
  for i = 0 to length t - 1 do
    acc := !acc +. get t i
  done;
  !acc

let copy_into _ctx ~src ~dst =
  if length src <> length dst then invalid_arg "Farray.copy_into: lengths";
  for i = 0 to length src - 1 do
    set dst i (get src i)
  done

let[@inline] peek t i = t.data.(i)
let[@inline] poke t i v = t.data.(i) <- v

(* --- persistence ------------------------------------------------------- *)

let obj_exn ~what t =
  match t.obj with
  | Some o -> o
  | None -> invalid_arg (what ^ ": stack arrays cannot be persistent")

let persist ctx t = Ctx.persist ctx (obj_exn ~what:"Farray.persist" t)

let flush ctx t ~lo ~len =
  if lo < 0 || len <= 0 || lo + len > length t then
    invalid_arg "Farray.flush: element range outside the array";
  Ctx.flush ctx
    (obj_exn ~what:"Farray.flush" t)
    ~off:(lo * Layout.word) ~len:(len * Layout.word)

let flush_all ctx t = Ctx.flush_all ctx (obj_exn ~what:"Farray.flush_all" t)
