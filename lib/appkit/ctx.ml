module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Shadow_stack = Nvsc_memtrace.Shadow_stack
module Counters = Nvsc_memtrace.Counters
module Sink = Nvsc_memtrace.Sink
module Rng = Nvsc_util.Rng

type fast_tally = {
  stack_reads : int;
  stack_writes : int;
  other_reads : int;
  other_writes : int;
}

type mutable_tally = {
  mutable sr : int;
  mutable sw : int;
  mutable or_ : int;
  mutable ow : int;
}

type frame = {
  routine : string;
  shadow_frame : Shadow_stack.frame;
  mutable cursor : int; (* next free address, carving downward usage upward *)
  limit : int;
}

type attributed_sink = Sink.Batch.t -> int array -> first:int -> n:int -> unit

type event =
  | Alloc of Mem_object.t
  | Free of Mem_object.t
  | Frame_push of Mem_object.t * Shadow_stack.frame
  | Frame_pop of Shadow_stack.frame
  | Phase_change of Mem_object.phase

type t = {
  rng : Rng.t;
  registry : Object_registry.t;
  counters : Counters.t;
  shadow : Shadow_stack.t;
  mutable sinks : Sink.t array;
  mutable attr_sinks : attributed_sink array;
  mutable instr_sink : (int -> unit) option;
  (* lifecycle observer (NVSC-San).  When installed, the emission batch is
     flushed *before* every registry/shadow-stack mutation, so attributed
     sinks always see a reference under the same object/stack state it was
     emitted in — making their view independent of batch capacity. *)
  mutable event_sink : (event -> unit) option;
  redzone_bytes : int; (* unregistered gap after each allocation *)
  (* the emission batch: references accumulate here and flush to the sinks
     when the batch fills or at a phase boundary (paper §III-D).  The
     parallel [obj_ids] array carries emission-time attribution (-1 =
     unattributed) for attributed sinks; [instr_before.(i)] counts plain
     instructions committed since reference [i-1], so an instruction sink
     can be interleaved back in program order at flush time. *)
  batch : Sink.Batch.t;
  obj_ids : int array;
  instr_before : int array;
  batch_capacity : int;
  mutable batch_len : int;
  mutable pending_instr : int;
  mutable batches_out : int;
  mutable capacity_flushes : int;
  mutable boundary_flushes : int;
  mutable phase : Mem_object.phase;
  mutable cur_tally : mutable_tally;
  mutable heap_brk : int;
  mutable global_brk : int;
  mutable next_id : int;
  mutable next_routine_addr : int;
  routine_addrs : (string, int) Hashtbl.t;
  routine_objects : (int, Mem_object.t) Hashtbl.t; (* keyed by routine addr *)
  (* one-entry memo for stack attribution: routine objects are registered
     once and never replaced, so the memo can never go stale *)
  mutable memo_routine_addr : int;
  mutable memo_routine_obj : Mem_object.t option;
  (* one-entry memo for heap/global attribution: a hit means [addr] falls
     in [memo_obj_lo, memo_obj_hi], the range of the last attributed
     object.  Invalidated on every registry mutation (allocation, free,
     global merge), so a hit can never be stale. *)
  mutable memo_obj : Mem_object.t option;
  mutable memo_obj_lo : int;
  mutable memo_obj_hi : int;
  (* one-entry memo for the stack-frame walk: valid only while the shadow
     stack's stamp is unchanged (no push/pop), so a hit sees the same live
     frames the walk would. *)
  mutable memo_frame_stamp : int;
  mutable memo_frame_lo : int;
  mutable memo_frame_hi : int; (* exclusive *)
  mutable memo_frame_obj : Mem_object.t option;
  heap_instances : (string, int) Hashtbl.t; (* live-collision counters *)
  mutable tallies : mutable_tally array; (* per iteration *)
  mutable total_refs : int;
  mutable unattributed : int;
  mutable sampling : sampling option;
  mutable sampled_out : int;
}

and sampling = { period : int; sample_length : int; mutable position : int }

let create ?(seed = 42) ?(batch_capacity = Sink.default_capacity)
    ?(redzone_words = 0) () =
  if batch_capacity <= 0 then invalid_arg "Ctx.create: batch_capacity";
  if redzone_words < 0 then invalid_arg "Ctx.create: redzone_words";
  let tallies = Array.init 4 (fun _ -> { sr = 0; sw = 0; or_ = 0; ow = 0 }) in
  let batch = Sink.Batch.create batch_capacity in
  (* the context only emits word-sized references: prefill once *)
  Sink.Batch.fill_sizes batch Layout.word;
  {
    rng = Rng.of_int seed;
    registry = Object_registry.create ();
    counters = Counters.create ();
    shadow = Shadow_stack.create ();
    sinks = [||];
    attr_sinks = [||];
    instr_sink = None;
    event_sink = None;
    redzone_bytes = redzone_words * Layout.word;
    batch;
    obj_ids = Array.make batch_capacity (-1);
    instr_before = Array.make batch_capacity 0;
    batch_capacity;
    batch_len = 0;
    pending_instr = 0;
    batches_out = 0;
    capacity_flushes = 0;
    boundary_flushes = 0;
    phase = Mem_object.Pre;
    cur_tally = tallies.(0);
    heap_brk = Layout.heap_base;
    global_brk = Layout.global_base;
    next_id = 0;
    next_routine_addr = 0x0040_0000;
    routine_addrs = Hashtbl.create 64;
    routine_objects = Hashtbl.create 64;
    memo_routine_addr = min_int;
    memo_routine_obj = None;
    memo_obj = None;
    memo_obj_lo = 1;
    memo_obj_hi = 0;
    memo_frame_stamp = -1;
    memo_frame_lo = 1;
    memo_frame_hi = 0;
    memo_frame_obj = None;
    heap_instances = Hashtbl.create 64;
    tallies;
    total_refs = 0;
    unattributed = 0;
    sampling = None;
    sampled_out = 0;
  }

let set_sampling t ~period ~sample_length =
  if period <= 0 || sample_length <= 0 || sample_length > period then
    invalid_arg "Ctx.set_sampling: need 0 < sample_length <= period";
  t.sampling <- Some { period; sample_length; position = 0 }

let sampled_out t = t.sampled_out

(* --- batched delivery --------------------------------------------------- *)

let deliver_segment t first n =
  if n > 0 then
    Array.iter (fun s -> Sink.deliver s t.batch ~first ~n) t.sinks

let flush_batch t ~boundary =
  let n = t.batch_len in
  if n > 0 then begin
    t.batch_len <- 0;
    t.batches_out <- t.batches_out + 1;
    if boundary then t.boundary_flushes <- t.boundary_flushes + 1
    else t.capacity_flushes <- t.capacity_flushes + 1;
    (match t.instr_sink with
    | None -> deliver_segment t 0 n
    | Some isink ->
      (* interleave instruction counts back between the reference segments
         they preceded, preserving program order for the consumer *)
      let seg = ref 0 in
      for i = 0 to n - 1 do
        let k = t.instr_before.(i) in
        if k > 0 then begin
          deliver_segment t !seg (i - !seg);
          isink k;
          seg := i
        end
      done;
      deliver_segment t !seg (n - !seg));
    Array.iter (fun f -> f t.batch t.obj_ids ~first:0 ~n) t.attr_sinks
  end;
  if boundary && t.pending_instr > 0 then begin
    (match t.instr_sink with Some isink -> isink t.pending_instr | None -> ());
    t.pending_instr <- 0
  end

let flush_refs t = flush_batch t ~boundary:true

let add_sink t sink = t.sinks <- Array.append t.sinks [| sink |]

let add_attributed_sink t f =
  t.attr_sinks <- Array.append t.attr_sinks [| f |]

let set_instr_sink t sink = t.instr_sink <- Some sink

let set_event_sink t f =
  flush_refs t;
  t.event_sink <- Some f

let redzone_bytes t = t.redzone_bytes

(* Flush buffered references before a registry/stack mutation when a
   lifecycle observer is installed: the buffered refs were emitted under
   the pre-mutation state and must be delivered under it. *)
let pre_mutate t =
  if t.event_sink <> None then flush_batch t ~boundary:true

let notify t ev = match t.event_sink with Some f -> f ev | None -> ()

let clear_sinks t =
  flush_refs t;
  t.sinks <- [||];
  t.attr_sinks <- [||];
  t.instr_sink <- None;
  t.event_sink <- None

let iteration_of_phase = function
  | Mem_object.Pre | Mem_object.Post -> 0
  | Mem_object.Main i ->
    if i < 1 then invalid_arg "Ctx: main-loop iterations are 1-based";
    i

let tally t iter =
  let n = Array.length t.tallies in
  if iter >= n then begin
    let n' = Stdlib.max (iter + 1) (2 * n) in
    let t' =
      Array.init n' (fun i ->
          if i < n then t.tallies.(i) else { sr = 0; sw = 0; or_ = 0; ow = 0 })
    in
    t.tallies <- t'
  end;
  t.tallies.(iter)

let set_phase t phase =
  let iter = iteration_of_phase phase in
  (* flush before the phase changes: buffered references were emitted in
     the old phase and must be seen by phase-sensitive sinks under it *)
  flush_batch t ~boundary:true;
  t.phase <- phase;
  Counters.set_iteration t.counters iter;
  t.cur_tally <- tally t iter;
  notify t (Phase_change phase)

let phase t = t.phase

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let invalidate_obj_memo t =
  t.memo_obj <- None;
  t.memo_obj_lo <- 1;
  t.memo_obj_hi <- 0

(* --- allocation ------------------------------------------------------- *)

let alloc_global t ~name ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_global: words";
  pre_mutate t;
  invalidate_obj_memo t;
  let size = words * Layout.word in
  let base = t.global_brk in
  if base + size > Layout.global_limit then failwith "Ctx: global segment full";
  t.global_brk <- base + size + t.redzone_bytes;
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  let obj = Object_registry.register t.registry obj in
  notify t (Alloc obj);
  obj

let alloc_global_overlay t ~name ~over ~offset_words ~words =
  if words <= 0 || offset_words < 0 then
    invalid_arg "Ctx.alloc_global_overlay: bad range";
  pre_mutate t;
  invalidate_obj_memo t;
  if over.Mem_object.kind <> Layout.Global then
    invalid_arg "Ctx.alloc_global_overlay: base object must be global";
  let base = over.Mem_object.base + (offset_words * Layout.word) in
  let size = words * Layout.word in
  if base + size > over.Mem_object.base + over.Mem_object.size then
    invalid_arg "Ctx.alloc_global_overlay: overlay exceeds the base object";
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  let obj = Object_registry.register t.registry obj in
  notify t (Alloc obj);
  obj

let callstack_names t =
  List.rev_map
    (fun (f : Shadow_stack.frame) -> f.routine)
    (Shadow_stack.frames t.shadow)

let alloc_heap t ~site ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_heap: words";
  pre_mutate t;
  invalidate_obj_memo t;
  let size = words * Layout.word in
  match Object_registry.find_by_signature t.registry site with
  | Some obj when (not obj.Mem_object.live) && obj.Mem_object.size = size ->
    (* Same allocation-site signature, previously freed: the paper treats
       this as the same memory object re-appearing. *)
    Object_registry.revive t.registry obj;
    notify t (Alloc obj);
    obj
  | Some _ ->
    (* A live object already carries this signature: distinguish the
       instance, as two objects genuinely coexist. *)
    let n =
      match Hashtbl.find_opt t.heap_instances site with
      | Some n -> n + 1
      | None -> 1
    in
    Hashtbl.replace t.heap_instances site n;
    let signature = Printf.sprintf "%s#%d" site n in
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size + t.redzone_bytes;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    let obj = Object_registry.register t.registry obj in
    notify t (Alloc obj);
    obj
  | None ->
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size + t.redzone_bytes;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature:site ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    let obj = Object_registry.register t.registry obj in
    notify t (Alloc obj);
    obj

let free_heap t obj =
  if obj.Mem_object.kind <> Layout.Heap then
    invalid_arg "Ctx.free_heap: not a heap object";
  pre_mutate t;
  invalidate_obj_memo t;
  Object_registry.deallocate t.registry obj;
  notify t (Free obj)

(* --- routines --------------------------------------------------------- *)

let routine_addr t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | Some a -> a
  | None ->
    let a = t.next_routine_addr in
    t.next_routine_addr <- a + 0x100;
    Hashtbl.add t.routine_addrs routine a;
    a

let call t ~routine ~frame_words f =
  if frame_words < 0 then invalid_arg "Ctx.call: frame_words";
  let addr = routine_addr t routine in
  let frame_size = frame_words * Layout.word in
  pre_mutate t;
  let shadow_frame =
    Shadow_stack.push t.shadow ~routine ~routine_addr:addr ~frame_size
  in
  (* Register the routine's frame object on first entry, keyed by the
     routine starting address (the paper's routine signature). *)
  if not (Hashtbl.mem t.routine_objects addr) then begin
    let base = shadow_frame.Shadow_stack.base_sp - frame_size in
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:routine ~kind:Layout.Stack ~base
        ~size:(Stdlib.max frame_size Layout.word)
        ~signature:(Printf.sprintf "stack:%s@0x%x" routine addr)
        ~alloc_phase:t.phase ()
    in
    Hashtbl.add t.routine_objects addr obj
  end;
  notify t (Frame_push (Hashtbl.find t.routine_objects addr, shadow_frame));
  let frame =
    {
      routine;
      shadow_frame;
      cursor = shadow_frame.Shadow_stack.base_sp - frame_size;
      limit = shadow_frame.Shadow_stack.base_sp;
    }
  in
  Fun.protect
    ~finally:(fun () ->
      pre_mutate t;
      Shadow_stack.pop t.shadow;
      notify t (Frame_pop shadow_frame))
    (fun () -> f frame)

let frame_carve _t frame ~words =
  if words <= 0 then invalid_arg "Ctx.frame_carve: words";
  let size = words * Layout.word in
  if frame.cursor + size > frame.limit then
    invalid_arg
      (Printf.sprintf "Ctx.frame_carve: frame of %s exhausted" frame.routine);
  let base = frame.cursor in
  frame.cursor <- base + size;
  base

let frame_routine frame = frame.routine

(* --- reference emission ----------------------------------------------- *)

let attribute t addr =
  match Layout.classify addr with
  | Some Layout.Stack -> (
    match Shadow_stack.attribute t.shadow addr with
    | Some frame -> Hashtbl.find_opt t.routine_objects frame.routine_addr
    | None -> None)
  | Some (Layout.Heap | Layout.Global) -> Object_registry.lookup t.registry addr
  | None -> None

let attribute_stack t addr =
  if
    t.memo_frame_stamp = Shadow_stack.stamp t.shadow
    && addr >= t.memo_frame_lo
    && addr < t.memo_frame_hi
  then t.memo_frame_obj
  else
    match Shadow_stack.attribute t.shadow addr with
    | Some frame ->
      let ra = frame.Shadow_stack.routine_addr in
      let obj =
        if ra = t.memo_routine_addr then t.memo_routine_obj
        else begin
          let obj = Hashtbl.find_opt t.routine_objects ra in
          t.memo_routine_addr <- ra;
          t.memo_routine_obj <- obj;
          obj
        end
      in
      t.memo_frame_stamp <- Shadow_stack.stamp t.shadow;
      t.memo_frame_lo <- frame.Shadow_stack.base_sp - frame.Shadow_stack.frame_size;
      t.memo_frame_hi <- frame.Shadow_stack.base_sp;
      t.memo_frame_obj <- obj;
      obj
    | None -> None

(* With sampling enabled, a reference outside the sample window is
   invisible to the whole analysis (attribution, tallies and sinks) — as
   if PIN had not instrumented it. *)
let sampling_drops t =
  match t.sampling with
  | None -> false
  | Some s ->
    let drop = s.position >= s.sample_length in
    s.position <- (s.position + 1) mod s.period;
    if drop then t.sampled_out <- t.sampled_out + 1;
    drop

let emit_observed t addr op =
  t.total_refs <- t.total_refs + 1;
  let tal = t.cur_tally in
  let obj =
    match Layout.classify addr with
    | Some Layout.Stack ->
      (match op with
      | Access.Read -> tal.sr <- tal.sr + 1
      | Access.Write -> tal.sw <- tal.sw + 1);
      attribute_stack t addr
    | Some (Layout.Heap | Layout.Global) ->
      (match op with
      | Access.Read -> tal.or_ <- tal.or_ + 1
      | Access.Write -> tal.ow <- tal.ow + 1);
      if addr >= t.memo_obj_lo && addr <= t.memo_obj_hi then t.memo_obj
      else begin
        let found = Object_registry.lookup t.registry addr in
        (match found with
        | Some o ->
          t.memo_obj <- found;
          t.memo_obj_lo <- o.Mem_object.base;
          t.memo_obj_hi <- Mem_object.last_byte o
        | None -> ());
        found
      end
    | None ->
      (match op with
      | Access.Read -> tal.or_ <- tal.or_ + 1
      | Access.Write -> tal.ow <- tal.ow + 1);
      None
  in
  let obj_id =
    match obj with
    | Some o ->
      Counters.record t.counters ~obj_id:o.Mem_object.id ~op;
      o.Mem_object.id
    | None ->
      t.unattributed <- t.unattributed + 1;
      -1
  in
  let i = t.batch_len in
  (* i < batch_capacity = length of all three arrays, by construction *)
  Sink.Batch.set_addr_op t.batch i ~addr ~op;
  Array.unsafe_set t.obj_ids i obj_id;
  Array.unsafe_set t.instr_before i t.pending_instr;
  t.pending_instr <- 0;
  t.batch_len <- i + 1;
  if t.batch_len = t.batch_capacity then flush_batch t ~boundary:false

let emit t addr op = if sampling_drops t then () else emit_observed t addr op

let read_addr t ~addr = emit t addr Access.Read
let write_addr t ~addr = emit t addr Access.Write

let flops t n =
  if n < 0 then invalid_arg "Ctx.flops: negative";
  match t.instr_sink with
  | Some _ -> t.pending_instr <- t.pending_instr + n
  | None -> ()

(* --- analysis accessors ------------------------------------------------ *)

let registry t = t.registry
let counters t = t.counters
let shadow t = t.shadow
let rng t = t.rng

let stack_object_of_routine t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | None -> None
  | Some addr -> Hashtbl.find_opt t.routine_objects addr

let stack_objects t =
  Hashtbl.fold (fun _ obj acc -> obj :: acc) t.routine_objects []
  |> List.sort (fun (a : Mem_object.t) b -> compare a.id b.id)

let attribute_addr = attribute

let fast_tally t ~iter =
  if iter < 0 || iter >= Array.length t.tallies then
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
  else begin
    let tal = t.tallies.(iter) in
    {
      stack_reads = tal.sr;
      stack_writes = tal.sw;
      other_reads = tal.or_;
      other_writes = tal.ow;
    }
  end

let fast_tally_totals t =
  Array.fold_left
    (fun acc tal ->
      {
        stack_reads = acc.stack_reads + tal.sr;
        stack_writes = acc.stack_writes + tal.sw;
        other_reads = acc.other_reads + tal.or_;
        other_writes = acc.other_writes + tal.ow;
      })
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
    t.tallies

let total_references t = t.total_refs
let unattributed t = t.unattributed

(* --- pipeline self-observability --------------------------------------- *)

type pipeline_stats = {
  batch_capacity : int;
  refs : int;
  batches : int;
  capacity_flushes : int;
  boundary_flushes : int;
  sinks : Sink.stats list;
}

let pipeline_stats (t : t) =
  {
    batch_capacity = t.batch_capacity;
    refs = t.total_refs;
    batches = t.batches_out;
    capacity_flushes = t.capacity_flushes;
    boundary_flushes = t.boundary_flushes;
    sinks = Array.to_list (Array.map Sink.stats t.sinks);
  }
