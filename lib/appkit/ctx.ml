module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Shadow_stack = Nvsc_memtrace.Shadow_stack
module Counters = Nvsc_memtrace.Counters
module Sink = Nvsc_memtrace.Sink
module Persist_ev = Nvsc_memtrace.Persist
module Rng = Nvsc_util.Rng

type fast_tally = {
  stack_reads : int;
  stack_writes : int;
  other_reads : int;
  other_writes : int;
}

type mutable_tally = {
  mutable sr : int;
  mutable sw : int;
  mutable or_ : int;
  mutable ow : int;
}

type frame = {
  routine : string;
  shadow_frame : Shadow_stack.frame;
  mutable cursor : int; (* next free address, carving downward usage upward *)
  limit : int;
}

type attributed_sink = Sink.Batch.t -> int array -> first:int -> n:int -> unit

type record_sink =
  Sink.Batch.t ->
  obj_ids:int array ->
  instr_before:int array ->
  instr_tail:int ->
  first:int ->
  n:int ->
  unit

type event =
  | Alloc of Mem_object.t
  | Free of Mem_object.t
  | Frame_push of Mem_object.t * Shadow_stack.frame
  | Frame_pop of Shadow_stack.frame
  | Phase_change of Mem_object.phase
  | Persist of Persist_ev.t

type t = {
  rng : Rng.t;
  registry : Object_registry.t;
  counters : Counters.t;
  shadow : Shadow_stack.t;
  mutable sinks : Sink.t array;
  mutable attr_sinks : attributed_sink array;
  mutable instr_sink : (int -> unit) option;
  (* lifecycle observers (NVSC-San, NVSC-Persist, trace recording).  When
     any is installed, the emission batch is flushed *before* every
     registry/shadow-stack mutation and persist event, so attributed sinks
     always see a reference under the same object/stack state it was
     emitted in — making their view independent of batch capacity. *)
  mutable event_sinks : (event -> unit) array;
  (* raw-emission observer (trace recording): sees every buffered slice
     with its emission-time attribution and instruction interleave intact,
     including the boundary instruction tail — the lossless program-order
     stream the NVT writer serializes. *)
  mutable record_sink : record_sink option;
  (* true iff some consumer reads the emission buffers (a reference sink,
     an attributed sink, or an instruction sink).  When false — the
     common no-trace configuration — [emit_observed] skips the four
     per-reference buffer stores and only keeps the flush accounting. *)
  mutable recording : bool;
  redzone_bytes : int; (* unregistered gap after each allocation *)
  (* the emission batch: references accumulate here and flush to the sinks
     when the batch fills or at a phase boundary (paper §III-D).  The
     parallel [obj_ids] array carries emission-time attribution (-1 =
     unattributed) for attributed sinks; [instr_before.(i)] counts plain
     instructions committed since reference [i-1], so an instruction sink
     can be interleaved back in program order at flush time.  Mutable so
     [release] can hand the ~2 MB of buffers to the per-domain pool and
     swap in one-slot stand-ins. *)
  mutable batch : Sink.Batch.t;
  (* zero-copy hand-off hook: when set, every non-empty flush ends with
     [batch <- exchange batch] — the shard team keeps the filled batch (its
     Bigarray storage is domain-shareable) and returns a recycled
     replacement, so emission continues while shards are still reading.
     The replacement must have the same capacity and word-prefilled
     sizes. *)
  mutable batch_exchange : (Sink.Batch.t -> Sink.Batch.t) option;
  mutable obj_ids : int array;
  mutable instr_before : int array;
  mutable batch_capacity : int;
  mutable batch_len : int;
  mutable pending_instr : int;
  mutable batches_out : int;
  mutable capacity_flushes : int;
  mutable boundary_flushes : int;
  mutable phase : Mem_object.phase;
  mutable cur_tally : mutable_tally;
  mutable heap_brk : int;
  mutable global_brk : int;
  mutable next_id : int;
  mutable next_routine_addr : int;
  routine_addrs : (string, int) Hashtbl.t;
  routine_objects : (int, Mem_object.t) Hashtbl.t; (* keyed by routine addr *)
  (* The emission memos carry object ids (-1 = no object), not [t option]:
     the hot path only needs the id for [Counters.record] and the
     [obj_ids] array, and an immediate int spares the option match. *)
  (* one-entry memo for stack attribution: routine objects are registered
     once and never replaced, so the memo can never go stale *)
  mutable memo_routine_addr : int;
  mutable memo_routine_id : int;
  (* one-entry [call] memo, keyed by physical equality of the routine
     name: call sites pass literal names, so the per-particle/per-cell
     routine entries skip the string-hash lookup and the object table.
     The cached pair never goes stale for the same string value. *)
  mutable memo_call_routine : string;
  mutable memo_call_addr : int;
  mutable memo_call_obj : Mem_object.t option;
  (* four-entry memo for heap/global attribution: slot [k] caches the
     range and id of a recently attributed object ([lo > hi] = empty).
     Four slots because inner loops commonly cycle through a handful of
     arrays (gather / stage / scatter targets), which thrashes a
     single-entry memo on every reference.  The last-hit slot is probed
     first; replacement is round-robin.  Invalidated on every registry
     mutation (allocation, free, global merge), so a hit can never be
     stale. *)
  memo_obj_lo : int array;
  memo_obj_hi : int array;
  memo_obj_ids : int array;
  mutable memo_obj_last : int;
  mutable memo_obj_rr : int;
  (* one-entry memo for the stack-frame walk: valid only while the shadow
     stack's stamp is unchanged (no push/pop), so a hit sees the same live
     frames the walk would. *)
  mutable memo_frame_stamp : int;
  mutable memo_frame_lo : int;
  mutable memo_frame_hi : int; (* exclusive *)
  mutable memo_frame_id : int;
  heap_instances : (string, int) Hashtbl.t; (* live-collision counters *)
  mutable tallies : mutable_tally array; (* per iteration *)
  mutable total_refs : int;
  mutable unattributed : int;
  mutable sampling : sampling option;
  mutable sampled_out : int;
}

and sampling = { period : int; sample_length : int; mutable position : int }

(* --- emission-buffer pool ---------------------------------------------- *)

(* A context's emission buffers (batch + obj_ids + instr_before) total
   ~2 MB at the default capacity: allocating them afresh dominates
   [create] (major-heap allocation and the GC work it triggers).  Freed
   buffer sets park on a small per-domain free list instead — per domain
   (Domain.DLS) because sweep workers create contexts concurrently and a
   domain-local list needs no locking. *)
type buffers = {
  b_batch : Sink.Batch.t;
  b_obj_ids : int array;
  b_instr_before : int array;
}

let pool_max = 4

let pool_key : buffers list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let acquire_buffers capacity =
  let pool = Domain.DLS.get pool_key in
  match !pool with
  | b :: rest when Array.length b.b_obj_ids = capacity ->
    pool := rest;
    b
  | _ ->
    {
      b_batch = Sink.Batch.create capacity;
      b_obj_ids = Array.make capacity (-1);
      b_instr_before = Array.make capacity 0;
    }

let create ?(seed = 42) ?(batch_capacity = Sink.default_capacity)
    ?(redzone_words = 0) () =
  if batch_capacity <= 0 then invalid_arg "Ctx.create: batch_capacity";
  if redzone_words < 0 then invalid_arg "Ctx.create: redzone_words";
  let tallies = Array.init 4 (fun _ -> { sr = 0; sw = 0; or_ = 0; ow = 0 }) in
  let bufs = acquire_buffers batch_capacity in
  let batch = bufs.b_batch in
  (* the context only emits word-sized references: prefill once (a pooled
     batch may have been resized by a foreign consumer) *)
  Sink.Batch.fill_sizes batch Layout.word;
  {
    rng = Rng.of_int seed;
    registry = Object_registry.create ();
    counters = Counters.create ();
    shadow = Shadow_stack.create ();
    sinks = [||];
    attr_sinks = [||];
    instr_sink = None;
    event_sinks = [||];
    record_sink = None;
    recording = false;
    redzone_bytes = redzone_words * Layout.word;
    batch;
    batch_exchange = None;
    obj_ids = bufs.b_obj_ids;
    instr_before = bufs.b_instr_before;
    batch_capacity;
    batch_len = 0;
    pending_instr = 0;
    batches_out = 0;
    capacity_flushes = 0;
    boundary_flushes = 0;
    phase = Mem_object.Pre;
    cur_tally = tallies.(0);
    heap_brk = Layout.heap_base;
    global_brk = Layout.global_base;
    next_id = 0;
    next_routine_addr = 0x0040_0000;
    routine_addrs = Hashtbl.create 64;
    routine_objects = Hashtbl.create 64;
    memo_routine_addr = min_int;
    memo_routine_id = -1;
    (* a fresh string: physically equal to no caller-supplied name *)
    memo_call_routine = String.init 1 (fun _ -> '\000');
    memo_call_addr = 0;
    memo_call_obj = None;
    memo_obj_lo = Array.make 4 1;
    memo_obj_hi = Array.make 4 0;
    memo_obj_ids = Array.make 4 (-1);
    memo_obj_last = 0;
    memo_obj_rr = 0;
    memo_frame_stamp = -1;
    memo_frame_lo = 1;
    memo_frame_hi = 0;
    memo_frame_id = -1;
    heap_instances = Hashtbl.create 64;
    tallies;
    total_refs = 0;
    unattributed = 0;
    sampling = None;
    sampled_out = 0;
  }

let set_sampling t ~period ~sample_length =
  if period <= 0 || sample_length <= 0 || sample_length > period then
    invalid_arg "Ctx.set_sampling: need 0 < sample_length <= period";
  t.sampling <- Some { period; sample_length; position = 0 }

let sampled_out t = t.sampled_out

(* --- batched delivery --------------------------------------------------- *)

let deliver_segment t first n =
  if n > 0 then
    Array.iter (fun s -> Sink.deliver s t.batch ~first ~n) t.sinks

let flush_batch t ~boundary =
  let n = t.batch_len in
  (* a boundary flush also delivers the instruction tail committed after
     the last buffered reference *)
  let instr_tail = if boundary then t.pending_instr else 0 in
  if n > 0 then begin
    t.batch_len <- 0;
    t.batches_out <- t.batches_out + 1;
    if boundary then t.boundary_flushes <- t.boundary_flushes + 1
    else t.capacity_flushes <- t.capacity_flushes + 1;
    (match t.instr_sink with
    | None -> deliver_segment t 0 n
    | Some isink ->
      (* interleave instruction counts back between the reference segments
         they preceded, preserving program order for the consumer *)
      let seg = ref 0 in
      for i = 0 to n - 1 do
        let k = t.instr_before.(i) in
        if k > 0 then begin
          deliver_segment t !seg (i - !seg);
          isink k;
          seg := i
        end
      done;
      deliver_segment t !seg (n - !seg));
    Array.iter (fun f -> f t.batch t.obj_ids ~first:0 ~n) t.attr_sinks
  end;
  if instr_tail > 0 then begin
    (match t.instr_sink with Some isink -> isink instr_tail | None -> ());
    t.pending_instr <- 0
  end;
  (match t.record_sink with
  | Some rs when n > 0 || instr_tail > 0 ->
    rs t.batch ~obj_ids:t.obj_ids ~instr_before:t.instr_before ~instr_tail
      ~first:0 ~n
  | _ -> ());
  (* after every consumer has seen the slice: let the shard team keep the
     filled batch and swap in a recycled one *)
  match t.batch_exchange with
  | Some ex when n > 0 -> t.batch <- ex t.batch
  | _ -> ()

let flush_refs t = flush_batch t ~boundary:true

let recompute_recording t =
  t.recording <-
    Array.length t.sinks > 0
    || Array.length t.attr_sinks > 0
    || t.instr_sink <> None
    || t.record_sink <> None

(* Subscription flushes buffered references first: references emitted
   before the subscription are delivered to the previously-subscribed
   consumers only, so the emission loop can skip the buffer stores
   entirely while nobody is subscribed. *)
let add_sink t sink =
  flush_refs t;
  t.sinks <- Array.append t.sinks [| sink |];
  recompute_recording t

let add_attributed_sink t f =
  flush_refs t;
  t.attr_sinks <- Array.append t.attr_sinks [| f |];
  recompute_recording t

let set_instr_sink t sink =
  flush_refs t;
  t.instr_sink <- Some sink;
  recompute_recording t

let add_event_sink t f =
  flush_refs t;
  t.event_sinks <- Array.append t.event_sinks [| f |]

let set_record_sink t f =
  flush_refs t;
  t.record_sink <- Some f;
  recompute_recording t

let set_batch_exchange t ex =
  flush_refs t;
  t.batch_exchange <- Some ex

let clear_batch_exchange t =
  flush_refs t;
  t.batch_exchange <- None

let batch_capacity t = t.batch_capacity

let redzone_bytes t = t.redzone_bytes

(* Flush buffered references before a registry/stack mutation when a
   lifecycle observer is installed: the buffered refs were emitted under
   the pre-mutation state and must be delivered under it. *)
let pre_mutate t =
  if Array.length t.event_sinks > 0 then flush_batch t ~boundary:true

let notify t ev =
  let sinks = t.event_sinks in
  for i = 0 to Array.length sinks - 1 do
    (Array.unsafe_get sinks i) ev
  done

let clear_sinks t =
  flush_refs t;
  t.sinks <- [||];
  t.attr_sinks <- [||];
  t.instr_sink <- None;
  t.event_sinks <- [||];
  t.record_sink <- None;
  t.recording <- false

let release t =
  flush_refs t;
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < pool_max then
    pool :=
      {
        b_batch = t.batch;
        b_obj_ids = t.obj_ids;
        b_instr_before = t.instr_before;
      }
      :: !pool;
  (* the context stays usable, just with single-slot buffers (every
     emission flushes immediately) *)
  let batch = Sink.Batch.create 1 in
  Sink.Batch.fill_sizes batch Layout.word;
  t.batch <- batch;
  t.obj_ids <- Array.make 1 (-1);
  t.instr_before <- Array.make 1 0;
  t.batch_capacity <- 1

let iteration_of_phase = function
  | Mem_object.Pre | Mem_object.Post -> 0
  | Mem_object.Main i ->
    if i < 1 then invalid_arg "Ctx: main-loop iterations are 1-based";
    i

let tally t iter =
  let n = Array.length t.tallies in
  if iter >= n then begin
    let n' = Stdlib.max (iter + 1) (2 * n) in
    let t' =
      Array.init n' (fun i ->
          if i < n then t.tallies.(i) else { sr = 0; sw = 0; or_ = 0; ow = 0 })
    in
    t.tallies <- t'
  end;
  t.tallies.(iter)

let set_phase t phase =
  let iter = iteration_of_phase phase in
  (* flush before the phase changes: buffered references were emitted in
     the old phase and must be seen by phase-sensitive sinks under it *)
  flush_batch t ~boundary:true;
  t.phase <- phase;
  Counters.set_iteration t.counters iter;
  t.cur_tally <- tally t iter;
  notify t (Phase_change phase)

let phase t = t.phase

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let invalidate_obj_memo t =
  Array.fill t.memo_obj_lo 0 4 1;
  Array.fill t.memo_obj_hi 0 4 0;
  Array.fill t.memo_obj_ids 0 4 (-1);
  t.memo_obj_last <- 0;
  t.memo_obj_rr <- 0

(* --- allocation ------------------------------------------------------- *)

let alloc_global t ~name ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_global: words";
  pre_mutate t;
  invalidate_obj_memo t;
  let size = words * Layout.word in
  let base = t.global_brk in
  if base + size > Layout.global_limit then failwith "Ctx: global segment full";
  t.global_brk <- base + size + t.redzone_bytes;
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  let obj = Object_registry.register t.registry obj in
  notify t (Alloc obj);
  obj

let alloc_global_overlay t ~name ~over ~offset_words ~words =
  if words <= 0 || offset_words < 0 then
    invalid_arg "Ctx.alloc_global_overlay: bad range";
  pre_mutate t;
  invalidate_obj_memo t;
  if over.Mem_object.kind <> Layout.Global then
    invalid_arg "Ctx.alloc_global_overlay: base object must be global";
  let base = over.Mem_object.base + (offset_words * Layout.word) in
  let size = words * Layout.word in
  if base + size > over.Mem_object.base + over.Mem_object.size then
    invalid_arg "Ctx.alloc_global_overlay: overlay exceeds the base object";
  let obj =
    Mem_object.make ~id:(fresh_id t) ~name ~kind:Layout.Global ~base ~size
      ~alloc_phase:t.phase ()
  in
  let obj = Object_registry.register t.registry obj in
  notify t (Alloc obj);
  obj

let callstack_names t =
  List.rev_map
    (fun (f : Shadow_stack.frame) -> f.routine)
    (Shadow_stack.frames t.shadow)

let alloc_heap t ~site ~words =
  if words <= 0 then invalid_arg "Ctx.alloc_heap: words";
  pre_mutate t;
  invalidate_obj_memo t;
  let size = words * Layout.word in
  match Object_registry.find_by_signature t.registry site with
  | Some obj when (not obj.Mem_object.live) && obj.Mem_object.size = size ->
    (* Same allocation-site signature, previously freed: the paper treats
       this as the same memory object re-appearing. *)
    Object_registry.revive t.registry obj;
    notify t (Alloc obj);
    obj
  | Some _ ->
    (* A live object already carries this signature: distinguish the
       instance, as two objects genuinely coexist. *)
    let n =
      match Hashtbl.find_opt t.heap_instances site with
      | Some n -> n + 1
      | None -> 1
    in
    Hashtbl.replace t.heap_instances site n;
    let signature = Printf.sprintf "%s#%d" site n in
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size + t.redzone_bytes;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    let obj = Object_registry.register t.registry obj in
    notify t (Alloc obj);
    obj
  | None ->
    let base = t.heap_brk in
    if base + size > Layout.heap_limit then failwith "Ctx: heap full";
    t.heap_brk <- base + size + t.redzone_bytes;
    let obj =
      Mem_object.make ~id:(fresh_id t) ~name:site ~kind:Layout.Heap ~base
        ~size ~signature:site ~callstack:(callstack_names t)
        ~alloc_phase:t.phase ()
    in
    let obj = Object_registry.register t.registry obj in
    notify t (Alloc obj);
    obj

let free_heap t obj =
  if obj.Mem_object.kind <> Layout.Heap then
    invalid_arg "Ctx.free_heap: not a heap object";
  pre_mutate t;
  invalidate_obj_memo t;
  Object_registry.deallocate t.registry obj;
  notify t (Free obj)

(* --- routines --------------------------------------------------------- *)

let routine_addr t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | Some a -> a
  | None ->
    let a = t.next_routine_addr in
    t.next_routine_addr <- a + 0x100;
    Hashtbl.add t.routine_addrs routine a;
    a

let call t ~routine ~frame_words f =
  if frame_words < 0 then invalid_arg "Ctx.call: frame_words";
  let memo_hit = routine == t.memo_call_routine in
  let addr = if memo_hit then t.memo_call_addr else routine_addr t routine in
  let frame_size = frame_words * Layout.word in
  pre_mutate t;
  let shadow_frame =
    Shadow_stack.push t.shadow ~routine ~routine_addr:addr ~frame_size
  in
  let obj =
    if memo_hit then t.memo_call_obj
    else begin
      (* Register the routine's frame object on first entry, keyed by the
         routine starting address (the paper's routine signature). *)
      let obj =
        match Hashtbl.find_opt t.routine_objects addr with
        | Some obj -> obj
        | None ->
          let base = shadow_frame.Shadow_stack.base_sp - frame_size in
          let obj =
            Mem_object.make ~id:(fresh_id t) ~name:routine ~kind:Layout.Stack
              ~base
              ~size:(Stdlib.max frame_size Layout.word)
              ~signature:(Printf.sprintf "stack:%s@0x%x" routine addr)
              ~alloc_phase:t.phase ()
          in
          Hashtbl.add t.routine_objects addr obj;
          obj
      in
      t.memo_call_routine <- routine;
      t.memo_call_addr <- addr;
      t.memo_call_obj <- Some obj;
      Some obj
    end
  in
  (if Array.length t.event_sinks > 0 then
     match obj with
     | Some obj -> notify t (Frame_push (obj, shadow_frame))
     | None -> assert false);
  let frame =
    {
      routine;
      shadow_frame;
      cursor = shadow_frame.Shadow_stack.base_sp - frame_size;
      limit = shadow_frame.Shadow_stack.base_sp;
    }
  in
  match f frame with
  | r ->
    pre_mutate t;
    Shadow_stack.pop t.shadow;
    if Array.length t.event_sinks > 0 then notify t (Frame_pop shadow_frame);
    r
  | exception e ->
    pre_mutate t;
    Shadow_stack.pop t.shadow;
    if Array.length t.event_sinks > 0 then notify t (Frame_pop shadow_frame);
    raise e

let frame_carve _t frame ~words =
  if words <= 0 then invalid_arg "Ctx.frame_carve: words";
  let size = words * Layout.word in
  if frame.cursor + size > frame.limit then
    invalid_arg
      (Printf.sprintf "Ctx.frame_carve: frame of %s exhausted" frame.routine);
  let base = frame.cursor in
  frame.cursor <- base + size;
  base

let frame_routine frame = frame.routine

(* --- reference emission ----------------------------------------------- *)

let attribute t addr =
  match Layout.classify addr with
  | Some Layout.Stack -> (
    match Shadow_stack.attribute t.shadow addr with
    | Some frame -> Hashtbl.find_opt t.routine_objects frame.routine_addr
    | None -> None)
  | Some (Layout.Heap | Layout.Global) -> Object_registry.lookup t.registry addr
  | None -> None

(* Stack attribution as an object id (-1 = none). *)
let attribute_stack_id t addr =
  if
    t.memo_frame_stamp = Shadow_stack.stamp t.shadow
    && addr >= t.memo_frame_lo
    && addr < t.memo_frame_hi
  then t.memo_frame_id
  else
    match Shadow_stack.attribute t.shadow addr with
    | Some frame ->
      let ra = frame.Shadow_stack.routine_addr in
      let id =
        if ra = t.memo_routine_addr then t.memo_routine_id
        else begin
          let id =
            match Hashtbl.find_opt t.routine_objects ra with
            | Some o -> o.Mem_object.id
            | None -> -1
          in
          t.memo_routine_addr <- ra;
          t.memo_routine_id <- id;
          id
        end
      in
      t.memo_frame_stamp <- Shadow_stack.stamp t.shadow;
      t.memo_frame_lo <- frame.Shadow_stack.base_sp - frame.Shadow_stack.frame_size;
      t.memo_frame_hi <- frame.Shadow_stack.base_sp;
      t.memo_frame_id <- id;
      id
    | None -> -1

(* With sampling enabled, a reference outside the sample window is
   invisible to the whole analysis (attribution, tallies and sinks) — as
   if PIN had not instrumented it. *)
let sampling_drops t =
  match t.sampling with
  | None -> false
  | Some s ->
    let drop = s.position >= s.sample_length in
    s.position <- (s.position + 1) mod s.period;
    if drop then t.sampled_out <- t.sampled_out + 1;
    drop

(* Heap/global attribution through the four-entry memo: last-hit slot
   first, then the remaining three, then the registry (installing the
   answer round-robin).  All indices are in [0, 4) by construction. *)
(* Toplevel recursion (arguments, not captures): a local [let rec] would
   allocate a closure per memo miss on the non-flambda compiler. *)
let rec probe_obj_memo t addr k =
  if k >= 4 then begin
    match Object_registry.lookup t.registry addr with
    | Some o ->
      let id = o.Mem_object.id in
      let slot = t.memo_obj_rr in
      t.memo_obj_rr <- (slot + 1) land 3;
      t.memo_obj_last <- slot;
      Array.unsafe_set t.memo_obj_lo slot o.Mem_object.base;
      Array.unsafe_set t.memo_obj_hi slot (Mem_object.last_byte o);
      Array.unsafe_set t.memo_obj_ids slot id;
      id
    | None -> -1
  end
  else if
    k <> t.memo_obj_last
    && addr >= Array.unsafe_get t.memo_obj_lo k
    && addr <= Array.unsafe_get t.memo_obj_hi k
  then begin
    t.memo_obj_last <- k;
    Array.unsafe_get t.memo_obj_ids k
  end
  else probe_obj_memo t addr (k + 1)

let[@inline] attribute_obj_id t addr =
  let l = t.memo_obj_last in
  if
    addr >= Array.unsafe_get t.memo_obj_lo l
    && addr <= Array.unsafe_get t.memo_obj_hi l
  then Array.unsafe_get t.memo_obj_ids l
  else probe_obj_memo t addr 0

let emit_observed t addr op =
  t.total_refs <- t.total_refs + 1;
  let tal = t.cur_tally in
  (* Region test inlined as two range checks instead of [Layout.classify]:
     global [global_base, global_limit) and heap [heap_base, heap_limit)
     are contiguous and emission treats them identically, so one compare
     pair covers both. *)
  let obj_id =
    if addr >= Layout.global_base && addr < Layout.heap_limit then begin
      (match op with
      | Access.Read -> tal.or_ <- tal.or_ + 1
      | Access.Write -> tal.ow <- tal.ow + 1);
      attribute_obj_id t addr
    end
    else if addr > Layout.stack_limit && addr <= Layout.stack_top then begin
      (match op with
      | Access.Read -> tal.sr <- tal.sr + 1
      | Access.Write -> tal.sw <- tal.sw + 1);
      attribute_stack_id t addr
    end
    else begin
      (match op with
      | Access.Read -> tal.or_ <- tal.or_ + 1
      | Access.Write -> tal.ow <- tal.ow + 1);
      -1
    end
  in
  if obj_id >= 0 then Counters.record t.counters ~obj_id ~op
  else t.unattributed <- t.unattributed + 1;
  if t.recording then begin
    let i = t.batch_len in
    (* i < batch_capacity = length of all three arrays, by construction *)
    Sink.Batch.set_addr_op t.batch i ~addr ~op;
    Array.unsafe_set t.obj_ids i obj_id;
    Array.unsafe_set t.instr_before i t.pending_instr;
    t.pending_instr <- 0;
    t.batch_len <- i + 1;
    if t.batch_len = t.batch_capacity then flush_batch t ~boundary:false
  end
  else begin
    (* nobody reads the buffers: keep only the flush accounting, so the
       pipeline stats are independent of whether consumers are attached *)
    let len = t.batch_len + 1 in
    t.batch_len <- len;
    if len = t.batch_capacity then flush_batch t ~boundary:false
  end

let[@inline] emit t addr op =
  if sampling_drops t then () else emit_observed t addr op

let[@inline] read_addr t ~addr = emit t addr Access.Read
let[@inline] write_addr t ~addr = emit t addr Access.Write

let flops t n =
  if n < 0 then invalid_arg "Ctx.flops: negative";
  if t.instr_sink <> None || t.record_sink <> None then
    t.pending_instr <- t.pending_instr + n

(* --- persistence (NVSC-Persist) ---------------------------------------- *)

(* Persist primitives are events, not memory references: they never enter
   the emission batch, so annotating an application changes no analysis
   built on the reference stream.  Each one flushes buffered references
   first (pre_mutate), giving observers a strict happens-before order
   between stores and the flush/fence/epoch actions that persist them. *)

let persist_event t ev =
  pre_mutate t;
  notify t (Persist ev)

let persist t obj =
  persist_event t (Persist_ev.Declare { obj_id = obj.Mem_object.id })

let epoch_begin ?(checkpoint = false) t ~label =
  persist_event t (Persist_ev.Epoch_begin { label; checkpoint })

let epoch_commit ?(checkpoint = false) t ~label =
  persist_event t (Persist_ev.Epoch_commit { label; checkpoint })

let persist_epoch ?(checkpoint = false) t ~label f =
  epoch_begin ~checkpoint t ~label;
  (* no commit on exception: the epoch stays open, which is exactly what a
     crash inside it looks like to the checker *)
  let r = f () in
  epoch_commit ~checkpoint t ~label;
  r

let flush t obj ~off ~len =
  if off < 0 || len <= 0 || off + len > obj.Mem_object.size then
    invalid_arg "Ctx.flush: byte range outside the object";
  persist_event t (Persist_ev.Flush { obj_id = obj.Mem_object.id; off; len })

let flush_all t obj = flush t obj ~off:0 ~len:obj.Mem_object.size
let fence t = persist_event t Persist_ev.Fence

(* --- analysis accessors ------------------------------------------------ *)

let registry t = t.registry
let counters t = t.counters
let shadow t = t.shadow
let rng t = t.rng

let stack_object_of_routine t routine =
  match Hashtbl.find_opt t.routine_addrs routine with
  | None -> None
  | Some addr -> Hashtbl.find_opt t.routine_objects addr

let stack_objects t =
  Hashtbl.fold (fun _ obj acc -> obj :: acc) t.routine_objects []
  |> List.sort (fun (a : Mem_object.t) b -> compare a.id b.id)

let attribute_addr = attribute

let fast_tally t ~iter =
  if iter < 0 || iter >= Array.length t.tallies then
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
  else begin
    let tal = t.tallies.(iter) in
    {
      stack_reads = tal.sr;
      stack_writes = tal.sw;
      other_reads = tal.or_;
      other_writes = tal.ow;
    }
  end

let fast_tally_totals t =
  Array.fold_left
    (fun acc tal ->
      {
        stack_reads = acc.stack_reads + tal.sr;
        stack_writes = acc.stack_writes + tal.sw;
        other_reads = acc.other_reads + tal.or_;
        other_writes = acc.other_writes + tal.ow;
      })
    { stack_reads = 0; stack_writes = 0; other_reads = 0; other_writes = 0 }
    t.tallies

let total_references t = t.total_refs
let unattributed t = t.unattributed

(* --- pipeline self-observability --------------------------------------- *)

type pipeline_stats = {
  batch_capacity : int;
  refs : int;
  batches : int;
  capacity_flushes : int;
  boundary_flushes : int;
  sinks : Sink.stats list;
}

let pipeline_stats (t : t) =
  {
    batch_capacity = t.batch_capacity;
    refs = t.total_refs;
    batches = t.batches_out;
    capacity_flushes = t.capacity_flushes;
    boundary_flushes = t.boundary_flushes;
    sinks = Array.to_list (Array.map Sink.stats t.sinks);
  }
