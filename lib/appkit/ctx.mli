(** Instrumentation context: the OCaml stand-in for PIN.

    The mini-applications are written against this API.  Every array read
    and write goes through it, producing a memory-reference stream with a
    synthetic — but structurally faithful — virtual address, which the
    context attributes on the fly to the memory object it falls in (global
    symbol, heap allocation site, or routine stack frame) exactly as
    NV-SCAVENGER does: stack references through the shadow stack, heap and
    global references through the bucketed object registry.

    References do not leave the context one at a time: they accumulate in a
    flat {!Nvsc_memtrace.Sink.Batch.t} and are delivered to the subscribed
    sinks a batch at a time — when the batch fills, or at a phase boundary
    (the paper's §III-D batching of raw references).  Attribution, the fast
    stack tallies and the per-object counters still happen at emission
    time, so analysis results are independent of the batch capacity. *)

type t

val create : ?seed:int -> ?batch_capacity:int -> ?redzone_words:int -> unit -> t
(** [batch_capacity] sets the emission batch size (default
    {!Nvsc_memtrace.Sink.default_capacity}).  Results are invariant in it;
    only flush cadence changes.  [redzone_words] (default 0) leaves an
    unregistered gap of that many words after every global and heap
    allocation, so an out-of-bounds reference lands in no-man's-land
    instead of silently attributing to the next object — the ASan redzone
    idea, used by the NVSC-San trace sanitizer. *)

(** {1 Sinks} *)

val add_sink : t -> Nvsc_memtrace.Sink.t -> unit
(** Subscribe a sink to the reference stream.  Batches are delivered in
    subscription order; within a batch references are in program order and
    were all emitted under the same phase. *)

type attributed_sink =
  Nvsc_memtrace.Sink.Batch.t -> int array -> first:int -> n:int -> unit
(** A batch consumer that also receives the emission-time attribution:
    the second argument maps batch index [i] to the owning object's id, or
    [-1] when the reference resolved to no object. *)

val add_attributed_sink : t -> attributed_sink -> unit

val set_instr_sink : t -> (int -> unit) -> unit
(** Receive non-memory committed-instruction counts (from {!flops}).
    Counts are buffered alongside the reference batch and replayed in
    program order at flush time. *)

type record_sink =
  Nvsc_memtrace.Sink.Batch.t ->
  obj_ids:int array ->
  instr_before:int array ->
  instr_tail:int ->
  first:int ->
  n:int ->
  unit
(** The raw emission stream, losslessly: each flushed slice with its
    emission-time attribution ([obj_ids.(i)], [-1] = unattributed), the
    committed plain instructions preceding each reference
    ([instr_before.(i)], counted since reference [i-1]), and — on a
    boundary flush — the instruction tail committed after the last
    buffered reference.  [n] may be [0] when only a tail is delivered.
    This is what [nvscav record] serializes: replaying it token by token
    reproduces every analysis exactly, independent of batch capacity. *)

val set_record_sink : t -> record_sink -> unit
(** Install the (single) raw-stream recorder.  Flushes buffered
    references first.  Installing a recorder makes {!flops} counts
    accumulate even without an instruction sink. *)

val set_batch_exchange : t -> (Nvsc_memtrace.Sink.Batch.t -> Nvsc_memtrace.Sink.Batch.t) -> unit
(** Install the zero-copy batch hand-off hook: after every non-empty
    flush has been delivered to all sinks, the context replaces its
    emission batch with [exchange batch].  The shard team keeps the
    filled batch (Bigarray storage is domain-shareable) and returns a
    recycled one — which must have the same capacity and word-prefilled
    sizes.  Flushes buffered references first. *)

val clear_batch_exchange : t -> unit
(** Remove the hand-off hook (flushing buffered references through it
    first, so no emitted reference is lost). *)

val batch_capacity : t -> int
(** Capacity of the emission batch. *)

(** Object/stack lifecycle events, as seen by an {!add_event_sink}
    observer.  Events are delivered in program order, interleaved with
    attributed batches: the batch is flushed {e before} the mutation the
    event describes, so an attributed sink always sees each reference under
    the registry/stack state it was emitted in — regardless of batch
    capacity. *)
type event =
  | Alloc of Nvsc_memtrace.Mem_object.t
      (** Registration (or revival) of a global or heap object. *)
  | Free of Nvsc_memtrace.Mem_object.t
  | Frame_push of Nvsc_memtrace.Mem_object.t * Nvsc_memtrace.Shadow_stack.frame
      (** Routine entry: the routine's frame object and the concrete
          shadow frame pushed for this call. *)
  | Frame_pop of Nvsc_memtrace.Shadow_stack.frame
  | Phase_change of Nvsc_memtrace.Mem_object.phase
  | Persist of Nvsc_memtrace.Persist.t
      (** A crash-consistency action (see {!section-persist}). *)

val add_event_sink : t -> (event -> unit) -> unit
(** Subscribe a lifecycle observer (several may coexist; events are
    delivered in subscription order).  Flushes buffered references first.
    While any observer is installed, allocation/free/call/phase/persist
    mutations flush the emission batch before they apply (see {!event}). *)

val redzone_bytes : t -> int

val clear_sinks : t -> unit
(** Flushes buffered references, then unsubscribes every sink (including
    the event sink). *)

val release : t -> unit
(** Flush, then return the ~2 MB emission buffers to a per-domain pool for
    the next {!create} (buffer allocation dominates context setup).  Call
    once when done with the context — {!Nvsc_core.Scavenger.run} does.
    The context remains usable afterwards, but with single-slot buffers:
    every emission flushes, so read {!pipeline_stats} before releasing. *)

val flush_refs : t -> unit
(** Deliver any buffered references (and pending instruction counts) to the
    sinks now.  Called implicitly at phase boundaries; call it before
    reading sink-side state mid-phase. *)

val set_sampling : t -> period:int -> sample_length:int -> unit
(** Enable periodic sampling of the instrumentation itself: out of every
    [period] references, only the first [sample_length] are observed
    (attributed, tallied and forwarded to sinks); the rest happen to the
    application but are invisible to the analysis.  This is the §III-D
    design the paper rejects — provided so the rejection can be measured
    (see {!Nvsc_core.Extensions.sampling_ablation}). *)

val sampled_out : t -> int
(** References dropped by sampling so far. *)

(** {1 Phases and iterations} *)

val set_phase : t -> Nvsc_memtrace.Mem_object.phase -> unit
(** [Pre] and [Post] are charged to iteration 0 (as in the paper's
    figure 7); [Main i] (1-based) to iteration [i].  Buffered references
    are flushed {e before} the phase changes, so phase-sensitive sinks
    always see a reference under the phase it was emitted in. *)

val phase : t -> Nvsc_memtrace.Mem_object.phase

(** {1 Allocation} *)

val alloc_global : t -> name:string -> words:int -> Nvsc_memtrace.Mem_object.t
(** A global symbol of [words] 8-byte words.  Overlapping globals merge as
    Fortran common blocks do (see {!Nvsc_memtrace.Object_registry}). *)

val alloc_global_overlay :
  t ->
  name:string ->
  over:Nvsc_memtrace.Mem_object.t ->
  offset_words:int ->
  words:int ->
  Nvsc_memtrace.Mem_object.t
(** Declare a global symbol aliasing (part of) an existing global's range —
    a Fortran common block viewed under a different partitioning by another
    program unit (paper §III-C).  The overlapping objects merge in the
    registry into one union object (whose combined name identifies it);
    the merged object is returned.  [over] must be a global. *)

val alloc_heap : t -> site:string -> words:int -> Nvsc_memtrace.Mem_object.t
(** Heap allocation identified by its allocation-site signature.  If a dead
    object with the same signature exists it is revived (same identity and
    base, as the paper's tool treats per-iteration reallocations).  A
    *live* object with the same signature gets a fresh instance
    signature. *)

val free_heap : t -> Nvsc_memtrace.Mem_object.t -> unit

(** {1 Routines and stack frames} *)

type frame

val call : t -> routine:string -> frame_words:int -> (frame -> 'a) -> 'a
(** Enter [routine]: pushes a shadow-stack frame of [frame_words] words and
    (on first call) registers the routine's frame as a stack memory object
    keyed by the routine's synthetic starting address.  The frame is popped
    when the callback returns (also on exceptions). *)

val frame_carve : t -> frame -> words:int -> int
(** Reserve [words] within the frame and return their base address.  Raises
    [Invalid_argument] when the frame is exhausted. *)

val frame_routine : frame -> string

(** {1 Reference emission} *)

val read_addr : t -> addr:int -> unit
val write_addr : t -> addr:int -> unit
(** Emit a word-sized reference at an arbitrary owned address (the typed
    {!Farray} accessors are built on these). *)

val flops : t -> int -> unit
(** Account [n] committed non-memory instructions (arithmetic). *)

(** {1:persist Persistence (NVSC-Persist)}

    Crash-consistency annotations for applications whose state is meant to
    live in byte-addressable NVM.  The primitives are {e events}, not
    memory references: they ride the event-sink path (and the NVT trace as
    v2 records), so annotating an application changes no reference-stream
    analysis.  Each primitive flushes buffered references first, giving
    observers a strict happens-before order between the stores and the
    flush/fence/epoch actions that persist them.

    Typical checkpoint annotation ([obj] the state object, declared once
    at setup, the epoch once per main-loop iteration):
    {[
      Ctx.persist ctx obj;
      ...
      Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
          Ctx.flush_all ctx obj;
          Ctx.fence ctx)
    ]} *)

val persist : t -> Nvsc_memtrace.Mem_object.t -> unit
(** Declare the object persistent: the crash-consistency checker tracks
    its cache-line durability state and the placement lint requires the
    plan to keep it in NVRAM. *)

val epoch_begin : ?checkpoint:bool -> t -> label:string -> unit
val epoch_commit : ?checkpoint:bool -> t -> label:string -> unit
(** Raw epoch delimiters ([checkpoint] defaults to [false]); prefer
    {!persist_epoch}, which cannot unbalance. *)

val persist_epoch : ?checkpoint:bool -> t -> label:string -> (unit -> 'a) -> 'a
(** Run the callback inside a persist epoch: all writes to declared
    objects made since the previous commit must be flushed and fenced by
    the time the epoch commits.  [checkpoint] marks the epoch
    failure-atomic (torn-checkpoint analysis applies).  If the callback
    raises, the epoch is left open — deliberately: to the checker the
    exception is a crash inside the epoch. *)

val flush : t -> Nvsc_memtrace.Mem_object.t -> off:int -> len:int -> unit
(** Write back the cache lines covering bytes [[off, off+len)] of the
    object (clwb-style: asynchronous until the next {!fence}).  Raises
    [Invalid_argument] if the range exceeds the object. *)

val flush_all : t -> Nvsc_memtrace.Mem_object.t -> unit
(** [flush] of the whole object. *)

val fence : t -> unit
(** Drain all in-flight flushes (sfence-style ordering point). *)

(** {1 Analysis state} *)

val registry : t -> Nvsc_memtrace.Object_registry.t
val counters : t -> Nvsc_memtrace.Counters.t
val shadow : t -> Nvsc_memtrace.Shadow_stack.t
val rng : t -> Nvsc_util.Rng.t

val stack_object_of_routine : t -> string -> Nvsc_memtrace.Mem_object.t option

val stack_objects : t -> Nvsc_memtrace.Mem_object.t list
(** One frame object per routine seen so far (slow stack method). *)

val attribute_addr : t -> int -> Nvsc_memtrace.Mem_object.t option
(** Resolve an address to its memory object the way the recorder does:
    stack addresses through the shadow stack, heap/global through the
    registry.  Exposed for external monitors. *)

(** Per-iteration tallies of the fast stack method (paper §III-A, method
    1): whole-stack read/write counts and the share of all references that
    target the stack. *)
type fast_tally = {
  stack_reads : int;
  stack_writes : int;
  other_reads : int;
  other_writes : int;
}

val fast_tally : t -> iter:int -> fast_tally
val fast_tally_totals : t -> fast_tally

val total_references : t -> int
val unattributed : t -> int
(** References that resolved to no object (should be 0 for well-formed
    applications; exposed for tests). *)

(** {1 Pipeline self-observability} *)

type pipeline_stats = {
  batch_capacity : int;
  refs : int;  (** references entered into the emission batch *)
  batches : int;  (** batches flushed to the sinks *)
  capacity_flushes : int;
  boundary_flushes : int;
  sinks : Nvsc_memtrace.Sink.stats list;
}

val pipeline_stats : t -> pipeline_stats
