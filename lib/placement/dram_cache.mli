(** Hierarchical hybrid memory: DRAM as a page cache in front of NVRAM.

    This is the *other* hybrid design of the paper's §II — "using DRAM as a
    cache to reduce NVRAM access latency" (Qureshi et al.'s organisation).
    The paper argues against it for scientific workloads: "for workloads
    with poor locality, the DRAM cache actually lowers performance and
    increases energy consumption", and chooses the horizontal design this
    library's {!Hybrid_memory} models.  This module makes that argument
    checkable: feed the same main-memory trace to both organisations and
    compare.

    Model (first-order, all knobs explicit):
    - the DRAM cache is set-associative with LRU at page granularity;
    - a hit costs DRAM latency;
    - a miss costs the NVRAM read latency for the critical line plus a
      page fill (page transfer at bus bandwidth, read from NVRAM);
    - evicting a dirty page writes it back to NVRAM in full;
    - traffic bytes are accounted per memory, and NVRAM cell writes per
      line (endurance exposure). *)

type t

val create :
  ?page_bytes:int ->
  ?dram_pages:int ->
  ?associativity:int ->
  ?bus_gb_per_s:float ->
  tech:Nvsc_nvram.Technology.t ->
  unit ->
  t
(** Defaults: 4 KiB pages, 2048 pages of DRAM (8 MiB), 8-way, 12.8 GB/s.
    [dram_pages] is rounded up to a whole number of sets.  [tech] is the
    backing NVRAM. *)

val access_raw : t -> addr:int -> size:int -> op:Nvsc_memtrace.Access.op -> unit
(** One main-memory access (line granularity, as produced by the cache
    hierarchy or a trace log). *)

val access : t -> Nvsc_memtrace.Access.t -> unit
(** Per-record convenience over {!access_raw}. *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Run a batch slice through the page cache in order. *)

val sink : ?name:string -> t -> Nvsc_memtrace.Sink.t
(** A sink feeding this cache via {!consume}. *)

val drain : t -> unit
(** Write every dirty cached page back to NVRAM (end-of-run accounting). *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  hit_rate : float;
  fills : int;
  dirty_writebacks : int;
  avg_latency_ns : float;
  dram_traffic_bytes : int;
  nvram_traffic_bytes : int;
  nvram_line_writes : int;  (** 64-byte line writes into NVRAM cells *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
