(** Static (profile-driven) placement: decide once from a whole-run
    profile, never migrate.

    Implements the paper's §II management policy: place as much data as
    possible in NVRAM while keeping performance-critical, frequently
    written data in DRAM.  Items the suitability classifier accepts are
    sent to NVRAM best-candidates-first (largest static-power win per unit
    of write exposure); everything else — and whatever no longer fits —
    stays in DRAM. *)

val plan :
  ?thresholds:Nvsc_nvram.Suitability.thresholds ->
  ?pinned:(Item.t -> bool) ->
  hybrid:Hybrid_memory.t ->
  Item.t list ->
  Hybrid_memory.t
(** Place every item into [hybrid] (which must be empty of these items)
    and return it.  Items that fit in neither memory raise
    [Invalid_argument] — size the hybrid for the workload.

    [pinned] (default: nobody) marks items that must live in NVRAM for
    durability — the declared persist set of NVSC-Persist.  They are
    placed into NVRAM first, before any suitability scoring; one that no
    longer fits falls back to DRAM, where the persist placement lint
    will flag it. *)

val score : Item.t -> float
(** NVRAM-desirability ordering: larger is placed first.  Size over
    (1 + write flux) — big, rarely-written objects win. *)
