module Access = Nvsc_memtrace.Access
module Technology = Nvsc_nvram.Technology
module Cache = Nvsc_cachesim.Cache
module Cache_params = Nvsc_cachesim.Cache_params

type t = {
  page_bytes : int;
  line_bytes : int;
  bus_ns_per_byte : float;
  tech : Technology.t;
  dram : Technology.t;
  cache : Cache.t; (* "lines" are pages *)
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable fills : int;
  mutable dirty_writebacks : int;
  (* one-element float array: an unboxed accumulator.  A mutable [float]
     field in this mixed record would box a fresh float on every
     accumulation (the access hot path). *)
  latency_sum : float array;
  mutable dram_traffic_bytes : int;
  mutable nvram_traffic_bytes : int;
  mutable nvram_line_writes : int;
}

let create ?(page_bytes = 4096) ?(dram_pages = 2048) ?(associativity = 8)
    ?(bus_gb_per_s = 12.8) ~tech () =
  if not (Technology.is_nvram tech) then
    invalid_arg "Dram_cache.create: backing store must be NVRAM";
  if dram_pages <= 0 then invalid_arg "Dram_cache.create: dram_pages";
  if associativity <= 0 then invalid_arg "Dram_cache.create: associativity";
  (* round the capacity up to a whole number of sets *)
  let dram_pages =
    (dram_pages + associativity - 1) / associativity * associativity
  in
  (* Built directly rather than through [Cache_params.make]: the DRAM
     budget comes from application footprints, so the set count is
     generally not a power of two ([make] rejects that; [Cache] keeps a
     guarded div/mod path for exactly this case). *)
  let params =
    {
      Cache_params.name = "dram-page-cache";
      size_bytes = page_bytes * dram_pages;
      associativity;
      line_bytes = page_bytes;
      write_miss = Cache_params.Write_allocate;
    }
  in
  {
    page_bytes;
    line_bytes = 64;
    bus_ns_per_byte = 1.0 /. bus_gb_per_s;
    tech;
    dram = Technology.get Technology.DDR3;
    cache = Cache.create params;
    accesses = 0;
    hits = 0;
    misses = 0;
    fills = 0;
    dirty_writebacks = 0;
    latency_sum = [| 0. |];
    dram_traffic_bytes = 0;
    nvram_traffic_bytes = 0;
    nvram_line_writes = 0;
  }

let page_fill_ns t =
  float_of_int t.page_bytes *. t.bus_ns_per_byte

let writeback_page t =
  t.dirty_writebacks <- t.dirty_writebacks + 1;
  t.nvram_traffic_bytes <- t.nvram_traffic_bytes + t.page_bytes;
  t.nvram_line_writes <- t.nvram_line_writes + (t.page_bytes / t.line_bytes)

let access_raw t ~addr ~size ~op =
  t.accesses <- t.accesses + 1;
  let page = addr / t.page_bytes in
  let e =
    match op with
    | Access.Read -> Cache.read t.cache ~line:page
    | Access.Write -> Cache.write t.cache ~line:page
  in
  t.dram_traffic_bytes <- t.dram_traffic_bytes + size;
  if Cache.Effect.hit e then begin
    t.hits <- t.hits + 1;
    t.latency_sum.(0) <- t.latency_sum.(0) +. t.dram.Technology.read_latency_ns
  end
  else begin
    t.misses <- t.misses + 1;
    (* the fill brings the whole page out of NVRAM *)
    t.fills <- t.fills + 1;
    t.nvram_traffic_bytes <- t.nvram_traffic_bytes + t.page_bytes;
    t.dram_traffic_bytes <- t.dram_traffic_bytes + t.page_bytes;
    let miss_latency =
      t.tech.Technology.read_latency_ns +. page_fill_ns t
    in
    t.latency_sum.(0) <- t.latency_sum.(0) +. miss_latency;
    if Cache.Effect.has_writeback e then writeback_page t
  end

let access t (a : Access.t) = access_raw t ~addr:a.addr ~size:a.size ~op:a.op

let consume t batch ~first ~n =
  let module Sink = Nvsc_memtrace.Sink in
  for i = first to first + n - 1 do
    access_raw t ~addr:(Sink.Batch.addr batch i) ~size:(Sink.Batch.size batch i)
      ~op:(Sink.Batch.op batch i)
  done

let sink ?name t = Nvsc_memtrace.Sink.create ?name (consume t)

let drain t = Cache.flush_dirty t.cache (fun _ -> writeback_page t)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  hit_rate : float;
  fills : int;
  dirty_writebacks : int;
  avg_latency_ns : float;
  dram_traffic_bytes : int;
  nvram_traffic_bytes : int;
  nvram_line_writes : int;
}

let stats (t : t) =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    hit_rate =
      (if t.accesses = 0 then 0.
       else float_of_int t.hits /. float_of_int t.accesses);
    fills = t.fills;
    dirty_writebacks = t.dirty_writebacks;
    avg_latency_ns =
      (if t.accesses = 0 then 0.
       else t.latency_sum.(0) /. float_of_int t.accesses);
    dram_traffic_bytes = t.dram_traffic_bytes;
    nvram_traffic_bytes = t.nvram_traffic_bytes;
    nvram_line_writes = t.nvram_line_writes;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d accesses, hit rate %.2f, %d fills, %d dirty writebacks, avg latency \
     %.1fns, DRAM traffic %a, NVRAM traffic %a (%d line writes)"
    s.accesses s.hit_rate s.fills s.dirty_writebacks s.avg_latency_ns
    Nvsc_util.Units.pp_bytes s.dram_traffic_bytes Nvsc_util.Units.pp_bytes
    s.nvram_traffic_bytes s.nvram_line_writes
