module Suitability = Nvsc_nvram.Suitability

let score (item : Item.t) =
  float_of_int item.size_bytes /. (1. +. (1e6 *. Item.write_share item))

let plan ?(thresholds = Suitability.default_thresholds)
    ?(pinned = fun (_ : Item.t) -> false) ~hybrid items =
  Nvsc_obs.Span.with_ "placement.plan" @@ fun () ->
  let tech = Hybrid_memory.tech hybrid in
  (* Pinned items (the persist set) claim NVRAM before any scoring: their
     durability contract overrides the performance heuristics.  If NVRAM
     cannot hold one it spills to DRAM — which the persist lint flags. *)
  let pinned_items, items = List.partition pinned items in
  List.iter
    (fun item ->
      if Hybrid_memory.free_bytes hybrid Hybrid_memory.Nvram >= item.Item.size_bytes
      then Hybrid_memory.place hybrid item Hybrid_memory.Nvram
      else Hybrid_memory.place hybrid item Hybrid_memory.Dram)
    pinned_items;
  let wants_nvram item =
    match
      Suitability.classify ~thresholds ~category:tech.Nvsc_nvram.Technology.category
        (Item.suitability item)
    with
    | Suitability.Nvram_friendly | Suitability.Nvram_candidate -> true
    | Suitability.Dram_preferred -> false
  in
  let candidates, dram_first = List.partition wants_nvram items in
  let by_score =
    List.sort (fun a b -> compare (score b) (score a)) candidates
  in
  (* Fill NVRAM best-first; spill to DRAM when NVRAM is full. *)
  List.iter
    (fun item ->
      if Hybrid_memory.free_bytes hybrid Hybrid_memory.Nvram >= item.Item.size_bytes
      then Hybrid_memory.place hybrid item Hybrid_memory.Nvram
      else Hybrid_memory.place hybrid item Hybrid_memory.Dram)
    by_score;
  List.iter
    (fun item ->
      if Hybrid_memory.free_bytes hybrid Hybrid_memory.Dram >= item.Item.size_bytes
      then Hybrid_memory.place hybrid item Hybrid_memory.Dram
      else Hybrid_memory.place hybrid item Hybrid_memory.Nvram)
    dram_first;
  hybrid
