(** Hybrid DRAM + NVRAM memory-system simulation.

    The paper's §V concedes: "we do not simulate a hybrid memory system
    due to the limitations of the simulator.  Instead, we assume main
    memory is completely replaced with NVRAM."  This module removes that
    limitation: two independent memory systems — a DRAM side and an NVRAM
    side, each with its own controller, banks and bus, as the horizontal
    design of §II implies — are driven by one trace, each access routed by
    a placement function.

    Average power is total energy over the joint makespan; the two sides
    proceed concurrently (the makespan is the later of the two), and
    background power is charged for whichever capacity each side is
    configured with. *)

type side = Dram_side | Nvram_side

type t

val create :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  nvram:Nvsc_nvram.Technology.t ->
  placement:(int -> side) ->
  unit ->
  t
(** [placement addr] routes each accessed address.  Both sides share the
    organisation and controller settings; [org] defaults to half the paper
    organisation per side (8 ranks each), so the combined capacity matches
    the single-technology simulations. *)

val access : t -> Nvsc_memtrace.Access.t -> unit

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Route a batch slice of trace records in order. *)

val sink : ?name:string -> t -> Nvsc_memtrace.Sink.t
(** A sink feeding this hybrid via {!consume}. *)

type stats = {
  dram : Controller.stats;
  nvram : Controller.stats;
  accesses : int;
  nvram_fraction : float;  (** share of accesses routed to NVRAM *)
  nvram_write_fraction : float;  (** share of writes routed to NVRAM *)
  elapsed_ns : float;  (** joint makespan *)
  total_energy_nj : float;
  avg_power_w : float;
  avg_latency_ns : float;  (** access-weighted over both sides *)
}

val stats : t -> stats

val compare_designs :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  nvram:Nvsc_nvram.Technology.t ->
  placement:(int -> side) ->
  replay:(Nvsc_memtrace.Sink.t -> unit) ->
  unit ->
  (string * float * float) list
(** The experiment the paper could not run: replay one trace through
    (a) all-DRAM, (b) all-NVRAM, and (c) the hybrid with the given
    placement, at equal total capacity.  Returns
    [(design, normalized power, avg latency ns)] with power normalised to
    the all-DRAM design. *)
