module Access = Nvsc_memtrace.Access
module Technology = Nvsc_nvram.Technology

type t = { controller : Controller.t; tech : Technology.t }

let create ?org ?scheme ?window ?row_policy ?scheduler ~tech () =
  {
    controller =
      Controller.create ?org ?scheme ?window ?row_policy ?scheduler ~tech ();
    tech;
  }

let access t a = Controller.submit t.controller a
let consume t batch ~first ~n = Controller.consume t.controller batch ~first ~n
let sink ?name t = Controller.sink ?name t.controller

let stats t = Controller.stats t.controller

let tech t = t.tech

let run_trace ?org ?scheme ?window ?row_policy ?scheduler ~tech trace =
  let t = create ?org ?scheme ?window ?row_policy ?scheduler ~tech () in
  List.iter (access t) trace;
  stats t

let compare_technologies ?org ?scheme ?window ?row_policy ?scheduler
    ?(jobs = 1) ?(bank_shards = 1) ~techs ~replay () =
  (* Bank sharding decomposes only the FCFS discipline (see
     {!Controller_team}); any explicit reordering scheduler falls back to
     the serial controller.  Either way the stats are byte-identical, so
     the fallback is a performance choice, not a behavioural one. *)
  let bank_shards =
    match scheduler with
    | None | Some Controller.Fcfs -> Controller_team.shards_for ?org bank_shards
    | Some (Controller.Fr_fcfs _) -> 1
  in
  let simulate tech =
    Nvsc_obs.Span.with_ ~arg:tech.Technology.name "dramsim.simulate"
    @@ fun () ->
    if bank_shards > 1 then begin
      let team =
        Controller_team.create ?org ?scheme ?window ?row_policy
          ~shards:bank_shards ~tech ()
      in
      let s = Controller_team.sink ~name:tech.Technology.name team in
      replay s;
      Nvsc_memtrace.Sink.flush s;
      let st = Controller_team.stats team in
      Controller_team.export_metrics team;
      (tech, st)
    end
    else begin
      let t = create ?org ?scheme ?window ?row_policy ?scheduler ~tech () in
      let s = sink ~name:tech.Technology.name t in
      replay s;
      Nvsc_memtrace.Sink.flush s;
      (tech, stats t)
    end
  in
  if jobs <= 1 then List.map simulate techs
  else
    (* Parallel across technologies: each worker owns a private
       controller and replays the (read-only, Bigarray-backed) trace into
       it, and [Pool.map] returns results in input order — so the output
       is byte-identical to the serial map. *)
    Array.to_list (Nvsc_team.Pool.map ~jobs simulate (Array.of_list techs))

let normalized_power results =
  let base =
    match
      List.find_opt
        (fun ((tech : Technology.t), _) -> tech.tech = Technology.DDR3)
        results
    with
    | Some (_, s) -> s.Controller.avg_power_w
    | None -> invalid_arg "Memory_system.normalized_power: no DDR3 baseline"
  in
  List.map
    (fun (tech, (s : Controller.stats)) -> (tech, s.avg_power_w /. base))
    results
