(** Event-driven memory controller.

    Transactions arrive "at full speed" (the paper's trace-driven mode): a
    new transaction is admitted as soon as a slot frees in the in-flight
    window, which models the driving core's effective memory-level
    parallelism.  Each transaction is decoded to (rank, bank, row, column),
    serialised against its bank's readiness and the shared data bus, pays a
    row-activation penalty on a row-buffer miss (open-page policy), and —
    for writes — holds the bank for the technology's write-recovery time.
    DRAM ranks additionally block periodically for refresh.

    Energy is accumulated per event (burst, activation, refresh);
    background power is constant.  Average power is total energy over the
    simulated makespan plus background. *)

type t

type row_policy =
  | Open_page  (** keep the row open after an access (default) *)
  | Closed_page
      (** precharge eagerly after every access: each access pays tRCD but
          never tRP — better under low row locality *)

type scheduler =
  | Fcfs  (** issue transactions strictly in arrival order (default) *)
  | Fr_fcfs of int
      (** first-ready, first-come-first-served over a lookahead of the
          given depth: among the buffered transactions, one that hits an
          open row issues first; ties break to the oldest.  DRAMSim2's
          scheduling discipline. *)

val create :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:row_policy ->
  ?scheduler:scheduler ->
  tech:Nvsc_nvram.Technology.t ->
  unit ->
  t
(** [window] (default 8) is the number of concurrently outstanding
    transactions; [scheme] defaults to {!Address_mapping.Row_bank_rank_col}. *)

val submit : t -> Nvsc_memtrace.Access.t -> unit
(** Process one line-granularity memory transaction.  Under [Fr_fcfs],
    transactions may be buffered; {!flush} (or {!stats}/{!elapsed_ns},
    which flush implicitly) issues any remainder. *)

val submit_ref : t -> addr:int -> op:Nvsc_memtrace.Access.op -> unit
(** Scalar {!submit}: the same transaction without materialising an
    [Access.t] (batch consumers' hot path). *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Submit a batch slice of transactions in order (the sink-consumer
    shape). *)

val issue_classified :
  t -> Nvsc_memtrace.Access.op -> bank:int -> cls:int -> unit
(** Issue one transaction whose row-buffer outcome has been precomputed:
    [cls] is 0 for a row hit, 1 for a miss with no row open, 2 for a miss
    over an open row; [bank] is the flat bank index
    ([rank * banks + bank]).  Performs exactly the float operations of the
    FCFS {!submit_ref} path in the same order — the serial replay half of
    the bank-sharded pipeline ({!Controller_team}).  The controller's own
    row-buffer state is neither consulted nor maintained, so a controller
    must not mix this entry point with {!submit}. *)

val sink : ?name:string -> t -> Nvsc_memtrace.Sink.t
(** A sink feeding this controller via {!consume}. *)

val flush : t -> unit
(** Issue every buffered transaction (no-op under [Fcfs]). *)

val elapsed_ns : t -> float
(** Makespan so far (time the last event finishes). *)

(** Aggregate results; see {!stats}. *)
type stats = {
  accesses : int;
  reads : int;
  writes : int;
  row_hits : int;
  row_misses : int;
  activations : int;
  refreshes : int;
  elapsed_ns : float;
  burst_energy_nj : float;
  act_pre_energy_nj : float;
  refresh_energy_nj : float;
  background_energy_nj : float;
  total_energy_nj : float;  (** including background *)
  avg_power_w : float;
  avg_latency_ns : float;  (** admission-to-completion mean *)
  p50_latency_ns : float;
  p95_latency_ns : float;
  p99_latency_ns : float;  (** latency tail — what bank conflicts, write
                               recovery and refresh blackouts cost *)
  bandwidth_gbs : float;
  row_hit_rate : float;
}

val stats : t -> stats
(** Snapshot of the statistics at the current makespan. *)
