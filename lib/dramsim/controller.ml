module Access = Nvsc_memtrace.Access
module Technology = Nvsc_nvram.Technology

type row_policy = Open_page | Closed_page

type scheduler = Fcfs | Fr_fcfs of int

type pending = { op : Access.op; coords : Address_mapping.coords }

(* All-float sub-record: OCaml stores an all-float record flat, so the
   per-access accumulations below mutate in place.  As mutable [float]
   fields of the mixed record [t] each assignment would box a fresh
   float — six allocations per access on the hot path. *)
type floats = {
  mutable bus_free : float;
  mutable now : float;
  mutable burst_energy_nj : float;
  mutable act_pre_energy_nj : float;
  mutable refresh_energy_nj : float;
  mutable latency_sum : float;
  (* kernel constants, stored in this flat all-float record so the hot
     path reads them unboxed off a pointer it already holds *)
  c_t_cas_ns : float;
  c_t_burst_ns : float;
  c_t_wr_ns : float;
  c_e_act_pre_nj : float;
}

type t = {
  org : Org.t;
  scheme : Address_mapping.scheme;
  tech : Technology.t;
  timing : Timing.t;
  power : Power_params.t;
  window : int;
  nbanks : int; (* ranks * banks *)
  row_policy : row_policy;
  scheduler : scheduler;
  mutable reorder : pending list; (* oldest first *)
  bank_ready : float array; (* ns; indexed rank * banks + bank *)
  open_row : int array; (* -1 = closed *)
  (* FIFO ring of completion times of outstanding transactions.  Every
     completion is a bus_end, and bus_end is strictly increasing across
     admissions (each burst starts no earlier than the previous burst
     freed the bus), so the ring is sorted: the oldest entry is the
     minimum and the transactions completed by any instant form a
     prefix — admission is O(1), not O(window). *)
  inflight : float array;
  mutable inflight_head : int;
  mutable inflight_n : int;
  next_refresh : float array; (* per rank; infinity for NVRAM *)
  fl : floats;
  mutable accesses : int;
  mutable reads : int;
  mutable writes : int;
  mutable row_hits : int;
  mutable row_misses : int;
  mutable activations : int;
  mutable refreshes : int;
  mutable latencies : float array; (* per-access, for percentiles *)
  mutable latencies_n : int;
  (* hot-path constants hoisted out of the per-access kernel: [Org]
     dimensions are powers of two so rank extraction is a shift, and the
     energy/penalty terms are fixed products of the timing/power
     parameters — evaluating them once keeps the float results
     bit-identical (same operations, same order) while dropping an
     integer division and two multiplies per access *)
  banks_shift : int;
  e_burst_read_nj : float;
  e_burst_write_nj : float;
  penalty_over_open_ns : float; (* row miss over an open row: tRP + tRCD *)
  penalty_no_open_ns : float; (* row miss on an idle bank: tRCD *)
}

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create ?(org = Org.paper) ?(scheme = Address_mapping.Row_bank_rank_col)
    ?(window = 8) ?(row_policy = Open_page) ?(scheduler = Fcfs) ~tech () =
  if window <= 0 then invalid_arg "Controller.create: window must be positive";
  (match scheduler with
  | Fr_fcfs depth when depth <= 0 ->
    invalid_arg "Controller.create: Fr_fcfs depth must be positive"
  | Fcfs | Fr_fcfs _ -> ());
  let nbanks = Org.total_banks org in
  let timing = Timing.of_tech tech ~org in
  let power = Power_params.of_tech tech ~org in
  {
    org;
    scheme;
    tech;
    timing;
    power;
    window;
    row_policy;
    scheduler;
    nbanks;
    reorder = [];
    bank_ready = Array.make nbanks 0.;
    open_row = Array.make nbanks (-1);
    inflight = Array.make window 0.;
    inflight_head = 0;
    inflight_n = 0;
    next_refresh =
      Array.make org.Org.ranks
        (if tech.Technology.needs_refresh then timing.Timing.t_refi_ns
         else infinity);
    fl =
      {
        bus_free = 0.;
        now = 0.;
        burst_energy_nj = 0.;
        act_pre_energy_nj = 0.;
        refresh_energy_nj = 0.;
        latency_sum = 0.;
        c_t_cas_ns = timing.Timing.t_cas_ns;
        c_t_burst_ns = timing.Timing.t_burst_ns;
        c_t_wr_ns = timing.Timing.t_wr_ns;
        c_e_act_pre_nj = power.Power_params.e_act_pre_nj;
      };
    accesses = 0;
    reads = 0;
    writes = 0;
    row_hits = 0;
    row_misses = 0;
    activations = 0;
    refreshes = 0;
    latencies = Array.make 1024 0.;
    latencies_n = 0;
    banks_shift = log2 org.Org.banks;
    e_burst_read_nj =
      Power_params.burst_read_energy_nj power
        ~t_burst_ns:timing.Timing.t_burst_ns;
    e_burst_write_nj =
      Power_params.burst_write_energy_nj power
        ~t_burst_ns:timing.Timing.t_burst_ns;
    penalty_over_open_ns = Timing.row_miss_penalty_ns timing ~had_open_row:true;
    penalty_no_open_ns = Timing.row_miss_penalty_ns timing ~had_open_row:false;
  }

(* Admission: wait for the earliest completion when the window is full.
   The ring is sorted (see [inflight]), so the earliest completion is the
   head and dropping every transaction completed by [now] pops a prefix —
   constant amortized work per admission. *)
let[@inline] admit t =
  if t.inflight_n = t.window then begin
    let inflight = t.inflight in
    let oldest = Array.unsafe_get inflight t.inflight_head in
    if oldest > t.fl.now then t.fl.now <- oldest;
    let now = t.fl.now in
    let head = ref t.inflight_head and n = ref t.inflight_n in
    while !n > 0 && Array.unsafe_get inflight !head <= now do
      let h = !head + 1 in
      head := if h = t.window then 0 else h;
      decr n
    done;
    t.inflight_head <- !head;
    t.inflight_n <- !n
  end

(* Catch up pending refresh operations on a rank: each one blocks every
   bank of the rank for t_rfc and costs e_refresh.  Split so the
   overwhelmingly common no-refresh-due case is one inlined float
   compare; the catch-up body stays out of line. *)
let[@inline never] refresh_rank_slow t rank upto =
  while t.next_refresh.(rank) <= upto do
    let start = t.next_refresh.(rank) in
    let finish = start +. t.timing.Timing.t_rfc_ns in
    let base = rank * t.org.Org.banks in
    for b = base to base + t.org.Org.banks - 1 do
      if t.bank_ready.(b) < finish then t.bank_ready.(b) <- finish
    done;
    t.refreshes <- t.refreshes + 1;
    t.fl.refresh_energy_nj <-
      t.fl.refresh_energy_nj +. t.power.Power_params.e_refresh_nj;
    t.next_refresh.(rank) <- start +. t.timing.Timing.t_refi_ns
  done

let[@inline] refresh_rank t rank upto =
  if t.next_refresh.(rank) <= upto then refresh_rank_slow t rank upto

(* Column access, bus serialisation, energy and latency accounting — the
   tail every issue path shares once the row decision has produced
   [row_ready].  Inlined into both callers so the float pipeline (and its
   operation order, which the byte-identity contract pins) is textually
   single-sourced. *)
let[@inline] complete t (op : Access.op) ~bank ~arrival ~row_ready =
  let fl = t.fl in
  let cas_done = row_ready +. fl.c_t_cas_ns in
  let bus_start = Float.max cas_done fl.bus_free in
  let bus_end = bus_start +. fl.c_t_burst_ns in
  fl.bus_free <- bus_end;
  t.accesses <- t.accesses + 1;
  (match op with
  | Access.Read ->
    t.reads <- t.reads + 1;
    fl.burst_energy_nj <- fl.burst_energy_nj +. t.e_burst_read_nj;
    Array.unsafe_set t.bank_ready bank bus_end
  | Access.Write ->
    t.writes <- t.writes + 1;
    fl.burst_energy_nj <- fl.burst_energy_nj +. t.e_burst_write_nj;
    (* Write recovery: the cells absorb the data after the burst. *)
    Array.unsafe_set t.bank_ready bank (bus_end +. fl.c_t_wr_ns));
  fl.latency_sum <- fl.latency_sum +. (bus_end -. arrival);
  if t.latencies_n = Array.length t.latencies then begin
    let bigger = Array.make (2 * t.latencies_n) 0. in
    Array.blit t.latencies 0 bigger 0 t.latencies_n;
    t.latencies <- bigger
  end;
  Array.unsafe_set t.latencies t.latencies_n (bus_end -. arrival);
  t.latencies_n <- t.latencies_n + 1;
  let slot = t.inflight_head + t.inflight_n in
  let slot = if slot >= t.window then slot - t.window else slot in
  Array.unsafe_set t.inflight slot bus_end;
  t.inflight_n <- t.inflight_n + 1

(* The access kernel, on flat coordinates ([bank] = rank * banks + bank):
   the FCFS path reaches it via [Address_mapping.decode_packed] without
   materialising a [coords] record. *)
let issue_flat t (op : Access.op) ~bank ~row =
  admit t;
  let fl = t.fl in
  let arrival = fl.now in
  (* [bank] is non-negative on every pipeline path; the division is kept
     for the representable-but-never-produced negative case *)
  refresh_rank t
    (if bank >= 0 then bank lsr t.banks_shift else bank / t.org.Org.banks)
    arrival;
  let start = Float.max arrival (Array.unsafe_get t.bank_ready bank) in
  let row_ready =
    if Array.unsafe_get t.open_row bank = row then begin
      t.row_hits <- t.row_hits + 1;
      start
    end
    else begin
      t.row_misses <- t.row_misses + 1;
      t.activations <- t.activations + 1;
      fl.act_pre_energy_nj <-
        fl.act_pre_energy_nj +. fl.c_e_act_pre_nj;
      let penalty =
        if Array.unsafe_get t.open_row bank >= 0 then t.penalty_over_open_ns
        else t.penalty_no_open_ns
      in
      Array.unsafe_set t.open_row bank row;
      start +. penalty
    end
  in
  (* under the closed-page policy the row is precharged right after the
     column access: the next access always re-activates but never pays
     tRP (the precharge overlaps idle time) *)
  (match t.row_policy with
  | Closed_page -> Array.unsafe_set t.open_row bank (-1)
  | Open_page -> ());
  complete t op ~bank ~arrival ~row_ready

(* The same kernel with the row-buffer decision replaced by a precomputed
   class: 0 = row hit, 1 = miss with no open row, 2 = miss over an open
   row.  The class is the only part of the access that reads per-bank
   row-buffer state, so a bank-sharded first pass (see {!Controller_team})
   can compute it in parallel and replay the global timing/energy chain
   here — same float operations in the same order as [issue_flat], hence
   byte-identical stats.  [t.open_row] is not consulted or maintained:
   a controller driven through this entry point owns no row decisions. *)
(* [@inline]: called once per event from [Controller_team]'s replay
   sweep; inlining the whole kernel (admit, refresh check, float chain)
   into that loop keeps the controller fields in registers across
   events. *)
let[@inline] issue_classified t (op : Access.op) ~bank ~cls =
  admit t;
  let fl = t.fl in
  let arrival = fl.now in
  refresh_rank t (bank lsr t.banks_shift) arrival;
  let start = Float.max arrival (Array.unsafe_get t.bank_ready bank) in
  let row_ready =
    if cls = 0 then begin
      t.row_hits <- t.row_hits + 1;
      start
    end
    else begin
      t.row_misses <- t.row_misses + 1;
      t.activations <- t.activations + 1;
      fl.act_pre_energy_nj <-
        fl.act_pre_energy_nj +. fl.c_e_act_pre_nj;
      let penalty =
        if cls = 2 then t.penalty_over_open_ns else t.penalty_no_open_ns
      in
      start +. penalty
    end
  in
  complete t op ~bank ~arrival ~row_ready

let issue t op (c : Address_mapping.coords) =
  issue_flat t op ~bank:((c.rank * t.org.Org.banks) + c.bank) ~row:c.row

(* FR-FCFS selection: among the buffered transactions, prefer one whose
   bank has its row open (a row hit); ties break to the oldest. *)
let pick_ready t =
  let bank_of (p : pending) = (p.coords.rank * t.org.Org.banks) + p.coords.bank in
  let is_hit p = t.open_row.(bank_of p) = p.coords.row in
  let rec find_hit acc = function
    | [] -> None
    | p :: rest when is_hit p -> Some (p, List.rev_append acc rest)
    | p :: rest -> find_hit (p :: acc) rest
  in
  match find_hit [] t.reorder with
  | Some (p, rest) -> (p, rest)
  | None -> (
    match t.reorder with
    | p :: rest -> (p, rest)
    | [] -> invalid_arg "Controller.pick_ready: empty")

let schedule_one t =
  let p, rest = pick_ready t in
  t.reorder <- rest;
  issue t p.op p.coords

let submit_ref t ~addr ~(op : Access.op) =
  match t.scheduler with
  | Fcfs ->
    let packed = Address_mapping.decode_packed t.scheme t.org addr in
    issue_flat t op ~bank:(packed mod t.nbanks) ~row:(packed / t.nbanks)
  | Fr_fcfs depth ->
    let coords = Address_mapping.decode t.scheme t.org addr in
    t.reorder <- t.reorder @ [ { op; coords } ];
    if List.length t.reorder >= depth then schedule_one t

let submit t (a : Access.t) = submit_ref t ~addr:a.addr ~op:a.op

(* Same accessor hoisting as [Hierarchy.consume]: outside the
   debug-checked mode, read the batch arrays directly so the per-element
   [debug_checks] atomic load stays out of the loop. *)
let consume t batch ~first ~n =
  let module Sink = Nvsc_memtrace.Sink in
  if Sink.checks_enabled () then
    for i = first to first + n - 1 do
      submit_ref t ~addr:(Sink.Batch.addr batch i) ~op:(Sink.Batch.op batch i)
    done
  else begin
    let addrs = Sink.Batch.addrs batch and ops = Sink.Batch.ops batch in
    for i = first to first + n - 1 do
      let op =
        if Bigarray.Array1.unsafe_get ops i <> '\000' then Access.Write
        else Access.Read
      in
      submit_ref t ~addr:(Bigarray.Array1.unsafe_get addrs i) ~op
    done
  end

let sink ?name t = Nvsc_memtrace.Sink.create ?name (consume t)

let flush t =
  while t.reorder <> [] do
    schedule_one t
  done

let elapsed_ns t =
  flush t;
  let m = ref t.fl.bus_free in
  for i = 0 to t.inflight_n - 1 do
    let slot = (t.inflight_head + i) mod t.window in
    if t.inflight.(slot) > !m then m := t.inflight.(slot)
  done;
  !m

type stats = {
  accesses : int;
  reads : int;
  writes : int;
  row_hits : int;
  row_misses : int;
  activations : int;
  refreshes : int;
  elapsed_ns : float;
  burst_energy_nj : float;
  act_pre_energy_nj : float;
  refresh_energy_nj : float;
  background_energy_nj : float;
  total_energy_nj : float;
  avg_power_w : float;
  avg_latency_ns : float;
  p50_latency_ns : float;
  p95_latency_ns : float;
  p99_latency_ns : float;
  bandwidth_gbs : float;
  row_hit_rate : float;
}

(* One sorted copy serves all three percentiles; Float.compare avoids the
   polymorphic-comparison cost on large traces. *)
let latency_percentiles t =
  if t.latencies_n = 0 then (0., 0., 0.)
  else begin
    let sorted = Array.sub t.latencies 0 t.latencies_n in
    Array.sort Float.compare sorted;
    let at p =
      let rank = p *. float_of_int (t.latencies_n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then sorted.(lo)
      else begin
        let frac = rank -. float_of_int lo in
        (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
      end
    in
    (at 0.5, at 0.95, at 0.99)
  end

let stats t =
  let elapsed = elapsed_ns t in
  let p50, p95, p99 = latency_percentiles t in
  let background_energy_nj = t.power.Power_params.p_background_w *. elapsed in
  let total =
    t.fl.burst_energy_nj +. t.fl.act_pre_energy_nj +. t.fl.refresh_energy_nj
    +. background_energy_nj
  in
  let avg_power_w = if elapsed > 0. then total /. elapsed else 0. in
  let bytes = float_of_int (t.accesses * t.org.Org.line_bytes) in
  {
    accesses = t.accesses;
    reads = t.reads;
    writes = t.writes;
    row_hits = t.row_hits;
    row_misses = t.row_misses;
    activations = t.activations;
    refreshes = t.refreshes;
    elapsed_ns = elapsed;
    burst_energy_nj = t.fl.burst_energy_nj;
    act_pre_energy_nj = t.fl.act_pre_energy_nj;
    refresh_energy_nj = t.fl.refresh_energy_nj;
    background_energy_nj;
    total_energy_nj = total;
    avg_power_w;
    avg_latency_ns =
      (if t.accesses = 0 then 0.
       else t.fl.latency_sum /. float_of_int t.accesses);
    p50_latency_ns = p50;
    p95_latency_ns = p95;
    p99_latency_ns = p99;
    bandwidth_gbs = (if elapsed > 0. then bytes /. elapsed else 0.);
    row_hit_rate =
      (if t.accesses = 0 then 0.
       else float_of_int t.row_hits /. float_of_int t.accesses);
  }
