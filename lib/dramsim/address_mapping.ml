type scheme = Row_bank_rank_col | Row_rank_bank_col | Line_interleave

type coords = { rank : int; bank : int; row : int; col : int }

let decode scheme org addr =
  let line = addr / org.Org.line_bytes in
  let lines_per_row = Org.lines_per_row org in
  let line = line mod (org.ranks * org.banks * org.rows * lines_per_row) in
  match scheme with
  | Row_bank_rank_col ->
    let col = line mod lines_per_row in
    let rest = line / lines_per_row in
    let rank = rest mod org.ranks in
    let rest = rest / org.ranks in
    let bank = rest mod org.banks in
    let row = rest / org.banks in
    { rank; bank; row; col }
  | Row_rank_bank_col ->
    let col = line mod lines_per_row in
    let rest = line / lines_per_row in
    let bank = rest mod org.banks in
    let rest = rest / org.banks in
    let rank = rest mod org.ranks in
    let row = rest / org.ranks in
    { rank; bank; row; col }
  | Line_interleave ->
    let rank = line mod org.ranks in
    let rest = line / org.ranks in
    let bank = rest mod org.banks in
    let rest = rest / org.banks in
    let col = rest mod lines_per_row in
    let row = rest / lines_per_row in
    { rank; bank; row; col }

(* Allocation-free decode for the controller's FCFS hot path: the same
   rank/bank/row as [decode], packed as row * total_banks + flat_bank
   (flat_bank = rank * banks + bank).  The column never influences timing
   at line granularity, so it is dropped rather than packed. *)
let decode_packed scheme org addr =
  let line = addr / org.Org.line_bytes in
  let lines_per_row = Org.lines_per_row org in
  let line = line mod (org.ranks * org.banks * org.rows * lines_per_row) in
  let nbanks = org.ranks * org.banks in
  match scheme with
  | Row_bank_rank_col ->
    let rest = line / lines_per_row in
    let rank = rest mod org.ranks in
    let rest = rest / org.ranks in
    let bank = rest mod org.banks in
    let row = rest / org.banks in
    (row * nbanks) + (rank * org.banks) + bank
  | Row_rank_bank_col ->
    let rest = line / lines_per_row in
    let bank = rest mod org.banks in
    let rest = rest / org.banks in
    let rank = rest mod org.ranks in
    let row = rest / org.ranks in
    (row * nbanks) + (rank * org.banks) + bank
  | Line_interleave ->
    let rank = line mod org.ranks in
    let rest = line / org.ranks in
    let bank = rest mod org.banks in
    let rest = rest / org.banks in
    let row = rest / lines_per_row in
    (row * nbanks) + (rank * org.banks) + bank

let scheme_name = function
  | Row_bank_rank_col -> "row:bank:rank:col"
  | Row_rank_bank_col -> "row:rank:bank:col"
  | Line_interleave -> "line-interleave"

let all_schemes = [ Row_bank_rank_col; Row_rank_bank_col; Line_interleave ]
