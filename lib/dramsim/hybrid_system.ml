module Access = Nvsc_memtrace.Access
module Technology = Nvsc_nvram.Technology

type side = Dram_side | Nvram_side

type t = {
  dram : Controller.t;
  nvram : Controller.t;
  placement : int -> side;
  mutable accesses : int;
  mutable to_nvram : int;
  mutable nvram_writes : int;
  mutable writes : int;
}

let half_org org =
  Org.make ~ranks:(Stdlib.max 1 (org.Org.ranks / 2)) ~banks:org.Org.banks
    ~rows:org.Org.rows ~cols:org.Org.cols
    ~device_width_bits:org.Org.device_width_bits
    ~bus_width_bits:org.Org.bus_width_bits ~line_bytes:org.Org.line_bytes ()

let create ?(org = Org.paper) ?scheme ?window ~nvram ~placement () =
  if not (Technology.is_nvram nvram) then
    invalid_arg "Hybrid_system.create: nvram side must be an NVRAM technology";
  let side_org = half_org org in
  {
    dram =
      Controller.create ~org:side_org ?scheme ?window
        ~tech:(Technology.get Technology.DDR3) ();
    nvram = Controller.create ~org:side_org ?scheme ?window ~tech:nvram ();
    placement;
    accesses = 0;
    to_nvram = 0;
    nvram_writes = 0;
    writes = 0;
  }

let access_ref t ~addr ~(op : Access.op) =
  t.accesses <- t.accesses + 1;
  let is_write = op = Access.Write in
  if is_write then t.writes <- t.writes + 1;
  match t.placement addr with
  | Dram_side -> Controller.submit_ref t.dram ~addr ~op
  | Nvram_side ->
    t.to_nvram <- t.to_nvram + 1;
    if is_write then t.nvram_writes <- t.nvram_writes + 1;
    Controller.submit_ref t.nvram ~addr ~op

let access t (a : Access.t) = access_ref t ~addr:a.addr ~op:a.op

let consume t batch ~first ~n =
  let module Batch = Nvsc_memtrace.Sink.Batch in
  for i = first to first + n - 1 do
    access_ref t ~addr:(Batch.addr batch i) ~op:(Batch.op batch i)
  done

let sink ?name t = Nvsc_memtrace.Sink.create ?name (consume t)

type stats = {
  dram : Controller.stats;
  nvram : Controller.stats;
  accesses : int;
  nvram_fraction : float;
  nvram_write_fraction : float;
  elapsed_ns : float;
  total_energy_nj : float;
  avg_power_w : float;
  avg_latency_ns : float;
}

let stats (t : t) =
  let d = Controller.stats t.dram in
  let n = Controller.stats t.nvram in
  (* The sides proceed concurrently; the joint run lasts as long as the
     busier side.  Each side's background energy is re-charged over the
     joint makespan (its circuitry is powered for the whole run). *)
  let elapsed = Float.max d.Controller.elapsed_ns n.Controller.elapsed_ns in
  let re_background (s : Controller.stats) =
    if s.Controller.elapsed_ns > 0. then
      s.Controller.background_energy_nj /. s.Controller.elapsed_ns *. elapsed
    else s.Controller.background_energy_nj
  in
  let dynamic (s : Controller.stats) =
    s.Controller.burst_energy_nj +. s.Controller.act_pre_energy_nj
    +. s.Controller.refresh_energy_nj
  in
  let total = dynamic d +. dynamic n +. re_background d +. re_background n in
  let frac a b = if b = 0 then 0. else float_of_int a /. float_of_int b in
  let latency =
    if t.accesses = 0 then 0.
    else
      ((float_of_int d.Controller.accesses *. d.Controller.avg_latency_ns)
      +. (float_of_int n.Controller.accesses *. n.Controller.avg_latency_ns))
      /. float_of_int t.accesses
  in
  {
    dram = d;
    nvram = n;
    accesses = t.accesses;
    nvram_fraction = frac t.to_nvram t.accesses;
    nvram_write_fraction = frac t.nvram_writes t.writes;
    elapsed_ns = elapsed;
    total_energy_nj = total;
    avg_power_w = (if elapsed > 0. then total /. elapsed else 0.);
    avg_latency_ns = latency;
  }

let compare_designs ?(org = Org.paper) ?scheme ?window ~nvram ~placement
    ~replay () =
  (* all-DRAM and all-NVRAM at full capacity *)
  let single tech =
    let c = Controller.create ~org ?scheme ?window ~tech () in
    let s = Controller.sink ~name:("all-" ^ tech.Technology.name) c in
    replay s;
    Nvsc_memtrace.Sink.flush s;
    Controller.stats c
  in
  let d = single (Technology.get Technology.DDR3) in
  let n = single nvram in
  let h = create ~org ?scheme ?window ~nvram ~placement () in
  let hsink = sink ~name:"hybrid" h in
  replay hsink;
  Nvsc_memtrace.Sink.flush hsink;
  let hs = stats h in
  let base = d.Controller.avg_power_w in
  [
    ("all-DRAM", 1.0, d.Controller.avg_latency_ns);
    ( "all-" ^ nvram.Technology.name,
      n.Controller.avg_power_w /. base,
      n.Controller.avg_latency_ns );
    ("hybrid", hs.avg_power_w /. base, hs.avg_latency_ns);
  ]
