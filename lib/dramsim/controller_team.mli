(** Bank-sharded memory-controller pipeline.

    The controller's row-buffer decision is bank-local — for a fixed
    arrival order it depends only on the accessed bank's own reference
    subsequence — while the timing/energy chain (admission window,
    refresh, bank-ready and shared-bus serialisation) advances one global
    clock.  The team therefore fans every delivered batch across
    classifier worker domains behind SPSC rings (worker [s] owns the flat
    banks with [bank land (shards - 1) = s] and tracks their open rows
    privately), then replays the recorded per-reference row classes
    serially through {!Controller.issue_classified} via a keyed k-way
    merge on a dedicated replay domain — slice [i]'s replay overlaps
    slice [i+1]'s classification, so the steady-state cost per reference
    is the slower stage, not the sum.  Stats are byte-identical to a
    serial {!Controller} under FCFS for every shard count; see DESIGN.md
    "Sharded simulation" for the proof sketch.

    FCFS only: [Fr_fcfs] reorders transactions using cross-bank state at
    issue time, which breaks the bank-local decomposition. *)

type t

val shards_for : ?org:Org.t -> int -> int
(** Largest usable shard count at most the request: rounded down to a
    power of two and capped at the organisation's total bank count. *)

val create :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  shards:int ->
  tech:Nvsc_nvram.Technology.t ->
  unit ->
  t
(** A team of [shards] classifier domains (a power of two, at most the
    total bank count) in front of one FCFS replay controller.  Parameter
    defaults match {!Controller.create}. *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Classify a batch slice of transactions in order (the sink-consumer
    shape).  Returns once every worker has finished the slice, so the
    caller may recycle the batch — the plain sink contract. *)

val sink : ?name:string -> t -> Nvsc_memtrace.Sink.t
(** A sink feeding this team via {!consume}. *)

val finish : t -> unit
(** Stop the workers and join them.  Idempotent; implied by {!stats}. *)

val stats : t -> Controller.stats
(** Finish the team (waiting for the streaming replay to drain) and
    return the controller statistics — byte-identical to a serial FCFS
    {!Controller} over the same reference stream.  On a team that never
    consumed (probe-only), any probed events are replayed here in one
    batch instead. *)

val fed : t -> int
(** References classified so far. *)

val shards : t -> int

val ring_stats : t -> Nvsc_team.Ring.stats array
(** Per-shard transport counters (pushes, producer stalls, consumer
    stalls). *)

val classify_probe :
  t -> sid:int -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int ->
  base:int -> unit
(** Run worker [sid]'s classification of a slice inline on the calling
    domain (no rings, no barrier) — the kernel bench's isolated
    critical-path sampling hook.  Mutates worker state exactly as the
    worker domain would; never mix with {!consume} on the same team. *)

val replay_pending : t -> unit
(** Replay any classified-but-unreplayed events into the controller in
    one batch on the calling domain — the probe path's replay stage,
    exposed so the kernel bench can time the merge in isolation (no
    stats construction attached).  Implied by {!stats}; a no-op once
    everything has been replayed. *)

val worker_busy_ns : t -> int array
(** Per-worker classification busy time (monotonic ns, summed over
    slices).  On a machine with one core per worker the maximum entry is
    the classify stage's critical path. *)

val replay_busy_ns : t -> int
(** Replay-domain busy time (monotonic ns, summed over slices): the
    serial stage's cost, the pipeline's throughput bound when it exceeds
    the classify critical path. *)

val export_metrics : t -> unit
(** Accumulate {!ring_stats} into the obs metrics registry
    ([dram.team.ring.*]) for [--profile] and [client stats]. *)
