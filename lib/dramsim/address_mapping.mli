(** Physical-address decomposition into (rank, bank, row, column).

    DRAMSim2 offers several interleaving schemes; the three that matter for
    this study are reproduced.  The choice controls how much rank/bank-level
    parallelism a streaming access pattern enjoys versus how much row-buffer
    locality it keeps. *)

type scheme =
  | Row_bank_rank_col
      (** address bits, high to low: row | bank | rank | column.  A
          sequential stream sweeps a whole row in one (rank,bank) before
          moving to the next rank: strong row locality, rank parallelism at
          row granularity.  DRAMSim2's default-like scheme; ours too. *)
  | Row_rank_bank_col
      (** row | rank | bank | column: like the above with bank and rank
          swapped; sequential rows land in neighbouring banks of the same
          rank first. *)
  | Line_interleave
      (** row | column-high | bank | rank | line-offset: consecutive cache
          lines round-robin across ranks then banks — maximal parallelism,
          minimal row locality. *)

type coords = { rank : int; bank : int; row : int; col : int }

val decode : scheme -> Org.t -> int -> coords
(** [decode scheme org addr] maps a byte address (wrapped modulo device
    capacity) to device coordinates.  The column is the line-granularity
    column index (column of the first beat of the line burst). *)

val decode_packed : scheme -> Org.t -> int -> int
(** Like {!decode} but allocation-free: returns
    [row * total_banks + rank * banks + bank] as one immediate int (the
    column, which never influences line-granularity timing, is dropped).
    Agrees with {!decode} on rank, bank and row for every address. *)

val scheme_name : scheme -> string

val all_schemes : scheme list
