(** Memory-system front end (the DRAMSim2 "memory system" module): accepts
    a main-memory trace — produced by the cache hierarchy — and reports
    simulated power for a chosen memory technology. *)

type t

val create :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  tech:Nvsc_nvram.Technology.t ->
  unit ->
  t

val access : t -> Nvsc_memtrace.Access.t -> unit
(** Feed one trace record. *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Feed a batch slice of trace records in order. *)

val sink : ?name:string -> t -> Nvsc_memtrace.Sink.t
(** A sink feeding this system via {!consume}. *)

val stats : t -> Controller.stats

val tech : t -> Nvsc_nvram.Technology.t

val run_trace :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  tech:Nvsc_nvram.Technology.t ->
  Nvsc_memtrace.Access.t list ->
  Controller.stats
(** One-shot convenience: simulate a whole materialised trace and return
    the stats (list-compat shim; tests only — hot paths use {!sink}). *)

val compare_technologies :
  ?org:Org.t ->
  ?scheme:Address_mapping.scheme ->
  ?window:int ->
  ?row_policy:Controller.row_policy ->
  ?scheduler:Controller.scheduler ->
  ?jobs:int ->
  ?bank_shards:int ->
  techs:Nvsc_nvram.Technology.t list ->
  replay:(Nvsc_memtrace.Sink.t -> unit) ->
  unit ->
  (Nvsc_nvram.Technology.t * Controller.stats) list
(** Replay the same trace into a fresh memory system per technology —
    the Table VI experiment.  [replay sink] must drive [sink] with the
    identical access sequence on every call (batched delivery via
    {!Nvsc_memtrace.Trace_log.replay_batch}, or per-access pushes); the
    sink is flushed after each replay.  [jobs > 1] simulates the
    technologies on a domain pool (each worker owns a private controller;
    [replay] must then be safe to run concurrently against distinct
    sinks, which trace-log batch replay is); results keep input order and
    are byte-identical to the serial path.  [bank_shards > 1] runs each
    FCFS simulation through the bank-sharded {!Controller_team} (clamped
    by {!Controller_team.shards_for}; ignored under [Fr_fcfs]) — again
    byte-identical by construction. *)

val normalized_power :
  (Nvsc_nvram.Technology.t * Controller.stats) list ->
  (Nvsc_nvram.Technology.t * float) list
(** Average power of each entry normalised by the DDR3 entry (which must be
    present). *)
