module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink
module Technology = Nvsc_nvram.Technology
module Pool = Nvsc_team.Pool
module Ring = Nvsc_team.Ring

(* Bank-sharded memory-controller pipeline.

   [Controller.submit_ref] decomposes into two halves with very different
   data dependencies:

   - the row-buffer decision (hit, miss-no-open-row, miss-over-open-row)
     reads and writes only the accessed bank's open-row register, so for
     a fixed arrival order it is a pure function of that bank's reference
     subsequence — bank-local, hence shardable;
   - everything else (admission window, refresh catch-up, bank-ready /
     shared-bus serialisation, energy and latency accounting) advances
     one global clock and must see the references in order — serial.

   The team splits accordingly.  [shards] classifier workers sit behind
   SPSC rings; every delivered batch slice is announced to all of them,
   and worker [s] decodes each reference (shift/mask — every [Org] field
   is a power of two), keeps private open-row registers for the flat
   banks with [bank land (shards - 1) = s], and appends one packed event
   per owned reference:

     event = (global_idx lsl (bank_bits + 3))
             lor (bank lsl 3) lor (cls lsl 1) lor write_bit

   Global indices are strictly increasing within a worker and disjoint
   across workers (each reference has exactly one home bank), so a k-way
   min-merge on the raw event words restores the arrival order exactly.
   The merge feeds [Controller.issue_classified], which replays the
   serial half with the same float operations in the same order as
   [submit_ref] — stats are byte-identical to a serial controller for
   every shard count (DESIGN.md "Sharded simulation").

   Scheduling discipline: FCFS only.  [Fr_fcfs] reorders transactions
   based on cross-bank row state at issue time, which breaks the
   bank-local classification argument, so the team does not offer it. *)

type descriptor = {
  d_batch : Sink.Batch.t;
  d_first : int;
  d_n : int; (* -1 = shutdown sentinel *)
  d_base : int; (* global index of record [d_first] *)
}

(* One classified slice handed to the replay domain: a snapshot of every
   worker's event array plus the per-worker high watermark at the slice
   barrier.  The pointers stay valid even if a worker later grows its
   array (growth copies and abandons, never mutates below the watermark),
   and the barrier mutex + ring atomics give the happens-before edges
   that publish the events to the replay domain. *)
type rdesc = {
  r_evs : int array array;
  r_hi : int array;
  r_base : int; (* global index of the slice's first reference *)
  r_n : int; (* slice size — exactly the event count across workers *)
  r_stop : bool;
}

type worker_state = {
  sid : int;
  open_row : int array; (* full nbanks width; only owned banks touched *)
  mutable ev : int array;
  mutable ev_n : int;
  mutable busy_ns : int; (* classification time, monotonic clock *)
}

type t = {
  shards : int;
  shard_mask : int;
  org : Org.t;
  scheme : Address_mapping.scheme;
  row_policy : Controller.row_policy;
  ctl : Controller.t; (* the serial-replay half *)
  rings : descriptor Ring.t array;
  replay_ring : rdesc Ring.t;
  (* replay cursor: per-worker low watermark, owned by the replay domain
     while it runs and by [stats]'s fallback merge afterwards *)
  replay_lo : int array;
  mutable replay_busy_ns : int;
  pool : Pool.t;
  mutable tickets : unit Pool.ticket array;
  mutable replay_ticket : unit Pool.ticket option;
  workers : worker_state array;
  (* per-slice completion barrier: [consume] returns only after every
     worker has classified the slice, so the producer may recycle the
     batch afterwards (the plain [Sink] contract) *)
  done_mu : Mutex.t;
  done_cv : Condition.t;
  mutable done_count : int;
  mutable fed : int;
  mutable finished : bool;
  mutable merged : bool;
  (* shift/mask decode, valid because every Org field is a power of two *)
  line_shift : int;
  cap_mask : int; (* total lines - 1 *)
  lpr_shift : int; (* log2 lines-per-row *)
  ranks_mask : int;
  ranks_shift : int;
  banks_mask : int;
  banks_shift : int;
  nbanks : int;
  bank_bits : int;
}

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let shards_for ?(org = Org.paper) requested =
  let down_pow2 n =
    let rec go k = if 2 * k > n then k else go (2 * k) in
    if n <= 1 then 1 else go 1
  in
  min (down_pow2 requested) (Org.total_banks org)

let ring_depth = 8

let create ?(org = Org.paper) ?(scheme = Address_mapping.Row_bank_rank_col)
    ?window ?row_policy ~shards ~tech () =
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg "Controller_team.create: shard count must be a power of two";
  let nbanks = Org.total_banks org in
  if shards > nbanks then
    invalid_arg "Controller_team.create: more shards than banks";
  let ctl =
    Controller.create ~org ~scheme ?window ?row_policy
      ~scheduler:Controller.Fcfs ~tech ()
  in
  let workers =
    Array.init shards (fun sid ->
        {
          sid;
          open_row = Array.make nbanks (-1);
          ev = Array.make 4096 0;
          ev_n = 0;
          busy_ns = 0;
        })
  in
  let dummy = { d_batch = Sink.Batch.create 1; d_first = 0; d_n = 0; d_base = 0 } in
  let rings =
    Array.init shards (fun _ -> Ring.create ~capacity:ring_depth dummy)
  in
  let rdummy = { r_evs = [||]; r_hi = [||]; r_base = 0; r_n = 0; r_stop = true } in
  let row_policy =
    match row_policy with Some p -> p | None -> Controller.Open_page
  in
  let team =
    {
      shards;
      shard_mask = shards - 1;
      org;
      scheme;
      row_policy;
      ctl;
      rings;
      replay_ring = Ring.create ~capacity:ring_depth rdummy;
      replay_lo = Array.make shards 0;
      replay_busy_ns = 0;
      (* one domain per classifier plus one for the replay stage — all
         long-running jobs, so each needs its own pool slot *)
      pool = Pool.create ~jobs:(shards + 1) ();
      tickets = [||];
      replay_ticket = None;
      workers;
      done_mu = Mutex.create ();
      done_cv = Condition.create ();
      done_count = 0;
      fed = 0;
      finished = false;
      merged = false;
      line_shift = log2 org.Org.line_bytes;
      cap_mask =
        (org.Org.ranks * org.Org.banks * org.Org.rows * Org.lines_per_row org)
        - 1;
      lpr_shift = log2 (Org.lines_per_row org);
      ranks_mask = org.Org.ranks - 1;
      ranks_shift = log2 org.Org.ranks;
      banks_mask = org.Org.banks - 1;
      banks_shift = log2 org.Org.banks;
      nbanks;
      bank_bits = log2 nbanks;
    }
  in
  team

(* (flat bank, row) via shifts — equal to [Address_mapping.decode_packed]
   for every non-negative address because all the divisors are powers of
   two.  Returns [bank lor (row lsl bank_bits)] packed in one int. *)
let[@inline] decode_fast t addr =
  let line = (addr lsr t.line_shift) land t.cap_mask in
  match t.scheme with
  | Address_mapping.Row_bank_rank_col ->
    let rest = line lsr t.lpr_shift in
    let rank = rest land t.ranks_mask in
    let rest = rest lsr t.ranks_shift in
    let bank = rest land t.banks_mask in
    let row = rest lsr t.banks_shift in
    (rank lsl t.banks_shift) lor bank lor (row lsl t.bank_bits)
  | Address_mapping.Row_rank_bank_col ->
    let rest = line lsr t.lpr_shift in
    let bank = rest land t.banks_mask in
    let rest = rest lsr t.banks_shift in
    let rank = rest land t.ranks_mask in
    let row = rest lsr t.ranks_shift in
    (rank lsl t.banks_shift) lor bank lor (row lsl t.bank_bits)
  | Address_mapping.Line_interleave ->
    let rank = line land t.ranks_mask in
    let rest = line lsr t.ranks_shift in
    let bank = rest land t.banks_mask in
    let row = (rest lsr t.banks_shift) lsr t.lpr_shift in
    (rank lsl t.banks_shift) lor bank lor (row lsl t.bank_bits)

(* Negative addresses keep [decode_packed]'s round-toward-zero division
   semantics (never produced by the pipeline, but representable). *)
let[@inline never] decode_slow t addr =
  let packed = Address_mapping.decode_packed t.scheme t.org addr in
  (packed mod t.nbanks) lor ((packed / t.nbanks) lsl t.bank_bits)

let[@inline] push_event w e =
  let i = w.ev_n in
  if i = Array.length w.ev then begin
    let bigger = Array.make (2 * i) 0 in
    Array.blit w.ev 0 bigger 0 i;
    w.ev <- bigger
  end;
  Array.unsafe_set w.ev i e;
  w.ev_n <- i + 1

(* Classify one owned reference: the same open-row transitions as
   [Controller.issue_flat], recorded instead of timed. *)
let[@inline] classify t w ~idx ~bank ~row ~write =
  let prev = Array.unsafe_get w.open_row bank in
  let cls = if prev = row then 0 else if prev >= 0 then 2 else 1 in
  (match t.row_policy with
  | Controller.Closed_page -> Array.unsafe_set w.open_row bank (-1)
  | Controller.Open_page ->
    if cls <> 0 then Array.unsafe_set w.open_row bank row);
  push_event w
    ((idx lsl (t.bank_bits + 3))
    lor (bank lsl 3)
    lor (cls lsl 1)
    lor (if write then 1 else 0))

let classify_slice t w batch ~first ~n ~base =
  if Sink.checks_enabled () then
    for i = first to first + n - 1 do
      let addr = Sink.Batch.addr batch i in
      let br = if addr >= 0 then decode_fast t addr else decode_slow t addr in
      let bank = br land (t.nbanks - 1) in
      if bank land t.shard_mask = w.sid then
        classify t w ~idx:(base + i - first) ~bank ~row:(br lsr t.bank_bits)
          ~write:
            (match Sink.Batch.op batch i with
            | Access.Read -> false
            | Access.Write -> true)
    done
  else begin
    let addrs = Sink.Batch.addrs batch and ops = Sink.Batch.ops batch in
    let off = base - first in
    for i = first to first + n - 1 do
      let addr = Bigarray.Array1.unsafe_get addrs i in
      let br = if addr >= 0 then decode_fast t addr else decode_slow t addr in
      let bank = br land (t.nbanks - 1) in
      if bank land t.shard_mask = w.sid then
        classify t w ~idx:(off + i) ~bank ~row:(br lsr t.bank_bits)
          ~write:(Bigarray.Array1.unsafe_get ops i <> '\000')
    done
  end

(* Calibration probe: run worker [sid]'s classification of a slice inline
   on the calling domain — no rings, no barrier, no domain timesharing —
   so the kernel bench can sample each worker's busy time in isolation.
   Mutates the worker's state exactly as the domain would; do not mix
   with [consume] on the same team. *)
let classify_probe t ~sid batch ~first ~n ~base =
  Sink.Batch.check_slice batch ~first ~n;
  classify_slice t t.workers.(sid) batch ~first ~n ~base

let worker t i () =
  let ring = t.rings.(i) and w = t.workers.(i) in
  let rec loop () =
    let d = Ring.pop ring in
    if d.d_n >= 0 then begin
      let t0 = Nvsc_obs.Clock.now_ns () in
      classify_slice t w d.d_batch ~first:d.d_first ~n:d.d_n ~base:d.d_base;
      w.busy_ns <- w.busy_ns + (Nvsc_obs.Clock.now_ns () - t0);
      Mutex.lock t.done_mu;
      t.done_count <- t.done_count + 1;
      if t.done_count = t.shards then Condition.signal t.done_cv;
      Mutex.unlock t.done_mu;
      loop ()
    end
  in
  loop ()

(* Replay the ranges [lo.(j), hi.(j)) of [evs] in arrival order (the
   serial-replay half).  The event word's high field is the global
   reference index and each index in [base, base + n) was classified by
   exactly one worker, so scattering the events into a dense scratch and
   sweeping it sequentially reconstructs arrival order with no
   comparisons — a k-way min-merge pays a data-dependent branch
   mispredict per event, which dominated the stage at k > 1.  The
   scatter runs in index blocks small enough that the dense window stays
   cache-resident even when a big slice's k passes would otherwise
   stream it from memory k times; each worker's events are ascending, so
   the block boundary is one predictable compare per event.  The scatter
   store stays bounds-checked: a corrupt index raises instead of
   scribbling. *)
let rblock = 16384

let replay_ranges t scratch evs lo hi ~base ~n =
  let bn_cap = min n rblock in
  if Array.length !scratch < bn_cap then scratch := Array.make bn_cap 0;
  let dense = !scratch in
  let shift = t.bank_bits + 3 in
  let bank_mask = t.nbanks - 1 in
  let k = Array.length evs in
  let b = ref 0 in
  while !b < n do
    let bn = min rblock (n - !b) in
    let blo = base + !b in
    let bhi = blo + bn in
    for j = 0 to k - 1 do
      let ev = evs.(j) in
      let stop = Array.unsafe_get hi j in
      let i = ref (Array.unsafe_get lo j) in
      let in_block = ref true in
      while !in_block && !i < stop do
        let e = Array.unsafe_get ev !i in
        let idx = e lsr shift in
        if idx < bhi then begin
          dense.(idx - blo) <- e;
          incr i
        end
        else in_block := false
      done;
      Array.unsafe_set lo j !i
    done;
    for s = 0 to bn - 1 do
      let e = Array.unsafe_get dense s in
      Controller.issue_classified t.ctl
        (if e land 1 = 1 then Access.Write else Access.Read)
        ~bank:((e lsr 3) land bank_mask)
        ~cls:((e lsr 1) land 3)
    done;
    b := !b + bn
  done

(* The streaming replay stage: merges each slice's classified events into
   the controller while the classifier workers take the next slice, so in
   steady state the team's cost per reference is the slower stage, not
   the sum.  Owns [t.replay_lo] until joined. *)
let replay_worker t () =
  let scratch = ref [||] in
  let rec loop () =
    let d = Ring.pop t.replay_ring in
    if not d.r_stop then begin
      let t0 = Nvsc_obs.Clock.now_ns () in
      replay_ranges t scratch d.r_evs t.replay_lo d.r_hi ~base:d.r_base
        ~n:d.r_n;
      t.replay_busy_ns <- t.replay_busy_ns + (Nvsc_obs.Clock.now_ns () - t0);
      loop ()
    end
  in
  loop ()

let start t =
  if Array.length t.tickets = 0 then begin
    t.tickets <- Array.init t.shards (fun i -> Pool.submit t.pool (worker t i));
    t.replay_ticket <- Some (Pool.submit t.pool (replay_worker t))
  end

let consume t batch ~first ~n =
  Nvsc_obs.Span.with_ "dramsim.classify" @@ fun () ->
  if t.finished then invalid_arg "Controller_team.consume: already finished";
  Sink.Batch.check_slice batch ~first ~n;
  if n > 0 then begin
    start t;
    t.done_count <- 0;
    let d = { d_batch = batch; d_first = first; d_n = n; d_base = t.fed } in
    Array.iter (fun ring -> Ring.push ring d) t.rings;
    Mutex.lock t.done_mu;
    while t.done_count < t.shards do
      Condition.wait t.done_cv t.done_mu
    done;
    Mutex.unlock t.done_mu;
    (* hand the completed slice to the replay stage: snapshot pointers
       and watermarks here, while the workers are idle between slices —
       growth during the next slice copies-and-abandons, so the snapshot
       stays valid below its watermark *)
    Ring.push t.replay_ring
      {
        r_evs = Array.map (fun w -> w.ev) t.workers;
        r_hi = Array.map (fun w -> w.ev_n) t.workers;
        r_base = t.fed;
        r_n = n;
        r_stop = false;
      };
    t.fed <- t.fed + n
  end

let sink ?name t = Sink.create ?name (consume t)

let finish t =
  if not t.finished then begin
    t.finished <- true;
    if Array.length t.tickets > 0 then begin
      let sentinel =
        { d_batch = Sink.Batch.create 1; d_first = 0; d_n = -1; d_base = 0 }
      in
      Array.iter (fun ring -> Ring.push ring sentinel) t.rings;
      let first_failure = ref None in
      Array.iter
        (fun ticket ->
          match Pool.await ticket with
          | Pool.Done () -> ()
          | Pool.Failed e ->
            if !first_failure = None then first_failure := Some e
          | Pool.Cancelled -> ())
        t.tickets;
      (* the classifiers have drained, so every slice's events are
         already queued ahead of this stop marker *)
      Ring.push t.replay_ring
        { r_evs = [||]; r_hi = [||]; r_base = 0; r_n = 0; r_stop = true };
      (match t.replay_ticket with
      | Some ticket -> (
        match Pool.await ticket with
        | Pool.Done () -> t.merged <- true
        | Pool.Failed e ->
          if !first_failure = None then first_failure := Some e
        | Pool.Cancelled -> ())
      | None -> ());
      (match !first_failure with Some e -> Pool.shutdown t.pool; raise e
      | None -> ())
    end;
    Pool.shutdown t.pool
  end

(* Replay everything classified but not yet replayed, in one batch on
   the calling domain — the path for teams whose streaming replay never
   ran (probe-only teams).  The pending indices form one contiguous
   range, so the base is the smallest unreplayed head across workers. *)
let replay_pending t =
  Nvsc_obs.Span.with_ "dramsim.replay-classified" @@ fun () ->
  let evs = Array.map (fun w -> w.ev) t.workers in
  let hi = Array.map (fun w -> w.ev_n) t.workers in
  let lo = t.replay_lo in
  let shift = t.bank_bits + 3 in
  let total = ref 0 and base = ref max_int in
  Array.iteri
    (fun j l ->
      total := !total + (hi.(j) - l);
      if l < hi.(j) then base := min !base (evs.(j).(l) lsr shift))
    lo;
  if !total > 0 then
    replay_ranges t (ref [||]) evs lo hi ~base:!base ~n:!total

let merge t =
  if not t.merged then begin
    t.merged <- true;
    replay_pending t
  end

let stats t =
  finish t;
  merge t;
  Controller.stats t.ctl

let fed t = t.fed
let shards t = t.shards
let ring_stats t = Array.map Ring.stats t.rings
let worker_busy_ns t = Array.map (fun w -> w.busy_ns) t.workers
let replay_busy_ns t = t.replay_busy_ns

(* Exported backpressure counters: merged into the obs registry when the
   team finishes so [--profile] and [client stats] can see transport
   stalls without touching worker state mid-run. *)
let export_metrics t =
  let pushes = Nvsc_obs.Metrics.counter "dram.team.ring.pushes"
  and pwaits = Nvsc_obs.Metrics.counter "dram.team.ring.producer_waits"
  and cwaits = Nvsc_obs.Metrics.counter "dram.team.ring.consumer_waits" in
  Array.iter
    (fun ring ->
      let s = Ring.stats ring in
      Nvsc_obs.Metrics.Counter.add pushes s.Ring.pushes;
      Nvsc_obs.Metrics.Counter.add pwaits s.Ring.producer_waits;
      Nvsc_obs.Metrics.Counter.add cwaits s.Ring.consumer_waits)
    t.rings;
  let s = Ring.stats t.replay_ring in
  let add name v = Nvsc_obs.Metrics.Counter.add (Nvsc_obs.Metrics.counter name) v in
  add "dram.team.replay.pushes" s.Ring.pushes;
  add "dram.team.replay.producer_waits" s.Ring.producer_waits;
  add "dram.team.replay.consumer_waits" s.Ring.consumer_waits
