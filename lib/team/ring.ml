(* Bounded single-producer/single-consumer ring.

   The shard team's transport: the generating domain pushes batch
   descriptors, one consuming shard domain pops them.  Head and tail are
   sequentially-consistent atomics; the slot payload is published by the
   message-passing idiom (plain write, then atomic head store; the
   consumer's atomic head load happens-before its plain read), which the
   OCaml 5 memory model guarantees race-free for SPSC use.

   Waiting sides spin briefly with [Domain.cpu_relax], then fall back to
   a short sleep: on machines with fewer cores than domains (CI runners,
   the single-core container this grows in) a pure spin would burn whole
   scheduler quanta before the peer runs. *)

type 'a t = {
  buf : 'a array;
  mask : int;
  dummy : 'a;
  head : int Atomic.t; (* next index the producer writes; monotonic *)
  tail : int Atomic.t; (* next index the consumer reads; monotonic *)
  pushes : int Atomic.t;
  producer_waits : int Atomic.t;
  consumer_waits : int Atomic.t;
}

let rec pow2 n k = if k >= n then k else pow2 n (2 * k)

let create ~capacity dummy =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  let cap = pow2 capacity 1 in
  {
    buf = Array.make cap dummy;
    mask = cap - 1;
    dummy;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    pushes = Atomic.make 0;
    producer_waits = Atomic.make 0;
    consumer_waits = Atomic.make 0;
  }

let capacity t = t.mask + 1
let length t = Atomic.get t.head - Atomic.get t.tail

let spin_budget = 512

let[@inline] backoff spins =
  if spins < spin_budget then Domain.cpu_relax () else Unix.sleepf 5e-5

let push t x =
  let h = Atomic.get t.head in
  let spins = ref 0 in
  while h - Atomic.get t.tail > t.mask do
    if !spins = 0 then Atomic.incr t.producer_waits;
    backoff !spins;
    incr spins
  done;
  Array.unsafe_set t.buf (h land t.mask) x;
  Atomic.set t.head (h + 1);
  Atomic.incr t.pushes

let pop t =
  let tl = Atomic.get t.tail in
  let spins = ref 0 in
  while Atomic.get t.head = tl do
    if !spins = 0 then Atomic.incr t.consumer_waits;
    backoff !spins;
    incr spins
  done;
  let i = tl land t.mask in
  let x = Array.unsafe_get t.buf i in
  (* Drop the slot's reference so the ring never pins a popped payload
     across the producer's reuse window. *)
  Array.unsafe_set t.buf i t.dummy;
  Atomic.set t.tail (tl + 1);
  x

type stats = { pushes : int; producer_waits : int; consumer_waits : int }

let stats (t : 'a t) =
  {
    pushes = Atomic.get t.pushes;
    producer_waits = Atomic.get t.producer_waits;
    consumer_waits = Atomic.get t.consumer_waits;
  }
