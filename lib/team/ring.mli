(** Bounded single-producer/single-consumer ring.

    The shard team's per-domain transport: one producing domain
    ({!push}) and one consuming domain ({!pop}) exchange values through a
    fixed ring of slots.  Both operations block (spin, then micro-sleep)
    rather than fail, so the ring doubles as the pipeline's backpressure:
    a full ring stalls the generator, an empty ring parks the shard.

    Only ever use a ring from exactly one producer domain and one
    consumer domain — the implementation relies on it. *)

type 'a t

val create : capacity:int -> 'a -> 'a t
(** [create ~capacity dummy] makes a ring holding at least [capacity]
    in-flight values (rounded up to a power of two).  [dummy] fills empty
    slots so popped payloads are not pinned against the GC. *)

val capacity : 'a t -> int
(** Actual (rounded) capacity. *)

val length : 'a t -> int
(** Values currently in flight (racy snapshot; exact on either side's own
    domain between its operations). *)

val push : 'a t -> 'a -> unit
(** Producer side: append one value, blocking while the ring is full. *)

val pop : 'a t -> 'a
(** Consumer side: take the oldest value, blocking while the ring is
    empty. *)

type stats = { pushes : int; producer_waits : int; consumer_waits : int }

val stats : 'a t -> stats
(** Occupancy counters: total pushes plus how many push/pop calls had to
    wait at least once — the shard team's queue-pressure signal. *)
