(** Fixed-size domain pool with a work queue.

    [map ~jobs f items] applies [f] to every element of [items] on a pool
    of [jobs] OCaml 5 domains (the calling domain is one of them) and
    returns the results {e in input order} — the deterministic ordered
    collection the sweep's byte-identical-report contract rests on.
    Work distribution is a take-a-ticket queue (one atomic counter), so
    domains pull the next cell as they finish rather than owning a fixed
    stripe; results land in per-index slots, never shared between
    workers.

    If any [f] raises, the first exception in {e input order} is
    re-raised after every worker has drained (later results are
    discarded). *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [jobs] is clamped to [1 .. Array.length items]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the machine's useful
    parallelism. *)

(** {1 Resident pool}

    The long-lived variant behind [nvscav serve]: worker domains are
    spawned once and block on a condition variable between tasks, so N
    clients multiplex onto one pool with no per-request domain spawns.
    Submitters may be threads on any domain. *)

type t
(** A running pool. *)

val create : ?jobs:int -> unit -> t
(** Spawn [jobs] worker domains (default {!default_jobs}, minimum 1). *)

val jobs : t -> int

type 'a outcome =
  | Done of 'a
  | Failed of exn
  | Cancelled  (** the cancellation hook returned [true] before start *)

type 'a ticket

val submit : ?cancelled:(unit -> bool) -> t -> (unit -> 'a) -> 'a ticket
(** Enqueue a task.  [cancelled] is polled once, just before the task
    would start executing: a task whose client has disconnected is
    dropped from the queue without running.  A task already running is
    never interrupted.  Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a ticket -> 'a outcome
(** Block until the task finishes (or is cancelled).  May be called from
    any thread; repeated calls return the same outcome. *)

val shutdown : t -> unit
(** Stop accepting work, join every worker (running tasks complete), and
    resolve still-queued tasks as [Cancelled]. *)
