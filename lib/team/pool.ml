let default_jobs () = Domain.recommended_domain_count ()

let m_jobs = Nvsc_obs.Metrics.gauge "sweep.pool.jobs"
let m_queue_wait = Nvsc_obs.Metrics.dist "sweep.pool.queue_wait_ns"
let m_depth = Nvsc_obs.Metrics.gauge "sweep.pool.queue_depth"
let m_submitted = Nvsc_obs.Metrics.counter "sweep.pool.submitted"
let m_cancelled = Nvsc_obs.Metrics.counter "sweep.pool.cancelled"

(* --- resident pool ------------------------------------------------------- *)

(* A long-lived domain pool for [nvscav serve]: worker domains block on a
   condition variable between tasks instead of being respawned per batch.
   Stdlib [Mutex]/[Condition] are domain-safe, so submitters (connection
   threads on the main domain) and workers (their own domains) share one
   queue. *)

type task = { run : unit -> unit; cancel : unit -> unit }

type t = {
  queue : task Queue.t;
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  n_jobs : int;
}

type 'a outcome = Done of 'a | Failed of exn | Cancelled

type 'a ticket = {
  t_mu : Mutex.t;
  t_done : Condition.t;
  mutable state : 'a outcome option;
}

let worker pool () =
  let rec loop () =
    Mutex.lock pool.mu;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.nonempty pool.mu
    done;
    (* Once closed, workers exit without starting queued tasks —
       [shutdown] resolves those as [Cancelled] after the join. *)
    if pool.closed || Queue.is_empty pool.queue then Mutex.unlock pool.mu
    else begin
      let task = Queue.pop pool.queue in
      Nvsc_obs.Metrics.Gauge.set m_depth
        (float_of_int (Queue.length pool.queue));
      Mutex.unlock pool.mu;
      task.run ();
      loop ()
    end
  in
  loop ()

let create ?(jobs = default_jobs ()) () =
  let jobs = max 1 jobs in
  let pool =
    {
      queue = Queue.create ();
      mu = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
      workers = [];
      n_jobs = jobs;
    }
  in
  Nvsc_obs.Metrics.Gauge.set m_jobs (float_of_int jobs);
  pool.workers <- List.init jobs (fun _ -> Domain.spawn (worker pool));
  pool

let jobs t = t.n_jobs

let submit ?(cancelled = fun () -> false) pool f =
  let ticket = { t_mu = Mutex.create (); t_done = Condition.create ();
                 state = None } in
  let finish outcome =
    Mutex.lock ticket.t_mu;
    ticket.state <- Some outcome;
    Condition.broadcast ticket.t_done;
    Mutex.unlock ticket.t_mu
  in
  let cancel () =
    Nvsc_obs.Metrics.Counter.incr m_cancelled;
    finish Cancelled
  in
  let run () =
    if cancelled () then cancel ()
    else finish (match f () with v -> Done v | exception e -> Failed e)
  in
  Mutex.lock pool.mu;
  if pool.closed then begin
    Mutex.unlock pool.mu;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push { run; cancel } pool.queue;
  Nvsc_obs.Metrics.Counter.incr m_submitted;
  Nvsc_obs.Metrics.Gauge.set m_depth (float_of_int (Queue.length pool.queue));
  Condition.signal pool.nonempty;
  Mutex.unlock pool.mu;
  ticket

let await ticket =
  Mutex.lock ticket.t_mu;
  while ticket.state = None do
    Condition.wait ticket.t_done ticket.t_mu
  done;
  let outcome = Option.get ticket.state in
  Mutex.unlock ticket.t_mu;
  outcome

let shutdown pool =
  Mutex.lock pool.mu;
  pool.closed <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mu;
  List.iter Domain.join pool.workers;
  pool.workers <- [];
  (* Anything still queued was never started: resolve it as cancelled so
     awaiting clients unblock. *)
  Queue.iter (fun task -> task.cancel ()) pool.queue;
  Queue.clear pool.queue

(* --- one-shot batch map -------------------------------------------------- *)

let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    Nvsc_obs.Metrics.Gauge.set m_jobs (float_of_int jobs);
    (* Queue wait = take-a-ticket time minus pool start; only sampled when
       the recorder is armed so the disarmed path never reads the clock. *)
    let t0 = if Nvsc_obs.Span.enabled () then Nvsc_obs.Clock.now_ns () else 0 in
    (* Option-boxed result slots: each index is written by exactly one
       worker, so slots are never contended; the joins below publish them
       to the collecting domain. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if Nvsc_obs.Span.enabled () then
            Nvsc_obs.Metrics.Dist.observe m_queue_wait
              (Nvsc_obs.Clock.now_ns () - t0);
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
