type row = {
  row_name : string;
  count : int;
  total_ns : int;
  self_ns : int;
}

let summary () =
  let by_name = Hashtbl.create 32 in
  List.iter
    (fun (e : Span.event) ->
      let r =
        match Hashtbl.find_opt by_name e.name with
        | Some r -> r
        | None ->
          { row_name = e.name; count = 0; total_ns = 0; self_ns = 0 }
      in
      Hashtbl.replace by_name e.name
        {
          r with
          count = r.count + 1;
          total_ns = r.total_ns + e.dur_ns;
          self_ns = r.self_ns + e.self_ns;
        })
    (Span.events ());
  Hashtbl.fold (fun _ r acc -> r :: acc) by_name []
  |> List.sort (fun a b ->
         match compare b.self_ns a.self_ns with
         | 0 -> String.compare a.row_name b.row_name
         | c -> c)

let pp_summary fmt rows =
  let width =
    List.fold_left (fun w r -> max w (String.length r.row_name)) 4 rows
  in
  Format.fprintf fmt "profile: span self-times (wall clock)@.";
  Format.fprintf fmt "  %-*s %8s %12s %12s@." width "span" "count" "total"
    "self";
  let cell ns = Format.asprintf "%a" Nvsc_util.Units.pp_ns (float_of_int ns) in
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-*s %8d %12s %12s@." width r.row_name r.count
        (cell r.total_ns) (cell r.self_ns))
    rows
