(** Nvsc_obs: pipeline-wide observability.

    Three pieces, one layer: nestable timed {!Span}s recorded per-domain,
    a typed {!Metrics} registry (counters, gauges, distributions) that
    absorbs the pipeline's scattered self-observability counters, and two
    exporters — a human {!Profile} self-time table and a {!Chrome_trace}
    JSON file loadable in [chrome://tracing] or Perfetto.

    Instrumentation is always compiled in and globally disarmed by
    default: a disarmed span is a single branch on an [Atomic.t].  The
    [--profile] flags of [nvscav] and [experiments.exe] arm it through
    {!with_profiling}; library users can scope arming to one run by
    putting {!on} in a {!Nvsc_core.Scavenger.Config.t}. *)

module Clock : module type of Clock
module Metrics : module type of Metrics
module Span : module type of Span
module Chrome_trace : module type of Chrome_trace
module Profile : module type of Profile

type t
(** An observability handle, carried by run configurations. *)

val off : t
(** The default: leave the recorder as the caller set it. *)

val on : t
(** Arm span recording for the duration of the run that carries this
    handle (no-op if already armed by an enclosing scope). *)

val is_armed : t -> bool

val enabled : unit -> bool
(** Is the global recorder armed right now? *)

val scoped : t -> (unit -> 'a) -> 'a
(** [scoped t f] runs [f] with the recorder armed if [t] asks for it,
    restoring the previous state afterwards (also on exceptions). *)

val reset : unit -> unit
(** Drop all recorded spans and zero all metrics. *)

val with_profiling :
  ?trace_out:string ->
  ?summary:Format.formatter ->
  enabled:bool ->
  (unit -> 'a) ->
  'a
(** The [--profile] driver: when [enabled], reset the recorder, arm it,
    run the callback, then write the Chrome trace to [trace_out] (if
    given) and print the self-time table and metrics snapshot to
    [summary] (default [stderr], so report stdout stays byte-identical).
    When [not enabled], exactly [f ()]. *)
