(** Wall-clock time source for the observability layer.

    One function, kept in its own module so every span and queue-wait
    sample reads the same clock (and so tests or future ports can swap it
    for a monotonic source in one place). *)

val now_ns : unit -> int
(** Current wall-clock time in integer nanoseconds.  Resolution is that of
    [Unix.gettimeofday] (about a microsecond); durations are clamped
    non-negative by the callers, so an NTP step cannot produce negative
    spans. *)
