module Json = Nvsc_util.Json

let us ns = Json.float (float_of_int ns /. 1_000.)

let to_json () =
  let events = Span.events () in
  (* Dense tids in domain-spawn order: raw domain ids are monotonic, so
     sorting them gives a stable, jobs-independent numbering. *)
  let tids =
    List.map (fun (e : Span.event) -> e.tid) events
    |> List.sort_uniq compare
  in
  let tid_index t =
    let rec find i = function
      | [] -> 0
      | x :: _ when x = t -> i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 tids
  in
  let t0 =
    List.fold_left
      (fun acc (e : Span.event) -> min acc e.ts_ns)
      max_int events
  in
  let event_json (e : Span.event) =
    Json.Obj
      ([
         ("name", Json.Str e.name);
         ("cat", Json.Str "nvsc");
         ("ph", Json.Str "X");
         ("ts", us (e.ts_ns - t0));
         ("dur", us e.dur_ns);
         ("pid", Json.Int 0);
         ("tid", Json.Int (tid_index e.tid));
       ]
      @
      match e.arg with
      | None -> []
      | Some d -> [ ("args", Json.Obj [ ("detail", Json.Str d) ]) ])
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
      ("nvscMetrics", Metrics.snapshot_json ());
    ]

let write path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_json ())))
