let armed = Atomic.make false
let enable () = Atomic.set armed true
let disable () = Atomic.set armed false
let enabled () = Atomic.get armed

type event = {
  name : string;
  arg : string option;
  tid : int;
  depth : int;
  ts_ns : int;
  dur_ns : int;
  self_ns : int;
  seq : int;
}

type frame = {
  f_name : string;
  f_arg : string option;
  f_start : int;
  f_depth : int;
  mutable child_ns : int;
}

type buf = {
  tid : int;
  mutable events : event list;  (* newest first *)
  mutable nevents : int;
  mutable stack : frame list;
}

(* Buffer registry: locked only when a domain records its first span. *)
let bufs : buf list ref = ref []
let mu = Mutex.create ()

let key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          events = [];
          nevents = 0;
          stack = [];
        }
      in
      Mutex.lock mu;
      bufs := b :: !bufs;
      Mutex.unlock mu;
      b)

let close b fr =
  let dur = max 0 (Clock.now_ns () - fr.f_start) in
  (* Pop down to (and past) [fr]: tolerates frames orphaned by arming
     mid-span. *)
  let rec pop = function
    | top :: rest when top == fr -> rest
    | _ :: rest -> pop rest
    | [] -> []
  in
  b.stack <- pop b.stack;
  (match b.stack with
  | parent :: _ -> parent.child_ns <- parent.child_ns + dur
  | [] -> ());
  b.events <-
    {
      name = fr.f_name;
      arg = fr.f_arg;
      tid = b.tid;
      depth = fr.f_depth;
      ts_ns = fr.f_start;
      dur_ns = dur;
      self_ns = max 0 (dur - fr.child_ns);
      seq = b.nevents;
    }
    :: b.events;
  b.nevents <- b.nevents + 1

let with_ ?arg name f =
  if not (Atomic.get armed) then f ()
  else begin
    let b = Domain.DLS.get key in
    let fr =
      {
        f_name = name;
        f_arg = arg;
        f_start = Clock.now_ns ();
        f_depth = List.length b.stack;
        child_ns = 0;
      }
    in
    b.stack <- fr :: b.stack;
    match f () with
    | v ->
      close b fr;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close b fr;
      Printexc.raise_with_backtrace e bt
  end

let events () =
  Mutex.lock mu;
  let bs = !bufs in
  Mutex.unlock mu;
  List.sort (fun a b -> compare a.tid b.tid) bs
  |> List.concat_map (fun b -> List.rev b.events)

let reset () =
  Mutex.lock mu;
  let bs = !bufs in
  Mutex.unlock mu;
  List.iter
    (fun b ->
      b.events <- [];
      b.nevents <- 0;
      b.stack <- [])
    bs
