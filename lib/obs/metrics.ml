module Json = Nvsc_util.Json

module Counter = struct
  type t = int Atomic.t

  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let get = Atomic.get
end

module Gauge = struct
  type t = float Atomic.t

  let set t v = Atomic.set t v
  let get = Atomic.get
end

module Dist = struct
  type t = {
    count : int Atomic.t;
    sum : int Atomic.t;
    dmin : int Atomic.t;
    dmax : int Atomic.t;
  }

  let make () =
    {
      count = Atomic.make 0;
      sum = Atomic.make 0;
      dmin = Atomic.make max_int;
      dmax = Atomic.make min_int;
    }

  let rec join cell better v =
    let cur = Atomic.get cell in
    if better v cur && not (Atomic.compare_and_set cell cur v) then
      join cell better v

  let observe t v =
    ignore (Atomic.fetch_and_add t.count 1);
    ignore (Atomic.fetch_and_add t.sum v);
    join t.dmin ( < ) v;
    join t.dmax ( > ) v

  let reset t =
    Atomic.set t.count 0;
    Atomic.set t.sum 0;
    Atomic.set t.dmin max_int;
    Atomic.set t.dmax min_int
end

type dist_snapshot = { count : int; sum : int; min : int; max : int }
type value = Counter of int | Gauge of float | Dist of dist_snapshot

type metric = C of Counter.t | G of Gauge.t | D of Dist.t

(* Registration is the only locked path; updates are single atomics. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register name make =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | D _ -> "dist"

let mismatch name want m =
  invalid_arg
    (Printf.sprintf "Metrics.%s: %S is already registered as a %s" want name
       (kind_name m))

let counter name =
  match register name (fun () -> C (Atomic.make 0)) with
  | C c -> c
  | m -> mismatch name "counter" m

let gauge name =
  match register name (fun () -> G (Atomic.make 0.)) with
  | G g -> g
  | m -> mismatch name "gauge" m

let dist name =
  match register name (fun () -> D (Dist.make ())) with
  | D d -> d
  | m -> mismatch name "dist" m

let read = function
  | C c -> Counter (Counter.get c)
  | G g -> Gauge (Gauge.get g)
  | D d ->
    let count = Atomic.get d.Dist.count in
    Dist
      {
        count;
        sum = Atomic.get d.Dist.sum;
        min = (if count = 0 then 0 else Atomic.get d.Dist.dmin);
        max = (if count = 0 then 0 else Atomic.get d.Dist.dmax);
      }

let snapshot () =
  locked (fun () ->
      Hashtbl.fold (fun name m acc -> (name, read m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let get name =
  locked (fun () -> Hashtbl.find_opt registry name) |> Option.map read

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | C c -> Atomic.set c 0
          | G g -> Atomic.set g 0.
          | D d -> Dist.reset d)
        registry)

let value_to_json = function
  | Counter n -> Json.Int n
  | Gauge v -> Json.float v
  | Dist d ->
    Json.Obj
      [
        ("count", Json.Int d.count);
        ("sum", Json.Int d.sum);
        ("min", Json.Int d.min);
        ("max", Json.Int d.max);
      ]

(* A wall-clock metric is one whose name ends in "_ns": the only values
   that vary between byte-identical runs.  [strip_time] drops them (and a
   dist's irreproducible fields would go with the whole entry) so two
   snapshots of the same workload compare equal. *)
let is_wall_clock name =
  let suffix = "_ns" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix

let snapshot_json ?(strip_time = false) () =
  Json.Obj
    (snapshot ()
    |> List.filter (fun (name, _) -> not (strip_time && is_wall_clock name))
    |> List.map (fun (name, v) -> (name, value_to_json v)))

let pp_value fmt = function
  | Counter n -> Format.fprintf fmt "%d" n
  | Gauge v -> Format.fprintf fmt "%g" v
  | Dist d ->
    Format.fprintf fmt "count %d  sum %d  min %d  max %d" d.count d.sum d.min
      d.max

let pp_snapshot fmt snap =
  let width =
    List.fold_left (fun w (name, _) -> max w (String.length name)) 0 snap
  in
  List.iter
    (fun (name, v) ->
      Format.fprintf fmt "  %-*s %a@." width name pp_value v)
    snap
