(** Typed metrics registry: counters, gauges and integer distributions
    under one global, domain-safe namespace.

    The registry absorbs the pipeline's scattered self-observability
    counters (reference-stream transport totals, sweep-cache hit/miss/evict
    tallies, sanitizer finding counts) into one snapshot that is rendered
    once, after a run — never interleaved from worker domains.

    Every mutation is a single [Atomic] operation, so metrics may be
    updated from any domain without locks, and every snapshot value is
    deterministic in the *set* of updates, not their interleaving:
    counters and distribution sums are integer additions (associative and
    commutative), distribution min/max are idempotent joins.  Only wall
    -clock-valued metrics (names ending in [_ns]) vary between runs; the
    determinism test filters on that suffix.

    Metric names are dot-separated lowercase paths ([sweep.cache.hits]).
    Registering the same name twice returns the existing metric;
    re-registering it as a different type raises [Invalid_argument]. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val get : t -> float
end

(** Integer-valued distribution: count, sum, min and max.  Values are
    integers (byte counts, nanoseconds, batch sizes) so that sums stay
    associative across domains. *)
module Dist : sig
  type t

  val observe : t -> int -> unit
end

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val dist : string -> Dist.t

type dist_snapshot = { count : int; sum : int; min : int; max : int }
type value = Counter of int | Gauge of float | Dist of dist_snapshot

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name.  Metrics that were never
    updated since the last {!reset} are included (zero counters, [0.]
    gauges, empty distributions) — a snapshot always has the same keys for
    the same code paths. *)

val get : string -> value option
(** The current value of one metric, if registered. *)

val reset : unit -> unit
(** Zero every metric (registrations survive). *)

val value_to_json : value -> Nvsc_util.Json.t

val snapshot_json : ?strip_time:bool -> unit -> Nvsc_util.Json.t
(** The registry snapshot as one JSON object, keys in sorted (hence
    deterministic) order — the payload of [nvscav client stats] and the
    [nvscMetrics] sidecar of the Chrome-trace export.  With
    [~strip_time:true], metrics whose names end in [_ns] (wall-clock
    values, the only ones that vary between byte-identical runs) are
    omitted, so CI can [cmp] two snapshots of the same workload. *)

val pp_snapshot : Format.formatter -> (string * value) list -> unit
(** One aligned [metric value] line per entry. *)
