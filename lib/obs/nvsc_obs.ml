(* Nvsc_obs: pipeline-wide observability — nestable timed spans, a typed
   metrics registry, and exporters (self-time table, Chrome trace).

   The layer is zero-dependency (stdlib + Unix clock) and always compiled
   in: a disarmed span costs one branch on an [Atomic.t], so every
   pipeline library ships instrumented and [--profile] merely arms the
   recorder.  See DESIGN.md "Observability". *)

module Clock = Clock
module Metrics = Metrics
module Span = Span
module Chrome_trace = Chrome_trace
module Profile = Profile

(* --- the handle --------------------------------------------------------- *)

(* An observability handle, carried by run configs (Scavenger.Config.t).
   [off] is inert; [on] asks the callee to arm the recorder for the
   duration of the call (a no-op when a caller higher up already armed
   it), so a library user can profile one run without touching the global
   switch. *)
type t = { armed : bool }

let off = { armed = false }
let on = { armed = true }
let is_armed t = t.armed

let enabled = Span.enabled

let reset () =
  Span.reset ();
  Metrics.reset ()

let scoped t f =
  if t.armed && not (Span.enabled ()) then begin
    Span.enable ();
    Fun.protect ~finally:Span.disable f
  end
  else f ()

(* --- CLI driver --------------------------------------------------------- *)

let with_profiling ?trace_out ?(summary = Format.err_formatter)
    ~enabled:requested f =
  if not requested then f ()
  else begin
    reset ();
    Span.enable ();
    Fun.protect ~finally:Span.disable @@ fun () ->
    let v = f () in
    (match trace_out with
    | Some path -> Chrome_trace.write path
    | None -> ());
    Profile.pp_summary summary (Profile.summary ());
    Format.fprintf summary "metrics:@.";
    Metrics.pp_snapshot summary (Metrics.snapshot ());
    Format.pp_print_flush summary ();
    v
  end
