(** Human-readable self-time profile: where did the run spend its time?

    Aggregates the recorded spans by name — count, total (inclusive) and
    self (exclusive) wall time — the classic profiler table, for when a
    Chrome trace is more ceremony than the question deserves. *)

type row = {
  row_name : string;
  count : int;
  total_ns : int;
  self_ns : int;
}

val summary : unit -> row list
(** One row per span name, sorted by descending self time (name as the
    tie-break). *)

val pp_summary : Format.formatter -> row list -> unit
(** Aligned [span  count  total  self] table, preceded by a
    [profile: ...] header line. *)
