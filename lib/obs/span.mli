(** Nestable timed spans, recorded per-domain.

    [with_ "cachesim.filter" f] times [f] and records a completed-span
    event when recording is armed.  The fast path of a disarmed span is a
    single branch on an [Atomic.t] — no clock read, no allocation beyond
    the closure the caller already built — so instrumentation ships
    always-available and costs nothing until someone passes [--profile].

    Each domain records into its own buffer (registered once, on the
    domain's first span, under a mutex), so sweep workers never contend on
    a shared event list.  {!events} merges the buffers with a stable order
    for the exporters.

    Span names are dot-separated lowercase paths ([scavenger.app]); the
    optional [arg] carries low-cardinality detail (the application or
    technology name) and lands in the Chrome-trace event's [args]. *)

val enable : unit -> unit
(** Arm recording (idempotent). *)

val disable : unit -> unit
val enabled : unit -> bool

val with_ : ?arg:string -> string -> (unit -> 'a) -> 'a
(** Run the callback under a span.  The span is closed — and its event
    recorded — when the callback returns {e or raises}; exceptions
    propagate with their backtrace. *)

type event = {
  name : string;
  arg : string option;
  tid : int;  (** recording domain's id *)
  depth : int;  (** nesting depth within its domain at open time *)
  ts_ns : int;  (** wall-clock open time *)
  dur_ns : int;
  self_ns : int;  (** [dur_ns] minus the duration of direct children *)
  seq : int;  (** close order within the domain's buffer *)
}

val events : unit -> event list
(** Every recorded event, merged across domain buffers: buffers in
    ascending [tid] (domain-spawn) order, events within a buffer in close
    ([seq]) order.  The order is stable for a given recording. *)

val reset : unit -> unit
(** Drop all recorded events (buffers stay registered). *)
