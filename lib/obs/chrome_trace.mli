(** Chrome-trace (Trace Event Format) exporter.

    Produces a JSON object loadable by [chrome://tracing] and Perfetto
    ({:https://ui.perfetto.dev}): one complete ([ph = "X"]) event per
    recorded span, timestamps in microseconds rebased to the earliest
    span, plus the full metrics snapshot under ["nvscMetrics"].

    Events are merged across sweep-worker domains with a stable order:
    domain ids are renumbered densely in spawn order (the main domain is
    tid 0), and events within a domain keep their close order — so two
    runs of the same workload produce the same event sequence, name for
    name, whatever [--jobs] was. *)

val to_json : unit -> Nvsc_util.Json.t
(** Export the current recording ({!Span.events} + {!Metrics.snapshot}). *)

val write : string -> unit
(** [to_json] rendered compactly to a file. *)
