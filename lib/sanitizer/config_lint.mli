(** Static configuration lint: physical-consistency checks over the
    simulator parameter records, run before any simulation.

    Every finding has class {!Diagnostic.Config} and an owner naming the
    record and field ("Technology.PCRAM.write_latency_ns"), so a broken
    constant is pinpointed rather than absorbed into downstream metrics. *)

val technology : Nvsc_nvram.Technology.t -> Diagnostic.report
(** Latency/current/endurance sanity for one memory technology: positive
    terms, write no faster (and no cheaper) than read, category agreeing
    with the non-volatility flag, non-volatile implies no refresh. *)

val caches :
  l1d:Nvsc_cachesim.Cache_params.t ->
  l1i:Nvsc_cachesim.Cache_params.t ->
  l2:Nvsc_cachesim.Cache_params.t ->
  Diagnostic.report
(** Power-of-two geometry per level, one shared line size, L2 larger than
    L1D. *)

val org : Nvsc_dramsim.Org.t -> Diagnostic.report
(** Power-of-two ranks/banks/rows/cols/widths; a row holds >= 1 line. *)

val timing : name:string -> Nvsc_dramsim.Timing.t -> Diagnostic.report
(** Positive timing terms; refresh interval exceeds refresh cycle time. *)

val core : Nvsc_cpusim.Core_params.t -> Diagnostic.report
(** Monotone L1 < L2 hit latency, power-of-two pages, ROB/miss-buffer wide
    enough for the claimed issue width and MLP. *)

val app : (module Nvsc_apps.Workload.APP) -> Diagnostic.report
(** Lowercase non-empty name, non-negative paper footprint, non-empty
    descriptions. *)

val default_wear_threshold : float
(** 4.0 writes/word/iteration.  State checkpointed once per iteration
    scores ~1; a write-hammered working array scores far higher. *)

val persist :
  ?scale:float ->
  ?iterations:int ->
  ?wear_threshold:float ->
  ?tech:Nvsc_nvram.Technology.t ->
  (module Nvsc_apps.Workload.APP) ->
  Diagnostic.report
(** The static half of NVSC-Persist.  Runs the application once in a
    structure-only mode (event sink + the per-object counters, no
    reference sinks, no simulation; [scale] defaults to 0.1, [iterations]
    to 3) and checks its persist annotations without any trace analysis:

    - {e epoch-unbalanced}: begin/commit pairing, nesting, label
      mismatches, epochs left open at the end of the run;
    - {e persist-placement}: declared-persistent objects the placement
      plan ({!Nvsc_placement.Static_policy.plan} with the persist set
      pinned) still leaves in DRAM — durability needs NVRAM;
    - {e persist-write-heavy} (warning): declared objects written more
      than [wear_threshold] times per word per main-loop iteration, where
      the paper's model says NVM wear and write latency dominate ([tech]
      defaults to PCRAM).

    Apps with no persist declarations get only the epoch checks. *)

val all :
  ?app:(module Nvsc_apps.Workload.APP) -> unit -> Diagnostic.report
(** Lint everything the repo ships: all technologies, the paper cache
    hierarchy, DRAM organisation, per-technology timing, the core model,
    the cross-layer latency hierarchy (memory slower than L2), and — when
    given — one application's workload config. *)
