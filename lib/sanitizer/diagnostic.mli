(** Typed diagnostics for NVSC-San (trace sanitizer + config lint).

    A diagnostic identifies a {e class} of defect, the {e owner} it is
    attributed to (a memory object's name, or a configuration field), an
    aggregated occurrence count and the first occurrence's position in the
    reference stream.  Reports are deterministically ordered — severity,
    then class, then owner — so the same trace always prints the same
    report, regardless of batch capacity. *)

type severity = Error | Warning

type klass =
  | Out_of_bounds  (** reference lands in no object (in a redzone) *)
  | Straddle  (** reference starts inside an object but runs past its end *)
  | Use_after_free  (** reference into a deallocated heap object *)
  | Stale_stack  (** reference into a popped shadow-stack frame *)
  | Unattributed  (** reference resolves to no object at all *)
  | Uninit_read  (** heap read of bytes never written (opt-in) *)
  | Overlap  (** two live registrations cover the same addresses *)
  | Unbalanced_frames  (** push/pop imbalance at a phase boundary *)
  | Leak  (** heap object allocated in the main loop, live at teardown *)
  | Config  (** physically inconsistent simulator configuration *)
  | Unflushed_commit
      (** dirty cache line of a persistent object at epoch commit *)
  | Flush_race  (** store to a line while its flush is still in flight *)
  | Torn_checkpoint
      (** checkpoint epoch whose durability is order-dependent: flushed
          but unfenced lines at commit, or inconsistent state at an
          injected crash point *)
  | Epoch_unbalanced  (** commit without begin, nesting, or epoch left open *)
  | Redundant_flush  (** flush covering no dirty line (perf, not error) *)
  | Useless_fence  (** fence with no flush in flight (perf, not error) *)
  | Persist_placement
      (** persistent object the placement plan left in DRAM *)
  | Persist_write_heavy
      (** persist region whose write intensity makes NVM wear/latency
          costs dominate (paper's model) *)

type occurrence = {
  phase : Nvsc_memtrace.Mem_object.phase;
  index : int;  (** 0-based position in the delivered reference stream *)
}

type source = {
  file : string;  (** the replayed [.nvt] trace *)
  chunk : int;  (** chunk index within the trace *)
  record : int;  (** reference-record ordinal at the finding *)
}
(** Where a replayed-trace finding came from, printed [file:chunk:record]
    so lint output is grep-able back to a seekable trace position. *)

type finding = {
  severity : severity;
  klass : klass;
  owner : string;
  detail : string;  (** from the first occurrence *)
  count : int;
  first : occurrence option;  (** [None] for static (config) findings *)
  source : source option;  (** [None] unless replayed from an [.nvt] *)
}

type report = finding list
(** Always sorted by {!compare_findings}. *)

val klass_to_string : klass -> string
val default_severity : klass -> severity
val compare_findings : finding -> finding -> int
val sort_report : report -> report
val merge : report -> report -> report
val is_clean : report -> bool
val errors : report -> int
val warnings : report -> int
val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> report -> unit

(** Aggregates raw diagnostics into one finding per (class, owner) pair,
    keeping the first occurrence and counting the rest. *)
module Collector : sig
  type t

  val create : unit -> t

  val add :
    t ->
    ?severity:severity ->
    ?occurrence:occurrence ->
    ?source:source ->
    klass ->
    owner:string ->
    detail:string ->
    unit
  (** [severity] defaults to {!default_severity}; [occurrence], [source]
      and [detail] are kept only for the first report of a (class, owner)
      pair. *)

  val report : t -> report
end
