module Ctx = Nvsc_appkit.Ctx
module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Shadow_stack = Nvsc_memtrace.Shadow_stack
module Sink = Nvsc_memtrace.Sink

type t = {
  ctx : Ctx.t;
  collector : Diagnostic.Collector.t;
  check_init : bool;
  objs : (int, Mem_object.t) Hashtbl.t; (* object id -> object *)
  init_maps : (int, Bytes.t) Hashtbl.t; (* heap id -> per-byte init bitmap *)
  (* last popped frame range per routine, stamped so the most recently
     popped frame covering an address wins attribution of a stale ref *)
  popped : (string, int * int * int) Hashtbl.t; (* routine -> stamp, lo, hi *)
  mutable pop_stamp : int;
  mutable tracked_depth : int; (* frame depth as seen through Ctx events *)
  mutable reported_imbalance : int;
  (* heap/global objects sorted by base, for redzone-proximity search *)
  mutable sorted : (int * int * Mem_object.t) array; (* base, last, obj *)
  mutable sorted_valid : bool;
  mutable refs_seen : int;
  mutable finished : bool;
}

let add t ?occurrence klass ~owner ~detail =
  Diagnostic.Collector.add t.collector ?occurrence klass ~owner ~detail

let occurrence t idx = { Diagnostic.phase = Ctx.phase t.ctx; index = idx }

(* Rebuild the object table from scratch: the registry and the context's
   routine-object table jointly hold every currently attributable object
   (global merges replace their parts there too). *)
let refresh t =
  Hashtbl.reset t.objs;
  List.iter
    (fun (o : Mem_object.t) -> Hashtbl.replace t.objs o.id o)
    (Object_registry.objects (Ctx.registry t.ctx));
  List.iter
    (fun (o : Mem_object.t) -> Hashtbl.replace t.objs o.id o)
    (Ctx.stack_objects t.ctx);
  let hg =
    Hashtbl.fold
      (fun _ (o : Mem_object.t) acc ->
        if o.kind <> Layout.Stack then o :: acc else acc)
      t.objs []
  in
  let arr = Array.of_list hg in
  Array.sort
    (fun (a : Mem_object.t) b -> compare (a.base, a.id) (b.base, b.id))
    arr;
  t.sorted <- Array.map (fun o -> (o.Mem_object.base, Mem_object.last_byte o, o)) arr;
  t.sorted_valid <- true

let find_obj t id =
  match Hashtbl.find_opt t.objs id with
  | Some _ as hit -> hit
  | None ->
    refresh t;
    Hashtbl.find_opt t.objs id

let ensure_sorted t = if not t.sorted_valid then refresh t

(* Nearest heap/global object edge to an address that belongs to none:
   used to classify redzone landings as out-of-bounds on a neighbour. *)
let nearest t addr =
  ensure_sorted t;
  let arr = t.sorted in
  let n = Array.length arr in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let b, _, _ = arr.(mid) in
      if b <= addr then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    let pred =
      if !best < 0 then None
      else
        let _, last, o = arr.(!best) in
        if addr > last then Some (addr - last, `After, o) else None
    in
    let succ =
      if !best + 1 >= n then None
      else
        let b, _, o = arr.(!best + 1) in
        Some (b - addr, `Before, o)
    in
    match (pred, succ) with
    | Some ((d1, _, _) as p), Some ((d2, _, _) as s) ->
      Some (if d1 <= d2 then p else s)
    | (Some _ as hit), None | None, (Some _ as hit) -> hit
    | None, None -> None
  end

let rw is_write = if is_write then "write" else "read"

(* --- per-reference checks ---------------------------------------------- *)

let check_init_ref t (o : Mem_object.t) ~addr ~size ~is_write ~idx =
  match Hashtbl.find_opt t.init_maps o.id with
  | None -> () (* allocated before the sanitizer attached: not tracked *)
  | Some map ->
    let lo = Stdlib.max 0 (addr - o.base) in
    let hi = Stdlib.min o.size (addr - o.base + size) in
    if hi > lo then
      if is_write then Bytes.fill map lo (hi - lo) '\001'
      else begin
        let uninit = ref false in
        for b = lo to hi - 1 do
          if Bytes.get map b = '\000' then uninit := true
        done;
        if !uninit then begin
          add t ~occurrence:(occurrence t idx) Diagnostic.Uninit_read
            ~owner:o.name
            ~detail:
              (Printf.sprintf
                 "read at 0x%x touches never-written byte(s) of %s [0x%x,+%d)"
                 addr o.name o.base o.size);
          (* mark as initialised so one defect reports once per fill *)
          Bytes.fill map lo (hi - lo) '\001'
        end
      end

let check_attributed t ~addr ~size ~is_write ~id ~idx =
  match find_obj t id with
  | None -> ()
  | Some o when o.kind = Layout.Stack -> ()
  | Some o ->
    if o.kind = Layout.Heap && not o.live then
      add t ~occurrence:(occurrence t idx) Diagnostic.Use_after_free
        ~owner:o.name
        ~detail:
          (Printf.sprintf "%s at 0x%x into freed heap object %s [0x%x,+%d)"
             (rw is_write) addr o.name o.base o.size);
    if addr + size - 1 > Mem_object.last_byte o then
      add t ~occurrence:(occurrence t idx) Diagnostic.Straddle ~owner:o.name
        ~detail:
          (Printf.sprintf
             "%d-byte %s at 0x%x runs %d byte(s) past the end of %s [0x%x,+%d)"
             size (rw is_write) addr
             (addr + size - 1 - Mem_object.last_byte o)
             o.name o.base o.size);
    if t.check_init && o.kind = Layout.Heap && o.live then
      check_init_ref t o ~addr ~size ~is_write ~idx

let stale_owner t addr =
  let best = ref None in
  Hashtbl.iter
    (fun routine (stamp, lo, hi) ->
      if addr >= lo && addr < hi then
        match !best with
        | Some (s, _) when s >= stamp -> ()
        | _ -> best := Some (stamp, routine))
    t.popped;
  match !best with Some (_, routine) -> Some routine | None -> None

let check_unattributed t ~addr ~size ~is_write ~idx ~sp ~low_water =
  let occ = occurrence t idx in
  match Layout.classify addr with
  | Some Layout.Stack ->
    if addr < sp && addr >= low_water then begin
      let owner, where =
        match stale_owner t addr with
        | Some routine -> (routine, Printf.sprintf "popped frame of %s" routine)
        | None -> ("<stack>", "a popped stack region")
      in
      add t ~occurrence:occ Diagnostic.Stale_stack ~owner
        ~detail:
          (Printf.sprintf "%s at 0x%x into %s (sp=0x%x)" (rw is_write) addr
             where sp)
    end
    else
      add t ~occurrence:occ Diagnostic.Unattributed ~owner:"<stack>"
        ~detail:
          (Printf.sprintf "stack %s at 0x%x outside any live frame"
             (rw is_write) addr)
  | Some (Layout.Heap | Layout.Global) -> (
    let redzone = Ctx.redzone_bytes t.ctx in
    match nearest t addr with
    | Some (dist, side, o) when redzone > 0 && dist <= redzone ->
      add t ~occurrence:occ Diagnostic.Out_of_bounds ~owner:o.Mem_object.name
        ~detail:
          (Printf.sprintf "%d-byte %s at 0x%x, %d byte(s) %s %s [0x%x,+%d)"
             size (rw is_write) addr dist
             (match side with
             | `After -> "past the end of"
             | `Before -> "before the start of")
             o.Mem_object.name o.Mem_object.base o.Mem_object.size)
    | _ ->
      add t ~occurrence:occ Diagnostic.Unattributed ~owner:"<unregistered>"
        ~detail:
          (Printf.sprintf "%s at 0x%x resolves to no registered object"
             (rw is_write) addr))
  | None ->
    add t ~occurrence:occ Diagnostic.Unattributed ~owner:"<unmapped>"
      ~detail:
        (Printf.sprintf "%s at 0x%x outside every segment" (rw is_write) addr)

(* Batches arrive flushed-before-mutation (Ctx pre-mutation flush), so the
   shadow-stack state below is the state every reference in the slice was
   emitted under — at any batch capacity. *)
let on_batch t batch (ids : int array) ~first ~n =
  let shadow = Ctx.shadow t.ctx in
  let sp = Shadow_stack.sp shadow in
  let low_water = Shadow_stack.max_extent shadow in
  for i = first to first + n - 1 do
    let addr = Sink.Batch.addr batch i in
    let size = Sink.Batch.size batch i in
    let is_write = Sink.Batch.is_write batch i in
    let idx = t.refs_seen in
    t.refs_seen <- idx + 1;
    let id = ids.(i) in
    if id >= 0 then check_attributed t ~addr ~size ~is_write ~id ~idx
    else check_unattributed t ~addr ~size ~is_write ~idx ~sp ~low_water
  done

(* --- lifecycle checks --------------------------------------------------- *)

let phase_name = function
  | Mem_object.Pre -> "pre"
  | Mem_object.Post -> "post"
  | Mem_object.Main i -> Printf.sprintf "main[%d]" i

let check_balance t boundary =
  let actual = Shadow_stack.depth (Ctx.shadow t.ctx) in
  let delta = actual - t.tracked_depth in
  if delta <> t.reported_imbalance then begin
    add t Diagnostic.Unbalanced_frames ~owner:(phase_name boundary)
      ~detail:
        (Printf.sprintf
           "shadow stack holds %d frame(s) not pushed through Ctx.call at \
            the %s boundary (depth %d, tracked %d)"
           delta (phase_name boundary) actual t.tracked_depth);
    t.reported_imbalance <- delta
  end

let on_event t (ev : Ctx.event) =
  match ev with
  | Ctx.Alloc o ->
    Hashtbl.replace t.objs o.id o;
    t.sorted_valid <- false;
    if t.check_init && o.kind = Layout.Heap then
      Hashtbl.replace t.init_maps o.id (Bytes.make o.size '\000')
  | Ctx.Free _ -> ()
  | Ctx.Frame_push (obj, _frame) ->
    Hashtbl.replace t.objs obj.Mem_object.id obj;
    t.tracked_depth <- t.tracked_depth + 1
  | Ctx.Frame_pop frame ->
    t.tracked_depth <- t.tracked_depth - 1;
    t.pop_stamp <- t.pop_stamp + 1;
    Hashtbl.replace t.popped frame.Shadow_stack.routine
      ( t.pop_stamp,
        frame.Shadow_stack.base_sp - frame.Shadow_stack.frame_size,
        frame.Shadow_stack.base_sp )
  | Ctx.Phase_change phase -> check_balance t phase
  | Ctx.Persist _ -> () (* Persist_check's concern *)

(* --- teardown checks ---------------------------------------------------- *)

let check_overlaps t =
  let live =
    List.filter
      (fun (o : Mem_object.t) -> o.live && o.kind <> Layout.Stack)
      (Object_registry.objects (Ctx.registry t.ctx))
  in
  let arr = Array.of_list live in
  Array.sort
    (fun (a : Mem_object.t) b -> compare (a.base, a.id) (b.base, b.id))
    arr;
  let cover = ref None in
  Array.iter
    (fun (o : Mem_object.t) ->
      (match !cover with
      | Some ((p : Mem_object.t), last) when o.base <= last ->
        let a, b = if p.name <= o.name then (p, o) else (o, p) in
        add t Diagnostic.Overlap
          ~owner:(Printf.sprintf "%s/%s" a.name b.name)
          ~detail:
            (Printf.sprintf
               "live registrations %s [0x%x,+%d) and %s [0x%x,+%d) overlap"
               a.name a.base a.size b.name b.base b.size)
      | _ -> ());
      match !cover with
      | Some (_, last) when last >= Mem_object.last_byte o -> ()
      | _ -> cover := Some (o, Mem_object.last_byte o))
    arr

let check_leaks t =
  List.iter
    (fun (o : Mem_object.t) ->
      match (o.kind, o.live, o.alloc_phase) with
      | Layout.Heap, true, Mem_object.Main i ->
        add t Diagnostic.Leak ~owner:o.name
          ~detail:
            (Printf.sprintf
               "heap object %s [0x%x,+%d) allocated in main[%d] is still \
                live at teardown"
               o.name o.base o.size i)
      | _ -> ())
    (Object_registry.objects (Ctx.registry t.ctx))

(* --- public API --------------------------------------------------------- *)

let attach ?(check_init = false) ctx =
  let t =
    {
      ctx;
      collector = Diagnostic.Collector.create ();
      check_init;
      objs = Hashtbl.create 256;
      init_maps = Hashtbl.create 64;
      popped = Hashtbl.create 64;
      pop_stamp = 0;
      tracked_depth = Shadow_stack.depth (Ctx.shadow ctx);
      reported_imbalance = 0;
      sorted = [||];
      sorted_valid = false;
      refs_seen = 0;
      finished = false;
    }
  in
  Ctx.add_event_sink ctx (on_event t);
  Ctx.add_attributed_sink ctx (fun batch ids ~first ~n ->
      on_batch t batch ids ~first ~n);
  refresh t;
  t

let refs_checked t = t.refs_seen

let finish t =
  if not t.finished then begin
    t.finished <- true;
    Ctx.flush_refs t.ctx;
    check_balance t (Ctx.phase t.ctx);
    check_overlaps t;
    check_leaks t
  end;
  Diagnostic.Collector.report t.collector
