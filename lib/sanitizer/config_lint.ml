module Technology = Nvsc_nvram.Technology
module Ctx = Nvsc_appkit.Ctx
module Counters = Nvsc_memtrace.Counters
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Persist = Nvsc_memtrace.Persist
module Hybrid_memory = Nvsc_placement.Hybrid_memory
module Item = Nvsc_placement.Item
module Static_policy = Nvsc_placement.Static_policy
module Cache_params = Nvsc_cachesim.Cache_params
module Org = Nvsc_dramsim.Org
module Timing = Nvsc_dramsim.Timing
module Core_params = Nvsc_cpusim.Core_params
module Workload = Nvsc_apps.Workload

let is_pow2 n = n > 0 && n land (n - 1) = 0

let fail c ~owner ~detail =
  Diagnostic.Collector.add c Diagnostic.Config ~owner ~detail

let check c cond ~owner ~detail = if not cond then fail c ~owner ~detail

let with_collector f =
  let c = Diagnostic.Collector.create () in
  f c;
  Diagnostic.Collector.report c

(* --- NVRAM technologies ------------------------------------------------- *)

let technology_c c (t : Technology.t) =
  let owner field = Printf.sprintf "Technology.%s.%s" t.name field in
  check c (t.read_latency_ns > 0.) ~owner:(owner "read_latency_ns")
    ~detail:"read latency must be positive";
  check c
    (t.write_latency_ns >= t.read_latency_ns)
    ~owner:(owner "write_latency_ns")
    ~detail:
      (Printf.sprintf
         "write latency (%.1fns) below read latency (%.1fns): no surveyed \
          cell writes faster than it reads"
         t.write_latency_ns t.read_latency_ns);
  check c
    (t.perf_sim_latency_ns >= t.read_latency_ns
    && t.perf_sim_latency_ns >= t.write_latency_ns)
    ~owner:(owner "perf_sim_latency_ns")
    ~detail:
      "performance-simulation latency must cover the slower of read and \
       write";
  check c (t.read_current_ma > 0.) ~owner:(owner "read_current_ma")
    ~detail:"read current must be positive";
  check c
    (t.write_current_ma >= t.read_current_ma)
    ~owner:(owner "write_current_ma")
    ~detail:"write current below read current";
  check c (t.write_endurance > 0.) ~owner:(owner "write_endurance")
    ~detail:"write endurance must be positive";
  check c (t.standby_power_rel >= 0.) ~owner:(owner "standby_power_rel")
    ~detail:"standby power cannot be negative";
  check c
    (not (t.non_volatile && t.needs_refresh))
    ~owner:(owner "needs_refresh")
    ~detail:"a non-volatile technology does not need refresh";
  check c
    ((t.category = Technology.Volatile) = not t.non_volatile)
    ~owner:(owner "category")
    ~detail:"volatile category and non_volatile flag disagree"

let technology t = with_collector (fun c -> technology_c c t)

(* --- cache hierarchy ---------------------------------------------------- *)

let cache_c c (p : Cache_params.t) =
  let owner field = Printf.sprintf "Cache.%s.%s" p.name field in
  check c (is_pow2 p.size_bytes) ~owner:(owner "size_bytes")
    ~detail:(Printf.sprintf "size %d is not a power of two" p.size_bytes);
  check c (is_pow2 p.line_bytes) ~owner:(owner "line_bytes")
    ~detail:(Printf.sprintf "line size %d is not a power of two" p.line_bytes);
  check c (is_pow2 p.associativity) ~owner:(owner "associativity")
    ~detail:
      (Printf.sprintf "associativity %d is not a power of two" p.associativity);
  check c
    (p.size_bytes >= p.line_bytes * p.associativity)
    ~owner:(owner "size_bytes")
    ~detail:"cache smaller than one set"

let caches_c c ~l1d ~l1i ~l2 =
  List.iter (cache_c c) [ l1d; l1i; l2 ];
  check c
    (l2.Cache_params.size_bytes > l1d.Cache_params.size_bytes)
    ~owner:"Cache.L2.size_bytes"
    ~detail:"L2 must be larger than L1D for an inclusive hierarchy";
  check c
    (l1d.Cache_params.line_bytes = l2.Cache_params.line_bytes
    && l1i.Cache_params.line_bytes = l2.Cache_params.line_bytes)
    ~owner:"Cache.line_bytes"
    ~detail:"all levels must share one line size"

let caches ~l1d ~l1i ~l2 = with_collector (fun c -> caches_c c ~l1d ~l1i ~l2)

(* --- DRAM/NVRAM organisation and timing --------------------------------- *)

let org_c c (o : Org.t) =
  let owner field = Printf.sprintf "Org.%s" field in
  let pow2 v field =
    check c (is_pow2 v) ~owner:(owner field)
      ~detail:(Printf.sprintf "%s = %d is not a power of two" field v)
  in
  pow2 o.ranks "ranks";
  pow2 o.banks "banks";
  pow2 o.rows "rows";
  pow2 o.cols "cols";
  pow2 o.device_width_bits "device_width_bits";
  pow2 o.bus_width_bits "bus_width_bits";
  pow2 o.line_bytes "line_bytes";
  check c
    (Org.row_bytes o >= o.line_bytes)
    ~owner:(owner "cols")
    ~detail:"a row must hold at least one cache line"

let org o = with_collector (fun c -> org_c c o)

let timing_c c ~name (t : Timing.t) =
  let owner field = Printf.sprintf "Timing.%s.%s" name field in
  let pos v field =
    check c (v > 0.) ~owner:(owner field)
      ~detail:(Printf.sprintf "%s = %.2fns must be positive" field v)
  in
  pos t.t_cas_ns "t_cas_ns";
  pos t.t_rcd_ns "t_rcd_ns";
  pos t.t_rp_ns "t_rp_ns";
  pos t.t_wr_ns "t_wr_ns";
  pos t.t_burst_ns "t_burst_ns";
  check c (t.t_refi_ns > t.t_rfc_ns) ~owner:(owner "t_refi_ns")
    ~detail:"refresh interval must exceed the refresh cycle time"

let timing ~name t = with_collector (fun c -> timing_c c ~name t)

(* --- core model --------------------------------------------------------- *)

let core_c c (p : Core_params.t) =
  let owner field = Printf.sprintf "Core.%s" field in
  check c (p.clock_ghz > 0.) ~owner:(owner "clock_ghz")
    ~detail:"clock must be positive";
  check c (p.l1_hit_cycles >= 1) ~owner:(owner "l1_hit_cycles")
    ~detail:"an L1 hit takes at least one cycle";
  check c
    (p.l2_hit_cycles > p.l1_hit_cycles)
    ~owner:(owner "l2_hit_cycles")
    ~detail:
      (Printf.sprintf
         "latency hierarchy not monotone: L2 hit (%d cy) <= L1 hit (%d cy)"
         p.l2_hit_cycles p.l1_hit_cycles);
  check c (is_pow2 p.page_bytes) ~owner:(owner "page_bytes")
    ~detail:"page size must be a power of two";
  check c (p.tlb_entries > 0) ~owner:(owner "tlb_entries")
    ~detail:"TLB must have entries";
  check c
    (p.rob_entries >= p.issue_width)
    ~owner:(owner "rob_entries")
    ~detail:"ROB cannot be narrower than the issue width";
  check c
    (p.miss_buffer >= p.effective_mlp)
    ~owner:(owner "miss_buffer")
    ~detail:"miss buffer cannot sustain the claimed MLP"

let core p = with_collector (fun c -> core_c c p)

(* The cross-layer check: every modelled memory technology must be slower
   to reach than the last cache level, or the simulated hierarchy inverts. *)
let hierarchy_c c (core : Core_params.t) (techs : Technology.t list) =
  List.iter
    (fun (t : Technology.t) ->
      let read_cycles = t.read_latency_ns *. core.clock_ghz in
      check c
        (read_cycles > float_of_int core.l2_hit_cycles)
        ~owner:(Printf.sprintf "Technology.%s.read_latency_ns" t.name)
        ~detail:
          (Printf.sprintf
             "memory read (%.1f cy) not slower than an L2 hit (%d cy)"
             read_cycles core.l2_hit_cycles))
    techs

(* --- per-app workload config -------------------------------------------- *)

let app_c c (module A : Workload.APP) =
  let owner field = Printf.sprintf "App.%s.%s" A.name field in
  check c (A.name <> "") ~owner:"App.name" ~detail:"empty app name";
  check c
    (A.name = String.lowercase_ascii A.name)
    ~owner:(owner "name")
    ~detail:"app names are lowercase (CLI lookup lowercases its argument)";
  check c
    (A.paper_footprint_mb >= 0.)
    ~owner:(owner "paper_footprint_mb")
    ~detail:
      "the paper's reference footprint cannot be negative (0 marks an app \
       beyond the paper's set)";
  check c (A.description <> "") ~owner:(owner "description")
    ~detail:"empty description";
  check c
    (A.input_description <> "")
    ~owner:(owner "input_description")
    ~detail:"empty input description"

let app a = with_collector (fun c -> app_c c a)

(* --- persist lint: the static half of NVSC-Persist ----------------------- *)

(* Writes per word per main-loop iteration of a declared-persistent object.
   Checkpointed-once-per-iteration state scores ~1; write-hammered working
   arrays score far higher and do not belong in NVM (paper §IV: wear and
   write latency dominate). *)
let wear_density ~counters ~iterations (o : Mem_object.t) =
  let main_writes =
    Counters.total_writes counters ~obj_id:o.id
    - Counters.writes counters ~obj_id:o.id ~iter:0
  in
  let words = Stdlib.max 1 (o.size / 8) in
  float_of_int main_writes
  /. float_of_int words
  /. float_of_int (Stdlib.max 1 iterations)

let default_wear_threshold = 4.0

let persist_c c ?(scale = 0.1) ?(iterations = 3)
    ?(wear_threshold = default_wear_threshold)
    ?(tech = Technology.get Technology.PCRAM) (module A : Workload.APP) =
  (* A structure-only run: the persist lint needs the epoch/declare event
     sequence and the per-object counters the context keeps anyway — no
     reference sink, no trace, no simulation. *)
  let ctx = Ctx.create () in
  Fun.protect ~finally:(fun () -> Ctx.release ctx) @@ fun () ->
  let declared : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  let known : (int, Mem_object.t) Hashtbl.t = Hashtbl.create 128 in
  let epoch_stack = ref [] in
  Ctx.add_event_sink ctx (function
    | Ctx.Alloc o | Ctx.Frame_push (o, _) ->
      Hashtbl.replace known o.Mem_object.id o
    | Ctx.Free _ | Ctx.Frame_pop _ | Ctx.Phase_change _ -> ()
    | Ctx.Persist ev -> (
      match ev with
      | Persist.Declare { obj_id } -> Hashtbl.replace declared obj_id ()
      | Persist.Epoch_begin { label; _ } ->
        (match !epoch_stack with
        | outer :: _ ->
          Diagnostic.Collector.add c Diagnostic.Epoch_unbalanced ~owner:label
            ~detail:
              (Printf.sprintf "epoch %S begins inside still-open epoch %S"
                 label outer)
        | [] -> ());
        epoch_stack := label :: !epoch_stack
      | Persist.Epoch_commit { label; _ } -> (
        match !epoch_stack with
        | [] ->
          Diagnostic.Collector.add c Diagnostic.Epoch_unbalanced ~owner:label
            ~detail:
              (Printf.sprintf "commit of %S without a matching begin" label)
        | open_label :: rest ->
          if open_label <> label then
            Diagnostic.Collector.add c Diagnostic.Epoch_unbalanced
              ~owner:label
              ~detail:
                (Printf.sprintf "commit of %S closes mismatched epoch %S"
                   label open_label);
          epoch_stack := rest)
      | Persist.Flush _ | Persist.Fence -> ()));
  A.run ~scale ctx ~iterations;
  Ctx.flush_refs ctx;
  List.iter
    (fun label ->
      Diagnostic.Collector.add c Diagnostic.Epoch_unbalanced ~owner:label
        ~detail:
          (Printf.sprintf "epoch %S still open at the end of the run" label))
    !epoch_stack;
  if Hashtbl.length declared > 0 then begin
    let counters = Ctx.counters ctx in
    let main_refs (o : Mem_object.t) =
      Counters.total_reads counters ~obj_id:o.id
      - Counters.reads counters ~obj_id:o.id ~iter:0
      + Counters.total_writes counters ~obj_id:o.id
      - Counters.writes counters ~obj_id:o.id ~iter:0
    in
    let heap_globals =
      List.filter
        (fun (o : Mem_object.t) -> o.kind <> Layout.Stack && o.live)
        (Object_registry.objects (Ctx.registry ctx))
    in
    let all_objects = heap_globals @ Ctx.stack_objects ctx in
    let total_main =
      Stdlib.max 1 (List.fold_left (fun acc o -> acc + main_refs o) 0 all_objects)
    in
    let items =
      List.map
        (fun (o : Mem_object.t) ->
          {
            Item.id = o.id;
            name = o.name;
            size_bytes = o.size;
            reads =
              Counters.total_reads counters ~obj_id:o.id
              - Counters.reads counters ~obj_id:o.id ~iter:0;
            writes =
              Counters.total_writes counters ~obj_id:o.id
              - Counters.writes counters ~obj_id:o.id ~iter:0;
            ref_share = float_of_int (main_refs o) /. float_of_int total_main;
          })
        heap_globals
    in
    let footprint =
      List.fold_left (fun acc (i : Item.t) -> acc + i.size_bytes) 0 items
    in
    let hybrid =
      Hybrid_memory.create ~dram_bytes:(2 * footprint)
        ~nvram_bytes:(2 * footprint) ~tech
    in
    let pinned (i : Item.t) = Hashtbl.mem declared i.id in
    ignore (Static_policy.plan ~pinned ~hybrid items);
    List.iter
      (fun (i : Item.t) ->
        if pinned i && Hybrid_memory.location hybrid i = Some Hybrid_memory.Dram
        then
          Diagnostic.Collector.add c Diagnostic.Persist_placement ~owner:i.name
            ~detail:
              (Printf.sprintf
                 "persistent object %s (%d bytes) placed in DRAM — its \
                  durability contract needs NVRAM"
                 i.name i.size_bytes))
      items;
    Hashtbl.iter
      (fun id () ->
        match Hashtbl.find_opt known id with
        | None -> ()
        | Some o ->
          let density = wear_density ~counters ~iterations o in
          if density > wear_threshold then
            Diagnostic.Collector.add c Diagnostic.Persist_write_heavy
              ~owner:o.name
              ~detail:
                (Printf.sprintf
                   "%.1f writes/word/iteration to persistent %s — %s wear \
                    and write latency dominate (threshold %.1f)"
                   density o.name tech.Technology.name wear_threshold))
      declared
  end

let persist ?scale ?iterations ?wear_threshold ?tech a =
  with_collector (fun c -> persist_c c ?scale ?iterations ?wear_threshold ?tech a)

(* --- everything the simulators ship with -------------------------------- *)

let all ?app () =
  with_collector (fun c ->
      List.iter (technology_c c) Technology.all;
      caches_c c ~l1d:Cache_params.paper_l1d ~l1i:Cache_params.paper_l1i
        ~l2:Cache_params.paper_l2;
      org_c c Org.paper;
      List.iter
        (fun (t : Technology.t) ->
          timing_c c ~name:t.name (Timing.of_tech t ~org:Org.paper))
        Technology.paper_set;
      core_c c Core_params.paper;
      hierarchy_c c Core_params.paper Technology.paper_set;
      match app with Some a -> app_c c a | None -> ())
