module Technology = Nvsc_nvram.Technology
module Cache_params = Nvsc_cachesim.Cache_params
module Org = Nvsc_dramsim.Org
module Timing = Nvsc_dramsim.Timing
module Core_params = Nvsc_cpusim.Core_params
module Workload = Nvsc_apps.Workload

let is_pow2 n = n > 0 && n land (n - 1) = 0

let fail c ~owner ~detail =
  Diagnostic.Collector.add c Diagnostic.Config ~owner ~detail

let check c cond ~owner ~detail = if not cond then fail c ~owner ~detail

let with_collector f =
  let c = Diagnostic.Collector.create () in
  f c;
  Diagnostic.Collector.report c

(* --- NVRAM technologies ------------------------------------------------- *)

let technology_c c (t : Technology.t) =
  let owner field = Printf.sprintf "Technology.%s.%s" t.name field in
  check c (t.read_latency_ns > 0.) ~owner:(owner "read_latency_ns")
    ~detail:"read latency must be positive";
  check c
    (t.write_latency_ns >= t.read_latency_ns)
    ~owner:(owner "write_latency_ns")
    ~detail:
      (Printf.sprintf
         "write latency (%.1fns) below read latency (%.1fns): no surveyed \
          cell writes faster than it reads"
         t.write_latency_ns t.read_latency_ns);
  check c
    (t.perf_sim_latency_ns >= t.read_latency_ns
    && t.perf_sim_latency_ns >= t.write_latency_ns)
    ~owner:(owner "perf_sim_latency_ns")
    ~detail:
      "performance-simulation latency must cover the slower of read and \
       write";
  check c (t.read_current_ma > 0.) ~owner:(owner "read_current_ma")
    ~detail:"read current must be positive";
  check c
    (t.write_current_ma >= t.read_current_ma)
    ~owner:(owner "write_current_ma")
    ~detail:"write current below read current";
  check c (t.write_endurance > 0.) ~owner:(owner "write_endurance")
    ~detail:"write endurance must be positive";
  check c (t.standby_power_rel >= 0.) ~owner:(owner "standby_power_rel")
    ~detail:"standby power cannot be negative";
  check c
    (not (t.non_volatile && t.needs_refresh))
    ~owner:(owner "needs_refresh")
    ~detail:"a non-volatile technology does not need refresh";
  check c
    ((t.category = Technology.Volatile) = not t.non_volatile)
    ~owner:(owner "category")
    ~detail:"volatile category and non_volatile flag disagree"

let technology t = with_collector (fun c -> technology_c c t)

(* --- cache hierarchy ---------------------------------------------------- *)

let cache_c c (p : Cache_params.t) =
  let owner field = Printf.sprintf "Cache.%s.%s" p.name field in
  check c (is_pow2 p.size_bytes) ~owner:(owner "size_bytes")
    ~detail:(Printf.sprintf "size %d is not a power of two" p.size_bytes);
  check c (is_pow2 p.line_bytes) ~owner:(owner "line_bytes")
    ~detail:(Printf.sprintf "line size %d is not a power of two" p.line_bytes);
  check c (is_pow2 p.associativity) ~owner:(owner "associativity")
    ~detail:
      (Printf.sprintf "associativity %d is not a power of two" p.associativity);
  check c
    (p.size_bytes >= p.line_bytes * p.associativity)
    ~owner:(owner "size_bytes")
    ~detail:"cache smaller than one set"

let caches_c c ~l1d ~l1i ~l2 =
  List.iter (cache_c c) [ l1d; l1i; l2 ];
  check c
    (l2.Cache_params.size_bytes > l1d.Cache_params.size_bytes)
    ~owner:"Cache.L2.size_bytes"
    ~detail:"L2 must be larger than L1D for an inclusive hierarchy";
  check c
    (l1d.Cache_params.line_bytes = l2.Cache_params.line_bytes
    && l1i.Cache_params.line_bytes = l2.Cache_params.line_bytes)
    ~owner:"Cache.line_bytes"
    ~detail:"all levels must share one line size"

let caches ~l1d ~l1i ~l2 = with_collector (fun c -> caches_c c ~l1d ~l1i ~l2)

(* --- DRAM/NVRAM organisation and timing --------------------------------- *)

let org_c c (o : Org.t) =
  let owner field = Printf.sprintf "Org.%s" field in
  let pow2 v field =
    check c (is_pow2 v) ~owner:(owner field)
      ~detail:(Printf.sprintf "%s = %d is not a power of two" field v)
  in
  pow2 o.ranks "ranks";
  pow2 o.banks "banks";
  pow2 o.rows "rows";
  pow2 o.cols "cols";
  pow2 o.device_width_bits "device_width_bits";
  pow2 o.bus_width_bits "bus_width_bits";
  pow2 o.line_bytes "line_bytes";
  check c
    (Org.row_bytes o >= o.line_bytes)
    ~owner:(owner "cols")
    ~detail:"a row must hold at least one cache line"

let org o = with_collector (fun c -> org_c c o)

let timing_c c ~name (t : Timing.t) =
  let owner field = Printf.sprintf "Timing.%s.%s" name field in
  let pos v field =
    check c (v > 0.) ~owner:(owner field)
      ~detail:(Printf.sprintf "%s = %.2fns must be positive" field v)
  in
  pos t.t_cas_ns "t_cas_ns";
  pos t.t_rcd_ns "t_rcd_ns";
  pos t.t_rp_ns "t_rp_ns";
  pos t.t_wr_ns "t_wr_ns";
  pos t.t_burst_ns "t_burst_ns";
  check c (t.t_refi_ns > t.t_rfc_ns) ~owner:(owner "t_refi_ns")
    ~detail:"refresh interval must exceed the refresh cycle time"

let timing ~name t = with_collector (fun c -> timing_c c ~name t)

(* --- core model --------------------------------------------------------- *)

let core_c c (p : Core_params.t) =
  let owner field = Printf.sprintf "Core.%s" field in
  check c (p.clock_ghz > 0.) ~owner:(owner "clock_ghz")
    ~detail:"clock must be positive";
  check c (p.l1_hit_cycles >= 1) ~owner:(owner "l1_hit_cycles")
    ~detail:"an L1 hit takes at least one cycle";
  check c
    (p.l2_hit_cycles > p.l1_hit_cycles)
    ~owner:(owner "l2_hit_cycles")
    ~detail:
      (Printf.sprintf
         "latency hierarchy not monotone: L2 hit (%d cy) <= L1 hit (%d cy)"
         p.l2_hit_cycles p.l1_hit_cycles);
  check c (is_pow2 p.page_bytes) ~owner:(owner "page_bytes")
    ~detail:"page size must be a power of two";
  check c (p.tlb_entries > 0) ~owner:(owner "tlb_entries")
    ~detail:"TLB must have entries";
  check c
    (p.rob_entries >= p.issue_width)
    ~owner:(owner "rob_entries")
    ~detail:"ROB cannot be narrower than the issue width";
  check c
    (p.miss_buffer >= p.effective_mlp)
    ~owner:(owner "miss_buffer")
    ~detail:"miss buffer cannot sustain the claimed MLP"

let core p = with_collector (fun c -> core_c c p)

(* The cross-layer check: every modelled memory technology must be slower
   to reach than the last cache level, or the simulated hierarchy inverts. *)
let hierarchy_c c (core : Core_params.t) (techs : Technology.t list) =
  List.iter
    (fun (t : Technology.t) ->
      let read_cycles = t.read_latency_ns *. core.clock_ghz in
      check c
        (read_cycles > float_of_int core.l2_hit_cycles)
        ~owner:(Printf.sprintf "Technology.%s.read_latency_ns" t.name)
        ~detail:
          (Printf.sprintf
             "memory read (%.1f cy) not slower than an L2 hit (%d cy)"
             read_cycles core.l2_hit_cycles))
    techs

(* --- per-app workload config -------------------------------------------- *)

let app_c c (module A : Workload.APP) =
  let owner field = Printf.sprintf "App.%s.%s" A.name field in
  check c (A.name <> "") ~owner:"App.name" ~detail:"empty app name";
  check c
    (A.name = String.lowercase_ascii A.name)
    ~owner:(owner "name")
    ~detail:"app names are lowercase (CLI lookup lowercases its argument)";
  check c
    (A.paper_footprint_mb >= 0.)
    ~owner:(owner "paper_footprint_mb")
    ~detail:
      "the paper's reference footprint cannot be negative (0 marks an app \
       beyond the paper's set)";
  check c (A.description <> "") ~owner:(owner "description")
    ~detail:"empty description";
  check c
    (A.input_description <> "")
    ~owner:(owner "input_description")
    ~detail:"empty input description"

let app a = with_collector (fun c -> app_c c a)

(* --- everything the simulators ship with -------------------------------- *)

let all ?app () =
  with_collector (fun c ->
      List.iter (technology_c c) Technology.all;
      caches_c c ~l1d:Cache_params.paper_l1d ~l1i:Cache_params.paper_l1i
        ~l2:Cache_params.paper_l2;
      org_c c Org.paper;
      List.iter
        (fun (t : Technology.t) ->
          timing_c c ~name:t.name (Timing.of_tech t ~org:Org.paper))
        Technology.paper_set;
      core_c c Core_params.paper;
      hierarchy_c c Core_params.paper Technology.paper_set;
      match app with Some a -> app_c c a | None -> ())
