module Mem_object = Nvsc_memtrace.Mem_object

type severity = Error | Warning

type klass =
  | Out_of_bounds
  | Straddle
  | Use_after_free
  | Stale_stack
  | Unattributed
  | Uninit_read
  | Overlap
  | Unbalanced_frames
  | Leak
  | Config
  | Unflushed_commit
  | Flush_race
  | Torn_checkpoint
  | Epoch_unbalanced
  | Redundant_flush
  | Useless_fence
  | Persist_placement
  | Persist_write_heavy

type occurrence = { phase : Mem_object.phase; index : int }
type source = { file : string; chunk : int; record : int }

type finding = {
  severity : severity;
  klass : klass;
  owner : string;
  detail : string;
  count : int;
  first : occurrence option;
  source : source option;
}

type report = finding list

let klass_to_string = function
  | Out_of_bounds -> "out-of-bounds"
  | Straddle -> "straddle"
  | Use_after_free -> "use-after-free"
  | Stale_stack -> "stale-stack"
  | Unattributed -> "unattributed"
  | Uninit_read -> "uninit-read"
  | Overlap -> "overlap"
  | Unbalanced_frames -> "unbalanced-frames"
  | Leak -> "leak"
  | Config -> "config"
  | Unflushed_commit -> "unflushed-at-commit"
  | Flush_race -> "store-during-flush"
  | Torn_checkpoint -> "torn-checkpoint"
  | Epoch_unbalanced -> "epoch-unbalanced"
  | Redundant_flush -> "redundant-flush"
  | Useless_fence -> "useless-fence"
  | Persist_placement -> "persist-placement"
  | Persist_write_heavy -> "persist-write-heavy"

(* rank used only to order the report deterministically *)
let klass_rank = function
  | Config -> 0
  | Out_of_bounds -> 1
  | Straddle -> 2
  | Use_after_free -> 3
  | Stale_stack -> 4
  | Uninit_read -> 5
  | Unattributed -> 6
  | Overlap -> 7
  | Unbalanced_frames -> 8
  | Leak -> 9
  | Unflushed_commit -> 10
  | Flush_race -> 11
  | Torn_checkpoint -> 12
  | Epoch_unbalanced -> 13
  | Redundant_flush -> 14
  | Useless_fence -> 15
  | Persist_placement -> 16
  | Persist_write_heavy -> 17

let severity_rank = function Error -> 0 | Warning -> 1

let default_severity = function
  | Leak | Redundant_flush | Useless_fence | Persist_write_heavy -> Warning
  | _ -> Error

let compare_findings a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = compare (klass_rank a.klass) (klass_rank b.klass) in
    if c <> 0 then c
    else
      let c = compare a.owner b.owner in
      if c <> 0 then c else compare a.detail b.detail

let sort_report r = List.sort compare_findings r
let merge a b = sort_report (a @ b)
let is_clean r = r = []

let count_severity sev r =
  List.fold_left
    (fun acc f -> if f.severity = sev then acc + f.count else acc)
    0 r

let errors = count_severity Error
let warnings = count_severity Warning

let pp_phase fmt = function
  | Mem_object.Pre -> Format.pp_print_string fmt "pre"
  | Mem_object.Post -> Format.pp_print_string fmt "post"
  | Mem_object.Main i -> Format.fprintf fmt "main[%d]" i

let pp_finding fmt f =
  Format.fprintf fmt "%s %-17s %-24s x%-6d %s"
    (match f.severity with Error -> "error  " | Warning -> "warning")
    (klass_to_string f.klass)
    f.owner f.count f.detail;
  (match f.first with
  | None -> ()
  | Some { phase; index } ->
    Format.fprintf fmt " (first: %a ref %d)" pp_phase phase index);
  match f.source with
  | None -> ()
  | Some { file; chunk; record } ->
    (* grep-able file:chunk:record, like a source location *)
    Format.fprintf fmt " [%s:%d:%d]" file chunk record

let pp_report fmt r =
  if is_clean r then Format.fprintf fmt "clean: no diagnostics@."
  else begin
    List.iter (fun f -> Format.fprintf fmt "%a@." pp_finding f) r;
    Format.fprintf fmt "%d error(s), %d warning(s) in %d class(es)@."
      (errors r) (warnings r)
      (List.length
         (List.sort_uniq compare (List.map (fun f -> f.klass) r)))
  end

(* --- aggregation ------------------------------------------------------- *)

module Collector = struct
  type entry = {
    mutable count : int;
    finding : finding; (* count field ignored; frozen first occurrence *)
  }

  type t = { tbl : (string, entry) Hashtbl.t }

  let create () = { tbl = Hashtbl.create 32 }

  let add t ?severity ?occurrence ?source klass ~owner ~detail =
    let key = klass_to_string klass ^ "\x00" ^ owner in
    match Hashtbl.find_opt t.tbl key with
    | Some e -> e.count <- e.count + 1
    | None ->
      let severity =
        match severity with Some s -> s | None -> default_severity klass
      in
      Hashtbl.add t.tbl key
        {
          count = 1;
          finding =
            {
              severity;
              klass;
              owner;
              detail;
              count = 1;
              first = occurrence;
              source;
            };
        }

  let report t =
    Hashtbl.fold
      (fun _ e acc -> { e.finding with count = e.count } :: acc)
      t.tbl []
    |> sort_report
end
