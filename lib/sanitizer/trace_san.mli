(** The NVSC-San trace sanitizer: an ASan/Memcheck-style monitor for the
    attributed reference stream.

    Attach it to a {!Nvsc_appkit.Ctx.t} {e before} running an application.
    It subscribes an attributed sink (per-reference shadow checks) and the
    context's lifecycle event sink (object allocation/free, frame
    push/pop, phase changes), then validates every delivered reference
    against the object/stack state it was emitted under:

    - references attributed to a freed heap object ([use-after-free]);
    - references that start inside an object but run past its end
      ([straddle]);
    - unattributed references landing in an allocation redzone
      ([out-of-bounds] — requires the context to be created with
      [~redzone_words > 0]);
    - unattributed stack references below the current stack pointer but
      within the stack's historical extent ([stale-stack]);
    - all other unattributed references ([unattributed]);
    - optionally, heap reads of bytes never written ([uninit-read]),
      tracked in a per-byte init bitmap seeded by writes;
    - push/pop imbalance versus the shadow stack at phase boundaries
      ([unbalanced-frames]).

    {!finish} adds teardown checks: overlapping live registrations
    ([overlap]) and heap objects allocated in the main loop still live at
    teardown ([leak]).

    Because the context flushes its emission batch before every mutation
    while an event sink is installed, the report is identical at any batch
    capacity. *)

type t

val attach : ?check_init:bool -> Nvsc_appkit.Ctx.t -> t
(** Install the sanitizer on the context (uses the context's single event
    sink slot).  [check_init] (default false) enables the per-byte
    uninitialised-read tracking for heap objects allocated after
    attachment. *)

val refs_checked : t -> int

val finish : t -> Diagnostic.report
(** Flush the context, run the teardown checks and return the aggregated
    report.  Idempotent: later calls return the same report. *)
