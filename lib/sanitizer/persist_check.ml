module Ctx = Nvsc_appkit.Ctx
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Persist = Nvsc_memtrace.Persist
module Sink = Nvsc_memtrace.Sink
module Trace_codec = Nvsc_memtrace.Trace_codec

let default_line_bytes = 64

type stats = {
  mutable stores_checked : int;
  mutable flushes : int;
  mutable flushed_lines : int;
  mutable fences : int;
  mutable epochs : int;
}

let zero_stats () =
  { stores_checked = 0; flushes = 0; flushed_lines = 0; fences = 0; epochs = 0 }

(* Per-cacheline durability state of one declared-persistent object.  One
   byte per line: '\000' clean (durable), '\001' dirty (in cache only),
   '\002' flushing (written back, not yet fenced). *)
type tracked = {
  obj : Mem_object.t;
  lines : Bytes.t;
  mutable dirty : int;  (* lines in state '\001' *)
  mutable inflight : int;  (* lines in state '\002' *)
}

type t = {
  collector : Diagnostic.Collector.t;
  line_bytes : int;
  line_shift : int;  (* log2 line_bytes — divisions are too hot here *)
  known : (int, Mem_object.t) Hashtbl.t;  (* every object seen, by id *)
  tracked : (int, tracked) Hashtbl.t;  (* the declared persist set *)
  (* the same set as a dense index: the per-reference hot loop must
     answer "is this write persistent?" without hashing *)
  mutable by_id : tracked option array;
  mutable epoch_stack : (string * bool) list;  (* innermost first *)
  mutable inflight : int;  (* in-flight lines across all objects *)
  mutable refs_seen : int;
  mutable boundaries : int;  (* epoch begin/commit events seen *)
  stats : stats;
  get_phase : unit -> Mem_object.phase;
  get_source : t -> Diagnostic.source option;  (* replay position stamp *)
  mutable finished : bool;
}

let add t ?severity klass ~owner ~detail =
  Diagnostic.Collector.add t.collector ?severity
    ~occurrence:{ Diagnostic.phase = t.get_phase (); index = t.refs_seen }
    ?source:(t.get_source t) klass ~owner ~detail

let lines_of t size = (size + t.line_bytes - 1) lsr t.line_shift

let track t (o : Mem_object.t) =
  if not (Hashtbl.mem t.tracked o.id) then begin
    let tr =
      {
        obj = o;
        lines = Bytes.make (Stdlib.max 1 (lines_of t o.size)) '\000';
        dirty = 0;
        inflight = 0;
      }
    in
    Hashtbl.replace t.tracked o.id tr;
    if o.id >= Array.length t.by_id then begin
      let grown = Array.make (2 * (o.id + 1)) None in
      Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
      t.by_id <- grown
    end;
    t.by_id.(o.id) <- Some tr
  end

(* --- the per-line state machine ----------------------------------------- *)

let note_store t tr ~addr ~size =
  t.stats.stores_checked <- t.stats.stores_checked + 1;
  let base = tr.obj.Mem_object.base in
  let lo = Stdlib.max 0 (addr - base) lsr t.line_shift in
  let hi =
    Stdlib.min (tr.obj.Mem_object.size - 1) (addr + size - 1 - base)
    lsr t.line_shift
  in
  for l = lo to hi do
    match Bytes.unsafe_get tr.lines l with
    | '\001' -> ()
    | '\000' ->
      Bytes.unsafe_set tr.lines l '\001';
      tr.dirty <- tr.dirty + 1
    | _ ->
      (* store overtakes an unfenced write-back: whether the line lands
         durably with the old or the new value depends on timing *)
      add t Diagnostic.Flush_race ~owner:tr.obj.name
        ~detail:
          (Printf.sprintf
             "store at 0x%x hits line %d of %s while its flush is still in \
              flight (no fence since)"
             addr l tr.obj.name);
      Bytes.unsafe_set tr.lines l '\001';
      tr.inflight <- tr.inflight - 1;
      t.inflight <- t.inflight - 1;
      tr.dirty <- tr.dirty + 1
  done

let note_flush t ~obj_id ~off ~len =
  t.stats.flushes <- t.stats.flushes + 1;
  match Hashtbl.find_opt t.tracked obj_id with
  | None ->
    let name =
      match Hashtbl.find_opt t.known obj_id with
      | Some o -> o.Mem_object.name
      | None -> Printf.sprintf "#%d" obj_id
    in
    add t Diagnostic.Redundant_flush ~owner:name
      ~detail:
        (Printf.sprintf
           "flush of %s, which was never declared persistent (nothing to \
            make durable)"
           name)
  | Some tr ->
    let lo = off lsr t.line_shift
    and hi = (off + len - 1) lsr t.line_shift in
    t.stats.flushed_lines <- t.stats.flushed_lines + (hi - lo + 1);
    let newly = ref 0 in
    for l = lo to hi do
      if Bytes.unsafe_get tr.lines l = '\001' then begin
        Bytes.unsafe_set tr.lines l '\002';
        incr newly
      end
    done;
    if !newly = 0 then
      add t Diagnostic.Redundant_flush ~owner:tr.obj.name
        ~detail:
          (Printf.sprintf
             "flush of %s [%d,+%d) covers no dirty line (already clean or \
              still in flight)"
             tr.obj.name off len)
    else begin
      tr.dirty <- tr.dirty - !newly;
      tr.inflight <- tr.inflight + !newly;
      t.inflight <- t.inflight + !newly
    end

let note_fence t =
  t.stats.fences <- t.stats.fences + 1;
  if t.inflight = 0 then
    add t Diagnostic.Useless_fence ~owner:"<fence>"
      ~detail:"fence with no flush in flight orders nothing"
  else begin
    Hashtbl.iter
      (fun _ (tr : tracked) ->
        if tr.inflight > 0 then begin
          for l = 0 to Bytes.length tr.lines - 1 do
            if Bytes.unsafe_get tr.lines l = '\002' then
              Bytes.unsafe_set tr.lines l '\000'
          done;
          tr.inflight <- 0
        end)
      t.tracked;
    t.inflight <- 0
  end

let note_epoch_begin t ~label ~checkpoint:_ =
  t.boundaries <- t.boundaries + 1;
  t.stats.epochs <- t.stats.epochs + 1;
  (match t.epoch_stack with
  | (open_label, _) :: _ ->
    add t Diagnostic.Epoch_unbalanced ~owner:label
      ~detail:
        (Printf.sprintf "epoch %S begins inside still-open epoch %S" label
           open_label)
  | [] -> ());
  t.epoch_stack <- (label, false) :: t.epoch_stack

let note_epoch_commit t ~label ~checkpoint =
  t.boundaries <- t.boundaries + 1;
  (match t.epoch_stack with
  | [] ->
    add t Diagnostic.Epoch_unbalanced ~owner:label
      ~detail:(Printf.sprintf "commit of %S without a matching begin" label)
  | (open_label, _) :: rest ->
    if open_label <> label then
      add t Diagnostic.Epoch_unbalanced ~owner:label
        ~detail:
          (Printf.sprintf "commit of %S closes mismatched epoch %S" label
             open_label);
    t.epoch_stack <- rest);
  (* the durability contract: at commit every line of the persist set is
     durable — not dirty, and not waiting on a fence *)
  Hashtbl.iter
    (fun _ (tr : tracked) ->
      if tr.dirty > 0 then
        add t Diagnostic.Unflushed_commit ~owner:tr.obj.name
          ~detail:
            (Printf.sprintf
               "%d dirty line(s) of %s not flushed at commit of epoch %S"
               tr.dirty tr.obj.name label);
      if tr.inflight > 0 then
        add t Diagnostic.Torn_checkpoint ~owner:tr.obj.name
          ~detail:
            (Printf.sprintf
               "%d line(s) of %s flushed but not fenced at commit of %s %S \
                — a crash here tears the state"
               tr.inflight tr.obj.name
               (if checkpoint then "checkpoint" else "epoch")
               label))
    t.tracked

let on_persist t (ev : Persist.t) =
  match ev with
  | Persist.Declare { obj_id } -> (
    match Hashtbl.find_opt t.known obj_id with
    | Some o -> track t o
    | None ->
      add t Diagnostic.Epoch_unbalanced
        ~owner:(Printf.sprintf "#%d" obj_id)
        ~detail:
          (Printf.sprintf "persist declaration of unknown object #%d" obj_id))
  | Persist.Flush { obj_id; off; len } -> note_flush t ~obj_id ~off ~len
  | Persist.Fence -> note_fence t
  | Persist.Epoch_begin { label; checkpoint } ->
    note_epoch_begin t ~label ~checkpoint
  | Persist.Epoch_commit { label; checkpoint } ->
    note_epoch_commit t ~label ~checkpoint

let on_batch t batch (ids : int array) ~first ~n =
  let refs0 = t.refs_seen in
  let by_id = t.by_id in
  let cap = Array.length by_id in
  for i = first to first + n - 1 do
    if Sink.Batch.is_write batch i then begin
      let id = ids.(i) in
      if id >= 0 && id < cap then
        match Array.unsafe_get by_id id with
        | None -> ()
        | Some tr ->
          (* the stream position only matters when a finding fires *)
          t.refs_seen <- refs0 + (i - first);
          note_store t tr ~addr:(Sink.Batch.addr batch i)
            ~size:(Sink.Batch.size batch i)
    end
  done;
  t.refs_seen <- refs0 + n

(* --- shared construction ------------------------------------------------ *)

let make ?(line_bytes = default_line_bytes) ~get_phase ~get_source () =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Persist_check: line_bytes must be a positive power of two";
  let line_shift =
    let rec go s n = if n <= 1 then s else go (s + 1) (n lsr 1) in
    go 0 line_bytes
  in
  {
    collector = Diagnostic.Collector.create ();
    line_bytes;
    line_shift;
    known = Hashtbl.create 256;
    tracked = Hashtbl.create 16;
    by_id = Array.make 64 None;
    epoch_stack = [];
    inflight = 0;
    refs_seen = 0;
    boundaries = 0;
    stats = zero_stats ();
    get_phase;
    get_source;
    finished = false;
  }

let finish ?(crashed = false) t =
  if not t.finished then begin
    t.finished <- true;
    (* an epoch left open at a crash point is the crash, not a defect *)
    if not crashed then
      List.iter
        (fun (label, _) ->
          add t Diagnostic.Epoch_unbalanced ~owner:label
            ~detail:
              (Printf.sprintf "epoch %S still open at the end of the run"
                 label))
        t.epoch_stack
  end;
  Diagnostic.Collector.report t.collector

let stats t = t.stats
let refs_checked t = t.refs_seen
let epoch_boundaries t = t.boundaries

(* --- live attachment ---------------------------------------------------- *)

let attach ?line_bytes ctx =
  let t =
    make ?line_bytes
      ~get_phase:(fun () -> Ctx.phase ctx)
      ~get_source:(fun _ -> None)
      ()
  in
  List.iter
    (fun (o : Mem_object.t) -> Hashtbl.replace t.known o.id o)
    (Object_registry.objects (Ctx.registry ctx));
  Ctx.add_event_sink ctx (fun ev ->
      match ev with
      | Ctx.Alloc o | Ctx.Frame_push (o, _) ->
        Hashtbl.replace t.known o.Mem_object.id o
      | Ctx.Free _ | Ctx.Frame_pop _ | Ctx.Phase_change _ -> ()
      | Ctx.Persist p -> on_persist t p);
  Ctx.add_attributed_sink ctx (fun batch ids ~first ~n ->
      on_batch t batch ids ~first ~n);
  t

(* --- trace replay ------------------------------------------------------- *)

exception Crash_point

let replay_reader ?line_bytes ?crash_at ~path r =
  let phase = ref Mem_object.Pre in
  let chunk = ref 0 in
  let t =
    make ?line_bytes
      ~get_phase:(fun () -> !phase)
      ~get_source:(fun t ->
        Some { Diagnostic.file = path; chunk = !chunk; record = t.refs_seen })
      ()
  in
  List.iter
    (fun (o : Mem_object.t) -> Hashtbl.replace t.known o.id o)
    (Trace_codec.Reader.objects r @ Trace_codec.Reader.stack_objects r);
  let crashed = ref false in
  (* crash injection is logical truncation: stop consuming the stream the
     moment the [crash_at]-th epoch boundary has been processed *)
  let check_crash () =
    match crash_at with
    | Some k when t.boundaries > k -> raise Crash_point
    | _ -> ()
  in
  (try
     Trace_codec.stream r
       ~on_phase:(fun p -> phase := p)
       ~on_chunk:(fun k -> chunk := k)
       ~on_persist:(fun ev ->
         on_persist t ev;
         check_crash ())
       ~on_refs:(fun batch ~obj_ids ~first ~n ->
         on_batch t batch obj_ids ~first ~n)
       ()
   with Crash_point -> crashed := true);
  let report = finish ~crashed:!crashed t in
  (report, t)

let replay ?line_bytes ?crash_at path =
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  replay_reader ?line_bytes ?crash_at ~path r

let count_boundaries path =
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let n = ref 0 in
  Trace_codec.stream r
    ~on_persist:(fun ev ->
      match ev with
      | Persist.Epoch_begin _ | Persist.Epoch_commit _ -> incr n
      | _ -> ())
    ~on_refs:(fun _ ~obj_ids:_ ~first:_ ~n:_ -> ())
    ();
  !n
