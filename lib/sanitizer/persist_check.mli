(** NVSC-Persist: the dynamic crash-consistency checker.

    A happens-before pass over the attributed reference stream plus the
    persist events ({!Nvsc_appkit.Ctx.persist} and friends).  For every
    object declared persistent it tracks the durability state of each
    cache line — clean, dirty, or flushing (written back but not yet
    fenced) — and checks the epoch contract: by the time an epoch
    commits, every line of the persist set must be durable.

    Defect classes reported (see {!Diagnostic.klass}):
    - {e unflushed-at-commit}: dirty lines at epoch commit;
    - {e store-during-flush}: a store overtakes an unfenced write-back;
    - {e torn-checkpoint}: flushed-but-unfenced lines at commit;
    - {e epoch-unbalanced}: commit without begin, nesting, label
      mismatch, or an epoch left open at the end of the run;
    - {e redundant-flush} / {e useless-fence} (warnings): flush covering
      no dirty line, fence with nothing in flight.

    The checker runs identically live (attached to a {!Nvsc_appkit.Ctx})
    and over a recorded v2 [.nvt] trace; because persist events flush the
    emission batch before they apply, verdicts are invariant in the batch
    capacity and identical between the two modes.  Replayed findings are
    additionally stamped with a {!Diagnostic.source} trace position. *)

type t

val default_line_bytes : int
(** 64, the cache-line granularity of flush tracking. *)

(** Work-done counters, the input to {!Nvsc_nvram.Persist_cost}. *)
type stats = {
  mutable stores_checked : int;  (** stores that hit the persist set *)
  mutable flushes : int;  (** flush events *)
  mutable flushed_lines : int;  (** cache lines those flushes covered *)
  mutable fences : int;
  mutable epochs : int;  (** epochs begun *)
}

val attach : ?line_bytes:int -> Nvsc_appkit.Ctx.t -> t
(** Subscribe the checker to the context (event sink + attributed sink).
    Attach before running the application; call {!finish} after.
    [line_bytes] must be a positive power of two. *)

val finish : ?crashed:bool -> t -> Diagnostic.report
(** Close the analysis and return the report (idempotent).  End-of-run
    checks (epochs left open) are skipped when [crashed] is set — an open
    epoch at an injected crash point is the crash, not a defect. *)

val stats : t -> stats

val refs_checked : t -> int
(** References scanned (all of them, not just persist-set stores). *)

val epoch_boundaries : t -> int
(** Epoch begin/commit events processed so far. *)

val replay :
  ?line_bytes:int -> ?crash_at:int -> string -> Diagnostic.report * t
(** Run the checker over a recorded [.nvt] trace.  [crash_at k] injects a
    crash by logical truncation: the stream stops the moment the [k]-th
    epoch boundary (begin or commit, 0-based, in stream order) has been
    processed, and end-of-run checks are skipped — the returned report
    holds exactly the defects observable in the surviving prefix.  On a
    v1 trace there are no persist events: the report is clean and zero
    epochs are seen. *)

val count_boundaries : string -> int
(** Number of epoch boundaries in a trace — the crash-injection points
    [nvscav crashsim] sweeps ([crash_at] 0 to [n-1]). *)
