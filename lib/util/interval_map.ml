type 'a t = { starts : int array; stops : int array; values : 'a array }

let build ranges =
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) ranges
  in
  List.iter
    (fun (start, stop, _) ->
      if start >= stop then
        invalid_arg
          (Printf.sprintf "Interval_map.build: empty range [%d,%d)" start stop))
    sorted;
  let rec check = function
    | (start1, stop1, _) :: ((start2, stop2, _) :: _ as rest) ->
      if stop1 > start2 then
        invalid_arg
          (Printf.sprintf
             "Interval_map.build: overlapping ranges [%d,%d) and [%d,%d)"
             start1 stop1 start2 stop2);
      check rest
    | _ -> ()
  in
  check sorted;
  {
    starts = Array.of_list (List.map (fun (s, _, _) -> s) sorted);
    stops = Array.of_list (List.map (fun (_, e, _) -> e) sorted);
    values = Array.of_list (List.map (fun (_, _, v) -> v) sorted);
  }

let find t x =
  let n = Array.length t.starts in
  if n = 0 then None
  else begin
    (* last range with start <= x *)
    let lo = ref 0 and hi = ref (n - 1) in
    if t.starts.(0) > x then None
    else begin
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if t.starts.(mid) <= x then lo := mid else hi := mid - 1
      done;
      if x < t.stops.(!lo) then Some t.values.(!lo) else None
    end
  end

let size t = Array.length t.starts

let ranges t =
  Array.to_list
    (Array.mapi (fun i s -> (s, t.stops.(i), t.values.(i))) t.starts)
