(** Shared command-line vocabulary for the nvscav and experiments
    binaries.

    Both executables parse the same knobs (scale, iterations, sweep pool
    and cache settings, profiling).  Defining each argument once keeps
    the flag names, default values, documentation strings and error
    messages uniform, and cmdliner derives the [--help] pages from the
    same definitions. *)

val unknown : what:string -> known:string list -> string -> string
(** [unknown ~what ~known name] renders the uniform "unknown
    $(what) ..." error, listing the accepted names. *)

val positive_float : what:string -> float Cmdliner.Arg.conv
(** Rejects zero, negative and non-finite values at parse time, so the
    mistake is a usage error (exit 2) instead of a crash downstream. *)

val min_int_conv : what:string -> min:int -> int Cmdliner.Arg.conv
(** Rejects integers below [min] at parse time (e.g. [--jobs 0]). *)

val scale : float Cmdliner.Term.t
val iterations : int Cmdliner.Term.t
val jobs : int option Cmdliner.Term.t
val shards : int Cmdliner.Term.t
val cache_dir : string option Cmdliner.Term.t
val cache_max : int option Cmdliner.Term.t
val apps : string list option Cmdliner.Term.t
val kinds : string list option Cmdliner.Term.t
val techs : string list option Cmdliner.Term.t
val overrides : string list Cmdliner.Term.t

(** What [--profile] asked for: nothing, a summary table on stderr, or
    the summary plus a Chrome-trace JSON file. *)
type profile = Profile_off | Profile_summary | Profile_trace of string

val profile : profile Cmdliner.Term.t
(** [--profile] (summary only) or [--profile=FILE] (summary + trace). *)

val profile_enabled : profile -> bool
val profile_trace_out : profile -> string option
