open Cmdliner

(* --- uniform error messages --------------------------------------------- *)

let unknown ~what ~known name =
  Printf.sprintf "unknown %s %S (known: %s)" what name
    (String.concat ", " known)

(* --- validated converters ------------------------------------------------ *)

(* Out-of-range knobs must be rejected at parse time (a usage error, exit
   code 2) — never silently clamped into a successful run, and never left
   to crash a pipeline stage as an uncaught exception. *)

let positive_float ~what =
  let parse s =
    match float_of_string_opt s with
    | Some f when Float.is_finite f && f > 0. -> Ok f
    | Some _ | None ->
      Error
        (`Msg (Printf.sprintf "%s must be a positive number, got %S" what s))
  in
  Arg.conv ~docv:"FLOAT" (parse, Format.pp_print_float)

let min_int_conv ~what ~min =
  let parse s =
    match int_of_string_opt s with
    | Some i when i >= min -> Ok i
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "%s must be an integer >= %d, got %S" what min s))
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

(* --- shared argument definitions ---------------------------------------- *)

let scale =
  let doc = "Data-size multiplier (default 1.0; use 0.25 for quick runs)." in
  Arg.(
    value
    & opt (positive_float ~what:"scale") 1.0
    & info [ "scale" ] ~docv:"SCALE" ~doc)

let iterations =
  let doc = "Main-loop iterations to instrument (the paper uses 10)." in
  Arg.(
    value
    & opt (min_int_conv ~what:"iterations" ~min:1) 10
    & info [ "iterations"; "n" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains (default: the machine's recommended domain count). The \
     report is byte-identical for every N."
  in
  Arg.(
    value
    & opt (some (min_int_conv ~what:"jobs" ~min:1)) None
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards =
  let doc =
    "Cache-filter shard domains (default 1 = serial).  The simulation is \
     partitioned by set index across N worker domains; the report and \
     trace are byte-identical for every N."
  in
  Arg.(
    value
    & opt (min_int_conv ~what:"shards" ~min:1) 1
    & info [ "shards" ] ~docv:"N" ~doc)

let cache_dir =
  let doc =
    "Directory for the content-addressed result cache; cells whose digest \
     is already present are not re-executed."
  in
  Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"DIR" ~doc)

let cache_max =
  let doc = "Bound the cache to N entries (oldest evicted first)." in
  Arg.(
    value
    & opt (some (min_int_conv ~what:"cache-max" ~min:1)) None
    & info [ "cache-max" ] ~docv:"N" ~doc)

let apps =
  let doc = "Comma-separated applications (default: the paper's four)." in
  Arg.(
    value & opt (some (list string)) None & info [ "apps" ] ~docv:"APPS" ~doc)

let kinds =
  let doc =
    "Comma-separated analysis kinds: objects, power, perf, place (default: \
     all four)."
  in
  Arg.(
    value & opt (some (list string)) None & info [ "kinds" ] ~docv:"KINDS" ~doc)

let techs =
  let doc =
    "Comma-separated NVRAM technologies for the place cells (default: \
     sttram)."
  in
  Arg.(
    value & opt (some (list string)) None & info [ "techs" ] ~docv:"TECHS" ~doc)

let overrides =
  let doc =
    "Per-cell override, e.g. $(b,kind=perf,scale=0.5) or \
     $(b,app=cam,iterations=20).  Keys $(b,app) and $(b,kind) select cells; \
     $(b,scale) and $(b,iterations) replace their settings.  Repeatable; \
     later overrides win."
  in
  Arg.(value & opt_all string [] & info [ "override" ] ~docv:"KEY=VAL,.." ~doc)

(* --- profiling ----------------------------------------------------------- *)

type profile = Profile_off | Profile_summary | Profile_trace of string

let profile_conv =
  let parse = function
    | "" -> Ok Profile_summary
    | path -> Ok (Profile_trace path)
  in
  let print fmt = function
    | Profile_off -> Format.pp_print_string fmt "off"
    | Profile_summary -> Format.pp_print_string fmt "summary"
    | Profile_trace path -> Format.pp_print_string fmt path
  in
  Arg.conv ~docv:"FILE" (parse, print)

let profile =
  let doc =
    "Profile the run: print a span self-time table and a metrics snapshot \
     to standard error.  With $(b,--profile)=$(i,FILE), additionally write \
     a Chrome-trace JSON to $(i,FILE) (load it in chrome://tracing or \
     ui.perfetto.dev).  Use the glued $(b,--profile)=$(i,FILE) form: a \
     space-separated $(b,--profile) $(i,FILE) also works but will consume \
     the next argument as the file name."
  in
  Arg.(
    value
    & opt ~vopt:Profile_summary profile_conv Profile_off
    & info [ "profile" ] ~docv:"FILE" ~doc)

let profile_enabled = function Profile_off -> false | _ -> true
let profile_trace_out = function Profile_trace f -> Some f | _ -> None
