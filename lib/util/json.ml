type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let float f =
  if Float.is_finite f then Float f
  else if Float.is_nan f then Str "nan"
  else if f > 0. then Str "inf"
  else Str "-inf"

(* --- printing ----------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g is the shortest precision guaranteed to round-trip every finite
   double through [float_of_string]. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else add buf (float f)
  | Str s -> add_escaped buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)

(* --- parsing ------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let skip_ws p =
  while
    p.pos < String.length p.src
    &&
    match p.src.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    p.pos <- p.pos + 1
  done

let expect p c =
  match peek p with
  | Some c' when c' = c -> p.pos <- p.pos + 1
  | Some c' -> fail "Json: expected %C at offset %d, found %C" c p.pos c'
  | None -> fail "Json: expected %C at offset %d, found end of input" c p.pos

let literal p word value =
  let n = String.length word in
  if
    p.pos + n <= String.length p.src && String.sub p.src p.pos n = word
  then begin
    p.pos <- p.pos + n;
    value
  end
  else fail "Json: invalid literal at offset %d" p.pos

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if p.pos >= String.length p.src then
      fail "Json: unterminated string at offset %d" p.pos;
    let c = p.src.[p.pos] in
    p.pos <- p.pos + 1;
    match c with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if p.pos >= String.length p.src then
         fail "Json: unterminated escape at offset %d" p.pos;
       let e = p.src.[p.pos] in
       p.pos <- p.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | 't' -> Buffer.add_char buf '\t'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if p.pos + 4 > String.length p.src then
           fail "Json: truncated \\u escape at offset %d" p.pos;
         let hex = String.sub p.src p.pos 4 in
         p.pos <- p.pos + 4;
         let code =
           try int_of_string ("0x" ^ hex)
           with _ -> fail "Json: bad \\u escape %S" hex
         in
         (* we only emit \u00xx (control characters); decode the latin-1
            range and substitute for anything beyond it *)
         if code < 0x100 then Buffer.add_char buf (Char.chr code)
         else Buffer.add_char buf '?'
       | e -> fail "Json: bad escape \\%C at offset %d" e p.pos);
      loop ()
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    p.pos < String.length p.src && is_num_char p.src.[p.pos]
  do
    p.pos <- p.pos + 1
  done;
  let s = String.sub p.src start (p.pos - start) in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'E'
  then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail "Json: bad number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> fail "Json: bad number %S at offset %d" s start

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail "Json: unexpected end of input"
  | Some '{' ->
    expect p '{';
    skip_ws p;
    if peek p = Some '}' then begin
      expect p '}';
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws p;
        let k = parse_string p in
        skip_ws p;
        expect p ':';
        let v = parse_value p in
        fields := (k, v) :: !fields;
        skip_ws p;
        match peek p with
        | Some ',' -> expect p ','; loop ()
        | _ -> expect p '}'
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    expect p '[';
    skip_ws p;
    if peek p = Some ']' then begin
      expect p ']';
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        let v = parse_value p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | Some ',' -> expect p ','; loop ()
        | _ -> expect p ']'
      in
      loop ();
      List (List.rev !items)
    end
  | Some '"' -> Str (parse_string p)
  | Some 't' -> literal p "true" (Bool true)
  | Some 'f' -> literal p "false" (Bool false)
  | Some 'n' -> literal p "null" Null
  | Some ('-' | '0' .. '9') -> parse_number p
  | Some c -> fail "Json: unexpected %C at offset %d" c p.pos

let of_string s =
  let p = { src = s; pos = 0 } in
  let v = parse_value p in
  skip_ws p;
  if p.pos <> String.length s then
    fail "Json: trailing garbage at offset %d" p.pos;
  v

(* --- newline-delimited framing ------------------------------------------ *)

(* [Lines.of_string] shadows the frame parser below. *)
let parse_frame = of_string

module Lines = struct
  let default_max_frame = 4 * 1024 * 1024

  type error = { offset : int; message : string }

  type reader = {
    refill : bytes -> int -> int -> int;
    max_frame : int;
    chunk : Bytes.t;
    mutable chunk_len : int;  (* valid bytes in [chunk] *)
    mutable chunk_pos : int;  (* next unconsumed byte in [chunk] *)
    mutable offset : int;  (* absolute offset of [chunk_pos] in the stream *)
    mutable eof : bool;
  }

  let reader ?(max_frame = default_max_frame) refill =
    {
      refill;
      max_frame;
      chunk = Bytes.create 8192;
      chunk_len = 0;
      chunk_pos = 0;
      offset = 0;
      eof = false;
    }

  let of_channel ?max_frame ic =
    reader ?max_frame (fun buf pos len -> input ic buf pos len)

  let of_string ?max_frame s =
    let pos = ref 0 in
    reader ?max_frame (fun buf dst len ->
        let n = min len (String.length s - !pos) in
        Bytes.blit_string s !pos buf dst n;
        pos := !pos + n;
        n)

  let offset r = r.offset

  let ensure r =
    if r.chunk_pos >= r.chunk_len && not r.eof then begin
      let n = r.refill r.chunk 0 (Bytes.length r.chunk) in
      r.chunk_len <- n;
      r.chunk_pos <- 0;
      if n = 0 then r.eof <- true
    end;
    r.chunk_pos < r.chunk_len

  (* One byte at a time out of the refill chunk; the chunk makes this cheap
     even over a raw file descriptor. *)
  let next_byte r =
    if ensure r then begin
      let c = Bytes.get r.chunk r.chunk_pos in
      r.chunk_pos <- r.chunk_pos + 1;
      r.offset <- r.offset + 1;
      Some c
    end
    else None

  (* Consume the rest of an oversized frame so the next [read] starts at a
     frame boundary; the stream stays usable after the error. *)
  let skip_to_newline r =
    let rec loop () =
      match next_byte r with
      | Some '\n' | None -> ()
      | Some _ -> loop ()
    in
    loop ()

  let read r =
    let start = r.offset in
    if not (ensure r) then None
    else begin
      let buf = Buffer.create 128 in
      let rec collect () =
        match next_byte r with
        | None -> `Truncated
        | Some '\n' -> `Line (Buffer.contents buf)
        | Some c ->
          if Buffer.length buf >= r.max_frame then begin
            skip_to_newline r;
            `Oversized
          end
          else begin
            Buffer.add_char buf c;
            collect ()
          end
      in
      match collect () with
      | `Truncated ->
        Some
          (Error
             {
               offset = start;
               message =
                 Printf.sprintf
                   "truncated frame at byte %d: %d byte(s) with no trailing \
                    newline"
                   start (r.offset - start);
             })
      | `Oversized ->
        Some
          (Error
             {
               offset = start;
               message =
                 Printf.sprintf
                   "oversized frame at byte %d: exceeds %d bytes" start
                   r.max_frame;
             })
      | `Line "" ->
        Some
          (Error
             { offset = start;
               message = Printf.sprintf "empty frame at byte %d" start;
             })
      | `Line line -> (
        match parse_frame line with
        | v -> Some (Ok v)
        | exception Parse_error msg ->
          Some
            (Error
               {
                 offset = start;
                 message = Printf.sprintf "frame at byte %d: %s" start msg;
               }))
    end

  (* The printer escapes every control character (including '\n') inside
     strings, so an encoded frame never contains a raw newline: one frame,
     one line, by construction. *)
  let encode v = to_string v ^ "\n"

  let write oc v =
    output_string oc (encode v);
    flush oc
end

(* --- accessors ---------------------------------------------------------- *)

let member_opt key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let member key v =
  match member_opt key v with
  | Some x -> x
  | None -> fail "Json: missing field %S" key

let to_int = function
  | Int i -> i
  | _ -> fail "Json: expected an integer"

let to_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | Str "inf" -> Float.infinity
  | Str "-inf" -> Float.neg_infinity
  | Str "nan" -> Float.nan
  | _ -> fail "Json: expected a float"

let to_str = function
  | Str s -> s
  | _ -> fail "Json: expected a string"

let to_bool = function
  | Bool b -> b
  | _ -> fail "Json: expected a bool"

let to_list = function
  | List l -> l
  | _ -> fail "Json: expected a list"

let to_obj = function
  | Obj f -> f
  | _ -> fail "Json: expected an object"
