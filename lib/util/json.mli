(** Minimal JSON values: the sweep engine's cell-cache interchange format.

    Self-contained (no external dependency) and deliberately small: the
    printer is deterministic (object fields keep their given order, floats
    render with round-trip precision) so that a value printed, parsed and
    re-printed is byte-identical — the property the content-addressed
    result cache relies on.

    Non-finite floats, which JSON numbers cannot carry, are printed as the
    strings ["inf"], ["-inf"] and ["nan"]; {!to_float} converts them
    back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Inverse of {!to_string}; accepts any standard JSON text.  Raises
    {!Parse_error} on malformed input. *)

(** {1 Accessors}

    All raise {!Parse_error} when the value has the wrong shape, so codec
    failures surface as one exception the cache treats as a miss. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : t -> int
val to_float : t -> float
(** Accepts [Int], [Float], and the [Str] spellings of non-finite
    floats. *)

val to_str : t -> string
val to_bool : t -> bool
val to_list : t -> t list
val to_obj : t -> (string * t) list

val float : float -> t
(** [Float f] for finite [f]; the string spelling otherwise. *)

(** {1 Newline-delimited framing}

    One JSON value per line — the wire format of [nvscav serve].  The
    printer escapes control characters inside strings, so an encoded
    frame never contains a raw newline and the framing cannot be broken
    by payload content.

    The reader is incremental (suitable for a socket), enforces a
    maximum frame size, and reports every malformed frame as a value —
    naming the absolute byte offset where the frame began — rather than
    an exception, so a server can answer the error and keep the
    connection: after an [Error] result the reader is positioned at the
    next frame boundary. *)
module Lines : sig
  val default_max_frame : int
  (** 4 MiB. *)

  type error = { offset : int; message : string }
  (** [offset] is the absolute byte offset of the offending frame's first
      byte; [message] repeats it in prose. *)

  type reader

  val reader : ?max_frame:int -> (bytes -> int -> int -> int) -> reader
  (** [reader refill] reads frames from [refill buf pos len] (a
      [Stdlib.input]-style function returning [0] at end of stream). *)

  val of_channel : ?max_frame:int -> in_channel -> reader
  val of_string : ?max_frame:int -> string -> reader

  val read : reader -> (t, error) result option
  (** The next frame: [None] at a clean end of stream, [Some (Error _)]
      for an empty, oversized, truncated or unparseable line (the line is
      consumed; reading may continue), [Some (Ok v)] otherwise. *)

  val offset : reader -> int
  (** Absolute byte offset of the next unread byte. *)

  val encode : t -> string
  (** Compact rendering plus the terminating newline. *)

  val write : out_channel -> t -> unit
  (** [output_string] of {!encode}, then [flush]. *)
end
