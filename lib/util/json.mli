(** Minimal JSON values: the sweep engine's cell-cache interchange format.

    Self-contained (no external dependency) and deliberately small: the
    printer is deterministic (object fields keep their given order, floats
    render with round-trip precision) so that a value printed, parsed and
    re-printed is byte-identical — the property the content-addressed
    result cache relies on.

    Non-finite floats, which JSON numbers cannot carry, are printed as the
    strings ["inf"], ["-inf"] and ["nan"]; {!to_float} converts them
    back. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit

exception Parse_error of string

val of_string : string -> t
(** Inverse of {!to_string}; accepts any standard JSON text.  Raises
    {!Parse_error} on malformed input. *)

(** {1 Accessors}

    All raise {!Parse_error} when the value has the wrong shape, so codec
    failures surface as one exception the cache treats as a miss. *)

val member : string -> t -> t
val member_opt : string -> t -> t option
val to_int : t -> int
val to_float : t -> float
(** Accepts [Int], [Float], and the [Str] spellings of non-finite
    floats. *)

val to_str : t -> string
val to_bool : t -> bool
val to_list : t -> t list
val to_obj : t -> (string * t) list

val float : float -> t
(** [Float f] for finite [f]; the string spelling otherwise. *)
