(** The sweep engine: executes a {!Matrix.t} on a domain pool with an
    optional content-addressed result cache.

    Execution order never leaks into output: cache lookups and stores run
    serially on the calling domain, only cell execution fans out, and
    outcomes are collected in matrix order — so a sweep's rendered report
    is byte-identical regardless of [jobs] and of which cells were cache
    hits. *)

type outcome = {
  spec : Cell.spec;
  payload : Cell.payload;
  cached : bool;  (** served from the cache, not re-executed *)
}

type stats = {
  cells : int;
  hits : int;
  misses : int;
  evictions : int;
  jobs : int;
}

val run :
  ?jobs:int -> ?cache:Cache.t -> ?trace:string -> Matrix.t -> outcome array * stats
(** [jobs] defaults to {!Pool.default_jobs}.  Without [cache] every cell
    executes and [hits]/[misses]/[evictions] stay 0.  With [trace] (an
    [.nvt] file) every cell replays the recorded stream instead of
    re-running its application, and the trace's content digest is stamped
    into each spec before lookup — so the cache keys on trace content and
    a warm re-analysis of the same trace reports [misses=0]. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line [sweep: cells=.. hits=.. misses=.. evictions=.. jobs=..]. *)

val pp_outcomes : Format.formatter -> outcome array -> unit
(** Render every cell's report section, in matrix order. *)

(** {1 The experiments pipeline}

    [bin/experiments.exe] regenerates EXPERIMENTS.md through these two
    functions: the matrix mirrors the legacy serial run (objects, power
    and perf cells for each paper application, with figure 12 at the
    config's [perf_scale]), and [experiments_data] reassembles the cell
    payloads into an {!Nvsc_core.Experiment.data} that renders
    byte-identically to the bundle path. *)

val experiments_matrix : config:Nvsc_core.Experiment.config -> Matrix.t

val experiments_data :
  config:Nvsc_core.Experiment.config ->
  outcome array ->
  Nvsc_core.Experiment.data
(** Raises [Invalid_argument] if the outcomes do not cover the
    experiments matrix (wrong kinds or unknown technology names). *)
