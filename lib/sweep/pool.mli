(** Fixed-size domain pool with a work queue.

    [map ~jobs f items] applies [f] to every element of [items] on a pool
    of [jobs] OCaml 5 domains (the calling domain is one of them) and
    returns the results {e in input order} — the deterministic ordered
    collection the sweep's byte-identical-report contract rests on.
    Work distribution is a take-a-ticket queue (one atomic counter), so
    domains pull the next cell as they finish rather than owning a fixed
    stripe; results land in per-index slots, never shared between
    workers.

    If any [f] raises, the first exception in {e input order} is
    re-raised after every worker has drained (later results are
    discarded). *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [jobs] is clamped to [1 .. Array.length items]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the machine's useful
    parallelism. *)
