(** Alias of {!Nvsc_team.Pool} — the shared fixed-size domain pool.

    Historically this module lived in [lib/sweep]; it moved to [lib/team]
    when in-run sharding ({!Nvsc_core.Shard}) needed the same
    worker-lifecycle, cancellation, and queue-depth metrics code below the
    sweep layer.  [Nvsc_sweep.Pool] remains the stable path for sweep and
    serve callers; the metrics keep their [sweep.pool.*] names. *)

include module type of Nvsc_team.Pool
