module Technology = Nvsc_nvram.Technology

type override = {
  o_app : string option;
  o_kind : Cell.kind option;
  o_scale : float option;
  o_iterations : int option;
}

type t = {
  apps : string list;
  kinds : Cell.kind list;
  techs : Technology.tech list;
  scale : float;
  iterations : int;
  overrides : override list;
}

let default =
  {
    apps = Nvsc_apps.Apps.names;
    kinds = Cell.all_kinds;
    techs = [ Technology.STTRAM ];
    scale = 1.0;
    iterations = 10;
    overrides = [];
  }

let ( let* ) = Result.bind

let validate_apps apps =
  let rec loop = function
    | [] -> Ok apps
    | a :: rest -> (
      match Nvsc_apps.Apps.find a with
      | Some _ -> loop rest
      | None ->
        Error
          (Printf.sprintf "unknown application %S (known: %s)" a
             (String.concat ", " Nvsc_apps.Apps.extended_names)))
  in
  loop apps

let validate_techs names =
  let rec loop acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> (
      match Technology.of_string n with
      | Some t -> loop (t.Technology.tech :: acc) rest
      | None -> Error (Printf.sprintf "unknown technology %S" n))
  in
  loop [] names

let make ?(apps = default.apps) ?(kinds = default.kinds) ?techs
    ?(scale = default.scale) ?(iterations = default.iterations)
    ?(overrides = []) () =
  let* apps = validate_apps apps in
  let* techs =
    match techs with
    | None -> Ok default.techs
    | Some names -> validate_techs names
  in
  if apps = [] then Error "empty application list"
  else if kinds = [] then Error "empty kind list"
  else if scale <= 0. then Error "scale must be positive"
  else if iterations <= 0 then Error "iterations must be positive"
  else Ok { apps; kinds; techs; scale; iterations; overrides }

let parse_override s =
  let parts = String.split_on_char ',' s in
  let rec loop o = function
    | [] -> Ok o
    | part :: rest -> (
      match String.index_opt part '=' with
      | None -> Error (Printf.sprintf "override %S: expected key=value" part)
      | Some i -> (
        let key = String.sub part 0 i in
        let value = String.sub part (i + 1) (String.length part - i - 1) in
        match key with
        | "app" -> (
          match Nvsc_apps.Apps.find value with
          | Some _ -> loop { o with o_app = Some value } rest
          | None ->
            Error (Printf.sprintf "override: unknown application %S" value))
        | "kind" -> (
          match Cell.kind_of_string value with
          | Some k -> loop { o with o_kind = Some k } rest
          | None -> Error (Printf.sprintf "override: unknown kind %S" value))
        | "scale" -> (
          match float_of_string_opt value with
          | Some f when f > 0. -> loop { o with o_scale = Some f } rest
          | _ -> Error (Printf.sprintf "override: bad scale %S" value))
        | "iterations" -> (
          match int_of_string_opt value with
          | Some n when n > 0 -> loop { o with o_iterations = Some n } rest
          | _ -> Error (Printf.sprintf "override: bad iterations %S" value))
        | k -> Error (Printf.sprintf "override: unknown key %S" k)))
  in
  loop { o_app = None; o_kind = None; o_scale = None; o_iterations = None }
    parts

let apply_overrides t (spec : Cell.spec) =
  List.fold_left
    (fun (spec : Cell.spec) o ->
      let matches =
        (match o.o_app with None -> true | Some a -> a = spec.app)
        && match o.o_kind with None -> true | Some k -> k = spec.kind
      in
      if not matches then spec
      else
        {
          spec with
          scale = Option.value o.o_scale ~default:spec.scale;
          iterations = Option.value o.o_iterations ~default:spec.iterations;
        })
    spec t.overrides

let cells t =
  List.concat_map
    (fun app ->
      List.concat_map
        (fun kind ->
          let base =
            {
              Cell.app;
              kind;
              scale = t.scale;
              iterations = t.iterations;
              tech = None;
              trace_digest = None;
            }
          in
          match kind with
          | Cell.Place ->
            List.map
              (fun tech -> apply_overrides t { base with tech = Some tech })
              t.techs
          | Cell.Objects | Cell.Power | Cell.Perf ->
            [ apply_overrides t base ])
        t.kinds)
    t.apps
