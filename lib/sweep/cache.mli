(** On-disk content-addressed result cache.

    Each completed cell is stored as [DIR/<digest>.json], where the digest
    (see {!Cell.digest}) covers the application name, every configuration
    field and the engine's code-version salt — so any config change, or a
    schema bump, misses cleanly.  Values are the cell's JSON payload
    wrapped with its spec for verification; a corrupt, stale or
    foreign-schema file is deleted and counted as a miss.

    Entry count can be bounded with [max_entries]: insertion order is kept
    in an index file and the oldest entries are evicted on store
    (FIFO — cells are deterministic, so re-filling an evicted entry costs
    one re-execution, never correctness).

    The cache is single-writer by design: the sweep engine performs all
    lookups before fanning work out to domains and all stores after
    collecting, so this module needs no locking. *)

type t

type stats = { hits : int; misses : int; evictions : int }

val create : dir:string -> ?max_entries:int -> unit -> t
(** Creates [dir] (and parents) if needed. *)

val dir : t -> string
val stats : t -> stats

val find : t -> Cell.spec -> Cell.payload option
(** Cache lookup by the spec's digest; counts a hit or a miss. *)

val store : t -> Cell.spec -> Cell.payload -> unit
(** Persist a computed cell (atomic write-then-rename), then evict past
    [max_entries] if a bound was given. *)
