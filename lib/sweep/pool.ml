let default_jobs () = Domain.recommended_domain_count ()

let m_jobs = Nvsc_obs.Metrics.gauge "sweep.pool.jobs"
let m_queue_wait = Nvsc_obs.Metrics.dist "sweep.pool.queue_wait_ns"

let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    Nvsc_obs.Metrics.Gauge.set m_jobs (float_of_int jobs);
    (* Queue wait = take-a-ticket time minus pool start; only sampled when
       the recorder is armed so the disarmed path never reads the clock. *)
    let t0 = if Nvsc_obs.Span.enabled () then Nvsc_obs.Clock.now_ns () else 0 in
    (* Option-boxed result slots: each index is written by exactly one
       worker, so slots are never contended; the joins below publish them
       to the collecting domain. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if Nvsc_obs.Span.enabled () then
            Nvsc_obs.Metrics.Dist.observe m_queue_wait
              (Nvsc_obs.Clock.now_ns () - t0);
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
