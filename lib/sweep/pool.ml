(* The sweep engine's domain pool moved to [lib/team] so the serve daemon,
   the sweep matrix, and in-run shard teams share one worker-lifecycle /
   cancellation / queue-metrics implementation.  This alias keeps the
   historical [Nvsc_sweep.Pool] path (and its metric names) stable. *)
include Nvsc_team.Pool
