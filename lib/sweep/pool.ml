let default_jobs () = Domain.recommended_domain_count ()

let map ~jobs f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let jobs = max 1 (min jobs n) in
    (* Option-boxed result slots: each index is written by exactly one
       worker, so slots are never contended; the joins below publish them
       to the collecting domain. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r = try Ok (f items.(i)) with e -> Error e in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
