module Json = Nvsc_util.Json
module Serial = Nvsc_core.Serial
module Scavenger = Nvsc_core.Scavenger
module Stack_analysis = Nvsc_core.Stack_analysis
module Object_analysis = Nvsc_core.Object_analysis
module Usage_variance = Nvsc_core.Usage_variance
module Technology = Nvsc_nvram.Technology
module Trace_log = Nvsc_memtrace.Trace_log
module Table = Nvsc_util.Table
module Units = Nvsc_util.Units

open Json

type kind = Objects | Power | Perf | Place

let kind_to_string = function
  | Objects -> "objects"
  | Power -> "power"
  | Perf -> "perf"
  | Place -> "place"

let kind_of_string = function
  | "objects" -> Some Objects
  | "power" -> Some Power
  | "perf" -> Some Perf
  | "place" -> Some Place
  | _ -> None

let all_kinds = [ Objects; Power; Perf; Place ]

type spec = {
  app : string;
  kind : kind;
  scale : float;
  iterations : int;
  tech : Technology.tech option;
  trace_digest : string option;
}

let tech_name t = (Technology.get t).Technology.name

let spec_to_json s =
  Obj
    [
      ("app", Str s.app);
      ("kind", Str (kind_to_string s.kind));
      ("scale", float s.scale);
      ("iterations", Int s.iterations);
      ( "tech",
        match s.tech with None -> Null | Some t -> Str (tech_name t) );
      ( "trace",
        match s.trace_digest with None -> Null | Some d -> Str d );
    ]

let spec_of_json j =
  let kind =
    let s = to_str (member "kind" j) in
    match kind_of_string s with
    | Some k -> k
    | None -> raise (Parse_error (Printf.sprintf "Cell: unknown kind %S" s))
  in
  let tech =
    match member "tech" j with
    | Null -> None
    | t -> (
      let s = to_str t in
      match Technology.of_string s with
      | Some t -> Some t.Technology.tech
      | None ->
        raise (Parse_error (Printf.sprintf "Cell: unknown technology %S" s)))
  in
  {
    app = to_str (member "app" j);
    kind;
    scale = to_float (member "scale" j);
    iterations = to_int (member "iterations" j);
    tech;
    trace_digest =
      (match member_opt "trace" j with
      | None | Some Null -> None
      | Some d -> Some (to_str d));
  }

let code_version = "nvsc-sweep-v2"

let digest spec =
  Digest.to_hex
    (Digest.string (code_version ^ "|" ^ Json.to_string (spec_to_json spec)))

(* --- payloads ----------------------------------------------------------- *)

type app_info = {
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  footprint_bytes : int;
  total_main_refs : int;
}

type objects_payload = {
  info : app_info;
  summary : Stack_analysis.summary;
  distribution : Stack_analysis.distribution;
  report : Object_analysis.report;
  cdf : Usage_variance.cdf_point list;
  variance : Usage_variance.variance;
  untouched_fraction : float;
  pipeline : Nvsc_appkit.Ctx.pipeline_stats;
}

type power_row = {
  tech_name : string;
  avg_power_w : float;
  elapsed_ns : float;
  row_hit_rate : float;
  bandwidth_gbs : float;
  normalized : float;
}

type power_payload = {
  p_info : app_info;
  trace_length : int;
  trace_reads : int;
  trace_writes : int;
  l1_miss_rate : float;
  l2_miss_rate : float;
  power_rows : power_row list;
  p_pipeline : Nvsc_appkit.Ctx.pipeline_stats;
}

type perf_row = {
  perf_tech_name : string;
  latency_ns : float;
  runtime_ns : float;
  normalized_runtime : float;
}

type place_payload = {
  place_tech_name : string;
  place_footprint_bytes : int;
  nvram_items : Nvsc_placement.Item.t list;
  assessment : Nvsc_placement.Hybrid_memory.assessment;
}

type payload =
  | Objects_result of objects_payload
  | Power_result of power_payload
  | Perf_result of perf_row list
  | Place_result of place_payload

(* --- codecs ------------------------------------------------------------- *)

let info_to_json i =
  Obj
    [
      ("description", Str i.description);
      ("input_description", Str i.input_description);
      ("paper_footprint_mb", float i.paper_footprint_mb);
      ("footprint_bytes", Int i.footprint_bytes);
      ("total_main_refs", Int i.total_main_refs);
    ]

let info_of_json j =
  {
    description = to_str (member "description" j);
    input_description = to_str (member "input_description" j);
    paper_footprint_mb = to_float (member "paper_footprint_mb" j);
    footprint_bytes = to_int (member "footprint_bytes" j);
    total_main_refs = to_int (member "total_main_refs" j);
  }

let objects_to_json (o : objects_payload) =
  Obj
    [
      ("info", info_to_json o.info);
      ("summary", Serial.summary_to_json o.summary);
      ("distribution", Serial.distribution_to_json o.distribution);
      ("report", Serial.object_report_to_json o.report);
      ("cdf", Serial.cdf_to_json o.cdf);
      ("variance", Serial.variance_to_json o.variance);
      ("untouched_fraction", float o.untouched_fraction);
      ("pipeline", Serial.pipeline_to_json o.pipeline);
    ]

let objects_of_json j =
  {
    info = info_of_json (member "info" j);
    summary = Serial.summary_of_json (member "summary" j);
    distribution = Serial.distribution_of_json (member "distribution" j);
    report = Serial.object_report_of_json (member "report" j);
    cdf = Serial.cdf_of_json (member "cdf" j);
    variance = Serial.variance_of_json (member "variance" j);
    untouched_fraction = to_float (member "untouched_fraction" j);
    pipeline = Serial.pipeline_of_json (member "pipeline" j);
  }

let power_row_to_json (r : power_row) =
  Obj
    [
      ("tech", Str r.tech_name);
      ("avg_power_w", float r.avg_power_w);
      ("elapsed_ns", float r.elapsed_ns);
      ("row_hit_rate", float r.row_hit_rate);
      ("bandwidth_gbs", float r.bandwidth_gbs);
      ("normalized", float r.normalized);
    ]

let power_row_of_json j =
  {
    tech_name = to_str (member "tech" j);
    avg_power_w = to_float (member "avg_power_w" j);
    elapsed_ns = to_float (member "elapsed_ns" j);
    row_hit_rate = to_float (member "row_hit_rate" j);
    bandwidth_gbs = to_float (member "bandwidth_gbs" j);
    normalized = to_float (member "normalized" j);
  }

let power_to_json (p : power_payload) =
  Obj
    [
      ("info", info_to_json p.p_info);
      ("trace_length", Int p.trace_length);
      ("trace_reads", Int p.trace_reads);
      ("trace_writes", Int p.trace_writes);
      ("l1_miss_rate", float p.l1_miss_rate);
      ("l2_miss_rate", float p.l2_miss_rate);
      ("rows", List (List.map power_row_to_json p.power_rows));
      ("pipeline", Serial.pipeline_to_json p.p_pipeline);
    ]

let power_of_json j =
  {
    p_info = info_of_json (member "info" j);
    trace_length = to_int (member "trace_length" j);
    trace_reads = to_int (member "trace_reads" j);
    trace_writes = to_int (member "trace_writes" j);
    l1_miss_rate = to_float (member "l1_miss_rate" j);
    l2_miss_rate = to_float (member "l2_miss_rate" j);
    power_rows = List.map power_row_of_json (to_list (member "rows" j));
    p_pipeline = Serial.pipeline_of_json (member "pipeline" j);
  }

let perf_row_to_json (r : perf_row) =
  Obj
    [
      ("tech", Str r.perf_tech_name);
      ("latency_ns", float r.latency_ns);
      ("runtime_ns", float r.runtime_ns);
      ("normalized_runtime", float r.normalized_runtime);
    ]

let perf_row_of_json j =
  {
    perf_tech_name = to_str (member "tech" j);
    latency_ns = to_float (member "latency_ns" j);
    runtime_ns = to_float (member "runtime_ns" j);
    normalized_runtime = to_float (member "normalized_runtime" j);
  }

let item_to_json (i : Nvsc_placement.Item.t) =
  Obj
    [
      ("id", Int i.id);
      ("name", Str i.name);
      ("size", Int i.size_bytes);
      ("reads", Int i.reads);
      ("writes", Int i.writes);
      ("ref_share", float i.ref_share);
    ]

let item_of_json j : Nvsc_placement.Item.t =
  {
    id = to_int (member "id" j);
    name = to_str (member "name" j);
    size_bytes = to_int (member "size" j);
    reads = to_int (member "reads" j);
    writes = to_int (member "writes" j);
    ref_share = to_float (member "ref_share" j);
  }

let place_to_json (p : place_payload) =
  Obj
    [
      ("tech", Str p.place_tech_name);
      ("footprint", Int p.place_footprint_bytes);
      ("nvram_items", List (List.map item_to_json p.nvram_items));
      ("assessment", Serial.assessment_to_json p.assessment);
    ]

let place_of_json j =
  {
    place_tech_name = to_str (member "tech" j);
    place_footprint_bytes = to_int (member "footprint" j);
    nvram_items = List.map item_of_json (to_list (member "nvram_items" j));
    assessment = Serial.assessment_of_json (member "assessment" j);
  }

let payload_to_json = function
  | Objects_result o -> Obj [ ("kind", Str "objects"); ("data", objects_to_json o) ]
  | Power_result p -> Obj [ ("kind", Str "power"); ("data", power_to_json p) ]
  | Perf_result rows ->
    Obj
      [
        ("kind", Str "perf");
        ("data", List (List.map perf_row_to_json rows));
      ]
  | Place_result p -> Obj [ ("kind", Str "place"); ("data", place_to_json p) ]

let payload_of_json j =
  let data = member "data" j in
  match to_str (member "kind" j) with
  | "objects" -> Objects_result (objects_of_json data)
  | "power" -> Power_result (power_of_json data)
  | "perf" -> Perf_result (List.map perf_row_of_json (to_list data))
  | "place" -> Place_result (place_of_json data)
  | s -> raise (Parse_error (Printf.sprintf "Cell: unknown payload kind %S" s))

(* --- execution ---------------------------------------------------------- *)

let find_app name =
  match Nvsc_apps.Apps.find name with
  | Some app -> app
  | None ->
    invalid_arg
      (Printf.sprintf "Cell.execute: unknown application %S (known: %s)" name
         (String.concat ", " Nvsc_apps.Apps.extended_names))

let info_of_result (r : Scavenger.result) =
  {
    description = r.description;
    input_description = r.input_description;
    paper_footprint_mb = r.paper_footprint_mb;
    footprint_bytes = r.footprint_bytes;
    total_main_refs = r.total_main_refs;
  }

let base_config (spec : spec) =
  Scavenger.Config.(
    default |> with_scale spec.scale |> with_iterations spec.iterations)

let objects_payload_of_result (r : Scavenger.result) =
  {
    info = info_of_result r;
    summary = Stack_analysis.summarize r;
    distribution = Stack_analysis.distribution r;
    report = Object_analysis.analyze r;
    cdf = Usage_variance.usage_cdf r;
    variance = Usage_variance.variance r;
    untouched_fraction = Usage_variance.untouched_in_main_fraction r;
    pipeline = r.pipeline;
  }

let execute_objects spec app =
  Objects_result (objects_payload_of_result (Scavenger.run (base_config spec) app))

let power_payload_of_result (r : Scavenger.result) =
  let trace = Option.get r.mem_trace in
  let results =
    Nvsc_dramsim.Memory_system.compare_technologies
      ~techs:Technology.paper_set
      ~replay:(fun sink -> Trace_log.replay_batch trace sink)
      ()
  in
  let normalized = Nvsc_dramsim.Memory_system.normalized_power results in
  let power_rows =
    List.map2
      (fun ((t : Technology.t), (s : Nvsc_dramsim.Controller.stats))
           ((t' : Technology.t), n) ->
        assert (t.tech = t'.Technology.tech);
        {
          tech_name = t.name;
          avg_power_w = s.avg_power_w;
          elapsed_ns = s.elapsed_ns;
          row_hit_rate = s.row_hit_rate;
          bandwidth_gbs = s.bandwidth_gbs;
          normalized = n;
        })
      results normalized
  in
  {
    p_info = info_of_result r;
    trace_length = Trace_log.length trace;
    trace_reads = Trace_log.reads trace;
    trace_writes = Trace_log.writes trace;
    l1_miss_rate = r.l1_miss_rate;
    l2_miss_rate = r.l2_miss_rate;
    power_rows;
    p_pipeline = r.pipeline;
  }

let execute_power spec app =
  Power_result
    (power_payload_of_result
       (Scavenger.run
          Scavenger.Config.(base_config spec |> with_trace true)
          app))

let perf_rows_of_points points =
  List.map
    (fun (p : Nvsc_cpusim.Sensitivity.point) ->
      {
        perf_tech_name = p.tech.Technology.name;
        latency_ns = p.latency_ns;
        runtime_ns = p.runtime_ns;
        normalized_runtime = p.normalized_runtime;
      })
    points

let execute_perf spec app =
  let points =
    Nvsc_cpusim.Sensitivity.run
      ~replay:(Nvsc_core.Experiment.perf_replay ~scale:spec.scale app)
      ()
  in
  Perf_result (perf_rows_of_points points)

let place_payload_of_result spec (r : Scavenger.result) =
  let tech =
    Technology.get (Option.value spec.tech ~default:Technology.STTRAM)
  in
  let items =
    List.map
      (fun (m : Nvsc_core.Object_metrics.t) ->
        {
          Nvsc_placement.Item.id = m.obj.Nvsc_memtrace.Mem_object.id;
          name = m.obj.Nvsc_memtrace.Mem_object.name;
          size_bytes = Nvsc_core.Object_metrics.size_bytes m;
          reads = m.reads;
          writes = m.writes;
          ref_share = m.ref_share;
        })
      (Scavenger.global_and_heap_metrics r)
  in
  let hybrid =
    Nvsc_placement.Hybrid_memory.create ~dram_bytes:(2 * r.footprint_bytes)
      ~nvram_bytes:(2 * r.footprint_bytes) ~tech
  in
  let hybrid = Nvsc_placement.Static_policy.plan ~hybrid items in
  {
    place_tech_name = tech.name;
    place_footprint_bytes = r.footprint_bytes;
    nvram_items =
      Nvsc_placement.Hybrid_memory.items_in hybrid
        Nvsc_placement.Hybrid_memory.Nvram;
    assessment = Nvsc_placement.Hybrid_memory.assess hybrid;
  }

let execute_place spec app =
  Place_result
    (place_payload_of_result spec (Scavenger.run (base_config spec) app))

let m_cells = Nvsc_obs.Metrics.counter "sweep.cells"

(* A trace-fed cell never re-runs the application: every kind is rebuilt
   by streaming the recorded reference stream.  The spec's pinned digest
   is re-verified against the file, so a cached payload can only ever be
   served for the exact trace content it was computed from. *)
let execute_from_trace spec path =
  (match spec.trace_digest with
  | None -> ()
  | Some pinned ->
    let _, digest = Nvsc_core.Trace_run.info path in
    if digest <> pinned then
      invalid_arg
        (Printf.sprintf
           "Cell.execute: trace %s has digest %s but the spec pins %s" path
           digest pinned));
  match spec.kind with
  | Objects ->
    Objects_result (objects_payload_of_result (Nvsc_core.Trace_run.replay path))
  | Power ->
    Power_result (power_payload_of_result (Nvsc_core.Trace_run.replay path))
  | Perf ->
    Perf_result
      (perf_rows_of_points
         (Nvsc_cpusim.Sensitivity.run
            ~replay:(Nvsc_core.Trace_run.perf_replay path)
            ()))
  | Place ->
    Place_result
      (place_payload_of_result spec (Nvsc_core.Trace_run.replay path))

let execute ?trace spec =
  Nvsc_obs.Span.with_
    ~arg:(spec.app ^ "/" ^ kind_to_string spec.kind)
    "sweep.cell"
  @@ fun () ->
  Nvsc_obs.Metrics.Counter.incr m_cells;
  match trace with
  | Some path -> execute_from_trace spec path
  | None ->
    if spec.trace_digest <> None then
      invalid_arg
        "Cell.execute: spec pins a trace digest but no trace file was given";
    let app = find_app spec.app in
    (match spec.kind with
    | Objects -> execute_objects spec app
    | Power -> execute_power spec app
    | Perf -> execute_perf spec app
    | Place -> execute_place spec app)

(* --- rendering ---------------------------------------------------------- *)

(* Report sections, exposed individually so that the serve daemon can
   stream exactly the sections the corresponding nvscav subcommand prints
   (analyze = summary + usage; run = summary, trace line, normalized
   power, assessment; ...) from decoded payloads, byte-identical to the
   local printers over a fresh result. *)

let pp_header fmt spec =
  match spec.tech with
  | None ->
    Format.fprintf fmt "== %s · %s (scale %g, %d iterations) ==@." spec.app
      (kind_to_string spec.kind) spec.scale spec.iterations
  | Some t ->
    Format.fprintf fmt "== %s · %s · %s (scale %g, %d iterations) ==@."
      spec.app (kind_to_string spec.kind) (tech_name t) spec.scale
      spec.iterations

let pp_objects_summary fmt (o : objects_payload) =
  Stack_analysis.pp_summary_table fmt [ o.summary ];
  Object_analysis.pp_report fmt o.report

let pp_objects_usage fmt (o : objects_payload) =
  Format.fprintf fmt "untouched in main loop: %s of long-term data@."
    (Table.cell_pct o.untouched_fraction);
  Usage_variance.pp_variance fmt o.variance

let pp_power_trace_line fmt (p : power_payload) =
  Format.fprintf fmt "main-memory trace: %d accesses (%d reads, %d writes)@."
    p.trace_length p.trace_reads p.trace_writes

let pp_power_stats fmt (p : power_payload) =
  List.iter
    (fun r ->
      Format.fprintf fmt
        "%-8s avg power %a  elapsed %a  row-hit %.2f  bandwidth %.2fGB/s@."
        r.tech_name Units.pp_watts r.avg_power_w Units.pp_ns r.elapsed_ns
        r.row_hit_rate r.bandwidth_gbs)
    p.power_rows

let pp_power_normalized fmt (p : power_payload) =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s normalized power %.3f@." r.tech_name
        r.normalized)
    p.power_rows

let pp_perf_points fmt rows =
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s %6.0fns  runtime %a  normalized %.3f@."
        r.perf_tech_name r.latency_ns Units.pp_ns r.runtime_ns
        r.normalized_runtime)
    rows

let pp_place_items fmt (p : place_payload) =
  List.iter
    (fun (item : Nvsc_placement.Item.t) ->
      Format.fprintf fmt "NVRAM <- %a@." Nvsc_placement.Item.pp item)
    p.nvram_items

let pp_place_assessment fmt (p : place_payload) =
  Nvsc_placement.Hybrid_memory.pp_assessment fmt p.assessment;
  Format.pp_print_newline fmt ()

let render fmt spec payload =
  pp_header fmt spec;
  match payload with
  | Objects_result o ->
    pp_objects_summary fmt o;
    pp_objects_usage fmt o
  | Power_result p ->
    pp_power_trace_line fmt p;
    pp_power_stats fmt p;
    pp_power_normalized fmt p
  | Perf_result rows -> pp_perf_points fmt rows
  | Place_result p ->
    pp_place_items fmt p;
    pp_place_assessment fmt p
