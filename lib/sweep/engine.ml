module Experiment = Nvsc_core.Experiment
module Technology = Nvsc_nvram.Technology

type outcome = { spec : Cell.spec; payload : Cell.payload; cached : bool }

type stats = {
  cells : int;
  hits : int;
  misses : int;
  evictions : int;
  jobs : int;
}

let run ?jobs ?cache ?trace matrix =
  Nvsc_obs.Span.with_ "sweep.run" @@ fun () ->
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let specs = Array.of_list (Matrix.cells matrix) in
  (* Trace-fed sweep: read the trace digest once and stamp it into every
     spec, so the cache keys on the trace *content* — re-analyzing the
     same recorded trace hits, a re-recorded (different) trace misses. *)
  let specs =
    match trace with
    | None -> specs
    | Some path ->
      let _, digest = Nvsc_core.Trace_run.info path in
      Array.map (fun s -> { s with Cell.trace_digest = Some digest }) specs
  in
  (* Serial cache pass on the calling domain: the cache never sees
     concurrent access, and hit/miss order is deterministic. *)
  let looked_up =
    Array.map
      (fun spec ->
        match cache with
        | None -> (spec, None)
        | Some c -> (spec, Cache.find c spec))
      specs
  in
  let miss_indices =
    Array.to_list looked_up
    |> List.mapi (fun i (_, found) -> (i, found))
    |> List.filter_map (fun (i, found) ->
           match found with None -> Some i | Some _ -> None)
    |> Array.of_list
  in
  let computed =
    Pool.map ~jobs
      (fun i -> Cell.execute ?trace (fst looked_up.(i)))
      miss_indices
  in
  let by_index = Hashtbl.create (Array.length miss_indices) in
  Array.iteri (fun k i -> Hashtbl.add by_index i computed.(k)) miss_indices;
  let outcomes =
    Array.mapi
      (fun i (spec, found) ->
        match found with
        | Some payload -> { spec; payload; cached = true }
        | None -> { spec; payload = Hashtbl.find by_index i; cached = false })
      looked_up
  in
  (match cache with
  | None -> ()
  | Some c ->
    Array.iter
      (fun o -> if not o.cached then Cache.store c o.spec o.payload)
      outcomes);
  let cache_stats =
    match cache with
    | None -> { Cache.hits = 0; misses = 0; evictions = 0 }
    | Some c -> Cache.stats c
  in
  ( outcomes,
    {
      cells = Array.length specs;
      hits = cache_stats.hits;
      misses = cache_stats.misses;
      evictions = cache_stats.evictions;
      jobs = max 1 (min jobs (max 1 (Array.length specs)));
    } )

let pp_stats fmt s =
  Format.fprintf fmt "sweep: cells=%d hits=%d misses=%d evictions=%d jobs=%d"
    s.cells s.hits s.misses s.evictions s.jobs

let pp_outcomes fmt outcomes =
  Array.iter (fun o -> Cell.render fmt o.spec o.payload) outcomes

(* --- the experiments pipeline ------------------------------------------- *)

let experiments_matrix ~(config : Experiment.config) =
  let overrides =
    [
      {
        Matrix.o_app = None;
        o_kind = Some Cell.Perf;
        o_scale = Some config.perf_scale;
        o_iterations = None;
      };
    ]
  in
  match
    Matrix.make
      ~apps:Nvsc_apps.Apps.names
      ~kinds:[ Cell.Objects; Cell.Power; Cell.Perf ]
      ~scale:config.scale ~iterations:config.iterations ~overrides ()
  with
  | Ok m -> m
  | Error e -> invalid_arg ("Engine.experiments_matrix: " ^ e)

let tech_of_name name =
  match Technology.of_string name with
  | Some t -> t
  | None ->
    invalid_arg
      (Printf.sprintf "Engine.experiments_data: unknown technology %S" name)

let experiments_data ~(config : Experiment.config) outcomes =
  let objects =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           match o.payload with
           | Cell.Objects_result p -> Some (o.spec.Cell.app, p)
           | _ -> None)
  in
  let powers =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           match o.payload with
           | Cell.Power_result p -> Some (o.spec.Cell.app, p)
           | _ -> None)
  in
  let perfs =
    Array.to_list outcomes
    |> List.filter_map (fun o ->
           match o.payload with
           | Cell.Perf_result rows -> Some (o.spec.Cell.app, rows)
           | _ -> None)
  in
  if objects = [] || powers = [] || perfs = [] then
    invalid_arg
      "Engine.experiments_data: outcomes lack objects, power or perf cells";
  {
    Experiment.data_config = config;
    rows =
      List.map
        (fun (app, (p : Cell.objects_payload)) ->
          {
            Experiment.app_name = app;
            input_description = p.info.Cell.input_description;
            description = p.info.Cell.description;
            footprint_bytes = p.info.Cell.footprint_bytes;
            paper_footprint_mb = p.info.Cell.paper_footprint_mb;
          })
        objects;
    summaries = List.map (fun (_, (p : Cell.objects_payload)) -> p.summary) objects;
    cam_distribution =
      List.assoc_opt "cam" objects
      |> Option.map (fun (p : Cell.objects_payload) -> p.distribution);
    reports = List.map (fun (_, (p : Cell.objects_payload)) -> p.report) objects;
    cdfs =
      List.filter_map
        (fun (app, (p : Cell.objects_payload)) ->
          (* the paper omits GTC from figure 7; see Experiment.fig7_data *)
          if app = "gtc" then None else Some (app, p.cdf))
        objects;
    untouched =
      List.map
        (fun (app, (p : Cell.objects_payload)) -> (app, p.untouched_fraction))
        objects;
    variances =
      List.map (fun (app, (p : Cell.objects_payload)) -> (app, p.variance)) objects;
    powers =
      List.map
        (fun (app, (p : Cell.power_payload)) ->
          ( app,
            List.map
              (fun (r : Cell.power_row) ->
                (tech_of_name r.tech_name, r.normalized))
              p.power_rows ))
        powers;
    perf =
      List.map
        (fun (app, rows) ->
          ( app,
            List.map
              (fun (r : Cell.perf_row) ->
                {
                  Experiment.tech = tech_of_name r.perf_tech_name;
                  latency_ns = r.latency_ns;
                  normalized_runtime = r.normalized_runtime;
                })
              rows ))
        perfs;
    pipelines =
      (* the legacy bundle traces its runs, so pipeline counters come from
         the traced power cells, not the untraced objects cells *)
      List.map (fun (app, (p : Cell.power_payload)) -> (app, p.p_pipeline)) powers;
  }
