(** Experiment matrices as first-class values.

    A matrix is the cartesian product of applications × analysis kinds ×
    (for placement cells) technologies at one base configuration, plus a
    list of per-cell overrides.  {!cells} expands it into the flat,
    deterministically ordered cell list the engine schedules: application
    major, then kind in the order given, then technology — the aggregated
    report renders in exactly this order regardless of [--jobs]. *)

type override = {
  o_app : string option;  (** [None] applies to every application *)
  o_kind : Cell.kind option;  (** [None] applies to every kind *)
  o_scale : float option;
  o_iterations : int option;
}

type t = {
  apps : string list;
  kinds : Cell.kind list;
  techs : Nvsc_nvram.Technology.tech list;
      (** technologies for [Place] cells (one cell per technology) *)
  scale : float;
  iterations : int;
  overrides : override list;  (** applied in order; later entries win *)
}

val default : t
(** The paper's four applications × every analysis kind, scale 1.0, 10
    iterations, STTRAM as the placement technology. *)

val make :
  ?apps:string list ->
  ?kinds:Cell.kind list ->
  ?techs:string list ->
  ?scale:float ->
  ?iterations:int ->
  ?overrides:override list ->
  unit ->
  (t, string) result
(** Validating constructor: unknown application, kind or technology names
    are reported instead of raising. *)

val parse_override : string -> (override, string) result
(** Parse a [key=value[,key=value...]] spec with keys [app], [kind],
    [scale] and [iterations], e.g. ["kind=perf,scale=0.5"] or
    ["app=cam,iterations=3"]. *)

val cells : t -> Cell.spec list
(** Deterministic expansion (see above); overrides are applied to every
    matching cell. *)
