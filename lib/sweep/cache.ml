module Json = Nvsc_util.Json

type t = {
  dir : string;
  max_entries : int option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { hits : int; misses : int; evictions : int }

(* The per-cache record fields above feed the sweep report; the registry
   counters below are the cross-domain aggregate reported once by the
   profile summary.  The engine's serial cache pass means both agree, but
   the registry survives across caches and sweeps in one process. *)
let m_hits = Nvsc_obs.Metrics.counter "sweep.cache.hits"
let m_misses = Nvsc_obs.Metrics.counter "sweep.cache.misses"
let m_evictions = Nvsc_obs.Metrics.counter "sweep.cache.evictions"

let count_hit (t : t) =
  t.hits <- t.hits + 1;
  Nvsc_obs.Metrics.Counter.incr m_hits

let count_miss (t : t) =
  t.misses <- t.misses + 1;
  Nvsc_obs.Metrics.Counter.incr m_misses

let count_eviction (t : t) =
  t.evictions <- t.evictions + 1;
  Nvsc_obs.Metrics.Counter.incr m_evictions

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let index_file t = Filename.concat t.dir "cache.index"
let entry_path t digest = Filename.concat t.dir (digest ^ ".json")

let create ~dir ?max_entries () =
  mkdir_p dir;
  { dir; max_entries; hits = 0; misses = 0; evictions = 0 }

let dir t = t.dir
let stats (t : t) = { hits = t.hits; misses = t.misses; evictions = t.evictions }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents);
  Sys.rename tmp path

let remove_if_exists path = if Sys.file_exists path then Sys.remove path

(* --- insertion-order index (for bounded caches) ------------------------- *)

let read_index t =
  if Sys.file_exists (index_file t) then
    String.split_on_char '\n' (read_file (index_file t))
    |> List.filter (fun l -> l <> "")
  else []

let write_index t digests =
  write_file (index_file t)
    (String.concat "" (List.map (fun d -> d ^ "\n") digests))

let append_index t digest =
  let entries = List.filter (fun d -> d <> digest) (read_index t) in
  write_index t (entries @ [ digest ])

let evict t =
  match t.max_entries with
  | None -> ()
  | Some max ->
    let live =
      List.filter (fun d -> Sys.file_exists (entry_path t d)) (read_index t)
    in
    let excess = List.length live - max in
    if excess > 0 then begin
      let rec drop k = function
        | d :: rest when k > 0 ->
          remove_if_exists (entry_path t d);
          count_eviction t;
          drop (k - 1) rest
        | rest -> rest
      in
      let kept = drop excess live in
      write_index t kept
    end
    else if List.length live <> List.length (read_index t) then
      write_index t live

(* --- lookup / store ----------------------------------------------------- *)

let wrap spec payload =
  Json.Obj
    [
      ("version", Json.Str Cell.code_version);
      ("spec", Cell.spec_to_json spec);
      ("payload", Cell.payload_to_json payload);
    ]

let unwrap spec json =
  if Json.to_str (Json.member "version" json) <> Cell.code_version then
    raise (Json.Parse_error "Cache: stale code version");
  let stored = Cell.spec_of_json (Json.member "spec" json) in
  if stored <> spec then raise (Json.Parse_error "Cache: spec mismatch");
  Cell.payload_of_json (Json.member "payload" json)

let find t spec =
  let path = entry_path t (Cell.digest spec) in
  if not (Sys.file_exists path) then begin
    count_miss t;
    None
  end
  else
    match unwrap spec (Json.of_string (read_file path)) with
    | payload ->
      count_hit t;
      Some payload
    | exception (Json.Parse_error _ | Sys_error _) ->
      (* corrupt, stale or colliding entry: drop it and recompute *)
      remove_if_exists path;
      count_miss t;
      None

let store t spec payload =
  let digest = Cell.digest spec in
  write_file (entry_path t digest) (Json.to_string (wrap spec payload));
  append_index t digest;
  evict t
