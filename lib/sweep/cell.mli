(** One cell of an experiment matrix: an (application × analysis kind ×
    configuration) point, its execution, and its serialized form.

    A cell is the sweep engine's unit of scheduling and of caching: every
    cell runs an isolated {!Nvsc_core.Scavenger} pipeline (no state shared
    with other cells, so cells may execute on any worker domain in any
    order), returns a plain-data payload, and owns a content digest that
    keys the on-disk result cache.  Payload codecs round-trip exactly: a
    decoded payload renders byte-identically to a fresh one. *)

module Json = Nvsc_util.Json

type kind =
  | Objects  (** per-object metrics, stack summary, usage variance *)
  | Power  (** cache-filtered trace replayed through the power simulator *)
  | Perf  (** figure-12 latency-sensitivity replay *)
  | Place  (** static hybrid DRAM/NVRAM placement plan *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val all_kinds : kind list

type spec = {
  app : string;
  kind : kind;
  scale : float;
  iterations : int;
  tech : Nvsc_nvram.Technology.tech option;
      (** NVRAM technology of a [Place] cell's hybrid; [None] elsewhere *)
  trace_digest : string option;
      (** content digest of the NVT trace this cell replays instead of
          re-running the application; [None] for a live cell.  Folded into
          {!digest}, so trace-fed and live results never share a cache
          entry and different trace contents never collide. *)
}

val spec_to_json : spec -> Json.t
val spec_of_json : Json.t -> spec

val code_version : string
(** Salt folded into every digest; bump when the payload schema or the
    simulation semantics change so stale cache entries stop matching. *)

val digest : spec -> string
(** Hex content digest of [code_version] plus every spec field — the
    cache key.  Any field change changes the digest. *)

(** {1 Payloads} *)

type app_info = {
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  footprint_bytes : int;
  total_main_refs : int;
}

type objects_payload = {
  info : app_info;
  summary : Nvsc_core.Stack_analysis.summary;
  distribution : Nvsc_core.Stack_analysis.distribution;
  report : Nvsc_core.Object_analysis.report;
  cdf : Nvsc_core.Usage_variance.cdf_point list;
  variance : Nvsc_core.Usage_variance.variance;
  untouched_fraction : float;
  pipeline : Nvsc_appkit.Ctx.pipeline_stats;
}

type power_row = {
  tech_name : string;
  avg_power_w : float;
  elapsed_ns : float;
  row_hit_rate : float;
  bandwidth_gbs : float;
  normalized : float;
}

type power_payload = {
  p_info : app_info;
  trace_length : int;
  trace_reads : int;
  trace_writes : int;
  l1_miss_rate : float;
  l2_miss_rate : float;
  power_rows : power_row list;
  p_pipeline : Nvsc_appkit.Ctx.pipeline_stats;
}

type perf_row = {
  perf_tech_name : string;
  latency_ns : float;
  runtime_ns : float;
  normalized_runtime : float;
}

type place_payload = {
  place_tech_name : string;
  place_footprint_bytes : int;
  nvram_items : Nvsc_placement.Item.t list;
  assessment : Nvsc_placement.Hybrid_memory.assessment;
}

type payload =
  | Objects_result of objects_payload
  | Power_result of power_payload
  | Perf_result of perf_row list
  | Place_result of place_payload

val payload_to_json : payload -> Json.t
val payload_of_json : Json.t -> payload
(** Raises {!Nvsc_util.Json.Parse_error} on a foreign or stale shape. *)

val execute : ?trace:string -> spec -> payload
(** Run the cell.  Re-entrant and domain-safe: builds a fresh context,
    touches no global mutable state.  Raises [Invalid_argument] on an
    unknown application name.

    With [trace] (a path to an [.nvt] file, see
    {!Nvsc_memtrace.Trace_codec}), the cell streams the recorded
    reference stream instead of re-running the application — one recorded
    trace feeds every analysis kind.  If the spec pins a [trace_digest],
    the file's digest must match ([Invalid_argument] otherwise); a spec
    that pins a digest cannot execute without a trace. *)

val render : Format.formatter -> spec -> payload -> unit
(** The cell's section of the aggregated sweep report (header line plus
    the same tables the corresponding [nvscav] subcommand prints). *)

(** {1 Report sections}

    {!render}'s constituents, exposed individually so the serve daemon
    can compose exactly the sections each [nvscav] subcommand prints
    ([analyze] = summary + usage; [run] = summary, trace line, normalized
    power, assessment; [power]/[perf]/[place] likewise) from decoded
    payloads.  Each section starts at column 0 and ends with a newline,
    so concatenated sections are byte-identical to one continuous
    render. *)

val pp_header : Format.formatter -> spec -> unit
val pp_objects_summary : Format.formatter -> objects_payload -> unit
val pp_objects_usage : Format.formatter -> objects_payload -> unit
val pp_power_trace_line : Format.formatter -> power_payload -> unit
val pp_power_stats : Format.formatter -> power_payload -> unit
val pp_power_normalized : Format.formatter -> power_payload -> unit
val pp_perf_points : Format.formatter -> perf_row list -> unit
val pp_place_items : Format.formatter -> place_payload -> unit
val pp_place_assessment : Format.formatter -> place_payload -> unit
