module Cell = Nvsc_sweep.Cell
module Matrix = Nvsc_sweep.Matrix
module Technology = Nvsc_nvram.Technology

type t = {
  specs : Cell.spec array;
  trace : string option;
  sections : (Format.formatter -> Cell.payload -> unit) array;
}

let chunk plan i payload =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  plan.sections.(i) fmt payload;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* --- validation --------------------------------------------------------- *)

let bad ?field message =
  Error { Protocol.err_id = None; code = "bad-request"; field; message }

let ( let* ) = Result.bind

let check_app app =
  match Nvsc_apps.Apps.find app with
  | Some _ -> Ok ()
  | None ->
    bad ~field:"app"
      (Nvsc_util.Cli.unknown ~what:"application" ~known:Nvsc_apps.Apps.names
         app)

let check_tech tech =
  match Technology.of_string tech with
  | Some t -> Ok t
  | None ->
    bad ~field:"tech"
      (Nvsc_util.Cli.unknown ~what:"technology"
         ~known:
           (List.map (fun (t : Technology.t) -> t.name) Technology.paper_set)
         tech)

let check_config ~scale ~iterations =
  if not (Float.is_finite scale && scale > 0.) then
    bad ~field:"scale" "scale must be a positive number"
  else if iterations < 1 then
    bad ~field:"iterations" "iterations must be at least 1"
  else Ok ()

(* --- payload projections ------------------------------------------------ *)

(* A section printer receiving the wrong payload constructor would be a
   scheduling bug, not a client error, hence the assertions. *)

let objects = function
  | Cell.Objects_result o -> o
  | _ -> invalid_arg "Plan: objects payload expected"

let power = function
  | Cell.Power_result p -> p
  | _ -> invalid_arg "Plan: power payload expected"

let perf = function
  | Cell.Perf_result rows -> rows
  | _ -> invalid_arg "Plan: perf payload expected"

let place = function
  | Cell.Place_result p -> p
  | _ -> invalid_arg "Plan: place payload expected"

(* Composed exactly as the local subcommands compose their reports, from
   the same payload section printers, so the streamed chunks concatenate
   to byte-identical output. *)

let analyze_section fmt p =
  let o = objects p in
  Cell.pp_objects_summary fmt o;
  Cell.pp_objects_usage fmt o

let run_sections =
  [|
    (fun fmt p -> Cell.pp_objects_summary fmt (objects p));
    (fun fmt p ->
      let pw = power p in
      Cell.pp_power_trace_line fmt pw;
      Cell.pp_power_normalized fmt pw);
    (fun fmt p -> Cell.pp_place_assessment fmt (place p));
  |]

let power_section fmt p =
  let pw = power p in
  Cell.pp_power_trace_line fmt pw;
  Cell.pp_power_stats fmt pw;
  Cell.pp_power_normalized fmt pw

let perf_section fmt p = Cell.pp_perf_points fmt (perf p)

let place_section fmt p =
  let pl = place p in
  Cell.pp_place_items fmt pl;
  Cell.pp_place_assessment fmt pl

(* --- spec builders ------------------------------------------------------ *)

let spec ?tech ?digest ~app ~scale ~iterations kind =
  {
    Cell.app;
    kind;
    scale;
    iterations;
    tech = Option.map (fun (t : Technology.t) -> t.tech) tech;
    trace_digest = digest;
  }

let analyze ~app ~scale ~iterations =
  let* () = check_app app in
  let* () = check_config ~scale ~iterations in
  Ok
    {
      specs = [| spec ~app ~scale ~iterations Cell.Objects |];
      trace = None;
      sections = [| analyze_section |];
    }

let run_specs ?digest ~app ~scale ~iterations tech =
  [|
    spec ?digest ~app ~scale ~iterations Cell.Objects;
    spec ?digest ~app ~scale ~iterations Cell.Power;
    spec ~tech ?digest ~app ~scale ~iterations Cell.Place;
  |]

let run ~app ~scale ~iterations ~tech =
  let* () = check_app app in
  let* tech = check_tech tech in
  let* () = check_config ~scale ~iterations in
  Ok
    {
      specs = run_specs ~app ~scale ~iterations tech;
      trace = None;
      sections = run_sections;
    }

let trace_info path =
  try Ok (Nvsc_core.Trace_run.info path) with
  | Nvsc_memtrace.Trace_codec.Error msg | Sys_error msg ->
    bad ~field:"path" msg

let replay ~path ~kind ~tech =
  let* tech = check_tech tech in
  let* meta, digest = trace_info path in
  let app = meta.Nvsc_memtrace.Trace_codec.app in
  let scale = meta.scale and iterations = meta.iterations in
  let cell k = spec ~digest ~app ~scale ~iterations k in
  let* specs, sections =
    match kind with
    | "run" ->
      Ok (run_specs ~digest ~app ~scale ~iterations tech, run_sections)
    | "objects" -> Ok ([| cell Cell.Objects |], [| analyze_section |])
    | "power" -> Ok ([| cell Cell.Power |], [| power_section |])
    | "perf" -> Ok ([| cell Cell.Perf |], [| perf_section |])
    | "place" ->
      Ok
        ( [| spec ~tech ~digest ~app ~scale ~iterations Cell.Place |],
          [| place_section |] )
    | kind ->
      bad ~field:"kind"
        (Nvsc_util.Cli.unknown ~what:"kind"
           ~known:[ "run"; "objects"; "power"; "perf"; "place" ]
           kind)
  in
  Ok { specs; trace = Some path; sections }

let map_result f l =
  List.fold_right
    (fun x acc ->
      let* y = f x in
      let* ys = acc in
      Ok (y :: ys))
    l (Ok [])

let sweep ~apps ~kinds ~techs ~scale ~iterations ~overrides ~from_trace =
  (* Mirrors the local [nvscav sweep] matrix construction, including the
     trace pinning: a trace-fed sweep is forced onto the trace's
     application, scale and iteration count, and every cell's cache key
     carries the trace's content digest. *)
  let* forced =
    match from_trace with
    | None -> Ok (apps, scale, iterations, None)
    | Some path ->
      let* meta, digest = trace_info path in
      Ok
        ( Some [ meta.Nvsc_memtrace.Trace_codec.app ],
          meta.scale,
          meta.iterations,
          Some digest )
  in
  let apps, scale, iterations, digest = forced in
  let* () = check_config ~scale ~iterations in
  let* kinds =
    match kinds with
    | None -> Ok None
    | Some names ->
      Result.map Option.some
        (map_result
           (fun s ->
             match Cell.kind_of_string s with
             | Some k -> Ok k
             | None ->
               bad ~field:"kinds"
                 (Nvsc_util.Cli.unknown ~what:"kind"
                    ~known:(List.map Cell.kind_to_string Cell.all_kinds)
                    s))
           names)
  in
  let* overrides =
    map_result
      (fun s ->
        match Matrix.parse_override s with
        | Ok o -> Ok o
        | Error msg -> bad ~field:"overrides" msg)
      overrides
  in
  let* matrix =
    match Matrix.make ?apps ?kinds ?techs ~scale ~iterations ~overrides () with
    | Ok m -> Ok m
    | Error msg -> bad msg
  in
  let specs = Array.of_list (Matrix.cells matrix) in
  let specs =
    match digest with
    | None -> specs
    | Some d -> Array.map (fun s -> { s with Cell.trace_digest = Some d }) specs
  in
  Ok
    {
      specs;
      trace = from_trace;
      sections =
        Array.map (fun s fmt payload -> Cell.render fmt s payload) specs;
    }

let of_request = function
  | Protocol.Analyze { app; scale; iterations } -> analyze ~app ~scale ~iterations
  | Protocol.Run { app; scale; iterations; tech } ->
    run ~app ~scale ~iterations ~tech
  | Protocol.Replay { path; kind; tech } -> replay ~path ~kind ~tech
  | Protocol.Sweep { apps; kinds; techs; scale; iterations; overrides;
                     from_trace } ->
    sweep ~apps ~kinds ~techs ~scale ~iterations ~overrides ~from_trace
  | Protocol.Ping | Protocol.Stats _ | Protocol.Shutdown ->
    invalid_arg "Plan.of_request: not an analysis request"
