(** Request → execution plan: which {!Nvsc_sweep.Cell}s to run, and how
    to render each completed cell into the report chunk the client
    streams.

    Cells are the daemon's unit of scheduling {e and} of caching, so
    decomposing every analysis request into cells gives each request
    per-cell parallelism on the shared pool and content-addressed
    memoization for free — a warm [analyze] request is served without
    running anything.  The section printers come from
    {!Nvsc_sweep.Cell}, the same printers the local subcommands render
    with, so the concatenated chunks are byte-identical to local
    stdout. *)

module Cell = Nvsc_sweep.Cell

type t = {
  specs : Cell.spec array;  (** cells, in report order *)
  trace : string option;  (** [.nvt] file feeding trace-fed cells *)
  sections : (Format.formatter -> Cell.payload -> unit) array;
      (** one renderer per cell, same indexing as [specs] *)
}

val chunk : t -> int -> Cell.payload -> string
(** Render cell [i]'s completed payload to its report chunk. *)

val of_request : Protocol.request -> (t, Protocol.error) result
(** Validates and decomposes an analysis request ([analyze]/[run]/
    [replay]/[sweep]).  Unknown applications, technologies, kinds, bad
    overrides, unreadable traces and non-positive configurations come
    back as [bad-request] errors naming the offending field.  Raises
    [Invalid_argument] on [Ping]/[Stats]/[Shutdown], which have no
    plan. *)
