(** Thin blocking client for the [nvscav serve] daemon.

    One connection, one request at a time: {!request} sends a frame,
    invokes [on_output] on every streamed [progress] chunk (in order —
    writing the chunks verbatim to stdout reproduces the local
    subcommand's output byte-for-byte) and returns the final [done]
    frame's counters. *)

module Json = Nvsc_util.Json

val default_socket : string
(** ["nvscav.sock"] — the server's default too. *)

type t

type reply = {
  cells : int;  (** cells the request decomposed into *)
  hits : int;  (** cells served from the shared warm cache *)
  misses : int;  (** cells computed on the pool *)
  result : Json.t option;  (** [ping]/[stats] payload *)
}

val connect : ?socket:string -> ?port:int -> unit -> (t, string) result
(** Connect (TCP to loopback when [port] is given, else the Unix socket,
    default {!default_socket}) and validate the server's hello
    handshake. *)

val request :
  ?on_output:(string -> unit) -> t -> Protocol.request -> (reply, string) result
(** Errors render the server's structured error frame
    ({!Protocol.error_to_string}), or describe the transport failure. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The raw connection, exposed so tests can sever it mid-request. *)
