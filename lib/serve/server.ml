module Json = Nvsc_util.Json
module Metrics = Nvsc_obs.Metrics
module Pool = Nvsc_sweep.Pool
module Cache = Nvsc_sweep.Cache
module Cell = Nvsc_sweep.Cell

let m_connections = Metrics.gauge "serve.connections"
let m_inflight = Metrics.gauge "serve.inflight"
let m_requests = Metrics.counter "serve.requests"
let m_errors = Metrics.counter "serve.errors"
let m_bad_frames = Metrics.counter "serve.bad_frames"

type config = {
  socket : string option;
  port : int option;
  jobs : int option;
  cache_dir : string option;
  cache_max : int option;
  max_queue : int;
  max_frame : int;
}

let default =
  {
    socket = Some "nvscav.sock";
    port = None;
    jobs = None;
    cache_dir = None;
    cache_max = None;
    max_queue = 64;
    max_frame = Json.Lines.default_max_frame;
  }

type listener = { lfd : Unix.file_descr; lpath : string option }

type t = {
  cfg : config;
  pool : Pool.t;
  cache : Cache.t;
  cache_mu : Mutex.t;
  temp_cache : bool;
  listeners : listener list;
  stopping : bool Atomic.t;
  conns : int Atomic.t;
  inflight : int Atomic.t;
  finalized : bool Atomic.t;
  mutable accept_thread : Thread.t option;
}

(* --- socket plumbing ---------------------------------------------------- *)

exception Closed
(** The peer went away mid-write; tears down one connection, never the
    server. *)

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
      raise Closed

let send_frame fd frame =
  let line = Json.Lines.encode (Protocol.frame_to_json frame) in
  write_all fd line 0 (String.length line)

(* Connection reads poll so a stopping server can simulate EOF between
   frames: handlers drain their current request, then see the stream
   end and close.  An idle keep-alive connection therefore never blocks
   shutdown for more than the poll interval. *)
let refill t fd buf pos len =
  let rec loop () =
    if Atomic.get t.stopping then 0
    else
      match Unix.select [ fd ] [] [] 0.25 with
      | [], _, _ -> loop ()
      | _ -> (
        try Unix.read fd buf pos len
        with Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0)
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
  in
  loop ()

let listen_unix path =
  (match Unix.stat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    (* A leftover socket file from a dead daemon is reclaimed; a live
       one is an error, not a takeover. *)
    let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      try
        Unix.connect probe (Unix.ADDR_UNIX path);
        true
      with Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      failwith (Printf.sprintf "%s: a server is already listening" path);
    Unix.unlink path
  | _ -> failwith (Printf.sprintf "%s: exists and is not a socket" path)
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  { lfd = fd; lpath = Some path }

let listen_tcp port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  { lfd = fd; lpath = None }

(* --- request execution -------------------------------------------------- *)

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let run_plan t ~send ~id (plan : Plan.t) =
  let disconnected = Atomic.make false in
  (* Serial cache pass: the cache is single-writer by design, and doing
     every lookup before fanning out makes this request's hit/miss count
     deterministic. *)
  let looked_up =
    Array.map
      (fun spec -> (spec, with_lock t.cache_mu (fun () -> Cache.find t.cache spec)))
      plan.Plan.specs
  in
  let hits =
    Array.fold_left
      (fun acc (_, found) -> if found = None then acc else acc + 1)
      0 looked_up
  in
  (* Misses go to the shared pool; completed cells are stored from the
     worker so the cache warms even if this client disconnects
     mid-stream. *)
  let tickets =
    Array.map
      (fun (spec, found) ->
        match found with
        | Some payload -> `Hit payload
        | None ->
          `Miss
            (Pool.submit
               ~cancelled:(fun () -> Atomic.get disconnected)
               t.pool
               (fun () ->
                 let payload = Cell.execute ?trace:plan.Plan.trace spec in
                 with_lock t.cache_mu (fun () ->
                     Cache.store t.cache spec payload);
                 payload)))
      looked_up
  in
  (* Await in report order: cell [i]'s chunk streams as soon as it (and
     everything before it) is done, while later cells still compute. *)
  let failure = ref None in
  Array.iteri
    (fun i entry ->
      let outcome =
        match entry with
        | `Hit payload -> Pool.Done payload
        | `Miss ticket -> Pool.await ticket
      in
      if !failure = None && not (Atomic.get disconnected) then
        match outcome with
        | Pool.Done payload -> (
          try send (Protocol.Progress { id; seq = i; out = Plan.chunk plan i payload })
          with Closed -> Atomic.set disconnected true)
        | Pool.Failed e -> failure := Some (Printexc.to_string e)
        | Pool.Cancelled -> failure := Some "request was cancelled")
    tickets;
  if Atomic.get disconnected then raise Closed;
  let n = Array.length plan.Plan.specs in
  match !failure with
  | Some message ->
    Metrics.Counter.incr m_errors;
    send
      (Protocol.Error_frame
         { err_id = Some id; code = "failed"; field = None; message })
  | None ->
    send
      (Protocol.Done_frame
         { id; cells = n; hits; misses = n - hits; result = None })

let stats_json t ~strip_time =
  Json.Obj
    [
      ("protocol", Json.Int Protocol.version);
      ("server", Json.Str Protocol.server_name);
      ("jobs", Json.Int (Pool.jobs t.pool));
      ("connections", Json.Int (Atomic.get t.conns));
      ("inflight", Json.Int (Atomic.get t.inflight));
      ("max_queue", Json.Int (t.cfg.max_queue));
      ("cache_dir", Json.Str (Cache.dir t.cache));
      ("profiling", Json.Bool (Nvsc_obs.enabled ()));
      ("metrics", Metrics.snapshot_json ~strip_time ());
    ]

let request_stop t = Atomic.set t.stopping true

let handle_frame t ~send json =
  match Protocol.decode_request json with
  | Error e ->
    Metrics.Counter.incr m_errors;
    send (Protocol.Error_frame e)
  | Ok (id, req) -> (
    Metrics.Counter.incr m_requests;
    let empty_done result =
      Protocol.Done_frame { id; cells = 0; hits = 0; misses = 0; result }
    in
    if Atomic.get t.stopping then
      send
        (Protocol.Error_frame
           {
             err_id = Some id;
             code = "shutting-down";
             field = None;
             message = "server is shutting down";
           })
    else
      match req with
      | Protocol.Ping ->
        send (empty_done (Some (Json.Obj [ ("pong", Json.Bool true) ])))
      | Protocol.Stats { strip_time } ->
        send (empty_done (Some (stats_json t ~strip_time)))
      | Protocol.Shutdown ->
        send (empty_done None);
        request_stop t
      | Protocol.Analyze _ | Protocol.Run _ | Protocol.Replay _
      | Protocol.Sweep _ ->
        if Atomic.get t.inflight >= t.cfg.max_queue then begin
          Metrics.Counter.incr m_errors;
          send
            (Protocol.Error_frame
               {
                 err_id = Some id;
                 code = "overloaded";
                 field = None;
                 message =
                   Printf.sprintf
                     "server is at its limit of %d in-flight request(s)"
                     t.cfg.max_queue;
               })
        end
        else begin
          Atomic.incr t.inflight;
          Metrics.Gauge.set m_inflight (float_of_int (Atomic.get t.inflight));
          Fun.protect
            ~finally:(fun () ->
              Atomic.decr t.inflight;
              Metrics.Gauge.set m_inflight
                (float_of_int (Atomic.get t.inflight)))
            (fun () ->
              match Plan.of_request req with
              | Error e ->
                Metrics.Counter.incr m_errors;
                send (Protocol.Error_frame { e with err_id = Some id })
              | Ok plan -> run_plan t ~send ~id plan)
        end)

let handle_conn t cfd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close cfd with Unix.Unix_error _ -> ());
      Atomic.decr t.conns;
      Metrics.Gauge.set m_connections (float_of_int (Atomic.get t.conns)))
  @@ fun () ->
  let send frame = send_frame cfd frame in
  try
    send
      (Protocol.Hello
         { protocol = Protocol.version; server = Protocol.server_name });
    let reader =
      Json.Lines.reader ~max_frame:t.cfg.max_frame (refill t cfd)
    in
    let rec loop () =
      match Json.Lines.read reader with
      | None -> ()
      | Some (Error fe) ->
        Metrics.Counter.incr m_bad_frames;
        send
          (Protocol.Error_frame
             {
               err_id = None;
               code = "bad-frame";
               field = None;
               message = fe.Json.Lines.message;
             });
        loop ()
      | Some (Ok json) ->
        handle_frame t ~send json;
        loop ()
    in
    loop ()
  with Closed -> ()

let accept_loop t () =
  let fds = List.map (fun l -> l.lfd) t.listeners in
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select fds [] [] 0.2 with
      | ready, _, _ ->
        List.iter
          (fun lfd ->
            match Unix.accept ~cloexec:true lfd with
            | cfd, _ ->
              Atomic.incr t.conns;
              Metrics.Gauge.set m_connections
                (float_of_int (Atomic.get t.conns));
              ignore (Thread.create (handle_conn t) cfd)
            | exception Unix.Unix_error _ -> ())
          ready
      | exception Unix.Unix_error (EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle ---------------------------------------------------------- *)

let temp_counter = Atomic.make 0

let temp_cache_dir () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "nvscav-serve-%d-%d" (Unix.getpid ())
       (Atomic.fetch_and_add temp_counter 1))

let remove_tree dir =
  let rec rm path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  in
  rm dir

let start cfg =
  if cfg.socket = None && cfg.port = None then
    invalid_arg "Server.start: no socket path and no port to listen on";
  (* A client vanishing mid-write must surface as EPIPE, not kill the
     daemon. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listeners =
    List.concat
      [
        (match cfg.socket with Some p -> [ listen_unix p ] | None -> []);
        (match cfg.port with Some p -> [ listen_tcp p ] | None -> []);
      ]
  in
  let cache_dir, temp_cache =
    match cfg.cache_dir with
    | Some dir -> (dir, false)
    | None -> (temp_cache_dir (), true)
  in
  let t =
    {
      cfg;
      pool = Pool.create ?jobs:cfg.jobs ();
      cache = Cache.create ~dir:cache_dir ?max_entries:cfg.cache_max ();
      cache_mu = Mutex.create ();
      temp_cache;
      listeners;
      stopping = Atomic.make false;
      conns = Atomic.make 0;
      inflight = Atomic.make 0;
      finalized = Atomic.make false;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  t

let endpoints t =
  List.concat
    [
      (match t.cfg.socket with Some p -> [ Printf.sprintf "unix:%s" p ] | None -> []);
      (match t.cfg.port with
      | Some p -> [ Printf.sprintf "tcp:127.0.0.1:%d" p ]
      | None -> []);
    ]

let await t =
  (* Poll rather than block in [Thread.join] so signal handlers (which
     run on this thread) get a chance to set the stop flag. *)
  while not (Atomic.get t.stopping) do
    try Thread.delay 0.1 with Unix.Unix_error (EINTR, _, _) -> ()
  done;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* Drain: connection handlers notice the stop flag within one poll
     interval; whatever they were executing completes first. *)
  while Atomic.get t.conns > 0 || Atomic.get t.inflight > 0 do
    Thread.delay 0.05
  done;
  if not (Atomic.exchange t.finalized true) then begin
    Pool.shutdown t.pool;
    List.iter
      (fun l ->
        (try Unix.close l.lfd with Unix.Unix_error _ -> ());
        match l.lpath with
        | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
        | None -> ())
      t.listeners;
    if t.temp_cache then remove_tree (Cache.dir t.cache)
  end

let stop t =
  request_stop t;
  await t
