module Json = Nvsc_util.Json

let default_socket = "nvscav.sock"

type t = {
  fd : Unix.file_descr;
  reader : Json.Lines.reader;
  mutable next_id : int;
}

type reply = {
  cells : int;
  hits : int;
  misses : int;
  result : Json.t option;
}

let fd t = t.fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rec write_all fd s pos len =
  if len > 0 then
    match Unix.write_substring fd s pos len with
    | n -> write_all fd s (pos + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_all fd s pos len

let read_frame t =
  match Json.Lines.read t.reader with
  | None -> Error "connection closed by server"
  | Some (Error fe) -> Error fe.Json.Lines.message
  | Some (Ok json) -> Protocol.frame_of_json json

let addr_to_string = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (host, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) port

let connect ?socket ?port () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr =
    match (socket, port) with
    | _, Some p -> Unix.ADDR_INET (Unix.inet_addr_loopback, p)
    | Some path, None -> Unix.ADDR_UNIX path
    | None, None -> Unix.ADDR_UNIX default_socket
  in
  let domain = Unix.domain_of_sockaddr addr in
  match
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf
         "cannot connect to %s: %s (is the daemon running? start it with \
          `nvscav serve`)"
         (addr_to_string addr) (Unix.error_message e))
  | fd -> (
    let reader =
      Json.Lines.reader (fun buf pos len ->
          try Unix.read fd buf pos len
          with Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0)
    in
    let t = { fd; reader; next_id = 1 } in
    match read_frame t with
    | Ok (Protocol.Hello h) when h.protocol = Protocol.version -> Ok t
    | Ok (Protocol.Hello h) ->
      close t;
      Error
        (Printf.sprintf
           "protocol mismatch: server %s speaks version %d, this client \
            speaks %d"
           h.server h.protocol Protocol.version)
    | Ok _ ->
      close t;
      Error "server did not open with a hello frame"
    | Error msg ->
      close t;
      Error ("bad hello frame: " ^ msg))

let request ?(on_output = fun _ -> ()) t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  let line = Json.Lines.encode (Protocol.request_to_json ~id req) in
  match write_all t.fd line 0 (String.length line) with
  | exception Unix.Unix_error _ -> Error "connection lost while sending request"
  | () ->
    let rec loop () =
      match read_frame t with
      | Error msg -> Error msg
      | Ok (Protocol.Progress p) when p.id = id ->
        on_output p.out;
        loop ()
      | Ok (Protocol.Done_frame d) when d.id = id ->
        Ok { cells = d.cells; hits = d.hits; misses = d.misses;
             result = d.result }
      | Ok (Protocol.Error_frame e) when e.err_id = Some id || e.err_id = None
        -> Error (Protocol.error_to_string e)
      | Ok _ -> loop ()
    in
    loop ()
