module Json = Nvsc_util.Json

let version = 1
let server_name = "nvscav serve 1.0.0"

(* --- requests ----------------------------------------------------------- *)

type request =
  | Ping
  | Stats of { strip_time : bool }
  | Shutdown
  | Analyze of { app : string; scale : float; iterations : int }
  | Run of { app : string; scale : float; iterations : int; tech : string }
  | Replay of { path : string; kind : string; tech : string }
  | Sweep of {
      apps : string list option;
      kinds : string list option;
      techs : string list option;
      scale : float;
      iterations : int;
      overrides : string list;
      from_trace : string option;
    }

type error = {
  err_id : int option;
  code : string;
  field : string option;
  message : string;
}

type frame =
  | Hello of { protocol : int; server : string }
  | Progress of { id : int; seq : int; out : string }
  | Done_frame of {
      id : int;
      cells : int;
      hits : int;
      misses : int;
      result : Json.t option;
    }
  | Error_frame of error

(* --- encoding ----------------------------------------------------------- *)

let opt_field name to_json = function
  | None -> []
  | Some v -> [ (name, to_json v) ]

let str_list l = Json.List (List.map (fun s -> Json.Str s) l)

let request_to_json ~id req =
  let op name args =
    Json.Obj
      ([ ("nvsc", Json.Int version); ("id", Json.Int id);
         ("op", Json.Str name) ]
      @ if args = [] then [] else [ ("args", Json.Obj args) ])
  in
  match req with
  | Ping -> op "ping" []
  | Stats { strip_time } -> op "stats" [ ("strip_time", Json.Bool strip_time) ]
  | Shutdown -> op "shutdown" []
  | Analyze { app; scale; iterations } ->
    op "analyze"
      [ ("app", Json.Str app); ("scale", Json.float scale);
        ("iterations", Json.Int iterations) ]
  | Run { app; scale; iterations; tech } ->
    op "run"
      [ ("app", Json.Str app); ("scale", Json.float scale);
        ("iterations", Json.Int iterations); ("tech", Json.Str tech) ]
  | Replay { path; kind; tech } ->
    op "replay"
      [ ("path", Json.Str path); ("kind", Json.Str kind);
        ("tech", Json.Str tech) ]
  | Sweep { apps; kinds; techs; scale; iterations; overrides; from_trace } ->
    op "sweep"
      (opt_field "apps" str_list apps
      @ opt_field "kinds" str_list kinds
      @ opt_field "techs" str_list techs
      @ [ ("scale", Json.float scale); ("iterations", Json.Int iterations);
          ("overrides", str_list overrides) ]
      @ opt_field "from_trace" (fun s -> Json.Str s) from_trace)

let frame_to_json = function
  | Hello h ->
    Json.Obj
      [ ("frame", Json.Str "hello"); ("nvsc", Json.Int h.protocol);
        ("server", Json.Str h.server) ]
  | Progress p ->
    Json.Obj
      [ ("frame", Json.Str "progress"); ("id", Json.Int p.id);
        ("seq", Json.Int p.seq); ("out", Json.Str p.out) ]
  | Done_frame d ->
    Json.Obj
      ([ ("frame", Json.Str "done"); ("id", Json.Int d.id);
         ("cells", Json.Int d.cells); ("hits", Json.Int d.hits);
         ("misses", Json.Int d.misses) ]
      @ opt_field "result" Fun.id d.result)
  | Error_frame e ->
    Json.Obj
      ([ ("frame", Json.Str "error") ]
      @ opt_field "id" (fun i -> Json.Int i) e.err_id
      @ [ ("code", Json.Str e.code) ]
      @ opt_field "field" (fun f -> Json.Str f) e.field
      @ [ ("message", Json.Str e.message) ])

(* --- request decoding --------------------------------------------------- *)

(* Decoders return a structured [error] naming the offending field, so the
   server can answer a malformed frame without tearing the connection
   down.  The request id is extracted first (when present and
   well-formed) so even errors can be correlated by the client. *)

let ( let* ) = Result.bind

let find args name = Json.member_opt name (Json.Obj args)

let get_str ~err args name =
  match find args name with
  | Some (Json.Str s) -> Ok s
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be a string" name))
  | None ->
    Error (err ~field:name (Printf.sprintf "missing required field %S" name))

let get_str_default ~err args name default =
  match find args name with
  | None -> Ok default
  | Some (Json.Str s) -> Ok s
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be a string" name))

let get_float_default ~err args name default =
  match find args name with
  | None -> Ok default
  | Some (Json.Float f) -> Ok f
  | Some (Json.Int i) -> Ok (float_of_int i)
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be a number" name))

let get_int_default ~err args name default =
  match find args name with
  | None -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be an integer" name))

let get_bool_default ~err args name default =
  match find args name with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be a boolean" name))

let get_str_list_opt ~err args name =
  match find args name with
  | None | Some Json.Null -> Ok None
  | Some (Json.List items) ->
    let rec strings acc = function
      | [] -> Ok (Some (List.rev acc))
      | Json.Str s :: rest -> strings (s :: acc) rest
      | _ ->
        Error
          (err ~field:name
             (Printf.sprintf "field %S must be a list of strings" name))
    in
    strings [] items
  | Some _ ->
    Error
      (err ~field:name
         (Printf.sprintf "field %S must be a list of strings" name))

let get_str_opt ~err args name =
  match find args name with
  | None | Some Json.Null -> Ok None
  | Some (Json.Str s) -> Ok (Some s)
  | Some _ ->
    Error (err ~field:name (Printf.sprintf "field %S must be a string" name))

let decode_op ~err op args =
  match op with
  | "ping" -> Ok Ping
  | "stats" ->
    let* strip_time = get_bool_default ~err args "strip_time" false in
    Ok (Stats { strip_time })
  | "shutdown" -> Ok Shutdown
  | "analyze" ->
    let* app = get_str ~err args "app" in
    let* scale = get_float_default ~err args "scale" 1.0 in
    let* iterations = get_int_default ~err args "iterations" 10 in
    Ok (Analyze { app; scale; iterations })
  | "run" ->
    let* app = get_str ~err args "app" in
    let* scale = get_float_default ~err args "scale" 1.0 in
    let* iterations = get_int_default ~err args "iterations" 10 in
    let* tech = get_str_default ~err args "tech" "sttram" in
    Ok (Run { app; scale; iterations; tech })
  | "replay" ->
    let* path = get_str ~err args "path" in
    let* kind = get_str_default ~err args "kind" "run" in
    let* tech = get_str_default ~err args "tech" "sttram" in
    Ok (Replay { path; kind; tech })
  | "sweep" ->
    let* apps = get_str_list_opt ~err args "apps" in
    let* kinds = get_str_list_opt ~err args "kinds" in
    let* techs = get_str_list_opt ~err args "techs" in
    let* scale = get_float_default ~err args "scale" 1.0 in
    let* iterations = get_int_default ~err args "iterations" 10 in
    let* overrides =
      Result.map
        (Option.value ~default:[])
        (get_str_list_opt ~err args "overrides")
    in
    let* from_trace = get_str_opt ~err args "from_trace" in
    Ok (Sweep { apps; kinds; techs; scale; iterations; overrides; from_trace })
  | op -> Error (err ~field:"op" (Printf.sprintf "unknown operation %S" op))

let decode_request json =
  match json with
  | Json.Obj _ ->
    let id =
      match Json.member_opt "id" json with
      | Some (Json.Int i) -> Some i
      | _ -> None
    in
    let err ~field message =
      { err_id = id; code = "bad-request"; field = Some field; message }
    in
    let* () =
      match Json.member_opt "nvsc" json with
      | Some (Json.Int v) when v = version -> Ok ()
      | Some (Json.Int v) ->
        Error
          {
            err_id = id;
            code = "version-mismatch";
            field = Some "nvsc";
            message =
              Printf.sprintf
                "request speaks protocol version %d, this server speaks %d" v
                version;
          }
      | Some _ ->
        Error (err ~field:"nvsc" "field \"nvsc\" must be an integer")
      | None ->
        Error (err ~field:"nvsc" "missing protocol version field \"nvsc\"")
    in
    let* id =
      match id with
      | Some i -> Ok i
      | None -> Error (err ~field:"id" "missing or non-integer request id")
    in
    let err ~field message =
      { err_id = Some id; code = "bad-request"; field = Some field; message }
    in
    let* op =
      match Json.member_opt "op" json with
      | Some (Json.Str op) -> Ok op
      | Some _ -> Error (err ~field:"op" "field \"op\" must be a string")
      | None -> Error (err ~field:"op" "missing field \"op\"")
    in
    let args =
      match Json.member_opt "args" json with
      | Some (Json.Obj a) -> a
      | _ -> []
    in
    let* req = decode_op ~err op args in
    Ok (id, req)
  | _ ->
    Error
      {
        err_id = None;
        code = "bad-request";
        field = None;
        message = "request frame must be a JSON object";
      }

(* --- frame decoding (client side) --------------------------------------- *)

let frame_of_json json =
  let str name =
    match Json.member_opt name json with
    | Some (Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "frame is missing string field %S" name)
  in
  let int name =
    match Json.member_opt name json with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "frame is missing integer field %S" name)
  in
  let* kind = str "frame" in
  match kind with
  | "hello" ->
    let* protocol = int "nvsc" in
    let* server = str "server" in
    Ok (Hello { protocol; server })
  | "progress" ->
    let* id = int "id" in
    let* seq = int "seq" in
    let* out = str "out" in
    Ok (Progress { id; seq; out })
  | "done" ->
    let* id = int "id" in
    let* cells = int "cells" in
    let* hits = int "hits" in
    let* misses = int "misses" in
    Ok (Done_frame { id; cells; hits; misses;
                     result = Json.member_opt "result" json })
  | "error" ->
    let err_id =
      match Json.member_opt "id" json with
      | Some (Json.Int i) -> Some i
      | _ -> None
    in
    let* code = str "code" in
    let field =
      match Json.member_opt "field" json with
      | Some (Json.Str f) -> Some f
      | _ -> None
    in
    let* message = str "message" in
    Ok (Error_frame { err_id; code; field; message })
  | kind -> Error (Printf.sprintf "unknown frame kind %S" kind)

let pp_error fmt (e : error) =
  match e.field with
  | Some f -> Format.fprintf fmt "%s (field %s): %s" e.code f e.message
  | None -> Format.fprintf fmt "%s: %s" e.code e.message

let error_to_string e = Format.asprintf "%a" pp_error e
