(** The resident analysis daemon behind [nvscav serve].

    One process holds the expensive state — a warm
    {!Nvsc_sweep.Cache} of completed cells and a resident
    {!Nvsc_sweep.Pool} of worker domains — and serves analysis requests
    over a Unix-domain (and optionally loopback TCP) socket speaking
    {!Protocol}.  Each connection is handled by its own thread; each
    analysis request is decomposed into cells ({!Plan}), scheduled on
    the shared pool, and streamed back in report order as [progress]
    frames, so concurrent clients share both the pool and every cached
    cell: the second identical request is served entirely from cache.

    Lifecycle: {!request_stop} (from a signal handler, or the [shutdown]
    request) makes the acceptor and every connection wind down;
    {!await} drains in-flight work, joins the pool, closes the
    listeners and removes the socket file.  A client disconnecting
    mid-stream cancels only that request's still-queued cells — completed
    cells are already in the shared cache. *)

type config = {
  socket : string option;  (** Unix-domain socket path to listen on *)
  port : int option;  (** loopback TCP port to listen on *)
  jobs : int option;  (** worker domains (default: machine parallelism) *)
  cache_dir : string option;
      (** result-cache directory; [None] uses a private temporary
          directory removed on shutdown *)
  cache_max : int option;  (** cache entry bound (FIFO eviction) *)
  max_queue : int;  (** in-flight request admission bound *)
  max_frame : int;  (** request frame size bound, bytes *)
}

val default : config
(** Unix socket ["nvscav.sock"], no TCP, machine parallelism, a
    temporary cache, [max_queue = 64], 4 MiB frames. *)

type t

val start : config -> t
(** Bind the listeners, spawn the worker pool and the acceptor, and
    return immediately.  Raises [Invalid_argument] if the config gives
    neither a socket nor a port, [Failure] if the socket path is held by
    a live server or a non-socket file (a stale socket left by a dead
    server is reclaimed). *)

val endpoints : t -> string list
(** Human-readable listen addresses, for the startup notice. *)

val request_stop : t -> unit
(** Flag the server to stop.  Async-signal-safe: a single atomic store,
    so it can be called from a [Sys.Signal_handle]. *)

val await : t -> unit
(** Block until the server stops: the acceptor exits, live connections
    drain (in-flight requests complete), the pool is joined, listeners
    are closed, the socket file is unlinked and a temporary cache
    directory is removed.  Idempotent. *)

val stop : t -> unit
(** [request_stop] then [await]. *)
