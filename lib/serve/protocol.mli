(** The [nvscav serve] wire protocol, version {!version}.

    Newline-delimited JSON over a stream socket
    ({!Nvsc_util.Json.Lines}): each frame is one JSON object on one line.
    The server greets every connection with a [hello] frame carrying the
    protocol version; clients send request frames and receive zero or
    more [progress] frames (each a verbatim chunk of report text,
    streamed in cell order) followed by exactly one [done] or [error]
    frame with the matching request id.

    A request frame is
    [{"nvsc":1,"id":N,"op":OP,"args":{...}}] — the version field is
    checked on every request, and a malformed frame is answered with a
    structured error naming the offending field (the connection stays
    up). *)

module Json = Nvsc_util.Json

val version : int
(** Bump on any incompatible frame-shape change. *)

val server_name : string

(** {1 Requests} *)

type request =
  | Ping  (** liveness probe; answered with a [done] frame *)
  | Stats of { strip_time : bool }
      (** server + metrics snapshot as JSON; [strip_time] drops
          wall-clock ([_ns]) readings for reproducible output *)
  | Shutdown  (** acknowledge, then drain and stop the server *)
  | Analyze of { app : string; scale : float; iterations : int }
  | Run of { app : string; scale : float; iterations : int; tech : string }
  | Replay of { path : string; kind : string; tech : string }
      (** [path] is resolved on the {e server}'s filesystem *)
  | Sweep of {
      apps : string list option;
      kinds : string list option;
      techs : string list option;
      scale : float;
      iterations : int;
      overrides : string list;  (** raw [key=value,...] specs *)
      from_trace : string option;
    }

type error = {
  err_id : int option;  (** echoed request id, when one could be parsed *)
  code : string;
      (** [bad-frame], [bad-request], [version-mismatch], [overloaded],
          [shutting-down] or [failed] *)
  field : string option;  (** offending request field, when known *)
  message : string;
}

type frame =
  | Hello of { protocol : int; server : string }
  | Progress of { id : int; seq : int; out : string }
      (** one report section; concatenated [out] chunks are
          byte-identical to the corresponding local subcommand's
          stdout *)
  | Done_frame of {
      id : int;
      cells : int;
      hits : int;
      misses : int;
      result : Json.t option;  (** payload of [ping]/[stats] replies *)
    }
  | Error_frame of error

(** {1 Codecs} *)

val request_to_json : id:int -> request -> Json.t

val decode_request : Json.t -> (int * request, error) result
(** Returns the request id and the request, or a structured error naming
    the offending field.  Version mismatches decode as
    [code = "version-mismatch"]. *)

val frame_to_json : frame -> Json.t

val frame_of_json : Json.t -> (frame, string) result

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
