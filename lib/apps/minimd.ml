(** MiniMD-like mini-app: short-range molecular dynamics (Lennard-Jones,
    velocity Verlet).

    A second beyond-the-paper workload.  Its signature structure is the
    neighbour list: rebuilt every [rebuild_interval] time steps and
    exclusively read in between — *temporally* NVRAM-friendly data of
    exactly the kind the paper's §VII-C says a dynamic placement policy
    can exploit (high read/write ratio most iterations, write bursts in
    rebuild iterations).  The cell-binning scratch is a short-term heap
    object that lives only inside rebuild steps. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "minimd"
let description = "Molecular dynamics (Lennard-Jones)"
let input_description = "4000 atoms, neighbor rebuild every 5 steps (scaled)"
let paper_footprint_mb = 0. (* not in the paper *)

let base_atoms = 4000
let neighbors_per_atom = 24
let rebuild_interval = 5

type state = {
  atoms : int;
  pos : Farray.t;  (** 3 coordinates per atom *)
  vel : Farray.t;
  force : Farray.t;
  neighbor_list : Farray.t;  (** read-only between rebuilds *)
  neighbor_count : Farray.t;
  lj_table : Farray.t;  (** interpolation table: read-only *)
  diagnostics : Farray.t;
}

let setup ctx ~scale =
  let atoms = W.scaled scale base_atoms in
  let g name sz = Farray.global ctx ~name sz in
  let s =
    {
      atoms;
      pos = g "pos" (3 * atoms);
      vel = g "vel" (3 * atoms);
      force = g "force" (3 * atoms);
      neighbor_list = g "neighbor_list" (neighbors_per_atom * atoms);
      neighbor_count = g "neighbor_count" atoms;
      lj_table = g "lj_table" (W.scaled scale 4096);
      diagnostics = g "diagnostics" (W.scaled scale 1024);
    }
  in
  Farray.init ctx s.pos (fun i -> float_of_int (i mod 97) /. 10.);
  Farray.fill ctx s.vel 0.;
  Farray.fill ctx s.force 0.;
  Farray.fill ctx s.neighbor_list 0.;
  Farray.fill ctx s.neighbor_count 0.;
  Farray.init ctx s.lj_table (fun i -> 1.0 /. float_of_int (i + 1));
  Farray.fill ctx s.diagnostics 0.;
  (* the checkpoint set: positions and velocities are the restart state;
     forces and neighbour lists are recomputed *)
  Farray.persist ctx s.pos;
  Farray.persist ctx s.vel;
  s

(* Rebuild the neighbour list through a cell-binning scratch buffer (the
   short-term heap object). *)
let rebuild_neighbors ctx s =
  let bins = Farray.heap ctx ~site:"cell_bins" s.atoms in
  for a = 0 to s.atoms - 1 do
    Farray.set bins a (Farray.get s.pos (3 * a))
  done;
  for a = 0 to s.atoms - 1 do
    Farray.set s.neighbor_count a (float_of_int neighbors_per_atom);
    for k = 0 to neighbors_per_atom - 1 do
      let nb = (a + (k * 7) + 1) mod s.atoms in
      ignore (Farray.get bins (nb mod Farray.length bins));
      Farray.set s.neighbor_list ((a * neighbors_per_atom) + k)
        (float_of_int nb)
    done
  done;
  Farray.free ctx bins

(* Lennard-Jones force kernel: the atom's position and accumulators live on
   the frame; neighbour positions are gathered from global memory. *)
let compute_forces ctx s =
  Ctx.call ctx ~routine:"force_lj" ~frame_words:16 (fun frame ->
      let my = Farray.stack ctx frame 3 in
      let acc = Farray.stack ctx frame 3 in
      for a = 0 to s.atoms - 1 do
        for d = 0 to 2 do
          Farray.set my d (Farray.get s.pos ((3 * a) + d));
          Farray.set acc d 0.
        done;
        let nn = int_of_float (Farray.get s.neighbor_count a) in
        for k = 0 to Stdlib.min nn 7 - 1 do
          let nb =
            int_of_float (Farray.get s.neighbor_list ((a * neighbors_per_atom) + k))
          in
          let c = Farray.get s.lj_table ((nb * 13) mod Farray.length s.lj_table) in
          for d = 0 to 2 do
            let delta = Farray.get my d -. Farray.get s.pos ((3 * nb) + d) in
            W.rmw acc d (fun v -> v +. (c *. delta))
          done;
          Ctx.flops ctx 9
        done;
        for d = 0 to 2 do
          Farray.set s.force ((3 * a) + d) (Farray.get acc d)
        done
      done)

let integrate ctx s =
  let n = 3 * s.atoms in
  for i = 0 to n - 1 do
    let v = Farray.get s.vel i +. (0.005 *. Farray.get s.force i) in
    Farray.set s.vel i v;
    W.rmw s.pos i (fun x -> x +. (0.005 *. v));
    Ctx.flops ctx 4
  done

let iterate ctx s ~iter =
  if (iter - 1) mod rebuild_interval = 0 then rebuild_neighbors ctx s;
  compute_forces ctx s;
  integrate ctx s;
  W.rmw s.diagnostics 0 (fun v -> v +. 1.);
  W.read_every s.diagnostics ~stride:64;
  (* failure-atomic checkpoint of the particle state *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.pos;
      Farray.flush_all ctx s.vel;
      Ctx.fence ctx)

let post ctx s = ignore (W.dot ctx s.vel s.vel)

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "Minimd.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
