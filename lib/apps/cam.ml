(** CAM mini-app: community atmosphere model (column physics + spectral
    dynamics).

    The paper singles CAM out for its unusually high stack read/write
    ratio (20.39 steady state, 11.46 in the first iteration): its physics
    routines derive interpolation coefficients and computation-dependent
    constants into locals at routine entry and then read them throughout
    the column computation.  That structure is modelled directly: a table
    of physics routines, each staging [coef_words] of coefficients on its
    frame and re-reading them [read_passes] times per call.  The routine
    table also yields figure 2's distribution of per-frame ratios (a few
    routines above 50, many above 10).

    Global population: read-only Legendre-transform constants,
    cosine/sine-of-longitude tables, a field-name hash table and index
    arrays (≈15 % of the footprint, §VII-B), history/restart buffers
    untouched by the main loop (≈11 %), and bulk spectral state swept at
    low reference rates. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "cam"
let description = "Atmosphere model"
let input_description = "Default test case (scaled)"
let paper_footprint_mb = 608.

let base_ncol = 96
let plev = 24

(* The physics-routine table: name, coefficient words staged per call,
   read passes over them (≈ the routine's stack read/write ratio). *)
(* Calibrated against figure 2: one routine above ratio 50 carrying ~9 % of
   stack references, five routines above 10 carrying ~69 %, the rest just
   below 10 — combining to the Table V overall stack ratio of ~20. *)
let routines =
  [|
    ("radcswmx", 6, 66);
    ("radabs", 18, 36);
    ("cldwat", 18, 36);
    ("zm_convr", 18, 36);
    ("vertical_diffusion", 18, 36);
    ("gw_drag", 18, 10);
    ("phys_update", 18, 10);
    ("tracer_advection", 18, 10);
    ("spectral_pack", 18, 10);
    ("dyn_filter", 18, 10);
    ("qneg_check", 18, 10);
    ("diag_accum", 18, 10);
  |]

type state = {
  ncol : int;
  field : int;
  (* hot prognostic fields *)
  temp : Farray.t;
  u : Farray.t;
  v : Farray.t;
  q : Farray.t;
  ps : Farray.t;
  phys_buf : Farray.t;
  (* Fortran common-block views: [buf_radiation] and [buf_moist] alias
     slabs of [phys_buf] under different names, as different program units
     re-partition a common block (§III-C); the registry merges them into
     one union object *)
  buf_radiation : Farray.t;
  buf_moist : Farray.t;
  (* read-only structures (§VII-B) *)
  leg_coef : Farray.t;
  lon_tables : Farray.t;
  fieldname_hash : Farray.t;
  soil_conductivity : Farray.t;
  (* read/write ratio > 50 global group (small in CAM) *)
  ozone_mix : Farray.t;
  (* bulk spectral state, swept sparsely *)
  spec_coef : Farray.t;
  div_vort : Farray.t;
  phys_state : Farray.t;
  (* touched in a single iteration (fig. 7's unevenly-used data) *)
  monthly_out : Farray.t;
  (* untouched by the main loop *)
  history_buf : Farray.t;
  restart_buf : Farray.t;
}

let setup ctx ~scale =
  let ncol = W.scaled scale base_ncol in
  let field = ncol * plev in
  let g name n = Farray.global ctx ~name n in
  let phys_buf = g "phys_buf" (3 * field) in
  let s =
    {
      ncol;
      field;
      temp = g "temp" field;
      u = g "u" field;
      v = g "v" field;
      q = g "q" field;
      ps = g "ps" ncol;
      phys_buf;
      buf_radiation =
        Farray.global_overlay ctx ~name:"buf_radiation" ~over:phys_buf
          ~offset_words:field field;
      buf_moist =
        Farray.global_overlay ctx ~name:"buf_moist" ~over:phys_buf
          ~offset_words:(2 * field) field;
      leg_coef = g "leg_coef" (W.scaled scale 35_000);
      lon_tables = g "lon_tables" (W.scaled scale 3072);
      fieldname_hash = g "fieldname_hash" (W.scaled scale 2048);
      soil_conductivity = g "soil_conductivity" (W.scaled scale 8192);
      ozone_mix = g "ozone_mix" (W.scaled scale 2048);
      spec_coef = g "spec_coef" (W.scaled scale 90_000);
      div_vort = g "div_vort" (W.scaled scale 60_000);
      phys_state = g "phys_state" (W.scaled scale 25_000);
      monthly_out = g "monthly_out" (W.scaled scale 6_144);
      history_buf = g "history_buf" (W.scaled scale 15_360);
      restart_buf = g "restart_buf" (W.scaled scale 12_288);
    }
  in
  Farray.init ctx s.temp (fun i -> 250. +. float_of_int (i mod 60));
  Farray.init ctx s.u (fun i -> sin (float_of_int i *. 0.01));
  Farray.init ctx s.v (fun i -> cos (float_of_int i *. 0.01));
  Farray.fill ctx s.q 1e-3;
  Farray.fill ctx s.ps 1013.25;
  Farray.fill ctx s.phys_buf 0.;
  Farray.init ctx s.leg_coef (fun i -> float_of_int (i mod 97) /. 97.);
  Farray.init ctx s.lon_tables (fun i -> cos (float_of_int i));
  Farray.init ctx s.fieldname_hash (fun i -> float_of_int (i * 31 mod 1009));
  Farray.fill ctx s.soil_conductivity 0.8;
  Farray.fill ctx s.ozone_mix 1e-6;
  Farray.fill ctx s.spec_coef 0.;
  Farray.fill ctx s.div_vort 0.;
  Farray.fill ctx s.phys_state 0.;
  (* the checkpoint set: the prognostic temperature field and surface
     pressure are what a CAM restart carries forward *)
  Farray.persist ctx s.temp;
  Farray.persist ctx s.ps;
  s

(* One physics routine applied to one column: stage coefficients on the
   frame (plus an extra spin-up pass in the first iteration), then run
   [read_passes] sweeps over them while consuming the column's levels. *)
let physics_routine ctx s ~routine ~coef_words ~read_passes ~col ~iter =
  Ctx.call ctx ~routine ~frame_words:coef_words (fun frame ->
      let coef = Farray.stack ctx frame coef_words in
      for i = 0 to coef_words - 1 do
        Farray.set coef i (float_of_int (i + col) *. 1e-3)
      done;
      if iter = 1 then
        (* first-call initialisation rewrites the locals once more,
           depressing the first iteration's read/write ratio (11.46 vs
           20.39 in the paper's Table V) *)
        for i = 0 to coef_words - 1 do
          Farray.set coef i (float_of_int i *. 2e-3)
        done;
      let acc = ref 0. in
      (* consume the column's profile *)
      for lev = 0 to plev - 1 do
        acc := !acc +. Farray.get s.temp ((col * plev) + lev)
      done;
      for _pass = 1 to read_passes do
        for i = 0 to coef_words - 1 do
          acc := !acc +. Farray.get coef i
        done;
        Ctx.flops ctx coef_words
      done;
      (* a handful of global outputs per call *)
      for lev = 0 to (plev / 4) - 1 do
        Farray.set s.phys_buf ((col * plev) + lev) !acc
      done;
      ignore (Farray.get s.fieldname_hash (col mod Farray.length s.fieldname_hash));
      ignore
        (Farray.get s.soil_conductivity (col mod Farray.length s.soil_conductivity)))

let iterate ctx s ~iter =
  (* column physics: every routine over every column *)
  for col = 0 to s.ncol - 1 do
    Array.iter
      (fun (routine, coef_words, read_passes) ->
        physics_routine ctx s ~routine ~coef_words ~read_passes ~col ~iter)
      routines
  done;
  (* spectral dynamics: Legendre constants are read-only but consulted in
     bulk every step *)
  W.read_every s.leg_coef ~stride:2;
  W.read_every s.lon_tables ~stride:1;
  (* prognostic update (heating rates live in the first field-slab of the
     physics buffer) *)
  for i = 0 to s.field - 1 do
    Farray.set s.temp i
      (Farray.get s.temp i +. (0.002 *. Farray.get s.phys_buf i));
    Ctx.flops ctx 2
  done;
  W.saxpy ctx ~alpha:0.001 ~x:s.u ~y:s.v;
  for col = 0 to s.ncol - 1 do
    W.rmw s.ps col (fun p -> p +. 0.01)
  done;
  (* radiation writes its common-block slab; the moist process reads its
     own view of the same block *)
  let j = ref 0 in
  while !j < s.field do
    Farray.set s.buf_radiation !j (float_of_int !j);
    ignore (Farray.get s.buf_moist !j);
    j := !j + 4
  done;
  (* bulk spectral state: swept at low reference rates and partially
     rewritten by the semi-implicit update each step *)
  W.read_every s.spec_coef ~stride:8;
  W.read_every s.div_vort ~stride:8;
  let rewrite a ~stride =
    let n = Farray.length a in
    let j = ref 0 in
    while !j < n do
      Farray.set a !j (float_of_int !j *. 1e-6);
      j := !j + stride
    done
  in
  rewrite s.spec_coef ~stride:16;
  rewrite s.div_vort ~stride:16;
  let n = Farray.length s.phys_state in
  let j = ref 0 in
  while !j < n do
    W.rmw s.phys_state !j (fun v -> v *. 0.999);
    j := !j + 8
  done;
  (* the monthly-mean output fires once mid-run: touched in one iteration *)
  if iter = 5 then begin
    let n = Farray.length s.monthly_out in
    for i = 0 to n - 1 do
      Farray.set s.monthly_out i (Farray.get s.temp (i mod s.field))
    done
  end;
  (* the > 50-ratio global: refreshed once, consulted many times *)
  Farray.set s.ozone_mix (iter mod Farray.length s.ozone_mix) 1e-6;
  for _pass = 1 to 4 do
    W.read_every s.ozone_mix ~stride:16
  done;
  (* failure-atomic checkpoint of the restart state *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.temp;
      Farray.flush_all ctx s.ps;
      Ctx.fence ctx)

let post ctx s =
  for i = 0 to Farray.length s.history_buf - 1 do
    Farray.set s.history_buf i (Farray.get s.temp (i mod s.field))
  done;
  for i = 0 to Farray.length s.restart_buf - 1 do
    Farray.set s.restart_buf i (Farray.get s.q (i mod s.field))
  done;
  ignore (W.dot ctx s.u s.v)

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "Cam.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
