(** S3D mini-app: direct numerical simulation of turbulent combustion
    (compressible Navier-Stokes with detailed chemistry).

    Structure from the paper: chemistry look-up tables holding linear
    interpolation coefficients are the read-only signature (§VII-B); the
    right-hand-side evaluation stages each point's stencil into the
    routine's frame and re-reads it across species (stack ratio ≈6, stack
    share ≈63 %); Runge-Kutta stage updates sweep the bulk solution
    arrays; a small I/O buffer is untouched by the main loop; per-iteration
    access patterns are essentially invariant (figure 10: reference rates
    unchanged across iterations). *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "s3d"
let description = "Turbulence combustion simulation"
let input_description = "Grid 16x16x16 (scaled from 60x60x60)"
let paper_footprint_mb = 512.

let base_n = 16
let nvar = 14 (* 9 species + momentum + energy *)

type state = {
  npts : int;
  q : Farray.t;  (** conserved variables, [nvar] per point *)
  qhalf : Farray.t;  (** Runge-Kutta stage buffer *)
  rhs : Farray.t;
  chem_tables : Farray.t;  (** read-only interpolation coefficients *)
  transport_coef : Farray.t;  (** read-only *)
  grid_metric : Farray.t;  (** read-only *)
  io_buf : Farray.t;  (** untouched by the main loop *)
}

let setup ctx ~scale =
  let n = W.scaled (scale ** (1. /. 3.)) base_n in
  let npts = n * n * n in
  let g name sz = Farray.global ctx ~name sz in
  let s =
    {
      npts;
      q = g "q" (nvar * npts);
      qhalf = g "qhalf" (nvar * npts);
      rhs = g "rhs" (nvar * npts);
      chem_tables = g "chem_tables" (W.scaled scale 12_288);
      transport_coef = g "transport_coef" (W.scaled scale 6_144);
      grid_metric = g "grid_metric" (W.scaled scale 4_096);
      io_buf = g "io_buf" (W.scaled scale 3_840);
    }
  in
  Farray.init ctx s.q (fun i -> 1.0 +. (float_of_int (i mod 13) *. 0.01));
  Farray.fill ctx s.qhalf 0.;
  Farray.fill ctx s.rhs 0.;
  Farray.init ctx s.chem_tables (fun i -> float_of_int (i mod 101) /. 101.);
  Farray.fill ctx s.transport_coef 0.3;
  Farray.fill ctx s.grid_metric 1.0;
  (* the checkpoint set: the conserved-variable solution is the restart
     state; the stage arrays are recomputed *)
  Farray.persist ctx s.q;
  s

(* Right-hand side at one grid point: stage the 7-point stencil of the
   energy variable into the frame, look up chemistry coefficients, and
   evaluate reaction rates by repeated passes over the staged data. *)
let rhs_point ctx s ~p =
  Ctx.call ctx ~routine:"rhs_chem" ~frame_words:24 (fun frame ->
      let sten = Farray.stack ctx frame 7 in
      let rates = Farray.stack ctx frame 7 in
      let flux = Farray.stack ctx frame 3 in
      let stride = s.npts / 16 in
      (* stencil gather (wrapped indices keep the pattern regular) *)
      let idx k =
        (((p + (k * stride)) mod s.npts) * nvar) mod (nvar * s.npts)
      in
      for k = 0 to 6 do
        Farray.set sten k (Farray.get s.q (idx k))
      done;
      (* chemistry interpolation: table reads are read-only traffic *)
      let tbl = p * 3 mod Farray.length s.chem_tables in
      let c0 = Farray.get s.chem_tables tbl in
      let c1 = Farray.get s.chem_tables ((tbl + 1) mod Farray.length s.chem_tables) in
      let c2 = Farray.get s.chem_tables ((tbl + 2) mod Farray.length s.chem_tables) in
      let mu = Farray.get s.transport_coef (p mod Farray.length s.transport_coef) in
      let jac = Farray.get s.grid_metric (p mod Farray.length s.grid_metric) in
      (* rate evaluation: several read passes over the staged stencil *)
      let acc = ref (c0 +. c1 +. c2) in
      for _pass = 1 to 13 do
        for k = 0 to 6 do
          acc := !acc +. Farray.get sten k
        done;
        Ctx.flops ctx 14
      done;
      (* diffusive flux components *)
      for k = 0 to 2 do
        Farray.set flux k (!acc *. mu *. float_of_int (k + 1));
        acc := !acc +. Farray.get flux k
      done;
      Ctx.flops ctx 6;
      for k = 0 to 6 do
        Farray.set rates k (!acc *. mu *. jac);
        ignore (Farray.get rates k);
        ignore (Farray.get rates ((k + 1) mod 7))
      done;
      (* scatter: a few species' right-hand sides *)
      let out = p * nvar in
      for v = 0 to 3 do
        Farray.set s.rhs (out + v) (Farray.peek rates (v mod 7))
      done)

let iterate ctx s ~iter =
  ignore iter;
  for p = 0 to s.npts - 1 do
    rhs_point ctx s ~p
  done;
  (* Runge-Kutta stage updates: bulk sweeps of the solution arrays *)
  let nv = nvar * s.npts in
  for i = 0 to nv - 1 do
    Farray.set s.qhalf i (Farray.get s.q i +. (1e-3 *. Farray.get s.rhs i));
    Ctx.flops ctx 2
  done;
  let j = ref 0 in
  while !j < nv do
    W.rmw s.q !j (fun v -> v +. (1e-3 *. Farray.peek s.qhalf !j));
    j := !j + 2
  done;
  (* failure-atomic checkpoint of the solution *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.q;
      Ctx.fence ctx)

let post _ctx s =
  for i = 0 to Farray.length s.io_buf - 1 do
    Farray.set s.io_buf i (Farray.get s.q (i mod (nvar * s.npts)))
  done

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "S3d.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
