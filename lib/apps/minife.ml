(** MiniFE-like mini-app: implicit finite elements, sparse CG solve.

    Not one of the paper's four applications — included to test the
    paper's closing observation that its data-structure classes "apply
    broadly to many applications beyond our initial set".  The dominant
    structures are the CSR matrix arrays ([row_ptr], [col_idx], [values]):
    assembled once, then exclusively read by every SpMV — by footprint the
    strongest NVRAM candidate among all the mini-apps, far beyond the
    paper's 7–15 % read-only fractions.  The CG vectors are small and
    read/write balanced; the SpMV kernel stages each row on its frame. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "minife"
let description = "Implicit finite elements (sparse CG)"
let input_description = "2-D 5-point Laplacian, 48x48 grid (scaled)"
let paper_footprint_mb = 0. (* not in the paper *)

let base_n = 48
let max_row_nnz = 5

type state = {
  rows : int;
  (* CSR structure: read-only after assembly *)
  row_ptr : Farray.t;
  col_idx : Farray.t;
  values : Farray.t;
  (* CG vectors *)
  x : Farray.t;
  b : Farray.t;
  r : Farray.t;
  p : Farray.t;
  ap : Farray.t;
  (* untouched in the main loop *)
  assembly_scratch : Farray.t;
}

(* 5-point stencil neighbours of row i on an n x n grid. *)
let neighbours n i =
  let row = i / n and col = i mod n in
  List.filter
    (fun (r, c) -> r >= 0 && r < n && c >= 0 && c < n)
    [ (row, col); (row - 1, col); (row + 1, col); (row, col - 1); (row, col + 1) ]
  |> List.map (fun (r, c) -> (r * n) + c)

let setup ctx ~scale =
  let n = W.scaled (sqrt scale) base_n in
  let rows = n * n in
  let nnz_cap = rows * max_row_nnz in
  let g name sz = Farray.global ctx ~name sz in
  let s =
    {
      rows;
      row_ptr = g "row_ptr" (rows + 1);
      col_idx = g "col_idx" nnz_cap;
      values = g "values" nnz_cap;
      x = g "x" rows;
      b = g "b" rows;
      r = g "r" rows;
      p = g "p" rows;
      ap = g "ap" rows;
      assembly_scratch = g "assembly_scratch" (W.scaled scale 8192);
    }
  in
  (* assembly: the only writes the CSR arrays ever see *)
  Farray.fill ctx s.assembly_scratch 0.;
  let nnz = ref 0 in
  for i = 0 to rows - 1 do
    Farray.set s.row_ptr i (float_of_int !nnz);
    List.iter
      (fun j ->
        Farray.set s.col_idx !nnz (float_of_int j);
        Farray.set s.values !nnz (if j = i then 4.0 else -1.0);
        incr nnz)
      (neighbours n i)
  done;
  Farray.set s.row_ptr rows (float_of_int !nnz);
  Farray.init ctx s.b (fun i -> sin (float_of_int i *. 0.05));
  Farray.fill ctx s.x 0.;
  Farray.copy_into ctx ~src:s.b ~dst:s.r;
  Farray.copy_into ctx ~src:s.b ~dst:s.p;
  Farray.fill ctx s.ap 0.;
  (* the checkpoint set: solution and residual restart the CG iteration;
     the Krylov direction vectors are rebuilt *)
  Farray.persist ctx s.x;
  Farray.persist ctx s.r;
  s

(* SpMV with the row staged on the routine's frame: the CSR arrays are
   read-only traffic, the staging gives the kernel its stack signature. *)
let spmv ctx s ~(src : Farray.t) ~(dst : Farray.t) =
  Ctx.call ctx ~routine:"spmv_row" ~frame_words:(2 * max_row_nnz)
    (fun frame ->
      let vals = Farray.stack ctx frame max_row_nnz in
      let gathered = Farray.stack ctx frame max_row_nnz in
      for i = 0 to s.rows - 1 do
        let lo = int_of_float (Farray.get s.row_ptr i) in
        let hi = int_of_float (Farray.get s.row_ptr (i + 1)) in
        let len = hi - lo in
        for k = 0 to len - 1 do
          Farray.set vals k (Farray.get s.values (lo + k));
          let j = int_of_float (Farray.get s.col_idx (lo + k)) in
          Farray.set gathered k (Farray.get src j)
        done;
        let acc = ref 0. in
        for _pass = 1 to 2 do
          for k = 0 to len - 1 do
            acc := !acc +. (Farray.get vals k *. Farray.get gathered k)
          done
        done;
        Ctx.flops ctx (4 * len);
        Farray.set dst i (!acc /. 2.)
      done)

let iterate ctx s ~iter =
  ignore iter;
  spmv ctx s ~src:s.p ~dst:s.ap;
  let pap = W.dot ctx s.p s.ap in
  let rr = W.dot ctx s.r s.r in
  let alpha = if Float.abs pap > 1e-30 then rr /. pap else 0. in
  W.saxpy ctx ~alpha ~x:s.p ~y:s.x;
  W.saxpy ctx ~alpha:(-.alpha) ~x:s.ap ~y:s.r;
  let rr' = W.dot ctx s.r s.r in
  let beta = if Float.abs rr > 1e-30 then rr' /. rr else 0. in
  (* p <- r + beta p *)
  for i = 0 to s.rows - 1 do
    Farray.set s.p i (Farray.get s.r i +. (beta *. Farray.get s.p i))
  done;
  Ctx.flops ctx (2 * s.rows);
  (* failure-atomic checkpoint of the CG restart state *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.x;
      Farray.flush_all ctx s.r;
      Ctx.fence ctx)

let post ctx s = ignore (W.dot ctx s.x s.b)

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "Minife.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
