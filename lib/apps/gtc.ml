(** GTC mini-app: gyrokinetic toroidal particle-in-cell turbulence code.

    The paper finds GTC to be the least NVRAM-friendly of the four
    applications: its footprint is dominated by particle arrays that are
    both read and written every iteration (gather-push-scatter), its stack
    share of references is the lowest (44.3 %) with the lowest stack
    read/write ratio (3.48), its memory objects are touched evenly across
    every computation step (no figure-7 curve), and its only read-only
    data is a modest set of radial interpolation arrays.  Short-term heap
    scratch (particle-shift communication buffers) appears and dies inside
    each iteration. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "gtc"
let description = "Turbulence plasma simulation"
let input_description =
  "poloidal grid=392, toroidal grids=2, 7 particles/cell (scaled)"
let paper_footprint_mb = 218.

let base_npart = 8192
let base_grid = 8192
let particle_attrs = 6

type state = {
  npart : int;
  grid : int;
  zion : Farray.t;  (** particle phase space, 6 attributes per particle *)
  zion0 : Farray.t;  (** previous-step copy for the RK push *)
  chargeden : Farray.t;  (** scatter target, read-modify-write heavy *)
  efield : Farray.t;  (** 3 components per grid point *)
  radial_interp : Farray.t;  (** read-only auxiliary (paper §VII-B) *)
  diagnostics : Farray.t;
}

let setup ctx ~scale =
  let npart = W.scaled scale base_npart in
  let grid = W.scaled scale base_grid in
  let g name n = Farray.global ctx ~name n in
  let s =
    {
      npart;
      grid;
      zion = g "zion" (particle_attrs * npart);
      zion0 = g "zion0" (particle_attrs * npart);
      chargeden = g "chargeden" grid;
      efield = g "efield" (3 * grid);
      radial_interp = g "radial_interp" (W.scaled scale 4096);
      diagnostics = g "diagnostics" (W.scaled scale 2048);
    }
  in
  Farray.init ctx s.zion (fun i -> float_of_int (i mod 1000) /. 1000.);
  Farray.fill ctx s.zion0 0.;
  Farray.fill ctx s.chargeden 0.;
  Farray.fill ctx s.efield 0.;
  Farray.init ctx s.radial_interp (fun i -> float_of_int i *. 1e-4);
  Farray.fill ctx s.diagnostics 0.;
  (* the checkpoint set: particle phase space and the diagnostics are what
     a GTC restart file holds; the scatter/field arrays are recomputed *)
  Farray.persist ctx s.zion;
  Farray.persist ctx s.diagnostics;
  s

(* Gather-push-scatter for one particle: field gather through the radial
   interpolation arrays, a small stack temporary for the equations of
   motion (read ~3.5x per write, the paper's GTC stack signature), then
   the charge scatter's read-modify-write into the grid. *)
let push_particle ctx s ~p =
  Ctx.call ctx ~routine:"pushe" ~frame_words:8 (fun frame ->
      let tmp = Farray.stack ctx frame 6 in
      let zoff = p * particle_attrs in
      (* particles are kept sorted by cell (as GTC's radial binning does),
         so consecutive pushes walk the grid nearly sequentially *)
      let cell = p * s.grid / s.npart mod s.grid in
      (* gather: field components and interpolation weights *)
      let e0 = Farray.get s.efield (3 * cell) in
      let e1 = Farray.get s.efield ((3 * cell) + 1) in
      let w0 = Farray.get s.radial_interp (cell mod Farray.length s.radial_interp) in
      let w1 =
        Farray.get s.radial_interp ((cell + 1) mod Farray.length s.radial_interp)
      in
      (* stage the particle's coordinates *)
      for a = 0 to particle_attrs - 1 do
        Farray.set tmp a (Farray.get s.zion (zoff + a))
      done;
      (* equations of motion: several read passes over the temporary *)
      let acc = ref ((e0 *. w0) +. (e1 *. w1)) in
      for _pass = 1 to 3 do
        for a = 0 to particle_attrs - 1 do
          acc := !acc +. Farray.get tmp a
        done;
        Ctx.flops ctx (2 * particle_attrs)
      done;
      ignore (Farray.get tmp 0);
      ignore (Farray.get tmp 1);
      ignore (Farray.get tmp 2);
      (* push: write the particle back *)
      for a = 0 to particle_attrs - 1 do
        Farray.set s.zion (zoff + a) (Farray.peek tmp a +. (1e-3 *. !acc))
      done;
      (* scatter: accumulate charge into two grid cells *)
      W.rmw s.chargeden cell (fun v -> v +. w0);
      W.rmw s.chargeden ((cell + 1) mod s.grid) (fun v -> v +. w1))

(* Field solve: one damped-Jacobi sweep of the gyrokinetic Poisson
   equation with a stack-resident potential temporary. *)
let poisson ctx s =
  Ctx.call ctx ~routine:"poisson" ~frame_words:(s.grid + 8) (fun frame ->
      let phi = Farray.stack ctx frame s.grid in
      for i = 0 to s.grid - 1 do
        Farray.set phi i (Farray.get s.chargeden i)
      done;
      for _sweep = 1 to 2 do
        for i = 0 to s.grid - 1 do
          let left = Farray.get phi (if i = 0 then s.grid - 1 else i - 1) in
          let here = Farray.get phi i in
          Ctx.flops ctx 4;
          Farray.set s.efield (3 * i mod (3 * s.grid)) (here -. left)
        done
      done;
      (* gradient: two more component writes per point *)
      for i = 0 to s.grid - 1 do
        let here = Farray.get phi i in
        Farray.set s.efield ((3 * i mod (3 * s.grid)) + 1) (0.5 *. here);
        Farray.set s.efield ((3 * i mod (3 * s.grid)) + 2) (-0.5 *. here);
        Ctx.flops ctx 2
      done)

let iterate ctx s ~iter =
  ignore iter;
  (* save the previous phase space for the second-order push *)
  Farray.copy_into ctx ~src:s.zion ~dst:s.zion0;
  for p = 0 to s.npart - 1 do
    push_particle ctx s ~p
  done;
  poisson ctx s;
  (* short-term heap: the particle-shift communication buffer lives and
     dies inside the iteration (same allocation site every time) *)
  let shift = Farray.heap ctx ~site:"shift_buf" (s.npart / 2) in
  Farray.fill ctx shift 0.;
  ignore (Farray.sum ctx shift);
  Farray.free ctx shift;
  (* light diagnostics *)
  W.rmw s.diagnostics 0 (fun v -> v +. 1.);
  W.read_every s.diagnostics ~stride:32;
  (* failure-atomic checkpoint of the restart state *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.zion;
      Farray.flush_all ctx s.diagnostics;
      Ctx.fence ctx)

let post ctx s =
  ignore (Farray.sum ctx s.chargeden);
  for i = 0 to Farray.length s.diagnostics - 1 do
    W.rmw s.diagnostics i (fun v -> v /. 2.)
  done

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "Gtc.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
