(** Nek5000 mini-app: unsteady incompressible flow on a 2-D eddy problem
    (spectral-element method).

    Memory-object population modelled on the paper's findings (§VII):
    - read-only auxiliary structures: inverse mass matrix [binvm1],
      element-lagged mass matrices [bm1lag] (≈7 % of the footprint);
    - computing-dependent read-only data: boundary conditions [cbc]
      (the paper counts 70 condition types), geometry [xm1]/[ym1],
      gather-scatter maps;
    - data with read/write ratio > 50: preconditioner diagonals, updated
      sparsely each step but consulted throughout the CG solves (≈4.7 %);
    - ≈24 % of the footprint used only outside the main loop (setup
      workspace, MPI/post aggregation buffers);
    - a stack-heavy element kernel ([ax_e]) executed by every CG
      iteration, giving >70 % stack references at a read/write ratio ≈6;
    - per-iteration reference-rate diversity: the number of CG sweeps
      varies with the time step (CFL-like), unlike the other apps. *)

module Ctx = Nvsc_appkit.Ctx
module Farray = Nvsc_appkit.Farray
module W = Workload

let name = "nek5000"
let description = "Fluid flow simulation"
let input_description = "2D eddy problem (scaled)"
let paper_footprint_mb = 824.

(* Element geometry: [nelt] spectral elements of [nx] x [nx] points. *)
let base_nelt = 64
let nx = 8
let nxyz = nx * nx

type state = {
  nelt : int;
  field : int; (* words per field *)
  (* hot read/write fields *)
  vx : Farray.t;
  vy : Farray.t;
  pr : Farray.t;
  temp : Farray.t;
  vtrans : Farray.t;
  vxlag : Farray.t;
  vylag : Farray.t;
  scrns : Farray.t; (* scratch common block *)
  (* mass matrices *)
  bm1 : Farray.t;
  binvm1 : Farray.t; (* read-only auxiliary *)
  bm1lag : Farray.t; (* read-only auxiliary *)
  (* read-only computing-dependent data *)
  cbc : Farray.t;
  xm1 : Farray.t;
  ym1 : Farray.t;
  glo_num : Farray.t;
  (* derivative operators (small, intensively read) *)
  dxm1 : Farray.t;
  dxtm1 : Farray.t;
  (* read/write ratio > 50 group *)
  prec_diag1 : Farray.t;
  prec_diag2 : Farray.t;
  (* unevenly-touched data (used in only a few iterations: the paper's
     migration candidates, fig. 7) *)
  filter_op : Farray.t;
  hist_window : Farray.t;
  (* main-loop-untouched data *)
  setup_work : Farray.t;
  post_agg : Farray.t;
  (* long-term heap: Krylov basis *)
  krylov : Farray.t array;
}

let setup ctx ~scale =
  let nelt = W.scaled scale base_nelt in
  let field = nelt * nxyz in
  let g name n = Farray.global ctx ~name n in
  let s = {
    nelt;
    field;
    vx = g "vx" field;
    vy = g "vy" field;
    pr = g "pr" field;
    temp = g "t" field;
    vtrans = g "vtrans" field;
    vxlag = g "vxlag" field;
    vylag = g "vylag" field;
    scrns = g "scrns" (36 * field);
    bm1 = g "bm1" field;
    binvm1 = g "binvm1" field;
    bm1lag = g "bm1lag" field;
    cbc = g "cbc" (W.scaled scale 2048);
    xm1 = g "xm1" (field / 2);
    ym1 = g "ym1" (field / 2);
    glo_num = g "glo_num" (W.scaled scale 1536);
    dxm1 = g "dxm1" nxyz;
    dxtm1 = g "dxtm1" nxyz;
    prec_diag1 = g "prec_diag1" (W.scaled scale 5632);
    prec_diag2 = g "prec_diag2" (W.scaled scale 5632);
    filter_op = g "filter_op" (W.scaled scale 6144);
    hist_window = g "hist_window" (W.scaled scale 4096);
    setup_work = g "setup_work" (W.scaled scale 32768);
    post_agg = g "post_agg" (W.scaled scale 38912);
    krylov =
      Array.init 8 (fun i ->
          Farray.heap ctx ~site:(Printf.sprintf "krylov_%d" i) field);
  }
  in
  (* Pre-computation: derive operators, inverse mass matrices, boundary
     conditions; sweep the setup workspace (its only use). *)
  Farray.init ctx s.dxm1 (fun i -> float_of_int ((i mod nx) - (nx / 2)));
  Farray.init ctx s.dxtm1 (fun i -> float_of_int ((i / nx) - (nx / 2)));
  Farray.init ctx s.bm1 (fun i -> 1.0 +. (0.5 /. float_of_int (1 + (i mod 7))));
  Farray.init ctx s.binvm1 (fun i -> 1.0 /. (1.0 +. float_of_int (i mod 7)));
  Farray.init ctx s.bm1lag (fun i -> 0.9 +. (0.01 *. float_of_int (i mod 11)));
  Farray.init ctx s.cbc (fun i -> float_of_int (i mod 70));
  Farray.init ctx s.xm1 (fun i -> float_of_int i *. 1e-3);
  Farray.init ctx s.ym1 (fun i -> float_of_int i *. 2e-3);
  Farray.init ctx s.glo_num (fun i -> float_of_int i);
  Farray.init ctx s.prec_diag1 (fun _ -> 1.0);
  Farray.init ctx s.prec_diag2 (fun _ -> 1.0);
  Farray.init ctx s.filter_op (fun i -> 1.0 -. (float_of_int (i mod 16) /. 64.));
  Farray.fill ctx s.hist_window 0.;
  Farray.fill ctx s.setup_work 0.;
  Farray.init ctx s.vx (fun i -> sin (float_of_int i *. 1e-2));
  Farray.init ctx s.vy (fun i -> cos (float_of_int i *. 1e-2));
  Farray.fill ctx s.pr 0.;
  Farray.fill ctx s.temp 300.;
  Farray.fill ctx s.vtrans 1.;
  Array.iter (fun k -> Farray.fill ctx k 0.) s.krylov;
  (* the checkpoint set: the lagged velocity history is the restart state
     (the live fields are mid-solve at any crash point) *)
  Farray.persist ctx s.vxlag;
  Farray.persist ctx s.vylag;
  s

(* The element stiffness kernel: the paper's archetype of a stack-heavy
   computation.  The element's field values and the derivative operator
   are staged into the routine's frame; the tensor contraction then reads
   the frame intensively and writes each result point once. *)
let ax_e ctx s ~(u : Farray.t) ~(w : Farray.t) ~elem =
  Ctx.call ctx ~routine:"ax_e" ~frame_words:(4 * nxyz) (fun frame ->
      let ul = Farray.stack ctx frame nxyz in
      let dxs = Farray.stack ctx frame nxyz in
      let wl = Farray.stack ctx frame nxyz in
      let jacs = Farray.stack ctx frame nxyz in
      let off = elem * nxyz in
      (* stage operator, geometry and element data onto the stack *)
      for i = 0 to nxyz - 1 do
        Farray.set dxs i (Farray.get s.dxm1 i)
      done;
      for i = 0 to nxyz - 1 do
        Farray.set jacs i
          (Farray.get s.xm1 ((off / 2) + (i / 2) mod Farray.length s.xm1))
      done;
      for i = 0 to nxyz - 1 do
        Farray.set ul i (Farray.get u (off + i))
      done;
      (* tensor contraction: per point, one row of each staged array *)
      for p = 0 to nxyz - 1 do
        let row = p - (p mod nx) in
        let acc = ref 0. in
        for k = 0 to nx - 1 do
          acc := !acc +. (Farray.get dxs (row + k) *. Farray.get ul (row + k))
        done;
        Farray.set wl p !acc;
        Ctx.flops ctx (2 * nx)
      done;
      (* second derivative pass reads the frame again *)
      for p = 0 to nxyz - 1 do
        let col = p mod nx in
        let acc = ref 0. in
        for k = 0 to nx - 1 do
          acc := !acc +. (Farray.get dxs ((k * nx) + col) *. Farray.get wl ((k * nx) + col))
        done;
        W.rmw wl p (fun v -> v +. !acc);
        Ctx.flops ctx (2 * nx)
      done;
      (* apply mass with the staged Jacobian and write back *)
      for i = 0 to nxyz - 1 do
        let m = Farray.get s.bm1 (off + i) in
        Farray.set w (off + i) (m *. Farray.get wl i *. Farray.get jacs i);
        Ctx.flops ctx 3
      done)

(* One conjugate-gradient sweep of the Helmholtz solve: applies the
   element kernel to every element, then global vector updates. *)
let cg_sweep ctx s ~(x : Farray.t) ~(r : Farray.t) =
  for elem = 0 to s.nelt - 1 do
    ax_e ctx s ~u:x ~w:r ~elem
  done;
  W.saxpy ctx ~alpha:0.01 ~x:r ~y:x;
  (* preconditioner: consult the diagonal (reads only) *)
  W.read_every s.prec_diag1 ~stride:1;
  W.read_every s.prec_diag2 ~stride:1

let iterate ctx s ~iter =
  (* CFL-dependent solver depth: Nek5000's per-iteration reference rates
     are the most diverse of the four apps (paper fig. 8). *)
  let sweeps = 8 + (iter * 5 mod 9) in
  (* lag the velocity history *)
  Farray.copy_into ctx ~src:s.vx ~dst:s.vxlag;
  Farray.copy_into ctx ~src:s.vy ~dst:s.vylag;
  (* short-term heap scratch for this step (same site every iteration) *)
  let scratch = Farray.heap ctx ~site:"step_scratch" s.field in
  Farray.fill ctx scratch 0.;
  for sweep = 0 to sweeps - 1 do
    let k = s.krylov.(sweep mod Array.length s.krylov) in
    cg_sweep ctx s ~x:(if sweep mod 2 = 0 then s.vx else s.vy) ~r:k
  done;
  (* pressure correction touches pr and the read-only aux matrices *)
  for i = 0 to s.field - 1 do
    let b = Farray.get s.binvm1 i in
    W.rmw s.pr i (fun v -> v +. (0.1 *. b));
    Ctx.flops ctx 2
  done;
  (* energy equation: temperature update against lagged mass matrix *)
  for i = 0 to s.field - 1 do
    let m = Farray.get s.bm1lag i in
    W.rmw s.temp i (fun v -> v +. (1e-4 *. m *. Farray.get scratch i));
    Ctx.flops ctx 3
  done;
  (* sparse preconditioner refresh: the > 50-ratio behaviour *)
  let refresh = Farray.length s.prec_diag1 / 48 in
  for j = 0 to refresh - 1 do
    Farray.set s.prec_diag1 (j * 48) (1.0 +. (0.01 *. float_of_int iter));
    Farray.set s.prec_diag2 (j * 48) (1.0 -. (0.01 *. float_of_int iter))
  done;
  (* boundary conditions and geometry consulted per element face *)
  for elem = 0 to s.nelt - 1 do
    ignore (Farray.get s.cbc (elem mod Farray.length s.cbc));
    ignore (Farray.get s.xm1 (elem * nxyz / 2 mod Farray.length s.xm1));
    ignore (Farray.get s.ym1 (elem * nxyz / 2 mod Farray.length s.ym1))
  done;
  (* spectral filtering only fires every third step, and the startup
     history window only during the first two: both objects are touched in
     just a few iterations (fig. 7's migration candidates) *)
  if iter mod 3 = 0 then W.read_every s.filter_op ~stride:1;
  if iter <= 2 then begin
    let n = Farray.length s.hist_window in
    for i = 0 to n - 1 do
      Farray.set s.hist_window i (Farray.get s.vx (i mod s.field))
    done
  end;
  (* transport properties: consulted widely, refreshed sparsely *)
  W.read_every s.vtrans ~stride:4;
  let j = ref 0 in
  while !j < s.field do
    W.rmw s.vtrans !j (fun v -> v *. 0.9999);
    j := !j + 8
  done;
  (* the scratch common block really is scratch: rewritten then consumed *)
  for i = 0 to s.field - 1 do
    Farray.set s.scrns i (Farray.get s.pr i)
  done;
  W.read_every s.scrns ~stride:8;
  W.read_every s.glo_num ~stride:2;
  Farray.free ctx scratch;
  (* failure-atomic checkpoint of the lagged restart state *)
  Ctx.persist_epoch ctx ~label:"checkpoint" ~checkpoint:true (fun () ->
      Farray.flush_all ctx s.vxlag;
      Farray.flush_all ctx s.vylag;
      Ctx.fence ctx)

let post _ctx s =
  (* aggregate results into the post buffer (its only use) *)
  for i = 0 to Farray.length s.post_agg - 1 do
    Farray.set s.post_agg i
      (Farray.get s.vx (i mod s.field) +. Farray.get s.vy (i mod s.field))
  done

let run ?(scale = 1.0) ctx ~iterations =
  if iterations < 1 then invalid_arg "Nek5000.run: iterations";
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Pre;
  let s = setup ctx ~scale in
  for iter = 1 to iterations do
    Ctx.set_phase ctx (Nvsc_memtrace.Mem_object.Main iter);
    iterate ctx s ~iter
  done;
  Ctx.set_phase ctx Nvsc_memtrace.Mem_object.Post;
  post ctx s
