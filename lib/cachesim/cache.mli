(** A single set-associative, write-back cache level with true-LRU
    replacement.

    The cache operates on line addresses ([byte address / line size]); the
    hierarchy is responsible for splitting byte accesses into line
    accesses.  A lookup returns what traffic the access induces towards the
    next level — a line fill, a dirty write-back of an evicted line, a
    forwarded write (no-write-allocate write miss), or nothing — encoded in
    an immediate {!Effect.t} so the hit and miss paths perform zero heap
    allocations (DESIGN.md "Kernel fast paths"). *)

type t

(** Traffic the access generates toward the next memory level, packed into
    one immediate int.  The filled / forwarded line is always the accessed
    line itself, so only the write-back victim carries a line number. *)
module Effect : sig
  type t = private int

  val hit : t -> bool

  val fills : t -> bool
  (** The accessed line is fetched from below (read request). *)

  val forwards_write : t -> bool
  (** The write is sent below without allocating (no-write-allocate). *)

  val has_writeback : t -> bool
  (** A dirty victim must be written below. *)

  val writeback_line : t -> int
  (** The victim line; meaningful only when {!has_writeback}. *)
end

val create : Cache_params.t -> t

val params : t -> Cache_params.t

val read : t -> line:int -> Effect.t
(** Read lookup.  On a miss the line is allocated clean; a dirty victim is
    reported via {!Effect.has_writeback}.  Allocation-free on both the hit
    and miss path. *)

val write : t -> line:int -> Effect.t
(** Write lookup.  On a hit the line is dirtied.  On a miss:
    [Write_allocate] fetches the line ({!Effect.fills}) and dirties it;
    [No_write_allocate] leaves the cache unchanged and reports the write
    via {!Effect.forwards_write}. *)

val repeat_read_hit : t -> unit
(** Count a read hit on the line the cache's internal one-entry memo holds,
    without re-running the lookup or refreshing LRU.  Only sound when the
    caller knows that line was the most recently touched line in this cache
    (see {!Hierarchy}'s repeated-line fast path): refreshing the most
    recent line's timestamp cannot change any within-set recency
    comparison, so replacement decisions are unaffected. *)

val repeat_write_hit : t -> unit
(** As {!repeat_read_hit} for a write: counts the hit and re-dirties the
    memoized line. *)

val repeat_read_hits : t -> int -> unit
(** [repeat_read_hits t n]: count [n >= 0] repeat read hits on the
    memoized line in O(1) — the bulk form used by coalesced line runs,
    sound under the same invariant as {!repeat_read_hit}. *)

val repeat_write_hits : t -> int -> unit
(** [repeat_write_hits t n]: count [n >= 0] repeat write hits on the
    memoized line and re-dirty it once (no-op when [n = 0]). *)

val probe : t -> line:int -> bool
(** Non-intrusive presence test (does not touch LRU state). *)

val is_dirty : t -> line:int -> bool
(** Non-intrusive dirtiness test; false when the line is absent. *)

val flush_dirty : t -> (int -> unit) -> unit
(** Invoke the callback on every resident dirty line and mark them clean —
    end-of-trace write-back drain so memory traffic accounting is
    complete. *)

val invalidate_all : t -> unit
(** Drop every line without write-backs (used between independent
    experiments). *)

val resident_lines : t -> int

(** {1 Statistics} *)

val hits : t -> int
val misses : t -> int
val read_hits : t -> int
val read_misses : t -> int
val write_hits : t -> int
val write_misses : t -> int
val evictions : t -> int
val dirty_evictions : t -> int

val miss_rate : t -> float
(** Misses over total accesses; 0 when idle. *)

val reset_stats : t -> unit
