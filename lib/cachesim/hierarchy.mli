(** Two-level cache hierarchy that filters an application reference stream
    into a main-memory trace (paper §III: "memory traces represent main
    memory accesses due to last level cache misses and cache evictions").

    Data references go through L1D then L2; the resulting DRAM/NVRAM
    traffic — L2 fills (reads) and L2 dirty evictions / forwarded writes
    (writes) — is pushed into a {!Nvsc_memtrace.Sink.t} at line
    granularity, so downstream consumers receive it in flat batches. *)

type t

val create :
  ?l1d:Cache_params.t ->
  ?l2:Cache_params.t ->
  sink:Nvsc_memtrace.Sink.t ->
  unit ->
  t
(** Parameters default to the paper's Table II configuration.  [sink]
    receives each main-memory access (line-sized); it is flushed by
    {!drain}. *)

val access_raw : t -> addr:int -> size:int -> op:Nvsc_memtrace.Access.op -> unit
(** Run one application reference through the hierarchy.  References that
    straddle a line boundary are split per line, as hardware would issue
    them. *)

val access : t -> Nvsc_memtrace.Access.t -> unit
(** Per-record convenience over {!access_raw}. *)

val consume : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Run a batch slice through the hierarchy in order (the sink-consumer
    shape: wrap with [Sink.create (Hierarchy.consume t)]). *)

val access_classified_raw :
  t -> addr:int -> size:int -> op:Nvsc_memtrace.Access.op -> [ `L1 | `L2 | `Mem ]
(** Like {!access_raw}, additionally reporting the deepest level that had
    to service the reference ([`Mem] when main-memory traffic was
    generated).  For a reference split across lines, the deepest outcome
    wins. *)

val access_classified : t -> Nvsc_memtrace.Access.t -> [ `L1 | `L2 | `Mem ]

val drain : t -> unit
(** Write back all dirty lines (L1 through L2 to memory) so that the
    memory trace accounts for every store, then flush the sink.  Call once
    at end of trace. *)

val reset : t -> unit
(** Invalidate both levels and clear statistics. *)

val l1d : t -> Cache.t
val l2 : t -> Cache.t

val accesses : t -> int
(** Application references processed (after line splitting). *)

val memory_reads : t -> int
val memory_writes : t -> int
(** Line-granularity traffic generated so far (counted at generation time,
    independent of sink buffering). *)
