(* Allocation-free lookup kernels: the effect of an access is an encoded
   immediate int (no record, no options), set indexing is mask/shift for
   power-of-two set counts (with a guarded div/mod path otherwise), the way
   search probes the per-set MRU way first, recency is an intrusive per-set
   doubly-linked list so victim selection is O(1) (list tail) instead of a
   timestamp scan, and a one-entry resident-line memo short-circuits
   repeated sweeps over the same line.  Differential tests against
   test/oracle/ pin the behaviour to the original straightforward
   implementation. *)

module Effect = struct
  (* bit 0: hit; bit 1: fill (of the accessed line); bit 2: forwarded
     write (of the accessed line); bit 3: dirty victim write-back, with
     the victim line number in bits 4+.  Line numbers are addr / 64 at
     minimum, so the 4-bit header never overflows a 63-bit int for any
     reachable address space. *)
  type t = int

  let hit e = e land 1 <> 0
  let fills e = e land 2 <> 0
  let forwards_write e = e land 4 <> 0
  let has_writeback e = e land 8 <> 0
  let writeback_line e = e lsr 4
end

let e_hit = 1
let e_fill = 2
let e_forward = 4
let[@inline] e_fill_wb victim = 2 lor 8 lor (victim lsl 4)

type t = {
  p : Cache_params.t;
  nsets : int;
  assoc : int;
  set_mask : int; (* nsets - 1 when nsets is a power of two, else -1 *)
  tag_shift : int; (* log2 nsets when the mask path is active *)
  write_allocate : bool;
  tags : int array; (* -1 = invalid; indexed set*assoc + way *)
  dirty : bool array;
  (* Per-set recency as an intrusive *circular* doubly-linked list over
     the ways: [mru.(set)] is the head (most recently touched way), the
     tail — the victim when every way is valid — is [lprev.(head)], and
     [lnext]/[lprev] chain absolute way indices within the set.
     Equivalent to distinct-timestamp LRU: every operation that refreshes
     recency moves exactly one way to the head, so list order is exactly
     decreasing-timestamp order.  The circle makes the streaming-miss
     steady state O(1) stores: promoting the tail is a pure rotation
     (move the head pointer back one), no links change. *)
  lnext : int array;
  lprev : int array;
  mru : int array; (* per set: head of the recency list *)
  (* Ways become valid only through [allocate_at] at the first invalid
     way and are never invalidated individually, so each set's valid ways
     are a prefix of its index range: [vcnt.(set)] valid ways occupy
     [set*assoc, set*assoc+vcnt).  The way search scans just that prefix
     and the first-invalid victim is [base + vcnt] — no scan tracks
     invalid slots. *)
  vcnt : int array;
  (* Monotone per-set upper bound on every tag ever installed there
     (never lowered on eviction, so always ≥ every resident tag).  A
     probe with [tag > maxtag.(set)] is definitely absent and skips the
     way scan — the steady state of a streaming sweep, whose fresh lines
     carry ever-larger tags. *)
  maxtag : int array;
  (* one-entry memo: [memo_line] is resident at [memo_idx] (min_int =
     none).  Maintained on every hit and allocation, so a repeated access
     to the same line skips indexing and the way search entirely — and
     since every recency update also retargets the memo, the memoized way
     is always already at the head of its list, so the memo path needs no
     LRU maintenance at all. *)
  mutable memo_line : int;
  mutable memo_idx : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
}

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

(* Creation-order circle: within each set the ways chain in index order,
   head = first way (so tail = last).  Victim order over an all-invalid
   set is decided by the prefix fill, not the list, so any initial order
   works; index order keeps it readable. *)
let reset_recency ~nsets ~assoc lnext lprev mru =
  for s = 0 to nsets - 1 do
    let base = s * assoc in
    let last = base + assoc - 1 in
    for i = base to last do
      lnext.(i) <- (if i = last then base else i + 1);
      lprev.(i) <- (if i = base then last else i - 1)
    done;
    mru.(s) <- base
  done

let create p =
  let nsets = Cache_params.sets p in
  let assoc = p.Cache_params.associativity in
  let n = nsets * assoc in
  let pow2 = nsets land (nsets - 1) = 0 in
  let lnext = Array.make n (-1) and lprev = Array.make n (-1) in
  let mru = Array.make nsets 0 in
  reset_recency ~nsets ~assoc lnext lprev mru;
  {
    p;
    nsets;
    assoc;
    set_mask = (if pow2 then nsets - 1 else -1);
    tag_shift = (if pow2 then log2 nsets else 0);
    write_allocate = (p.Cache_params.write_miss = Cache_params.Write_allocate);
    tags = Array.make n (-1);
    dirty = Array.make n false;
    lnext;
    lprev;
    mru;
    vcnt = Array.make nsets 0;
    maxtag = Array.make nsets (-1);
    memo_line = min_int;
    memo_idx = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    evictions = 0;
    dirty_evictions = 0;
  }

let params t = t.p

let[@inline] set_of t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets

let[@inline] tag_of t line =
  if t.set_mask >= 0 then line lsr t.tag_shift else line / t.nsets

let[@inline] line_of t set tag =
  if t.set_mask >= 0 then (tag lsl t.tag_shift) lor set else (tag * t.nsets) + set

(* The scans are toplevel functions taking their environment as arguments:
   a local [let rec] capturing variables compiles to a heap-allocated
   closure without flambda, which would put an allocation on the miss
   path.  As toplevel tail-recursive functions they run closure-free. *)
(* The explicit [int array]/[int] annotations matter: without them these
   generalize to polymorphic functions whose [=]/[<] compile to C calls
   ([caml_equal]/[caml_lessthan]) with generic array accesses — an order
   of magnitude slower than immediate compares. *)
let rec scan_way (tags : int array) (tag : int) last i =
  if i > last then -1
  else if Array.unsafe_get tags i = tag then i
  else scan_way tags tag last (i + 1)

(* Way search: probe the set's MRU way first (sweeps and stack churn hit
   it), then scan the remaining ways.  Returns an absolute index, -1 when
   absent.  All indices are in [set*assoc, (set+1)*assoc) by construction,
   so the loads are unchecked. *)
let[@inline] find_way t set tag =
  let tags = t.tags in
  let m = Array.unsafe_get t.mru set in
  if Array.unsafe_get tags m = tag then m
  else begin
    let base = set * t.assoc in
    scan_way tags tag (base + t.assoc - 1) base
  end

(* Find-only way scan over the valid prefix, unrolled four ways: no
   invalid-slot tracking (the prefix invariant supplies the first-invalid
   victim as [base + vcnt]), which halves the per-way work of the old
   combined scan.  Returns the matching index or -1. *)
let rec scan_find (tags : int array) (tag : int) last i =
  if i + 3 <= last then begin
    let a = Array.unsafe_get tags i
    and b = Array.unsafe_get tags (i + 1)
    and c = Array.unsafe_get tags (i + 2)
    and d = Array.unsafe_get tags (i + 3) in
    if a = tag then i
    else if b = tag then i + 1
    else if c = tag then i + 2
    else if d = tag then i + 3
    else scan_find tags tag last (i + 4)
  end
  else scan_find_tail tags tag last i

and scan_find_tail (tags : int array) (tag : int) last i =
  if i > last then -1
  else if Array.unsafe_get tags i = tag then i
  else scan_find_tail tags tag last (i + 1)

(* Way search and victim selection in one call.  Returns [2*idx+1] when
   [tag] is resident at [idx], else [2*victim] with [victim] the first
   invalid way (prefix fill) or, in a fully valid set, the
   least-recently-touched way — the circular list's tail, [lprev(head)].

   Tail/timestamp equivalence: in the timestamp model every touch
   assigned a fresh strictly-increasing clock, so among a fully valid
   set's ways the ages were distinct and the minimum-age way was the one
   touched longest ago — exactly the list tail.  Partially valid sets
   never consulted ages (first-invalid preference), so the list replaces
   the age scan without changing any victim choice; the differential
   oracle suite pins this. *)
let[@inline] find_or_victim t set tag =
  let tags = t.tags in
  let m = Array.unsafe_get t.mru set in
  if Array.unsafe_get tags m = tag then (m lsl 1) lor 1
  else begin
    let base = set * t.assoc in
    let c = Array.unsafe_get t.vcnt set in
    let i =
      if tag > Array.unsafe_get t.maxtag set then -1
      else scan_find tags tag (base + c - 1) base
    in
    if i >= 0 then (i lsl 1) lor 1
    else if c < t.assoc then (base + c) lsl 1
    else Array.unsafe_get t.lprev m lsl 1
  end

(* Move way [idx] to the head of its set's recency circle (the touch).
   Re-touching the head is free; promoting the tail is a pure rotation
   (the circle's order is unchanged, only the head pointer moves) — the
   steady state of a streaming miss, where the evicted tail becomes the
   newest line.  Only a mid-list promotion relinks. *)
let[@inline] promote t set idx =
  let h = Array.unsafe_get t.mru set in
  if h <> idx then begin
    let nx = Array.unsafe_get t.lnext idx in
    if nx <> h then begin
      let p = Array.unsafe_get t.lprev idx in
      let tl = Array.unsafe_get t.lprev h in
      Array.unsafe_set t.lnext p nx;
      Array.unsafe_set t.lprev nx p;
      Array.unsafe_set t.lnext tl idx;
      Array.unsafe_set t.lprev idx tl;
      Array.unsafe_set t.lnext idx h;
      Array.unsafe_set t.lprev h idx
    end;
    Array.unsafe_set t.mru set idx
  end

(* Install [line] at [idx] (the fused scan's victim). *)
let[@inline] allocate_at t idx set tag ~line ~make_dirty =
  let victim_tag = Array.unsafe_get t.tags idx in
  let e =
    if victim_tag <> -1 then begin
      t.evictions <- t.evictions + 1;
      if Array.unsafe_get t.dirty idx then begin
        t.dirty_evictions <- t.dirty_evictions + 1;
        e_fill_wb (line_of t set victim_tag)
      end
      else e_fill
    end
    else begin
      (* filling the first invalid way extends the set's valid prefix *)
      Array.unsafe_set t.vcnt set (Array.unsafe_get t.vcnt set + 1);
      e_fill
    end
  in
  Array.unsafe_set t.tags idx tag;
  Array.unsafe_set t.dirty idx make_dirty;
  if tag > Array.unsafe_get t.maxtag set then Array.unsafe_set t.maxtag set tag;
  promote t set idx;
  t.memo_line <- line;
  t.memo_idx <- idx;
  e

let read t ~line =
  if line < 0 then invalid_arg "Cache.read: negative line";
  if line = t.memo_line then begin
    (* resident at memo_idx, which is already the head of its recency
       list (every touch retargets the memo): hit, nothing to move *)
    t.read_hits <- t.read_hits + 1;
    e_hit
  end
  else begin
    let set = set_of t line in
    let tag = tag_of t line in
    let r = find_or_victim t set tag in
    let idx = r lsr 1 in
    if r land 1 <> 0 then begin
      t.read_hits <- t.read_hits + 1;
      promote t set idx;
      t.memo_line <- line;
      t.memo_idx <- idx;
      e_hit
    end
    else begin
      t.read_misses <- t.read_misses + 1;
      allocate_at t idx set tag ~line ~make_dirty:false
    end
  end

let write t ~line =
  if line < 0 then invalid_arg "Cache.write: negative line";
  if line = t.memo_line then begin
    t.write_hits <- t.write_hits + 1;
    Array.unsafe_set t.dirty t.memo_idx true;
    e_hit
  end
  else begin
    let set = set_of t line in
    let tag = tag_of t line in
    let r = find_or_victim t set tag in
    let idx = r lsr 1 in
    if r land 1 <> 0 then begin
      t.write_hits <- t.write_hits + 1;
      Array.unsafe_set t.dirty idx true;
      promote t set idx;
      t.memo_line <- line;
      t.memo_idx <- idx;
      e_hit
    end
    else begin
      t.write_misses <- t.write_misses + 1;
      if t.write_allocate then allocate_at t idx set tag ~line ~make_dirty:true
      else
        (* no-write-allocate: the line stays absent, the memo untouched *)
        e_forward
    end
  end

(* Repeated-hit paths for [Hierarchy]'s one-entry L1 memo: count a hit on
   the memoized resident line without re-running the lookup.  The LRU
   refresh is skipped deliberately: eviction only compares recency *within
   a set*, and a repeat touch can never reorder two lines' last touches
   unless some other line was accessed in between — which would have
   retargeted the memo and sent that access down the full path.  The
   differential suite pins stats, evictions and sink output against the
   oracle, which does refresh on every hit. *)
let[@inline] repeat_read_hit t = t.read_hits <- t.read_hits + 1

let[@inline] repeat_write_hit t =
  t.write_hits <- t.write_hits + 1;
  Array.unsafe_set t.dirty t.memo_idx true

(* Bulk forms for coalesced line runs: [n] repeat hits cost two counter
   updates, not [n] calls.  Sound under exactly the invariant above — the
   whole run targets the memoized line with no intervening access. *)
let[@inline] repeat_read_hits t n = t.read_hits <- t.read_hits + n

let[@inline] repeat_write_hits t n =
  if n > 0 then begin
    t.write_hits <- t.write_hits + n;
    Array.unsafe_set t.dirty t.memo_idx true
  end

let probe t ~line =
  line >= 0 && find_way t (set_of t line) (tag_of t line) >= 0

let is_dirty t ~line =
  if line < 0 then false
  else begin
    let idx = find_way t (set_of t line) (tag_of t line) in
    idx >= 0 && Array.unsafe_get t.dirty idx
  end

let flush_dirty t f =
  for set = 0 to t.nsets - 1 do
    let base = set * t.assoc in
    for w = 0 to t.assoc - 1 do
      let idx = base + w in
      if t.tags.(idx) <> -1 && t.dirty.(idx) then begin
        f (line_of t set t.tags.(idx));
        t.dirty.(idx) <- false
      end
    done
  done

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.vcnt 0 t.nsets 0;
  Array.fill t.maxtag 0 t.nsets (-1);
  reset_recency ~nsets:t.nsets ~assoc:t.assoc t.lnext t.lprev t.mru;
  t.memo_line <- min_int

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag <> -1 then acc + 1 else acc) 0 t.tags

let hits t = t.read_hits + t.write_hits
let misses t = t.read_misses + t.write_misses
let read_hits t = t.read_hits
let read_misses t = t.read_misses
let write_hits t = t.write_hits
let write_misses t = t.write_misses
let evictions t = t.evictions
let dirty_evictions t = t.dirty_evictions

let miss_rate t =
  let total = hits t + misses t in
  if total = 0 then 0. else float_of_int (misses t) /. float_of_int total

let reset_stats t =
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.write_hits <- 0;
  t.write_misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0
