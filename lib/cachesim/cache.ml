(* Allocation-free lookup kernels: the effect of an access is an encoded
   immediate int (no record, no options), set indexing is mask/shift for
   power-of-two set counts (with a guarded div/mod path otherwise), the way
   search probes the per-set MRU way first, victim selection is a single
   scan, and a one-entry resident-line memo short-circuits repeated sweeps
   over the same line.  Differential tests against test/oracle/ pin the
   behaviour to the original straightforward implementation. *)

module Effect = struct
  (* bit 0: hit; bit 1: fill (of the accessed line); bit 2: forwarded
     write (of the accessed line); bit 3: dirty victim write-back, with
     the victim line number in bits 4+.  Line numbers are addr / 64 at
     minimum, so the 4-bit header never overflows a 63-bit int for any
     reachable address space. *)
  type t = int

  let hit e = e land 1 <> 0
  let fills e = e land 2 <> 0
  let forwards_write e = e land 4 <> 0
  let has_writeback e = e land 8 <> 0
  let writeback_line e = e lsr 4
end

let e_hit = 1
let e_fill = 2
let e_forward = 4
let[@inline] e_fill_wb victim = 2 lor 8 lor (victim lsl 4)

type t = {
  p : Cache_params.t;
  nsets : int;
  assoc : int;
  set_mask : int; (* nsets - 1 when nsets is a power of two, else -1 *)
  tag_shift : int; (* log2 nsets when the mask path is active *)
  write_allocate : bool;
  tags : int array; (* -1 = invalid; indexed set*assoc + way *)
  dirty : bool array;
  age : int array; (* LRU timestamps *)
  mru : int array; (* per set: absolute index of the last-touched way *)
  (* one-entry memo: [memo_line] is resident at [memo_idx] (min_int =
     none).  Maintained on every hit and allocation, so a repeated access
     to the same line skips indexing and the way search entirely. *)
  mutable memo_line : int;
  mutable memo_idx : int;
  mutable clock : int;
  mutable read_hits : int;
  mutable read_misses : int;
  mutable write_hits : int;
  mutable write_misses : int;
  mutable evictions : int;
  mutable dirty_evictions : int;
}

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create p =
  let nsets = Cache_params.sets p in
  let assoc = p.Cache_params.associativity in
  let n = nsets * assoc in
  let pow2 = nsets land (nsets - 1) = 0 in
  {
    p;
    nsets;
    assoc;
    set_mask = (if pow2 then nsets - 1 else -1);
    tag_shift = (if pow2 then log2 nsets else 0);
    write_allocate = (p.Cache_params.write_miss = Cache_params.Write_allocate);
    tags = Array.make n (-1);
    dirty = Array.make n false;
    age = Array.make n 0;
    mru = Array.init nsets (fun s -> s * assoc);
    memo_line = min_int;
    memo_idx = 0;
    clock = 0;
    read_hits = 0;
    read_misses = 0;
    write_hits = 0;
    write_misses = 0;
    evictions = 0;
    dirty_evictions = 0;
  }

let params t = t.p

let[@inline] set_of t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets

let[@inline] tag_of t line =
  if t.set_mask >= 0 then line lsr t.tag_shift else line / t.nsets

let[@inline] line_of t set tag =
  if t.set_mask >= 0 then (tag lsl t.tag_shift) lor set else (tag * t.nsets) + set

(* The scans are toplevel functions taking their environment as arguments:
   a local [let rec] capturing variables compiles to a heap-allocated
   closure without flambda, which would put an allocation on the miss
   path.  As toplevel tail-recursive functions they run closure-free. *)
(* The explicit [int array]/[int] annotations matter: without them these
   generalize to polymorphic functions whose [=]/[<] compile to C calls
   ([caml_equal]/[caml_lessthan]) with generic array accesses — an order
   of magnitude slower than immediate compares. *)
let rec scan_way (tags : int array) (tag : int) last i =
  if i > last then -1
  else if Array.unsafe_get tags i = tag then i
  else scan_way tags tag last (i + 1)

(* Way search: probe the set's MRU way first (sweeps and stack churn hit
   it), then scan the remaining ways.  Returns an absolute index, -1 when
   absent.  All indices are in [set*assoc, (set+1)*assoc) by construction,
   so the loads are unchecked. *)
let[@inline] find_way t set tag =
  let tags = t.tags in
  let m = Array.unsafe_get t.mru set in
  if Array.unsafe_get tags m = tag then m
  else begin
    let base = set * t.assoc in
    scan_way tags tag (base + t.assoc - 1) base
  end

(* Way search and victim selection in one call, with the victim computed
   lazily: the first pass reads tags only (noting the first invalid way),
   so the hit path never touches the age array; the age scan runs only on
   a miss in a fully valid set.  Returns [2*idx+1] when [tag] is resident
   at [idx], else [2*victim] with [victim] the first invalid way or,
   failing that, the lowest-timestamp way (earliest index on ties) —
   exactly [find_way]/[victim_way]'s separate answers. *)
let rec scan_tags (tags : int array) (tag : int) last i inv =
  if i > last then if inv >= 0 then inv lsl 1 else -1
  else
    let tg = Array.unsafe_get tags i in
    if tg = tag then (i lsl 1) lor 1
    else if tg = -1 && inv < 0 then scan_tags tags tag last (i + 1) i
    else scan_tags tags tag last (i + 1) inv

let rec scan_min_age (age : int array) last i best =
  if i > last then best lsl 1
  else if Array.unsafe_get age i < Array.unsafe_get age best then
    scan_min_age age last (i + 1) i
  else scan_min_age age last (i + 1) best

let[@inline] find_or_victim t set tag =
  let tags = t.tags in
  let m = Array.unsafe_get t.mru set in
  if Array.unsafe_get tags m = tag then (m lsl 1) lor 1
  else begin
    let base = set * t.assoc in
    let last = base + t.assoc - 1 in
    let r = scan_tags tags tag last base (-1) in
    if r >= 0 then r else scan_min_age t.age last (base + 1) base
  end

let[@inline] touch t idx =
  let c = t.clock + 1 in
  t.clock <- c;
  Array.unsafe_set t.age idx c

(* Install [line] at [idx] (the fused scan's victim). *)
let[@inline] allocate_at t idx set tag ~line ~make_dirty =
  let victim_tag = Array.unsafe_get t.tags idx in
  let e =
    if victim_tag <> -1 then begin
      t.evictions <- t.evictions + 1;
      if Array.unsafe_get t.dirty idx then begin
        t.dirty_evictions <- t.dirty_evictions + 1;
        e_fill_wb (line_of t set victim_tag)
      end
      else e_fill
    end
    else e_fill
  in
  Array.unsafe_set t.tags idx tag;
  Array.unsafe_set t.dirty idx make_dirty;
  touch t idx;
  Array.unsafe_set t.mru set idx;
  t.memo_line <- line;
  t.memo_idx <- idx;
  e

let read t ~line =
  if line < 0 then invalid_arg "Cache.read: negative line";
  if line = t.memo_line then begin
    (* resident at memo_idx: hit, refresh LRU *)
    t.read_hits <- t.read_hits + 1;
    touch t t.memo_idx;
    e_hit
  end
  else begin
    let set = set_of t line in
    let tag = tag_of t line in
    let r = find_or_victim t set tag in
    let idx = r lsr 1 in
    if r land 1 <> 0 then begin
      t.read_hits <- t.read_hits + 1;
      touch t idx;
      Array.unsafe_set t.mru set idx;
      t.memo_line <- line;
      t.memo_idx <- idx;
      e_hit
    end
    else begin
      t.read_misses <- t.read_misses + 1;
      allocate_at t idx set tag ~line ~make_dirty:false
    end
  end

let write t ~line =
  if line < 0 then invalid_arg "Cache.write: negative line";
  if line = t.memo_line then begin
    t.write_hits <- t.write_hits + 1;
    Array.unsafe_set t.dirty t.memo_idx true;
    touch t t.memo_idx;
    e_hit
  end
  else begin
    let set = set_of t line in
    let tag = tag_of t line in
    let r = find_or_victim t set tag in
    let idx = r lsr 1 in
    if r land 1 <> 0 then begin
      t.write_hits <- t.write_hits + 1;
      Array.unsafe_set t.dirty idx true;
      touch t idx;
      Array.unsafe_set t.mru set idx;
      t.memo_line <- line;
      t.memo_idx <- idx;
      e_hit
    end
    else begin
      t.write_misses <- t.write_misses + 1;
      if t.write_allocate then allocate_at t idx set tag ~line ~make_dirty:true
      else
        (* no-write-allocate: the line stays absent, the memo untouched *)
        e_forward
    end
  end

(* Repeated-hit paths for [Hierarchy]'s one-entry L1 memo: count a hit on
   the memoized resident line without re-running the lookup.  The LRU
   refresh is skipped deliberately: eviction only compares recency *within
   a set*, and a repeat touch can never reorder two lines' last touches
   unless some other line was accessed in between — which would have
   retargeted the memo and sent that access down the full path.  The
   differential suite pins stats, evictions and sink output against the
   oracle, which does refresh on every hit. *)
let[@inline] repeat_read_hit t = t.read_hits <- t.read_hits + 1

let[@inline] repeat_write_hit t =
  t.write_hits <- t.write_hits + 1;
  Array.unsafe_set t.dirty t.memo_idx true

let probe t ~line =
  line >= 0 && find_way t (set_of t line) (tag_of t line) >= 0

let is_dirty t ~line =
  if line < 0 then false
  else begin
    let idx = find_way t (set_of t line) (tag_of t line) in
    idx >= 0 && Array.unsafe_get t.dirty idx
  end

let flush_dirty t f =
  for set = 0 to t.nsets - 1 do
    let base = set * t.assoc in
    for w = 0 to t.assoc - 1 do
      let idx = base + w in
      if t.tags.(idx) <> -1 && t.dirty.(idx) then begin
        f (line_of t set t.tags.(idx));
        t.dirty.(idx) <- false
      end
    done
  done

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.age 0 (Array.length t.age) 0;
  for s = 0 to t.nsets - 1 do
    t.mru.(s) <- s * t.assoc
  done;
  t.memo_line <- min_int

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag <> -1 then acc + 1 else acc) 0 t.tags

let hits t = t.read_hits + t.write_hits
let misses t = t.read_misses + t.write_misses
let read_hits t = t.read_hits
let read_misses t = t.read_misses
let write_hits t = t.write_hits
let write_misses t = t.write_misses
let evictions t = t.evictions
let dirty_evictions t = t.dirty_evictions

let miss_rate t =
  let total = hits t + misses t in
  if total = 0 then 0. else float_of_int (misses t) /. float_of_int total

let reset_stats t =
  t.read_hits <- 0;
  t.read_misses <- 0;
  t.write_hits <- 0;
  t.write_misses <- 0;
  t.evictions <- 0;
  t.dirty_evictions <- 0
