(** Cache geometry and policy parameters.

    Defaults reproduce Table II of the paper: split 32 KB 4-way L1 with
    64-byte lines and no-write-allocate, and a private 1 MB 16-way LRU L2
    with 64-byte lines and write-allocate. *)

type write_miss_policy = Write_allocate | No_write_allocate

type t = {
  name : string;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  write_miss : write_miss_policy;
}

val make :
  name:string ->
  size_bytes:int ->
  associativity:int ->
  ?line_bytes:int ->
  write_miss:write_miss_policy ->
  unit ->
  t
(** [line_bytes] defaults to 64.  Validates the geometry and raises
    [Invalid_argument] naming the offending field and value otherwise:
    [line_bytes] and the resulting set count must be powers of two (so
    {!Cache} indexes sets by mask/shift), [associativity] positive, and
    [size_bytes] divisible into whole sets.  Code that deliberately needs
    a non-power-of-two set count (e.g. a DRAM page cache sized from an
    application footprint) can build the record directly — {!Cache} keeps
    a guarded div/mod path for such geometries. *)

val sets : t -> int
(** Number of sets, [size / (line * associativity)]. *)

val paper_l1d : t
(** 32 KB, 4-way, 64 B lines, no-write-allocate (Table II). *)

val paper_l1i : t
(** Same geometry as the L1 data cache; instruction side of the split L1. *)

val paper_l2 : t
(** 1 MB, 16-way, LRU, 64 B lines, write-allocate (Table II). *)

val pp : Format.formatter -> t -> unit
