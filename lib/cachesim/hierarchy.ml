module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink

type t = {
  l1d : Cache.t;
  l2 : Cache.t;
  line_bytes : int;
  line_shift : int; (* log2 line_bytes, or -1 forcing the div path *)
  sink : Sink.t;
  (* One-entry (line) L1 memo: [l1_repeat_line] is the most recently
     touched L1 line (min_int = none).  Repeated sweeps over the same line
     — word-granular app streams issue ~line_bytes/word consecutive
     accesses per line — short-circuit to a bare hit-counter bump.  The
     LRU refresh is skipped: the memo line already holds the newest
     timestamp, so refreshing it cannot reorder any within-set recency
     comparison.  Any access that touches a different line (hit or fill)
     retargets the memo; a no-write-allocate forwarded write touches
     nothing and leaves it valid. *)
  mutable l1_repeat_line : int;
  mutable accesses : int;
  mutable memory_reads : int;
  mutable memory_writes : int;
}

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let create ?(l1d = Cache_params.paper_l1d) ?(l2 = Cache_params.paper_l2) ~sink
    () =
  if l1d.Cache_params.line_bytes <> l2.Cache_params.line_bytes then
    invalid_arg "Hierarchy.create: levels must share a line size";
  let line_bytes = l1d.Cache_params.line_bytes in
  {
    l1d = Cache.create l1d;
    l2 = Cache.create l2;
    line_bytes;
    line_shift =
      (if line_bytes land (line_bytes - 1) = 0 then log2 line_bytes else -1);
    sink;
    l1_repeat_line = min_int;
    accesses = 0;
    memory_reads = 0;
    memory_writes = 0;
  }

let mem_read t line =
  t.memory_reads <- t.memory_reads + 1;
  Sink.push t.sink ~addr:(line * t.line_bytes) ~size:t.line_bytes
    ~op:Access.Read

let mem_write t line =
  t.memory_writes <- t.memory_writes + 1;
  Sink.push t.sink ~addr:(line * t.line_bytes) ~size:t.line_bytes
    ~op:Access.Write

(* L2 is the last level: its fills come from memory and its dirty victims
   and forwarded writes go to memory.  A filled/forwarded line is always
   the accessed line itself (see [Cache.Effect]), so only the write-back
   victim is decoded out of the effect. *)
let l2_read t line =
  let e = Cache.read t.l2 ~line in
  if not (Cache.Effect.hit e) then begin
    if Cache.Effect.fills e then mem_read t line;
    if Cache.Effect.has_writeback e then
      mem_write t (Cache.Effect.writeback_line e)
  end

let l2_write t line =
  let e = Cache.write t.l2 ~line in
  if not (Cache.Effect.hit e) then begin
    if Cache.Effect.fills e then mem_read t line;
    if Cache.Effect.has_writeback e then
      mem_write t (Cache.Effect.writeback_line e);
    if Cache.Effect.forwards_write e then mem_write t line
  end

let[@inline] access_line t line op =
  t.accesses <- t.accesses + 1;
  if line = t.l1_repeat_line then begin
    match op with
    | Access.Read -> Cache.repeat_read_hit t.l1d
    | Access.Write -> Cache.repeat_write_hit t.l1d
  end
  else
    match op with
    | Access.Read ->
      let e = Cache.read t.l1d ~line in
      (* hit or fill: the line is now resident and most recently touched *)
      t.l1_repeat_line <- line;
      if not (Cache.Effect.hit e) then begin
        if Cache.Effect.fills e then l2_read t line;
        if Cache.Effect.has_writeback e then
          l2_write t (Cache.Effect.writeback_line e)
      end
    | Access.Write ->
      let e = Cache.write t.l1d ~line in
      if Cache.Effect.hit e then t.l1_repeat_line <- line
      else begin
        if Cache.Effect.forwards_write e then
          (* no-write-allocate: nothing touched in L1, memo still valid *)
          l2_write t line
        else begin
          t.l1_repeat_line <- line;
          if Cache.Effect.fills e then l2_read t line;
          if Cache.Effect.has_writeback e then
            l2_write t (Cache.Effect.writeback_line e)
        end
      end

(* Most references fit in one line: compute both endpoints with a shift
   and skip the loop when they coincide.  Negative addresses (never
   produced by the layout, but representable) keep the original
   round-toward-zero division semantics. *)
let[@inline] access_raw t ~addr ~size ~op =
  if t.line_shift >= 0 && addr >= 0 then begin
    let first = addr lsr t.line_shift in
    let last = (addr + size - 1) lsr t.line_shift in
    if first = last then access_line t first op
    else
      for line = first to last do
        access_line t line op
      done
  end
  else begin
    let first = addr / t.line_bytes in
    let last = (addr + size - 1) / t.line_bytes in
    for line = first to last do
      access_line t line op
    done
  end

let access t (a : Access.t) = access_raw t ~addr:a.addr ~size:a.size ~op:a.op

(* One span per delivered batch, not per access.  The unchecked branch
   hoists the batch's typed buffer views once: the per-element accessors
   each consult the [debug_checks] atomic, which this lifts out of the
   loop (the slice is within capacity by the sink-consumer contract).

   Batch-time run detection: word-granular streams issue long runs of
   consecutive references to one line.  After a reference leaves the L1
   memo targeting its line, the detector gobbles the following
   single-line references to that same line in a tight loop — each is by
   construction a memo hit (nothing intervenes to retarget the memo), so
   the whole run costs two bulk counter updates instead of a per-ref trip
   through the access dispatch.  Identical stats/evictions/sink output:
   this is exactly the repeat-hit path PR 5 proved equivalent, applied
   [run length] times at once. *)
let consume t batch ~first ~n =
  Nvsc_obs.Span.with_ "cachesim.filter" @@ fun () ->
  if Sink.checks_enabled () then
    for i = first to first + n - 1 do
      access_raw t ~addr:(Sink.Batch.addr batch i)
        ~size:(Sink.Batch.size batch i) ~op:(Sink.Batch.op batch i)
    done
  else begin
    let addrs = Sink.Batch.addrs batch
    and sizes = Sink.Batch.sizes batch
    and ops = Sink.Batch.ops batch in
    let limit = first + n in
    if t.line_shift >= 0 then begin
      let shift = t.line_shift in
      let i = ref first in
      while !i < limit do
        let j = !i in
        let addr = Bigarray.Array1.unsafe_get addrs j in
        let op =
          if Bigarray.Array1.unsafe_get ops j <> '\000' then Access.Write
          else Access.Read
        in
        access_raw t ~addr ~size:(Bigarray.Array1.unsafe_get sizes j) ~op;
        incr i;
        (* run detector: if the memo now targets this reference's first
           line, batch up the immediately following same-line refs *)
        let line = t.l1_repeat_line in
        if addr >= 0 && addr lsr shift = line then begin
          let reads = ref 0 and writes = ref 0 in
          let continue_ = ref true in
          while !continue_ && !i < limit do
            let k = !i in
            let a = Bigarray.Array1.unsafe_get addrs k in
            if
              a lsr shift = line
              && (a + Bigarray.Array1.unsafe_get sizes k - 1) lsr shift = line
              && a >= 0
            then begin
              if Bigarray.Array1.unsafe_get ops k <> '\000' then incr writes
              else incr reads;
              incr i
            end
            else continue_ := false
          done;
          let r = !reads and w = !writes in
          if r + w > 0 then begin
            t.accesses <- t.accesses + r + w;
            Cache.repeat_read_hits t.l1d r;
            Cache.repeat_write_hits t.l1d w
          end
        end
      done
    end
    else
      for i = first to limit - 1 do
        let op =
          if Bigarray.Array1.unsafe_get ops i <> '\000' then Access.Write
          else Access.Read
        in
        access_raw t ~addr:(Bigarray.Array1.unsafe_get addrs i)
          ~size:(Bigarray.Array1.unsafe_get sizes i) ~op
      done
  end

let access_classified_raw t ~addr ~size ~op =
  let l1_misses_before = Cache.misses t.l1d in
  let mem_before = t.memory_reads + t.memory_writes in
  access_raw t ~addr ~size ~op;
  if t.memory_reads + t.memory_writes > mem_before then `Mem
  else if Cache.misses t.l1d > l1_misses_before then `L2
  else `L1

let access_classified t (a : Access.t) =
  access_classified_raw t ~addr:a.addr ~size:a.size ~op:a.op

let drain t =
  Nvsc_obs.Span.with_ "cachesim.drain" @@ fun () ->
  (* L1 dirty lines write into L2; then L2 dirty lines write to memory. *)
  Cache.flush_dirty t.l1d (fun line -> l2_write t line);
  Cache.flush_dirty t.l2 (fun line -> mem_write t line);
  Sink.flush t.sink

let reset t =
  Cache.invalidate_all t.l1d;
  Cache.invalidate_all t.l2;
  t.l1_repeat_line <- min_int;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  t.accesses <- 0;
  t.memory_reads <- 0;
  t.memory_writes <- 0

let l1d t = t.l1d
let l2 t = t.l2
let accesses t = t.accesses
let memory_reads t = t.memory_reads
let memory_writes t = t.memory_writes
