type write_miss_policy = Write_allocate | No_write_allocate

type t = {
  name : string;
  size_bytes : int;
  associativity : int;
  line_bytes : int;
  write_miss : write_miss_policy;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* Every rejection names the offending field and its value: geometry
   mistakes usually come from sweep configs, and "associativity" alone
   does not say which of four numbers to fix. *)
let make ~name ~size_bytes ~associativity ?(line_bytes = 64) ~write_miss () =
  if not (is_pow2 line_bytes) then
    invalid_arg
      (Printf.sprintf
         "Cache_params.make: line_bytes = %d is not a power of two" line_bytes);
  if associativity <= 0 then
    invalid_arg
      (Printf.sprintf "Cache_params.make: associativity = %d is not positive"
         associativity);
  let way_bytes = line_bytes * associativity in
  if size_bytes mod way_bytes <> 0 || size_bytes / way_bytes < 1 then
    invalid_arg
      (Printf.sprintf
         "Cache_params.make: size_bytes = %d is not divisible into sets of \
          line_bytes * associativity = %d bytes"
         size_bytes way_bytes);
  let sets = size_bytes / way_bytes in
  if not (is_pow2 sets) then
    invalid_arg
      (Printf.sprintf
         "Cache_params.make: size_bytes = %d gives %d sets (associativity = \
          %d, line_bytes = %d), which is not a power of two"
         size_bytes sets associativity line_bytes);
  { name; size_bytes; associativity; line_bytes; write_miss }

let sets t = t.size_bytes / (t.line_bytes * t.associativity)

let paper_l1d =
  make ~name:"L1D" ~size_bytes:(32 * 1024) ~associativity:4
    ~write_miss:No_write_allocate ()

let paper_l1i =
  make ~name:"L1I" ~size_bytes:(32 * 1024) ~associativity:4
    ~write_miss:No_write_allocate ()

let paper_l2 =
  make ~name:"L2" ~size_bytes:(1024 * 1024) ~associativity:16
    ~write_miss:Write_allocate ()

let pp fmt t =
  Format.fprintf fmt "%s: %a %d-way, %dB lines, %s" t.name Nvsc_util.Units.pp_bytes
    t.size_bytes t.associativity t.line_bytes
    (match t.write_miss with
    | Write_allocate -> "write-allocate"
    | No_write_allocate -> "no-write-allocate")
