module Access = Nvsc_memtrace.Access
module Sink = Nvsc_memtrace.Sink

(* One shard of a set-partitioned cache hierarchy.

   The cache simulation factorizes exactly by set index: lookups,
   replacement and write-backs in one set never read or write another
   set's state, and the hierarchy's levels nest (both set counts are
   powers of two and the shard count divides both, so every line's L1 set
   and L2 set land in the same shard — [shard = line mod shards]).  A
   shard therefore owns the residue class [line ≡ sid (mod shards)],
   simulates its own private [Cache.t] pair over the subsequence of
   references that touch it, and ends with per-set state and counters
   identical to the serial [Hierarchy]'s for those sets.

   Instead of pushing memory traffic into a sink (whose order would
   interleave nondeterministically across shards), each shard records its
   events into flat int arrays tagged with a sort key that reconstructs
   the serial emission order:

     key = ((major lsl 20) lor mid) lsl 4 lor seq

   where [major] is the global reference index (or, during the drain,
   [total_refs + set] for L1 and [total_refs + l1_sets + set] for L2),
   [mid] is the line offset within the reference (or the dirty-way
   counter within the flushed set), and [seq] numbers the miss cascade's
   events (at most 5 per (major, mid): an L2 fill read, a write-back, and
   a forwarded write, on both the accessed line and the L1 victim).  Keys
   are strictly increasing within a shard and disjoint across shards, so
   a k-way min-merge (see [Nvsc_core.Shard]) replays the exact serial
   trace.

   The per-reference hot path is allocation-free: the memo and cascade
   mirror [Hierarchy.access_line] verbatim, and event recording is two
   unsafe int stores (amortized — growth doubles). *)

type t = {
  l1d : Cache.t;
  l2 : Cache.t;
  line_bytes : int;
  line_shift : int;
  l1_nsets : int;
  l2_nsets : int;
  shard_mask : int; (* shards - 1; shards is a power of two *)
  g_mask : int; (* min(l1_nsets, l2_nsets) - 1: the residue period *)
  (* Residue -> shard map.  Any function of [line mod (g_mask+1)] is a
     valid partition (it is constant on every L1 and L2 set, so shards
     still share no cache state, and the merged output is identical for
     every choice); the default is the identity block [r land
     shard_mask], and {!rebalance} replaces it with a load-balanced
     packing before any traffic flows. *)
  mutable assign : int array;
  sid : int;
  (* Same one-entry repeat-line memo as [Hierarchy]: within this shard's
     subsequence, the most recently touched line.  Skipped LRU refreshes
     stay sound under sharding because any access between two touches of
     a line that shares its set also shares its residue class — it runs
     on this same shard and retargets this same memo. *)
  mutable l1_repeat_line : int;
  mutable accesses : int;
  mutable memory_reads : int;
  mutable memory_writes : int;
  (* keyed event log *)
  mutable ev_key : int array;
  mutable ev_addr_op : int array; (* (byte addr lsl 1) lor write-bit *)
  mutable ev_n : int;
  (* current key context *)
  mutable cur_major : int;
  mutable cur_mid : int;
  mutable cur_seq : int;
  mutable cur_set : int; (* drain-time set tracker for the mid counter *)
}

let mid_limit = 1 lsl 20

let log2 n =
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 n

let shards_for ?(l1d = Cache_params.paper_l1d) ?(l2 = Cache_params.paper_l2)
    requested =
  let down_pow2 n =
    let rec go k = if 2 * k > n then k else go (2 * k) in
    if n <= 1 then 1 else go 1
  in
  let cap = min (Cache_params.sets l1d) (Cache_params.sets l2) in
  min (down_pow2 requested) cap

let create ?(l1d = Cache_params.paper_l1d) ?(l2 = Cache_params.paper_l2)
    ?(events_hint = 4096) ~shards ~shard () =
  if l1d.Cache_params.line_bytes <> l2.Cache_params.line_bytes then
    invalid_arg "Shard_filter.create: levels must share a line size";
  let line_bytes = l1d.Cache_params.line_bytes in
  if line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Shard_filter.create: line size must be a power of two";
  if shards <= 0 || shards land (shards - 1) <> 0 then
    invalid_arg "Shard_filter.create: shard count must be a power of two";
  let l1_nsets = Cache_params.sets l1d and l2_nsets = Cache_params.sets l2 in
  if l1_nsets mod shards <> 0 || l2_nsets mod shards <> 0 then
    invalid_arg "Shard_filter.create: shard count must divide both set counts";
  if shard < 0 || shard >= shards then
    invalid_arg "Shard_filter.create: shard index";
  {
    l1d = Cache.create l1d;
    l2 = Cache.create l2;
    line_bytes;
    line_shift = log2 line_bytes;
    l1_nsets;
    l2_nsets;
    shard_mask = shards - 1;
    g_mask = min l1_nsets l2_nsets - 1;
    assign =
      Array.init (min l1_nsets l2_nsets) (fun r -> r land (shards - 1));
    sid = shard;
    l1_repeat_line = min_int;
    accesses = 0;
    memory_reads = 0;
    memory_writes = 0;
    ev_key = Array.make (max 16 events_hint) 0;
    ev_addr_op = Array.make (max 16 events_hint) 0;
    ev_n = 0;
    cur_major = 0;
    cur_mid = 0;
    cur_seq = 0;
    cur_set = -1;
  }

let grow t =
  let cap = Array.length t.ev_key in
  let ev_key = Array.make (2 * cap) 0 in
  let ev_addr_op = Array.make (2 * cap) 0 in
  Array.blit t.ev_key 0 ev_key 0 cap;
  Array.blit t.ev_addr_op 0 ev_addr_op 0 cap;
  t.ev_key <- ev_key;
  t.ev_addr_op <- ev_addr_op

let[@inline] record t line ~is_write =
  if is_write then t.memory_writes <- t.memory_writes + 1
  else t.memory_reads <- t.memory_reads + 1;
  let i = t.ev_n in
  if i = Array.length t.ev_key then grow t;
  Array.unsafe_set t.ev_key i
    (((t.cur_major lsl 20) lor t.cur_mid) lsl 4 lor t.cur_seq);
  Array.unsafe_set t.ev_addr_op i
    (((line * t.line_bytes) lsl 1) lor (if is_write then 1 else 0));
  t.cur_seq <- t.cur_seq + 1;
  t.ev_n <- i + 1

let[@inline] mem_read t line = record t line ~is_write:false
let[@inline] mem_write t line = record t line ~is_write:true

(* The cascade below replicates [Hierarchy.l2_read]/[l2_write]/
   [access_line] exactly — same lookups, same memo discipline, same event
   emission order — with the sink pushes replaced by keyed records. *)
let l2_read t line =
  let e = Cache.read t.l2 ~line in
  if not (Cache.Effect.hit e) then begin
    if Cache.Effect.fills e then mem_read t line;
    if Cache.Effect.has_writeback e then
      mem_write t (Cache.Effect.writeback_line e)
  end

let l2_write t line =
  let e = Cache.write t.l2 ~line in
  if not (Cache.Effect.hit e) then begin
    if Cache.Effect.fills e then mem_read t line;
    if Cache.Effect.has_writeback e then
      mem_write t (Cache.Effect.writeback_line e);
    if Cache.Effect.forwards_write e then mem_write t line
  end

let[@inline] access_line t line op =
  t.accesses <- t.accesses + 1;
  if line = t.l1_repeat_line then begin
    match op with
    | Access.Read -> Cache.repeat_read_hit t.l1d
    | Access.Write -> Cache.repeat_write_hit t.l1d
  end
  else
    match op with
    | Access.Read ->
      let e = Cache.read t.l1d ~line in
      t.l1_repeat_line <- line;
      if not (Cache.Effect.hit e) then begin
        if Cache.Effect.fills e then l2_read t line;
        if Cache.Effect.has_writeback e then
          l2_write t (Cache.Effect.writeback_line e)
      end
    | Access.Write ->
      let e = Cache.write t.l1d ~line in
      if Cache.Effect.hit e then t.l1_repeat_line <- line
      else begin
        if Cache.Effect.forwards_write e then l2_write t line
        else begin
          t.l1_repeat_line <- line;
          if Cache.Effect.fills e then l2_read t line;
          if Cache.Effect.has_writeback e then
            l2_write t (Cache.Effect.writeback_line e)
        end
      end

(* Line-straddling references are the rare path (word-granular streams
   straddle at rate ~size/line); keeping it out of line keeps the
   skip-dominated consume loop tight. *)
let multi_line t ~idx ~first_line ~last_line op =
  if last_line - first_line >= mid_limit then
    invalid_arg "Shard_filter: reference spans too many lines";
  for line = first_line to last_line do
    if Array.unsafe_get t.assign (line land t.g_mask) = t.sid then begin
      t.cur_major <- idx;
      t.cur_mid <- line - first_line;
      t.cur_seq <- 0;
      access_line t line op
    end
  done

let[@inline] consume_one t ~idx ~addr ~size ~op =
  if addr < 0 then invalid_arg "Shard_filter: negative address";
  let first_line = addr lsr t.line_shift in
  let last_line = (addr + size - 1) lsr t.line_shift in
  if first_line = last_line then begin
    if Array.unsafe_get t.assign (first_line land t.g_mask) = t.sid then begin
      t.cur_major <- idx;
      t.cur_mid <- 0;
      t.cur_seq <- 0;
      access_line t first_line op
    end
  end
  else multi_line t ~idx ~first_line ~last_line op

(* Same accessor-hoisting idiom as [Hierarchy.consume]; [base] is the
   global index of record [first], threading the producer's reference
   numbering into the shard's sort keys. *)
let consume t batch ~first ~n ~base =
  Nvsc_obs.Span.with_ "cachesim.shard" @@ fun () ->
  if Sink.checks_enabled () then
    for i = first to first + n - 1 do
      consume_one t ~idx:(base + i - first) ~addr:(Sink.Batch.addr batch i)
        ~size:(Sink.Batch.size batch i) ~op:(Sink.Batch.op batch i)
    done
  else begin
    (* The loop is skip-dominated (a shard owns 1/k of the lines), so the
       reject path must stay minimal — two plane loads, two shifts, one
       predicted-not-taken branch.  The op plane is only read for owned
       references, and straddles (which may reach into this shard from a
       foreign first line) share the single rare branch. *)
    let addrs = Sink.Batch.addrs batch
    and sizes = Sink.Batch.sizes batch
    and ops = Sink.Batch.ops batch in
    let shift = t.line_shift
    and gm = t.g_mask
    and assign = t.assign
    and sid = t.sid in
    let off = base - first in
    for i = first to first + n - 1 do
      let addr = Bigarray.Array1.unsafe_get addrs i in
      let first_line = addr lsr shift in
      let last_line =
        (addr + Bigarray.Array1.unsafe_get sizes i - 1) lsr shift
      in
      if
        Array.unsafe_get assign (first_line land gm) = sid
        || first_line <> last_line
      then begin
        let op =
          if Bigarray.Array1.unsafe_get ops i <> '\000' then Access.Write
          else Access.Read
        in
        if first_line = last_line then begin
          (* memo hits emit no event — skip the dead key stores *)
          if first_line = t.l1_repeat_line then begin
            t.accesses <- t.accesses + 1;
            match op with
            | Access.Read -> Cache.repeat_read_hit t.l1d
            | Access.Write -> Cache.repeat_write_hit t.l1d
          end
          else begin
            t.cur_major <- off + i;
            t.cur_mid <- 0;
            t.cur_seq <- 0;
            access_line t first_line op
          end
        end
        else multi_line t ~idx:(off + i) ~first_line ~last_line op
      end
    done
  end

(* Producer-side fan-out scan (one pass, width-independent cost): the
   O(n) ownership test runs once on the generating domain — overlapped
   with generation in the live pipeline — so each worker only ever
   touches its own references instead of re-scanning the whole stream
   (which would bound scaling by the skip cost, not the simulate cost).

   Selection entries are packed, not bare indices: the common case (a
   single-line reference whose line and batch position fit the field
   widths) carries everything the worker's hot path needs.  The low two
   bits are the entry tag:

     entry = (line lsl 27) lor (write lsl 26) lor (i lsl 2)      tag 0
     entry = (i lsl 2) lor 1                                     tag 1
     entry = (line lsl 27) lor (i lsl 2) lor 2                   tag 2
       .. followed by one tail word (writes lsl 24) lor count

   so the worker reads ONE dense, prefetch-friendly int per owned
   reference instead of gathering from three batch planes.  Tag 1 (a
   straddling reference, or the rare field overflow) sends the worker
   back to the batch; a straddle is listed for every shard its line
   span touches and [consume_selected] re-derives the owned lines.

   Tag 2 is a coalesced line run, detected during this same scan: a
   READ anchor plus [count] immediately following single-line
   references to the same line ([writes] of them writes), with no other
   reference of this shard in between.  The worker processes the anchor
   normally — a read always leaves the repeat-line memo targeting its
   line — and then applies the whole tail as two bulk repeat-hit
   counter updates ([Cache.repeat_read_hits]/[repeat_write_hits]): each
   tail reference is a memo hit by construction, so this is exactly the
   serial repeat path applied [count] times, byte-identical stats and
   events.  Only reads may anchor (a no-write-allocate write miss
   forwards without retargeting the memo, so a write anchor's tail
   would not be guaranteed memo hits); writes still join tails. *)
let sel_idx_bits = 24
let sel_line_shift = sel_idx_bits + 3
let sel_op_bit = 1 lsl (sel_idx_bits + 2)
let sel_idx_mask = (1 lsl sel_idx_bits) - 1
let sel_max_line = (max_int lsr sel_line_shift) - 1

let partition t batch ~first ~n ~index_bufs ~counts =
  Sink.Batch.check_slice batch ~first ~n;
  let k = t.shard_mask + 1 in
  if Array.length index_bufs < k || Array.length counts < k then
    invalid_arg "Shard_filter.partition: buffers narrower than the team";
  Array.fill counts 0 k 0;
  let shift = t.line_shift and gm = t.g_mask and assign = t.assign in
  let push s e =
    let c = Array.unsafe_get counts s in
    Array.unsafe_set (Array.unsafe_get index_bufs s) c e;
    Array.unsafe_set counts s (c + 1)
  in
  (* Per-shard run detector state: while [run_line.(s) >= 0], the entry
     at [run_pos.(s)] in shard [s]'s buffer is a READ of that line, and
     [run_len.(s)] following same-line references ([run_writes.(s)] of
     them writes) have been suppressed instead of pushed.  Any other push
     to [s] closes the run first, so a closed run's tail word is pushed
     immediately after its anchor — adjacency the worker relies on. *)
  let run_line = Array.make k min_int in
  let run_pos = Array.make k 0 in
  let run_len = Array.make k 0 in
  let run_writes = Array.make k 0 in
  let close s =
    if Array.unsafe_get run_line s >= 0 then begin
      let len = Array.unsafe_get run_len s in
      if len > 0 then begin
        let buf = Array.unsafe_get index_bufs s in
        let pos = Array.unsafe_get run_pos s in
        (* upgrade the anchor in place: tag 0 -> tag 2 *)
        Array.unsafe_set buf pos (Array.unsafe_get buf pos lor 2);
        push s ((Array.unsafe_get run_writes s lsl sel_idx_bits) lor len);
        Array.unsafe_set run_len s 0;
        Array.unsafe_set run_writes s 0
      end;
      Array.unsafe_set run_line s min_int
    end
  in
  (* A packed single-line reference: extend shard [s]'s open run, or
     close it and push a fresh entry (which anchors a new run iff it is
     a read). *)
  let single s line w i_rel =
    if Array.unsafe_get run_line s = line then begin
      Array.unsafe_set run_len s (Array.unsafe_get run_len s + 1);
      Array.unsafe_set run_writes s (Array.unsafe_get run_writes s + w)
    end
    else begin
      close s;
      let pos = Array.unsafe_get counts s in
      push s
        ((line lsl sel_line_shift)
        lor (w lsl (sel_idx_bits + 2))
        lor (i_rel lsl 2));
      if w = 0 then begin
        Array.unsafe_set run_line s line;
        Array.unsafe_set run_pos s pos
      end
    end
  in
  (* straddle dedup scratch: a line span may revisit a shard (the
     residue -> shard map is arbitrary), but each touched shard must be
     listed once — the worker re-derives ALL its owned lines *)
  let marker = Array.make k (-1) in
  let push_straddle ~first_line ~last_line i =
    (* residues repeat with period g, so the first g lines cover every
       shard the span can touch *)
    for line = first_line to min last_line (first_line + gm) do
      let s = Array.unsafe_get assign (line land gm) in
      if Array.unsafe_get marker s <> i then begin
        Array.unsafe_set marker s i;
        close s;
        push s ((i lsl 2) lor 1)
      end
    done
  in
  let fits_packed = n <= 1 lsl sel_idx_bits in
  if Sink.checks_enabled () then
    for i = first to first + n - 1 do
      let addr = Sink.Batch.addr batch i in
      let first_line = addr lsr shift in
      let last_line = (addr + Sink.Batch.size batch i - 1) lsr shift in
      if first_line = last_line then
        if fits_packed && first_line <= sel_max_line then
          let w =
            match Sink.Batch.op batch i with
            | Access.Read -> 0
            | Access.Write -> 1
          in
          single
            (Array.unsafe_get assign (first_line land gm))
            first_line w (i - first)
        else begin
          let s = Array.unsafe_get assign (first_line land gm) in
          close s;
          push s ((i lsl 2) lor 1)
        end
      else push_straddle ~first_line ~last_line i
    done
  else begin
    let addrs = Sink.Batch.addrs batch
    and sizes = Sink.Batch.sizes batch
    and ops = Sink.Batch.ops batch in
    for i = first to first + n - 1 do
      let addr = Bigarray.Array1.unsafe_get addrs i in
      let first_line = addr lsr shift in
      let last_line =
        (addr + Bigarray.Array1.unsafe_get sizes i - 1) lsr shift
      in
      if first_line = last_line then
        if fits_packed && first_line <= sel_max_line then
          let w =
            if Bigarray.Array1.unsafe_get ops i = '\000' then 0 else 1
          in
          single
            (Array.unsafe_get assign (first_line land gm))
            first_line w (i - first)
        else begin
          let s = Array.unsafe_get assign (first_line land gm) in
          close s;
          push s ((i lsl 2) lor 1)
        end
      else push_straddle ~first_line ~last_line i
    done
  end;
  for s = 0 to k - 1 do
    close s
  done

(* First-flush load balancing.  Count balance is the wrong objective:
   a residue dominated by repeated touches of one line costs a couple
   of nanoseconds per reference (repeat-line memo hit), while a residue
   of churning lines pays full lookup-and-miss cascades — so packing by
   reference count alone can still leave one shard with most of the
   *time*.  Weight each residue by an execution-cost estimate from the
   sampled slice — [count + 16 * transitions], a line transition being
   the proxy for a lookup that misses the memo (with run coalescing the
   suppressed repeat references cost O(1) per run on the worker, so the
   transition term dominates even more heavily than the bare memo-hit
   ratio; only the ratio matters) — then LPT-pack residues onto
   shards: heaviest residue first, each
   onto the currently lightest shard.  Deterministic (ties break toward
   the lower residue and lower shard), and output-invariant: the
   merged trace and summed counters are identical for every valid
   assignment, so rebalancing can never change a result, only the
   wall-clock balance. *)
let rebalance filters batch ~first ~n =
  let k = Array.length filters in
  if k = 0 then invalid_arg "Shard_filter.rebalance: empty team";
  let t0 = filters.(0) in
  if k <> t0.shard_mask + 1 then
    invalid_arg "Shard_filter.rebalance: team width mismatch";
  Array.iter
    (fun f ->
      if f.accesses > 0 || f.ev_n > 0 then
        invalid_arg "Shard_filter.rebalance: traffic already flowed")
    filters;
  Sink.Batch.check_slice batch ~first ~n;
  let g = t0.g_mask + 1 in
  let count = Array.make g 0 and trans = Array.make g 0 in
  let last_line = Array.make g (-1) in
  let shift = t0.line_shift and gm = t0.g_mask in
  for i = first to first + n - 1 do
    let addr = Sink.Batch.addr batch i in
    let line = addr lsr shift in
    (* straddles are rare and count toward their first residue only *)
    let r = line land gm in
    count.(r) <- count.(r) + 1;
    if last_line.(r) <> line then begin
      last_line.(r) <- line;
      trans.(r) <- trans.(r) + 1
    end
  done;
  let order = Array.init g Fun.id in
  let weight r = count.(r) + (16 * trans.(r)) in
  Array.sort
    (fun a b ->
      match compare (weight b) (weight a) with 0 -> compare a b | c -> c)
    order;
  let load = Array.make k 0 in
  let assign = Array.make g 0 in
  Array.iter
    (fun r ->
      let lightest = ref 0 in
      for s = 1 to k - 1 do
        if load.(s) < load.(!lightest) then lightest := s
      done;
      assign.(r) <- !lightest;
      load.(!lightest) <- load.(!lightest) + weight r)
    order;
  Array.iter (fun f -> f.assign <- assign) filters

let assignment t = t.assign

let use_assignment t assign =
  if t.accesses > 0 || t.ev_n > 0 then
    invalid_arg "Shard_filter.use_assignment: traffic already flowed";
  if Array.length assign <> t.g_mask + 1 then
    invalid_arg "Shard_filter.use_assignment: wrong residue period";
  Array.iter
    (fun s ->
      if s < 0 || s > t.shard_mask then
        invalid_arg "Shard_filter.use_assignment: shard out of range")
    assign;
  t.assign <- assign

(* Worker-side filtering over a pre-selected entry list: the cost is
   proportional to this shard's own traffic, not the stream length, and
   the dominant path (packed single-line entry hitting the repeat-line
   memo) touches no batch plane at all — one sequential int load. *)
let[@inline] apply_run_tail t tail =
  let cnt = tail land sel_idx_mask in
  let wr = tail lsr sel_idx_bits in
  t.accesses <- t.accesses + cnt;
  Cache.repeat_read_hits t.l1d (cnt - wr);
  Cache.repeat_write_hits t.l1d wr

let consume_selected t batch ~idxs ~m ~first ~base =
  Nvsc_obs.Span.with_ "cachesim.shard" @@ fun () ->
  let off = base - first in
  if Sink.checks_enabled () then begin
    let j = ref 0 in
    while !j < m do
      let e = Array.unsafe_get idxs !j in
      incr j;
      match e land 3 with
      | 1 ->
        let i = e lsr 2 in
        consume_one t ~idx:(off + i) ~addr:(Sink.Batch.addr batch i)
          ~size:(Sink.Batch.size batch i) ~op:(Sink.Batch.op batch i)
      | tag ->
        let line = e lsr sel_line_shift in
        t.cur_major <- base + ((e lsr 2) land sel_idx_mask);
        t.cur_mid <- 0;
        t.cur_seq <- 0;
        access_line t line
          (if e land sel_op_bit <> 0 then Access.Write else Access.Read);
        if tag = 2 then begin
          (* run anchor: the read above left the memo on [line]; the tail
             word bulk-applies the coalesced repeat hits *)
          apply_run_tail t (Array.unsafe_get idxs !j);
          incr j
        end
    done
  end
  else begin
    let addrs = Sink.Batch.addrs batch
    and sizes = Sink.Batch.sizes batch
    and ops = Sink.Batch.ops batch in
    let shift = t.line_shift in
    let j = ref 0 in
    while !j < m do
      let e = Array.unsafe_get idxs !j in
      incr j;
      let tag = e land 3 in
      if tag <> 1 then begin
        (* packed single-line entry, owned by construction.  Take the
           repeat-line memo hit before touching the key context: a memo
           hit can emit no event, so the three key stores would be
           dead — and on a traffic-concentrated shard this path
           dominates. *)
        let line = e lsr sel_line_shift in
        if line = t.l1_repeat_line then begin
          t.accesses <- t.accesses + 1;
          if e land sel_op_bit <> 0 then Cache.repeat_write_hit t.l1d
          else Cache.repeat_read_hit t.l1d
        end
        else begin
          t.cur_major <- base + ((e lsr 2) land sel_idx_mask);
          t.cur_mid <- 0;
          t.cur_seq <- 0;
          access_line t line
            (if e land sel_op_bit <> 0 then Access.Write else Access.Read)
        end;
        if tag = 2 then begin
          (* run anchor: whether the read above was a memo hit or a full
             lookup, the memo now targets [line] — bulk-apply the tail *)
          apply_run_tail t (Array.unsafe_get idxs !j);
          incr j
        end
      end
      else begin
        (* straddle, or packed-field overflow: gather from the batch *)
        let i = e lsr 2 in
        let addr = Bigarray.Array1.unsafe_get addrs i in
        let first_line = addr lsr shift in
        let last_line =
          (addr + Bigarray.Array1.unsafe_get sizes i - 1) lsr shift
        in
        let op =
          if Bigarray.Array1.unsafe_get ops i <> '\000' then Access.Write
          else Access.Read
        in
        if first_line = last_line then begin
          t.cur_major <- off + i;
          t.cur_mid <- 0;
          t.cur_seq <- 0;
          access_line t first_line op
        end
        else multi_line t ~idx:(off + i) ~first_line ~last_line op
      end
    done
  end

(* End-of-trace drain, keyed to splice into the serial drain order:
   serial [Hierarchy.drain] walks L1 sets in ascending order (ways in
   ascending order within each set) flushing dirty lines into L2, then
   walks L2 the same way flushing to memory.  The shard's caches hold
   exactly the serial caches' contents for its sets, so replaying its own
   flush with [major = base + set] (then [base + l1_sets + set]) and
   [mid] counting dirty ways within the set reproduces the serial
   subsequence; sets are disjoint across shards, so the merge
   interleaves them back in ascending set order. *)
let drain t ~base =
  Nvsc_obs.Span.with_ "cachesim.shard-drain" @@ fun () ->
  let l1_set_mask = t.l1_nsets - 1 and l2_set_mask = t.l2_nsets - 1 in
  t.cur_set <- -1;
  Cache.flush_dirty t.l1d (fun line ->
      let s = line land l1_set_mask in
      if s = t.cur_set then t.cur_mid <- t.cur_mid + 1
      else begin
        t.cur_set <- s;
        t.cur_mid <- 0
      end;
      t.cur_major <- base + s;
      t.cur_seq <- 0;
      l2_write t line);
  t.cur_set <- -1;
  Cache.flush_dirty t.l2 (fun line ->
      let s = line land l2_set_mask in
      if s = t.cur_set then t.cur_mid <- t.cur_mid + 1
      else begin
        t.cur_set <- s;
        t.cur_mid <- 0
      end;
      t.cur_major <- base + t.l1_nsets + s;
      t.cur_seq <- 0;
      mem_write t line)

let l1d t = t.l1d
let l2 t = t.l2
let line_bytes t = t.line_bytes
let accesses t = t.accesses
let memory_reads t = t.memory_reads
let memory_writes t = t.memory_writes
let raw_events t = (t.ev_key, t.ev_addr_op, t.ev_n)
