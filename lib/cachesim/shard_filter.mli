(** One shard of a set-partitioned cache hierarchy.

    The filter stage factorizes exactly by set index: a shard owns the
    residue class of lines [line ≡ shard (mod shards)] (which is a union
    of whole L1 {e and} L2 sets whenever [shards] divides both set
    counts), simulates a private {!Cache.t} pair over just those lines,
    and records the memory traffic it induces into a keyed event log.
    Running k shards over the same reference stream and merging their
    logs by key ([Nvsc_core.Shard]) reproduces the serial {!Hierarchy}
    byte for byte — counters, evictions, and trace order.

    All state is shard-private: k shards over one shared (Bigarray-backed,
    domain-shareable) batch run without synchronisation.  The
    per-reference hot path performs zero heap allocations. *)

type t

val shards_for :
  ?l1d:Cache_params.t -> ?l2:Cache_params.t -> int -> int
(** Largest power of two ≤ the requested shard count that divides both
    levels' set counts (≥ 1) — the effective team width for a geometry. *)

val create :
  ?l1d:Cache_params.t ->
  ?l2:Cache_params.t ->
  ?events_hint:int ->
  shards:int ->
  shard:int ->
  unit ->
  t
(** One shard of a [shards]-way partition.  [shards] must be a power of
    two dividing both set counts; [shard] is this shard's residue.
    [events_hint] pre-sizes the event log (it grows by doubling). *)

val consume :
  t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> base:int -> unit
(** Filter a delivered batch slice, keeping only this shard's lines.
    [base] is the global index of record [first] in the experiment's
    reference stream — it keys the event log so shards' logs merge back
    into serial order. *)

val partition :
  t ->
  Nvsc_memtrace.Sink.Batch.t ->
  first:int ->
  n:int ->
  index_bufs:int array array ->
  counts:int array ->
  unit
(** Producer-side fan-out: scan the slice once and write into
    [index_bufs.(s)] packed selection entries (opaque ints: the common
    case carries line, op and batch position so the worker's hot path
    never gathers from the batch planes) for the references that touch
    shard [s]; [counts.(s)] receives each list's length.  Geometry is
    taken from [t] (any shard of the team may be passed).  Each buffer
    must hold at least [n] entries; a straddling reference is listed for
    every shard its line span touches, so each worker can consume its
    list with {!consume_selected} instead of re-scanning the stream.
    Entries are only meaningful for the same (batch, first, base)
    triple they were built from. *)

val consume_selected :
  t ->
  Nvsc_memtrace.Sink.Batch.t ->
  idxs:int array ->
  m:int ->
  first:int ->
  base:int ->
  unit
(** Filter only the pre-selected entries [idxs.(0..m-1)], as produced
    by {!partition} for this shard over the same slice.  [first] and
    [base] mean the same as in {!consume}: record [first] of the slice
    has global stream index [base].  Work is proportional to this
    shard's own traffic, not the stream length. *)

val rebalance :
  t array -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** First-flush load balancing: replace the team's default residue ->
    shard map with an LPT packing weighted by an execution-cost
    estimate sampled from the given slice (reference count plus
    line-transition churn per residue class).  Must be called on the
    whole team before any traffic flows ([Invalid_argument] otherwise).
    Output-invariant: the merged trace and summed counters are
    byte-identical for every valid assignment — only the wall-clock
    balance across shards changes. *)

val assignment : t -> int array
(** The residue -> shard map in force (shared by the team). *)

val use_assignment : t -> int array -> unit
(** Adopt an assignment from another filter of an identically-shaped
    team (e.g. a fresh filter joining after {!rebalance}).  Only valid
    before any traffic has flowed through [t]. *)

val drain : t -> base:int -> unit
(** End-of-trace write-back drain, keyed with [base] = the total number
    of references in the stream. *)

val l1d : t -> Cache.t
val l2 : t -> Cache.t
val line_bytes : t -> int
val accesses : t -> int
val memory_reads : t -> int
val memory_writes : t -> int

val raw_events : t -> int array * int array * int
(** [(keys, addr_ops, n)]: the first [n] entries of the keyed event log.
    [keys.(i)] is strictly increasing; [addr_ops.(i)] packs
    [(byte_addr lsl 1) lor write_bit].  Consumed by the merge. *)
