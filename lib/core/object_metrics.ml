module Ctx = Nvsc_appkit.Ctx
module Counters = Nvsc_memtrace.Counters
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Stats = Nvsc_util.Stats

type t = {
  obj : Mem_object.t;
  reads : int;
  writes : int;
  rw_ratio : float;
  ref_share : float;
  per_iter_reads : int array;
  per_iter_writes : int array;
  iterations_used : int;
  touched_outside_main : bool;
}

let size_bytes t = t.obj.Mem_object.size

let is_read_only t = t.reads > 0 && t.writes = 0

let is_untouched_in_main t = t.reads = 0 && t.writes = 0

let per_iter_ratio t ~iter =
  if iter < 1 || iter > Array.length t.per_iter_reads then 0.
  else Stats.ratio t.per_iter_reads.(iter - 1) t.per_iter_writes.(iter - 1)

let per_iter_refs t ~iter =
  if iter < 1 || iter > Array.length t.per_iter_reads then 0
  else t.per_iter_reads.(iter - 1) + t.per_iter_writes.(iter - 1)

let suitability_metrics t =
  {
    Nvsc_nvram.Suitability.reads = t.reads;
    writes = t.writes;
    size_bytes = size_bytes t;
    ref_rate = t.ref_share;
  }

let total_main_refs_of counters ~iterations =
  List.fold_left
    (fun acc obj_id ->
      let per_obj = ref 0 in
      for iter = 1 to iterations do
        per_obj :=
          !per_obj
          + Counters.reads counters ~obj_id ~iter
          + Counters.writes counters ~obj_id ~iter
      done;
      acc + !per_obj)
    0
    (Counters.tracked_objects counters)

let total_main_refs ctx ~iterations =
  total_main_refs_of (Ctx.counters ctx) ~iterations

let of_object counters ~iterations ~total_refs obj =
  let obj_id = obj.Mem_object.id in
  let per_iter_reads =
    Array.init iterations (fun i -> Counters.reads counters ~obj_id ~iter:(i + 1))
  in
  let per_iter_writes =
    Array.init iterations (fun i -> Counters.writes counters ~obj_id ~iter:(i + 1))
  in
  let reads = Array.fold_left ( + ) 0 per_iter_reads in
  let writes = Array.fold_left ( + ) 0 per_iter_writes in
  let iterations_used =
    let n = ref 0 in
    for i = 0 to iterations - 1 do
      if per_iter_reads.(i) + per_iter_writes.(i) > 0 then incr n
    done;
    !n
  in
  let touched_outside_main =
    Counters.reads counters ~obj_id ~iter:0
    + Counters.writes counters ~obj_id ~iter:0
    > 0
  in
  {
    obj;
    reads;
    writes;
    rw_ratio = Stats.ratio reads writes;
    ref_share =
      (if total_refs = 0 then 0.
       else float_of_int (reads + writes) /. float_of_int total_refs);
    per_iter_reads;
    per_iter_writes;
    iterations_used;
    touched_outside_main;
  }

let collect_of ~counters ~objects ~iterations =
  if iterations < 1 then invalid_arg "Object_metrics.collect: iterations";
  let total_refs = total_main_refs_of counters ~iterations in
  List.map (of_object counters ~iterations ~total_refs) objects

let collect ctx ~iterations =
  let globals_and_heap = Object_registry.objects (Ctx.registry ctx) in
  let stack = Ctx.stack_objects ctx in
  collect_of ~counters:(Ctx.counters ctx)
    ~objects:(globals_and_heap @ stack)
    ~iterations
