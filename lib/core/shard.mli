(** In-run shard team: parallel set-partitioned cache filtering inside a
    single [Scavenger.run].

    The cache simulation factorizes exactly by set index
    ({!Nvsc_cachesim.Shard_filter}), so a team of k worker domains — each
    owning the residue class [line ≡ i (mod k)] — can filter one
    reference stream concurrently and still produce byte-identical
    output: per-shard counters merge as order-independent sums, and the
    keyed event logs merge back into the exact serial memory-trace order.

    Data flow: the generating domain hands each filled emission batch to
    the team by reference ({!feed} fans a descriptor out to k bounded
    SPSC rings; the Bigarray-backed batch itself is shared, not copied)
    and immediately receives a recycled batch to keep emitting into
    ({!exchange}, wired as the context's batch-exchange hook) — so trace
    generation overlaps with filtering.  Workers ride the shared
    {!Nvsc_team.Pool} submit/await lifecycle.

    All functions in this interface must be called from the producing
    domain. *)

type t

val effective_shards :
  ?l1d:Nvsc_cachesim.Cache_params.t ->
  ?l2:Nvsc_cachesim.Cache_params.t ->
  int ->
  int
(** Largest usable team width ≤ the request: a power of two dividing
    both levels' set counts (1 for requests ≤ 1). *)

val create :
  ?l1d:Nvsc_cachesim.Cache_params.t ->
  ?l2:Nvsc_cachesim.Cache_params.t ->
  ?events_hint:int ->
  shards:int ->
  batch_capacity:int ->
  unit ->
  t
(** Spawn a team of [shards ≥ 2] worker domains (validated as for
    {!effective_shards}) whose recycled batches have [batch_capacity] —
    which must equal the feeding context's emission-batch capacity. *)

val feed : t -> Nvsc_memtrace.Sink.Batch.t -> first:int -> n:int -> unit
(** Hand one delivered batch slice to every shard by reference.  Call at
    most once per flush (the scavenger's [cache-hierarchy] sink); the
    batch must be the producer's current emission batch and must not be
    written again until {!exchange} returns its replacement. *)

val exchange : t -> Nvsc_memtrace.Sink.Batch.t -> Nvsc_memtrace.Sink.Batch.t
(** The context's batch-exchange hook: if the flush just fed the batch to
    the team, keep it and return a recycled one (blocking while all spare
    batches are still being filtered — the pipeline's backpressure);
    otherwise return the batch unchanged. *)

val fed : t -> int
(** Total references fed so far. *)

val finish : t -> unit
(** End of stream: sentinel every ring, await every worker, drain each
    shard's caches (keyed), and shut the pool down.  Re-raises the first
    worker failure, if any.  Idempotent. *)

val merge_into_trace : t -> Nvsc_memtrace.Trace_log.t -> unit
(** Deterministic k-way merge of the shards' keyed event logs into a
    trace log — the exact sequence the serial hierarchy would have pushed
    (call after {!finish}). *)

(** {1 Merged statistics} (order-independent sums; call after {!finish}) *)

val accesses : t -> int
val memory_reads : t -> int
val memory_writes : t -> int

val l1_miss_rate : t -> float
val l2_miss_rate : t -> float
(** Summed integer hit/miss counters through the same float division as
    [Cache.miss_rate] — bit-identical to the serial result. *)

val l1_evictions : t -> int
val l2_evictions : t -> int

val shards : t -> int
val filters : t -> Nvsc_cachesim.Shard_filter.t array

val ring_stats : t -> Nvsc_team.Ring.stats array
(** Per-shard transport pressure (pushes and blocked push/pop counts). *)

val slot_waits : t -> int
(** Exchanges where the producer blocked for a recycled batch (every slot
    in flight) — the pipeline's backpressure stalls. *)

val export_metrics : t -> unit
(** Accumulate {!ring_stats} and {!slot_waits} into the obs metrics
    registry ([cache.team.ring.*], [cache.team.slot.waits]) so [--profile]
    and the daemon's [client stats] surface transport pressure. *)
