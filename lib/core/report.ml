module Table = Nvsc_util.Table
module Technology = Nvsc_nvram.Technology

let paper_table5 =
  [
    ("nek5000", (6.33, 0.756));
    ("cam", (20.39, 0.763));
    ("gtc", (3.48, 0.443));
    ("s3d", (6.04, 0.631));
  ]

let paper_table6 =
  [
    ("nek5000", [ 0.688; 0.706; 0.711 ]);
    ("cam", [ 0.686; 0.699; 0.701 ]);
    ("gtc", [ 0.687; 0.708; 0.718 ]);
    ("s3d", [ 0.686; 0.711; 0.730 ]);
  ]

let section buf title = Buffer.add_string buf (Printf.sprintf "## %s\n\n" title)

let add_table buf t =
  Buffer.add_string buf (Table.to_markdown t);
  Buffer.add_char buf '\n'

let markdown_of_data (data : Experiment.data) =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf "# NV-Scavenger evaluation report\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "Configuration: scale %g, %d main-loop iterations, figure-12 scale \
        %g.\n\n"
       data.data_config.Experiment.scale
       data.data_config.Experiment.iterations
       data.data_config.Experiment.perf_scale);

  section buf "Table I — application characteristics";
  let t =
    Table.create
      [
        ("Application", Table.Left);
        ("Description", Table.Left);
        ("Footprint (scaled)", Table.Right);
        ("Paper footprint", Table.Right);
      ]
  in
  List.iter
    (fun (r : Experiment.table1_row) ->
      Table.add_row t
        [
          r.app_name;
          r.description;
          Table.cell_bytes r.footprint_bytes;
          Printf.sprintf "%.0fMB" r.paper_footprint_mb;
        ])
    data.rows;
  add_table buf t;

  section buf "Table V — stack data analysis (paper value in brackets)";
  let t =
    Table.create
      [
        ("Application", Table.Left);
        ("R/W ratio", Table.Right);
        ("First iteration", Table.Right);
        ("Stack reference %", Table.Right);
      ]
  in
  List.iter
    (fun (s : Stack_analysis.summary) ->
      let paper_ratio, paper_pct =
        match List.assoc_opt s.app_name paper_table5 with
        | Some v -> v
        | None -> (Float.nan, Float.nan)
      in
      Table.add_row t
        [
          s.app_name;
          Printf.sprintf "%.2f [%.2f]" s.steady_ratio paper_ratio;
          Table.cell_f s.first_iter_ratio;
          Printf.sprintf "%s [%.1f%%]"
            (Table.cell_pct s.reference_pct)
            (100. *. paper_pct);
        ])
    data.summaries;
  add_table buf t;

  section buf "Figures 3–6 — object aggregates";
  let t =
    Table.create
      [
        ("Application", Table.Left);
        ("Objects", Table.Right);
        ("Read-only", Table.Right);
        ("Ratio > 50 (written)", Table.Right);
        ("Ratio > 1", Table.Right);
        ("NVRAM-suitable (cat. 2)", Table.Right);
      ]
  in
  List.iter
    (fun (r : Object_analysis.report) ->
      Table.add_row t
        [
          r.app_name;
          Table.cell_i (List.length r.rows);
          Table.cell_pct r.read_only_fraction;
          Table.cell_bytes r.ratio_gt_50_bytes;
          Table.cell_pct r.ratio_gt_1_fraction;
          Table.cell_pct r.nvram_friendly_fraction;
        ])
    data.reports;
  add_table buf t;

  section buf "Figure 7 — data untouched by the main loop";
  let t =
    Table.create
      [ ("Application", Table.Left); ("Untouched fraction", Table.Right) ]
  in
  List.iter
    (fun (app, fraction) ->
      Table.add_row t [ app; Table.cell_pct fraction ])
    data.untouched;
  add_table buf t;

  section buf "Figures 8–11 — per-iteration stability";
  let t =
    Table.create
      [
        ("Application", Table.Left);
        ("Objects", Table.Right);
        ("Mean fraction in [1,2)", Table.Right);
      ]
  in
  List.iter
    (fun (app, v) ->
      Table.add_row t
        [
          app;
          Table.cell_i v.Usage_variance.objects_considered;
          Table.cell_f (Usage_variance.stable_fraction v);
        ])
    data.variances;
  add_table buf t;

  section buf "Table VI — normalized average power (paper value in brackets)";
  let t =
    Table.create
      ([ ("Application", Table.Left) ]
      @ List.map
          (fun (tech : Technology.t) -> (tech.name, Table.Right))
          Technology.paper_set)
  in
  List.iter
    (fun (app, powers) ->
      let paper = List.assoc_opt app paper_table6 in
      let cells =
        List.mapi
          (fun i ((tech : Technology.t), p) ->
            if tech.tech = Technology.DDR3 then Table.cell_f ~prec:3 p
            else
              match paper with
              | Some values when i - 1 < List.length values ->
                Printf.sprintf "%.3f [%.3f]" p (List.nth values (i - 1))
              | _ -> Table.cell_f ~prec:3 p)
          powers
      in
      Table.add_row t (app :: cells))
    data.powers;
  add_table buf t;

  section buf "Figure 12 — normalized runtime vs memory latency";
  let t =
    Table.create
      ([ ("Application", Table.Left) ]
      @ List.map
          (fun (tech : Technology.t) ->
            ( Printf.sprintf "%s (%.0fns)" tech.name tech.perf_sim_latency_ns,
              Table.Right ))
          Technology.paper_set)
  in
  List.iter
    (fun (app, points) ->
      Table.add_row t
        (app
        :: List.map
             (fun (p : Experiment.fig12_cell) ->
               Table.cell_f ~prec:3 p.normalized_runtime)
             points))
    data.perf;
  add_table buf t;

  section buf "Reference-stream transport (pipeline counters)";
  let t =
    Table.create
      [
        ("Application", Table.Left);
        ("Batch capacity", Table.Right);
        ("References", Table.Right);
        ("Batches", Table.Right);
        ("Capacity flushes", Table.Right);
        ("Boundary flushes", Table.Right);
        ("Sinks (pushed/batches)", Table.Left);
      ]
  in
  List.iter
    (fun (app, (p : Nvsc_appkit.Ctx.pipeline_stats)) ->
      Table.add_row t
        [
          app;
          Table.cell_i p.Nvsc_appkit.Ctx.batch_capacity;
          Table.cell_i p.Nvsc_appkit.Ctx.refs;
          Table.cell_i p.Nvsc_appkit.Ctx.batches;
          Table.cell_i p.Nvsc_appkit.Ctx.capacity_flushes;
          Table.cell_i p.Nvsc_appkit.Ctx.boundary_flushes;
          String.concat ", "
            (List.map
               (fun (s : Nvsc_memtrace.Sink.stats) ->
                 Printf.sprintf "%s %d/%d" s.Nvsc_memtrace.Sink.name
                   s.Nvsc_memtrace.Sink.pushed s.Nvsc_memtrace.Sink.batches)
               p.Nvsc_appkit.Ctx.sinks);
        ])
    data.pipelines;
  add_table buf t;
  Buffer.contents buf

let markdown_of_bundle bundle =
  markdown_of_data (Experiment.data_of_bundle bundle)

let markdown ?config () =
  markdown_of_bundle (Experiment.collect ?config ())
