(** Record-once / analyze-many: the NVT trace endpoints.

    {!record} runs a mini-application once and serializes its raw emission
    stream — every reference with emission-time attribution, instruction
    counts, phase markers — to an [.nvt] file
    ({!Nvsc_memtrace.Trace_codec}).  {!replay} streams such a file back
    through the same analysis pipeline {!Scavenger.run} drives live (cache
    hierarchy, per-object counters, fast tallies) one chunk at a time,
    producing a {!Scavenger.result} whose rendered reports are
    byte-identical to the live run's — without re-executing the
    application, and with peak memory bounded by the chunk size.

    All functions raise {!Nvsc_memtrace.Trace_codec.Error} on a damaged or
    foreign trace file. *)

val record :
  ?batch_capacity:int ->
  ?chunk_capacity:int ->
  scale:float ->
  iterations:int ->
  path:string ->
  (module Nvsc_apps.Workload.APP) ->
  Nvsc_memtrace.Trace_codec.summary
(** Run the application at [scale] for [iterations] main-loop iterations,
    writing its reference stream to [path].  [chunk_capacity] bounds
    references per chunk (default {!Nvsc_memtrace.Sink.default_capacity});
    recording is out-of-core — chunks hit the disk as they fill.  On any
    exception the partial file is left unreadable (no trailer) and the
    exception re-raised. *)

val replay :
  ?reader:Nvsc_memtrace.Trace_codec.io_mode -> string -> Scavenger.result
(** Stream the trace at [path] through attribution counters, fast tallies
    and the cache hierarchy (main-loop phases only, as live), rebuilding
    the full result — metrics come from the trace's final object tables,
    the main-memory trace from the cache filter.  Replay never
    materializes more than one chunk of references.  [reader] (default
    [Auto]) selects the chunk I/O path — mmap-fed or buffered; the result
    is byte-identical either way. *)

val perf_replay :
  ?reader:Nvsc_memtrace.Trace_codec.io_mode ->
  string ->
  Nvsc_cpusim.Perf_model.t ->
  unit
(** Feed the trace's main-loop references and instruction counts to a
    performance model — the trace-driven counterpart of
    {!Experiment.perf_replay}, for {!Nvsc_cpusim.Sensitivity.run}'s
    [~replay].  Byte-identical to live perf reports when the trace was
    recorded with [iterations = 1] at the perf scale.  Re-opens the trace
    on each call (the sensitivity sweep replays once per technology). *)

val info : string -> Nvsc_memtrace.Trace_codec.meta * string
(** Header/trailer-only peek: the trace's recording metadata and content
    digest (hex), without streaming any chunk. *)
