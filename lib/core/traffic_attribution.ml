module Access = Nvsc_memtrace.Access
module Mem_object = Nvsc_memtrace.Mem_object
module Layout = Nvsc_memtrace.Layout
module Suitability = Nvsc_nvram.Suitability
module Technology = Nvsc_nvram.Technology
module Interval_map = Nvsc_util.Interval_map
module Table = Nvsc_util.Table

type row = {
  name : string;
  kind : Layout.kind;
  size_bytes : int;
  line_reads : int;
  line_writes : int;
  energy_nj : float;
  energy_share : float;
  verdict : Suitability.verdict;
}

type report = {
  app_name : string;
  rows : row list;
  attributed : int;
  unattributed : int;
  movable_energy_fraction : float;
}

type acc = { metric : Object_metrics.t; mutable r : int; mutable w : int }

let analyze (result : Scavenger.result) =
  let trace =
    match result.Scavenger.mem_trace with
    | Some t -> t
    | None -> invalid_arg "Traffic_attribution.analyze: result lacks a trace"
  in
  let metrics = Scavenger.global_and_heap_metrics result in
  let map =
    Interval_map.build
      (List.map
         (fun (m : Object_metrics.t) ->
           ( m.obj.Mem_object.base,
             m.obj.Mem_object.base + m.obj.Mem_object.size,
             { metric = m; r = 0; w = 0 } ))
         metrics)
  in
  let attributed = ref 0 and unattributed = ref 0 in
  (* walk the trace's flat batch directly: no record materialisation *)
  let batch, n = Nvsc_memtrace.Trace_log.as_batch trace in
  let module Batch = Nvsc_memtrace.Sink.Batch in
  for i = 0 to n - 1 do
    match Interval_map.find map (Batch.addr batch i) with
    | Some cell ->
      incr attributed;
      if Batch.is_write batch i then cell.w <- cell.w + 1
      else cell.r <- cell.r + 1
    | None -> incr unattributed
  done;
  (* DDR3 burst energies at line granularity *)
  let power =
    Nvsc_dramsim.Power_params.of_tech
      (Technology.get Technology.DDR3)
      ~org:Nvsc_dramsim.Org.paper
  in
  let timing =
    Nvsc_dramsim.Timing.of_tech
      (Technology.get Technology.DDR3)
      ~org:Nvsc_dramsim.Org.paper
  in
  let e_r =
    Nvsc_dramsim.Power_params.burst_read_energy_nj power
      ~t_burst_ns:timing.Nvsc_dramsim.Timing.t_burst_ns
  in
  let e_w =
    Nvsc_dramsim.Power_params.burst_write_energy_nj power
      ~t_burst_ns:timing.Nvsc_dramsim.Timing.t_burst_ns
  in
  let cells =
    Interval_map.ranges map |> List.map (fun (_, _, cell) -> cell)
  in
  let total_energy =
    List.fold_left
      (fun acc cell ->
        acc +. (float_of_int cell.r *. e_r) +. (float_of_int cell.w *. e_w))
      0. cells
  in
  let rows =
    cells
    |> List.map (fun cell ->
           let m = cell.metric in
           let energy =
             (float_of_int cell.r *. e_r) +. (float_of_int cell.w *. e_w)
           in
           {
             name = m.Object_metrics.obj.Mem_object.name;
             kind = m.obj.Mem_object.kind;
             size_bytes = Object_metrics.size_bytes m;
             line_reads = cell.r;
             line_writes = cell.w;
             energy_nj = energy;
             energy_share =
               (if total_energy > 0. then energy /. total_energy else 0.);
             verdict =
               Suitability.classify ~category:Technology.Cat2_long_write
                 (Object_metrics.suitability_metrics m);
           })
    |> List.sort (fun a b -> compare b.energy_nj a.energy_nj)
  in
  let movable =
    List.fold_left
      (fun acc row ->
        if row.verdict <> Suitability.Dram_preferred then
          acc +. row.energy_share
        else acc)
      0. rows
  in
  {
    app_name = result.Scavenger.app_name;
    rows;
    attributed = !attributed;
    unattributed = !unattributed;
    movable_energy_fraction = movable;
  }

let pp_report ?(max_rows = 15) fmt r =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "Main-memory traffic by object: %s" r.app_name)
      [
        ("Object", Table.Left);
        ("Kind", Table.Left);
        ("Size", Table.Right);
        ("Line reads", Table.Right);
        ("Line writes", Table.Right);
        ("Energy share", Table.Right);
        ("Verdict", Table.Left);
      ]
  in
  List.iteri
    (fun i row ->
      if i < max_rows && row.line_reads + row.line_writes > 0 then
        Table.add_row table
          [
            row.name;
            Layout.kind_to_string row.kind;
            Table.cell_bytes row.size_bytes;
            Table.cell_i row.line_reads;
            Table.cell_i row.line_writes;
            Table.cell_pct row.energy_share;
            Format.asprintf "%a" Suitability.pp_verdict row.verdict;
          ])
    r.rows;
  Table.pp fmt table;
  Format.fprintf fmt
    "attributed %d lines (%d outside global/heap objects); %s of burst \
     energy sits on NVRAM-suitable objects@."
    r.attributed r.unattributed
    (Table.cell_pct r.movable_energy_fraction)
