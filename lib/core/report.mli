(** Markdown report generation.

    Renders a self-contained, regenerable markdown report of the whole
    evaluation — the machine-written counterpart of EXPERIMENTS.md — from
    one experiment bundle: Table I/V/VI, figure 12, and the per-app
    aggregates of figures 3–11, each annotated with the paper's value
    where the paper states one. *)

val markdown : ?config:Experiment.config -> unit -> string
(** Runs the experiments (like {!Experiment.run_all}) and renders
    markdown. *)

val markdown_of_bundle : Experiment.bundle -> string
(** Render from an existing bundle (figure 12 is re-run from the bundle's
    configuration). *)

val markdown_of_data : Experiment.data -> string
(** Render from precomputed evaluation data — the sweep-engine path: no
    application is re-run, everything comes from (possibly cached) cell
    payloads. *)
