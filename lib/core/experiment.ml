module Ctx = Nvsc_appkit.Ctx
module Mem_object = Nvsc_memtrace.Mem_object
module Trace_log = Nvsc_memtrace.Trace_log
module Technology = Nvsc_nvram.Technology
module Table = Nvsc_util.Table
module Cache_params = Nvsc_cachesim.Cache_params

type config = { scale : float; iterations : int; perf_scale : float }

(* perf_scale 0.5: the paper's §VII-E simulates a single main-loop
   iteration of a reduced problem to bound full-system-simulation time; at
   this size the working sets sit at the paper's cache pressure. *)
let default_config = { scale = 1.0; iterations = 10; perf_scale = 0.5 }
let quick_config = { scale = 0.25; iterations = 4; perf_scale = 0.25 }

type bundle = { config : config; results : Scavenger.result list }

let collect ?(config = default_config) () =
  {
    config;
    results =
      List.map
        (fun app ->
          Scavenger.run
            Scavenger.Config.(
              default |> with_scale config.scale
              |> with_iterations config.iterations |> with_trace true)
            app)
        Nvsc_apps.Apps.all;
  }

let result bundle name =
  List.find
    (fun (r : Scavenger.result) -> r.app_name = name)
    bundle.results

(* --- data forms -------------------------------------------------------- *)

let table5_data bundle = List.map Stack_analysis.summarize bundle.results

let fig2_data bundle = Stack_analysis.distribution (result bundle "cam")

let fig3_6_data bundle = List.map Object_analysis.analyze bundle.results

let fig7_data bundle =
  List.filter_map
    (fun (r : Scavenger.result) ->
      (* the paper omits GTC: its objects are either touched in every
         iteration or short-term heap *)
      if r.app_name = "gtc" then None
      else Some (r.app_name, Usage_variance.usage_cdf r))
    bundle.results

let fig8_11_data bundle =
  List.map
    (fun (r : Scavenger.result) -> (r.app_name, Usage_variance.variance r))
    bundle.results

let table6_data bundle =
  List.map
    (fun (r : Scavenger.result) ->
      let trace =
        match r.mem_trace with
        | Some t -> t
        | None -> invalid_arg "Experiment.table6: bundle lacks traces"
      in
      let results =
        Nvsc_dramsim.Memory_system.compare_technologies
          ~techs:Technology.paper_set
          ~replay:(fun sink -> Trace_log.replay_batch trace sink)
          ()
      in
      (r.app_name, Nvsc_dramsim.Memory_system.normalized_power results))
    bundle.results

let perf_replay ?(scale = 0.5) (module A : Nvsc_apps.Workload.APP) model =
  let ctx = Ctx.create () in
  Ctx.add_sink ctx
    (Nvsc_memtrace.Sink.create ~name:"perf-model" (fun b ~first ~n ->
         match Ctx.phase ctx with
         | Mem_object.Main _ -> Nvsc_cpusim.Perf_model.consume model b ~first ~n
         | Mem_object.Pre | Mem_object.Post -> ()));
  Ctx.set_instr_sink ctx (fun n ->
      match Ctx.phase ctx with
      | Mem_object.Main _ -> Nvsc_cpusim.Perf_model.instructions model n
      | Mem_object.Pre | Mem_object.Post -> ());
  (* the paper simulates a single main-loop iteration (§VII-E) *)
  A.run ~scale ctx ~iterations:1;
  Ctx.flush_refs ctx

let fig12_data ?(config = default_config) ?asymmetric () =
  List.map
    (fun app ->
      let (module A : Nvsc_apps.Workload.APP) = app in
      ( A.name,
        Nvsc_cpusim.Sensitivity.run ?asymmetric
          ~replay:(perf_replay ~scale:config.perf_scale app)
          () ))
    Nvsc_apps.Apps.all

(* --- data-level forms (shared with the sweep engine) -------------------- *)

type table1_row = {
  app_name : string;
  input_description : string;
  description : string;
  footprint_bytes : int;
  paper_footprint_mb : float;
}

let table1_rows bundle =
  List.map
    (fun (r : Scavenger.result) ->
      {
        app_name = r.app_name;
        input_description = r.input_description;
        description = r.description;
        footprint_bytes = r.footprint_bytes;
        paper_footprint_mb = r.paper_footprint_mb;
      })
    bundle.results

type fig12_cell = {
  tech : Technology.t;
  latency_ns : float;
  normalized_runtime : float;
}

let fig12_cells points =
  List.map
    (fun (app, pts) ->
      ( app,
        List.map
          (fun (p : Nvsc_cpusim.Sensitivity.point) ->
            {
              tech = p.tech;
              latency_ns = p.latency_ns;
              normalized_runtime = p.normalized_runtime;
            })
          pts ))
    points

(* --- printing forms ---------------------------------------------------- *)

let pp_table1_rows fmt rows =
  let table =
    Table.create ~title:"Table I: Applications characteristics"
      [
        ("Application", Table.Left);
        ("Input problem size", Table.Left);
        ("Description", Table.Left);
        ("Footprint (scaled run)", Table.Right);
        ("Paper footprint", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.app_name;
          r.input_description;
          r.description;
          Table.cell_bytes r.footprint_bytes;
          Printf.sprintf "%.0fMB" r.paper_footprint_mb;
        ])
    rows;
  Table.pp fmt table

let table1 fmt bundle = pp_table1_rows fmt (table1_rows bundle)

let table2 fmt () =
  let table =
    Table.create ~title:"Table II: Cache configuration"
      [ ("Level", Table.Left); ("Configuration", Table.Left) ]
  in
  let describe p =
    Format.asprintf "%a" Cache_params.pp p
  in
  Table.add_row table [ "L1 (private, split I/D)"; describe Cache_params.paper_l1d ];
  Table.add_row table [ "L2 (private)"; describe Cache_params.paper_l2 ];
  Table.pp fmt table

let table3 fmt () =
  let table =
    Table.create ~title:"Table III: System configuration"
      [ ("Feature", Table.Left); ("Value", Table.Left) ]
  in
  let p = Nvsc_cpusim.Core_params.paper in
  Table.add_row table
    [ "CPU cores";
      Printf.sprintf "%.3fGHz x86, out of order, one thread per core"
        p.Nvsc_cpusim.Core_params.clock_ghz ];
  Table.add_row table
    [ "TLB per-core size";
      Printf.sprintf "%d entries" p.Nvsc_cpusim.Core_params.tlb_entries ];
  Table.add_row table [ "L1 cache hit"; "1 CPU cycle" ];
  Table.add_row table [ "L2 cache hit"; "5 CPU cycles" ];
  Table.add_row table
    [ "Size of miss buffer";
      Printf.sprintf "%d entries" p.Nvsc_cpusim.Core_params.miss_buffer ];
  let org = Nvsc_dramsim.Org.paper in
  Table.add_row table
    [ "Memory devices"; Format.asprintf "%a" Nvsc_dramsim.Org.pp org ];
  Table.pp fmt table

let table4 fmt () =
  let table =
    Table.create ~title:"Table IV: Memory access latencies"
      [
        ("Memory", Table.Left);
        ("Real read latency", Table.Right);
        ("Real write latency", Table.Right);
        ("Performance simulation", Table.Right);
      ]
  in
  List.iter
    (fun (t : Technology.t) ->
      Table.add_row table
        [
          t.name;
          Printf.sprintf "%.0fns" t.read_latency_ns;
          Printf.sprintf "%.0fns" t.write_latency_ns;
          Printf.sprintf "%.0fns" t.perf_sim_latency_ns;
        ])
    Technology.paper_set;
  Table.pp fmt table

let table5 fmt bundle = Stack_analysis.pp_summary_table fmt (table5_data bundle)

let fig2 fmt bundle = Stack_analysis.pp_distribution fmt (fig2_data bundle)

let fig3_6 fmt bundle =
  List.iter (Object_analysis.pp_report fmt) (fig3_6_data bundle)

let pp_fig7_data fmt data =
  List.iter
    (fun (app, points) ->
      Format.fprintf fmt
        "== Figure 7: cumulative memory usage across time steps: %s ==@." app;
      Usage_variance.pp_cdf fmt points)
    data;
  let series =
    List.map
      (fun (app, points) ->
        ( app,
          List.map
            (fun (p : Usage_variance.cdf_point) ->
              ( float_of_int p.iterations_used,
                float_of_int p.cumulative_bytes /. 1048576. ))
            points ))
      data
  in
  Format.pp_print_string fmt
    (Nvsc_util.Ascii_plot.line
       ~title:"Figure 7: cumulative MB vs iterations used"
       ~x_label:"iterations used" ~y_label:"cumulative MB" series)

let fig7 fmt bundle = pp_fig7_data fmt (fig7_data bundle)

let pp_fig8_11_data fmt data =
  List.iter
    (fun (app, v) ->
      Format.fprintf fmt
        "== Figures 8-11: per-iteration metric variance: %s ==@." app;
      Usage_variance.pp_variance fmt v)
    data

let fig8_11 fmt bundle = pp_fig8_11_data fmt (fig8_11_data bundle)

let pp_table6_data fmt data =
  let table =
    Table.create ~title:"Table VI: Normalized average power consumption"
      ([ ("Application", Table.Left) ]
      @ List.map
          (fun (t : Technology.t) -> (t.name, Table.Right))
          Technology.paper_set)
  in
  List.iter
    (fun (app, powers) ->
      Table.add_row table
        (app :: List.map (fun (_, p) -> Table.cell_f ~prec:3 p) powers))
    data;
  Table.pp fmt table;
  List.iter
    (fun (app, powers) ->
      Format.pp_print_string fmt
        (Nvsc_util.Ascii_plot.bars ~max_value:1.0
           ~title:(Printf.sprintf "Table VI: normalized power, %s" app)
           (List.map (fun ((t : Technology.t), p) -> (t.name, p)) powers)))
    data

let table6 fmt bundle = pp_table6_data fmt (table6_data bundle)

let pp_fig12_data fmt data =
  let table =
    Table.create ~title:"Figure 12: Normalized runtime vs memory latency"
      ([ ("Application", Table.Left) ]
      @ List.map
          (fun (t : Technology.t) ->
            (Printf.sprintf "%s (%.0fns)" t.name t.perf_sim_latency_ns,
             Table.Right))
          Technology.paper_set)
  in
  List.iter
    (fun (app, points) ->
      Table.add_row table
        (app
        :: List.map
             (fun p -> Table.cell_f ~prec:3 p.normalized_runtime)
             points))
    data;
  Table.pp fmt table;
  let series =
    List.map
      (fun (app, points) ->
        (app, List.map (fun p -> (p.latency_ns, p.normalized_runtime)) points))
      data
  in
  Format.pp_print_string fmt
    (Nvsc_util.Ascii_plot.line
       ~title:"Figure 12: normalized runtime vs memory latency"
       ~x_label:"memory latency (ns)" ~y_label:"normalized runtime" series)

let fig12 fmt ?config () = pp_fig12_data fmt (fig12_cells (fig12_data ?config ()))

(* --- bundle-free evaluation data ---------------------------------------- *)

type data = {
  data_config : config;
  rows : table1_row list;
  summaries : Stack_analysis.summary list;
  cam_distribution : Stack_analysis.distribution option;
  reports : Object_analysis.report list;
  cdfs : (string * Usage_variance.cdf_point list) list;
  untouched : (string * float) list;
  variances : (string * Usage_variance.variance) list;
  powers : (string * (Technology.t * float) list) list;
  perf : (string * fig12_cell list) list;
  pipelines : (string * Nvsc_appkit.Ctx.pipeline_stats) list;
}

let data_of_bundle bundle =
  {
    data_config = bundle.config;
    rows = table1_rows bundle;
    summaries = table5_data bundle;
    cam_distribution =
      (if List.exists (fun (r : Scavenger.result) -> r.app_name = "cam")
            bundle.results
       then Some (fig2_data bundle)
       else None);
    reports = fig3_6_data bundle;
    cdfs = fig7_data bundle;
    untouched =
      List.map
        (fun (r : Scavenger.result) ->
          (r.app_name, Usage_variance.untouched_in_main_fraction r))
        bundle.results;
    variances = fig8_11_data bundle;
    powers = table6_data bundle;
    perf = fig12_cells (fig12_data ~config:bundle.config ());
    pipelines =
      List.map
        (fun (r : Scavenger.result) -> (r.app_name, r.pipeline))
        bundle.results;
  }

let run_all_of_data fmt data =
  pp_table1_rows fmt data.rows;
  table2 fmt ();
  table3 fmt ();
  table4 fmt ();
  Stack_analysis.pp_summary_table fmt data.summaries;
  Option.iter (Stack_analysis.pp_distribution fmt) data.cam_distribution;
  List.iter (Object_analysis.pp_report fmt) data.reports;
  pp_fig7_data fmt data.cdfs;
  pp_fig8_11_data fmt data.variances;
  pp_table6_data fmt data.powers;
  pp_fig12_data fmt data.perf

let run_all fmt ?(config = default_config) () =
  run_all_of_data fmt (data_of_bundle (collect ~config ()))
