(** Per-object access metrics over the main computation loop.

    The paper's three NVRAM metrics (§II) evaluated per memory object:
    read/write ratio, memory size, and reference rate (expressed as the
    object's share of all main-loop references), plus the per-iteration
    series needed for the variance study (§VII-C).  Pre/post-phase
    references (iteration 0) are kept separate, so initialisation writes do
    not pollute main-loop ratios — this is what makes data written during
    setup and only read afterwards register as read-only, as the paper
    classifies it. *)

type t = {
  obj : Nvsc_memtrace.Mem_object.t;
  reads : int;  (** main-loop reads (iterations >= 1) *)
  writes : int;
  rw_ratio : float;
      (** {!Nvsc_util.Stats.ratio}: [infinity] for read-only objects *)
  ref_share : float;  (** fraction of all main-loop references *)
  per_iter_reads : int array;  (** index 0 = iteration 1 *)
  per_iter_writes : int array;
  iterations_used : int;  (** number of main-loop iterations touched *)
  touched_outside_main : bool;  (** referenced during pre/post (iter 0) *)
}

val size_bytes : t -> int

val is_read_only : t -> bool
(** Main-loop reads > 0 and main-loop writes = 0. *)

val is_untouched_in_main : t -> bool

val per_iter_ratio : t -> iter:int -> float
(** Read/write ratio within one main-loop iteration (1-based). *)

val per_iter_refs : t -> iter:int -> int

val suitability_metrics : t -> Nvsc_nvram.Suitability.metrics

val collect : Nvsc_appkit.Ctx.t -> iterations:int -> t list
(** Metrics for every registered object — globals, heap (live or dead) and
    routine stack frames — after an application run of [iterations]
    main-loop iterations. *)

val collect_of :
  counters:Nvsc_memtrace.Counters.t ->
  objects:Nvsc_memtrace.Mem_object.t list ->
  iterations:int ->
  t list
(** {!collect} decoupled from a live context: metrics from standalone
    per-object counters and an explicit object list — how trace replay
    rebuilds the report without re-running the application. *)

val total_main_refs : Nvsc_appkit.Ctx.t -> iterations:int -> int

val total_main_refs_of : Nvsc_memtrace.Counters.t -> iterations:int -> int
