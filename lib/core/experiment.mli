(** Regeneration of every table and figure in the paper's evaluation.

    [collect] runs the four mini-applications once through the full
    NV-Scavenger pipeline (with cache-filtered memory traces); the
    table/figure functions then derive their data from that bundle, except
    figure 12 which re-runs the applications against the performance model
    (one run per memory technology, as the paper does).

    Each experiment has a [..._data] form returning structured values (used
    by the test suite's shape checks) and a printing form used by the
    [experiments] binary and EXPERIMENTS.md. *)

type config = {
  scale : float;  (** data-size multiplier for the scavenger runs *)
  iterations : int;  (** main-loop iterations (paper: 10) *)
  perf_scale : float;  (** scale for the figure-12 runs *)
}

val default_config : config
(** scale 1.0, 10 iterations, perf_scale 0.5 (the figure-12 runs simulate
    one iteration of a reduced problem, as the paper's §VII-E does). *)

val quick_config : config
(** Reduced sizes for fast test runs. *)

type bundle = { config : config; results : Scavenger.result list }

val collect : ?config:config -> unit -> bundle
val result : bundle -> string -> Scavenger.result
(** Lookup by app name; raises [Not_found]. *)

(** {1 Data forms} *)

val table5_data : bundle -> Stack_analysis.summary list
val fig2_data : bundle -> Stack_analysis.distribution
val fig3_6_data : bundle -> Object_analysis.report list
val fig7_data : bundle -> (string * Usage_variance.cdf_point list) list
val fig8_11_data : bundle -> (string * Usage_variance.variance) list

val table6_data :
  bundle -> (string * (Nvsc_nvram.Technology.t * float) list) list
(** Per app, normalised average power per technology. *)

val perf_replay :
  ?scale:float ->
  (module Nvsc_apps.Workload.APP) ->
  Nvsc_cpusim.Perf_model.t ->
  unit
(** Drive one main-loop iteration of the application into a performance
    model (main-loop references and instruction counts only) — the replay
    closure behind figure 12. *)

val fig12_data :
  ?config:config ->
  ?asymmetric:bool ->
  unit ->
  (string * Nvsc_cpusim.Sensitivity.point list) list
(** Per app, normalised runtime per technology.  [asymmetric] switches the
    performance model to distinct read/write latencies with posted writes
    (see {!Nvsc_cpusim.Sensitivity.run}). *)

(** {1 Bundle-free data forms}

    The sweep engine recomputes or decodes these per-cell payloads and
    renders the same tables without ever materialising a [bundle]; the
    bundle path below delegates to the same printers, so the two paths are
    byte-identical. *)

type table1_row = {
  app_name : string;
  input_description : string;
  description : string;
  footprint_bytes : int;
  paper_footprint_mb : float;
}

val table1_rows : bundle -> table1_row list

type fig12_cell = {
  tech : Nvsc_nvram.Technology.t;
  latency_ns : float;
  normalized_runtime : float;
}

val fig12_cells :
  (string * Nvsc_cpusim.Sensitivity.point list) list ->
  (string * fig12_cell list) list

(** Everything the evaluation report needs, per app, in presentation
    order. *)
type data = {
  data_config : config;
  rows : table1_row list;
  summaries : Stack_analysis.summary list;
  cam_distribution : Stack_analysis.distribution option;
  reports : Object_analysis.report list;
  cdfs : (string * Usage_variance.cdf_point list) list;
  untouched : (string * float) list;
  variances : (string * Usage_variance.variance) list;
  powers : (string * (Nvsc_nvram.Technology.t * float) list) list;
  perf : (string * fig12_cell list) list;
  pipelines : (string * Nvsc_appkit.Ctx.pipeline_stats) list;
}

val data_of_bundle : bundle -> data
(** Derives every data form from the bundle; figure 12 is re-run at the
    bundle's configuration (as {!run_all} does). *)

(** {1 Printing forms} *)

val pp_table1_rows : Format.formatter -> table1_row list -> unit

val pp_fig7_data :
  Format.formatter -> (string * Usage_variance.cdf_point list) list -> unit

val pp_fig8_11_data :
  Format.formatter -> (string * Usage_variance.variance) list -> unit

val pp_table6_data :
  Format.formatter ->
  (string * (Nvsc_nvram.Technology.t * float) list) list ->
  unit

val pp_fig12_data :
  Format.formatter -> (string * fig12_cell list) list -> unit

val run_all_of_data : Format.formatter -> data -> unit
(** Print every table and figure from precomputed data (the sweep-engine
    path). *)

val table1 : Format.formatter -> bundle -> unit
val table2 : Format.formatter -> unit -> unit
val table3 : Format.formatter -> unit -> unit
val table4 : Format.formatter -> unit -> unit
val table5 : Format.formatter -> bundle -> unit
val fig2 : Format.formatter -> bundle -> unit
val fig3_6 : Format.formatter -> bundle -> unit
val fig7 : Format.formatter -> bundle -> unit
val fig8_11 : Format.formatter -> bundle -> unit
val table6 : Format.formatter -> bundle -> unit
val fig12 : Format.formatter -> ?config:config -> unit -> unit

val run_all : Format.formatter -> ?config:config -> unit -> unit
(** Collect a bundle and print every table and figure. *)
