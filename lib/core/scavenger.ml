module Ctx = Nvsc_appkit.Ctx
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Trace_log = Nvsc_memtrace.Trace_log
module Sink = Nvsc_memtrace.Sink
module Hierarchy = Nvsc_cachesim.Hierarchy
module Cache = Nvsc_cachesim.Cache
module Span = Nvsc_obs.Span
module Metrics = Nvsc_obs.Metrics

type result = {
  app_name : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  iterations : int;
  scale : float;
  footprint_bytes : int;
  total_main_refs : int;
  metrics : Object_metrics.t list;
  fast_tallies : Ctx.fast_tally array;
  mem_trace : Trace_log.t option;
  l1_miss_rate : float;
  l2_miss_rate : float;
  unattributed : int;
  pipeline : Ctx.pipeline_stats;
  sanitizer : Nvsc_sanitizer.Diagnostic.report option;
  persist_report : Nvsc_sanitizer.Diagnostic.report option;
  persist_stats : Nvsc_sanitizer.Persist_check.stats option;
}

module Config = struct
  type t = {
    scale : float;
    iterations : int;
    with_trace : bool;
    sampling : (int * int) option;
    batch_capacity : int option;
    sanitize : bool;
    check_init : bool;
    persist : bool;
    shards : int;
    obs : Nvsc_obs.t;
  }

  let default =
    {
      scale = 1.0;
      iterations = 10;
      with_trace = false;
      sampling = None;
      batch_capacity = None;
      sanitize = false;
      check_init = false;
      persist = false;
      shards = 1;
      obs = Nvsc_obs.off;
    }

  let with_scale scale t = { t with scale }
  let with_iterations iterations t = { t with iterations }
  let with_trace with_trace t = { t with with_trace }

  let with_sampling ~period ~sample_length t =
    { t with sampling = Some (period, sample_length) }

  let with_batch_capacity capacity t =
    { t with batch_capacity = Some capacity }

  let with_sanitize ?(check_init = false) sanitize t =
    { t with sanitize; check_init }

  let with_persist persist t = { t with persist }

  let with_shards shards t =
    if shards < 1 then invalid_arg "Config.with_shards: shards must be >= 1";
    { t with shards }

  let with_obs obs t = { t with obs }
end

(* Redzone width used when sanitising: wide enough that a word-sized
   overrun of any object lands inside it, narrow enough not to distort
   the synthetic layout. *)
let sanitizer_redzone_words = 8

(* Registry metrics the run feeds: one deterministic snapshot replaces the
   counters previously scattered over Ctx.pipeline_stats and the
   sanitizer report (DESIGN.md "Observability"). *)
let m_runs = Metrics.counter "scavenger.runs"
let m_refs = Metrics.counter "scavenger.pipeline.refs"
let m_batches = Metrics.counter "scavenger.pipeline.batches"
let m_capacity_flushes = Metrics.counter "scavenger.pipeline.capacity_flushes"
let m_boundary_flushes = Metrics.counter "scavenger.pipeline.boundary_flushes"
let m_unattributed = Metrics.counter "scavenger.unattributed"
let m_sanitizer_findings = Metrics.counter "sanitizer.findings"

let run (cfg : Config.t) (module A : Nvsc_apps.Workload.APP) =
  Nvsc_obs.scoped cfg.obs @@ fun () ->
  Span.with_ ~arg:A.name "scavenger.run" @@ fun () ->
  let { Config.scale; iterations; with_trace; sampling; batch_capacity;
        sanitize; check_init; persist; shards; obs = _ } =
    cfg
  in
  let prev_checks = Sink.checks_enabled () in
  if sanitize then Sink.set_debug_checks true;
  Fun.protect ~finally:(fun () -> Sink.set_debug_checks prev_checks)
  @@ fun () ->
  let ctx, san, pchk, trace, hierarchy, team =
    Span.with_ "scavenger.setup" @@ fun () ->
    let ctx =
      Ctx.create ?batch_capacity
        ~redzone_words:(if sanitize then sanitizer_redzone_words else 0)
        ()
    in
    let san =
      if sanitize then Some (Nvsc_sanitizer.Trace_san.attach ~check_init ctx)
      else None
    in
    let pchk =
      if persist then Some (Nvsc_sanitizer.Persist_check.attach ctx)
      else None
    in
    (match sampling with
    | Some (period, sample_length) ->
      Ctx.set_sampling ctx ~period ~sample_length
    | None -> ());
    let trace = if with_trace then Some (Trace_log.create ()) else None in
    let hierarchy, team =
      match trace with
      | None -> (None, None)
      | Some log -> (
        match Shard.effective_shards shards with
        | eff when eff >= 2 ->
          (* Sharded filter: the same [cache-hierarchy] sink (identical
             pipeline stats), but main-loop batches fan out by reference
             to a team of set-partitioned shard domains; the serial trace
             order is reconstructed by the keyed merge after the run. *)
          let team =
            Shard.create ~shards:eff
              ~batch_capacity:(Ctx.batch_capacity ctx) ()
          in
          Ctx.add_sink ctx
            (Sink.create ~name:"cache-hierarchy" (fun b ~first ~n ->
                 match Ctx.phase ctx with
                 | Mem_object.Main _ -> Shard.feed team b ~first ~n
                 | Mem_object.Pre | Mem_object.Post -> ()));
          Ctx.set_batch_exchange ctx (Shard.exchange team);
          (None, Some team)
        | _ ->
          let h =
            Hierarchy.create ~sink:(Trace_log.sink ~name:"trace-log" log) ()
          in
          (* Filter only main-loop batches through the caches: the paper
             instruments the main computation loop.  Batches are delivered
             under their emission phase, so the filter is exact. *)
          Ctx.add_sink ctx
            (Sink.create ~name:"cache-hierarchy" (fun b ~first ~n ->
                 match Ctx.phase ctx with
                 | Mem_object.Main _ -> Hierarchy.consume h b ~first ~n
                 | Mem_object.Pre | Mem_object.Post -> ()));
          (Some h, None))
    in
    (ctx, san, pchk, trace, hierarchy, team)
  in
  (match
     Span.with_ ~arg:A.name "scavenger.app" (fun () ->
         A.run ~scale ctx ~iterations)
   with
  | () -> ()
  | exception e ->
    (* never leak worker domains: unblock and join the team, then let the
       app's exception win *)
    (match team with
    | Some tm ->
      Ctx.clear_batch_exchange ctx;
      (try Shard.finish tm with _ -> ())
    | None -> ());
    raise e);
  Span.with_ "scavenger.analysis" @@ fun () ->
  Ctx.flush_refs ctx;
  (match hierarchy with Some h -> Hierarchy.drain h | None -> ());
  (match (team, trace) with
  | Some tm, Some log ->
    Shard.finish tm;
    Shard.export_metrics tm;
    Ctx.clear_batch_exchange ctx;
    Shard.merge_into_trace tm log
  | _ -> ());
  let sanitizer = Option.map Nvsc_sanitizer.Trace_san.finish san in
  let persist_report =
    Option.map (fun p -> Nvsc_sanitizer.Persist_check.finish p) pchk
  in
  let metrics = Object_metrics.collect ctx ~iterations in
  let footprint_bytes =
    List.fold_left (fun acc m -> acc + Object_metrics.size_bytes m) 0 metrics
  in
  let fast_tallies =
    Array.init (iterations + 1) (fun i -> Ctx.fast_tally ctx ~iter:i)
  in
  let miss_rate cache_of team_rate =
    match (hierarchy, team) with
    | Some h, _ -> Cache.miss_rate (cache_of h)
    | None, Some tm -> team_rate tm
    | None, None -> 0.
  in
  let pipeline = Ctx.pipeline_stats ctx in
  Metrics.Counter.incr m_runs;
  Metrics.Counter.add m_refs pipeline.Ctx.refs;
  Metrics.Counter.add m_batches pipeline.Ctx.batches;
  Metrics.Counter.add m_capacity_flushes pipeline.Ctx.capacity_flushes;
  Metrics.Counter.add m_boundary_flushes pipeline.Ctx.boundary_flushes;
  Metrics.Counter.add m_unattributed (Ctx.unattributed ctx);
  (match sanitizer with
  | Some report ->
    Metrics.Counter.add m_sanitizer_findings (List.length report)
  | None -> ());
  (* the context never escapes [run]: pool its emission buffers for the
     next run's [Ctx.create] (everything read below is already copied) *)
  Ctx.release ctx;
  {
    app_name = A.name;
    description = A.description;
    input_description = A.input_description;
    paper_footprint_mb = A.paper_footprint_mb;
    iterations;
    scale;
    footprint_bytes;
    total_main_refs = Object_metrics.total_main_refs ctx ~iterations;
    metrics;
    fast_tallies;
    mem_trace = trace;
    l1_miss_rate = miss_rate Hierarchy.l1d Shard.l1_miss_rate;
    l2_miss_rate = miss_rate Hierarchy.l2 Shard.l2_miss_rate;
    unattributed = Ctx.unattributed ctx;
    pipeline;
    sanitizer;
    persist_report;
    persist_stats = Option.map Nvsc_sanitizer.Persist_check.stats pchk;
  }

let kind_metrics kind result =
  List.filter
    (fun (m : Object_metrics.t) -> m.obj.Mem_object.kind = kind)
    result.metrics

let stack_metrics = kind_metrics Layout.Stack
let global_metrics = kind_metrics Layout.Global
let heap_metrics = kind_metrics Layout.Heap

let global_and_heap_metrics result =
  List.filter
    (fun (m : Object_metrics.t) -> m.obj.Mem_object.kind <> Layout.Stack)
    result.metrics
