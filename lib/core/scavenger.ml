module Ctx = Nvsc_appkit.Ctx
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Trace_log = Nvsc_memtrace.Trace_log
module Sink = Nvsc_memtrace.Sink
module Hierarchy = Nvsc_cachesim.Hierarchy
module Cache = Nvsc_cachesim.Cache

type result = {
  app_name : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  iterations : int;
  scale : float;
  footprint_bytes : int;
  total_main_refs : int;
  metrics : Object_metrics.t list;
  fast_tallies : Ctx.fast_tally array;
  mem_trace : Trace_log.t option;
  l1_miss_rate : float;
  l2_miss_rate : float;
  unattributed : int;
  pipeline : Ctx.pipeline_stats;
  sanitizer : Nvsc_sanitizer.Diagnostic.report option;
}

(* Redzone width used when sanitising: wide enough that a word-sized
   overrun of any object lands inside it, narrow enough not to distort
   the synthetic layout. *)
let sanitizer_redzone_words = 8

let run ?(scale = 1.0) ?(iterations = 10) ?(with_trace = false) ?sampling
    ?batch_capacity ?(sanitize = false) ?(check_init = false)
    (module A : Nvsc_apps.Workload.APP) =
  let prev_checks = Sink.checks_enabled () in
  if sanitize then Sink.set_debug_checks true;
  Fun.protect ~finally:(fun () -> Sink.set_debug_checks prev_checks)
  @@ fun () ->
  let ctx =
    Ctx.create ?batch_capacity
      ~redzone_words:(if sanitize then sanitizer_redzone_words else 0)
      ()
  in
  let san =
    if sanitize then Some (Nvsc_sanitizer.Trace_san.attach ~check_init ctx)
    else None
  in
  (match sampling with
  | Some (period, sample_length) -> Ctx.set_sampling ctx ~period ~sample_length
  | None -> ());
  let trace = if with_trace then Some (Trace_log.create ()) else None in
  let hierarchy =
    match trace with
    | None -> None
    | Some log ->
      let h =
        Hierarchy.create ~sink:(Trace_log.sink ~name:"trace-log" log) ()
      in
      (* Filter only main-loop batches through the caches: the paper
         instruments the main computation loop.  Batches are delivered
         under their emission phase, so the filter is exact. *)
      Ctx.add_sink ctx
        (Sink.create ~name:"cache-hierarchy" (fun b ~first ~n ->
             match Ctx.phase ctx with
             | Mem_object.Main _ -> Hierarchy.consume h b ~first ~n
             | Mem_object.Pre | Mem_object.Post -> ()));
      Some h
  in
  A.run ~scale ctx ~iterations;
  Ctx.flush_refs ctx;
  (match hierarchy with Some h -> Hierarchy.drain h | None -> ());
  let sanitizer = Option.map Nvsc_sanitizer.Trace_san.finish san in
  let metrics = Object_metrics.collect ctx ~iterations in
  let footprint_bytes =
    List.fold_left (fun acc m -> acc + Object_metrics.size_bytes m) 0 metrics
  in
  let fast_tallies =
    Array.init (iterations + 1) (fun i -> Ctx.fast_tally ctx ~iter:i)
  in
  let miss_rate cache_of =
    match hierarchy with
    | None -> 0.
    | Some h -> Cache.miss_rate (cache_of h)
  in
  {
    app_name = A.name;
    description = A.description;
    input_description = A.input_description;
    paper_footprint_mb = A.paper_footprint_mb;
    iterations;
    scale;
    footprint_bytes;
    total_main_refs = Object_metrics.total_main_refs ctx ~iterations;
    metrics;
    fast_tallies;
    mem_trace = trace;
    l1_miss_rate = miss_rate Hierarchy.l1d;
    l2_miss_rate = miss_rate Hierarchy.l2;
    unattributed = Ctx.unattributed ctx;
    pipeline = Ctx.pipeline_stats ctx;
    sanitizer;
  }

let kind_metrics kind result =
  List.filter
    (fun (m : Object_metrics.t) -> m.obj.Mem_object.kind = kind)
    result.metrics

let stack_metrics = kind_metrics Layout.Stack
let global_metrics = kind_metrics Layout.Global
let heap_metrics = kind_metrics Layout.Heap

let global_and_heap_metrics result =
  List.filter
    (fun (m : Object_metrics.t) -> m.obj.Mem_object.kind <> Layout.Stack)
    result.metrics
