module Mem_object = Nvsc_memtrace.Mem_object
module Trace_log = Nvsc_memtrace.Trace_log
module Technology = Nvsc_nvram.Technology
module Suitability = Nvsc_nvram.Suitability
module HM = Nvsc_placement.Hybrid_memory
module Item = Nvsc_placement.Item

(* --- sampling ablation -------------------------------------------------- *)

type sampling_ablation = {
  app_name : string;
  sampling_ratio : float;
  full_objects : int;
  lost_objects : int;
  misclassified_read_only : int;
  verdict_flips : int;
}

let verdict_of (m : Object_metrics.t) =
  Suitability.classify ~category:Technology.Cat2_long_write
    (Object_metrics.suitability_metrics m)

let sampling_ablation ?(scale = 0.5) ?(iterations = 5) ?(period = 10_000)
    ?(sample_length = 100) (module A : Nvsc_apps.Workload.APP) =
  let cfg =
    Scavenger.Config.(
      default |> with_scale scale |> with_iterations iterations)
  in
  let full = Scavenger.run cfg (module A) in
  let sampled =
    Scavenger.run
      (Scavenger.Config.with_sampling ~period ~sample_length cfg)
      (module A)
  in
  (* objects correspond by name across the two deterministic runs *)
  let sampled_by_name = Hashtbl.create 64 in
  List.iter
    (fun (m : Object_metrics.t) ->
      Hashtbl.replace sampled_by_name m.obj.Mem_object.signature m)
    sampled.Scavenger.metrics;
  let active =
    List.filter
      (fun (m : Object_metrics.t) -> m.reads + m.writes > 0)
      full.Scavenger.metrics
  in
  let lost = ref 0 and misread = ref 0 and flips = ref 0 in
  List.iter
    (fun (m : Object_metrics.t) ->
      match Hashtbl.find_opt sampled_by_name m.obj.Mem_object.signature with
      | None -> incr lost
      | Some s ->
        if s.reads + s.writes = 0 then incr lost
        else begin
          if Object_metrics.is_read_only s && m.writes > 0 then incr misread;
          if verdict_of s <> verdict_of m then incr flips
        end)
    active;
  {
    app_name = full.Scavenger.app_name;
    sampling_ratio = float_of_int sample_length /. float_of_int period;
    full_objects = List.length active;
    lost_objects = !lost;
    misclassified_read_only = !misread;
    verdict_flips = !flips;
  }

(* --- hybrid organisation comparison -------------------------------------- *)

type hybrid_design = {
  app_name : string;
  trace_accesses : int;
  cache_hit_rate : float;
  hierarchical_avg_latency_ns : float;
  hierarchical_nvram_bytes : int;
  horizontal_avg_latency_ns : float;
  horizontal_nvram_write_fraction : float;
  latency_advantage : float;
}

let items_of_result (r : Scavenger.result) =
  List.map
    (fun (m : Object_metrics.t) ->
      {
        Item.id = m.obj.Mem_object.id;
        name = m.obj.Mem_object.name;
        size_bytes = Object_metrics.size_bytes m;
        reads = m.reads;
        writes = m.writes;
        ref_share = m.ref_share;
      })
    (Scavenger.global_and_heap_metrics r)

let hybrid_design ?(scale = 0.5) ?(iterations = 5)
    ?(tech = Technology.get Technology.PCRAM) (module A : Nvsc_apps.Workload.APP)
    =
  let r =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations
        |> with_trace true)
      (module A)
  in
  let trace = Option.get r.Scavenger.mem_trace in
  (* hierarchical: a small DRAM page cache (1/4 of the footprint) in front
     of NVRAM *)
  let dram_pages = Stdlib.max 16 (r.Scavenger.footprint_bytes / 4 / 4096) in
  let dc = Nvsc_placement.Dram_cache.create ~dram_pages ~tech () in
  Trace_log.replay_batch trace (Nvsc_placement.Dram_cache.sink dc);
  Nvsc_placement.Dram_cache.drain dc;
  let dstats = Nvsc_placement.Dram_cache.stats dc in
  (* horizontal: static placement over the same footprint, with the same
     DRAM budget *)
  let dram_budget = dram_pages * 4096 in
  let hybrid =
    HM.create ~dram_bytes:dram_budget
      ~nvram_bytes:(4 * r.Scavenger.footprint_bytes) ~tech
  in
  let hybrid = Nvsc_placement.Static_policy.plan ~hybrid (items_of_result r) in
  let assessment = HM.assess hybrid in
  let horizontal_latency =
    let a = assessment in
    (* traffic-weighted over reads and writes *)
    let reads = Trace_log.reads trace and writes = Trace_log.writes trace in
    let total = float_of_int (reads + writes) in
    if total = 0. then 0.
    else
      ((float_of_int reads *. a.HM.avg_read_latency_ns)
      +. (float_of_int writes *. a.HM.avg_write_latency_ns))
      /. total
  in
  {
    app_name = r.Scavenger.app_name;
    trace_accesses = dstats.Nvsc_placement.Dram_cache.accesses;
    cache_hit_rate = dstats.hit_rate;
    hierarchical_avg_latency_ns = dstats.avg_latency_ns;
    hierarchical_nvram_bytes = dstats.nvram_traffic_bytes;
    horizontal_avg_latency_ns = horizontal_latency;
    horizontal_nvram_write_fraction = assessment.HM.write_traffic_to_nvram;
    latency_advantage =
      (if horizontal_latency > 0. then
         dstats.avg_latency_ns /. horizontal_latency
       else 0.);
  }

type crossover_point = {
  hot_fraction : float;
  hit_rate : float;
  hierarchical_latency_ns : float;
  flat_nvram_latency_ns : float;
  dram_cache_wins : bool;
}

let dram_cache_crossover ?(tech = Technology.get Technology.PCRAM)
    ?(accesses = 100_000) ~hot_fractions () =
  List.map
    (fun hot_fraction ->
      let dram_pages = 512 in
      (* hot set fits the cache; the cold set is 64x larger *)
      let hot_lines = dram_pages * 4096 / 64 in
      let dc = Nvsc_placement.Dram_cache.create ~dram_pages ~tech () in
      let dc_sink = Nvsc_placement.Dram_cache.sink dc in
      ignore
        (Nvsc_memtrace.Trace_gen.into
           (Nvsc_memtrace.Trace_gen.hot_cold ~seed:11 ~hot_fraction ~hot_lines
              ~cold_lines:(64 * hot_lines) ~write_fraction:0.25 ~n:accesses ())
           dc_sink);
      Nvsc_memtrace.Sink.flush dc_sink;
      let s = Nvsc_placement.Dram_cache.stats dc in
      (* flat NVRAM: every access pays the device latency, no fills *)
      let flat =
        (0.75 *. tech.Technology.read_latency_ns)
        +. (0.25 *. tech.Technology.write_latency_ns)
      in
      {
        hot_fraction;
        hit_rate = s.Nvsc_placement.Dram_cache.hit_rate;
        hierarchical_latency_ns = s.avg_latency_ns;
        flat_nvram_latency_ns = flat;
        dram_cache_wins = s.avg_latency_ns < flat;
      })
    hot_fractions

(* --- placement summary ---------------------------------------------------- *)

type placement_summary = {
  app_name : string;
  objects : int;
  static_nvram_fraction : float;
  static_slowdown_bound : float;
  dynamic_nvram_fraction : float;
  dynamic_slowdown_bound : float;
  migrations : int;
  migrated_bytes : int;
}

let placement_summary ?(scale = 0.5) ?(iterations = 5)
    ?(tech = Technology.get Technology.STTRAM)
    (module A : Nvsc_apps.Workload.APP) =
  let r =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations)
      (module A)
  in
  let metrics = Scavenger.global_and_heap_metrics r in
  let items = items_of_result r in
  let capacity = 2 * r.Scavenger.footprint_bytes in
  let static =
    Nvsc_placement.Static_policy.plan
      ~hybrid:(HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech)
      items
  in
  let sa = HM.assess static in
  (* dynamic: start everything in NVRAM, feed per-iteration counters *)
  let hybrid = HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech in
  List.iter (fun item -> HM.place hybrid item HM.Nvram) items;
  let demote_popular_reads =
    match tech.Technology.category with
    | Technology.Cat2_long_write | Technology.Cat3_dram_like -> true
    | Technology.Cat1_long_read_write | Technology.Volatile -> false
  in
  let policy =
    Nvsc_placement.Dynamic_policy.create ~demote_popular_reads ~hybrid ()
  in
  let item_by_id =
    List.fold_left
      (fun acc (i : Item.t) -> (i.id, i) :: acc)
      [] items
  in
  for iter = 1 to r.Scavenger.iterations do
    let epoch =
      List.filter_map
        (fun (m : Object_metrics.t) ->
          match List.assoc_opt m.obj.Mem_object.id item_by_id with
          | None -> None
          | Some item ->
            Some
              {
                Nvsc_placement.Dynamic_policy.item;
                reads = m.per_iter_reads.(iter - 1);
                writes = m.per_iter_writes.(iter - 1);
              })
        metrics
    in
    Nvsc_placement.Dynamic_policy.observe_epoch policy epoch
  done;
  let da = HM.assess hybrid in
  {
    app_name = r.Scavenger.app_name;
    objects = List.length items;
    static_nvram_fraction = sa.HM.nvram_fraction;
    static_slowdown_bound = sa.HM.slowdown_bound;
    dynamic_nvram_fraction = da.HM.nvram_fraction;
    dynamic_slowdown_bound = da.HM.slowdown_bound;
    migrations = HM.migrations hybrid;
    migrated_bytes = HM.migrated_bytes hybrid;
  }

(* --- fine-grained dynamic placement ------------------------------------------ *)

type fine_grained = {
  app_name : string;
  window_refs : int;
  windows : int;
  migrations : int;
  avg_nvram_fraction : float;
  final_nvram_fraction : float;
}

let fine_grained_placement ?(scale = 0.5) ?(iterations = 5)
    ?(window_refs = 100_000) ?(tech = Technology.get Technology.STTRAM)
    (module A : Nvsc_apps.Workload.APP) =
  (* profile pass: learn the object population (ids are deterministic) *)
  let profile =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations)
      (module A)
  in
  let items = items_of_result profile in
  let total_bytes =
    List.fold_left (fun acc (i : Item.t) -> acc + i.size_bytes) 0 items
  in
  let item_by_id = Hashtbl.create 64 in
  List.iter (fun (i : Item.t) -> Hashtbl.replace item_by_id i.id i) items;
  (* online pass: the monitor drives the policy as the app runs *)
  let capacity = 2 * profile.Scavenger.footprint_bytes in
  let hybrid = HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech in
  List.iter (fun item -> HM.place hybrid item HM.Nvram) items;
  let demote_popular_reads =
    match tech.Technology.category with
    | Technology.Cat2_long_write | Technology.Cat3_dram_like -> true
    | Technology.Cat1_long_read_write | Technology.Volatile -> false
  in
  let policy =
    Nvsc_placement.Dynamic_policy.create ~demote_popular_reads ~hybrid ()
  in
  let residency_sum = ref 0. in
  let samples = ref 0 in
  let on_window counts =
    let epoch =
      List.filter_map
        (fun (obj_id, reads, writes) ->
          match Hashtbl.find_opt item_by_id obj_id with
          | Some item -> Some { Nvsc_placement.Dynamic_policy.item; reads; writes }
          | None -> None (* stack frames are not placeable objects *))
        counts
    in
    Nvsc_placement.Dynamic_policy.observe_epoch policy epoch;
    residency_sum :=
      !residency_sum
      +. (float_of_int (HM.used_bytes hybrid HM.Nvram) /. float_of_int total_bytes);
    incr samples
  in
  let ctx = Nvsc_appkit.Ctx.create () in
  let monitor = Fine_monitor.attach ctx ~window_refs ~on_window in
  A.run ~scale ctx ~iterations;
  Fine_monitor.flush monitor;
  {
    app_name = A.name;
    window_refs;
    windows = Fine_monitor.windows monitor;
    migrations = HM.migrations hybrid;
    avg_nvram_fraction =
      (if !samples = 0 then 0. else !residency_sum /. float_of_int !samples);
    final_nvram_fraction =
      float_of_int (HM.used_bytes hybrid HM.Nvram) /. float_of_int total_bytes;
  }

let pp_fine_grained fmt (f : fine_grained) =
  Format.fprintf fmt
    "%-8s %d windows of %d refs: %d migrations, NVRAM residency %4.1f%% \
     (avg) / %4.1f%% (final)@."
    f.app_name f.windows f.window_refs f.migrations
    (100. *. f.avg_nvram_fraction)
    (100. *. f.final_nvram_fraction)

(* --- hybrid memory-system simulation ---------------------------------------- *)

type hybrid_simulation = {
  app_name : string;
  nvram_bytes_fraction : float;
  nvram_access_fraction : float;
  nvram_write_fraction : float;
  designs : (string * float * float) list;
}

(* Address-to-side routing from the static plan: an interval map over the
   NVRAM-resident objects' ranges. *)
let interval_table hybrid metrics =
  let nvram_items = HM.items_in hybrid HM.Nvram in
  let nvram_ids =
    List.fold_left (fun acc (i : Item.t) -> (i.id, ()) :: acc) [] nvram_items
  in
  let map =
    Nvsc_util.Interval_map.build
      (List.filter_map
         (fun (m : Object_metrics.t) ->
           if List.mem_assoc m.obj.Mem_object.id nvram_ids then
             Some
               ( m.obj.Mem_object.base,
                 m.obj.Mem_object.base + m.obj.Mem_object.size,
                 () )
           else None)
         metrics)
  in
  fun addr ->
    match Nvsc_util.Interval_map.find map addr with
    | Some () -> Nvsc_dramsim.Hybrid_system.Nvram_side
    | None -> Nvsc_dramsim.Hybrid_system.Dram_side

let hybrid_simulation ?(scale = 0.5) ?(iterations = 5)
    ?(tech = Technology.get Technology.STTRAM)
    (module A : Nvsc_apps.Workload.APP) =
  let r =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations
        |> with_trace true)
      (module A)
  in
  let trace = Option.get r.Scavenger.mem_trace in
  let metrics = Scavenger.global_and_heap_metrics r in
  let items = items_of_result r in
  let capacity = 2 * r.Scavenger.footprint_bytes in
  let hybrid =
    Nvsc_placement.Static_policy.plan
      ~hybrid:(HM.create ~dram_bytes:capacity ~nvram_bytes:capacity ~tech)
      items
  in
  let placement = interval_table hybrid metrics in
  let replay sink = Trace_log.replay_batch trace sink in
  let designs =
    Nvsc_dramsim.Hybrid_system.compare_designs ~nvram:tech ~placement ~replay ()
  in
  let h =
    Nvsc_dramsim.Hybrid_system.create ~nvram:tech ~placement ()
  in
  replay (Nvsc_dramsim.Hybrid_system.sink h);
  let hs = Nvsc_dramsim.Hybrid_system.stats h in
  {
    app_name = r.Scavenger.app_name;
    nvram_bytes_fraction = (HM.assess hybrid).HM.nvram_fraction;
    nvram_access_fraction = hs.Nvsc_dramsim.Hybrid_system.nvram_fraction;
    nvram_write_fraction = hs.Nvsc_dramsim.Hybrid_system.nvram_write_fraction;
    designs;
  }

let pp_hybrid_simulation fmt (h : hybrid_simulation) =
  Format.fprintf fmt
    "%-8s NVRAM holds %4.1f%% of bytes, %4.1f%% of accesses (%4.1f%% of \
     writes):@."
    h.app_name
    (100. *. h.nvram_bytes_fraction)
    (100. *. h.nvram_access_fraction)
    (100. *. h.nvram_write_fraction);
  List.iter
    (fun (design, power, latency) ->
      Format.fprintf fmt "         %-12s power %.3f  latency %5.1fns@." design
        power latency)
    h.designs

(* --- Table VI robustness --------------------------------------------------- *)

let power_sensitivity ?(scale = 0.5) ?(iterations = 5)
    (module A : Nvsc_apps.Workload.APP) =
  let r =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations
        |> with_trace true)
      (module A)
  in
  let trace = Option.get r.Scavenger.mem_trace in
  let replay sink = Trace_log.replay_batch trace sink in
  let configs =
    [
      ("default (FCFS, row:bank:rank:col, open-page)", fun () ->
        Nvsc_dramsim.Memory_system.compare_technologies
          ~techs:Technology.paper_set ~replay ());
      ("FR-FCFS 16", fun () ->
        Nvsc_dramsim.Memory_system.compare_technologies
          ~scheduler:(Nvsc_dramsim.Controller.Fr_fcfs 16)
          ~techs:Technology.paper_set ~replay ());
      ("line-interleaved mapping", fun () ->
        Nvsc_dramsim.Memory_system.compare_technologies
          ~scheme:Nvsc_dramsim.Address_mapping.Line_interleave
          ~techs:Technology.paper_set ~replay ());
      ("closed-page policy", fun () ->
        Nvsc_dramsim.Memory_system.compare_technologies
          ~row_policy:Nvsc_dramsim.Controller.Closed_page
          ~techs:Technology.paper_set ~replay ());
    ]
  in
  List.map
    (fun (label, run) ->
      (label, Nvsc_dramsim.Memory_system.normalized_power (run ())))
    configs

(* --- row policy ablation -------------------------------------------------- *)

let row_policy_ablation trace ~tech =
  List.map
    (fun policy ->
      let c = Nvsc_dramsim.Controller.create ~row_policy:policy ~tech () in
      Trace_log.replay_batch trace (Nvsc_dramsim.Controller.sink c);
      (policy, Nvsc_dramsim.Controller.stats c))
    [ Nvsc_dramsim.Controller.Open_page; Nvsc_dramsim.Controller.Closed_page ]

(* --- printing -------------------------------------------------------------- *)

let pp_sampling fmt (s : sampling_ablation) =
  Format.fprintf fmt
    "%-8s %4.0f%% sample: %d/%d objects lost, %d falsely read-only, %d \
     verdict flips@."
    s.app_name
    (100. *. s.sampling_ratio)
    s.lost_objects s.full_objects s.misclassified_read_only s.verdict_flips

let pp_hybrid fmt (h : hybrid_design) =
  Format.fprintf fmt
    "%-8s page-cache hit %.2f  latency: hierarchical %.1fns vs horizontal \
     %.1fns (%.2fx)  NVRAM traffic %a@."
    h.app_name h.cache_hit_rate h.hierarchical_avg_latency_ns
    h.horizontal_avg_latency_ns h.latency_advantage Nvsc_util.Units.pp_bytes
    h.hierarchical_nvram_bytes

let pp_placement fmt (p : placement_summary) =
  Format.fprintf fmt
    "%-8s static: %4.1f%% bytes in NVRAM (slowdown bound %.3f); dynamic: \
     %4.1f%% (bound %.3f) after %d migrations (%a)@."
    p.app_name
    (100. *. p.static_nvram_fraction)
    p.static_slowdown_bound
    (100. *. p.dynamic_nvram_fraction)
    p.dynamic_slowdown_bound p.migrations Nvsc_util.Units.pp_bytes
    p.migrated_bytes

let run_all fmt ?(scale = 0.5) ?(iterations = 5) () =
  Format.fprintf fmt
    "== Extension: sampling ablation (the design §III-D rejects) ==@.";
  List.iter
    (fun app -> pp_sampling fmt (sampling_ablation ~scale ~iterations app))
    Nvsc_apps.Apps.all;
  Format.fprintf fmt
    "@.== Extension: hybrid organisation (horizontal vs DRAM-cache, §II) ==@.";
  List.iter
    (fun app -> pp_hybrid fmt (hybrid_design ~scale ~iterations app))
    Nvsc_apps.Apps.all;
  Format.fprintf fmt
    "@.== Extension: DRAM-cache locality crossover (PCRAM backing) ==@.";
  List.iter
    (fun (c : crossover_point) ->
      Format.fprintf fmt
        "hot fraction %.2f: hit rate %.2f, hierarchical %.0fns vs flat NVRAM \
         %.0fns -> %s@."
        c.hot_fraction c.hit_rate c.hierarchical_latency_ns
        c.flat_nvram_latency_ns
        (if c.dram_cache_wins then "DRAM cache wins"
         else "DRAM cache loses (the paper's poor-locality case)"))
    (dram_cache_crossover ~hot_fractions:[ 0.99; 0.95; 0.9; 0.7; 0.5; 0.2 ] ());
  Format.fprintf fmt "@.== Extension: placement policies (§VII-C) ==@.";
  List.iter
    (fun app -> pp_placement fmt (placement_summary ~scale ~iterations app))
    Nvsc_apps.Apps.all;
  Format.fprintf fmt
    "@.== Extension: hybrid memory-system simulation (the run §V could \
     not do; STTRAM half) ==@.";
  List.iter
    (fun app ->
      pp_hybrid_simulation fmt (hybrid_simulation ~scale ~iterations app))
    Nvsc_apps.Apps.all;
  Format.fprintf fmt
    "@.== Extension: Table VI robustness to controller choices (cam) ==@.";
  List.iter
    (fun (label, powers) ->
      Format.fprintf fmt "%-45s" label;
      List.iter
        (fun ((t : Technology.t), p) -> Format.fprintf fmt " %s=%.3f" t.name p)
        powers;
      Format.pp_print_newline fmt ())
    (power_sensitivity ~scale ~iterations
       (Option.get (Nvsc_apps.Apps.find "cam")));
  Format.fprintf fmt
    "@.== Extension: main-memory traffic attribution (cam) ==@.";
  Traffic_attribution.pp_report fmt
    (Traffic_attribution.analyze
       (Scavenger.run
          Scavenger.Config.(
            default |> with_scale scale |> with_iterations iterations
            |> with_trace true)
          (Option.get (Nvsc_apps.Apps.find "cam"))));
  Format.fprintf fmt
    "@.== Extension: fine-grained dynamic placement (§VII-C's monitor, \
     nek5000) ==@.";
  pp_fine_grained fmt
    (fine_grained_placement ~scale ~iterations
       (Option.get (Nvsc_apps.Apps.find "nek5000")));
  Format.fprintf fmt
    "@.== Extension: multi-task representativeness (4 ranks, 20%% \
     imbalance) ==@.";
  List.iter
    (fun app ->
      Multi_task.pp fmt
        (Multi_task.run ~base_scale:scale ~iterations app))
    Nvsc_apps.Apps.all;
  Format.fprintf fmt
    "@.== Extension: figure 12 with true read/write asymmetry (posted \
     writes) ==@.";
  Format.fprintf fmt
    "the paper's read=write assumption is a performance lower bound (§V); \
     with posted writes:@.";
  let sym = Experiment.fig12_data ~config:Experiment.quick_config () in
  let asym =
    Experiment.fig12_data ~config:Experiment.quick_config ~asymmetric:true ()
  in
  List.iter2
    (fun (app, sym_points) (_, asym_points) ->
      let get points name =
        (List.find
           (fun (p : Nvsc_cpusim.Sensitivity.point) ->
             p.tech.Technology.name = name)
           points)
          .Nvsc_cpusim.Sensitivity.normalized_runtime
      in
      Format.fprintf fmt
        "%-8s PCRAM %.3f -> %.3f   STTRAM %.3f -> %.3f@." app
        (get sym_points "PCRAM") (get asym_points "PCRAM")
        (get sym_points "STTRAM") (get asym_points "STTRAM"))
    sym asym;
  Format.fprintf fmt "@.== Extension: row-buffer policy ablation ==@.";
  let r =
    Scavenger.run
      Scavenger.Config.(
        default |> with_scale scale |> with_iterations iterations
        |> with_trace true)
      (Option.get (Nvsc_apps.Apps.find "s3d"))
  in
  List.iter
    (fun (policy, (s : Nvsc_dramsim.Controller.stats)) ->
      Format.fprintf fmt
        "s3d %-12s row-hit %.2f  avg latency %.1fns  power %a@."
        (match policy with
        | Nvsc_dramsim.Controller.Open_page -> "open-page"
        | Nvsc_dramsim.Controller.Closed_page -> "closed-page")
        s.row_hit_rate s.avg_latency_ns Nvsc_util.Units.pp_watts s.avg_power_w)
    (row_policy_ablation
       (Option.get r.Scavenger.mem_trace)
       ~tech:(Technology.get Technology.DDR3))
