module Ctx = Nvsc_appkit.Ctx
module Mem_object = Nvsc_memtrace.Mem_object
module Sink = Nvsc_memtrace.Sink

type window_counts = (int * int * int) list

type t = {
  ctx : Ctx.t;
  window_refs : int;
  on_window : window_counts -> unit;
  counts : (int, int ref * int ref) Hashtbl.t;
  mutable in_window : int;
  mutable windows : int;
  mutable seen : int;
}

let deliver t =
  if t.in_window > 0 then begin
    let out =
      Hashtbl.fold
        (fun obj_id (r, w) acc -> (obj_id, !r, !w) :: acc)
        t.counts []
      |> List.sort compare
    in
    Hashtbl.reset t.counts;
    t.in_window <- 0;
    t.windows <- t.windows + 1;
    t.on_window out
  end

let attach ctx ~window_refs ~on_window =
  if window_refs <= 0 then invalid_arg "Fine_monitor.attach: window_refs";
  let t =
    {
      ctx;
      window_refs;
      on_window;
      counts = Hashtbl.create 256;
      in_window = 0;
      windows = 0;
      seen = 0;
    }
  in
  (* Attributed batches carry the emission-time object ids, so the monitor
     needs no address re-resolution at delivery time. *)
  Ctx.add_attributed_sink ctx (fun batch obj_ids ~first ~n ->
      for i = first to first + n - 1 do
        t.seen <- t.seen + 1;
        let id = obj_ids.(i) in
        if id >= 0 then begin
          let r, w =
            match Hashtbl.find_opt t.counts id with
            | Some cell -> cell
            | None ->
              let cell = (ref 0, ref 0) in
              Hashtbl.add t.counts id cell;
              cell
          in
          if Sink.Batch.is_write batch i then incr w else incr r
        end;
        t.in_window <- t.in_window + 1;
        if t.in_window >= t.window_refs then deliver t
      done);
  t

let flush t =
  Ctx.flush_refs t.ctx;
  deliver t

let windows t = t.windows
let references_seen t = t.seen
