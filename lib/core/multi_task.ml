type task_summary = {
  task : int;
  scale : float;
  footprint_bytes : int;
  stack : Stack_analysis.summary;
}

type aggregate = {
  app_name : string;
  tasks : task_summary list;
  footprint_total : int;
  ratio_mean : float;
  ratio_rel_spread : float;
  pct_mean : float;
  pct_rel_spread : float;
  representative : bool;
}

let spread mean values =
  if mean = 0. then 0.
  else begin
    let mn = List.fold_left Float.min infinity values in
    let mx = List.fold_left Float.max neg_infinity values in
    (mx -. mn) /. mean
  end

let run ?(tasks = 4) ?(base_scale = 0.5) ?(iterations = 4) ?(imbalance = 0.2)
    (module A : Nvsc_apps.Workload.APP) =
  if tasks <= 0 then invalid_arg "Multi_task.run: tasks";
  if imbalance < 0. || imbalance >= 1. then invalid_arg "Multi_task.run: imbalance";
  let summaries =
    List.init tasks (fun task ->
        (* deterministic imbalance: tasks spread evenly in
           [-imbalance, +imbalance] around the base scale *)
        let f =
          if tasks = 1 then 0.
          else (2. *. float_of_int task /. float_of_int (tasks - 1)) -. 1.
        in
        let scale = base_scale *. (1. +. (imbalance *. f)) in
        let r =
          Scavenger.run
            Scavenger.Config.(
              default |> with_scale scale |> with_iterations iterations)
            (module A)
        in
        {
          task;
          scale;
          footprint_bytes = r.Scavenger.footprint_bytes;
          stack = Stack_analysis.summarize r;
        })
  in
  let ratios =
    List.map (fun t -> t.stack.Stack_analysis.rw_ratio) summaries
  in
  let pcts =
    List.map (fun t -> t.stack.Stack_analysis.reference_pct) summaries
  in
  let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
  let ratio_mean = mean ratios and pct_mean = mean pcts in
  let ratio_rel_spread = spread ratio_mean ratios in
  let pct_rel_spread = spread pct_mean pcts in
  {
    app_name = A.name;
    tasks = summaries;
    footprint_total =
      List.fold_left (fun acc t -> acc + t.footprint_bytes) 0 summaries;
    ratio_mean;
    ratio_rel_spread;
    pct_mean;
    pct_rel_spread;
    representative = ratio_rel_spread < 0.1 && pct_rel_spread < 0.1;
  }

let pp fmt a =
  Format.fprintf fmt
    "%-8s %d tasks, total footprint %a: stack ratio %.2f (spread %.1f%%), \
     stack share %.1f%% (spread %.1f%%) -> one rank is %s@."
    a.app_name (List.length a.tasks) Nvsc_util.Units.pp_bytes a.footprint_total
    a.ratio_mean
    (100. *. a.ratio_rel_spread)
    (100. *. a.pct_mean)
    (100. *. a.pct_rel_spread)
    (if a.representative then "representative" else "NOT representative")
