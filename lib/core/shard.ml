module Sink = Nvsc_memtrace.Sink
module Access = Nvsc_memtrace.Access
module Layout = Nvsc_memtrace.Layout
module Trace_log = Nvsc_memtrace.Trace_log
module Cache = Nvsc_cachesim.Cache
module Shard_filter = Nvsc_cachesim.Shard_filter
module Pool = Nvsc_team.Pool
module Ring = Nvsc_team.Ring

(* A shard team: k filter domains behind per-domain SPSC rings, fed
   zero-copy from the generating domain's emission batches.

   Transport protocol (DESIGN.md "Sharded simulation"):

   - The context's [cache-hierarchy] sink calls {!feed} with each filled
     batch slice.  [feed] scans the slice once on the producing domain
     ([Shard_filter.partition]) to build per-shard index lists in the
     slot, stamps the slot with a reference count equal to the number of
     shards that received work, and pushes one descriptor (slot, index
     list, global base index) to each such shard's ring.  The batch
     itself is never copied — its Bigarray storage is read in place by
     all consuming shards, each touching only its own references.
   - At the end of the same flush, the context's batch-exchange hook
     calls {!exchange}: the team keeps the filled batch and hands back a
     recycled one from the free list (blocking if all are in flight —
     that wait is the pipeline's backpressure).  Generation of the next
     batch then overlaps with filtering of this one.
   - Each worker pops descriptors, filters its residue class, and
     decrements the slot's refcount; the last consumer returns the slot
     to the free list.
   - {!finish} pushes an end-of-stream sentinel carrying the final
     reference count, waits for every worker ([Pool.await] — the team
     rides the same submit/await lifecycle as sweep and serve), and
     drains each shard's caches under keyed majors. *)

type slot = {
  sb : Sink.Batch.t;
  refc : int Atomic.t;
  idx_bufs : int array array; (* per-shard selected batch positions *)
  counts : int array;
}

type descriptor = {
  d_slot : slot;
  d_idxs : int array; (* alias of d_slot.idx_bufs.(shard) at enqueue time *)
  d_m : int; (* this shard's selected-reference count *)
  d_first : int;
  d_n : int; (* -1 = end-of-stream sentinel *)
  d_base : int; (* global index of record [d_first]; total refs on sentinel *)
}

type t = {
  shards : int;
  filters : Shard_filter.t array;
  rings : descriptor Ring.t array;
  pool : Pool.t;
  mutable tickets : unit Pool.ticket array;
  free_mu : Mutex.t;
  free_nonempty : Condition.t;
  free : slot Queue.t;
  mutable live : slot option; (* slot whose batch the producer holds *)
  mutable fed : int;
  mutable enqueued : bool; (* live batch handed out during this flush *)
  mutable slot_waits : int; (* exchanges that blocked on the free list *)
  mutable finished : bool;
}

let effective_shards = Shard_filter.shards_for

(* Spare batches beyond the producer's own: enough that a short burst of
   capacity flushes never stalls the generator while shards catch up,
   small enough that the circulating working set stays cache-friendly. *)
let spare_slots = 4
let ring_depth = 8

let release_slot t slot =
  Mutex.lock t.free_mu;
  Queue.push slot t.free;
  Condition.signal t.free_nonempty;
  Mutex.unlock t.free_mu

let worker t i () =
  let ring = t.rings.(i) and f = t.filters.(i) in
  let rec loop () =
    let d = Ring.pop ring in
    if d.d_n < 0 then Shard_filter.drain f ~base:d.d_base
    else begin
      Shard_filter.consume_selected f d.d_slot.sb ~idxs:d.d_idxs ~m:d.d_m
        ~first:d.d_first ~base:d.d_base;
      if Atomic.fetch_and_add d.d_slot.refc (-1) = 1 then release_slot t d.d_slot;
      loop ()
    end
  in
  loop ()

let make_slot ~shards sb =
  {
    sb;
    refc = Atomic.make 0;
    (* one index list per shard, sized for a full-capacity slice: a
       single shard can own at most every reference of the slice *)
    idx_bufs =
      Array.init shards (fun _ -> Array.make (Sink.Batch.capacity sb) 0);
    counts = Array.make shards 0;
  }

let create ?l1d ?l2 ?events_hint ~shards ~batch_capacity () =
  if shards < 2 then invalid_arg "Shard.create: need at least 2 shards";
  let filters =
    Array.init shards (fun shard ->
        Shard_filter.create ?l1d ?l2 ?events_hint ~shards ~shard ())
  in
  let dummy_slot = make_slot ~shards:1 (Sink.Batch.create 1) in
  let dummy =
    {
      d_slot = dummy_slot;
      d_idxs = dummy_slot.idx_bufs.(0);
      d_m = 0;
      d_first = 0;
      d_n = 0;
      d_base = 0;
    }
  in
  let rings =
    Array.init shards (fun _ -> Ring.create ~capacity:ring_depth dummy)
  in
  let free = Queue.create () in
  for _ = 1 to spare_slots do
    let sb = Sink.Batch.create batch_capacity in
    (* the context only emits word-sized references and prefills sizes
       once at creation; recycled replacements must arrive the same way *)
    Sink.Batch.fill_sizes sb Layout.word;
    Queue.push (make_slot ~shards sb) free
  done;
  let pool = Pool.create ~jobs:shards () in
  let team =
    {
      shards;
      filters;
      rings;
      pool;
      tickets = [||];
      free_mu = Mutex.create ();
      free_nonempty = Condition.create ();
      free;
      live = None;
      fed = 0;
      enqueued = false;
      slot_waits = 0;
      finished = false;
    }
  in
  team.tickets <- Array.init shards (fun i -> Pool.submit pool (worker team i));
  team

let feed t batch ~first ~n =
  if t.finished then invalid_arg "Shard.feed: team already finished";
  if n > 0 then begin
    if t.enqueued then
      (* Two feeds inside one flush would reset a refcount still being
         decremented; the scavenger wiring delivers exactly one slice per
         flush, so this is a wiring error, not a runtime condition. *)
      invalid_arg "Shard.feed: batch already enqueued this flush";
    let slot =
      match t.live with
      | Some s when s.sb == batch -> s
      | _ ->
        (* first flush: adopt the producer's own batch into circulation *)
        let s = make_slot ~shards:t.shards batch in
        t.live <- Some s;
        s
    in
    (* The first flush doubles as the load-balancing sample: residues
       are LPT-packed onto shards by estimated simulation cost before
       any descriptor exists, so every worker observes one fixed
       assignment.  Output is assignment-invariant (the merge restores
       serial order and counters sum), so this can only improve the
       balance, never change a result. *)
    if t.fed = 0 then Shard_filter.rebalance t.filters batch ~first ~n;
    (* One producer-side scan replaces k worker-side scans: build each
       shard's index list here (overlapped with generation of the next
       batch), then hand descriptors only to shards with work.  The
       refcount equals the number of consumers so idle shards never
       touch the slot. *)
    Shard_filter.partition t.filters.(0) batch ~first ~n
      ~index_bufs:slot.idx_bufs ~counts:slot.counts;
    let consumers = ref 0 in
    for i = 0 to t.shards - 1 do
      if slot.counts.(i) > 0 then incr consumers
    done;
    if !consumers = 0 then ()
    else begin
      Atomic.set slot.refc !consumers;
      let d_base = t.fed in
      for i = 0 to t.shards - 1 do
        let m = slot.counts.(i) in
        if m > 0 then
          Ring.push t.rings.(i)
            {
              d_slot = slot;
              d_idxs = slot.idx_bufs.(i);
              d_m = m;
              d_first = first;
              d_n = n;
              d_base;
            }
      done;
      t.enqueued <- true
    end;
    t.fed <- t.fed + n
  end

let exchange t batch =
  if not t.enqueued then batch
  else begin
    t.enqueued <- false;
    Mutex.lock t.free_mu;
    if Queue.is_empty t.free then begin
      (* the generator outran the shards: this stall is the pipeline's
         backpressure, and the profile counter that makes it visible *)
      t.slot_waits <- t.slot_waits + 1;
      while Queue.is_empty t.free do
        Condition.wait t.free_nonempty t.free_mu
      done
    end;
    let next = Queue.pop t.free in
    Mutex.unlock t.free_mu;
    t.live <- Some next;
    next.sb
  end

let fed t = t.fed

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let dummy_slot = make_slot ~shards:1 (Sink.Batch.create 1) in
    let sentinel =
      {
        d_slot = dummy_slot;
        d_idxs = dummy_slot.idx_bufs.(0);
        d_m = 0;
        d_first = 0;
        d_n = -1;
        d_base = t.fed;
      }
    in
    Array.iter (fun ring -> Ring.push ring sentinel) t.rings;
    let first_failure = ref None in
    Array.iter
      (fun ticket ->
        match Pool.await ticket with
        | Pool.Done () -> ()
        | Pool.Failed e -> if !first_failure = None then first_failure := Some e
        | Pool.Cancelled -> ())
      t.tickets;
    Pool.shutdown t.pool;
    match !first_failure with Some e -> raise e | None -> ()
  end

(* Deterministic k-way merge: each shard's event keys are strictly
   increasing and the key spaces are disjoint (a (reference, line) pair
   belongs to exactly one shard; a drained set likewise), so repeatedly
   taking the minimum head key replays the exact serial emission order.
   Sums and the merged trace are therefore independent of worker timing:
   byte-identical output for any shard count. *)
let merge_into_trace t log =
  let k = t.shards in
  let evs = Array.map Shard_filter.raw_events t.filters in
  let idx = Array.make k 0 in
  let line_bytes = Shard_filter.line_bytes t.filters.(0) in
  let total = Array.fold_left (fun acc (_, _, n) -> acc + n) 0 evs in
  for _ = 1 to total do
    let best = ref (-1) and best_key = ref max_int in
    for j = 0 to k - 1 do
      let keys, _, n = evs.(j) in
      let i = idx.(j) in
      if i < n && keys.(i) < !best_key then begin
        best_key := keys.(i);
        best := j
      end
    done;
    let j = !best in
    let _, addr_ops, _ = evs.(j) in
    let ao = addr_ops.(idx.(j)) in
    idx.(j) <- idx.(j) + 1;
    Trace_log.record_raw log ~addr:(ao lsr 1) ~size:line_bytes
      ~op:(if ao land 1 = 1 then Access.Write else Access.Read)
  done

let sum t f = Array.fold_left (fun acc flt -> acc + f flt) 0 t.filters

let accesses t = sum t Shard_filter.accesses
let memory_reads t = sum t Shard_filter.memory_reads
let memory_writes t = sum t Shard_filter.memory_writes

(* Merged miss rates via summed integer counters, then the same float
   division [Cache.miss_rate] performs — bit-identical to the serial
   result. *)
let miss_rate hits misses =
  let total = hits + misses in
  if total = 0 then 0. else float_of_int misses /. float_of_int total

let l1_miss_rate t =
  miss_rate
    (sum t (fun f -> Cache.hits (Shard_filter.l1d f)))
    (sum t (fun f -> Cache.misses (Shard_filter.l1d f)))

let l2_miss_rate t =
  miss_rate
    (sum t (fun f -> Cache.hits (Shard_filter.l2 f)))
    (sum t (fun f -> Cache.misses (Shard_filter.l2 f)))

let l1_evictions t = sum t (fun f -> Cache.evictions (Shard_filter.l1d f))
let l2_evictions t = sum t (fun f -> Cache.evictions (Shard_filter.l2 f))
let filters t = t.filters
let shards t = t.shards

let ring_stats t = Array.map Ring.stats t.rings
let slot_waits t = t.slot_waits

(* Mirror of [Controller_team.export_metrics] for the cache team: summed
   transport pressure lands in the process-wide registry so [--profile]
   and [client stats] report it alongside the replay/record volumes. *)
let export_metrics t =
  let pushes = Nvsc_obs.Metrics.counter "cache.team.ring.pushes"
  and pwaits = Nvsc_obs.Metrics.counter "cache.team.ring.producer_waits"
  and cwaits = Nvsc_obs.Metrics.counter "cache.team.ring.consumer_waits"
  and swaits = Nvsc_obs.Metrics.counter "cache.team.slot.waits" in
  Array.iter
    (fun ring ->
      let s = Ring.stats ring in
      Nvsc_obs.Metrics.Counter.add pushes s.Ring.pushes;
      Nvsc_obs.Metrics.Counter.add pwaits s.Ring.producer_waits;
      Nvsc_obs.Metrics.Counter.add cwaits s.Ring.consumer_waits)
    t.rings;
  Nvsc_obs.Metrics.Counter.add swaits t.slot_waits
