module Ctx = Nvsc_appkit.Ctx
module Layout = Nvsc_memtrace.Layout
module Mem_object = Nvsc_memtrace.Mem_object
module Object_registry = Nvsc_memtrace.Object_registry
module Counters = Nvsc_memtrace.Counters
module Sink = Nvsc_memtrace.Sink
module Trace_codec = Nvsc_memtrace.Trace_codec
module Trace_log = Nvsc_memtrace.Trace_log
module Hierarchy = Nvsc_cachesim.Hierarchy
module Cache = Nvsc_cachesim.Cache
module Access = Nvsc_memtrace.Access
module Span = Nvsc_obs.Span

let record ?batch_capacity ?chunk_capacity ~scale ~iterations ~path
    (module A : Nvsc_apps.Workload.APP) =
  Span.with_ ~arg:A.name "trace.record" @@ fun () ->
  let ctx = Ctx.create ?batch_capacity () in
  let meta =
    {
      Trace_codec.app = A.name;
      description = A.description;
      input_description = A.input_description;
      paper_footprint_mb = A.paper_footprint_mb;
      scale;
      iterations;
      batch_capacity =
        (match batch_capacity with
        | Some c -> c
        | None -> Sink.default_capacity);
    }
  in
  (* descriptors by id, filled from lifecycle events, so the writer can
     snapshot an object into the chunk that first references it *)
  let objs : (int, Mem_object.t) Hashtbl.t = Hashtbl.create 256 in
  let w =
    Trace_codec.Writer.create ?chunk_capacity
      ~resolve:(fun id -> Hashtbl.find_opt objs id)
      ~path ~meta ()
  in
  match
    Ctx.add_event_sink ctx (function
      | Ctx.Alloc o | Ctx.Frame_push (o, _) ->
        Hashtbl.replace objs o.Mem_object.id o
      | Ctx.Free _ | Ctx.Frame_pop _ -> ()
      | Ctx.Phase_change p -> Trace_codec.Writer.add_phase w p
      | Ctx.Persist p -> Trace_codec.Writer.add_persist w p);
    Ctx.set_record_sink ctx
      (fun batch ~obj_ids ~instr_before ~instr_tail ~first ~n ->
        for i = first to first + n - 1 do
          let k = instr_before.(i) in
          if k > 0 then Trace_codec.Writer.add_instr w k;
          Trace_codec.Writer.add_ref w ~addr:(Sink.Batch.addr batch i)
            ~size:(Sink.Batch.size batch i)
            ~op:(Sink.Batch.op batch i)
            ~obj_id:obj_ids.(i)
        done;
        if instr_tail > 0 then Trace_codec.Writer.add_instr w instr_tail);
    A.run ~scale ctx ~iterations;
    Ctx.flush_refs ctx
  with
  | () ->
    let objects = Object_registry.objects (Ctx.registry ctx) in
    let stack_objects = Ctx.stack_objects ctx in
    Ctx.release ctx;
    Trace_codec.Writer.finish w ~objects ~stack_objects ()
  | exception e ->
    Trace_codec.Writer.abort w;
    raise e

(* --- replay ------------------------------------------------------------- *)

type tally = {
  mutable sr : int;
  mutable sw : int;
  mutable or_ : int;
  mutable ow : int;
}

let iteration_of_phase = function
  | Mem_object.Pre | Mem_object.Post -> 0
  | Mem_object.Main i -> i

let replay ?reader path =
  Span.with_ ~arg:path "trace.replay" @@ fun () ->
  let r = Trace_codec.Reader.open_ ?mode:reader path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let meta = Trace_codec.Reader.meta r in
  let iterations = meta.Trace_codec.iterations in
  let counters = Counters.create () in
  let tallies =
    Array.init (iterations + 1) (fun _ -> { sr = 0; sw = 0; or_ = 0; ow = 0 })
  in
  let cur_tally = ref tallies.(0) in
  let in_main = ref false in
  let unattributed = ref 0 in
  let batches = ref 0 in
  let trace = Trace_log.create () in
  let hierarchy =
    Hierarchy.create ~sink:(Trace_log.sink ~name:"trace-log" trace) ()
  in
  Trace_codec.stream r
    ~on_phase:(fun p ->
      let iter = iteration_of_phase p in
      Counters.set_iteration counters iter;
      if iter >= 0 && iter <= iterations then cur_tally := tallies.(iter);
      in_main := match p with Mem_object.Main _ -> true | _ -> false)
    ~on_refs:(fun batch ~obj_ids ~first ~n ->
      incr batches;
      let tal = !cur_tally in
      for i = first to first + n - 1 do
        let addr = Sink.Batch.addr batch i in
        let op = Sink.Batch.op batch i in
        (* same classification as live emission: globals and heap are
           contiguous, everything outside the stack window tallies as
           "other" *)
        if addr > Layout.stack_limit && addr <= Layout.stack_top then
          match op with
          | Access.Read -> tal.sr <- tal.sr + 1
          | Access.Write -> tal.sw <- tal.sw + 1
        else begin
          match op with
          | Access.Read -> tal.or_ <- tal.or_ + 1
          | Access.Write -> tal.ow <- tal.ow + 1
        end;
        let obj_id = obj_ids.(i) in
        if obj_id >= 0 then Counters.record counters ~obj_id ~op
        else incr unattributed
      done;
      if !in_main then Hierarchy.consume hierarchy batch ~first ~n)
    ();
  Hierarchy.drain hierarchy;
  let objects =
    Trace_codec.Reader.objects r @ Trace_codec.Reader.stack_objects r
  in
  let metrics = Object_metrics.collect_of ~counters ~objects ~iterations in
  let footprint_bytes =
    List.fold_left (fun acc m -> acc + Object_metrics.size_bytes m) 0 metrics
  in
  {
    Scavenger.app_name = meta.Trace_codec.app;
    description = meta.Trace_codec.description;
    input_description = meta.Trace_codec.input_description;
    paper_footprint_mb = meta.Trace_codec.paper_footprint_mb;
    iterations;
    scale = meta.Trace_codec.scale;
    footprint_bytes;
    total_main_refs = Object_metrics.total_main_refs_of counters ~iterations;
    metrics;
    fast_tallies =
      Array.map
        (fun t ->
          {
            Ctx.stack_reads = t.sr;
            stack_writes = t.sw;
            other_reads = t.or_;
            other_writes = t.ow;
          })
        tallies;
    mem_trace = Some trace;
    l1_miss_rate = Cache.miss_rate (Hierarchy.l1d hierarchy);
    l2_miss_rate = Cache.miss_rate (Hierarchy.l2 hierarchy);
    unattributed = !unattributed;
    pipeline =
      (* replay has no emission batch: one "batch" per delivered slice,
         all boundary flushes *)
      {
        Ctx.batch_capacity = meta.Trace_codec.batch_capacity;
        refs = Trace_codec.Reader.refs r;
        batches = !batches;
        capacity_flushes = 0;
        boundary_flushes = !batches;
        sinks = [];
      };
    sanitizer = None;
    persist_report = None;
    persist_stats = None;
  }

let perf_replay ?reader path model =
  Span.with_ ~arg:path "trace.perf_replay" @@ fun () ->
  let r = Trace_codec.Reader.open_ ?mode:reader path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  let in_main = ref false in
  Trace_codec.stream r
    ~on_phase:(fun p ->
      in_main := match p with Mem_object.Main _ -> true | _ -> false)
    ~on_instr:(fun n ->
      if !in_main then Nvsc_cpusim.Perf_model.instructions model n)
    ~on_refs:(fun batch ~obj_ids:_ ~first ~n ->
      if !in_main then Nvsc_cpusim.Perf_model.consume model batch ~first ~n)
    ()

let info path =
  let r = Trace_codec.Reader.open_ path in
  Fun.protect ~finally:(fun () -> Trace_codec.Reader.close r) @@ fun () ->
  (Trace_codec.Reader.meta r, Trace_codec.Reader.digest r)
