(** NV-Scavenger: run an instrumented application and collect everything
    the paper's analyses need in one pass (paper §III, figure 1).

    The pipeline mirrors the tool's diagram: the application's reference
    stream is attributed to memory objects on the fly (statistics, no raw
    trace retained), while a copy of the stream is filtered through the
    Table II cache hierarchy to produce the main-memory trace handed to
    the power simulator. *)

type result = {
  app_name : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  iterations : int;
  scale : float;
  footprint_bytes : int;  (** sum of all object sizes (scaled run) *)
  total_main_refs : int;  (** references during main-loop iterations *)
  metrics : Object_metrics.t list;
  fast_tallies : Nvsc_appkit.Ctx.fast_tally array;
      (** index 0 = pre+post, 1..iterations = main loop (fast stack
          method) *)
  mem_trace : Nvsc_memtrace.Trace_log.t option;
      (** cache-filtered main-memory trace of the main loop, when
          requested *)
  l1_miss_rate : float;
  l2_miss_rate : float;
  unattributed : int;  (** references that resolved to no object *)
  pipeline : Nvsc_appkit.Ctx.pipeline_stats;
      (** reference-stream transport counters: batches delivered, flush
          causes, per-sink totals (pipeline self-observability) *)
  sanitizer : Nvsc_sanitizer.Diagnostic.report option;
      (** NVSC-San trace-sanitizer report, when [sanitize] was set *)
}

val run :
  ?scale:float ->
  ?iterations:int ->
  ?with_trace:bool ->
  ?sampling:int * int ->
  ?batch_capacity:int ->
  ?sanitize:bool ->
  ?check_init:bool ->
  (module Nvsc_apps.Workload.APP) ->
  result
(** Defaults: [scale = 1.0], [iterations = 10] (the paper collects the
    first 10 iterations of the main loop), [with_trace = false].
    [sampling = (period, sample_length)] enables the §III-D sampled
    instrumentation the paper rejects (see {!Extensions}).
    [batch_capacity] overrides the emission batch size (results are
    invariant in it).  [sanitize] tees the NVSC-San trace sanitizer into
    the pipeline: the context gets allocation redzones, batch accessors run
    bounds-checked, and the result carries the diagnostic report;
    [check_init] additionally enables uninitialised-heap-read tracking. *)

val stack_metrics : result -> Object_metrics.t list
val global_metrics : result -> Object_metrics.t list
val heap_metrics : result -> Object_metrics.t list
val global_and_heap_metrics : result -> Object_metrics.t list
