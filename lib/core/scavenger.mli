(** NV-Scavenger: run an instrumented application and collect everything
    the paper's analyses need in one pass (paper §III, figure 1).

    The pipeline mirrors the tool's diagram: the application's reference
    stream is attributed to memory objects on the fly (statistics, no raw
    trace retained), while a copy of the stream is filtered through the
    Table II cache hierarchy to produce the main-memory trace handed to
    the power simulator.

    The run is configured by a first-class {!Config.t} record (no optional
    -argument sprawl): build one from {!Config.default} with the
    functional updates, and pass it to {!run}.  The record also carries an
    {!Nvsc_obs.t} handle, so one run can be profiled without touching the
    global recorder.  Runs are instrumented with {!Nvsc_obs.Span}s
    ([scavenger.run] > [scavenger.setup] / [scavenger.app] /
    [scavenger.analysis]) and feed the {!Nvsc_obs.Metrics} registry
    ([scavenger.runs], [scavenger.pipeline.*], [scavenger.unattributed],
    [sanitizer.findings]); both are inert until the recorder is armed
    (spans) or a snapshot is taken (metrics). *)

type result = {
  app_name : string;
  description : string;
  input_description : string;
  paper_footprint_mb : float;
  iterations : int;
  scale : float;
  footprint_bytes : int;  (** sum of all object sizes (scaled run) *)
  total_main_refs : int;  (** references during main-loop iterations *)
  metrics : Object_metrics.t list;
  fast_tallies : Nvsc_appkit.Ctx.fast_tally array;
      (** index 0 = pre+post, 1..iterations = main loop (fast stack
          method) *)
  mem_trace : Nvsc_memtrace.Trace_log.t option;
      (** cache-filtered main-memory trace of the main loop, when
          requested *)
  l1_miss_rate : float;
  l2_miss_rate : float;
  unattributed : int;  (** references that resolved to no object *)
  pipeline : Nvsc_appkit.Ctx.pipeline_stats;
      (** reference-stream transport counters: batches delivered, flush
          causes, per-sink totals (pipeline self-observability) *)
  sanitizer : Nvsc_sanitizer.Diagnostic.report option;
      (** NVSC-San trace-sanitizer report, when [sanitize] was set *)
  persist_report : Nvsc_sanitizer.Diagnostic.report option;
      (** NVSC-Persist crash-consistency report, when [persist] was set *)
  persist_stats : Nvsc_sanitizer.Persist_check.stats option;
      (** the checker's flush/fence work counters — what
          {!Nvsc_nvram.Persist_cost} prices per technology *)
}

(** Run configuration.  {!Config.default} is the paper's setting: full
    scale, 10 main-loop iterations, no trace, no sampling, no sanitizer,
    observability handle {!Nvsc_obs.off}. *)
module Config : sig
  type t = {
    scale : float;  (** data-size multiplier *)
    iterations : int;  (** main-loop iterations to instrument *)
    with_trace : bool;  (** retain the cache-filtered main-memory trace *)
    sampling : (int * int) option;  (** [(period, sample_length)], §III-D *)
    batch_capacity : int option;
        (** emission batch size override (results are invariant in it) *)
    sanitize : bool;  (** attach the NVSC-San trace sanitizer *)
    check_init : bool;  (** sanitizer: also track uninitialised reads *)
    persist : bool;  (** attach the NVSC-Persist crash-consistency checker *)
    shards : int;
        (** filter-stage parallelism: shard the cache simulation by set
            index across this many worker domains (clamped to the largest
            power of two dividing both levels' set counts; 1 = serial).
            Output is byte-identical for every shard count. *)
    obs : Nvsc_obs.t;
        (** arm span recording for this run ({!Nvsc_obs.on}) or leave the
            recorder as-is ({!Nvsc_obs.off}) *)
  }

  val default : t

  (** Functional updates, pipeline-style:
      [Config.(default |> with_scale 0.5 |> with_trace true)]. *)

  val with_scale : float -> t -> t
  val with_iterations : int -> t -> t
  val with_trace : bool -> t -> t
  val with_sampling : period:int -> sample_length:int -> t -> t
  val with_batch_capacity : int -> t -> t

  val with_sanitize : ?check_init:bool -> bool -> t -> t
  (** [check_init] defaults to false and is only meaningful when the
      sanitizer is being enabled. *)

  val with_persist : bool -> t -> t
  (** Attach {!Nvsc_sanitizer.Persist_check} to the run: the result's
      [persist_report] carries its verdict on the app's epoch/flush/fence
      annotations.  Independent of [sanitize]. *)

  val with_shards : int -> t -> t
  (** Filter-stage parallelism (≥ 1; only meaningful with
      [with_trace true]).  See {!Shard}. *)

  val with_obs : Nvsc_obs.t -> t -> t
end

val run : Config.t -> (module Nvsc_apps.Workload.APP) -> result
(** Run the application under the given configuration.  [sanitize] tees
    the NVSC-San trace sanitizer into the pipeline: the context gets
    allocation redzones, batch accessors run bounds-checked, and the
    result carries the diagnostic report. *)

val stack_metrics : result -> Object_metrics.t list
val global_metrics : result -> Object_metrics.t list
val heap_metrics : result -> Object_metrics.t list
val global_and_heap_metrics : result -> Object_metrics.t list
