(** Fine-time-granularity reference monitor (paper §VII-C).

    "Nek5000 has quite diverse reference rates across iterations.  To
    leverage NVRAM for those pages, a memory reference monitor working at a
    fine time granularity should be applied to dynamically decide the
    optimal location of a memory page."

    This monitor subscribes to an instrumentation context's reference
    stream and delivers per-object read/write counts every [window_refs]
    references — a time base much finer than the main-loop iteration — so
    a dynamic placement policy can react inside an iteration. *)

type window_counts = (int * int * int) list
(** [(object id, reads, writes)] for objects touched in the window. *)

type t

val attach :
  Nvsc_appkit.Ctx.t ->
  window_refs:int ->
  on_window:(window_counts -> unit) ->
  t
(** Register the monitor as an attributed batch sink on the context:
    window counts use the emission-time attribution carried alongside each
    batch.  [on_window] fires each time [window_refs] references have been
    observed (and once more for a final partial window via {!flush}). *)

val flush : t -> unit
(** Flush the context's buffered references, then deliver the current
    partial window, if any. *)

val windows : t -> int
(** Completed windows so far. *)

val references_seen : t -> int
