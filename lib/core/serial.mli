(** JSON serialization of the analysis results.

    One codec per analysis record the sweep engine's content-addressed
    cache persists: encoding is deterministic (field order fixed, floats
    at round-trip precision) and [of_json] is a strict inverse — a cached
    cell decoded from disk renders byte-identically to a freshly computed
    one.  Decoders raise {!Nvsc_util.Json.Parse_error} on shape mismatch,
    which the cache treats as a miss. *)

module Json = Nvsc_util.Json

val kind_to_json : Nvsc_memtrace.Layout.kind -> Json.t
val kind_of_json : Json.t -> Nvsc_memtrace.Layout.kind

val verdict_to_json : Nvsc_nvram.Suitability.verdict -> Json.t
val verdict_of_json : Json.t -> Nvsc_nvram.Suitability.verdict

val summary_to_json : Stack_analysis.summary -> Json.t
val summary_of_json : Json.t -> Stack_analysis.summary

val distribution_to_json : Stack_analysis.distribution -> Json.t
val distribution_of_json : Json.t -> Stack_analysis.distribution

val object_report_to_json : Object_analysis.report -> Json.t
val object_report_of_json : Json.t -> Object_analysis.report

val cdf_to_json : Usage_variance.cdf_point list -> Json.t
val cdf_of_json : Json.t -> Usage_variance.cdf_point list

val variance_to_json : Usage_variance.variance -> Json.t
val variance_of_json : Json.t -> Usage_variance.variance

val pipeline_to_json : Nvsc_appkit.Ctx.pipeline_stats -> Json.t
val pipeline_of_json : Json.t -> Nvsc_appkit.Ctx.pipeline_stats

val assessment_to_json : Nvsc_placement.Hybrid_memory.assessment -> Json.t
val assessment_of_json : Json.t -> Nvsc_placement.Hybrid_memory.assessment
