module Json = Nvsc_util.Json
module Layout = Nvsc_memtrace.Layout
module Suitability = Nvsc_nvram.Suitability

open Json

let fail msg = raise (Json.Parse_error msg)

let kind_to_json k = Str (Layout.kind_to_string k)

let kind_of_json j =
  match to_str j with
  | "global" -> Layout.Global
  | "heap" -> Layout.Heap
  | "stack" -> Layout.Stack
  | s -> fail (Printf.sprintf "Serial: unknown object kind %S" s)

let verdict_to_json (v : Suitability.verdict) =
  Str
    (match v with
    | Nvram_friendly -> "friendly"
    | Nvram_candidate -> "candidate"
    | Dram_preferred -> "dram")

let verdict_of_json j : Suitability.verdict =
  match to_str j with
  | "friendly" -> Nvram_friendly
  | "candidate" -> Nvram_candidate
  | "dram" -> Dram_preferred
  | s -> fail (Printf.sprintf "Serial: unknown verdict %S" s)

(* --- stack analysis ----------------------------------------------------- *)

let summary_to_json (s : Stack_analysis.summary) =
  Obj
    [
      ("app", Str s.app_name);
      ("rw_ratio", float s.rw_ratio);
      ("first_iter_ratio", float s.first_iter_ratio);
      ("steady_ratio", float s.steady_ratio);
      ("reference_pct", float s.reference_pct);
    ]

let summary_of_json j : Stack_analysis.summary =
  {
    app_name = to_str (member "app" j);
    rw_ratio = to_float (member "rw_ratio" j);
    first_iter_ratio = to_float (member "first_iter_ratio" j);
    steady_ratio = to_float (member "steady_ratio" j);
    reference_pct = to_float (member "reference_pct" j);
  }

let frame_to_json (f : Stack_analysis.frame_row) =
  Obj
    [
      ("routine", Str f.routine);
      ("reads", Int f.reads);
      ("writes", Int f.writes);
      ("rw_ratio", float f.rw_ratio);
      ("ref_share", float f.ref_share);
    ]

let frame_of_json j : Stack_analysis.frame_row =
  {
    routine = to_str (member "routine" j);
    reads = to_int (member "reads" j);
    writes = to_int (member "writes" j);
    rw_ratio = to_float (member "rw_ratio" j);
    ref_share = to_float (member "ref_share" j);
  }

let distribution_to_json (d : Stack_analysis.distribution) =
  Obj
    [
      ("frames", List (List.map frame_to_json d.frames));
      ("pct_gt_10", float d.pct_objects_ratio_gt_10);
      ("pct_gt_50", float d.pct_objects_ratio_gt_50);
      ("refs_gt_10", float d.refs_share_ratio_gt_10);
      ("refs_gt_50", float d.refs_share_ratio_gt_50);
    ]

let distribution_of_json j : Stack_analysis.distribution =
  {
    frames = List.map frame_of_json (to_list (member "frames" j));
    pct_objects_ratio_gt_10 = to_float (member "pct_gt_10" j);
    pct_objects_ratio_gt_50 = to_float (member "pct_gt_50" j);
    refs_share_ratio_gt_10 = to_float (member "refs_gt_10" j);
    refs_share_ratio_gt_50 = to_float (member "refs_gt_50" j);
  }

(* --- object analysis ---------------------------------------------------- *)

let row_to_json (r : Object_analysis.row) =
  Obj
    [
      ("name", Str r.name);
      ("kind", kind_to_json r.kind);
      ("size", Int r.size_bytes);
      ("reads", Int r.reads);
      ("writes", Int r.writes);
      ("rw_ratio", float r.rw_ratio);
      ("ref_share", float r.ref_share);
      ("verdict", verdict_to_json r.verdict);
    ]

let row_of_json j : Object_analysis.row =
  {
    name = to_str (member "name" j);
    kind = kind_of_json (member "kind" j);
    size_bytes = to_int (member "size" j);
    reads = to_int (member "reads" j);
    writes = to_int (member "writes" j);
    rw_ratio = to_float (member "rw_ratio" j);
    ref_share = to_float (member "ref_share" j);
    verdict = verdict_of_json (member "verdict" j);
  }

let object_report_to_json (r : Object_analysis.report) =
  Obj
    [
      ("app", Str r.app_name);
      ("rows", List (List.map row_to_json r.rows));
      ("footprint", Int r.footprint_bytes);
      ("read_only_bytes", Int r.read_only_bytes);
      ("read_only_fraction", float r.read_only_fraction);
      ("ratio_gt_50_bytes", Int r.ratio_gt_50_bytes);
      ("ratio_gt_1_bytes", Int r.ratio_gt_1_bytes);
      ("ratio_gt_1_fraction", float r.ratio_gt_1_fraction);
      ("nvram_friendly_bytes", Int r.nvram_friendly_bytes);
      ("nvram_friendly_fraction", float r.nvram_friendly_fraction);
    ]

let object_report_of_json j : Object_analysis.report =
  {
    app_name = to_str (member "app" j);
    rows = List.map row_of_json (to_list (member "rows" j));
    footprint_bytes = to_int (member "footprint" j);
    read_only_bytes = to_int (member "read_only_bytes" j);
    read_only_fraction = to_float (member "read_only_fraction" j);
    ratio_gt_50_bytes = to_int (member "ratio_gt_50_bytes" j);
    ratio_gt_1_bytes = to_int (member "ratio_gt_1_bytes" j);
    ratio_gt_1_fraction = to_float (member "ratio_gt_1_fraction" j);
    nvram_friendly_bytes = to_int (member "nvram_friendly_bytes" j);
    nvram_friendly_fraction = to_float (member "nvram_friendly_fraction" j);
  }

(* --- usage variance ----------------------------------------------------- *)

let cdf_to_json points =
  List
    (List.map
       (fun (p : Usage_variance.cdf_point) ->
         Obj
           [
             ("iters", Int p.iterations_used);
             ("bytes", Int p.cumulative_bytes);
           ])
       points)

let cdf_of_json j =
  List.map
    (fun p : Usage_variance.cdf_point ->
      {
        iterations_used = to_int (member "iters" p);
        cumulative_bytes = to_int (member "bytes" p);
      })
    (to_list j)

let float_array_to_json a = List (Array.to_list (Array.map Json.float a))

let float_array_of_json j =
  Array.of_list (List.map to_float (to_list j))

let float_matrix_to_json m = List (Array.to_list (Array.map float_array_to_json m))

let float_matrix_of_json j =
  Array.of_list (List.map float_array_of_json (to_list j))

let variance_to_json (v : Usage_variance.variance) =
  Obj
    [
      ("iterations", Int v.iterations);
      ("objects", Int v.objects_considered);
      ("ratio_dist", float_matrix_to_json v.ratio_dist);
      ("rate_dist", float_matrix_to_json v.rate_dist);
      ("rate_unchanged", float_array_to_json v.rate_unchanged);
    ]

let variance_of_json j : Usage_variance.variance =
  {
    iterations = to_int (member "iterations" j);
    objects_considered = to_int (member "objects" j);
    ratio_dist = float_matrix_of_json (member "ratio_dist" j);
    rate_dist = float_matrix_of_json (member "rate_dist" j);
    rate_unchanged = float_array_of_json (member "rate_unchanged" j);
  }

(* --- pipeline counters -------------------------------------------------- *)

let sink_stats_to_json (s : Nvsc_memtrace.Sink.stats) =
  Obj
    [
      ("name", Str s.name);
      ("pushed", Int s.pushed);
      ("batches", Int s.batches);
      ("capacity_flushes", Int s.capacity_flushes);
      ("boundary_flushes", Int s.boundary_flushes);
    ]

let sink_stats_of_json j : Nvsc_memtrace.Sink.stats =
  {
    name = to_str (member "name" j);
    pushed = to_int (member "pushed" j);
    batches = to_int (member "batches" j);
    capacity_flushes = to_int (member "capacity_flushes" j);
    boundary_flushes = to_int (member "boundary_flushes" j);
  }

let pipeline_to_json (p : Nvsc_appkit.Ctx.pipeline_stats) =
  Obj
    [
      ("batch_capacity", Int p.batch_capacity);
      ("refs", Int p.refs);
      ("batches", Int p.batches);
      ("capacity_flushes", Int p.capacity_flushes);
      ("boundary_flushes", Int p.boundary_flushes);
      ("sinks", List (List.map sink_stats_to_json p.sinks));
    ]

let pipeline_of_json j : Nvsc_appkit.Ctx.pipeline_stats =
  {
    batch_capacity = to_int (member "batch_capacity" j);
    refs = to_int (member "refs" j);
    batches = to_int (member "batches" j);
    capacity_flushes = to_int (member "capacity_flushes" j);
    boundary_flushes = to_int (member "boundary_flushes" j);
    sinks = List.map sink_stats_of_json (to_list (member "sinks" j));
  }

(* --- placement assessment ----------------------------------------------- *)

let assessment_to_json (a : Nvsc_placement.Hybrid_memory.assessment) =
  Obj
    [
      ("nvram_fraction", float a.nvram_fraction);
      ("standby_saving", float a.standby_saving);
      ("write_traffic", float a.write_traffic_to_nvram);
      ("read_traffic", float a.read_traffic_to_nvram);
      ("avg_read_latency_ns", float a.avg_read_latency_ns);
      ("avg_write_latency_ns", float a.avg_write_latency_ns);
      ("slowdown_bound", float a.slowdown_bound);
    ]

let assessment_of_json j : Nvsc_placement.Hybrid_memory.assessment =
  {
    nvram_fraction = to_float (member "nvram_fraction" j);
    standby_saving = to_float (member "standby_saving" j);
    write_traffic_to_nvram = to_float (member "write_traffic" j);
    read_traffic_to_nvram = to_float (member "read_traffic" j);
    avg_read_latency_ns = to_float (member "avg_read_latency_ns" j);
    avg_write_latency_ns = to_float (member "avg_write_latency_ns" j);
    slowdown_bound = to_float (member "slowdown_bound" j);
  }
