let line_bytes = 64
let fence_drain_ns = 100.

type t = {
  tech : Technology.t;
  flush_ns : float;
  fence_ns : float;
  total_ns : float;
}

let charge ~tech ~flushed_lines ~fences =
  let flush_ns =
    float_of_int flushed_lines *. tech.Technology.write_latency_ns
  in
  let fence_ns = float_of_int fences *. fence_drain_ns in
  { tech; flush_ns; fence_ns; total_ns = flush_ns +. fence_ns }

let pp fmt t =
  Format.fprintf fmt "%-6s flush %.1f us + fence %.1f us = %.1f us"
    t.tech.Technology.name (t.flush_ns /. 1e3) (t.fence_ns /. 1e3)
    (t.total_ns /. 1e3)
