(** Durability-traffic cost model: what the flush/fence annotations of
    NVSC-Persist cost on each memory technology.

    Each flushed cache line is a write the NVM device must absorb at its
    write latency (the paper's Table IV values — the same numbers the
    performance simulator charges for ordinary writes); each fence is a
    fixed drain of the write-pending queue.  The model is deliberately a
    lower bound, like the paper's §V single-latency simulator: no
    concurrency between overlapping write-backs is assumed away, none is
    granted. *)

val line_bytes : int
(** 64 — must match {!Nvsc_sanitizer}'s checker granularity. *)

val fence_drain_ns : float
(** Charged per fence (write-pending-queue drain). *)

type t = {
  tech : Technology.t;
  flush_ns : float;  (** flushed lines x the tech's write latency *)
  fence_ns : float;
  total_ns : float;
}

val charge : tech:Technology.t -> flushed_lines:int -> fences:int -> t
val pp : Format.formatter -> t -> unit
